// dataset_io: the offline workflow — generate an Archipelago-style month,
// persist it in the warts-lite binary format, reload it from disk, and run
// LPR on the reloaded data (what a user with archived campaigns would do).
//
//   $ ./dataset_io [directory=/tmp/mum_dataset]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/report.h"
#include "dataset/warts_lite.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mum;
  namespace fs = std::filesystem;

  const fs::path dir = argc > 1 ? argv[1] : "/tmp/mum_dataset";
  fs::create_directories(dir);

  // 1. Generate one month of probing data.
  gen::GenConfig config;
  config.background_transit = 10;
  config.stub_ases = 14;
  config.monitors = 6;
  config.dests_per_monitor = 200;
  gen::Internet internet(config);
  const dataset::Ip2As ip2as = internet.build_ip2as();
  const int cycle = gen::cycle_of(2013, 6);
  const dataset::MonthData month =
      gen::CampaignRunner(internet, ip2as).month(cycle);

  // 2. Persist every snapshot as a warts-lite file.
  std::vector<fs::path> files;
  std::uintmax_t bytes = 0;
  for (const dataset::Snapshot& snap : month.snapshots) {
    const fs::path file =
        dir / ("cycle" + std::to_string(snap.cycle_id) + "_s" +
               std::to_string(snap.sub_index) + ".mumw");
    std::ofstream os(file, std::ios::binary);
    dataset::write_snapshot(os, snap);
    os.close();
    bytes += fs::file_size(file);
    files.push_back(file);
  }
  std::cout << "wrote " << files.size() << " snapshots ("
            << month.cycle().trace_count() << " traces each, " << bytes
            << " bytes total) to " << dir << "\n";

  // 3. Reload from disk — the archived-data workflow. AS annotations are
  //    not persisted; re-annotate with the IP2AS table, as the paper does
  //    with the matching Routeviews snapshot.
  dataset::MonthData reloaded;
  reloaded.cycle_id = month.cycle_id;
  reloaded.date = month.date;
  for (const fs::path& file : files) {
    std::ifstream is(file, std::ios::binary);
    auto snap = dataset::read_snapshot(is);
    if (!snap) {
      std::cerr << "failed to parse " << file << '\n';
      return 1;
    }
    ip2as.annotate(snap->traces);
    reloaded.snapshots.push_back(std::move(*snap));
  }

  // 4. LPR on the reloaded data must agree with LPR on the in-memory data.
  const lpr::CycleReport direct = lpr::run_pipeline(month, ip2as, {});
  const lpr::CycleReport from_disk = lpr::run_pipeline(reloaded, ip2as, {});

  util::TextTable table({"", "in-memory", "from disk"});
  auto row = [&](const char* name, std::uint64_t a, std::uint64_t b) {
    table.add_row({name, util::TextTable::fmt_int(static_cast<std::int64_t>(a)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(b))});
  };
  row("LSPs kept", direct.filter_stats.after_persistence,
      from_disk.filter_stats.after_persistence);
  row("IOTPs", direct.global.total(), from_disk.global.total());
  row("Mono-LSP", direct.global.mono_lsp, from_disk.global.mono_lsp);
  row("Multi-FEC", direct.global.multi_fec, from_disk.global.multi_fec);
  row("Mono-FEC", direct.global.mono_fec, from_disk.global.mono_fec);
  std::cout << table;

  const bool identical =
      direct.global.total() == from_disk.global.total() &&
      direct.global.mono_lsp == from_disk.global.mono_lsp &&
      direct.global.multi_fec == from_disk.global.multi_fec &&
      direct.global.mono_fec == from_disk.global.mono_fec;
  std::cout << (identical ? "\nround trip is lossless for LPR\n"
                          : "\nROUND TRIP MISMATCH\n");
  return identical ? 0 : 1;
}
