// as_evolution: replay one AS's five-year MPLS story (the scenario behind
// the paper's Figs. 10-15) from the command line.
//
//   $ ./as_evolution [asn=1273] [step=6]
//
// Prints, every `step` cycles, the AS's IOTP count and class mix, plus the
// dynamic-label tag when the Persistence filter had to reinject the AS.
#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mum;

  std::uint32_t asn = gen::kAsnVodafone;
  int step = 6;
  if (argc > 1) asn = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) step = std::max(1, std::atoi(argv[2]));

  gen::Internet internet(gen::GenConfig{});
  if (internet.modeled(asn) == nullptr) {
    std::cerr << "AS" << asn << " is not a modelled transit AS. Try one of:";
    for (const std::uint32_t a : internet.modeled_asns()) {
      std::cerr << ' ' << a;
    }
    std::cerr << '\n';
    return 1;
  }
  const dataset::Ip2As ip2as = internet.build_ip2as();

  std::cout << "MPLS usage evolution of AS" << asn << " ("
            << internet.graph().as_node(asn).name << "), 2010-2014\n\n";
  util::TextTable table({"cycle", "date", "IOTPs", "Mono-LSP", "Multi-FEC",
                         "Mono-FEC", "Unclass.", "dyn", ""});
  for (int cycle = 0; cycle < gen::kCycles; cycle += step) {
    const auto month = gen::CampaignRunner(internet, ip2as).month(cycle);
    const auto report = lpr::run_pipeline(month, ip2as, {});
    const auto counts = report.as_counts(asn);
    const double total = static_cast<double>(counts.total());
    auto pct = [&](std::uint64_t n) {
      return total > 0 ? util::TextTable::fmt(n / total, 2) : std::string("-");
    };
    const auto dyn = report.dynamic_as.find(asn);
    table.add_row(
        {std::to_string(cycle + 1), gen::cycle_date(cycle),
         util::TextTable::fmt_int(static_cast<std::int64_t>(counts.total())),
         pct(counts.mono_lsp), pct(counts.multi_fec), pct(counts.mono_fec),
         pct(counts.unclassified),
         dyn != report.dynamic_as.end() && dyn->second ? "*" : "",
         util::ascii_bar(total / 80.0, 16)});
  }
  std::cout << table
            << "\n('dyn' marks cycles where the whole tunnel set churned "
               "and was reinjected — Sec. 4.5 label dynamics)\n";
  return 0;
}
