// inspect_cycle: run the full LPR pipeline on one cycle of the default
// synthetic internet and dump everything an operator would want to see —
// filter attrition, global and per-AS classification, metric distributions.
//
//   $ ./inspect_cycle [cycle(1-based)=60] [seed]
#include <cstdlib>
#include <iostream>

#include "core/metrics.h"
#include "core/report.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mum;

  int cycle = 60;
  if (argc > 1) cycle = std::atoi(argv[1]);
  cycle = std::max(1, std::min(cycle, gen::kCycles)) - 1;  // to 0-based

  gen::GenConfig config;
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  gen::Internet internet(config);
  const dataset::Ip2As ip2as = internet.build_ip2as();
  const dataset::MonthData month =
      gen::CampaignRunner(internet, ip2as).month(cycle);
  const lpr::CycleReport report = lpr::run_pipeline(month, ip2as, {});

  std::cout << "=== Cycle " << cycle + 1 << " (" << report.date << ") ===\n";
  const auto& e = report.extract_stats;
  std::cout << "traces: " << e.traces_total << ", with explicit tunnel: "
            << e.traces_with_explicit_tunnel << " ("
            << util::TextTable::fmt_pct(
                   static_cast<double>(e.traces_with_explicit_tunnel) /
                   static_cast<double>(e.traces_total))
            << ")\n";
  std::cout << "unique IPs: MPLS " << e.mpls_ips << ", non-MPLS "
            << e.non_mpls_ips << "\n\n";

  const auto& f = report.filter_stats;
  util::TextTable filters({"stage", "LSPs", "share of observed"});
  auto frow = [&](const char* name, std::uint64_t n) {
    filters.add_row({name, util::TextTable::fmt_int(static_cast<std::int64_t>(n)),
                     util::TextTable::fmt(
                         f.observed ? static_cast<double>(n) /
                                          static_cast<double>(f.observed)
                                    : 0.0,
                         3)});
  };
  frow("observed", f.observed);
  frow("complete", f.complete);
  frow("IntraAS", f.after_intra_as);
  frow("TargetAS", f.after_target_as);
  frow("TransitDiversity", f.after_transit_diversity);
  frow("Persistence", f.after_persistence);
  std::cout << filters << '\n';

  const double total = static_cast<double>(report.global.total());
  util::TextTable classes({"class", "IOTPs", "share"});
  auto crow = [&](const char* name, std::uint64_t n) {
    classes.add_row({name, util::TextTable::fmt_int(static_cast<std::int64_t>(n)),
                     util::TextTable::fmt_pct(total ? n / total : 0)});
  };
  crow("Mono-LSP", report.global.mono_lsp);
  crow("Multi-FEC", report.global.multi_fec);
  crow("Mono-FEC", report.global.mono_fec);
  crow("  parallel links", report.global.parallel_links);
  crow("  routers disjoint", report.global.routers_disjoint);
  crow("Unclassified", report.global.unclassified);
  std::cout << classes << '\n';

  util::TextTable per_as({"AS", "IOTPs", "Mono-LSP", "Multi-FEC", "Mono-FEC",
                          "Unclass.", "dynamic"});
  for (const auto& [asn, counts] : report.per_as) {
    const double t = static_cast<double>(counts.total());
    auto pct = [&](std::uint64_t n) {
      return t ? util::TextTable::fmt(n / t, 2) : std::string("-");
    };
    const auto dyn = report.dynamic_as.find(asn);
    per_as.add_row({"AS" + std::to_string(asn),
                    util::TextTable::fmt_int(static_cast<std::int64_t>(
                        counts.total())),
                    pct(counts.mono_lsp), pct(counts.multi_fec),
                    pct(counts.mono_fec), pct(counts.unclassified),
                    dyn != report.dynamic_as.end() && dyn->second ? "yes"
                                                                  : ""});
  }
  std::cout << per_as << '\n';

  const auto lengths = lpr::length_distribution(report.iotps);
  const auto widths = lpr::width_distribution(report.iotps);
  std::cout << "length: <=3 share " << util::TextTable::fmt(lengths.cdf(3), 3)
            << ", max " << lengths.max_key() << '\n';
  std::cout << "width: =1 share " << util::TextTable::fmt(widths.pdf(1), 3)
            << ", max " << widths.max_key() << '\n';
  std::cout << "balanced (symmetry 0): Mono-FEC "
            << util::TextTable::fmt(
                   lpr::balanced_share(report.iotps,
                                       lpr::TunnelClass::kMonoFec),
                   3)
            << ", Multi-FEC "
            << util::TextTable::fmt(
                   lpr::balanced_share(report.iotps,
                                       lpr::TunnelClass::kMultiFec),
                   3)
            << '\n';
  return 0;
}
