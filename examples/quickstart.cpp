// Quickstart: build a small synthetic internet, run one Archipelago-style
// probing month, feed it to LPR, and print the classification — the whole
// public API in ~80 lines.
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "dataset/warts_lite.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mum;

  gen::GenConfig config;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  // Keep the quickstart internet small.
  config.background_transit = 8;
  config.stub_ases = 12;
  config.monitors = 6;
  config.dests_per_monitor = 120;

  std::cout << "Building synthetic internet (seed " << config.seed
            << ")...\n";
  gen::Internet internet(config);
  const dataset::Ip2As ip2as = internet.build_ip2as();
  std::cout << "  " << internet.graph().size() << " ASes ("
            << internet.modeled_asns().size() << " with router-level MPLS "
            << "topologies), " << ip2as.prefix_count() << " IP2AS prefixes\n";

  // Probe one month: cycle snapshot + 2 follow-ups for Persistence.
  const int cycle = gen::cycle_of(2014, 12);
  gen::CampaignConfig campaign;
  std::cout << "Probing cycle " << cycle + 1 << " (" << gen::cycle_date(cycle)
            << ") with " << internet.monitors().size() << " monitors...\n";
  const dataset::MonthData month =
      gen::CampaignRunner(internet, ip2as, campaign).month(cycle);
  std::cout << "  " << month.cycle().trace_count() << " traces per snapshot, "
            << month.snapshots.size() << " snapshots\n";

  // Show one trace crossing an MPLS tunnel.
  for (const dataset::Trace& trace : month.cycle().traces) {
    if (trace.crosses_explicit_tunnel() && trace.reached) {
      std::cout << "\nSample trace with an explicit MPLS tunnel:\n"
                << dataset::to_text(trace) << '\n';
      break;
    }
  }

  // Run LPR (filters + Algorithm 1).
  const lpr::CycleReport report = lpr::run_pipeline(month, ip2as);
  std::cout << "LPR: " << report.filter_stats.observed << " LSPs observed, "
            << report.filter_stats.after_persistence
            << " kept after filtering, " << report.iotps.size()
            << " IOTPs classified\n\n";

  util::TextTable table({"class", "IOTPs", "share"});
  const auto& g = report.global;
  const double total = static_cast<double>(g.total());
  auto row = [&](const char* name, std::uint64_t n) {
    table.add_row({name, util::TextTable::fmt_int(static_cast<std::int64_t>(n)),
                   util::TextTable::fmt_pct(total ? n / total : 0.0)});
  };
  row("Mono-LSP", g.mono_lsp);
  row("Multi-FEC", g.multi_fec);
  row("Mono-FEC (ECMP)", g.mono_fec);
  row("  - parallel links", g.parallel_links);
  row("  - routers disjoint", g.routers_disjoint);
  row("Unclassified", g.unclassified);
  std::cout << table;

  return 0;
}
