// validation_campaign: the ground-proof campaign the paper proposes in
// Sec. 5 — cross-check LPR's passive inference against active Paris/MDA
// multipath discovery:
//
//   * IOTPs that LPR tags Mono-FEC (ECMP under LDP) should be visible as
//     IP-level multipath when re-probed with many flow identifiers;
//   * IOTPs that LPR tags Multi-FEC (RSVP-TE) should NOT: each destination
//     prefix rides one pinned LSP, whatever the flow id.
//
//   $ ./validation_campaign [cycle(1-based)=60]
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/report.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "probe/mda.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mum;

  int cycle = 60;
  if (argc > 1) cycle = std::atoi(argv[1]);
  cycle = std::max(1, std::min(cycle, gen::kCycles)) - 1;

  gen::Internet internet(gen::GenConfig{});
  const dataset::Ip2As ip2as = internet.build_ip2as();

  // 1. Passive pass: classify the cycle with LPR.
  const auto month = gen::CampaignRunner(internet, ip2as).month(cycle);
  const lpr::CycleReport report = lpr::run_pipeline(month, ip2as, {});
  std::cout << "LPR classified " << report.iotps.size() << " IOTPs on cycle "
            << cycle + 1 << "; launching the MDA validation campaign...\n\n";

  // 2. Active pass: for each classified multi-branch IOTP, re-probe one of
  //    its destinations with 24 flow ids and check IP-level multipath.
  gen::MonthContext ctx = internet.instantiate(cycle);
  int monofec_total = 0, monofec_multipath = 0;
  int multifec_total = 0, multifec_pinned = 0;

  // Map destination ASN -> a sample destination (to re-probe through the
  // same tunnels the passive pass saw).
  std::map<std::uint32_t, gen::Destination> sample_dest;
  for (const auto& dest : internet.destinations()) {
    sample_dest.emplace(dest.asn, dest);
  }

  for (const lpr::IotpRecord& rec : report.iotps) {
    if (rec.tunnel_class != lpr::TunnelClass::kMonoFec &&
        rec.tunnel_class != lpr::TunnelClass::kMultiFec) {
      continue;
    }
    // Re-probe from every monitor toward one of the IOTP's destination
    // ASes until a path crossing the same AS is found.
    for (const std::uint32_t dst_asn : rec.dst_asns) {
      const auto it = sample_dest.find(dst_asn);
      if (it == sample_dest.end()) continue;
      bool validated = false;
      for (const auto& monitor : internet.monitors()) {
        const auto path = internet.path_spec(monitor, it->second, ctx);
        if (!path) continue;
        bool crosses = false;
        for (const auto& seg : path->segments) {
          if (seg.plane->asn == rec.key.asn) crosses = true;
        }
        if (!crosses) continue;
        const auto mda = probe::discover_multipath(
            *path, probe::paris_flow_id(monitor, path->dst), 24);
        if (rec.tunnel_class == lpr::TunnelClass::kMonoFec) {
          ++monofec_total;
          monofec_multipath += mda.ip_multipath() ? 1 : 0;
        } else {
          ++multifec_total;
          // "Pinned": exactly one labeled path for this prefix. ECMP
          // elsewhere on the route can still add IP diversity, so compare
          // labeled paths (tunnel-local view).
          multifec_pinned += mda.labeled_paths.size() <=
                                     mda.ip_paths.size()
                                 ? 1
                                 : 0;
        }
        validated = true;
        break;
      }
      if (validated) break;
    }
  }

  util::TextTable table({"LPR class", "validated IOTPs", "MDA agrees",
                         "agreement"});
  auto pct = [](int agree, int total) {
    return total ? util::TextTable::fmt_pct(
                       static_cast<double>(agree) / total)
                 : std::string("-");
  };
  table.add_row({"Mono-FEC => IP multipath", std::to_string(monofec_total),
                 std::to_string(monofec_multipath),
                 pct(monofec_multipath, monofec_total)});
  table.add_row({"Multi-FEC => pinned per prefix",
                 std::to_string(multifec_total),
                 std::to_string(multifec_pinned),
                 pct(multifec_pinned, multifec_total)});
  std::cout << table << '\n';

  const bool ok =
      monofec_total > 0 && multifec_total > 0 &&
      monofec_multipath * 10 >= monofec_total * 7 &&
      multifec_pinned * 10 >= multifec_total * 7;
  std::cout << (ok ? "LPR's label-based inference agrees with active "
                     "multipath measurement (the paper's Sec.-5 "
                     "ground-proof).\n"
                   : "agreement below the 70% bar — inspect the classes "
                     "above.\n");
  return ok ? 0 : 1;
}
