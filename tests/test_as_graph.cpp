#include "gen/as_graph.h"

#include <gtest/gtest.h>

namespace mum::gen {
namespace {

net::Ipv4Prefix block(std::uint32_t i) {
  return net::Ipv4Prefix(net::Ipv4Addr((16u << 24) + (i << 16)), 16);
}

AsNode node(std::uint32_t asn, AsTier tier) {
  AsNode n;
  n.asn = asn;
  n.tier = tier;
  n.block = block(asn % 256);
  return n;
}

// Classic small hierarchy:
//   T1a (1) --peer-- T1b (2)
//    |                 |
//   Tr (10)          Tr (11)     (transit customers)
//    |                 |
//   S (100)          S (101)     (stubs)
AsGraph small_graph() {
  AsGraph g;
  g.add_as(node(1, AsTier::kTier1));
  g.add_as(node(2, AsTier::kTier1));
  g.add_as(node(10, AsTier::kTransit));
  g.add_as(node(11, AsTier::kTransit));
  g.add_as(node(100, AsTier::kStub));
  g.add_as(node(101, AsTier::kStub));
  g.add_peer_peer(1, 2);
  g.add_provider_customer(1, 10);
  g.add_provider_customer(2, 11);
  g.add_provider_customer(10, 100);
  g.add_provider_customer(11, 101);
  return g;
}

TEST(AsGraph, NodeLookup) {
  const AsGraph g = small_graph();
  EXPECT_EQ(g.size(), 6u);
  EXPECT_TRUE(g.contains(10));
  EXPECT_FALSE(g.contains(99));
  EXPECT_EQ(g.as_node(10).tier, AsTier::kTransit);
  EXPECT_EQ(g.as_node(10).providers, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(g.as_node(1).customers, (std::vector<std::uint32_t>{10}));
  EXPECT_EQ(g.as_node(1).peers, (std::vector<std::uint32_t>{2}));
}

TEST(AsGraph, SelfRoute) {
  const AsGraph g = small_graph();
  EXPECT_EQ(g.route(10, 10), (std::vector<std::uint32_t>{10}));
}

TEST(AsGraph, CustomerRouteIsDownhill) {
  const AsGraph g = small_graph();
  EXPECT_EQ(g.route(1, 100), (std::vector<std::uint32_t>{1, 10, 100}));
}

TEST(AsGraph, UphillThenDownhill) {
  const AsGraph g = small_graph();
  EXPECT_EQ(g.route(100, 10), (std::vector<std::uint32_t>{100, 10}));
  EXPECT_EQ(g.route(100, 1), (std::vector<std::uint32_t>{100, 10, 1}));
}

TEST(AsGraph, CrossHierarchyUsesPeerLink) {
  const AsGraph g = small_graph();
  EXPECT_EQ(g.route(100, 101),
            (std::vector<std::uint32_t>{100, 10, 1, 2, 11, 101}));
}

TEST(AsGraph, ValleyFreeNoTransitThroughStub) {
  // Add a second provider to stub 100: 100 buys from 10 and 11. A valley-
  // free path from 10 to 11 must NOT go through customer 100.
  AsGraph g = small_graph();
  g.add_provider_customer(11, 100);
  const auto path = g.route(10, 11);
  ASSERT_FALSE(path.empty());
  for (const std::uint32_t asn : path) EXPECT_NE(asn, 100u);
}

TEST(AsGraph, PeerRoutePreferredOverLongerProviderDetour) {
  // 10 and 11 peer directly: route must use the peer edge.
  AsGraph g = small_graph();
  g.add_peer_peer(10, 11);
  EXPECT_EQ(g.route(10, 101), (std::vector<std::uint32_t>{10, 11, 101}));
}

TEST(AsGraph, UnreachableWhenIsolated) {
  AsGraph g = small_graph();
  g.add_as(node(200, AsTier::kStub));  // no links
  EXPECT_TRUE(g.route(100, 200).empty());
  EXPECT_TRUE(g.route(200, 100).empty());
  EXPECT_FALSE(g.fully_connected());
}

TEST(AsGraph, FullyConnectedSmallGraph) {
  EXPECT_TRUE(small_graph().fully_connected());
}

TEST(AsGraph, RoutesAreValleyFreeProperty) {
  // Property: once a path goes peer or downhill, it never climbs again.
  const AsGraph g = small_graph();
  for (const std::uint32_t src : g.asns()) {
    for (const std::uint32_t dst : g.asns()) {
      const auto path = g.route(src, dst);
      if (path.size() < 2) continue;
      bool descending = false;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const AsNode& from = g.as_node(path[i]);
        const bool step_up =
            std::find(from.providers.begin(), from.providers.end(),
                      path[i + 1]) != from.providers.end();
        if (step_up) {
          EXPECT_FALSE(descending)
              << "valley in path " << src << "->" << dst;
        } else {
          descending = true;
        }
      }
    }
  }
}

TEST(AsGraph, RouteEndpointsCorrect) {
  const AsGraph g = small_graph();
  for (const std::uint32_t src : g.asns()) {
    for (const std::uint32_t dst : g.asns()) {
      const auto path = g.route(src, dst);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), dst);
    }
  }
}

TEST(AsGraph, RouteStepsUseRealEdges) {
  const AsGraph g = small_graph();
  auto connected = [&](std::uint32_t a, std::uint32_t b) {
    const AsNode& n = g.as_node(a);
    return std::find(n.providers.begin(), n.providers.end(), b) !=
               n.providers.end() ||
           std::find(n.customers.begin(), n.customers.end(), b) !=
               n.customers.end() ||
           std::find(n.peers.begin(), n.peers.end(), b) != n.peers.end();
  };
  for (const std::uint32_t src : g.asns()) {
    for (const std::uint32_t dst : g.asns()) {
      const auto path = g.route(src, dst);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(connected(path[i], path[i + 1]));
      }
    }
  }
}

}  // namespace
}  // namespace mum::gen
