#include "gen/internet.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/campaign.h"

namespace mum::gen {
namespace {

GenConfig small_config() {
  GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  return c;
}

class InternetTest : public ::testing::Test {
 protected:
  InternetTest() : internet(small_config()), ip2as(internet.build_ip2as()) {}
  Internet internet;
  dataset::Ip2As ip2as;
};

TEST_F(InternetTest, GraphIsFullyConnected) {
  EXPECT_TRUE(internet.graph().fully_connected());
}

TEST_F(InternetTest, CaseStudyAsesPresentAndModeled) {
  for (const std::uint32_t asn :
       {kAsnVodafone, kAsnAtt, kAsnTata, kAsnNtt, kAsnLevel3}) {
    ASSERT_TRUE(internet.graph().contains(asn));
    EXPECT_NE(internet.modeled(asn), nullptr);
  }
}

TEST_F(InternetTest, StubsAreNotModeled) {
  for (const std::uint32_t asn : internet.graph().asns()) {
    const auto& node = internet.graph().as_node(asn);
    EXPECT_EQ(node.modeled, internet.modeled(asn) != nullptr);
    if (node.tier == AsTier::kStub) EXPECT_FALSE(node.modeled);
  }
}

TEST_F(InternetTest, ModeledTopologiesConnectedWithBorders) {
  for (const std::uint32_t asn : internet.modeled_asns()) {
    const ModeledAs* as = internet.modeled(asn);
    EXPECT_TRUE(as->topo.connected()) << "AS" << asn;
    EXPECT_GE(as->topo.border_routers().size(), 2u) << "AS" << asn;
  }
}

TEST_F(InternetTest, BorderSelectionCoversAllNeighbors) {
  for (const std::uint32_t asn : internet.modeled_asns()) {
    const ModeledAs* as = internet.modeled(asn);
    const AsNode& node = internet.graph().as_node(asn);
    std::set<std::uint32_t> neighbors;
    for (const auto& list : {node.providers, node.customers, node.peers}) {
      neighbors.insert(list.begin(), list.end());
    }
    for (const std::uint32_t n : neighbors) {
      ASSERT_TRUE(as->borders_toward.contains(n)) << asn << "->" << n;
      for (const auto border : as->borders_toward.at(n)) {
        EXPECT_TRUE(as->topo.router(border).is_border);
      }
      ASSERT_TRUE(as->entry_ifaces_from.contains(n));
      EXPECT_EQ(as->entry_ifaces_from.at(n).size(),
                as->borders_toward.at(n).size());
      // Entry interfaces must map back to this AS (IntraAS filter depends
      // on it) and the selector must stay within the peering set.
      for (const auto addr : as->entry_ifaces_from.at(n)) {
        EXPECT_TRUE(node.block.contains(addr));
      }
      for (std::uint64_t h = 0; h < 10; ++h) {
        const auto border = as->border_for(n, h);
        const auto& set = as->borders_toward.at(n);
        EXPECT_NE(std::find(set.begin(), set.end(), border), set.end());
      }
    }
  }
}

TEST_F(InternetTest, EntryIfacesUniquePerAs) {
  for (const std::uint32_t asn : internet.modeled_asns()) {
    const ModeledAs* as = internet.modeled(asn);
    std::set<net::Ipv4Addr> seen;
    for (const auto& [n, addrs] : as->entry_ifaces_from) {
      for (const auto addr : addrs) EXPECT_TRUE(seen.insert(addr).second);
    }
  }
}

TEST_F(InternetTest, Ip2AsMapsEveryBlock) {
  for (const std::uint32_t asn : internet.graph().asns()) {
    const auto& node = internet.graph().as_node(asn);
    EXPECT_EQ(ip2as.lookup(node.block.nth(1234)), asn);
  }
}

TEST_F(InternetTest, MonitorsPlacedInStubs) {
  ASSERT_EQ(internet.monitors().size(), 4u);
  for (const auto& m : internet.monitors()) {
    const std::uint32_t asn = internet.monitor_asn(m.id);
    EXPECT_EQ(internet.graph().as_node(asn).tier, AsTier::kStub);
    EXPECT_TRUE(internet.graph().as_node(asn).block.contains(m.addr));
  }
}

TEST_F(InternetTest, DestinationsCoverTransitAndStubAses) {
  std::set<std::uint32_t> dest_ases;
  for (const auto& d : internet.destinations()) dest_ases.insert(d.asn);
  EXPECT_TRUE(dest_ases.contains(kAsnAtt));        // transit dest
  bool some_stub = false;
  for (const std::uint32_t asn : dest_ases) {
    if (internet.graph().as_node(asn).tier == AsTier::kStub) some_stub = true;
  }
  EXPECT_TRUE(some_stub);
}

TEST_F(InternetTest, DeterministicConstruction) {
  Internet other(small_config());
  EXPECT_EQ(other.destinations().size(), internet.destinations().size());
  for (std::size_t i = 0; i < internet.destinations().size(); ++i) {
    EXPECT_EQ(other.destinations()[i].addr, internet.destinations()[i].addr);
  }
  const auto* a = internet.modeled(kAsnTata);
  const auto* b = other.modeled(kAsnTata);
  ASSERT_EQ(a->topo.link_count(), b->topo.link_count());
}

TEST_F(InternetTest, InstantiateRespectsProfiles) {
  const MonthContext early = internet.instantiate(0);
  const MonthContext late = internet.instantiate(40);
  // Level3: MPLS off in 2010, on in 2013.
  EXPECT_DOUBLE_EQ(early.plane_of(kAsnLevel3)->mpls_coverage, 0.0);
  EXPECT_GT(late.plane_of(kAsnLevel3)->mpls_coverage, 0.5);
  EXPECT_EQ(early.plane_of(kAsnLevel3)->ldp, nullptr);
  EXPECT_NE(late.plane_of(kAsnLevel3)->ldp, nullptr);
  // Vodafone: TE LSPs exist.
  EXPECT_NE(late.plane_of(kAsnVodafone)->rsvp, nullptr);
  EXPECT_FALSE(late.plane_of(kAsnVodafone)->te_policy.pairs.empty());
  // NTT: LDP only.
  EXPECT_EQ(late.plane_of(kAsnNtt)->rsvp, nullptr);
  EXPECT_NE(late.plane_of(kAsnNtt)->ldp, nullptr);
}

TEST_F(InternetTest, PathSpecConnectsMonitorToDestination) {
  const MonthContext ctx = internet.instantiate(50);
  const auto& monitor = internet.monitors()[0];
  int checked = 0;
  for (const auto& dest : internet.destinations()) {
    const auto path = internet.path_spec(monitor, dest, ctx);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->dst, dest.addr);
    if (++checked > 200) break;
  }
}

TEST_F(InternetTest, PathSegmentsAreModeledAsesInRouteOrder) {
  const MonthContext ctx = internet.instantiate(50);
  const auto& monitor = internet.monitors()[0];
  const std::uint32_t src_asn = internet.monitor_asn(monitor.id);
  for (int i = 0; i < 50; ++i) {
    const auto& dest = internet.destinations()[static_cast<std::size_t>(i)];
    const auto route = internet.graph().route(src_asn, dest.asn);
    const auto path = internet.path_spec(monitor, dest, ctx);
    ASSERT_TRUE(path.has_value());
    std::vector<std::uint32_t> modeled_on_route;
    for (const std::uint32_t asn : route) {
      if (internet.modeled(asn) != nullptr) modeled_on_route.push_back(asn);
    }
    ASSERT_EQ(path->segments.size(), modeled_on_route.size());
    for (std::size_t s = 0; s < path->segments.size(); ++s) {
      EXPECT_EQ(path->segments[s].plane->asn, modeled_on_route[s]);
    }
  }
}

TEST_F(InternetTest, FlapsChangeSaltsBetweenSubIndexes) {
  MonthContext ctx = internet.instantiate(50);
  ctx.apply_flaps(0, /*flap_prob=*/0.5);
  const auto salts0 = ctx.plane_of(kAsnTata)->ecmp_salts;
  ctx.apply_flaps(1, 0.5);
  const auto salts1 = ctx.plane_of(kAsnTata)->ecmp_salts;
  ASSERT_EQ(salts0.size(), salts1.size());
  int differing = 0;
  for (std::size_t i = 0; i < salts0.size(); ++i) {
    if (salts0[i] != salts1[i]) ++differing;
  }
  EXPECT_GT(differing, 0);
  EXPECT_LT(differing, static_cast<int>(salts0.size()));
}

TEST_F(InternetTest, FlapsZeroProbabilityKeepsSaltsStable) {
  MonthContext ctx = internet.instantiate(50);
  ctx.apply_flaps(0, 0.0);
  const auto salts0 = ctx.plane_of(kAsnTata)->ecmp_salts;
  ctx.apply_flaps(5, 0.0);
  EXPECT_EQ(salts0, ctx.plane_of(kAsnTata)->ecmp_salts);
}

TEST_F(InternetTest, DynamicsRelabelVodafoneLsps) {
  MonthContext ctx = internet.instantiate(50);
  const auto* rsvp = ctx.plane_of(kAsnVodafone)->rsvp;
  ASSERT_NE(rsvp, nullptr);
  ASSERT_GT(rsvp->lsp_count(), 0u);
  std::vector<std::uint32_t> labels_before;
  for (const auto& lsp : rsvp->lsps()) {
    for (const auto& hop : lsp.hops) labels_before.push_back(hop.in_label);
  }
  util::Rng rng(1);
  ctx.advance_dynamics(rng);
  std::vector<std::uint32_t> labels_after;
  for (const auto& lsp : rsvp->lsps()) {
    for (const auto& hop : lsp.hops) labels_after.push_back(hop.in_label);
  }
  EXPECT_NE(labels_before, labels_after);
}

TEST_F(InternetTest, DynamicsLeaveStaticAsesAlone) {
  MonthContext ctx = internet.instantiate(50);
  const auto* att_rsvp = ctx.plane_of(kAsnAtt)->rsvp;
  ASSERT_NE(att_rsvp, nullptr);
  std::vector<std::uint32_t> before;
  for (const auto& lsp : att_rsvp->lsps()) {
    for (const auto& hop : lsp.hops) before.push_back(hop.in_label);
  }
  util::Rng rng(1);
  ctx.advance_dynamics(rng);
  std::vector<std::uint32_t> after;
  for (const auto& lsp : att_rsvp->lsps()) {
    for (const auto& hop : lsp.hops) after.push_back(hop.in_label);
  }
  EXPECT_EQ(before, after);
}

TEST_F(InternetTest, Ip2AsNoiseAddsLeakedPrefixes) {
  GenConfig noisy = small_config();
  noisy.ip2as_noise = 1.0;  // every modeled AS leaks
  Internet net(noisy);
  const auto table = net.build_ip2as();
  EXPECT_GT(table.prefix_count(), net.graph().size());
}

}  // namespace
}  // namespace mum::gen
