// Alias-resolution tests: union-find behaviour, the label-based inference,
// router-level IOTP rewriting, and end-to-end accuracy against the
// simulator's ground-truth address->router mapping.
#include "core/alias.h"

#include <gtest/gtest.h>

#include "core/classify.h"
#include "core/extract.h"
#include "core/filters.h"
#include "gen/campaign.h"
#include "gen/internet.h"

namespace mum::lpr {
namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// --- union-find -----------------------------------------------------------

TEST(AddressUnionFind, IdentityByDefault) {
  AddressUnionFind uf;
  EXPECT_EQ(uf.find(ip(5)), ip(5));
  EXPECT_TRUE(uf.sets().empty());
}

TEST(AddressUnionFind, MergeAndFind) {
  AddressUnionFind uf;
  uf.merge(ip(10), ip(20));
  EXPECT_EQ(uf.find(ip(10)), uf.find(ip(20)));
  EXPECT_EQ(uf.find(ip(10)), ip(10));  // lowest address is canonical
  EXPECT_EQ(uf.find(ip(30)), ip(30));
}

TEST(AddressUnionFind, TransitiveMerge) {
  AddressUnionFind uf;
  uf.merge(ip(30), ip(20));
  uf.merge(ip(20), ip(10));
  uf.merge(ip(50), ip(40));
  EXPECT_EQ(uf.find(ip(30)), ip(10));
  EXPECT_EQ(uf.find(ip(40)), ip(40));
  const auto sets = uf.sets();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::set<net::Ipv4Addr>{ip(10), ip(20), ip(30)}));
  EXPECT_EQ(sets[1], (std::set<net::Ipv4Addr>{ip(40), ip(50)}));
}

TEST(AddressUnionFind, CanonicalStableUnderMergeOrder) {
  AddressUnionFind a, b;
  a.merge(ip(1), ip(2));
  a.merge(ip(2), ip(3));
  b.merge(ip(3), ip(2));
  b.merge(ip(1), ip(3));
  for (const auto addr : {ip(1), ip(2), ip(3)}) {
    EXPECT_EQ(a.find(addr), ip(1));
    EXPECT_EQ(b.find(addr), ip(1));
  }
}

// --- label-based inference --------------------------------------------------

LspObservation obs(std::uint32_t egress,
                   std::vector<std::pair<std::uint32_t, std::uint32_t>> hops) {
  LspObservation o;
  o.lsp.asn = 65001;
  o.lsp.ingress = ip(1);
  o.lsp.egress = ip(egress);
  for (const auto& [addr, label] : hops) {
    o.lsp.lsrs.push_back(LsrHop{ip(addr), {label}});
  }
  o.dst_asn = 9;
  return o;
}

TEST(LabelAlias, SameLabelSameScopeMerges) {
  // Two bundle interfaces of one router: same label toward same exit.
  const LabelAliasResolver resolver(
      {obs(100, {{10, 500}}), obs(100, {{11, 500}})});
  EXPECT_EQ(resolver.canonical(ip(10)), resolver.canonical(ip(11)));
  ASSERT_EQ(resolver.alias_sets().size(), 1u);
}

TEST(LabelAlias, DifferentExitScopesDoNotMerge) {
  // Same label value toward DIFFERENT exits: different routers' counters
  // colliding — must not merge.
  const LabelAliasResolver resolver(
      {obs(100, {{10, 500}}), obs(200, {{11, 500}})});
  EXPECT_NE(resolver.canonical(ip(10)), resolver.canonical(ip(11)));
  EXPECT_TRUE(resolver.alias_sets().empty());
}

TEST(LabelAlias, DifferentLabelsDoNotMerge) {
  const LabelAliasResolver resolver(
      {obs(100, {{10, 500}}), obs(100, {{11, 501}})});
  EXPECT_TRUE(resolver.alias_sets().empty());
}

TEST(LabelAlias, NonPhpObservationsIgnored) {
  auto risky = obs(100, {{10, 500}});
  risky.lsp.egress_labeled = true;  // FEC-mixed interpretation
  const LabelAliasResolver resolver({risky, obs(100, {{11, 500}})});
  EXPECT_TRUE(resolver.alias_sets().empty());
}

// --- router-level rewriting --------------------------------------------------

TEST(RouterLevel, RewriteCanonicalizesEndpointsOnly) {
  // 100/101 are aliases (same label toward exit 200 in the teaching set).
  const LabelAliasResolver resolver(
      {obs(200, {{100, 700}}), obs(200, {{101, 700}})});
  auto o = obs(101, {{11, 500}});
  const auto rewritten = to_router_level({o}, resolver);
  ASSERT_EQ(rewritten.size(), 1u);
  EXPECT_EQ(rewritten[0].lsp.egress, ip(100));       // endpoint merged
  EXPECT_EQ(rewritten[0].lsp.lsrs[0].addr, ip(11));  // interior untouched
}

TEST(RouterLevel, MergesParallelLinkIotps) {
  // Two IOTPs that differ only by bundle interfaces at the egress side
  // collapse into one router-level IOTP, classified Parallel Links.
  auto o1 = obs(100, {{10, 500}});
  auto o2 = obs(101, {{11, 500}});  // different exit iface, same router
  o2.dst_asn = 10;
  // Teach the resolver that exits 100/101 are aliases (same label seen at
  // both from a second vantage... emulate with a manual merge scope):
  const LabelAliasResolver base({obs(200, {{100, 700}}),
                                 obs(200, {{101, 700}})});
  ASSERT_EQ(base.canonical(ip(100)), base.canonical(ip(101)));

  const auto ip_level = group_iotps({o1, o2});
  EXPECT_EQ(ip_level.size(), 2u);
  auto router_level = group_iotps(to_router_level({o1, o2}, base));
  ASSERT_EQ(router_level.size(), 1u);
  classify_iotp(router_level[0]);
  EXPECT_EQ(router_level[0].dst_asns.size(), 2u);
}

// --- accuracy ----------------------------------------------------------------

TEST(AliasAccuracy, PrecisionComputation) {
  std::map<net::Ipv4Addr, net::Ipv4Addr> truth{
      {ip(1), ip(100)}, {ip(2), ip(100)}, {ip(3), ip(200)}};
  const std::vector<std::set<net::Ipv4Addr>> inferred{
      {ip(1), ip(2), ip(3)}};
  const auto acc = evaluate_aliases(inferred, truth);
  EXPECT_EQ(acc.inferred_pairs, 3u);
  EXPECT_EQ(acc.correct_pairs, 1u);  // only (1,2) is true
  EXPECT_NEAR(acc.precision(), 1.0 / 3.0, 1e-12);
}

TEST(AliasAccuracy, EmptyInferenceIsVacuouslyPrecise) {
  EXPECT_DOUBLE_EQ(evaluate_aliases({}, {}).precision(), 1.0);
}

// --- end-to-end against simulator ground truth -------------------------------

TEST(AliasEndToEnd, LabelInferencePrecisionHighOnSyntheticInternet) {
  gen::GenConfig config;
  config.background_tier1 = 2;
  config.background_transit = 10;
  config.stub_ases = 14;
  config.monitors = 6;
  config.dests_per_monitor = 250;
  gen::Internet internet(config);
  const auto ip2as = internet.build_ip2as();
  auto ctx = internet.instantiate(50);
  const auto snap = gen::CampaignRunner(internet, ip2as).snapshot(ctx, 50, 0);
  const auto extracted = extract_lsps(snap, ip2as);

  const LabelAliasResolver resolver(extracted.observations, snap.traces);
  const auto sets = resolver.alias_sets();

  // Ground truth from the simulator: every interface address -> loopback
  // of its owning router.
  std::map<net::Ipv4Addr, net::Ipv4Addr> truth;
  for (const std::uint32_t asn : internet.modeled_asns()) {
    const auto* as = internet.modeled(asn);
    for (const auto& link : as->topo.links()) {
      truth[link.a_iface] = as->topo.router(link.a).loopback;
      truth[link.b_iface] = as->topo.router(link.b).loopback;
    }
  }

  const auto acc = evaluate_aliases(sets, truth);
  ASSERT_GT(acc.inferred_pairs, 50u);  // inference actually fires
  EXPECT_GT(acc.precision(), 0.9);     // and is nearly always right
}

TEST(AliasEndToEnd, RouterLevelReducesIotpCount) {
  gen::GenConfig config;
  config.background_tier1 = 2;
  config.background_transit = 10;
  config.stub_ases = 14;
  config.monitors = 6;
  config.dests_per_monitor = 250;
  gen::Internet internet(config);
  const auto ip2as = internet.build_ip2as();
  const auto month = gen::CampaignRunner(internet, ip2as).month(50);
  const auto extracted = extract_lsps(month.cycle(), ip2as);
  std::vector<ExtractedSnapshot> following;
  for (std::size_t i = 1; i < month.snapshots.size(); ++i) {
    following.push_back(extract_lsps(month.snapshots[i], ip2as));
  }
  const auto filtered = apply_filters(extracted, following, FilterConfig{});

  auto ip_level = group_iotps(filtered.observations);
  const LabelAliasResolver resolver(filtered.observations,
                                    month.cycle().traces);
  auto router_level =
      group_iotps(to_router_level(filtered.observations, resolver));

  // The paper's expectation: fewer IOTPs at router level.
  EXPECT_LT(router_level.size(), ip_level.size());

  const auto ip_counts = classify_all(ip_level);
  const auto router_counts = classify_all(router_level);
  // No class may be lost; TE must not be inflated by the merge.
  EXPECT_GT(router_counts.total(), 0u);
  EXPECT_LE(router_counts.total(), ip_counts.total());
}

}  // namespace
}  // namespace mum::lpr
