// Fast-reroute (RFC 4090) tests: backup pre-signalling, failure switchover
// with stable labels, and the persistence consequence (FRR-protected LSPs
// keep their label content across intra-month failures).
#include <gtest/gtest.h>

#include "mpls/rsvp.h"
#include "util/rng.h"

namespace mum::mpls {
namespace {

using topo::AsTopology;
using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// Diamond with disjoint arms: a-b-d and a-c-d.
struct FrrFixture {
  FrrFixture() : topo(1) {
    a = topo.add_router(ip(1), Vendor::kJuniper, true);
    b = topo.add_router(ip(2), Vendor::kJuniper, false);
    c = topo.add_router(ip(3), Vendor::kJuniper, false);
    d = topo.add_router(ip(4), Vendor::kJuniper, true);
    ab = topo.add_link(a, b, ip(101), ip(102), 1);
    ac = topo.add_link(a, c, ip(103), ip(104), 1);
    bd = topo.add_link(b, d, ip(105), ip(106), 1);
    cd = topo.add_link(c, d, ip(107), ip(108), 1);
    igp = igp::IgpState::compute(topo);
    for (std::size_t i = 0; i < topo.router_count(); ++i) {
      pools.emplace_back(Vendor::kJuniper);
    }
  }

  RsvpTePlane make_plane(bool frr) {
    RsvpConfig config;
    config.frr = frr;
    config.diverse_route_prob = 0.0;
    return RsvpTePlane(&topo, &igp, config);
  }

  AsTopology topo;
  igp::IgpState igp;
  std::vector<LabelPool> pools;
  RouterId a, b, c, d;
  topo::LinkId ab, ac, bd, cd;
};

TEST(Frr, BackupPreSignalledAndDisjoint) {
  FrrFixture f;
  auto plane = f.make_plane(true);
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  const TeLsp& lsp = plane.lsp(ids[0]);
  ASSERT_FALSE(lsp.backup_hops.empty());
  // Link-disjoint on the diamond: primary and backup share no link.
  std::set<topo::LinkId> primary_links;
  for (const auto& hop : lsp.hops) primary_links.insert(hop.in_link);
  for (const auto& hop : lsp.backup_hops) {
    EXPECT_FALSE(primary_links.contains(hop.in_link));
  }
  EXPECT_EQ(lsp.backup_hops.back().router, f.d);
}

TEST(Frr, NoBackupWhenDisabled) {
  FrrFixture f;
  auto plane = f.make_plane(false);
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  EXPECT_TRUE(plane.lsp(ids[0]).backup_hops.empty());
}

TEST(Frr, ActivateSwitchesActiveHopsWithoutNewLabels) {
  FrrFixture f;
  auto plane = f.make_plane(true);
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  const std::uint64_t allocated_before = f.pools[f.b].allocated() +
                                         f.pools[f.c].allocated() +
                                         f.pools[f.d].allocated();
  const auto backup_before = plane.lsp(ids[0]).backup_hops;

  std::vector<bool> down(f.topo.link_count(), false);
  down[plane.lsp(ids[0]).hops[0].in_link] = true;  // break the primary
  ASSERT_TRUE(plane.crosses_down_link(ids[0], down));
  ASSERT_TRUE(plane.activate_backup(ids[0], down));

  const TeLsp& lsp = plane.lsp(ids[0]);
  EXPECT_TRUE(lsp.on_backup);
  EXPECT_EQ(lsp.active_hops(), lsp.backup_hops);
  EXPECT_EQ(lsp.backup_hops, backup_before);  // labels unchanged
  EXPECT_EQ(f.pools[f.b].allocated() + f.pools[f.c].allocated() +
                f.pools[f.d].allocated(),
            allocated_before);  // no fresh labels drawn
  EXPECT_FALSE(plane.crosses_down_link(ids[0], down));  // active path is up
}

TEST(Frr, ActivateFailsWhenBackupAlsoBroken) {
  FrrFixture f;
  auto plane = f.make_plane(true);
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  std::vector<bool> down(f.topo.link_count(), true);  // everything down
  EXPECT_FALSE(plane.activate_backup(ids[0], down));
  EXPECT_FALSE(plane.lsp(ids[0]).on_backup);
}

TEST(Frr, RevertToPrimary) {
  FrrFixture f;
  auto plane = f.make_plane(true);
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  std::vector<bool> down(f.topo.link_count(), false);
  down[plane.lsp(ids[0]).hops[0].in_link] = true;
  ASSERT_TRUE(plane.activate_backup(ids[0], down));
  plane.revert_to_primary(ids[0]);
  EXPECT_FALSE(plane.lsp(ids[0]).on_backup);
  EXPECT_EQ(plane.lsp(ids[0]).active_hops(), plane.lsp(ids[0]).hops);
}

TEST(Frr, ResignalClearsBackupState) {
  FrrFixture f;
  auto plane = f.make_plane(true);
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  std::vector<bool> down(f.topo.link_count(), false);
  down[plane.lsp(ids[0]).hops[0].in_link] = true;
  ASSERT_TRUE(plane.activate_backup(ids[0], down));
  std::vector<topo::LinkId> route;
  for (const auto& hop : plane.lsp(ids[0]).backup_hops) {
    route.push_back(hop.in_link);
  }
  plane.resignal_over(ids[0], route, f.pools);
  EXPECT_FALSE(plane.lsp(ids[0]).on_backup);
}

TEST(Frr, LineTopologyHasNoDisjointBackup) {
  // a - b - d only: no alternative route => no backup.
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, true);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  const auto d = topo.add_router(ip(3), Vendor::kCisco, true);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(b, d, ip(103), ip(104), 1);
  const auto igp = igp::IgpState::compute(topo);
  RsvpConfig config;
  config.frr = true;
  RsvpTePlane plane(&topo, &igp, config);
  std::vector<LabelPool> pools(3, LabelPool(Vendor::kCisco));
  util::Rng rng(1);
  const auto ids = plane.signal(a, d, 1, pools, rng);
  EXPECT_TRUE(plane.lsp(ids[0]).backup_hops.empty());
}

}  // namespace
}  // namespace mum::mpls
