// Tests for the failure/reconvergence machinery: SPF with excluded links,
// RSVP-TE re-signalling over new routes, LER-enablement gating, and the
// month-context failure application.
#include <gtest/gtest.h>

#include "gen/campaign.h"
#include "gen/internet.h"
#include "igp/spf.h"
#include "mpls/rsvp.h"
#include "probe/forwarder.h"
#include "util/rng.h"

namespace mum {
namespace {

using topo::AsTopology;
using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// Diamond: a-b-d / a-c-d, all cost 1.
struct Diamond {
  Diamond() : topo(1) {
    a = topo.add_router(ip(1), Vendor::kJuniper, true);
    b = topo.add_router(ip(2), Vendor::kJuniper, false);
    c = topo.add_router(ip(3), Vendor::kJuniper, false);
    d = topo.add_router(ip(4), Vendor::kJuniper, true);
    ab = topo.add_link(a, b, ip(101), ip(102), 1);
    ac = topo.add_link(a, c, ip(103), ip(104), 1);
    bd = topo.add_link(b, d, ip(105), ip(106), 1);
    cd = topo.add_link(c, d, ip(107), ip(108), 1);
  }
  AsTopology topo;
  RouterId a, b, c, d;
  topo::LinkId ab, ac, bd, cd;
};

TEST(SpfLinkDown, FailureRemovesEcmpBranch) {
  Diamond f;
  std::vector<bool> down(f.topo.link_count(), false);
  down[f.ab] = true;
  const auto igp = igp::IgpState::compute(f.topo, &down);
  const auto& nhs = igp.rib(f.a).nexthops(f.d);
  ASSERT_EQ(nhs.size(), 1u);
  EXPECT_EQ(nhs[0].neighbor, f.c);
  EXPECT_EQ(igp.rib(f.a).distance(f.d), 2u);
}

TEST(SpfLinkDown, FailureLengthensPath) {
  Diamond f;
  std::vector<bool> down(f.topo.link_count(), false);
  down[f.ab] = true;
  down[f.ac] = true;
  const auto igp = igp::IgpState::compute(f.topo, &down);
  EXPECT_FALSE(igp.rib(f.a).reachable(f.d));  // both arms cut
}

TEST(SpfLinkDown, NullFailureVectorMatchesBase) {
  Diamond f;
  const auto base = igp::IgpState::compute(f.topo);
  std::vector<bool> none(f.topo.link_count(), false);
  const auto same = igp::IgpState::compute(f.topo, &none);
  for (RouterId s = 0; s < f.topo.router_count(); ++s) {
    for (RouterId t = 0; t < f.topo.router_count(); ++t) {
      EXPECT_EQ(base.rib(s).distance(t), same.rib(s).distance(t));
    }
  }
}

TEST(RsvpResignal, CrossesDownLinkDetection) {
  Diamond f;
  const auto igp = igp::IgpState::compute(f.topo);
  mpls::RsvpConfig config;
  config.diverse_route_prob = 0.0;
  mpls::RsvpTePlane plane(&f.topo, &igp, config);
  std::vector<mpls::LabelPool> pools(4, mpls::LabelPool(Vendor::kJuniper));
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, pools, rng);
  ASSERT_EQ(ids.size(), 1u);

  std::vector<bool> down(f.topo.link_count(), false);
  // LSP takes a->?->d; mark whichever first link it uses as down.
  const auto first_link = plane.lsp(ids[0]).hops[0].in_link;
  down[first_link] = true;
  EXPECT_TRUE(plane.crosses_down_link(ids[0], down));
  down[first_link] = false;
  EXPECT_FALSE(plane.crosses_down_link(ids[0], down));
}

TEST(RsvpResignal, ResignalOverNewRouteChangesPathAndLabels) {
  Diamond f;
  const auto igp = igp::IgpState::compute(f.topo);
  mpls::RsvpTePlane plane(&f.topo, &igp, {});
  std::vector<mpls::LabelPool> pools(4, mpls::LabelPool(Vendor::kJuniper));
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, pools, rng);
  const auto before = plane.lsp(ids[0]);

  // Re-route via the other arm.
  const RouterId old_mid = before.hops[0].router;
  const RouterId new_mid = old_mid == f.b ? f.c : f.b;
  const topo::LinkId l1 = old_mid == f.b ? f.ac : f.ab;
  const topo::LinkId l2 = old_mid == f.b ? f.cd : f.bd;
  plane.resignal_over(ids[0], {l1, l2}, pools);
  const auto& after = plane.lsp(ids[0]);
  EXPECT_EQ(after.hops[0].router, new_mid);
  EXPECT_EQ(after.hops.back().router, f.d);
  EXPECT_EQ(after.resignal_count, 1u);
}

TEST(RsvpResignal, EmptyRouteIsNoop) {
  Diamond f;
  const auto igp = igp::IgpState::compute(f.topo);
  mpls::RsvpTePlane plane(&f.topo, &igp, {});
  std::vector<mpls::LabelPool> pools(4, mpls::LabelPool(Vendor::kJuniper));
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, pools, rng);
  const auto before = plane.lsp(ids[0]);
  plane.resignal_over(ids[0], {}, pools);
  EXPECT_EQ(plane.lsp(ids[0]).resignal_count, 0u);
  EXPECT_EQ(plane.lsp(ids[0]).hops.size(), before.hops.size());
}

// --- LER gating ---------------------------------------------------------

TEST(LerGating, FullShareAlwaysEnabled) {
  probe::AsDataPlane plane;
  plane.ler_share = 1.0;
  for (RouterId r = 0; r < 64; ++r) {
    EXPECT_TRUE(probe::ler_enabled(plane, r));
  }
}

TEST(LerGating, ZeroShareAlwaysDisabled) {
  probe::AsDataPlane plane;
  plane.ler_share = 0.0;
  for (RouterId r = 0; r < 64; ++r) {
    EXPECT_FALSE(probe::ler_enabled(plane, r));
  }
}

TEST(LerGating, ShareApproximatesFraction) {
  probe::AsDataPlane plane;
  plane.ler_share = 0.4;
  plane.ler_salt = 99;
  int enabled = 0;
  const int n = 4000;
  for (RouterId r = 0; r < static_cast<RouterId>(n); ++r) {
    enabled += probe::ler_enabled(plane, r) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(enabled) / n, 0.4, 0.04);
}

TEST(LerGating, MonotoneInShare) {
  // A router enabled at share s stays enabled at any s' > s.
  probe::AsDataPlane lo, hi;
  lo.ler_share = 0.3;
  hi.ler_share = 0.7;
  lo.ler_salt = hi.ler_salt = 7;
  for (RouterId r = 0; r < 500; ++r) {
    if (probe::ler_enabled(lo, r)) {
      EXPECT_TRUE(probe::ler_enabled(hi, r));
    }
  }
}

// --- MonthContext failures ----------------------------------------------

gen::GenConfig small_config() {
  gen::GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  return c;
}

TEST(MonthFailures, FailuresMonotoneWithinMonth) {
  // A link down at sub s stays down at sub s' > s, so the set of ASes with
  // an IGP override can only grow within a month.
  gen::GenConfig config = small_config();
  config.as_maintenance_prob = 1.0;
  config.link_fail_prob = 0.3;
  gen::Internet internet(config);
  gen::MonthContext ctx = internet.instantiate(50);

  auto overridden = [&](int sub) {
    ctx.apply_flaps(sub, 0.0);
    std::set<std::uint32_t> out;
    for (const std::uint32_t asn : internet.modeled_asns()) {
      const auto* plane = ctx.plane_of(asn);
      const auto* base = &internet.modeled(asn)->igp;
      if (plane->igp != base) out.insert(asn);
    }
    return out;
  };
  const auto at0 = overridden(0);
  const auto at2 = overridden(2);
  for (const std::uint32_t asn : at0) {
    EXPECT_TRUE(at2.contains(asn)) << "AS" << asn;
  }
  EXPECT_GE(at2.size(), at0.size());
}

TEST(MonthFailures, NoMaintenanceNoOverride) {
  gen::GenConfig config = small_config();
  config.as_maintenance_prob = 0.0;
  gen::Internet internet(config);
  gen::MonthContext ctx = internet.instantiate(50);
  ctx.apply_flaps(2, 0.0);
  for (const std::uint32_t asn : internet.modeled_asns()) {
    EXPECT_EQ(ctx.plane_of(asn)->igp, &internet.modeled(asn)->igp);
  }
}

TEST(MonthFailures, CampaignSurvivesHeavyFailures) {
  // Even with aggressive failures, the campaign must produce annotatable
  // traces (walks truncate gracefully, never crash or loop).
  gen::GenConfig config = small_config();
  config.as_maintenance_prob = 1.0;
  config.link_fail_prob = 0.5;
  gen::Internet internet(config);
  const auto ip2as = internet.build_ip2as();
  const auto month = gen::CampaignRunner(internet, ip2as).month(50);
  EXPECT_GT(month.cycle().trace_count(), 100u);
}

}  // namespace
}  // namespace mum
