#include "core/tree.h"

#include "core/filters.h"

#include <gtest/gtest.h>

namespace mum::lpr {
namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

LspObservation obs(std::uint32_t ingress, std::uint32_t egress,
                   std::vector<std::pair<std::uint32_t, std::uint32_t>> hops,
                   std::uint32_t dst_asn = 9) {
  LspObservation o;
  o.lsp.asn = 65001;
  o.lsp.ingress = ip(ingress);
  o.lsp.egress = ip(egress);
  for (const auto& [addr, label] : hops) {
    o.lsp.lsrs.push_back(LsrHop{ip(addr), {label}});
  }
  o.dst_asn = dst_asn;
  return o;
}

TEST(EgressTree, GroupsByEgressNotIngress) {
  // Two LSPs with different ingresses toward the same egress join one tree.
  const auto trees = build_egress_trees(
      {obs(1, 100, {{10, 500}}), obs(2, 100, {{11, 501}}),
       obs(3, 200, {{12, 700}})});
  ASSERT_EQ(trees.size(), 2u);
  const auto& t100 =
      trees[0].key.egress == ip(100) ? trees[0] : trees[1];
  EXPECT_EQ(t100.branches.size(), 2u);
  EXPECT_EQ(t100.ingresses.size(), 2u);
}

TEST(EgressTree, SingleBranchClass) {
  const auto trees = build_egress_trees({obs(1, 100, {{10, 500}})});
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].tree_class, TreeClass::kSingleBranch);
}

TEST(EgressTree, LdpConsistentTree) {
  // LDP invariant: router 10 shows label 500 regardless of upstream.
  const auto trees = build_egress_trees(
      {obs(1, 100, {{10, 500}}), obs(2, 100, {{10, 500}}),
       obs(3, 100, {{11, 600}, {10, 500}})});
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].tree_class, TreeClass::kLdpConsistent);
  EXPECT_EQ(trees[0].max_labels_per_router, 1);
  // Router 10 is fed from three upstream addresses: in-degree 3.
  EXPECT_EQ(trees[0].max_in_degree, 3);
}

TEST(EgressTree, MultiFecTree) {
  // Router 10 shows two labels toward the same egress: RSVP-TE.
  const auto trees = build_egress_trees(
      {obs(1, 100, {{10, 500}}), obs(2, 100, {{10, 501}})});
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].tree_class, TreeClass::kMultiFec);
  EXPECT_EQ(trees[0].max_labels_per_router, 2);
}

TEST(EgressTree, CrossIngressMultiFecInvisibleToIotpIndexing) {
  // The Sec.-5 gain: two branches from DIFFERENT ingresses with different
  // labels at a shared router. IOTP indexing puts them in separate IOTPs
  // (both Mono-LSP); tree indexing exposes the multiple FECs.
  const std::vector<LspObservation> observations = {
      obs(1, 100, {{10, 500}}), obs(2, 100, {{10, 501}})};
  const auto iotps = group_iotps(observations);
  EXPECT_EQ(iotps.size(), 2u);  // fragmented under IOTP indexing
  const auto trees = build_egress_trees(observations);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].tree_class, TreeClass::kMultiFec);
}

TEST(EgressTree, DeduplicatesBranches) {
  const auto o = obs(1, 100, {{10, 500}});
  const auto trees = build_egress_trees({o, o, o});
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].branches.size(), 1u);
}

TEST(EgressTree, SeparateAsesSeparateTrees) {
  auto a = obs(1, 100, {{10, 500}});
  auto b = obs(1, 100, {{10, 500}});
  b.lsp.asn = 65002;
  const auto trees = build_egress_trees({a, b});
  EXPECT_EQ(trees.size(), 2u);
}

TEST(EgressTree, SummaryCounts) {
  const auto trees = build_egress_trees(
      {obs(1, 100, {{10, 500}}), obs(2, 100, {{10, 501}}),   // multi-FEC
       obs(1, 200, {{20, 600}}), obs(2, 200, {{20, 600}}),   // LDP tree
       obs(1, 300, {{30, 700}})});                           // single
  const TreeStats stats = summarize(trees);
  EXPECT_EQ(stats.trees, 3u);
  EXPECT_EQ(stats.multi_fec, 1u);
  EXPECT_EQ(stats.ldp_consistent, 1u);
  EXPECT_EQ(stats.single_branch, 1u);
  // The LDP tree has TWO branches (different ingresses => different LSPs).
  EXPECT_EQ(stats.branches_total, 2u + 2u + 1u);
}

TEST(EgressTree, TreeIndexingClassifiesAtLeastAsManyBranches) {
  // The Sec.-5 claim: every LSP falls in exactly one tree, and trees are
  // never more fragmented than IOTPs.
  std::vector<LspObservation> observations;
  for (std::uint32_t i = 1; i <= 6; ++i) {
    observations.push_back(
        obs(i, 100 + (i % 2) * 100, {{10 + i, 500 + i}}, 9 + i));
  }
  const auto trees = build_egress_trees(observations);
  const auto iotps = group_iotps(observations);
  EXPECT_LE(trees.size(), iotps.size());
  std::uint64_t tree_branches = 0;
  for (const auto& t : trees) tree_branches += t.branches.size();
  std::uint64_t iotp_branches = 0;
  for (const auto& r : iotps) iotp_branches += r.variants.size();
  EXPECT_EQ(tree_branches, iotp_branches);  // same LSPs, coarser grouping
}

TEST(EgressTree, ClassNames) {
  EXPECT_STREQ(to_cstring(TreeClass::kSingleBranch), "Single-Branch");
  EXPECT_STREQ(to_cstring(TreeClass::kLdpConsistent), "LDP-Consistent");
  EXPECT_STREQ(to_cstring(TreeClass::kMultiFec), "Multi-FEC");
}

}  // namespace
}  // namespace mum::lpr
