#include <gtest/gtest.h>

#include "util/strings.h"
#include "util/table.h"

namespace mum::util {
namespace {

// --- TextTable ----------------------------------------------------------

TEST(TextTable, RenderAlignsColumns) {
  TextTable t({"name", "count"});
  t.add_row({"alpha", "5"});
  t.add_row({"b", "12345"});
  const std::string out = t.render();
  // Header present, separator present, all rows same length.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  std::size_t line_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, line_len);
    pos = next + 1;
  }
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.render().find("x"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, CsvPlainCellsUnquoted) {
  TextTable t({"k"});
  t.add_row({"plain"});
  EXPECT_EQ(t.render_csv(), "k\nplain\n");
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_int(-42), "-42");
  EXPECT_EQ(TextTable::fmt_pct(0.1234, 1), "12.3%");
  EXPECT_EQ(TextTable::fmt_pct(1.0, 0), "100%");
}

// --- strings ------------------------------------------------------------

TEST(Strings, SplitBasic) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("..a.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "a");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitEmptyStringYieldsOneField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, ParseU64Valid) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"),
            18446744073709551615ull);  // UINT64_MAX
}

TEST(Strings, ParseU64Invalid) {
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("12a").has_value());
  EXPECT_FALSE(parse_u64(" 1").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // overflow
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("foo", ""));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_FALSE(starts_with("xfoo", "foo"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace mum::util
