// Ground-truth validation: LPR's inferred classes must match the known
// configuration of the synthetic ASes — the in-silico equivalent of the
// paper's lab validation ("behaviors have been experimentally tested and
// validated in our lab ... with different configurations").
//
// We build controlled single-AS scenarios with a KNOWN control plane,
// probe them, run the full LPR pipeline, and assert the classification.
#include <gtest/gtest.h>

#include "core/report.h"
#include "mpls/ldp.h"
#include "mpls/rsvp.h"
#include "probe/traceroute.h"
#include "topo/builder.h"
#include "util/rng.h"

namespace mum {
namespace {

using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// A controlled lab: one AS under test, probed directly (no inter-domain
// machinery), with destinations in two fake external ASes so the TargetAS
// and TransitDiversity filters pass.
class Lab {
 public:
  explicit Lab(const topo::BuildParams& params) {
    util::Rng rng(42);
    topo_ = std::make_unique<topo::AsTopology>(
        topo::build_as_topology(params, rng));
    igp_ = std::make_unique<igp::IgpState>(igp::IgpState::compute(*topo_));
    for (std::size_t i = 0; i < topo_->router_count(); ++i) {
      pools_.emplace_back(topo_->router(static_cast<RouterId>(i)).vendor);
    }
    plane_.asn = params.asn;
    plane_.topo = topo_.get();
    plane_.igp = igp_.get();

    ip2as_.add_prefix(params.block, params.asn);
    ip2as_.add_prefix(net::Ipv4Prefix(ip(0x20000000), 8), 65098);
    ip2as_.add_prefix(net::Ipv4Prefix(ip(0x30000000), 8), 65099);
  }

  void enable_ldp(bool php = true) {
    mpls::LdpConfig config;
    config.php = php;
    ldp_ = mpls::LdpPlane::build(*topo_, *igp_, config, pools_);
    plane_.ldp = &*ldp_;
  }

  void enable_te(int lsps_per_pair) {
    rsvp_ = std::make_unique<mpls::RsvpTePlane>(topo_.get(), igp_.get(),
                                                mpls::RsvpConfig{});
    util::Rng rng(7);
    const auto borders = topo_->border_routers();
    for (const RouterId i : borders) {
      for (const RouterId e : borders) {
        if (i == e) continue;
        const auto ids = rsvp_->signal(i, e, lsps_per_pair, pools_, rng);
        if (!ids.empty()) plane_.te_policy.pairs[{i, e}] = ids;
      }
    }
    plane_.rsvp = rsvp_.get();
    plane_.te_policy.te_share = 1.0;
  }

  // Probe `n_dests` destinations split across the two external ASes,
  // entering at every border pair; returns the classified report.
  lpr::CycleReport run(int n_dests) {
    dataset::Snapshot snap;
    snap.cycle_id = 1;
    const auto borders = topo_->border_routers();
    probe::Monitor monitor;
    monitor.id = 0;
    monitor.addr = ip(0x40000001);
    probe::TraceOptions options;
    options.reply_loss = 0.0;
    util::Rng rng(9);

    for (int d = 0; d < n_dests; ++d) {
      const std::uint32_t base = d % 2 == 0 ? 0x20000000u : 0x30000000u;
      const net::Ipv4Addr dst = ip(base + (static_cast<std::uint32_t>(d)
                                           << 8) + 1);
      for (std::size_t bi = 0; bi < borders.size(); ++bi) {
        for (std::size_t be = 0; be < borders.size(); ++be) {
          if (bi == be) continue;
          probe::PathSpec path;
          probe::SegmentSpec seg;
          seg.plane = &plane_;
          seg.ingress = borders[bi];
          seg.egress = borders[be];
          seg.entry_iface = ip(0x50000000 + static_cast<std::uint32_t>(
                                                bi * 64 + be) * 2);
          // Entry interfaces must map to the AS under test.
          ip2as_.add_prefix(net::Ipv4Prefix(seg.entry_iface, 31),
                            plane_.asn);
          path.segments.push_back(seg);
          path.dst = dst;
          snap.traces.push_back(
              probe::trace_route(monitor, path, options, rng));
        }
      }
    }
    ip2as_.annotate(snap.traces);

    // Every router answers in the lab; Persistence sees a stable network.
    const auto extracted = lpr::extract_lsps(snap, ip2as_);
    return lpr::run_pipeline(extracted, {extracted}, {});
  }

  topo::BuildParams lab_params() const;

  std::unique_ptr<topo::AsTopology> topo_;
  std::unique_ptr<igp::IgpState> igp_;
  std::vector<mpls::LabelPool> pools_;
  std::optional<mpls::LdpPlane> ldp_;
  std::unique_ptr<mpls::RsvpTePlane> rsvp_;
  probe::AsDataPlane plane_;
  dataset::Ip2As ip2as_;
};

topo::BuildParams base_params() {
  topo::BuildParams p;
  p.asn = 65001;
  p.block = net::Ipv4Prefix(ip(0x10000000), 15);
  p.core_routers = 6;
  p.pop_routers = 10;
  p.border_share = 0.5;
  p.router_response_prob = 1.0;  // lab: everything answers
  return p;
}

TEST(GroundTruth, PureLdpUniquePathsIsAllMonoLsp) {
  topo::BuildParams p = base_params();
  p.uniform_costs = false;  // unique shortest paths
  p.parallel_link_prob = 0.0;
  Lab lab(p);
  lab.enable_ldp();
  const auto report = lab.run(24);
  ASSERT_GT(report.global.total(), 5u);
  EXPECT_EQ(report.global.multi_fec, 0u);
  // Random link costs may still tie occasionally, so a stray ECMP pair can
  // exist — but plain LDP must be overwhelmingly Mono-LSP and never TE.
  EXPECT_GE(report.global.mono_lsp * 10, report.global.total() * 8);
}

TEST(GroundTruth, LdpWithEcmpYieldsMonoFecNeverMultiFec) {
  topo::BuildParams p = base_params();
  p.uniform_costs = true;
  p.heavy_cost_share = 0.0;
  p.parallel_link_prob = 0.3;
  Lab lab(p);
  lab.enable_ldp();
  const auto report = lab.run(24);
  ASSERT_GT(report.global.total(), 5u);
  // The critical soundness property: plain LDP+ECMP must NEVER be inferred
  // as TE (Multi-FEC) — labels are router-scoped.
  EXPECT_EQ(report.global.multi_fec, 0u);
  EXPECT_GT(report.global.mono_fec, 0u);
}

TEST(GroundTruth, PureBundlesYieldParallelLinksSubclass) {
  topo::BuildParams p = base_params();
  p.uniform_costs = true;
  p.heavy_cost_share = 0.6;   // suppress router-level ECMP
  p.parallel_link_prob = 0.7; // bundle almost everything
  Lab lab(p);
  lab.enable_ldp();
  const auto report = lab.run(24);
  ASSERT_GT(report.global.mono_fec, 0u);
  EXPECT_GE(report.global.parallel_links, report.global.routers_disjoint);
}

TEST(GroundTruth, RsvpTeYieldsMultiFec) {
  topo::BuildParams p = base_params();
  p.uniform_costs = false;
  p.parallel_link_prob = 0.0;
  Lab lab(p);
  lab.enable_ldp();
  lab.enable_te(/*lsps_per_pair=*/3);
  const auto report = lab.run(24);
  ASSERT_GT(report.global.total(), 5u);
  // TE everywhere with >= 2 dests per pair: Multi-FEC dominates; no IOTP
  // may be classified as ECMP (there is none in this lab).
  EXPECT_GT(report.global.multi_fec, report.global.total() / 2);
  EXPECT_EQ(report.global.mono_fec, 0u);
}

TEST(GroundTruth, SingleTeLspPerPairLooksMonoLsp) {
  topo::BuildParams p = base_params();
  p.uniform_costs = false;
  p.parallel_link_prob = 0.0;
  Lab lab(p);
  lab.enable_ldp();
  lab.enable_te(/*lsps_per_pair=*/1);
  const auto report = lab.run(24);
  // One pinned LSP per pair: indistinguishable from Mono-LSP (the paper's
  // early-Vodafone situation).
  EXPECT_EQ(report.global.multi_fec, 0u);
  EXPECT_EQ(report.global.mono_lsp, report.global.total());
}

TEST(GroundTruth, NoPhpStillClassifiesCorrectly) {
  topo::BuildParams p = base_params();
  p.uniform_costs = true;
  p.heavy_cost_share = 0.0;
  p.parallel_link_prob = 0.3;
  Lab lab(p);
  lab.enable_ldp(/*php=*/false);
  const auto report = lab.run(24);
  ASSERT_GT(report.global.total(), 5u);
  EXPECT_EQ(report.global.multi_fec, 0u);
  // Without PHP the egress quotes its own label, so LSPs always share the
  // egress LER as a common IP: nothing can be Unclassified.
  EXPECT_EQ(report.global.unclassified, 0u);
}

}  // namespace
}  // namespace mum
