#include "core/classify.h"

#include <gtest/gtest.h>

namespace mum::lpr {
namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

LsrHop hop(std::uint32_t addr, std::uint32_t label) {
  return LsrHop{ip(addr), {label}};
}

Lsp lsp_of(std::vector<LsrHop> lsrs) {
  Lsp lsp;
  lsp.asn = 65001;
  lsp.ingress = ip(0xAA);
  lsp.egress = ip(0xBB);
  lsp.lsrs = std::move(lsrs);
  return lsp;
}

IotpRecord iotp_of(std::vector<Lsp> variants) {
  IotpRecord rec;
  rec.key = IotpKey{65001, ip(0xAA), ip(0xBB)};
  rec.variants = std::move(variants);
  rec.dst_asns = {1, 2};
  return rec;
}

TEST(Classify, SingleVariantIsMonoLsp) {
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(2, 200)})});
  classify_iotp(rec);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMonoLsp);
  EXPECT_EQ(rec.mono_fec_kind, MonoFecKind::kNotApplicable);
  EXPECT_EQ(rec.width, 1);
  EXPECT_EQ(rec.length, 2);
  EXPECT_EQ(rec.symmetry, 0);
}

TEST(Classify, EmptyVariantsIsMonoLspDegenerate) {
  auto rec = iotp_of({});
  classify_iotp(rec);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMonoLsp);
  EXPECT_EQ(rec.width, 0);
}

TEST(Classify, MultiFecOnCommonIpWithTwoLabels) {
  // Same IP path, different labels at every hop (Fig. 4(b)).
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(2, 200)}),
                      lsp_of({hop(1, 101), hop(2, 201)})});
  classify_iotp(rec);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMultiFec);
  EXPECT_EQ(rec.width, 2);
  EXPECT_EQ(rec.symmetry, 0);
}

TEST(Classify, MultiFecDetectedAtSingleConvergencePoint) {
  // Branches disjoint except one shared router where labels differ.
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(9, 500)}),
                      lsp_of({hop(2, 300), hop(9, 501)})});
  classify_iotp(rec);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMultiFec);
}

TEST(Classify, EcmpRoutersDisjoint) {
  // Fig. 4(c): branches differ in both IPs and labels somewhere, but at the
  // common IP (9) the label is identical => one FEC, ECMP diversity.
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(9, 500)}),
                      lsp_of({hop(2, 300), hop(9, 500)})});
  classify_iotp(rec);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMonoFec);
  EXPECT_EQ(rec.mono_fec_kind, MonoFecKind::kRoutersDisjoint);
}

TEST(Classify, EcmpParallelLinks) {
  // Fig. 4(d): identical label sequences, different addresses at one hop
  // (bundle interfaces), converging on a common IP later.
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(9, 500)}),
                      lsp_of({hop(2, 100), hop(9, 500)})});
  classify_iotp(rec);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMonoFec);
  EXPECT_EQ(rec.mono_fec_kind, MonoFecKind::kParallelLinks);
}

TEST(Classify, NoCommonIpIsUnclassified) {
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(3, 500)}),
                      lsp_of({hop(2, 300), hop(4, 501)})});
  classify_iotp(rec);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kUnclassified);
}

TEST(Classify, MultiFecWinsOverEcmpSignals) {
  // Two common IPs: one shows a single label, the other two labels.
  // Algorithm 1 classifies Multi-FEC as soon as ANY common IP differs.
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(9, 500)}),
                      lsp_of({hop(1, 100), hop(9, 501)})});
  classify_iotp(rec);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMultiFec);
}

TEST(Classify, AsymmetricBranchLengths) {
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(2, 200), hop(9, 500)}),
                      lsp_of({hop(3, 300), hop(9, 500)})});
  classify_iotp(rec);
  EXPECT_EQ(rec.length, 3);
  EXPECT_EQ(rec.symmetry, 1);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMonoFec);
  EXPECT_EQ(rec.mono_fec_kind, MonoFecKind::kRoutersDisjoint);
}

TEST(Classify, EgressLabeledHopNotCountedInLength) {
  Lsp lsp = lsp_of({hop(1, 100), hop(2, 200)});
  lsp.egress_labeled = true;  // non-PHP: hop(2) is the Egress LER
  auto rec = iotp_of({lsp});
  classify_iotp(rec);
  EXPECT_EQ(rec.length, 1);
}

TEST(Classify, CommonIpsComputation) {
  const auto rec = iotp_of({lsp_of({hop(1, 1), hop(2, 2), hop(9, 9)}),
                            lsp_of({hop(1, 1), hop(3, 3), hop(9, 9)})});
  const auto common = common_ips(rec);
  EXPECT_EQ(common, (std::set<net::Ipv4Addr>{ip(1), ip(9)}));
}

TEST(Classify, CommonIpsIgnoreRepeatsWithinOneBranch) {
  // An address appearing twice in the SAME branch is not common.
  const auto rec = iotp_of({lsp_of({hop(1, 1), hop(1, 2)}),
                            lsp_of({hop(3, 3)})});
  EXPECT_TRUE(common_ips(rec).empty());
}

TEST(Classify, LabelsAtCollectsTopLabels) {
  const auto rec = iotp_of({lsp_of({hop(1, 100)}),
                            lsp_of({hop(1, 101)})});
  EXPECT_EQ(labels_at(rec, ip(1)), (std::set<std::uint32_t>{100, 101}));
  EXPECT_TRUE(labels_at(rec, ip(42)).empty());
}

TEST(Classify, AliasHeuristicRescuesMonoFec) {
  // No common IP; both branches' last LSRs advertise the same label
  // sequence => upstream of the (hidden) egress looks like one FEC.
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(3, 500)}),
                      lsp_of({hop(2, 100), hop(4, 500)})});
  ClassifyConfig config;
  config.alias_resolution_heuristic = true;
  classify_iotp(rec, config);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMonoFec);
  EXPECT_TRUE(rec.classified_by_alias_heuristic);
  EXPECT_EQ(rec.mono_fec_kind, MonoFecKind::kParallelLinks);
}

TEST(Classify, AliasHeuristicRescuesMultiFec) {
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(3, 500)}),
                      lsp_of({hop(2, 300), hop(4, 777)})});
  ClassifyConfig config;
  config.alias_resolution_heuristic = true;
  classify_iotp(rec, config);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMultiFec);
  EXPECT_TRUE(rec.classified_by_alias_heuristic);
}

TEST(Classify, AliasHeuristicOffLeavesUnclassified) {
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(3, 500)}),
                      lsp_of({hop(2, 100), hop(4, 500)})});
  classify_iotp(rec);  // default config
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kUnclassified);
  EXPECT_FALSE(rec.classified_by_alias_heuristic);
}

TEST(Classify, AliasHeuristicDoesNotFireWhenCommonIpExists) {
  auto rec = iotp_of({lsp_of({hop(1, 100), hop(9, 500)}),
                      lsp_of({hop(2, 300), hop(9, 500)})});
  ClassifyConfig config;
  config.alias_resolution_heuristic = true;
  classify_iotp(rec, config);
  EXPECT_FALSE(rec.classified_by_alias_heuristic);
  EXPECT_EQ(rec.tunnel_class, TunnelClass::kMonoFec);
}

TEST(Classify, ClassCountsAggregation) {
  std::vector<IotpRecord> records;
  records.push_back(iotp_of({lsp_of({hop(1, 1)})}));  // Mono-LSP
  records.push_back(iotp_of({lsp_of({hop(1, 100)}),
                             lsp_of({hop(1, 101)})}));  // Multi-FEC
  records.push_back(iotp_of({lsp_of({hop(1, 100), hop(9, 5)}),
                             lsp_of({hop(2, 100), hop(9, 5)})}));  // parallel
  records.push_back(iotp_of({lsp_of({hop(1, 7), hop(9, 5)}),
                             lsp_of({hop(2, 8), hop(9, 5)})}));  // disjoint
  records.push_back(iotp_of({lsp_of({hop(1, 1), hop(3, 3)}),
                             lsp_of({hop(2, 2), hop(4, 4)})}));  // unclass.
  const ClassCounts counts = classify_all(records);
  EXPECT_EQ(counts.mono_lsp, 1u);
  EXPECT_EQ(counts.multi_fec, 1u);
  EXPECT_EQ(counts.mono_fec, 2u);
  EXPECT_EQ(counts.parallel_links, 1u);
  EXPECT_EQ(counts.routers_disjoint, 1u);
  EXPECT_EQ(counts.unclassified, 1u);
  EXPECT_EQ(counts.total(), 5u);
}

TEST(Classify, ClassNamesStable) {
  EXPECT_STREQ(to_cstring(TunnelClass::kMonoLsp), "Mono-LSP");
  EXPECT_STREQ(to_cstring(TunnelClass::kMultiFec), "Multi-FEC");
  EXPECT_STREQ(to_cstring(TunnelClass::kMonoFec), "Mono-FEC");
  EXPECT_STREQ(to_cstring(TunnelClass::kUnclassified), "Unclassified");
  EXPECT_STREQ(to_cstring(MonoFecKind::kParallelLinks), "Parallel Links");
  EXPECT_STREQ(to_cstring(MonoFecKind::kRoutersDisjoint), "Routers Disjoint");
}

TEST(Model, LspContentHashDiscriminates) {
  const Lsp a = lsp_of({hop(1, 100)});
  Lsp b = a;
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.lsrs[0].labels[0] = 101;
  EXPECT_NE(a.content_hash(), b.content_hash());
  Lsp c = a;
  c.lsrs[0].addr = ip(2);
  EXPECT_NE(a.content_hash(), c.content_hash());
  Lsp d = a;
  d.egress = ip(0xCC);
  EXPECT_NE(a.content_hash(), d.content_hash());
}

TEST(Model, LspEqualityIgnoresEgressLabeledFlag) {
  // egress_labeled is derived metadata, not identity.
  Lsp a = lsp_of({hop(1, 100)});
  Lsp b = a;
  b.egress_labeled = !b.egress_labeled;
  EXPECT_EQ(a, b);
}

TEST(Model, ToStringMentionsEndpoints) {
  const Lsp lsp = lsp_of({hop(0x0A000001, 42)});
  const std::string s = lsp.to_string();
  EXPECT_NE(s.find("AS65001"), std::string::npos);
  EXPECT_NE(s.find("(42)"), std::string::npos);
}

}  // namespace
}  // namespace mum::lpr
