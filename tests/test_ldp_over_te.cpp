// LDP-over-RSVP tests: hub-tunnel selection, 2-entry stacks on the wire,
// and LPR's robustness to stacked tunnels (classification keys on the top
// label, which is what real LSRs base forwarding on).
#include <gtest/gtest.h>

#include "core/extract.h"
#include "core/filters.h"
#include "core/classify.h"
#include "mpls/ldp.h"
#include "mpls/rsvp.h"
#include "probe/traceroute.h"
#include "util/rng.h"

namespace mum::probe {
namespace {

using topo::AsTopology;
using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// Line a - h - m - e: ingress a, hub h, egress e; TE tunnel a=>h,
// LDP everywhere.
struct StackFixture {
  StackFixture() : topo(65001) {
    a = topo.add_router(ip(0x10000001), Vendor::kCisco, true);
    h = topo.add_router(ip(0x10000002), Vendor::kCisco, false);
    m = topo.add_router(ip(0x10000003), Vendor::kCisco, false);
    e = topo.add_router(ip(0x10000004), Vendor::kCisco, true);
    ah = topo.add_link(a, h, ip(0x10010001), ip(0x10010002), 1);
    hm = topo.add_link(h, m, ip(0x10010003), ip(0x10010004), 1);
    me = topo.add_link(m, e, ip(0x10010005), ip(0x10010006), 1);
    igp = igp::IgpState::compute(topo);
    for (std::size_t i = 0; i < topo.router_count(); ++i) {
      pools.emplace_back(Vendor::kCisco);
    }
    ldp = mpls::LdpPlane::build(topo, igp, {}, pools);
    rsvp.emplace(&topo, &igp, mpls::RsvpConfig{});
    util::Rng rng(3);
    hub_ids = rsvp->signal(a, h, 1, pools, rng);

    plane.asn = 65001;
    plane.topo = &topo;
    plane.igp = &igp;
    plane.ldp = &*ldp;
    plane.rsvp = &*rsvp;
    plane.te_policy.hub_tunnels[a] = hub_ids;
    plane.te_policy.ldp_over_te_share = 1.0;  // every pair rides the hub
  }

  PathSpec path() const {
    PathSpec p;
    SegmentSpec seg;
    seg.plane = &plane;
    seg.ingress = a;
    seg.egress = e;
    seg.entry_iface = ip(0x10020000);
    p.segments.push_back(seg);
    p.dst = ip(0x20000001);
    return p;
  }

  AsTopology topo;
  igp::IgpState igp;
  std::vector<mpls::LabelPool> pools;
  std::optional<mpls::LdpPlane> ldp;
  std::optional<mpls::RsvpTePlane> rsvp;
  std::vector<mpls::LspId> hub_ids;
  AsDataPlane plane;
  RouterId a, h, m, e;
  topo::LinkId ah, hm, me;
};

TEST(LdpOverTe, HubSelectionRespectsShare) {
  StackFixture f;
  EXPECT_TRUE(select_hub_tunnel(f.plane, f.a, f.e).has_value());
  f.plane.te_policy.ldp_over_te_share = 0.0;
  EXPECT_FALSE(select_hub_tunnel(f.plane, f.a, f.e).has_value());
}

TEST(LdpOverTe, HubSkippedWhenHubIsEndpoint) {
  StackFixture f;
  // Egress == hub: riding the tunnel would be pointless.
  EXPECT_FALSE(select_hub_tunnel(f.plane, f.a, f.h).has_value());
}

TEST(LdpOverTe, TunnelHopCarriesTwoEntryStack) {
  StackFixture f;
  const auto result = walk_path(f.path(), 5);
  ASSERT_TRUE(result.reached);
  // hops: entry(a), h (tunnel end, PHP popped outer => inner only? No: the
  // a=>h tunnel is ONE hop, so h is the tunnel PHP point AND tail: stack
  // shows just the inner LDP label), m (plain LDP), e (PHP, clean).
  ASSERT_EQ(result.hops.size(), 4u);
  EXPECT_TRUE(result.hops[0].labels.empty());
  EXPECT_EQ(result.hops[1].labels.depth(), 1u);  // inner label at the hub
  EXPECT_EQ(result.hops[1].labels.top().label(),
            f.ldp->label_of(f.h, f.e));
  EXPECT_EQ(result.hops[2].labels.depth(), 1u);  // plain LDP afterwards
  EXPECT_EQ(result.hops[2].labels.top().label(),
            f.ldp->label_of(f.m, f.e));
  EXPECT_TRUE(result.hops[3].labels.empty());    // egress PHP
}

TEST(LdpOverTe, LongerTunnelShowsDepthTwoInside) {
  // Move the hub one hop further: tunnel a=>m crosses h with a full stack.
  StackFixture f;
  util::Rng rng(4);
  const auto ids = f.rsvp->signal(f.a, f.m, 1, f.pools, rng);
  f.plane.te_policy.hub_tunnels[f.a] = ids;
  const auto result = walk_path(f.path(), 5);
  ASSERT_EQ(result.hops.size(), 4u);
  // h is INSIDE the tunnel: outer TE label over inner LDP label.
  EXPECT_EQ(result.hops[1].labels.depth(), 2u);
  EXPECT_EQ(result.hops[1].labels.entries()[1].label(),
            f.ldp->label_of(f.m, f.e));  // inner = hub's label for egress
  EXPECT_TRUE(result.hops[1].labels.entries()[1].bottom_of_stack());
  EXPECT_FALSE(result.hops[1].labels.entries()[0].bottom_of_stack());
  // m: tunnel tail after PHP => inner only.
  EXPECT_EQ(result.hops[2].labels.depth(), 1u);
}

TEST(LdpOverTe, ExtractionHandlesStackedRuns) {
  StackFixture f;
  util::Rng rng(4);
  const auto ids = f.rsvp->signal(f.a, f.m, 1, f.pools, rng);
  f.plane.te_policy.hub_tunnels[f.a] = ids;

  Monitor monitor;
  monitor.id = 0;
  monitor.addr = ip(0x30000001);
  TraceOptions options;
  options.reply_loss = 0.0;
  util::Rng obs_rng(1);
  dataset::Snapshot snap;
  snap.traces.push_back(trace_route(monitor, f.path(), options, obs_rng));

  dataset::Ip2As ip2as;
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x10000000), 8), 65001);
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x20000000), 8), 65099);
  ip2as.annotate(snap.traces);

  const auto extracted = lpr::extract_lsps(snap, ip2as);
  ASSERT_EQ(extracted.observations.size(), 1u);
  const auto& lsp = extracted.observations[0].lsp;
  ASSERT_EQ(lsp.lsrs.size(), 2u);
  EXPECT_EQ(lsp.lsrs[0].labels.size(), 2u);  // stacked hop preserved
  EXPECT_EQ(lsp.lsrs[1].labels.size(), 1u);
}

TEST(LdpOverTe, SameTunnelForAllDestsKeepsIotpMonoLsp) {
  // Pair-granular hub selection: every destination of the <a, e> pair rides
  // the same tunnel, so the IOTP stays Mono-LSP (no spurious Multi-FEC).
  StackFixture f;
  util::Rng rng(4);
  const auto ids = f.rsvp->signal(f.a, f.m, 1, f.pools, rng);
  f.plane.te_policy.hub_tunnels[f.a] = ids;

  std::vector<lpr::LspObservation> observations;
  Monitor monitor;
  monitor.id = 0;
  monitor.addr = ip(0x30000001);
  dataset::Ip2As ip2as;
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x10000000), 8), 65001);
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x20000000), 8), 65098);
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x30000000), 8), 65099);

  dataset::Snapshot snap;
  TraceOptions options;
  options.reply_loss = 0.0;
  util::Rng obs_rng(1);
  for (std::uint32_t d = 0; d < 8; ++d) {
    PathSpec p = f.path();
    p.dst = ip((d % 2 ? 0x20000000u : 0x30000000u) + (d << 8) + 1);
    snap.traces.push_back(trace_route(monitor, p, options, obs_rng));
  }
  ip2as.annotate(snap.traces);
  const auto extracted = lpr::extract_lsps(snap, ip2as);
  auto iotps = lpr::group_iotps(extracted.observations);
  const auto counts = lpr::classify_all(iotps);
  EXPECT_EQ(counts.total(), 1u);
  EXPECT_EQ(counts.mono_lsp, 1u);
  EXPECT_EQ(counts.multi_fec, 0u);
}

}  // namespace
}  // namespace mum::probe
