// Determinism contract of the parallel execution layer: any thread count
// must produce byte-identical output to the serial run, and the ThreadPool
// primitives must behave (every index exactly once, exceptions propagate,
// nested regions run inline).
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/classify.h"
#include "core/extract.h"
#include "core/report.h"
#include "dataset/warts_lite.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "run/runner.h"

namespace mum {
namespace {

gen::GenConfig small_config() {
  gen::GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  return c;
}

// --- ThreadPool primitives ---------------------------------------------------

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.for_each_index(kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  util::ThreadPool pool(3);
  bool ran = false;
  pool.for_each_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t sum = 0;
  pool.for_each_index(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.for_each_index(
                   100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool survives a failed job and accepts new work.
  std::atomic<int> count{0};
  pool.for_each_index(50, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NestedRegionsRunInlineAndComplete) {
  util::ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> counts(kOuter);
  pool.for_each_index(kOuter, [&](std::size_t o) {
    // Would deadlock or oversubscribe if nested calls queued on the pool;
    // they must run inline on the calling worker instead.
    pool.for_each_index(kInner, [&](std::size_t) { ++counts[o]; });
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(counts[o].load(), static_cast<int>(kInner));
  }
}

TEST(ThreadPool, ParallelForWithNullPoolRunsInline) {
  std::size_t sum = 0;
  util::parallel_for(nullptr, 10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

// --- deterministic merges ----------------------------------------------------

TEST(Merge, ExtractStatsSumsAllCounters) {
  lpr::ExtractStats a, b;
  a.traces_total = 10;
  a.traces_with_explicit_tunnel = 4;
  a.lsps_observed = 6;
  a.lsps_incomplete = 1;
  a.mpls_ips = 3;
  a.non_mpls_ips = 7;
  b.traces_total = 5;
  b.traces_with_explicit_tunnel = 2;
  b.lsps_observed = 3;
  b.lsps_incomplete = 2;
  b.mpls_ips = 1;
  b.non_mpls_ips = 4;
  a.merge(b);
  EXPECT_EQ(a.traces_total, 15u);
  EXPECT_EQ(a.traces_with_explicit_tunnel, 6u);
  EXPECT_EQ(a.lsps_observed, 9u);
  EXPECT_EQ(a.lsps_incomplete, 3u);
  EXPECT_EQ(a.mpls_ips, 4u);
  EXPECT_EQ(a.non_mpls_ips, 11u);
}

TEST(Merge, ClassCountsSumsAllClasses) {
  lpr::ClassCounts a, b;
  a.mono_lsp = 1;
  a.multi_fec = 2;
  a.mono_fec = 3;
  a.unclassified = 4;
  a.parallel_links = 1;
  a.routers_disjoint = 2;
  b.mono_lsp = 10;
  b.multi_fec = 20;
  b.mono_fec = 30;
  b.unclassified = 40;
  b.parallel_links = 11;
  b.routers_disjoint = 19;
  a.merge(b);
  EXPECT_EQ(a.mono_lsp, 11u);
  EXPECT_EQ(a.multi_fec, 22u);
  EXPECT_EQ(a.mono_fec, 33u);
  EXPECT_EQ(a.unclassified, 44u);
  EXPECT_EQ(a.parallel_links, 12u);
  EXPECT_EQ(a.routers_disjoint, 21u);
  EXPECT_EQ(a.total(), 110u);
}

// --- serial vs parallel bit-identity -----------------------------------------

std::string snapshot_bytes(const dataset::Snapshot& snap) {
  std::ostringstream os;
  dataset::write_snapshot(os, snap);
  return os.str();
}

TEST(Determinism, SnapshotIdenticalAcrossThreadCounts) {
  const gen::Internet internet(small_config());
  const auto ip2as = internet.build_ip2as();

  auto ctx_serial = internet.instantiate(50);
  const auto serial = gen::CampaignRunner(internet, ip2as)
                          .snapshot(ctx_serial, 50, 0);

  util::ThreadPool pool(4);
  auto ctx_parallel = internet.instantiate(50);
  const auto parallel =
      gen::CampaignRunner(internet, ip2as, gen::CampaignConfig{}, &pool)
          .snapshot(ctx_parallel, 50, 0);

  EXPECT_EQ(snapshot_bytes(serial), snapshot_bytes(parallel));
}

TEST(Determinism, ExtractedSnapshotIdenticalAcrossThreadCounts) {
  const gen::Internet internet(small_config());
  const auto ip2as = internet.build_ip2as();
  util::ThreadPool pool(4);

  const auto serial = gen::CampaignRunner(internet, ip2as).month(50);
  const auto parallel =
      gen::CampaignRunner(internet, ip2as, gen::CampaignConfig{}, &pool)
          .month(50);

  ASSERT_EQ(serial.snapshots.size(), parallel.snapshots.size());
  for (std::size_t i = 0; i < serial.snapshots.size(); ++i) {
    const auto es = lpr::extract_lsps(serial.snapshots[i], ip2as);
    const auto ep = lpr::extract_lsps(parallel.snapshots[i], ip2as);
    EXPECT_EQ(es.stats.traces_total, ep.stats.traces_total);
    EXPECT_EQ(es.stats.lsps_observed, ep.stats.lsps_observed);
    EXPECT_EQ(es.stats.lsps_incomplete, ep.stats.lsps_incomplete);
    EXPECT_EQ(es.stats.mpls_ips, ep.stats.mpls_ips);
    ASSERT_EQ(es.observations.size(), ep.observations.size());
    for (std::size_t o = 0; o < es.observations.size(); ++o) {
      EXPECT_EQ(es.observations[o].lsp.content_hash(),
                ep.observations[o].lsp.content_hash());
    }
  }
}

TEST(Determinism, RunnerCycleReportIdenticalAcrossThreadCounts) {
  run::RunnerConfig serial_config;
  serial_config.gen = small_config();
  serial_config.threads = 1;
  run::RunnerConfig parallel_config = serial_config;
  parallel_config.threads = 4;

  const run::Runner serial(serial_config);
  const run::Runner parallel(parallel_config);
  EXPECT_EQ(serial.threads(), 1);
  EXPECT_EQ(parallel.threads(), 4);

  const auto rs = serial.run_cycle(50);
  const auto rp = parallel.run_cycle(50);
  EXPECT_EQ(rs.to_json(true), rp.to_json(true));
}

TEST(Determinism, RunnerLongitudinalIdenticalAcrossThreadCounts) {
  run::RunnerConfig serial_config;
  serial_config.gen = small_config();
  serial_config.first_cycle = 50;
  serial_config.last_cycle = 52;
  serial_config.threads = 1;
  run::RunnerConfig parallel_config = serial_config;
  parallel_config.threads = 4;

  const auto rs = run::Runner(serial_config).run_all();
  const auto rp = run::Runner(parallel_config).run_all();
  ASSERT_EQ(rs.cycles.size(), 3u);
  EXPECT_EQ(rs.to_json(), rp.to_json());
}

TEST(Determinism, ClassifyAllShardedMatchesSerial) {
  const gen::Internet internet(small_config());
  const auto ip2as = internet.build_ip2as();
  util::ThreadPool pool(4);

  // Two independent pipeline runs over the same month, one sharded.
  const auto month = gen::CampaignRunner(internet, ip2as).month(50);
  const auto serial = lpr::run_pipeline(month, ip2as, {});
  const auto parallel = lpr::run_pipeline(month, ip2as, {}, &pool);
  EXPECT_EQ(serial.to_json(true), parallel.to_json(true));
}

}  // namespace
}  // namespace mum
