#include "gen/profiles.h"

#include <gtest/gtest.h>

namespace mum::gen {
namespace {

TEST(Cycles, DateMapping) {
  EXPECT_EQ(cycle_date(0), "2010-01");
  EXPECT_EQ(cycle_date(11), "2010-12");
  EXPECT_EQ(cycle_date(27), "2012-04");
  EXPECT_EQ(cycle_date(59), "2014-12");
}

TEST(Cycles, InverseMapping) {
  EXPECT_EQ(cycle_of(2010, 1), 0);
  EXPECT_EQ(cycle_of(2012, 4), 27);
  EXPECT_EQ(cycle_of(2014, 12), 59);
  for (int c = 0; c < kCycles; ++c) {
    const int year = kFirstYear + c / 12;
    const int month = 1 + c % 12;
    EXPECT_EQ(cycle_of(year, month), c);
  }
}

TEST(Profiles, VodafoneIsDynamicTeAllAlong) {
  const AsShape shape = case_study_shape(kAsnVodafone);
  for (const int c : {0, 30, 59}) {
    const auto p = profile_at(kAsnVodafone, shape, c);
    EXPECT_TRUE(p.mpls_enabled);
    EXPECT_TRUE(p.dynamic_labels);
    EXPECT_GT(p.te_pair_share, 0.3);
  }
  // TE usage deepens over time: more LSPs per LER pair.
  EXPECT_GT(profile_at(kAsnVodafone, shape, 59).te_lsps_max,
            profile_at(kAsnVodafone, shape, 0).te_lsps_max);
  EXPECT_GT(profile_at(kAsnVodafone, shape, 59).te_lsps_min,
            profile_at(kAsnVodafone, shape, 0).te_lsps_min);
}

TEST(Profiles, AttTransitionAtCycle22) {
  const AsShape shape = case_study_shape(kAsnAtt);
  const auto before = profile_at(kAsnAtt, shape, 21);
  const auto after = profile_at(kAsnAtt, shape, 22);
  EXPECT_GT(before.mpls_coverage, after.mpls_coverage);
  // TE share keeps growing across the transition.
  EXPECT_GT(profile_at(kAsnAtt, shape, 55).te_pair_share,
            before.te_pair_share);
}

TEST(Profiles, TataIsEcmpHeavyNotTe) {
  const AsShape shape = case_study_shape(kAsnTata);
  EXPECT_GT(shape.topo.parallel_link_prob, 0.4);
  EXPECT_TRUE(shape.topo.uniform_costs);
  const auto p = profile_at(kAsnTata, shape, 30);
  EXPECT_LT(p.te_pair_share, 0.1);
  // Declining coverage over the years.
  EXPECT_GT(profile_at(kAsnTata, shape, 0).mpls_coverage,
            profile_at(kAsnTata, shape, 59).mpls_coverage);
}

TEST(Profiles, NttGrowsButStaysMonoPath) {
  const AsShape shape = case_study_shape(kAsnNtt);
  EXPECT_FALSE(shape.topo.uniform_costs);  // unique shortest paths
  const auto early = profile_at(kAsnNtt, shape, 0);
  const auto late = profile_at(kAsnNtt, shape, 59);
  EXPECT_LT(early.mpls_coverage, late.mpls_coverage);
  EXPECT_DOUBLE_EQ(late.te_pair_share, 0.0);
}

TEST(Profiles, Level3Timeline) {
  const AsShape shape = case_study_shape(kAsnLevel3);
  // Nothing before April 2012.
  EXPECT_FALSE(profile_at(kAsnLevel3, shape, 0).mpls_enabled);
  EXPECT_FALSE(profile_at(kAsnLevel3, shape, 26).mpls_enabled);
  // April 2012: off on the 1st, ramping after the 15th, high by the 29th.
  const int april = cycle_of(2012, 4);
  EXPECT_FALSE(profile_at(kAsnLevel3, shape, april, 1).mpls_enabled);
  EXPECT_FALSE(profile_at(kAsnLevel3, shape, april, 15).mpls_enabled);
  const auto mid = profile_at(kAsnLevel3, shape, april, 22);
  EXPECT_TRUE(mid.mpls_enabled);
  EXPECT_GT(mid.mpls_coverage, 0.2);
  EXPECT_LT(mid.mpls_coverage, 0.8);
  EXPECT_GE(profile_at(kAsnLevel3, shape, april, 29).mpls_coverage, 0.9);
  // Stable plateau, then decline from cycle 55 (1-based).
  EXPECT_GT(profile_at(kAsnLevel3, shape, 40).mpls_coverage, 0.5);
  EXPECT_LT(profile_at(kAsnLevel3, shape, 57).mpls_coverage, 0.5);
  EXPECT_LT(profile_at(kAsnLevel3, shape, 59).mpls_coverage, 0.05);
}

TEST(Profiles, RampCoverageMonotoneInDay) {
  const AsShape shape = case_study_shape(kAsnLevel3);
  const int april = cycle_of(2012, 4);
  double prev = -1.0;
  for (int day = 1; day <= 30; ++day) {
    const double cov = profile_at(kAsnLevel3, shape, april, day).mpls_coverage;
    EXPECT_GE(cov, prev);
    prev = cov;
  }
}

TEST(Profiles, BackgroundNoMplsStaysOff) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    util::Rng r = rng.fork(static_cast<std::uint64_t>(i));
    const AsShape shape = background_shape(200 + i, i, r);
    if (shape.archetype == MplsArchetype::kNoMpls) {
      for (const int c : {0, 30, 59}) {
        EXPECT_FALSE(profile_at(200 + i, shape, c).mpls_enabled);
      }
    }
  }
}

TEST(Profiles, BackgroundAdoptionRespected) {
  util::Rng rng(2);
  for (int i = 0; i < 80; ++i) {
    util::Rng r = rng.fork(static_cast<std::uint64_t>(i));
    const AsShape shape = background_shape(300 + i, i, r);
    if (shape.archetype == MplsArchetype::kNoMpls) continue;
    if (shape.adopt_cycle > 0) {
      EXPECT_FALSE(
          profile_at(300 + i, shape, shape.adopt_cycle - 1).mpls_enabled);
      if (shape.adopt_cycle < shape.retire_cycle) {
        EXPECT_TRUE(
            profile_at(300 + i, shape, shape.adopt_cycle).mpls_enabled);
      }
    }
    if (shape.retire_cycle <= kCycles - 1) {
      EXPECT_FALSE(
          profile_at(300 + i, shape, shape.retire_cycle).mpls_enabled);
    }
  }
}

TEST(Profiles, BackgroundArchetypeMixCoversAll) {
  util::Rng rng(3);
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 300; ++i) {
    util::Rng r = rng.fork(static_cast<std::uint64_t>(i) + 1000);
    const AsShape shape = background_shape(400, i, r);
    ++counts[static_cast<int>(shape.archetype)];
  }
  for (const int c : counts) EXPECT_GT(c, 0);
  // LDP variants together must dominate (paper: LDP is the rule).
  EXPECT_GT(counts[1] + counts[2],
            counts[3] + counts[4]);
}

TEST(Profiles, CoverageAlwaysInUnitInterval) {
  for (const std::uint32_t asn :
       {kAsnVodafone, kAsnAtt, kAsnTata, kAsnNtt, kAsnLevel3}) {
    const AsShape shape = case_study_shape(asn);
    for (int c = 0; c < kCycles; ++c) {
      const auto p = profile_at(asn, shape, c);
      EXPECT_GE(p.mpls_coverage, 0.0);
      EXPECT_LE(p.mpls_coverage, 1.0);
      EXPECT_GE(p.te_pair_share, 0.0);
      EXPECT_LE(p.te_pair_share, 1.0);
      EXPECT_LE(p.te_lsps_min, p.te_lsps_max);
    }
  }
}

}  // namespace
}  // namespace mum::gen
