// Tests for the MDA-lite multipath discovery, including the Sec.-5
// validation predictions: Mono-FEC (LDP+ECMP) tunnels are visible as
// IP-level multipath, Multi-FEC (RSVP-TE) tunnels are not.
#include "probe/mda.h"

#include <gtest/gtest.h>

#include "mpls/ldp.h"
#include "mpls/rsvp.h"
#include "util/rng.h"

namespace mum::probe {
namespace {

using topo::AsTopology;
using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// Diamond AS with LDP; optionally TE LSPs between the borders.
struct MdaFixture {
  MdaFixture() : topo(65001) {
    a = topo.add_router(ip(0x10000001), Vendor::kCisco, true);
    b = topo.add_router(ip(0x10000002), Vendor::kCisco, false);
    c = topo.add_router(ip(0x10000003), Vendor::kCisco, false);
    d = topo.add_router(ip(0x10000004), Vendor::kCisco, true);
    topo.add_link(a, b, ip(0x10010001), ip(0x10010002), 1);
    topo.add_link(a, c, ip(0x10010003), ip(0x10010004), 1);
    topo.add_link(b, d, ip(0x10010005), ip(0x10010006), 1);
    topo.add_link(c, d, ip(0x10010007), ip(0x10010008), 1);
    igp = igp::IgpState::compute(topo);
    for (std::size_t i = 0; i < topo.router_count(); ++i) {
      pools.emplace_back(Vendor::kCisco);
    }
    ldp = mpls::LdpPlane::build(topo, igp, {}, pools);
    plane.asn = 65001;
    plane.topo = &topo;
    plane.igp = &igp;
    plane.ldp = &*ldp;
  }

  void enable_te() {
    rsvp.emplace(&topo, &igp, mpls::RsvpConfig{});
    util::Rng rng(3);
    const auto ids = rsvp->signal(a, d, 2, pools, rng);
    plane.rsvp = &*rsvp;
    plane.te_policy.pairs[{a, d}] = ids;
    plane.te_policy.te_share = 1.0;
  }

  PathSpec path() const {
    PathSpec p;
    SegmentSpec seg;
    seg.plane = &plane;
    seg.ingress = a;
    seg.egress = d;
    seg.entry_iface = ip(0x10020000);
    p.segments.push_back(seg);
    p.dst = ip(0x20000001);
    return p;
  }

  AsTopology topo;
  igp::IgpState igp;
  std::vector<mpls::LabelPool> pools;
  std::optional<mpls::LdpPlane> ldp;
  std::optional<mpls::RsvpTePlane> rsvp;
  AsDataPlane plane;
  RouterId a, b, c, d;
};

TEST(Mda, MonoFecEcmpVisibleAsIpMultipath) {
  // The paper's first validation prediction.
  MdaFixture f;
  const auto result = discover_multipath(f.path(), 7, 32);
  EXPECT_TRUE(result.ip_multipath());
  EXPECT_EQ(result.ip_path_count(), 2u);  // via b and via c
}

TEST(Mda, MultiFecTeNotVisibleAsIpMultipath) {
  // The paper's second validation prediction: one destination prefix maps
  // to one pinned TE LSP — flow-id variation changes nothing.
  MdaFixture f;
  f.enable_te();
  const auto result = discover_multipath(f.path(), 7, 32);
  EXPECT_FALSE(result.ip_multipath());
  EXPECT_EQ(result.labeled_paths.size(), 1u);
}

TEST(Mda, DifferentPrefixesMayUseDifferentTeLsps) {
  // Across prefixes the TE mesh spreads load; each prefix alone is pinned.
  MdaFixture f;
  f.enable_te();
  std::set<std::vector<std::pair<net::Ipv4Addr, std::uint32_t>>> all;
  for (std::uint32_t d = 0; d < 16; ++d) {
    PathSpec p = f.path();
    p.dst = ip(0x20000000 + (d << 8));
    const auto result = discover_multipath(p, 7, 4);
    EXPECT_EQ(result.ip_path_count(), 1u) << "prefix " << d;
    all.insert(result.labeled_paths.begin(), result.labeled_paths.end());
  }
  EXPECT_GE(all.size(), 2u);  // at least two distinct LSPs across prefixes
}

TEST(Mda, LabeledPathsDistinguishLogicalDiversity) {
  // Same IP path, different labels => labeled_paths > ip_paths.
  MdaFixture f;
  f.enable_te();
  std::set<std::vector<net::Ipv4Addr>> ips;
  std::set<std::vector<std::pair<net::Ipv4Addr, std::uint32_t>>> labeled;
  for (std::uint32_t d = 0; d < 32; ++d) {
    PathSpec p = f.path();
    p.dst = ip(0x20000000 + (d << 8));
    const auto result = discover_multipath(p, 7, 2);
    ips.insert(result.ip_paths.begin(), result.ip_paths.end());
    labeled.insert(result.labeled_paths.begin(), result.labeled_paths.end());
  }
  EXPECT_GE(labeled.size(), ips.size());
}

TEST(Mda, SingleFlowSinglePath) {
  MdaFixture f;
  const auto result = discover_multipath(f.path(), 7, 1);
  EXPECT_EQ(result.ip_path_count(), 1u);
  EXPECT_EQ(result.flows_probed, 1);
}

TEST(Mda, Deterministic) {
  MdaFixture f;
  const auto r1 = discover_multipath(f.path(), 7, 16);
  const auto r2 = discover_multipath(f.path(), 7, 16);
  EXPECT_EQ(r1.ip_paths, r2.ip_paths);
  EXPECT_EQ(r1.labeled_paths, r2.labeled_paths);
}

TEST(Mda, PlainIpForwardingStillEnumeratesEcmp) {
  MdaFixture f;
  f.plane.ldp = nullptr;  // no MPLS at all
  const auto result = discover_multipath(f.path(), 7, 32);
  EXPECT_EQ(result.ip_path_count(), 2u);
  for (const auto& labeled : result.labeled_paths) {
    for (const auto& [addr, label] : labeled) EXPECT_EQ(label, 0u);
  }
}

}  // namespace
}  // namespace mum::probe
