#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mum::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowZeroAndOneReturnZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(9, 9), 9u);
  EXPECT_EQ(rng.uniform(9, 3), 9u);  // hi < lo clamps to lo
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(12);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GeometricExtraRespectsCap) {
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(rng.geometric_extra(0.99, 3), 3);
    EXPECT_EQ(rng.geometric_extra(0.0, 5), 0);
  }
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  // fork(tag) must not depend on how many draws the parent made.
  Rng a(99), b(99);
  a.next();
  a.next();
  Rng fa = a.fork(7);
  Rng fb = b.fork(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, ForksWithDifferentTagsDiffer) {
  Rng a(99);
  Rng f1 = a.fork(1), f2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (f1.next() == f2.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, StringForkMatchesHash) {
  Rng a(4);
  Rng f1 = a.fork("alpha");
  Rng f2 = a.fork(fnv1a("alpha"));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f1.next(), f2.next());
}

TEST(Rng, PickCoversAllElements) {
  Rng rng(13);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(15);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Hashing, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
  // Low bits of sequential inputs should decorrelate.
  std::set<std::uint64_t> low;
  for (std::uint64_t i = 0; i < 128; ++i) low.insert(mix64(i) & 0xff);
  EXPECT_GT(low.size(), 90u);
}

TEST(Hashing, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hashing, Fnv1aKnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Hashing, SplitMixAdvancesState) {
  std::uint64_t s = 0;
  const auto first = splitmix64(s);
  const auto second = splitmix64(s);
  EXPECT_NE(first, second);
  EXPECT_NE(s, 0u);
}

// Property sweep: below(n) is roughly uniform for several n.
class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, BelowIsRoughlyUniform) {
  const std::uint64_t n = GetParam();
  Rng rng(1000 + n);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  const int draws = 3000 * static_cast<int>(n);
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(rng.below(n))];
  }
  const double expected = static_cast<double>(draws) / static_cast<double>(n);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallModuli, RngUniformity,
                         ::testing::Values(2, 3, 5, 7, 16));

}  // namespace
}  // namespace mum::util
