#include <gtest/gtest.h>

#include <sstream>

#include "dataset/ip2as.h"
#include "dataset/pack.h"
#include "dataset/trace.h"
#include "dataset/warts_lite.h"
#include "icmp/icmp.h"
#include "util/rng.h"

namespace mum::dataset {
namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

TraceHop labeled_hop(std::uint32_t addr, std::uint32_t label) {
  TraceHop hop;
  hop.addr = ip(addr);
  hop.rtt_ms = 1.5;
  hop.labels.push(label, 0, 1);
  return hop;
}

TraceHop plain_hop(std::uint32_t addr) {
  TraceHop hop;
  hop.addr = ip(addr);
  hop.rtt_ms = 1.0;
  return hop;
}

// --- Trace basics -------------------------------------------------------

TEST(Trace, AnonymousDetection) {
  TraceHop hop;
  EXPECT_TRUE(hop.anonymous());
  hop.addr = ip(1);
  EXPECT_FALSE(hop.anonymous());
}

TEST(Trace, ExplicitTunnelDetection) {
  Trace t;
  t.hops.push_back(plain_hop(1));
  EXPECT_FALSE(t.crosses_explicit_tunnel());
  t.hops.push_back(labeled_hop(2, 1000));
  EXPECT_TRUE(t.crosses_explicit_tunnel());
}

// --- Ip2As --------------------------------------------------------------

TEST(Ip2As, LongestPrefixMatch) {
  Ip2As ip2as;
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x10000000), 8), 100);
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x10010000), 16), 200);
  EXPECT_EQ(ip2as.lookup(ip(0x10010203)), 200u);
  EXPECT_EQ(ip2as.lookup(ip(0x10FF0000)), 100u);
  EXPECT_EQ(ip2as.lookup(ip(0x20000000)), kUnknownAsn);
}

TEST(Ip2As, AnnotateFillsHopAndDestAsns) {
  Ip2As ip2as;
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x0A000000), 8), 65001);
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x0B000000), 8), 65002);

  Trace t;
  t.dst = ip(0x0B000001);
  t.hops.push_back(plain_hop(0x0A000001));
  t.hops.push_back(TraceHop{});  // anonymous
  t.hops.push_back(plain_hop(0x0C000001));  // unmapped
  ip2as.annotate(t);

  EXPECT_EQ(t.dst_asn, 65002u);
  EXPECT_EQ(t.hops[0].asn, 65001u);
  EXPECT_EQ(t.hops[1].asn, kUnknownAsn);
  EXPECT_EQ(t.hops[2].asn, kUnknownAsn);
}

TEST(Ip2As, AnnotateVector) {
  Ip2As ip2as;
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x0A000000), 8), 65001);
  std::vector<Trace> traces(3);
  for (auto& t : traces) t.dst = ip(0x0A000005);
  ip2as.annotate(traces);
  for (const auto& t : traces) EXPECT_EQ(t.dst_asn, 65001u);
}

// --- varints ------------------------------------------------------------

TEST(Varint, RoundTripBoundaries) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
        0xFFFFFFFFull, ~0ull}) {
    std::string buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    const auto back = get_varint(buf, pos);
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, TruncatedFails) {
  std::string buf;
  put_varint(buf, 300);  // two bytes
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(buf, pos).has_value());
}

TEST(Varint, SmallValuesAreOneByte) {
  std::string buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
}

// --- warts-lite ---------------------------------------------------------

Snapshot sample_snapshot() {
  Snapshot snap;
  snap.cycle_id = 42;
  snap.sub_index = 1;
  snap.date = "2014-12";
  Trace t;
  t.monitor_id = 7;
  t.src = ip(0x01020304);
  t.dst = ip(0x05060708);
  t.reached = true;
  t.hops.push_back(plain_hop(0x0A000001));
  t.hops.push_back(TraceHop{});  // anonymous hop
  TraceHop multi = labeled_hop(0x0A000002, 300123);
  multi.labels.push(17, 2, 1);  // two-entry stack
  t.hops.push_back(multi);
  snap.traces.push_back(t);
  Trace unreached;
  unreached.monitor_id = 8;
  unreached.src = ip(1);
  unreached.dst = ip(2);
  unreached.reached = false;
  snap.traces.push_back(unreached);
  return snap;
}

TEST(WartsLite, RoundTripPreservesEverything) {
  const Snapshot snap = sample_snapshot();
  const std::string bytes = serialize_snapshot(snap);
  const auto back = parse_snapshot(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cycle_id, snap.cycle_id);
  EXPECT_EQ(back->sub_index, snap.sub_index);
  EXPECT_EQ(back->date, snap.date);
  ASSERT_EQ(back->traces.size(), snap.traces.size());
  const Trace& t0 = back->traces[0];
  EXPECT_EQ(t0.monitor_id, 7u);
  EXPECT_EQ(t0.src, snap.traces[0].src);
  EXPECT_EQ(t0.dst, snap.traces[0].dst);
  EXPECT_TRUE(t0.reached);
  ASSERT_EQ(t0.hops.size(), 3u);
  EXPECT_TRUE(t0.hops[1].anonymous());
  EXPECT_EQ(t0.hops[2].labels, snap.traces[0].hops[2].labels);
  EXPECT_NEAR(t0.hops[0].rtt_ms, 1.0, 1e-3);
  EXPECT_FALSE(back->traces[1].reached);
}

TEST(WartsLite, StreamRoundTrip) {
  const Snapshot snap = sample_snapshot();
  std::stringstream ss;
  write_snapshot(ss, snap);
  const auto back = read_snapshot(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->traces.size(), snap.traces.size());
}

TEST(WartsLite, RejectsBadMagic) {
  std::string bytes = serialize_snapshot(sample_snapshot());
  bytes[0] = 'X';
  EXPECT_FALSE(parse_snapshot(bytes).has_value());
}

TEST(WartsLite, RejectsBadVersion) {
  std::string bytes = serialize_snapshot(sample_snapshot());
  bytes[4] = 99;
  EXPECT_FALSE(parse_snapshot(bytes).has_value());
}

TEST(WartsLite, RejectsTruncation) {
  const std::string bytes = serialize_snapshot(sample_snapshot());
  // Every strict prefix must fail cleanly, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    EXPECT_FALSE(parse_snapshot(bytes.substr(0, cut)).has_value());
  }
}

TEST(WartsLite, EmptySnapshotRoundTrip) {
  Snapshot snap;
  snap.cycle_id = 0;
  snap.date = "";
  const auto back = parse_snapshot(serialize_snapshot(snap));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->traces.empty());
}

TEST(WartsLite, AnonymousOnlyTraceRoundTrip) {
  Snapshot snap;
  snap.cycle_id = 9;
  snap.date = "2013-01";
  Trace t;
  t.monitor_id = 3;
  t.src = ip(1);
  t.dst = ip(2);
  t.reached = false;
  t.hops.assign(5, TraceHop{});  // every hop anonymous
  snap.traces.push_back(t);

  const auto back = parse_snapshot(serialize_snapshot(snap));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->traces.size(), 1u);
  ASSERT_EQ(back->traces[0].hops.size(), 5u);
  for (const auto& hop : back->traces[0].hops) {
    EXPECT_TRUE(hop.anonymous());
    EXPECT_FALSE(hop.has_labels());
  }
}

TEST(WartsLite, MaxDepthLabelStackRoundTrip) {
  // Quoted stacks deeper than anything the generator emits must still
  // round-trip exactly (the paper's data shows stacks up to ~6; go further).
  Snapshot snap;
  snap.date = "2015-06";
  Trace t;
  t.src = ip(1);
  t.dst = ip(2);
  TraceHop hop = plain_hop(0x0A000001);
  for (std::uint32_t i = 0; i < 16; ++i) {
    hop.labels.push(net::kLabelFirstUnreserved + i,
                    static_cast<std::uint8_t>(i % 8),
                    static_cast<std::uint8_t>(255 - i));
  }
  t.hops.push_back(hop);
  snap.traces.push_back(t);

  const auto back = parse_snapshot(serialize_snapshot(snap));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->traces[0].hops.size(), 1u);
  const auto& quoted = back->traces[0].hops[0].labels;
  ASSERT_EQ(quoted.depth(), 16u);
  EXPECT_EQ(quoted, hop.labels);
  EXPECT_TRUE(quoted.entries().back().bottom_of_stack());
}

// --- strict/tolerant decode edge cases ----------------------------------

TEST(WartsLite, StrictReportsFaultClassAndOffset) {
  const std::string bytes = serialize_snapshot(sample_snapshot());
  const DecodeOptions strict;

  {
    std::string bad = bytes;
    bad[0] = 'X';
    DecodeDiagnostics diag;
    EXPECT_FALSE(parse_snapshot(bad, strict, &diag).has_value());
    ASSERT_EQ(diag.samples.size(), 1u);
    EXPECT_EQ(diag.samples[0].fault, FaultClass::kBadMagic);
    EXPECT_EQ(diag.samples[0].offset, 0u);
  }
  {
    std::string bad = bytes;
    bad[4] = 99;
    DecodeDiagnostics diag;
    EXPECT_FALSE(parse_snapshot(bad, strict, &diag).has_value());
    ASSERT_EQ(diag.samples.size(), 1u);
    EXPECT_EQ(diag.samples[0].fault, FaultClass::kBadVersion);
    EXPECT_EQ(diag.samples[0].offset, 4u);
  }
  {
    // Cut mid-header: the offset points into the surviving bytes.
    DecodeDiagnostics diag;
    EXPECT_FALSE(parse_snapshot(bytes.substr(0, 6), strict, &diag).has_value());
    ASSERT_GE(diag.samples.size(), 1u);
    EXPECT_EQ(diag.samples[0].fault, FaultClass::kTruncatedHeader);
    EXPECT_GE(diag.samples[0].offset, 5u);
    EXPECT_LE(diag.samples[0].offset, 6u);
  }
}

TEST(WartsLite, OversizedClaimRejectedBeforeAllocation) {
  // A header claiming ~1e18 traces backed by zero bytes must fail the
  // resource check, not attempt the allocation.
  std::string bytes = "MUMW";
  bytes.push_back(static_cast<char>(kWartsLiteVersion));
  put_varint(bytes, 1);  // cycle_id
  put_varint(bytes, 0);  // sub_index
  put_varint(bytes, 0);  // empty date
  put_varint(bytes, 0x0DE0B6B3A7640000ull);  // n_traces = 1e18

  DecodeDiagnostics strict_diag;
  EXPECT_FALSE(
      parse_snapshot(bytes, DecodeOptions{}, &strict_diag).has_value());
  EXPECT_GE(strict_diag.count(FaultClass::kOversizedClaim), 1u);

  DecodeOptions tolerant;
  tolerant.tolerant = true;
  DecodeDiagnostics diag;
  const auto salvaged = parse_snapshot(bytes, tolerant, &diag);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_TRUE(salvaged->traces.empty());
  EXPECT_GE(diag.count(FaultClass::kOversizedClaim), 1u);
}

TEST(WartsLite, TolerantNeverFailsOnTruncatedCorpus) {
  const std::string bytes = serialize_snapshot(sample_snapshot());
  DecodeOptions tolerant;
  tolerant.tolerant = true;
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    DecodeDiagnostics diag;
    const auto result =
        parse_snapshot(bytes.substr(0, cut), tolerant, &diag);
    if (cut < 5) {
      // Not even a container: magic/version can't be verified.
      EXPECT_FALSE(result.has_value()) << "cut=" << cut;
    } else {
      ASSERT_TRUE(result.has_value()) << "cut=" << cut;
      EXPECT_EQ(result->trace_count(), diag.records_decoded) << "cut=" << cut;
      if (cut < bytes.size()) {
        EXPECT_FALSE(diag.clean()) << "cut=" << cut;
      }
    }
  }
}

TEST(WartsLite, TolerantNeverFailsOnBitFlippedCorpus) {
  const std::string bytes = serialize_snapshot(sample_snapshot());
  DecodeOptions tolerant;
  tolerant.tolerant = true;
  const DecodeOptions strict;
  for (std::size_t at = 5; at < bytes.size(); ++at) {
    for (unsigned bit = 0; bit < 8; bit += 3) {
      std::string flipped = bytes;
      flipped[at] = static_cast<char>(
          static_cast<unsigned char>(flipped[at]) ^ (1u << bit));

      DecodeDiagnostics diag;
      const auto salvaged = parse_snapshot(flipped, tolerant, &diag);
      ASSERT_TRUE(salvaged.has_value()) << "at=" << at << " bit=" << bit;
      EXPECT_EQ(salvaged->trace_count(), diag.records_decoded);

      // Strict mode on the same bytes: either the flip landed in a value
      // field (decodes fine) or the decode stops with a located fault.
      DecodeDiagnostics strict_diag;
      if (!parse_snapshot(flipped, strict, &strict_diag).has_value()) {
        ASSERT_GE(strict_diag.samples.size(), 1u);
        EXPECT_LE(strict_diag.samples[0].offset, flipped.size());
      }
    }
  }
}

TEST(WartsLite, V1UnframedFaultAbandonsRemainder) {
  const Snapshot snap = sample_snapshot();
  const std::string v1 = serialize_snapshot(snap, 1);
  ASSERT_TRUE(parse_snapshot(v1).has_value());

  // Chop the tail: without per-record framing, tolerant mode cannot resync,
  // so everything from the fault on is lost — but it still must not fail.
  DecodeOptions tolerant;
  tolerant.tolerant = true;
  DecodeDiagnostics diag;
  const auto salvaged =
      parse_snapshot(v1.substr(0, v1.size() - 3), tolerant, &diag);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_LT(salvaged->trace_count(), snap.trace_count());
  EXPECT_FALSE(diag.clean());
}

// --- v3 pack section claims --------------------------------------------
// The pack container (dataset/pack.h) maps its structural damage onto the
// same FaultClass taxonomy the v2 stream uses; oversized and overlapping
// section claims are the two cases the section-table validator must catch
// before any payload is touched. Detailed pack coverage is in test_pack.cpp.

std::size_t pack_entry_at(PackSection s) {
  return kPackHeaderBytes +
         static_cast<std::size_t>(s) * kPackSectionEntryBytes;
}

void pack_write_le64(std::string& bytes, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

TEST(PackFaults, OversizedSectionClaimIsBoundedNotAllocated) {
  std::string bytes = serialize_pack(sample_snapshot());
  // The hop-addr entry claims ~1e18 bytes: far past the mapping. Like the
  // v2 oversized-claim case, the validator must bound the claim against the
  // bytes present, never follow it.
  pack_write_le64(bytes, pack_entry_at(PackSection::kHopAddr) + 16,
                  0x0DE0B6B3A7640000ull);

  DecodeDiagnostics strict_diag;
  EXPECT_FALSE(parse_pack(bytes, DecodeOptions{}, &strict_diag).has_value());
  EXPECT_GE(strict_diag.count(FaultClass::kOversizedClaim), 1u);

  DecodeDiagnostics diag;
  const auto salvaged =
      parse_pack(bytes, DecodeOptions{.tolerant = true}, &diag);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_GE(diag.count(FaultClass::kOversizedClaim), 1u);
  // The hop columns are gone; traces with hops are individually skipped,
  // the hopless record survives.
  ASSERT_EQ(salvaged->traces.size(), 1u);
  EXPECT_TRUE(salvaged->traces[0].hops.empty());
}

TEST(PackFaults, OverlappingSectionsAreRejectedAsBadTable) {
  std::string bytes = serialize_pack(sample_snapshot());
  // Point the src column at the monitor column's payload: two claims over
  // one region means at least one of them lies, so both are dropped.
  const std::size_t monitor_entry = pack_entry_at(PackSection::kTraceMonitor);
  const std::size_t src_entry = pack_entry_at(PackSection::kTraceSrc);
  for (std::size_t field : {std::size_t{8}, std::size_t{16},
                            std::size_t{24}}) {  // offset, bytes, checksum
    for (int i = 0; i < 8; ++i) {
      bytes[src_entry + field + static_cast<std::size_t>(i)] =
          bytes[monitor_entry + field + static_cast<std::size_t>(i)];
    }
  }

  DecodeDiagnostics strict_diag;
  EXPECT_FALSE(parse_pack(bytes, DecodeOptions{}, &strict_diag).has_value());
  EXPECT_GE(strict_diag.count(FaultClass::kBadSectionTable), 1u);

  DecodeDiagnostics diag;
  const auto salvaged =
      parse_pack(bytes, DecodeOptions{.tolerant = true}, &diag);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_GE(diag.count(FaultClass::kBadSectionTable), 1u);
  // A core trace column is unusable: the snapshot degrades to empty rather
  // than serving aliased data.
  EXPECT_TRUE(salvaged->traces.empty());
}

TEST(WartsLite, TextRenderingContainsKeyFields) {
  const Snapshot snap = sample_snapshot();
  const std::string text = to_text(snap);
  EXPECT_NE(text.find("cycle=42"), std::string::npos);
  EXPECT_NE(text.find("10.0.0.2"), std::string::npos);
  EXPECT_NE(text.find("L=300123"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);  // anonymous hop
}

// Fuzz-ish property: random snapshots survive a round trip bit-exactly for
// the fields LPR consumes.
class WartsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WartsFuzz, RandomSnapshotsRoundTrip) {
  util::Rng rng(GetParam());
  Snapshot snap;
  snap.cycle_id = static_cast<std::uint32_t>(rng.below(100));
  snap.sub_index = static_cast<std::uint32_t>(rng.below(30));
  snap.date = "2013-07";
  const int n = 1 + static_cast<int>(rng.below(20));
  for (int i = 0; i < n; ++i) {
    Trace t;
    t.monitor_id = static_cast<std::uint32_t>(rng.below(200));
    t.src = ip(static_cast<std::uint32_t>(rng.next()));
    t.dst = ip(static_cast<std::uint32_t>(rng.next()));
    t.reached = rng.chance(0.8);
    const int hops = static_cast<int>(rng.below(25));
    for (int h = 0; h < hops; ++h) {
      TraceHop hop;
      if (!rng.chance(0.1)) {
        hop.addr = ip(static_cast<std::uint32_t>(rng.next()));
        hop.rtt_ms = rng.uniform01() * 300.0;
        const int stack = static_cast<int>(rng.below(3));
        for (int s = 0; s < stack; ++s) {
          hop.labels.push(static_cast<std::uint32_t>(rng.below(1 << 20)),
                          static_cast<std::uint8_t>(rng.below(8)), 1);
        }
      }
      t.hops.push_back(std::move(hop));
    }
    snap.traces.push_back(std::move(t));
  }

  const auto back = parse_snapshot(serialize_snapshot(snap));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->traces.size(), snap.traces.size());
  for (std::size_t i = 0; i < snap.traces.size(); ++i) {
    const Trace& a = snap.traces[i];
    const Trace& b = back->traces[i];
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.reached, b.reached);
    ASSERT_EQ(a.hops.size(), b.hops.size());
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].addr, b.hops[h].addr);
      EXPECT_EQ(a.hops[h].labels, b.hops[h].labels);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WartsFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- ICMP ---------------------------------------------------------------

TEST(Icmp, ReplyToString) {
  icmp::IcmpReply reply;
  reply.type = icmp::IcmpType::kTimeExceeded;
  reply.from = ip(0x0A000001);
  reply.rtt_ms = 12.0;
  EXPECT_NE(icmp::to_string(reply).find("time-exceeded"), std::string::npos);
  EXPECT_NE(icmp::to_string(reply).find("10.0.0.1"), std::string::npos);
  EXPECT_FALSE(reply.has_labels());

  icmp::MplsExtension ext;
  ext.stack.push(300000, 0, 1);
  reply.mpls = ext;
  EXPECT_TRUE(reply.has_labels());
  EXPECT_NE(icmp::to_string(reply).find("L=300000"), std::string::npos);
}

TEST(Icmp, EmptyExtensionHasNoLabels) {
  icmp::IcmpReply reply;
  reply.mpls = icmp::MplsExtension{};
  EXPECT_FALSE(reply.has_labels());
}

}  // namespace
}  // namespace mum::dataset
