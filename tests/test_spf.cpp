#include "igp/spf.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/builder.h"
#include "util/rng.h"

namespace mum::igp {
namespace {

using topo::AsTopology;
using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// a --1-- b --1-- c, plus a --3-- c (worse).
AsTopology triangle() {
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, true);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  const auto c = topo.add_router(ip(3), Vendor::kCisco, true);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(b, c, ip(103), ip(104), 1);
  topo.add_link(a, c, ip(105), ip(106), 3);
  return topo;
}

TEST(Spf, ShortestDistances) {
  const auto topo = triangle();
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.rib(0).distance(0), 0u);
  EXPECT_EQ(igp.rib(0).distance(1), 1u);
  EXPECT_EQ(igp.rib(0).distance(2), 2u);  // via b, not the cost-3 direct link
  EXPECT_EQ(igp.rib(2).distance(0), 2u);
}

TEST(Spf, SingleNextHopOnUniquePath) {
  const auto topo = triangle();
  const IgpState igp = IgpState::compute(topo);
  const auto& nhs = igp.rib(0).nexthops(2);
  ASSERT_EQ(nhs.size(), 1u);
  EXPECT_EQ(nhs[0].neighbor, 1u);
}

TEST(Spf, EqualCostDirectAndIndirect) {
  // a-b-c all cost 1, plus direct a-c cost 2: both routes tie.
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, false);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  const auto c = topo.add_router(ip(3), Vendor::kCisco, false);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(b, c, ip(103), ip(104), 1);
  topo.add_link(a, c, ip(105), ip(106), 2);
  const IgpState igp = IgpState::compute(topo);
  const auto& nhs = igp.rib(a).nexthops(c);
  ASSERT_EQ(nhs.size(), 2u);
  std::set<RouterId> neighbors;
  for (const auto& nh : nhs) neighbors.insert(nh.neighbor);
  EXPECT_EQ(neighbors, (std::set<RouterId>{b, c}));
}

TEST(Spf, ParallelLinksAreDistinctNextHops) {
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, false);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(a, b, ip(103), ip(104), 1);
  const IgpState igp = IgpState::compute(topo);
  const auto& nhs = igp.rib(a).nexthops(b);
  ASSERT_EQ(nhs.size(), 2u);
  EXPECT_NE(nhs[0].link, nhs[1].link);
  EXPECT_EQ(nhs[0].neighbor, b);
  EXPECT_EQ(nhs[1].neighbor, b);
}

TEST(Spf, UnequalParallelLinksNotEcmp) {
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, false);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(a, b, ip(103), ip(104), 2);  // worse bundle member
  const IgpState igp = IgpState::compute(topo);
  ASSERT_EQ(igp.rib(a).nexthops(b).size(), 1u);
  EXPECT_EQ(igp.rib(a).nexthops(b)[0].link, 0u);
}

TEST(Spf, DisconnectedIsUnreachable) {
  AsTopology topo(1);
  topo.add_router(ip(1), Vendor::kCisco, false);
  topo.add_router(ip(2), Vendor::kCisco, false);
  const IgpState igp = IgpState::compute(topo);
  EXPECT_FALSE(igp.rib(0).reachable(1));
  EXPECT_EQ(igp.rib(0).distance(1), kUnreachable);
  EXPECT_TRUE(igp.rib(0).nexthops(1).empty());
}

TEST(Spf, SelfDistanceZeroNoNextHops) {
  const auto topo = triangle();
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.rib(1).distance(1), 0u);
  EXPECT_TRUE(igp.rib(1).nexthops(1).empty());
}

TEST(Spf, DiamondEcmp) {
  //    b
  //  /   \
  // a     d   (all costs 1: two equal paths a-b-d / a-c-d)
  //  \   /
  //    c
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, false);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  const auto c = topo.add_router(ip(3), Vendor::kCisco, false);
  const auto d = topo.add_router(ip(4), Vendor::kCisco, false);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(a, c, ip(103), ip(104), 1);
  topo.add_link(b, d, ip(105), ip(106), 1);
  topo.add_link(c, d, ip(107), ip(108), 1);
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.rib(a).nexthops(d).size(), 2u);
  EXPECT_EQ(igp.path_count(a, d), 2u);
  // Intermediate routers see a single next hop each.
  EXPECT_EQ(igp.rib(b).nexthops(d).size(), 1u);
}

TEST(Spf, PathCountMultiplies) {
  // Two diamonds in series: 2 * 2 = 4 shortest paths.
  AsTopology topo(1);
  std::vector<RouterId> r;
  for (std::uint32_t i = 0; i < 7; ++i) {
    r.push_back(topo.add_router(ip(i + 1), Vendor::kCisco, false));
  }
  std::uint32_t next_ip = 100;
  auto link = [&](RouterId x, RouterId y) {
    topo.add_link(x, y, ip(next_ip++), ip(next_ip++), 1);
  };
  link(r[0], r[1]);
  link(r[0], r[2]);
  link(r[1], r[3]);
  link(r[2], r[3]);
  link(r[3], r[4]);
  link(r[3], r[5]);
  link(r[4], r[6]);
  link(r[5], r[6]);
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.path_count(r[0], r[6]), 4u);
}

// Property tests over random builder topologies.
class SpfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpfProperty, InvariantsHold) {
  util::Rng rng(GetParam());
  topo::BuildParams params;
  params.asn = 1;
  params.block = net::Ipv4Prefix(net::Ipv4Addr(16, 0, 0, 0), 16);
  params.core_routers = 4 + static_cast<int>(rng.below(4));
  params.pop_routers = 6 + static_cast<int>(rng.below(10));
  params.parallel_link_prob = 0.3;
  const AsTopology topo = topo::build_as_topology(params, rng);
  const IgpState igp = IgpState::compute(topo);

  for (RouterId s = 0; s < topo.router_count(); ++s) {
    for (RouterId d = 0; d < topo.router_count(); ++d) {
      if (s == d) continue;
      // Connected builder output: everything reachable.
      ASSERT_TRUE(igp.rib(s).reachable(d));
      const auto dist = igp.rib(s).distance(d);
      // Symmetric distances (undirected links, symmetric costs).
      EXPECT_EQ(dist, igp.rib(d).distance(s));
      for (const NextHop& nh : igp.rib(s).nexthops(d)) {
        // Every next hop strictly decreases the remaining distance by the
        // traversed link's cost (the ECMP DAG property).
        const auto& link = topo.link(nh.link);
        EXPECT_EQ(link.other(s), nh.neighbor);
        EXPECT_EQ(igp.rib(nh.neighbor).distance(d) + link.igp_cost, dist);
      }
      EXPECT_FALSE(igp.rib(s).nexthops(d).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpfProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mum::igp
