#include "igp/spf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>

#include "topo/builder.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mum::igp {
namespace {

using topo::AsTopology;
using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// a --1-- b --1-- c, plus a --3-- c (worse).
AsTopology triangle() {
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, true);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  const auto c = topo.add_router(ip(3), Vendor::kCisco, true);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(b, c, ip(103), ip(104), 1);
  topo.add_link(a, c, ip(105), ip(106), 3);
  return topo;
}

TEST(Spf, ShortestDistances) {
  const auto topo = triangle();
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.rib(0).distance(0), 0u);
  EXPECT_EQ(igp.rib(0).distance(1), 1u);
  EXPECT_EQ(igp.rib(0).distance(2), 2u);  // via b, not the cost-3 direct link
  EXPECT_EQ(igp.rib(2).distance(0), 2u);
}

TEST(Spf, SingleNextHopOnUniquePath) {
  const auto topo = triangle();
  const IgpState igp = IgpState::compute(topo);
  const auto& nhs = igp.rib(0).nexthops(2);
  ASSERT_EQ(nhs.size(), 1u);
  EXPECT_EQ(nhs[0].neighbor, 1u);
}

TEST(Spf, EqualCostDirectAndIndirect) {
  // a-b-c all cost 1, plus direct a-c cost 2: both routes tie.
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, false);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  const auto c = topo.add_router(ip(3), Vendor::kCisco, false);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(b, c, ip(103), ip(104), 1);
  topo.add_link(a, c, ip(105), ip(106), 2);
  const IgpState igp = IgpState::compute(topo);
  const auto& nhs = igp.rib(a).nexthops(c);
  ASSERT_EQ(nhs.size(), 2u);
  std::set<RouterId> neighbors;
  for (const auto& nh : nhs) neighbors.insert(nh.neighbor);
  EXPECT_EQ(neighbors, (std::set<RouterId>{b, c}));
}

TEST(Spf, ParallelLinksAreDistinctNextHops) {
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, false);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(a, b, ip(103), ip(104), 1);
  const IgpState igp = IgpState::compute(topo);
  const auto& nhs = igp.rib(a).nexthops(b);
  ASSERT_EQ(nhs.size(), 2u);
  EXPECT_NE(nhs[0].link, nhs[1].link);
  EXPECT_EQ(nhs[0].neighbor, b);
  EXPECT_EQ(nhs[1].neighbor, b);
}

TEST(Spf, UnequalParallelLinksNotEcmp) {
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, false);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(a, b, ip(103), ip(104), 2);  // worse bundle member
  const IgpState igp = IgpState::compute(topo);
  ASSERT_EQ(igp.rib(a).nexthops(b).size(), 1u);
  EXPECT_EQ(igp.rib(a).nexthops(b)[0].link, 0u);
}

TEST(Spf, DisconnectedIsUnreachable) {
  AsTopology topo(1);
  topo.add_router(ip(1), Vendor::kCisco, false);
  topo.add_router(ip(2), Vendor::kCisco, false);
  const IgpState igp = IgpState::compute(topo);
  EXPECT_FALSE(igp.rib(0).reachable(1));
  EXPECT_EQ(igp.rib(0).distance(1), kUnreachable);
  EXPECT_TRUE(igp.rib(0).nexthops(1).empty());
}

TEST(Spf, SelfDistanceZeroNoNextHops) {
  const auto topo = triangle();
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.rib(1).distance(1), 0u);
  EXPECT_TRUE(igp.rib(1).nexthops(1).empty());
}

TEST(Spf, DiamondEcmp) {
  //    b
  //  /   \
  // a     d   (all costs 1: two equal paths a-b-d / a-c-d)
  //  \   /
  //    c
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, false);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, false);
  const auto c = topo.add_router(ip(3), Vendor::kCisco, false);
  const auto d = topo.add_router(ip(4), Vendor::kCisco, false);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(a, c, ip(103), ip(104), 1);
  topo.add_link(b, d, ip(105), ip(106), 1);
  topo.add_link(c, d, ip(107), ip(108), 1);
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.rib(a).nexthops(d).size(), 2u);
  EXPECT_EQ(igp.path_count(a, d), 2u);
  // Intermediate routers see a single next hop each.
  EXPECT_EQ(igp.rib(b).nexthops(d).size(), 1u);
}

TEST(Spf, PathCountMultiplies) {
  // Two diamonds in series: 2 * 2 = 4 shortest paths.
  AsTopology topo(1);
  std::vector<RouterId> r;
  for (std::uint32_t i = 0; i < 7; ++i) {
    r.push_back(topo.add_router(ip(i + 1), Vendor::kCisco, false));
  }
  std::uint32_t next_ip = 100;
  auto link = [&](RouterId x, RouterId y) {
    topo.add_link(x, y, ip(next_ip++), ip(next_ip++), 1);
  };
  link(r[0], r[1]);
  link(r[0], r[2]);
  link(r[1], r[3]);
  link(r[2], r[3]);
  link(r[3], r[4]);
  link(r[3], r[5]);
  link(r[4], r[6]);
  link(r[5], r[6]);
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.path_count(r[0], r[6]), 4u);
}

// Property tests over random builder topologies.
class SpfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpfProperty, InvariantsHold) {
  util::Rng rng(GetParam());
  topo::BuildParams params;
  params.asn = 1;
  params.block = net::Ipv4Prefix(net::Ipv4Addr(16, 0, 0, 0), 16);
  params.core_routers = 4 + static_cast<int>(rng.below(4));
  params.pop_routers = 6 + static_cast<int>(rng.below(10));
  params.parallel_link_prob = 0.3;
  const AsTopology topo = topo::build_as_topology(params, rng);
  const IgpState igp = IgpState::compute(topo);

  for (RouterId s = 0; s < topo.router_count(); ++s) {
    for (RouterId d = 0; d < topo.router_count(); ++d) {
      if (s == d) continue;
      // Connected builder output: everything reachable.
      ASSERT_TRUE(igp.rib(s).reachable(d));
      const auto dist = igp.rib(s).distance(d);
      // Symmetric distances (undirected links, symmetric costs).
      EXPECT_EQ(dist, igp.rib(d).distance(s));
      for (const NextHop& nh : igp.rib(s).nexthops(d)) {
        // Every next hop strictly decreases the remaining distance by the
        // traversed link's cost (the ECMP DAG property).
        const auto& link = topo.link(nh.link);
        EXPECT_EQ(link.other(s), nh.neighbor);
        EXPECT_EQ(igp.rib(nh.neighbor).distance(d) + link.igp_cost, dist);
      }
      EXPECT_FALSE(igp.rib(s).nexthops(d).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpfProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Reference parity: the optimized one-pass SPF must reproduce, byte for
// byte, what the original per-destination reverse-BFS implementation
// computed. The reference below is that original algorithm, kept verbatim
// (modulo the return type) as the ground truth.
// ---------------------------------------------------------------------------

struct ReferenceRib {
  std::vector<std::uint32_t> dist;
  std::vector<std::vector<NextHop>> nexthops;
};

struct RefQueueItem {
  std::uint32_t dist;
  RouterId router;
  friend bool operator>(const RefQueueItem& a, const RefQueueItem& b) {
    return a.dist > b.dist;
  }
};

ReferenceRib reference_spf(const AsTopology& topo, RouterId src,
                           const std::vector<bool>* link_down) {
  const std::size_t n = topo.router_count();
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::vector<std::vector<topo::LinkId>> predecessors(n);
  std::priority_queue<RefQueueItem, std::vector<RefQueueItem>,
                      std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const topo::LinkId lid : topo.links_of(u)) {
      if (link_down != nullptr && (*link_down)[lid]) continue;
      const topo::Link& l = topo.link(lid);
      const RouterId v = l.other(u);
      const std::uint32_t nd = d + l.igp_cost;
      if (nd < dist[v]) {
        dist[v] = nd;
        predecessors[v].clear();
        predecessors[v].push_back(lid);
        pq.push({nd, v});
      } else if (nd == dist[v]) {
        predecessors[v].push_back(lid);
      }
    }
  }
  std::vector<std::vector<NextHop>> nexthops(n);
  std::vector<std::uint8_t> mark(n, 0);
  std::vector<RouterId> stack;
  for (RouterId dst = 0; dst < n; ++dst) {
    if (dst == src || dist[dst] == kUnreachable) continue;
    std::fill(mark.begin(), mark.end(), 0);
    stack.clear();
    stack.push_back(dst);
    mark[dst] = 1;
    std::vector<topo::LinkId> first_links;
    while (!stack.empty()) {
      const RouterId v = stack.back();
      stack.pop_back();
      for (const topo::LinkId lid : predecessors[v]) {
        const RouterId u = topo.link(lid).other(v);
        if (u == src) {
          first_links.push_back(lid);
        } else if (!mark[u]) {
          mark[u] = 1;
          stack.push_back(u);
        }
      }
    }
    std::sort(first_links.begin(), first_links.end());
    first_links.erase(std::unique(first_links.begin(), first_links.end()),
                      first_links.end());
    for (const topo::LinkId lid : first_links) {
      nexthops[dst].push_back(NextHop{lid, topo.link(lid).other(src)});
    }
  }
  return ReferenceRib{std::move(dist), std::move(nexthops)};
}

// Asserts exact equality — distances AND next-hop sequences in order.
void expect_matches_reference(const AsTopology& topo, const IgpState& igp,
                              const std::vector<bool>* link_down) {
  for (RouterId s = 0; s < topo.router_count(); ++s) {
    const ReferenceRib ref = reference_spf(topo, s, link_down);
    const RouterRib rib = igp.rib(s);
    for (RouterId d = 0; d < topo.router_count(); ++d) {
      ASSERT_EQ(rib.distance(d), ref.dist[d])
          << "dist mismatch src=" << s << " dst=" << d;
      const auto nhs = rib.nexthops(d);
      ASSERT_EQ(nhs.size(), ref.nexthops[d].size())
          << "ECMP width mismatch src=" << s << " dst=" << d;
      for (std::size_t i = 0; i < nhs.size(); ++i) {
        ASSERT_EQ(nhs[i], ref.nexthops[d][i])
            << "next hop mismatch src=" << s << " dst=" << d << " i=" << i;
      }
    }
  }
}

AsTopology random_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  topo::BuildParams params;
  params.asn = 1;
  params.block = net::Ipv4Prefix(net::Ipv4Addr(16, 0, 0, 0), 16);
  params.core_routers = 4 + static_cast<int>(rng.below(5));
  params.pop_routers = 8 + static_cast<int>(rng.below(16));
  // Every other seed: parallel bundles (distinct ECMP next hops to one
  // neighbour) and non-uniform costs (asymmetric-cost relaxations).
  params.parallel_link_prob = (seed % 2 == 0) ? 0.4 : 0.0;
  params.uniform_costs = (seed % 3 != 0);
  params.heavy_cost_share = 0.25;
  return topo::build_as_topology(params, rng);
}

class SpfReferenceParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpfReferenceParity, FullTopology) {
  const AsTopology topo = random_topology(GetParam());
  expect_matches_reference(topo, IgpState::compute(topo), nullptr);
}

TEST_P(SpfReferenceParity, WithDownedLinks) {
  const AsTopology topo = random_topology(GetParam());
  util::Rng rng(GetParam() * 7919 + 1);
  std::vector<bool> down(topo.link_count(), false);
  // Down ~10% of links: may partition the topology, which the parity check
  // must handle (unreachable destinations on both sides).
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    down[l] = rng.below(10) == 0;
  }
  expect_matches_reference(topo, IgpState::compute(topo, &down), &down);
}

TEST_P(SpfReferenceParity, ReconvergeMatchesFullRecompute) {
  const AsTopology topo = random_topology(GetParam());
  const IgpState baseline = IgpState::compute(topo);
  util::Rng rng(GetParam() * 104729 + 3);
  std::vector<bool> down(topo.link_count(), false);
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    down[l] = rng.below(12) == 0;
  }
  IgpState::ReconvergeStats stats;
  const IgpState inc = IgpState::reconverge(topo, baseline, down, nullptr,
                                            &stats);
  EXPECT_EQ(stats.sources_total, topo.router_count());
  EXPECT_LE(stats.sources_recomputed, stats.sources_total);
  expect_matches_reference(topo, inc, &down);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpfReferenceParity,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(SpfReferenceParity, UnreachablePartition) {
  // Two disconnected triangles: cross-component destinations unreachable.
  AsTopology topo(1);
  std::vector<RouterId> r;
  for (std::uint32_t i = 0; i < 6; ++i) {
    r.push_back(topo.add_router(ip(i + 1), Vendor::kCisco, false));
  }
  std::uint32_t next_ip = 100;
  auto link = [&](RouterId x, RouterId y, std::uint32_t cost) {
    topo.add_link(x, y, ip(next_ip++), ip(next_ip++), cost);
  };
  link(r[0], r[1], 1);
  link(r[1], r[2], 1);
  link(r[0], r[2], 2);
  link(r[3], r[4], 1);
  link(r[4], r[5], 1);
  link(r[3], r[5], 2);
  const IgpState igp = IgpState::compute(topo);
  expect_matches_reference(topo, igp, nullptr);
  EXPECT_FALSE(igp.rib(r[0]).reachable(r[3]));
  EXPECT_TRUE(igp.rib(r[0]).nexthops(r[3]).empty());
}

// ---------------------------------------------------------------------------
// Incremental reconvergence: only sources whose shortest-path DAG uses a
// downed link may be recomputed.
// ---------------------------------------------------------------------------

TEST(SpfReconverge, UnusedLinkRecomputesNothing) {
  // triangle(): the a--c cost-3 link carries no shortest path from any
  // source (a-b-c costs 2), so downing it must leave every RIB row as a
  // baseline copy.
  const AsTopology topo = triangle();
  const IgpState baseline = IgpState::compute(topo);
  std::vector<bool> down(topo.link_count(), false);
  down[2] = true;  // the cost-3 a--c link
  IgpState::ReconvergeStats stats;
  const IgpState inc = IgpState::reconverge(topo, baseline, down, nullptr,
                                            &stats);
  EXPECT_EQ(stats.sources_total, 3u);
  EXPECT_EQ(stats.sources_recomputed, 0u);
  expect_matches_reference(topo, inc, &down);
}

TEST(SpfReconverge, FailureIsolatedToItsComponent) {
  // Two disconnected triangles; failing the r0--r1 edge of the first must
  // only recompute r0 and r1: from r2 both neighbours are reached over the
  // direct links, so the failed edge carries none of r2's shortest paths,
  // and triangle B is untouched entirely.
  AsTopology topo(1);
  std::vector<RouterId> r;
  for (std::uint32_t i = 0; i < 6; ++i) {
    r.push_back(topo.add_router(ip(i + 1), Vendor::kCisco, false));
  }
  std::uint32_t next_ip = 100;
  auto link = [&](RouterId x, RouterId y) {
    topo.add_link(x, y, ip(next_ip++), ip(next_ip++), 1);
  };
  link(r[0], r[1]);  // link 0: in every triangle-A shortest-path DAG
  link(r[1], r[2]);
  link(r[0], r[2]);
  link(r[3], r[4]);
  link(r[4], r[5]);
  link(r[3], r[5]);
  const IgpState baseline = IgpState::compute(topo);
  std::vector<bool> down(topo.link_count(), false);
  down[0] = true;
  IgpState::ReconvergeStats stats;
  const IgpState inc = IgpState::reconverge(topo, baseline, down, nullptr,
                                            &stats);
  EXPECT_EQ(stats.sources_total, 6u);
  EXPECT_EQ(stats.sources_recomputed, 2u);  // r0 and r1 only
  expect_matches_reference(topo, inc, &down);
}

TEST(SpfReconverge, ParallelOutputMatchesSerial) {
  const AsTopology topo = random_topology(14);
  const IgpState baseline = IgpState::compute(topo);
  std::vector<bool> down(topo.link_count(), false);
  down[1] = true;
  down[topo.link_count() - 2] = true;
  util::ThreadPool pool(4);
  const IgpState serial = IgpState::reconverge(topo, baseline, down);
  const IgpState parallel =
      IgpState::reconverge(topo, baseline, down, &pool);
  for (RouterId s = 0; s < topo.router_count(); ++s) {
    for (RouterId d = 0; d < topo.router_count(); ++d) {
      ASSERT_EQ(serial.rib(s).distance(d), parallel.rib(s).distance(d));
      const auto a = serial.rib(s).nexthops(d);
      const auto b = parallel.rib(s).nexthops(d);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
  }
}

// ---------------------------------------------------------------------------
// path_count: memoized DP must handle exponentially many shortest paths.
// ---------------------------------------------------------------------------

TEST(SpfPathCount, DiamondChainExponential) {
  // 40 diamonds in series: 2^40 shortest paths end to end. The former
  // recursive enumeration would take ~2^40 steps; the memoized DP is O(V+E).
  constexpr int kDiamonds = 40;
  AsTopology topo(1);
  std::uint32_t next_ip = 1;
  auto router = [&] {
    return topo.add_router(ip(next_ip++), Vendor::kCisco, false);
  };
  std::uint32_t link_ip = 100000;
  auto link = [&](RouterId x, RouterId y) {
    topo.add_link(x, y, ip(link_ip++), ip(link_ip++), 1);
  };
  RouterId head = router();
  const RouterId first = head;
  for (int i = 0; i < kDiamonds; ++i) {
    const RouterId up = router();
    const RouterId dn = router();
    const RouterId tail = router();
    link(head, up);
    link(head, dn);
    link(up, tail);
    link(dn, tail);
    head = tail;
  }
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.path_count(first, head, std::uint64_t{1} << 50),
            std::uint64_t{1} << kDiamonds);
  // Saturation: a small cap is hit exactly, not overshot.
  EXPECT_EQ(igp.path_count(first, head, 100), 100u);
  // Default cap still saturates cleanly.
  EXPECT_EQ(igp.path_count(first, head), std::uint64_t{1} << 20);
}

TEST(SpfPathCount, BasicsUnchanged) {
  const AsTopology topo = triangle();
  const IgpState igp = IgpState::compute(topo);
  EXPECT_EQ(igp.path_count(0, 0), 1u);
  EXPECT_EQ(igp.path_count(0, 2), 1u);  // unique path via b
  AsTopology split(1);
  split.add_router(ip(1), Vendor::kCisco, false);
  split.add_router(ip(2), Vendor::kCisco, false);
  EXPECT_EQ(IgpState::compute(split).path_count(0, 1), 0u);
}

}  // namespace
}  // namespace mum::igp
