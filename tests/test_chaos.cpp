#include "chaos/chaos.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dataset/pack.h"
#include "dataset/warts_lite.h"
#include "gen/campaign.h"
#include "run/checkpoint.h"
#include "run/runner.h"

namespace mum {
namespace {

namespace fs = std::filesystem;

gen::GenConfig small_gen() {
  gen::GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  return c;
}

run::RunnerConfig small_runner(int cycles, int threads = 1) {
  run::RunnerConfig c;
  c.gen = small_gen();
  c.first_cycle = 0;
  c.last_cycle = cycles - 1;
  c.threads = threads;
  return c;
}

dataset::Snapshot sample_snapshot() {
  gen::Internet internet(small_gen());
  const auto ip2as = internet.build_ip2as();
  gen::CampaignRunner runner(internet, ip2as);
  auto ctx = internet.instantiate(50);
  return runner.snapshot(ctx, 50, 0);
}

// --- spec parsing ----------------------------------------------------------

TEST(ChaosSpec, ParsesNamedRatesAndSeed) {
  std::string error;
  const auto config =
      chaos::parse_chaos_spec("flip=0.01,blackout=5%,fail=0.1,seed=7", &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_DOUBLE_EQ(config->flip_byte, 0.01);
  EXPECT_DOUBLE_EQ(config->monitor_blackout, 0.05);
  EXPECT_DOUBLE_EQ(config->cycle_failure, 0.1);
  EXPECT_EQ(config->seed, 7u);
  EXPECT_DOUBLE_EQ(config->truncate_stack, 0.0);
  EXPECT_TRUE(config->enabled());
}

TEST(ChaosSpec, AllSetsEveryDatasetFaultButNotFail) {
  const auto config = chaos::parse_chaos_spec("all=2%");
  ASSERT_TRUE(config.has_value());
  EXPECT_DOUBLE_EQ(config->truncate_stack, 0.02);
  EXPECT_DOUBLE_EQ(config->drop_extension, 0.02);
  EXPECT_DOUBLE_EQ(config->duplicate_ttl, 0.02);
  EXPECT_DOUBLE_EQ(config->reorder_ttl, 0.02);
  EXPECT_DOUBLE_EQ(config->bogus_ip2as, 0.02);
  EXPECT_DOUBLE_EQ(config->monitor_blackout, 0.02);
  EXPECT_DOUBLE_EQ(config->flip_byte, 0.02);
  EXPECT_DOUBLE_EQ(config->cycle_failure, 0.0);

  // A bare rate is shorthand for all=<rate>.
  const auto bare = chaos::parse_chaos_spec("2%");
  ASSERT_TRUE(bare.has_value());
  EXPECT_DOUBLE_EQ(bare->truncate_stack, 0.02);
  EXPECT_DOUBLE_EQ(bare->flip_byte, 0.02);
}

TEST(ChaosSpec, ParsesIoFaultKeys) {
  std::string error;
  const auto config = chaos::parse_chaos_spec(
      "io.eio=1%,io.enospc=2%,io.shortwrite=3%,io.torn=4%,"
      "io.stalerename=5%,io.slow=6%,io.slow_ms=50,seed=9",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_DOUBLE_EQ(config->io.eio, 0.01);
  EXPECT_DOUBLE_EQ(config->io.enospc, 0.02);
  EXPECT_DOUBLE_EQ(config->io.short_write, 0.03);
  EXPECT_DOUBLE_EQ(config->io.torn_temp, 0.04);
  EXPECT_DOUBLE_EQ(config->io.stale_rename, 0.05);
  EXPECT_DOUBLE_EQ(config->io.slow_op, 0.06);
  EXPECT_EQ(config->io.slow_ms, 50u);
  EXPECT_EQ(config->seed, 9u);
  EXPECT_TRUE(config->io.any());
  EXPECT_TRUE(config->enabled());
  // io faults alone leave the data-chaos knobs untouched.
  EXPECT_DOUBLE_EQ(config->flip_byte, 0.0);
  EXPECT_FALSE(config->any_structural());
}

TEST(ChaosSpec, IoAllSetsEveryIoClassButNotDataFaults) {
  const auto config = chaos::parse_chaos_spec("io.all=2%");
  ASSERT_TRUE(config.has_value());
  EXPECT_DOUBLE_EQ(config->io.eio, 0.02);
  EXPECT_DOUBLE_EQ(config->io.enospc, 0.02);
  EXPECT_DOUBLE_EQ(config->io.short_write, 0.02);
  EXPECT_DOUBLE_EQ(config->io.torn_temp, 0.02);
  EXPECT_DOUBLE_EQ(config->io.stale_rename, 0.02);
  EXPECT_DOUBLE_EQ(config->io.slow_op, 0.02);
  EXPECT_DOUBLE_EQ(config->flip_byte, 0.0);
  EXPECT_DOUBLE_EQ(config->truncate_stack, 0.0);
}

TEST(ChaosSpec, ParsesKillHarnessKnobs) {
  const auto kill = chaos::parse_chaos_spec("io.kill_at=7");
  ASSERT_TRUE(kill.has_value());
  EXPECT_EQ(kill->io.kill_at_op, 7u);
  EXPECT_EQ(kill->io.kill_mode, util::io::FaultConfig::KillMode::kKill);
  EXPECT_TRUE(kill->io.any());  // the harness alone enables the plan

  const auto dead = chaos::parse_chaos_spec("io.kill_at=3,io.kill_mode=dead");
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->io.kill_mode, util::io::FaultConfig::KillMode::kDead);

  std::string error;
  EXPECT_FALSE(
      chaos::parse_chaos_spec("io.kill_mode=maybe", &error).has_value());
  EXPECT_FALSE(chaos::parse_chaos_spec("io.bogus=1", &error).has_value());
  EXPECT_NE(error.find("unknown fault"), std::string::npos);
}

TEST(ChaosSpec, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(chaos::parse_chaos_spec("bogus=1", &error).has_value());
  EXPECT_NE(error.find("unknown fault"), std::string::npos);
  EXPECT_FALSE(chaos::parse_chaos_spec("stack=abc", &error).has_value());
  EXPECT_FALSE(chaos::parse_chaos_spec("stack=1.5", &error).has_value());
  EXPECT_FALSE(chaos::parse_chaos_spec("stack=-0.1", &error).has_value());
  EXPECT_FALSE(chaos::parse_chaos_spec("seed=banana", &error).has_value());

  // Empty spec parses to a disabled config.
  const auto empty = chaos::parse_chaos_spec("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->enabled());
}

// --- structural corruption -------------------------------------------------

TEST(Corruptor, StructuralFaultsAreDeterministic) {
  chaos::ChaosConfig config;
  config.truncate_stack = 0.3;
  config.drop_extension = 0.2;
  config.duplicate_ttl = 0.1;
  config.reorder_ttl = 0.1;
  config.bogus_ip2as = 0.1;
  config.monitor_blackout = 0.2;

  dataset::Snapshot a = sample_snapshot();
  dataset::Snapshot b = a;
  chaos::Corruptor ca(config);
  chaos::Corruptor cb(config);
  ca.corrupt(a);
  cb.corrupt(b);
  EXPECT_EQ(dataset::serialize_snapshot(a), dataset::serialize_snapshot(b));
  EXPECT_GT(ca.stats().total(), 0u);
  EXPECT_EQ(ca.stats().total(), cb.stats().total());

  // A different seed corrupts differently.
  config.seed ^= 0x5EEDull;
  dataset::Snapshot c = sample_snapshot();
  chaos::Corruptor cc(config);
  cc.corrupt(c);
  EXPECT_NE(dataset::serialize_snapshot(a), dataset::serialize_snapshot(c));
}

TEST(Corruptor, DropExtensionRemovesLabelStacks) {
  chaos::ChaosConfig config;
  config.drop_extension = 1.0;
  dataset::Snapshot snap = sample_snapshot();
  chaos::Corruptor corruptor(config);
  corruptor.corrupt(snap);
  EXPECT_GT(corruptor.stats().extensions_dropped, 0u);
  for (const auto& t : snap.traces) {
    for (const auto& h : t.hops) EXPECT_FALSE(h.has_labels());
  }
}

TEST(Corruptor, BlackoutDropsWholeMonitors) {
  chaos::ChaosConfig config;
  config.monitor_blackout = 1.0;
  dataset::Snapshot snap = sample_snapshot();
  ASSERT_FALSE(snap.traces.empty());
  const std::size_t before = snap.traces.size();
  chaos::Corruptor corruptor(config);
  corruptor.corrupt(snap);
  EXPECT_TRUE(snap.traces.empty());
  EXPECT_EQ(corruptor.stats().monitors_blacked_out, 4u);
  EXPECT_EQ(corruptor.stats().traces_dropped, before);
}

TEST(Corruptor, BogusIp2AsRemapsIntoPrivateRange) {
  chaos::ChaosConfig config;
  config.bogus_ip2as = 1.0;
  dataset::Snapshot snap = sample_snapshot();
  chaos::Corruptor corruptor(config);
  corruptor.corrupt(snap);
  EXPECT_GT(corruptor.stats().asns_scrambled, 0u);
  for (const auto& t : snap.traces) {
    for (const auto& h : t.hops) {
      if (!h.anonymous() && h.asn != 0) {
        EXPECT_GE(h.asn, 64512u);
        EXPECT_LT(h.asn, 64512u + 1024u);
      }
    }
  }
}

// --- wire corruption -------------------------------------------------------

TEST(Corruptor, FlippedBytesSpareTheContainerHeader) {
  chaos::ChaosConfig config;
  config.flip_byte = 0.02;
  dataset::Snapshot snap = sample_snapshot();
  const std::string clean = dataset::serialize_snapshot(snap);
  std::string dirty = clean;
  chaos::Corruptor corruptor(config);
  corruptor.corrupt_bytes(dirty, /*key=*/42);
  ASSERT_NE(dirty, clean);
  EXPECT_GT(corruptor.stats().bytes_flipped, 0u);
  EXPECT_EQ(dirty.substr(0, 5), clean.substr(0, 5));

  // Same key: identical corruption. Different key: different corruption.
  std::string again = clean;
  chaos::Corruptor c2(config);
  c2.corrupt_bytes(again, 42);
  EXPECT_EQ(again, dirty);
  std::string other = clean;
  chaos::Corruptor c3(config);
  c3.corrupt_bytes(other, 43);
  EXPECT_NE(other, dirty);
}

TEST(Corruptor, TolerantDecodeSalvagesFlippedSnapshot) {
  chaos::ChaosConfig config;
  config.flip_byte = 0.005;
  dataset::Snapshot snap = sample_snapshot();
  std::string bytes = dataset::serialize_snapshot(snap);
  chaos::Corruptor corruptor(config);
  corruptor.corrupt_bytes(bytes, 7);

  dataset::DecodeOptions tolerant;
  tolerant.tolerant = true;
  dataset::DecodeDiagnostics diag;
  const auto salvaged = dataset::parse_snapshot(bytes, tolerant, &diag);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_GT(diag.records_decoded, 0u);
  EXPECT_EQ(salvaged->trace_count(), diag.records_decoded);
}

// --- execution faults ------------------------------------------------------

TEST(Corruptor, CycleFailureIsDeterministicPerCycle) {
  chaos::ChaosConfig config;
  config.cycle_failure = 0.5;
  chaos::Corruptor a(config);
  chaos::Corruptor b(config);
  std::vector<bool> draws_a;
  std::uint64_t fails = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    const bool f = a.should_fail_cycle(cycle);
    draws_a.push_back(f);
    fails += f ? 1u : 0u;
    EXPECT_EQ(b.should_fail_cycle(cycle), f);
  }
  EXPECT_GT(fails, 20u);
  EXPECT_LT(fails, 80u);
  EXPECT_EQ(a.stats().cycles_failed, fails);
}

// --- checkpoints -----------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  // Pid-suffixed: concurrent ctest -j same-fixture processes must not
  // clobber each other's dirs.
  CheckpointTest()
      : dir_(fs::temp_directory_path() /
             ("mum_chaos_ckpt_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~CheckpointTest() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(CheckpointTest, CycleReportRoundTripsByteIdentically) {
  run::Runner runner(small_runner(1));
  const lpr::CycleReport report = runner.run_cycle(0);
  ASSERT_GT(report.global.total(), 0u);

  const std::string bytes = run::serialize_cycle_report(report);
  const auto parsed = run::parse_cycle_report(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(run::serialize_cycle_report(*parsed), bytes);
  EXPECT_EQ(parsed->to_json(true), report.to_json(true));
}

TEST_F(CheckpointTest, CorruptBytesAreRejected) {
  run::Runner runner(small_runner(1));
  const lpr::CycleReport report = runner.run_cycle(0);
  const std::string bytes = run::serialize_cycle_report(report);

  EXPECT_FALSE(run::parse_cycle_report("").has_value());
  EXPECT_FALSE(run::parse_cycle_report("garbage").has_value());
  EXPECT_FALSE(
      run::parse_cycle_report(bytes.substr(0, bytes.size() / 2)).has_value());
  std::string flipped = bytes;
  flipped[flipped.size() / 2] =
      static_cast<char>(static_cast<unsigned char>(flipped[flipped.size() / 2]) ^
                        0x10u);
  EXPECT_FALSE(run::parse_cycle_report(flipped).has_value());
  std::string padded = bytes + "x";
  EXPECT_FALSE(run::parse_cycle_report(padded).has_value());
}

TEST_F(CheckpointTest, FileRoundTripAndCorruptFileRecovery) {
  run::Runner runner(small_runner(1));
  const lpr::CycleReport report = runner.run_cycle(0);
  ASSERT_TRUE(run::write_checkpoint_file(dir_.string(), 0, report));
  const auto loaded = run::load_checkpoint_file(dir_.string(), 0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(run::serialize_cycle_report(*loaded),
            run::serialize_cycle_report(report));

  // Missing and corrupt files both read back as "recompute".
  EXPECT_FALSE(run::load_checkpoint_file(dir_.string(), 1).has_value());
  std::ofstream(dir_ / run::checkpoint_filename(0), std::ios::binary)
      << "truncated";
  EXPECT_FALSE(run::load_checkpoint_file(dir_.string(), 0).has_value());
}

// --- containment -----------------------------------------------------------

TEST(Containment, KeepGoingContainsEveryInjectedFailure) {
  auto config = small_runner(4);
  config.chaos.cycle_failure = 1.0;
  config.keep_going = true;
  run::Runner runner(config);
  const auto outcome = runner.run_all_contained();

  EXPECT_EQ(outcome.manifest.count(run::CycleOutcome::kFailed), 4u);
  EXPECT_FALSE(outcome.manifest.complete());
  EXPECT_FALSE(outcome.manifest.failure_budget_exceeded);
  ASSERT_EQ(outcome.report.cycles.size(), 4u);
  for (int cycle = 0; cycle < 4; ++cycle) {
    const auto& status = outcome.manifest.cycles[cycle];
    EXPECT_EQ(status.cycle, cycle);
    EXPECT_NE(status.error.find("injected failure"), std::string::npos);
    // Placeholder slot: labeled but empty.
    const auto& slot = outcome.report.cycles[static_cast<std::size_t>(cycle)];
    EXPECT_EQ(slot.cycle_id, static_cast<std::uint32_t>(cycle));
    EXPECT_FALSE(slot.date.empty());
    EXPECT_EQ(slot.global.total(), 0u);
  }
}

TEST(Containment, FailFastSkipsRemainingCycles) {
  auto config = small_runner(6);
  config.chaos.cycle_failure = 1.0;
  config.keep_going = false;
  run::Runner runner(config);
  const auto outcome = runner.run_all_contained();

  const auto failed = outcome.manifest.count(run::CycleOutcome::kFailed);
  const auto skipped = outcome.manifest.count(run::CycleOutcome::kSkipped);
  EXPECT_GE(failed, 1u);
  EXPECT_EQ(failed + skipped, 6u);
  EXPECT_FALSE(outcome.manifest.complete());
}

TEST(Containment, FailureBudgetAbortsTheRun) {
  auto config = small_runner(6);
  config.chaos.cycle_failure = 1.0;
  config.keep_going = true;
  config.failure_budget = 1;
  run::Runner runner(config);
  const auto outcome = runner.run_all_contained();

  EXPECT_TRUE(outcome.manifest.failure_budget_exceeded);
  EXPECT_GE(outcome.manifest.count(run::CycleOutcome::kFailed), 2u);
  EXPECT_GE(outcome.manifest.count(run::CycleOutcome::kSkipped), 1u);
}

TEST(Containment, CleanRunMatchesRunAllAcrossThreadCounts) {
  auto config = small_runner(3);
  run::Runner serial(config);
  const auto baseline = serial.run_all();
  const auto contained = serial.run_all_contained();
  EXPECT_TRUE(contained.manifest.complete());
  EXPECT_EQ(contained.report.to_json(), baseline.to_json());

  config.threads = 3;
  run::Runner threaded(config);
  const auto parallel = threaded.run_all_contained();
  EXPECT_EQ(parallel.report.to_json(), baseline.to_json());
}

// --- resume ----------------------------------------------------------------

class ResumeTest : public ::testing::Test {
 protected:
  ResumeTest()
      : dir_(fs::temp_directory_path() /
             ("mum_chaos_resume_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
  }
  ~ResumeTest() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(ResumeTest, ResumedRunIsByteIdenticalAtAnyThreadCount) {
  constexpr int kCycles = 6;
  auto config = small_runner(kCycles, /*threads=*/2);
  ASSERT_TRUE(chaos::parse_chaos_spec("stack=2%,noext=2%,flip=0.0005")
                  .has_value());
  config.chaos = *chaos::parse_chaos_spec("stack=2%,noext=2%,flip=0.0005");
  config.checkpoint_dir = dir_.string();

  run::Runner first(config);
  const auto full = first.run_all_contained();
  ASSERT_TRUE(full.manifest.complete());
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    EXPECT_TRUE(fs::exists(dir_ / run::checkpoint_filename(cycle)));
  }

  // Simulate a killed run: two checkpoints never got written, one was cut
  // off mid-write. Resume must recompute exactly those cycles and produce a
  // byte-identical report — here at a different thread count than the
  // original run.
  fs::remove(dir_ / run::checkpoint_filename(1));
  fs::remove(dir_ / run::checkpoint_filename(4));
  {
    const fs::path damaged = dir_ / run::checkpoint_filename(2);
    std::string bytes;
    {
      std::ifstream is(damaged, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(is), {});
    }
    std::ofstream(damaged, std::ios::binary)
        << bytes.substr(0, bytes.size() / 3);
  }

  config.threads = 3;
  config.resume = true;
  run::Runner second(config);
  const auto resumed = second.run_all_contained();
  EXPECT_TRUE(resumed.manifest.complete());
  EXPECT_EQ(resumed.manifest.count(run::CycleOutcome::kFromCheckpoint), 3u);
  EXPECT_EQ(resumed.manifest.count(run::CycleOutcome::kOk), 3u);
  EXPECT_EQ(resumed.report.to_json(), full.report.to_json());

  // Resuming a finished run restores every cycle from disk.
  run::Runner third(config);
  const auto restored = third.run_all_contained();
  EXPECT_EQ(restored.manifest.count(run::CycleOutcome::kFromCheckpoint),
            static_cast<std::size_t>(kCycles));
  EXPECT_EQ(restored.report.to_json(), full.report.to_json());
}

TEST_F(ResumeTest, ResumeReingestsMixedFormatDataShards) {
  constexpr int kCycles = 4;
  auto config = small_runner(kCycles, /*threads=*/2);
  config.checkpoint_dir = dir_.string();
  config.checkpoint_data = true;  // persist per-snapshot shards (v2 default)
  run::Runner first(config);
  const auto full = first.run_all_contained();
  ASSERT_TRUE(full.manifest.complete());
  ASSERT_TRUE(fs::exists(
      dir_ / run::data_shard_filename(1, 0, dataset::kWartsLiteVersion)));

  // Rewrite cycle 2's shards as v3 packs — the directory now mixes formats.
  const auto shard_paths = run::find_data_shards(dir_.string(), 2);
  ASSERT_FALSE(shard_paths.empty());
  for (std::size_t sub = 0; sub < shard_paths.size(); ++sub) {
    std::string bytes;
    {
      std::ifstream is(shard_paths[sub], std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(is), {});
    }
    const auto snap = dataset::parse_snapshot(bytes);
    ASSERT_TRUE(snap.has_value());
    fs::remove(shard_paths[sub]);
    ASSERT_TRUE(run::write_data_shard(dir_.string(), 2, sub, *snap,
                                      dataset::kPackVersion));
  }
  // Kill two report checkpoints: cycle 1 (v2 shards) and cycle 2 (now v3).
  fs::remove(dir_ / run::checkpoint_filename(1));
  fs::remove(dir_ / run::checkpoint_filename(2));

  // Resume re-ingests both cycles from their shards — sniffing the magic
  // per shard — and the report comes out identical to the original run.
  config.resume = true;
  config.threads = 3;
  run::Runner second(config);
  const auto resumed = second.run_all_contained();
  ASSERT_TRUE(resumed.manifest.complete());
  EXPECT_EQ(resumed.manifest.count(run::CycleOutcome::kFromCheckpoint), 2u);
  EXPECT_EQ(resumed.manifest.count(run::CycleOutcome::kFromData), 2u);
  EXPECT_EQ(resumed.manifest.count(run::CycleOutcome::kOk), 0u);
  EXPECT_EQ(resumed.report.to_json(), full.report.to_json());

  // The from-data path rewrote the missing report checkpoints, so a third
  // resume restores every cycle from disk without touching the shards.
  run::Runner third(config);
  const auto restored = third.run_all_contained();
  EXPECT_EQ(restored.manifest.count(run::CycleOutcome::kFromCheckpoint),
            static_cast<std::size_t>(kCycles));
  EXPECT_EQ(restored.report.to_json(), full.report.to_json());
}

// --- chaos soak ------------------------------------------------------------

// The headline robustness guarantee (DESIGN.md "Failure model &
// diagnostics"): a 60-cycle campaign with every dataset fault at 2% (plus
// light wire corruption) completes every cycle and degrades boundedly.
// Blackouts are catastrophic for individual cycles by construction — a dead
// monitor plus the Persistence filter legitimately wipes that monitor's
// LSPs, the same mechanism behind the paper's cycle-23/58 dips — so the
// per-cycle bound is quantile-based, with a hard envelope on the corpus.
TEST(ChaosSoak, SixtyCyclesAtTwoPercentDegradeBoundedly) {
  constexpr int kCycles = 60;
  run::RunnerConfig config;
  // The CLI's --small scale: big enough for ~20 IOTPs per cycle, cheap
  // enough for a 60-cycle soak in a unit test.
  config.gen.background_transit = 8;
  config.gen.stub_ases = 12;
  config.gen.monitors = 6;
  config.gen.dests_per_monitor = 150;
  config.first_cycle = 0;
  config.last_cycle = kCycles - 1;
  config.threads = 0;

  run::Runner clean(config);
  const auto baseline = clean.run_all_contained();
  ASSERT_TRUE(baseline.manifest.complete());

  config.chaos = *chaos::parse_chaos_spec(
      "stack=2%,noext=2%,dupttl=2%,reorder=2%,ip2as=2%,blackout=2%,"
      "flip=0.0005");
  run::Runner chaotic(config);
  const auto soak = chaotic.run_all_contained();

  // Every cycle completes despite the faults.
  ASSERT_TRUE(soak.manifest.complete());
  EXPECT_EQ(soak.manifest.count(run::CycleOutcome::kOk),
            static_cast<std::size_t>(kCycles));
  EXPECT_GT(soak.manifest.chaos_total().total(), 0u);

  std::uint64_t clean_total = 0;
  std::uint64_t chaos_total = 0;
  std::vector<double> ratios;
  int collapsed = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const auto& c = baseline.report.cycles[static_cast<std::size_t>(cycle)];
    const auto& x = soak.report.cycles[static_cast<std::size_t>(cycle)];
    ASSERT_GT(c.global.total(), 0u);
    // Upper bound is per-cycle hard: duplication can only inflate so much.
    EXPECT_LT(x.global.total(), c.global.total() * 2)
        << "cycle " << cycle << " inflated";
    if (x.global.total() * 4 <= c.global.total()) ++collapsed;
    ratios.push_back(static_cast<double>(x.global.total()) /
                     static_cast<double>(c.global.total()));
    clean_total += c.global.total();
    chaos_total += x.global.total();
  }
  // Documented bounds: at most 15% of cycles lose over three quarters of
  // their IOTPs, the median cycle retains at least 60%, and the corpus-wide
  // IOTP count stays within [50%, 110%] of the clean run.
  EXPECT_LE(collapsed, kCycles * 15 / 100);
  std::sort(ratios.begin(), ratios.end());
  EXPECT_GE(ratios[ratios.size() / 2], 0.6);
  EXPECT_GT(chaos_total * 10, clean_total * 5);
  EXPECT_LT(chaos_total * 10, clean_total * 11);
}

}  // namespace
}  // namespace mum
