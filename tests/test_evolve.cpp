// Delta-based cycle evolution: the DeltaEvolver oracle contract and the
// allocation machinery underneath it.
//
// The load-bearing property: a delta-evolved cycle is byte-identical to a
// from-scratch `instantiate(cycle)` — at any thread count, from any starting
// cycle, with every churn knob turned on. The full rebuild (`--evolve off`)
// stays available as the oracle; these tests hold the two paths against each
// other at every layer (arena, label pools, incremental SPF, evolver, runner,
// resume).
#include "gen/evolve.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "dataset/warts_lite.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "igp/spf.h"
#include "mpls/label_pool.h"
#include "mpls/rsvp.h"
#include "run/checkpoint.h"
#include "run/manifest.h"
#include "run/runner.h"
#include "topo/builder.h"
#include "topo/topology.h"
#include "util/arena.h"
#include "util/rng.h"

namespace mum {
namespace {

namespace fs = std::filesystem;

net::Ipv4Addr ip(std::uint32_t low) { return net::Ipv4Addr(10, 0, 0, low); }

// --- util::Arena -----------------------------------------------------------

TEST(Arena, BumpAllocatesZeroedAlignedArrays) {
  util::Arena arena(256);
  auto a = arena.make_array<std::uint32_t>(10);
  ASSERT_EQ(a.size(), 10u);
  for (const std::uint32_t v : a) EXPECT_EQ(v, 0u);
  auto b = arena.make_array<std::uint64_t>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) %
                alignof(std::uint64_t),
            0u);
  EXPECT_GE(arena.used(), 10 * sizeof(std::uint32_t) + 3 * sizeof(std::uint64_t));
}

TEST(Arena, CopyArrayPreservesContents) {
  util::Arena arena;
  const std::vector<std::uint16_t> src = {1, 2, 3, 5, 8, 13};
  auto copy = arena.copy_array<std::uint16_t>({src.data(), src.size()});
  ASSERT_EQ(copy.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(copy[i], src[i]);
  EXPECT_NE(static_cast<const void*>(copy.data()),
            static_cast<const void*>(src.data()));
}

TEST(Arena, ResetRetainsChunksAndTracksHighWater) {
  util::Arena arena(64);
  // Force growth across several chunks.
  for (int i = 0; i < 50; ++i) arena.make_array<std::uint64_t>(16);
  EXPECT_GT(arena.chunk_count(), 1u);
  const std::size_t cap = arena.capacity();
  const std::size_t hw = arena.high_water();
  EXPECT_GT(hw, 0u);

  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), cap);      // chunks retained, not freed
  EXPECT_EQ(arena.high_water(), hw);     // peak survives the reset

  // A same-sized workload after reset fits in the retained chunks: the
  // capacity high-water mark is reached once, then allocation stops.
  for (int i = 0; i < 50; ++i) arena.make_array<std::uint64_t>(16);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(ArenaVector, GrowsAndKeepsElements) {
  util::Arena arena(128);
  util::ArenaVector<std::uint32_t> v(arena);
  EXPECT_TRUE(v.empty());
  for (std::uint32_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
  std::uint64_t sum = 0;
  for (const std::uint32_t x : v) sum += x;
  EXPECT_EQ(sum, 3ull * 999 * 1000 / 2);
  v.clear();
  EXPECT_EQ(v.size(), 0u);
}

// --- mpls::LabelPool state/burn --------------------------------------------

TEST(LabelPool, BurnMatchesRepeatedAllocateIncludingWrap) {
  // The Juniper range is 500001 wide; 1000003 burns wrap it twice — burn's
  // O(1) arithmetic must land exactly where the allocate loop does.
  for (const std::uint64_t n :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{499999},
        std::uint64_t{500001}, std::uint64_t{1000003}}) {
    mpls::LabelPool looped(topo::Vendor::kJuniper, /*seed=*/42);
    mpls::LabelPool burned = looped;
    for (std::uint64_t i = 0; i < n; ++i) looped.allocate();
    burned.burn(n);
    EXPECT_EQ(burned.state().next, looped.state().next) << "n=" << n;
    EXPECT_EQ(burned.state().count, looped.state().count) << "n=" << n;
    // And the next real draw agrees.
    EXPECT_EQ(burned.allocate(), looped.allocate()) << "n=" << n;
  }
}

TEST(LabelPool, RestoreRewindsToTheExactDrawSequence) {
  mpls::LabelPool pool(topo::Vendor::kCisco, /*seed=*/7);
  pool.burn(123);
  const mpls::LabelPool::State snap = pool.state();
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(pool.allocate());
  pool.restore(snap);
  EXPECT_EQ(pool.allocated(), snap.count);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(pool.allocate(), first[i]);
}

// --- igp::IgpState::reconverge_delta ---------------------------------------

topo::AsTopology random_topology(std::uint64_t seed) {
  util::Rng rng(seed);
  topo::BuildParams params;
  params.asn = 1;
  params.block = net::Ipv4Prefix(net::Ipv4Addr(16, 0, 0, 0), 16);
  params.core_routers = 4 + static_cast<int>(rng.below(5));
  params.pop_routers = 8 + static_cast<int>(rng.below(16));
  params.parallel_link_prob = (seed % 2 == 0) ? 0.4 : 0.0;
  params.uniform_costs = (seed % 3 != 0);
  params.heavy_cost_share = 0.25;
  return topo::build_as_topology(params, rng);
}

igp::LinkOverlay random_overlay(const topo::AsTopology& topo, util::Rng& rng) {
  igp::LinkOverlay overlay;
  overlay.down.assign(topo.link_count(), false);
  overlay.cost.assign(topo.link_count(), 0);
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    if (rng.below(12) == 0) overlay.down[l] = true;
    if (rng.below(8) == 0) {
      overlay.cost[l] = 1 + static_cast<std::uint32_t>(rng.below(10));
    }
  }
  if (overlay.trivial()) overlay = igp::LinkOverlay{};  // canonical form
  return overlay;
}

// Walks a chain of random overlay transitions (downs appearing/clearing,
// metrics rising/falling, back to trivial) and checks every delta-reconverged
// state against a from-scratch compute under the same overlay. May partition
// the topology — delta reconvergence must survive unreachable regions.
TEST(ReconvergeDelta, MatchesFullRecomputeAcrossOverlayTransitions) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const topo::AsTopology topo = random_topology(seed);
    util::Rng rng(seed * 977 + 5);

    igp::LinkOverlay prev;  // start trivial
    igp::IgpState state = igp::IgpState::compute(topo);
    for (int step = 0; step < 5; ++step) {
      // Last step returns to trivial: the "failure repaired" transition.
      igp::LinkOverlay now =
          step == 4 ? igp::LinkOverlay{} : random_overlay(topo, rng);
      igp::IgpState::ReconvergeStats stats;
      const igp::IgpState delta = igp::IgpState::reconverge_delta(
          topo, state, prev, now, nullptr, &stats);
      const igp::IgpState full = igp::IgpState::compute(
          topo, nullptr, nullptr, now.trivial() ? nullptr : &now);
      ASSERT_TRUE(delta == full) << "seed=" << seed << " step=" << step;
      EXPECT_EQ(stats.sources_total, topo.router_count());
      EXPECT_LE(stats.sources_recomputed, stats.sources_total);
      state = full;
      prev = std::move(now);
    }
  }
}

TEST(ReconvergeDelta, IdenticalOverlayRecomputesNothing) {
  const topo::AsTopology topo = random_topology(3);
  util::Rng rng(99);
  const igp::LinkOverlay overlay = random_overlay(topo, rng);
  const igp::IgpState base =
      igp::IgpState::compute(topo, nullptr, nullptr,
                             overlay.trivial() ? nullptr : &overlay);
  igp::IgpState::ReconvergeStats stats;
  const igp::IgpState same = igp::IgpState::reconverge_delta(
      topo, base, overlay, overlay, nullptr, &stats);
  EXPECT_TRUE(same == base);
  EXPECT_EQ(stats.sources_recomputed, 0u);
}

// --- RsvpTePlane arena reuse ------------------------------------------------

// A steady month-over-month mutation workload must stop allocating once the
// scratch arena's high-water mark is reached: capacity after a couple of
// cycles equals capacity after a hundred.
TEST(RsvpArena, ScratchCapacityStopsGrowingAcrossRestoreCycles) {
  topo::AsTopology topo(1);
  const auto a = topo.add_router(ip(1), topo::Vendor::kJuniper, true);
  const auto b = topo.add_router(ip(2), topo::Vendor::kJuniper, false);
  const auto c = topo.add_router(ip(3), topo::Vendor::kJuniper, false);
  const auto d = topo.add_router(ip(4), topo::Vendor::kJuniper, true);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(a, c, ip(103), ip(104), 1);
  topo.add_link(b, d, ip(105), ip(106), 1);
  topo.add_link(c, d, ip(107), ip(108), 1);
  const igp::IgpState igp = igp::IgpState::compute(topo);
  std::vector<mpls::LabelPool> pools;
  for (std::size_t i = 0; i < topo.router_count(); ++i) {
    pools.emplace_back(topo::Vendor::kJuniper, i * 17 + 1);
  }

  mpls::RsvpTePlane plane(&topo, &igp, {});
  util::Rng rng(5);
  const auto ids = plane.signal(a, d, 6, pools, rng);
  plane.mark_pristine();

  std::size_t cap_after_warmup = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (const mpls::LspId id : ids) plane.reoptimize(id, pools);
    EXPECT_GT(plane.scratch_arena().used(), 0u);
    plane.restore_pristine();
    EXPECT_EQ(plane.scratch_arena().used(), 0u);
    if (cycle == 1) cap_after_warmup = plane.scratch_arena().capacity();
  }
  EXPECT_GT(cap_after_warmup, 0u);
  EXPECT_EQ(plane.scratch_arena().capacity(), cap_after_warmup);
}

TEST(RsvpArena, RestorePristineRewindsLspState) {
  topo::AsTopology topo(1);
  const auto a = topo.add_router(ip(1), topo::Vendor::kJuniper, true);
  const auto b = topo.add_router(ip(2), topo::Vendor::kJuniper, false);
  const auto d = topo.add_router(ip(3), topo::Vendor::kJuniper, true);
  topo.add_link(a, b, ip(101), ip(102), 1);
  topo.add_link(b, d, ip(103), ip(104), 1);
  const igp::IgpState igp = igp::IgpState::compute(topo);
  std::vector<mpls::LabelPool> pools;
  for (std::size_t i = 0; i < topo.router_count(); ++i) {
    pools.emplace_back(topo::Vendor::kJuniper, i + 3);
  }

  mpls::RsvpTePlane plane(&topo, &igp, {});
  util::Rng rng(2);
  const auto ids = plane.signal(a, d, 2, pools, rng);
  plane.mark_pristine();

  std::vector<std::vector<mpls::TeHop>> pristine_hops;
  for (const mpls::LspId id : ids) {
    const auto hops = plane.lsp(id).hops;
    pristine_hops.emplace_back(hops.begin(), hops.end());
  }

  // Mutate twice (double reoptimize exercises the one-shot undo guard),
  // then roll back.
  for (const mpls::LspId id : ids) {
    plane.reoptimize(id, pools);
    plane.reoptimize(id, pools);
  }
  EXPECT_EQ(plane.lsp(ids[0]).resignal_count, 2u);
  plane.restore_pristine();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const mpls::TeLsp& lsp = plane.lsp(ids[i]);
    EXPECT_EQ(lsp.resignal_count, 0u);
    ASSERT_EQ(lsp.hops.size(), pristine_hops[i].size());
    for (std::size_t h = 0; h < lsp.hops.size(); ++h) {
      EXPECT_EQ(lsp.hops[h], pristine_hops[i][h]);
    }
  }
}

// --- DeltaEvolver vs instantiate oracle ------------------------------------

gen::GenConfig churny_config() {
  gen::GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  c.churn.link_down_prob = 0.02;
  c.churn.metric_change_prob = 0.03;
  c.churn.router_down_prob = 0.01;
  c.churn.te_resignal_prob = 0.2;
  return c;
}

std::string snapshot_bytes(const gen::CampaignRunner& runner,
                           gen::MonthContext& ctx, int cycle) {
  return dataset::serialize_snapshot(runner.snapshot(ctx, cycle, 0));
}

// Evolving through cycles — contiguously and across gaps — lands on a world
// byte-identical to a from-scratch instantiate of the same cycle.
TEST(DeltaEvolver, EvolvedWorldMatchesInstantiateOracle) {
  const gen::GenConfig config = churny_config();
  const gen::Internet internet(config);
  const dataset::Ip2As ip2as = internet.build_ip2as();
  const gen::CampaignRunner runner(internet, ip2as);

  gen::DeltaEvolver evolver(internet);
  int prev_cycle = -1;
  for (const int cycle : {0, 1, 2, 3, 9, 10, 30}) {  // gaps included
    gen::MonthContext& evolved = evolver.evolve_to(cycle);
    EXPECT_EQ(evolver.last_stats().cycle, cycle);
    EXPECT_EQ(evolver.last_stats().full_build, prev_cycle < 0);
    if (prev_cycle >= 0) {
      EXPECT_EQ(evolver.last_stats().ases_total,
                evolver.last_stats().ases_rebuilt +
                    evolver.last_stats().ases_te_rebuilt +
                    evolver.last_stats().ases_restored);
    }
    gen::MonthContext fresh = internet.instantiate(cycle);
    EXPECT_EQ(snapshot_bytes(runner, evolved, cycle),
              snapshot_bytes(runner, fresh, cycle))
        << "cycle=" << cycle;
    prev_cycle = cycle;
  }
}

// A backward jump cannot be expressed as a delta; the evolver must fall back
// to a full rebuild and still be correct.
TEST(DeltaEvolver, BackwardJumpFallsBackToFullBuild) {
  const gen::GenConfig config = churny_config();
  const gen::Internet internet(config);
  const dataset::Ip2As ip2as = internet.build_ip2as();
  const gen::CampaignRunner runner(internet, ip2as);

  gen::DeltaEvolver evolver(internet);
  evolver.evolve_to(5);
  gen::MonthContext& back = evolver.evolve_to(2);
  EXPECT_TRUE(evolver.last_stats().full_build);
  gen::MonthContext fresh = internet.instantiate(2);
  EXPECT_EQ(snapshot_bytes(runner, back, 2), snapshot_bytes(runner, fresh, 2));
}

// The full month (cycle snapshot + extra snapshots + label dynamics) agrees
// between the evolver path and the from-scratch path.
TEST(DeltaEvolver, MonthDataMatchesFreshMonth) {
  const gen::GenConfig config = churny_config();
  const gen::Internet internet(config);
  const dataset::Ip2As ip2as = internet.build_ip2as();
  const gen::CampaignRunner runner(internet, ip2as);

  gen::DeltaEvolver evolver(internet);
  for (const int cycle : {1, 2, 6}) {
    const dataset::MonthData evolved = runner.month(evolver, cycle);
    const dataset::MonthData fresh = runner.month(cycle);
    ASSERT_EQ(evolved.snapshots.size(), fresh.snapshots.size());
    for (std::size_t i = 0; i < fresh.snapshots.size(); ++i) {
      EXPECT_EQ(dataset::serialize_snapshot(evolved.snapshots[i]),
                dataset::serialize_snapshot(fresh.snapshots[i]))
          << "cycle=" << cycle << " snapshot=" << i;
    }
  }
}

// --- Runner-level parity ----------------------------------------------------

run::RunnerConfig evolve_runner(int cycles, int threads, bool evolve) {
  run::RunnerConfig c;
  c.gen = churny_config();
  c.first_cycle = 0;
  c.last_cycle = cycles - 1;
  c.threads = threads;
  c.evolve = evolve;
  return c;
}

// Delta-vs-rebuild parity across seeds: the whole longitudinal report, not
// just one snapshot, is byte-identical with `evolve` on and off.
TEST(EvolveRunner, ReportMatchesRebuildOracleAcrossSeeds) {
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{20151028}}) {
    auto on = evolve_runner(/*cycles=*/6, /*threads=*/2, /*evolve=*/true);
    auto off = evolve_runner(/*cycles=*/6, /*threads=*/2, /*evolve=*/false);
    on.gen.seed = seed;
    off.gen.seed = seed;
    const auto evolved = run::Runner(on).run_all();
    const auto rebuilt = run::Runner(off).run_all();
    EXPECT_EQ(evolved.to_json(), rebuilt.to_json()) << "seed=" << seed;
  }
}

// The delta path runs cycles serially against one standing world; its output
// must not depend on how much the inner stages parallelize.
TEST(EvolveRunner, ByteIdenticalAtAnyThreadCount) {
  const auto baseline =
      run::Runner(evolve_runner(5, /*threads=*/1, /*evolve=*/true)).run_all();
  const std::string expected = baseline.to_json();
  for (const int threads : {4, 16}) {
    const auto got =
        run::Runner(evolve_runner(5, threads, /*evolve=*/true)).run_all();
    EXPECT_EQ(got.to_json(), expected) << "threads=" << threads;
  }
}

TEST(EvolveRunner, ManifestRecordsDeltaAccounting) {
  auto config = evolve_runner(4, /*threads=*/1, /*evolve=*/true);
  const auto outcome = run::Runner(config).run_all_contained();
  ASSERT_EQ(outcome.manifest.cycles.size(), 4u);
  EXPECT_TRUE(outcome.manifest.evolve);
  EXPECT_EQ(outcome.manifest.cycles[0].delta.cycle, 0);
  EXPECT_TRUE(outcome.manifest.cycles[0].delta.full_build);
  for (int c = 1; c < 4; ++c) {
    const gen::CycleDeltaStats& delta = outcome.manifest.cycles[c].delta;
    EXPECT_EQ(delta.cycle, c);
    EXPECT_FALSE(delta.full_build) << "cycle " << c << " rebuilt from scratch";
    EXPECT_GT(delta.ases_total, 0u);
  }

  auto off = evolve_runner(2, /*threads=*/1, /*evolve=*/false);
  const auto rebuilt = run::Runner(off).run_all_contained();
  EXPECT_FALSE(rebuilt.manifest.evolve);
  for (const run::CycleStatus& status : rebuilt.manifest.cycles) {
    EXPECT_LT(status.delta.cycle, 0);  // no delta accounting off the evolver
  }
}

// --- resume onto an evolved world -------------------------------------------

class EvolveResumeTest : public ::testing::Test {
 protected:
  // Pid-suffixed: ctest -j runs each discovered test as its own process,
  // and concurrent same-fixture processes must not share a dir.
  EvolveResumeTest()
      : dir_(fs::temp_directory_path() /
             ("mum_evolve_resume_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~EvolveResumeTest() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// Interrupt a campaign mid-way, resume it, and require (a) byte-identical
// final report and (b) that the recomputed tail runs on an *evolved* world:
// the first recomputed cycle is the only full build, every later one a delta.
TEST_F(EvolveResumeTest, ResumeLandsOnEvolvedWorldByteIdentically) {
  auto config = evolve_runner(/*cycles=*/8, /*threads=*/1, /*evolve=*/true);
  config.checkpoint_dir = dir_.string();
  const auto uninterrupted = run::Runner(config).run_all_contained();
  ASSERT_TRUE(uninterrupted.manifest.complete());

  // Drop the tail half of the checkpoints, as if the run died at cycle 4.
  for (int cycle = 4; cycle < 8; ++cycle) {
    fs::remove(dir_ / run::checkpoint_filename(cycle));
  }

  auto resume_config = config;
  resume_config.resume = true;
  const auto resumed = run::Runner(resume_config).run_all_contained();

  EXPECT_EQ(resumed.report.to_json(), uninterrupted.report.to_json());
  ASSERT_EQ(resumed.manifest.cycles.size(), 8u);
  for (int cycle = 0; cycle < 4; ++cycle) {
    EXPECT_EQ(resumed.manifest.cycles[cycle].outcome,
              run::CycleOutcome::kFromCheckpoint);
  }
  // Cycle 4 seeds the standing world (full build); 5..7 evolve from it.
  EXPECT_EQ(resumed.manifest.cycles[4].outcome, run::CycleOutcome::kOk);
  EXPECT_TRUE(resumed.manifest.cycles[4].delta.full_build);
  for (int cycle = 5; cycle < 8; ++cycle) {
    EXPECT_EQ(resumed.manifest.cycles[cycle].outcome, run::CycleOutcome::kOk);
    EXPECT_EQ(resumed.manifest.cycles[cycle].delta.cycle, cycle);
    EXPECT_FALSE(resumed.manifest.cycles[cycle].delta.full_build)
        << "resumed cycle " << cycle << " should be a delta step";
  }
}

// --- daily_month standing-context reuse --------------------------------------

// daily_month now rolls one standing context through the days; it must stay
// byte-identical to the per-day re-instantiate it replaced.
TEST(DailyMonth, MatchesPerDayReinstantiation) {
  gen::GenConfig config = churny_config();
  const gen::Internet internet(config);
  const dataset::Ip2As ip2as = internet.build_ip2as();
  const gen::CampaignRunner runner(internet, ip2as);

  // Cycle 27 (April 2012) sits inside a deployment ramp, so day-resolved
  // profiles actually differ day to day — set_day takes the rebuild path.
  const int cycle = 27;
  const int days = 5;
  const auto daily = runner.daily_month(cycle, days);
  ASSERT_EQ(daily.size(), static_cast<std::size_t>(days));

  util::Rng dyn_rng(util::hash_combine(config.seed, 0xDA1ull + cycle));
  for (int day = 1; day <= days; ++day) {
    gen::MonthContext ctx = internet.instantiate(cycle, day);
    if (day > 1) ctx.advance_dynamics(dyn_rng);

    gen::CampaignConfig day_config = runner.config();
    const double wobble =
        0.7 + 0.3 * (static_cast<double>(
                         util::mix64(util::hash_combine(cycle, day)) % 1000) /
                     999.0);
    day_config.monitor_share = runner.config().monitor_share * wobble;
    dataset::Snapshot ref = runner.snapshot(ctx, cycle, day - 1, day_config);
    ref.date = daily[static_cast<std::size_t>(day - 1)].date;

    EXPECT_EQ(dataset::serialize_snapshot(daily[static_cast<std::size_t>(
                  day - 1)]),
              dataset::serialize_snapshot(ref))
        << "day=" << day;
  }
}

// --- scale knobs -------------------------------------------------------------

// `--scale routers=N,lsps=M` must actually deliver the targets: enough
// background routers, and a TE mesh dense enough to carry the LSP count.
TEST(Scale, WorldReachesRouterAndLspTargets) {
  gen::GenConfig config;
  config.background_tier1 = 1;
  config.stub_ases = 8;
  config.monitors = 2;
  config.dests_per_monitor = 20;
  config.scale_routers = 2000;
  config.scale_lsps = 20000;
  const gen::Internet internet(config);

  std::uint64_t routers = 0;
  for (const std::uint32_t asn : internet.modeled_asns()) {
    routers += internet.modeled(asn)->topo.router_count();
  }
  EXPECT_GE(routers, 2000u * 8 / 10);

  const gen::MonthContext ctx = internet.instantiate(0);
  std::uint64_t lsps = 0;
  for (const std::uint32_t asn : internet.modeled_asns()) {
    const probe::AsDataPlane* plane = ctx.plane_of(asn);
    if (plane != nullptr && plane->rsvp != nullptr) {
      lsps += plane->rsvp->lsp_count();
    }
  }
  EXPECT_GE(lsps, 20000u * 8 / 10);
}

}  // namespace
}  // namespace mum
