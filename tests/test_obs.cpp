// Telemetry layer contracts: sharded metrics merge exactly under thread
// contention, histogram bucket edges follow the log2 rule, the JSONL trace
// stays well-formed when many threads emit, stage spans attribute to the
// installed accumulator — and, the load-bearing one, telemetry being on or
// off never changes a report byte at any thread count.
#include "obs/log.h"
#include "obs/stage.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "run/runner.h"
#include "util/thread_pool.h"

namespace mum {
namespace {

gen::GenConfig small_config() {
  gen::GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  return c;
}

// --- Counter / Gauge ---------------------------------------------------------

TEST(Counter, ShardMergeIsExactUnderContention) {
  obs::Counter counter;
  util::ThreadPool pool(8);
  constexpr std::size_t kN = 100000;
  pool.for_each_index(kN, [&](std::size_t i) { counter.add(i % 7 + 1); });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kN; ++i) expected += i % 7 + 1;
  EXPECT_EQ(counter.value(), expected);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, ValueIsStableAcrossRepeatedReads) {
  obs::Counter counter;
  counter.add(41);
  counter.inc();
  EXPECT_EQ(counter.value(), 42u);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndHighWaterMark) {
  obs::Gauge gauge;
  gauge.set(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.max_of(5);
  EXPECT_EQ(gauge.value(), 10);
  gauge.max_of(25);
  EXPECT_EQ(gauge.value(), 25);
  gauge.set(-3);
  EXPECT_EQ(gauge.value(), -3);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketEdgesFollowLog2Rule) {
  // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b).
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t{0}),
            obs::Histogram::kBuckets - 1);
  for (std::size_t b = 1; b < obs::Histogram::kBuckets; ++b) {
    const std::uint64_t lo = obs::Histogram::bucket_min(b);
    const std::uint64_t hi = obs::Histogram::bucket_max(b);
    EXPECT_EQ(obs::Histogram::bucket_of(lo), b) << "bucket " << b;
    EXPECT_EQ(obs::Histogram::bucket_of(hi), b) << "bucket " << b;
    if (b + 1 < obs::Histogram::kBuckets) {
      EXPECT_EQ(hi + 1, obs::Histogram::bucket_min(b + 1));
    }
  }
  EXPECT_EQ(obs::Histogram::bucket_min(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_max(0), 0u);
}

TEST(Histogram, RecordLandsInTheRightBucket) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(7);  // bucket 3: [4, 8)
  h.record(8);  // bucket 4: [8, 16)
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 16u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.buckets[4], 1u);
}

TEST(Histogram, ConcurrentRecordTotalsAreExact) {
  obs::Histogram h;
  util::ThreadPool pool(8);
  constexpr std::size_t kN = 50000;
  pool.for_each_index(kN, [&](std::size_t i) { h.record(i); });
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kN);
  EXPECT_EQ(snap.sum, kN * (kN - 1) / 2);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t n : snap.buckets) bucketed += n;
  EXPECT_EQ(bucketed, kN);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, ReferencesSurviveResetAndJsonListsMetrics) {
  obs::Registry& r = obs::registry();
  obs::Counter& c = r.counter("test_obs.counter");
  obs::Gauge& g = r.gauge("test_obs.gauge");
  obs::Histogram& h = r.histogram("test_obs.hist");
  c.add(3);
  g.set(7);
  h.record(100);

  // Same name returns the same metric.
  EXPECT_EQ(&c, &r.counter("test_obs.counter"));

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"test_obs.counter\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_obs.gauge\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_obs.hist\""), std::string::npos) << json;

  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.inc();  // the cached reference still works after reset
  EXPECT_EQ(r.counter("test_obs.counter").value(), 1u);
  r.reset();
}

// --- TraceLog ----------------------------------------------------------------

TEST(TraceLog, LinesAreWellFormedUnderConcurrentEmission) {
  std::ostringstream sink;
  obs::TraceLog log(sink);
  util::ThreadPool pool(8);
  constexpr std::size_t kN = 500;
  pool.for_each_index(kN, [&](std::size_t i) {
    if (i % 2 == 0) {
      log.span("phase", static_cast<int>(i % 5), i, i + 1);
    } else {
      log.mark("event", -1, "detail with \"quotes\" and \\ and \nnewline");
    }
  });

  std::istringstream lines(sink.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    // One complete JSON object per line, escapes intact (a raw newline or
    // quote inside a string would break the line framing checked here).
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ev\":"), std::string::npos);
  }
  EXPECT_EQ(count, kN + 1);  // every event plus the meta line
  EXPECT_EQ(log.events(), kN + 1);
  EXPECT_NE(sink.str().find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(sink.str().find("\\n"), std::string::npos);
}

TEST(TraceLog, GlobalSinkInstallAndUninstall) {
  EXPECT_EQ(obs::trace(), nullptr);
  std::ostringstream sink;
  {
    obs::TraceLog log(sink);
    obs::set_trace(&log);
    EXPECT_EQ(obs::trace(), &log);
    obs::set_trace(nullptr);
  }
  EXPECT_EQ(obs::trace(), nullptr);
}

// --- Stage attribution -------------------------------------------------------

TEST(Stage, SpanAttributesToInstalledAccumulator) {
  obs::StageTimings timings;
  {
    const obs::StageScope scope(&timings);
    {
      const obs::StageSpan span(obs::Stage::kGenerate, 0);
      // Burn until the clock visibly advances so the span is nonzero.
      const std::uint64_t start = obs::monotonic_ns();
      while (obs::monotonic_ns() == start) {
      }
    }
    { const obs::StageSpan span(obs::Stage::kClassify, 0); }
  }
  EXPECT_GT(timings[obs::Stage::kGenerate], 0u);
  EXPECT_EQ(timings[obs::Stage::kIngest], 0u);
  EXPECT_EQ(timings.total(),
            timings[obs::Stage::kGenerate] + timings[obs::Stage::kSpf] +
                timings[obs::Stage::kClassify]);
}

TEST(Stage, ScopesNestAndRestore) {
  obs::StageTimings outer;
  obs::StageTimings inner;
  {
    const obs::StageScope outer_scope(&outer);
    {
      const obs::StageScope inner_scope(&inner);
      obs::add_stage_ns(obs::Stage::kSpf, 5);
    }
    obs::add_stage_ns(obs::Stage::kSpf, 7);
  }
  obs::add_stage_ns(obs::Stage::kSpf, 11);  // no accumulator: dropped
  EXPECT_EQ(inner[obs::Stage::kSpf], 5u);
  EXPECT_EQ(outer[obs::Stage::kSpf], 7u);
}

TEST(Stage, NamesCoverAllStages) {
  std::set<std::string> names;
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    names.insert(obs::to_cstring(static_cast<obs::Stage>(s)));
  }
  EXPECT_EQ(names.size(), obs::kStageCount);
  EXPECT_TRUE(names.count("generate"));
  EXPECT_TRUE(names.count("spf"));
}

// --- Clocks / process metrics ------------------------------------------------

TEST(Clock, MonotonicAndOrdinalsBehave) {
  const std::uint64_t a = obs::monotonic_ns();
  const std::uint64_t b = obs::monotonic_ns();
  EXPECT_LE(a, b);
  EXPECT_EQ(obs::thread_ordinal(), obs::thread_ordinal());
  std::uint64_t other = obs::thread_ordinal();
  std::thread([&] { other = obs::thread_ordinal(); }).join();
  EXPECT_NE(other, obs::thread_ordinal());
  EXPECT_GT(obs::peak_rss_bytes(), 0u);
}

// --- The determinism contract ------------------------------------------------

run::RunnerConfig study_config(int threads) {
  run::RunnerConfig config;
  config.gen = small_config();
  config.first_cycle = 50;
  config.last_cycle = 52;
  config.threads = threads;
  return config;
}

TEST(Determinism, ReportBytesIdenticalWithTelemetryOnOrOff) {
  obs::registry().reset();
  const auto off = run::Runner(study_config(1)).run_all_contained();

  std::ostringstream trace_sink;
  std::ostringstream log_sink;
  std::string on_json;
  {
    obs::TraceLog trace(trace_sink);
    obs::set_trace(&trace);
    obs::set_log_sink(&log_sink);
    obs::set_log_level(obs::LogLevel::kDebug);
    obs::registry().reset();
    const auto on = run::Runner(study_config(1)).run_all_contained();
    obs::set_log_sink(nullptr);
    obs::set_log_level(obs::LogLevel::kInfo);
    obs::set_trace(nullptr);
    on_json = on.report.to_json();
  }
  EXPECT_EQ(off.report.to_json(), on_json);
  EXPECT_GT(trace_sink.str().size(), 0u);   // the trace actually recorded
  EXPECT_NE(log_sink.str().find("cycle"), std::string::npos);
  obs::set_log_sink(&std::cerr);
}

TEST(Determinism, ReportBytesIdenticalAcrossThreadCountsWithTelemetryOn) {
  std::ostringstream trace_sink;
  obs::TraceLog trace(trace_sink);
  obs::set_trace(&trace);
  const auto serial = run::Runner(study_config(1)).run_all_contained();
  const auto parallel = run::Runner(study_config(4)).run_all_contained();
  obs::set_trace(nullptr);
  EXPECT_EQ(serial.report.to_json(), parallel.report.to_json());
}

TEST(Manifest, RecordsTimingAndPeakRss) {
  const auto outcome = run::Runner(study_config(2)).run_all_contained();
  ASSERT_EQ(outcome.manifest.cycles.size(), 3u);
  for (const run::CycleStatus& status : outcome.manifest.cycles) {
    EXPECT_GT(status.duration_ns, 0u);
    EXPECT_GT(status.stages[obs::Stage::kGenerate], 0u);
    EXPECT_GT(status.stages[obs::Stage::kClassify], 0u);
    EXPECT_LE(status.stages[obs::Stage::kSpf], status.duration_ns);
  }
  EXPECT_GT(outcome.manifest.wall_ns, 0u);
  EXPECT_GT(outcome.manifest.peak_rss_bytes, 0u);

  const std::string json = outcome.manifest.to_json();
  EXPECT_NE(json.find("\"wall_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"generate_ns\":"), std::string::npos);
}

// --- Leveled log -------------------------------------------------------------

TEST(Log, LevelsGateAndSinkRedirects) {
  std::ostringstream sink;
  obs::set_log_sink(&sink);
  obs::set_log_level(obs::LogLevel::kInfo);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kDebug));
  obs::log_info("visible");
  obs::log_debug("hidden");
  obs::set_log_level(obs::LogLevel::kSilent);
  obs::log_info("also hidden");
  obs::set_log_level(obs::LogLevel::kInfo);
  obs::set_log_sink(&std::cerr);

  EXPECT_EQ(sink.str(), "visible\n");
}

}  // namespace
}  // namespace mum
