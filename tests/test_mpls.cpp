#include <gtest/gtest.h>

#include <set>

#include "mpls/label_pool.h"
#include "mpls/ldp.h"
#include "mpls/rsvp.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace mum::mpls {
namespace {

using topo::AsTopology;
using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// --- LabelPool ----------------------------------------------------------

TEST(LabelPool, SequentialAllocation) {
  LabelPool pool(LabelRange{100, 105});
  EXPECT_EQ(pool.allocate(), 100u);
  EXPECT_EQ(pool.allocate(), 101u);
  EXPECT_EQ(pool.allocated(), 2u);
}

TEST(LabelPool, WrapsAtRangeEnd) {
  LabelPool pool(LabelRange{100, 102});
  pool.allocate();  // 100
  pool.allocate();  // 101
  pool.allocate();  // 102
  EXPECT_EQ(pool.allocate(), 100u);  // the Fig. 17 sawtooth wrap
}

TEST(LabelPool, VendorDefaultRanges) {
  EXPECT_EQ(default_range(Vendor::kCisco).first, 16u);
  EXPECT_EQ(default_range(Vendor::kCisco).last, 100000u);
  // Juniper window matches the Fig. 17 observable range.
  EXPECT_EQ(default_range(Vendor::kJuniper).first, 300000u);
  EXPECT_EQ(default_range(Vendor::kJuniper).last, 800000u);
}

TEST(LabelPool, VendorPoolsDontCollide) {
  LabelPool cisco(Vendor::kCisco), juniper(Vendor::kJuniper);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(cisco.allocate(), 300000u);
    EXPECT_GE(juniper.allocate(), 300000u);
  }
}

// --- LDP ----------------------------------------------------------------

// a - b - c (line). c and a are borders.
struct LineFixture {
  LineFixture() : topo(1) {
    a = topo.add_router(ip(1), Vendor::kCisco, true);
    b = topo.add_router(ip(2), Vendor::kCisco, false);
    c = topo.add_router(ip(3), Vendor::kCisco, true);
    topo.add_link(a, b, ip(101), ip(102), 1);
    topo.add_link(b, c, ip(103), ip(104), 1);
    igp = igp::IgpState::compute(topo);
    for (std::size_t i = 0; i < topo.router_count(); ++i) {
      pools.emplace_back(Vendor::kCisco);
    }
  }
  AsTopology topo;
  igp::IgpState igp;
  std::vector<LabelPool> pools;
  RouterId a, b, c;
};

TEST(Ldp, BordersGetFecsByDefault) {
  LineFixture f;
  const LdpPlane plane = LdpPlane::build(f.topo, f.igp, {}, f.pools);
  EXPECT_TRUE(plane.has_fec(f.a));
  EXPECT_FALSE(plane.has_fec(f.b));  // not a border
  EXPECT_TRUE(plane.has_fec(f.c));
}

TEST(Ldp, AllLoopbacksModeBindsEverything) {
  LineFixture f;
  LdpConfig config;
  config.fec_all_loopbacks = true;
  const LdpPlane plane = LdpPlane::build(f.topo, f.igp, config, f.pools);
  EXPECT_TRUE(plane.has_fec(f.b));
}

TEST(Ldp, PhpAdvertisesImplicitNullAtEgress) {
  LineFixture f;
  const LdpPlane plane = LdpPlane::build(f.topo, f.igp, {}, f.pools);
  EXPECT_EQ(plane.label_of(f.c, f.c), net::kLabelImplicitNull);
}

TEST(Ldp, NoPhpAllocatesRealLabelAtEgress) {
  LineFixture f;
  LdpConfig config;
  config.php = false;
  const LdpPlane plane = LdpPlane::build(f.topo, f.igp, config, f.pools);
  EXPECT_GE(plane.label_of(f.c, f.c), net::kLabelFirstUnreserved);
}

TEST(Ldp, TransitRoutersGetRealLabels) {
  LineFixture f;
  const LdpPlane plane = LdpPlane::build(f.topo, f.igp, {}, f.pools);
  const auto label_b = plane.label_of(f.b, f.c);
  const auto label_a = plane.label_of(f.a, f.c);
  EXPECT_GE(label_b, net::kLabelFirstUnreserved);
  EXPECT_GE(label_a, net::kLabelFirstUnreserved);
  // Labels are router-local: different routers, independent values.
  EXPECT_NE(label_a, plane.label_of(f.a, f.a));
}

TEST(Ldp, LabelsUniquePerRouterFec) {
  LineFixture f;
  LdpConfig config;
  config.fec_all_loopbacks = true;
  const LdpPlane plane = LdpPlane::build(f.topo, f.igp, config, f.pools);
  // Within one router, each FEC gets a distinct label.
  std::set<std::uint32_t> labels;
  for (const RouterId fec : {f.a, f.b, f.c}) {
    if (fec == f.b) continue;  // own loopback may be implicit-null
    const auto label = plane.label_of(f.b, fec);
    EXPECT_TRUE(labels.insert(label).second);
  }
}

TEST(Ldp, NoLabelForUnboundFec) {
  LineFixture f;
  const LdpPlane plane = LdpPlane::build(f.topo, f.igp, {}, f.pools);
  EXPECT_EQ(plane.label_of(f.a, f.b), LdpPlane::kNoLabel);
}

TEST(Ldp, UnreachableFecUnbound) {
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, true);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, true);
  (void)b;
  const auto igp = igp::IgpState::compute(topo);
  std::vector<LabelPool> pools(2, LabelPool(Vendor::kCisco));
  const LdpPlane plane = LdpPlane::build(topo, igp, {}, pools);
  EXPECT_EQ(plane.label_of(a, 1), LdpPlane::kNoLabel);
}

// --- RSVP-TE ------------------------------------------------------------

struct DiamondFixture {
  DiamondFixture() : topo(1) {
    a = topo.add_router(ip(1), Vendor::kJuniper, true);
    b = topo.add_router(ip(2), Vendor::kJuniper, false);
    c = topo.add_router(ip(3), Vendor::kJuniper, false);
    d = topo.add_router(ip(4), Vendor::kJuniper, true);
    topo.add_link(a, b, ip(101), ip(102), 1);
    topo.add_link(a, c, ip(103), ip(104), 1);
    topo.add_link(b, d, ip(105), ip(106), 1);
    topo.add_link(c, d, ip(107), ip(108), 1);
    igp = igp::IgpState::compute(topo);
    for (std::size_t i = 0; i < topo.router_count(); ++i) {
      pools.emplace_back(Vendor::kJuniper);
    }
  }
  AsTopology topo;
  igp::IgpState igp;
  std::vector<LabelPool> pools;
  RouterId a, b, c, d;
};

TEST(Rsvp, SignalsRequestedNumberOfLsps) {
  DiamondFixture f;
  RsvpTePlane plane(&f.topo, &f.igp, {});
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 3, f.pools, rng);
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(plane.lsp_count(), 3u);
  EXPECT_EQ(plane.lsps_between(f.a, f.d).size(), 3u);
}

TEST(Rsvp, LspEndsAtEgress) {
  DiamondFixture f;
  RsvpTePlane plane(&f.topo, &f.igp, {});
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  const TeLsp& lsp = plane.lsp(ids[0]);
  ASSERT_FALSE(lsp.hops.empty());
  EXPECT_EQ(lsp.hops.back().router, f.d);
  EXPECT_EQ(lsp.ingress, f.a);
}

TEST(Rsvp, PhpGivesImplicitNullAtEgressOnly) {
  DiamondFixture f;
  RsvpTePlane plane(&f.topo, &f.igp, {});
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  const TeLsp& lsp = plane.lsp(ids[0]);
  for (std::size_t i = 0; i < lsp.hops.size(); ++i) {
    if (i + 1 == lsp.hops.size()) {
      EXPECT_EQ(lsp.hops[i].in_label, net::kLabelImplicitNull);
    } else {
      EXPECT_GE(lsp.hops[i].in_label, net::kLabelFirstUnreserved);
    }
  }
}

TEST(Rsvp, NoPhpAllocatesEgressLabel) {
  DiamondFixture f;
  RsvpConfig config;
  config.php = false;
  RsvpTePlane plane(&f.topo, &f.igp, config);
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  EXPECT_GE(plane.lsp(ids[0]).hops.back().in_label,
            net::kLabelFirstUnreserved);
}

TEST(Rsvp, PerLspLabelsDiffer) {
  // Two LSPs over the same route must carry different labels at shared
  // routers — the Multi-FEC signature.
  DiamondFixture f;
  RsvpConfig config;
  config.diverse_route_prob = 0.0;  // force same route
  RsvpTePlane plane(&f.topo, &f.igp, config);
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 2, f.pools, rng);
  const TeLsp& l1 = plane.lsp(ids[0]);
  const TeLsp& l2 = plane.lsp(ids[1]);
  ASSERT_EQ(l1.hops.size(), l2.hops.size());
  ASSERT_GE(l1.hops.size(), 2u);
  EXPECT_EQ(l1.hops[0].router, l2.hops[0].router);  // same route
  EXPECT_NE(l1.hops[0].in_label, l2.hops[0].in_label);
}

TEST(Rsvp, ComputeRouteVariantZeroFollowsIgp) {
  DiamondFixture f;
  RsvpTePlane plane(&f.topo, &f.igp, {});
  const auto route = plane.compute_route(f.a, f.d, 0);
  ASSERT_EQ(route.size(), 2u);  // a -> {b|c} -> d
}

TEST(Rsvp, ComputeRouteUnreachableEmpty) {
  AsTopology topo(1);
  const auto a = topo.add_router(ip(1), Vendor::kCisco, true);
  const auto b = topo.add_router(ip(2), Vendor::kCisco, true);
  const auto igp = igp::IgpState::compute(topo);
  RsvpTePlane plane(&topo, &igp, {});
  EXPECT_TRUE(plane.compute_route(a, b, 0).empty());
}

TEST(Rsvp, DiverseVariantsCanDiffer) {
  DiamondFixture f;
  RsvpTePlane plane(&f.topo, &f.igp, {});
  std::set<std::vector<topo::LinkId>> routes;
  for (std::uint32_t v = 0; v < 8; ++v) {
    routes.insert(plane.compute_route(f.a, f.d, v));
  }
  EXPECT_GE(routes.size(), 2u);  // the diamond offers two ECMP routes
}

TEST(Rsvp, ReoptimizeKeepsRouteChangesLabels) {
  DiamondFixture f;
  RsvpTePlane plane(&f.topo, &f.igp, {});
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  const TeLsp before = plane.lsp(ids[0]);
  plane.reoptimize(ids[0], f.pools);
  const TeLsp& after = plane.lsp(ids[0]);
  ASSERT_EQ(before.hops.size(), after.hops.size());
  EXPECT_EQ(after.resignal_count, 1u);
  bool some_label_changed = false;
  for (std::size_t i = 0; i < before.hops.size(); ++i) {
    EXPECT_EQ(before.hops[i].router, after.hops[i].router);
    EXPECT_EQ(before.hops[i].in_link, after.hops[i].in_link);
    if (before.hops[i].in_label != after.hops[i].in_label) {
      some_label_changed = true;
    }
  }
  EXPECT_TRUE(some_label_changed);
}

TEST(Rsvp, ReoptimizedLabelsGrowUntilWrap) {
  // Juniper-style monotone label consumption (Fig. 17 sawtooth).
  DiamondFixture f;
  RsvpTePlane plane(&f.topo, &f.igp, {});
  util::Rng rng(1);
  const auto ids = plane.signal(f.a, f.d, 1, f.pools, rng);
  std::uint32_t prev = plane.lsp(ids[0]).hops[0].in_label;
  for (int i = 0; i < 5; ++i) {
    plane.reoptimize(ids[0], f.pools);
    const std::uint32_t cur = plane.lsp(ids[0]).hops[0].in_label;
    EXPECT_GT(cur, prev);  // far from the wrap point in this test
    prev = cur;
  }
}

}  // namespace
}  // namespace mum::mpls
