// Tests for the fault-injectable I/O layer (util::io) and the run
// supervision built on it: deterministic failpoint draws, per-class fault
// semantics, cooperative deadlines, retry accounting, quarantine, ENOSPC
// degradation — and the crash/resume torture loop (kill at the K-th I/O op
// in kDead mode, resume, assert the final report is byte-identical to an
// uninterrupted run, for a few hundred sampled K).
#include "util/io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dataset/warts_lite.h"
#include "run/checkpoint.h"
#include "run/runner.h"

namespace mum {
namespace {

namespace fs = std::filesystem;
using util::io::CycleScope;
using util::io::FaultClass;
using util::io::FaultConfig;
using util::io::FailpointPlan;
using util::io::OpKind;
using util::io::ScopedFailpoints;

gen::GenConfig tiny_gen() {
  gen::GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  return c;
}

run::RunnerConfig tiny_runner(int cycles, int threads = 1) {
  run::RunnerConfig c;
  c.gen = tiny_gen();
  c.first_cycle = 0;
  c.last_cycle = cycles - 1;
  c.threads = threads;
  return c;
}

// --- failpoint plan determinism -----------------------------------------

TEST(FailpointPlan, DrawsAreDeterministic) {
  FaultConfig config;
  config.eio = 0.3;
  config.torn_temp = 0.2;
  FailpointPlan a(config, 42);
  FailpointPlan b(config, 42);
  for (std::uint64_t ord = 0; ord < 500; ++ord) {
    EXPECT_EQ(a.draw(OpKind::kWrite, 3, 0, ord),
              b.draw(OpKind::kWrite, 3, 0, ord));
  }
}

TEST(FailpointPlan, ClassStreamsAreIndependent) {
  // Adding a second fault class must not re-roll the first class's stream:
  // the eio-firing set is identical with and without slow ops configured.
  // (eio is drawn before slow, so where both fire, eio still wins.)
  FaultConfig just_eio;
  just_eio.eio = 0.25;
  FaultConfig both = just_eio;
  both.slow_op = 0.5;
  FailpointPlan a(just_eio, 7);
  FailpointPlan b(both, 7);
  int eio_hits = 0;
  for (std::uint64_t ord = 0; ord < 1000; ++ord) {
    const auto da = a.draw(OpKind::kRead, 0, 0, ord);
    const auto db = b.draw(OpKind::kRead, 0, 0, ord);
    if (da == FaultClass::kEio) {
      ++eio_hits;
      EXPECT_EQ(db, FaultClass::kEio) << "ordinal " << ord;
    } else {
      EXPECT_NE(db, FaultClass::kEio) << "ordinal " << ord;
    }
  }
  EXPECT_GT(eio_hits, 100);  // the rate actually bites
}

TEST(FailpointPlan, AttemptKeysTheDraw) {
  // A fault storm on attempt 0 does not deterministically recur on attempt
  // 1 — this is what makes cycle-level retry worth anything.
  FaultConfig config;
  config.eio = 0.5;
  FailpointPlan plan(config, 11);
  int differs = 0;
  for (std::uint64_t ord = 0; ord < 200; ++ord) {
    if (plan.draw(OpKind::kWrite, 2, 0, ord) !=
        plan.draw(OpKind::kWrite, 2, 1, ord)) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 20);
}

TEST(FailpointPlan, InapplicableClassesNeverFire) {
  FaultConfig config;
  config.enospc = 1.0;
  config.stale_rename = 1.0;
  FailpointPlan plan(config, 1);
  for (std::uint64_t ord = 0; ord < 100; ++ord) {
    // ENOSPC only fires on writes, stale renames only on renames.
    EXPECT_EQ(plan.draw(OpKind::kRead, 0, 0, ord), std::nullopt);
    EXPECT_EQ(plan.draw(OpKind::kMap, 0, 0, ord), std::nullopt);
    EXPECT_EQ(plan.draw(OpKind::kWrite, 0, 0, ord), FaultClass::kEnospc);
    EXPECT_EQ(plan.draw(OpKind::kRename, 0, 0, ord),
              FaultClass::kStaleRename);
  }
}

// --- per-class IoEnv semantics ------------------------------------------

class IoEnvFaults : public ::testing::Test {
 protected:
  // Suffix the pid: ctest -j runs each discovered test as its own process,
  // and concurrent processes must not clobber each other's fixture dirs.
  IoEnvFaults()
      : dir_(fs::temp_directory_path() /
             ("mum_ioenv_faults_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~IoEnvFaults() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(IoEnvFaults, PassthroughWithoutPlan) {
  auto& env = util::io::env();
  ASSERT_TRUE(env.write_file(path("a.bin"), "hello"));
  const auto back = env.read_file(path("a.bin"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "hello");
  EXPECT_TRUE(env.rename_file(path("a.bin"), path("b.bin")));
  EXPECT_FALSE(fs::exists(path("a.bin")));
  const auto mapped = env.map_file(path("b.bin"));
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->view(), "hello");
  EXPECT_FALSE(env.read_file(path("missing.bin")).has_value());
  EXPECT_EQ(env.last_error(), util::io::Error::kNone);  // absent, not failed
}

TEST_F(IoEnvFaults, EioFailsTheOp) {
  FaultConfig config;
  config.eio = 1.0;
  FailpointPlan plan(config, 5);
  const ScopedFailpoints scoped(&plan);
  const CycleScope scope(0, 0, 0);
  auto& env = util::io::env();
  EXPECT_FALSE(env.write_file(path("x.bin"), "data"));
  EXPECT_EQ(env.last_error(), util::io::Error::kEio);
  EXPECT_FALSE(fs::exists(path("x.bin")));
  EXPECT_GT(plan.counts().injected[static_cast<std::size_t>(
                FaultClass::kEio)],
            0u);
}

TEST_F(IoEnvFaults, EnospcClassifiesAsDiskFull) {
  FaultConfig config;
  config.enospc = 1.0;
  FailpointPlan plan(config, 5);
  const ScopedFailpoints scoped(&plan);
  const CycleScope scope(0, 0, 0);
  auto& env = util::io::env();
  EXPECT_FALSE(env.write_file(path("x.bin"), "data"));
  EXPECT_EQ(env.last_error(), util::io::Error::kEnospc);
}

TEST_F(IoEnvFaults, ShortWriteReportsSuccessWithTornFile) {
  FaultConfig config;
  config.short_write = 1.0;
  FailpointPlan plan(config, 5);
  const ScopedFailpoints scoped(&plan);
  const CycleScope scope(0, 0, 0);
  const std::string data(256, 'z');
  // The lie is the point: success reported, strict prefix on disk. The
  // checksum layer downstream must catch it.
  EXPECT_TRUE(util::io::env().write_file(path("x.bin"), data));
  ASSERT_TRUE(fs::exists(path("x.bin")));
  EXPECT_LT(fs::file_size(path("x.bin")), data.size());
}

TEST_F(IoEnvFaults, TornTempFailsWithPrefixOnDisk) {
  FaultConfig config;
  config.torn_temp = 1.0;
  FailpointPlan plan(config, 5);
  const ScopedFailpoints scoped(&plan);
  const CycleScope scope(0, 0, 0);
  const std::string data(256, 'q');
  EXPECT_FALSE(util::io::env().write_file(path("x.tmp"), data));
  ASSERT_TRUE(fs::exists(path("x.tmp")));
  EXPECT_LT(fs::file_size(path("x.tmp")), data.size());
}

TEST_F(IoEnvFaults, StaleRenameReportsSuccessMovingNothing) {
  auto& env = util::io::env();
  ASSERT_TRUE(env.write_file(path("src.bin"), "old"));
  FaultConfig config;
  config.stale_rename = 1.0;
  FailpointPlan plan(config, 5);
  const ScopedFailpoints scoped(&plan);
  const CycleScope scope(0, 0, 0);
  EXPECT_TRUE(env.rename_file(path("src.bin"), path("dst.bin")));
  EXPECT_TRUE(fs::exists(path("src.bin")));
  EXPECT_FALSE(fs::exists(path("dst.bin")));
}

TEST_F(IoEnvFaults, CorruptCheckpointLoadReportsCorrupt) {
  // Valid magic + garbage payload: load must classify kCorrupt (quarantine
  // policy), not kMissing or kIoError.
  std::ofstream(dir_ / run::checkpoint_filename(0), std::ios::binary)
      << "MUMC" << '\x01' << "garbage garbage garbage";
  run::LoadStatus status = run::LoadStatus::kOk;
  EXPECT_FALSE(
      run::load_checkpoint_file(dir_.string(), 0, &status).has_value());
  EXPECT_EQ(status, run::LoadStatus::kCorrupt);
  status = run::LoadStatus::kOk;
  EXPECT_FALSE(
      run::load_checkpoint_file(dir_.string(), 1, &status).has_value());
  EXPECT_EQ(status, run::LoadStatus::kMissing);
}

// --- cooperative deadline -----------------------------------------------

TEST(Deadline, CheckDeadlineThrowsOncePassed) {
  const CycleScope scope(0, 0, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_THROW(util::io::check_deadline(), util::io::DeadlineExceeded);
}

TEST(Deadline, IoOpsThrowOncePassed) {
  const CycleScope scope(0, 0, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_THROW(util::io::env().read_file("/nonexistent"),
               util::io::DeadlineExceeded);
}

TEST(Deadline, NoScopeOrNoDeadlineNeverThrows) {
  EXPECT_NO_THROW(util::io::check_deadline());
  const CycleScope scope(0, 0, 0);
  EXPECT_NO_THROW(util::io::check_deadline());
}

// --- kill harness (kDead mode) ------------------------------------------

TEST_F(IoEnvFaults, DeadModeTearsTheKillOpAndFailsAllLaterOps) {
  FaultConfig config;
  config.kill_at_op = 3;
  config.kill_mode = FaultConfig::KillMode::kDead;
  FailpointPlan plan(config, 5);
  const ScopedFailpoints scoped(&plan);
  const CycleScope scope(0, 0, 0);
  auto& env = util::io::env();
  const std::string data(128, 'k');
  EXPECT_TRUE(env.write_file(path("w1.bin"), data));   // op 1
  EXPECT_TRUE(env.write_file(path("w2.bin"), data));   // op 2
  EXPECT_FALSE(env.write_file(path("w3.bin"), data));  // op 3: the kill
  // The kill op tears the file, like a real crash mid-write.
  ASSERT_TRUE(fs::exists(path("w3.bin")));
  EXPECT_LT(fs::file_size(path("w3.bin")), data.size());
  EXPECT_TRUE(plan.dead());
  // Everything after the death fails silently, touching nothing.
  EXPECT_FALSE(env.write_file(path("w4.bin"), data));
  EXPECT_FALSE(fs::exists(path("w4.bin")));
  EXPECT_FALSE(env.read_file(path("w1.bin")).has_value());
}

// --- runner supervision --------------------------------------------------

class SupervisionRun : public ::testing::Test {
 protected:
  // Pid-suffixed for the same ctest -j process-isolation reason as above.
  SupervisionRun()
      : dir_(fs::temp_directory_path() /
             ("mum_supervision_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~SupervisionRun() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(SupervisionRun, InjectedCycleFailureBurnsEveryAttempt) {
  // Data chaos keys off (seed, cycle), not attempt: a chaos-failed cycle
  // fails every retry, and the retry accounting lands in the manifest.
  auto config = tiny_runner(4);
  config.chaos.cycle_failure = 0.5;
  config.chaos.seed = 3;
  config.keep_going = true;
  config.retries = 2;
  config.retry_backoff_ms = 0;
  const run::Runner runner(config);
  const auto outcome = runner.run_all_contained();
  const auto failed = outcome.manifest.count(run::CycleOutcome::kFailed);
  ASSERT_GT(failed, 0u);
  EXPECT_FALSE(outcome.manifest.complete());
  for (const auto& status : outcome.manifest.cycles) {
    if (status.outcome == run::CycleOutcome::kFailed) {
      EXPECT_EQ(status.attempts, 3);
    } else {
      EXPECT_EQ(status.attempts, 1);
    }
  }
  EXPECT_EQ(outcome.manifest.retries_total(), 2 * failed);

  // Report bytes never depend on how many attempts were configured.
  auto no_retry = config;
  no_retry.retries = 0;
  const auto baseline = run::Runner(no_retry).run_all_contained();
  EXPECT_EQ(outcome.report.to_json(), baseline.report.to_json());
}

TEST_F(SupervisionRun, SlowIoPastDeadlineRecordsTimedOut) {
  auto config = tiny_runner(2);
  config.checkpoint_dir = dir_.string();
  config.keep_going = true;
  config.cycle_deadline_ms = 5;
  config.chaos.io.slow_op = 1.0;   // every io op stalls...
  config.chaos.io.slow_ms = 200;   // ...far past the deadline
  const run::Runner runner(config);
  const auto outcome = runner.run_all_contained();
  EXPECT_EQ(outcome.manifest.count(run::CycleOutcome::kTimedOut), 2u);
  EXPECT_FALSE(outcome.manifest.complete());
  for (const auto& status : outcome.manifest.cycles) {
    EXPECT_EQ(status.outcome, run::CycleOutcome::kTimedOut);
    EXPECT_FALSE(status.error.empty());
    EXPECT_EQ(status.attempts, 1);  // deadlines are never retried
  }
  // Timed-out cycles keep deterministic placeholder slots.
  for (const auto& cycle : outcome.report.cycles) {
    EXPECT_EQ(cycle.iotps.size(), 0u);
  }
}

TEST_F(SupervisionRun, CorruptCheckpointIsQuarantinedAndRecomputed) {
  auto config = tiny_runner(3);
  const auto baseline = run::Runner(config).run_all_contained();

  // Populate checkpoints, then smash one.
  auto write_config = config;
  write_config.checkpoint_dir = dir_.string();
  const run::Runner writer(write_config);
  ASSERT_TRUE(writer.run_all_contained().manifest.complete());
  const fs::path victim = dir_ / run::checkpoint_filename(1);
  ASSERT_TRUE(fs::exists(victim));
  std::ofstream(victim, std::ios::binary) << "MUMC\x01 not a checkpoint";

  auto resume_config = write_config;
  resume_config.resume = true;
  const auto resumed = run::Runner(resume_config).run_all_contained();

  // Byte-identical science, honest manifest: cycle 1 recomputed, the bad
  // bytes preserved in quarantine/ (never deleted), run degraded.
  EXPECT_EQ(resumed.report.to_json(), baseline.report.to_json());
  EXPECT_TRUE(resumed.manifest.complete());
  EXPECT_TRUE(resumed.manifest.degraded());
  EXPECT_EQ(resumed.manifest.quarantined_total(), 1u);
  EXPECT_EQ(resumed.manifest.cycles[1].outcome, run::CycleOutcome::kOk);
  ASSERT_EQ(resumed.manifest.cycles[1].quarantined.size(), 1u);
  EXPECT_EQ(resumed.manifest.cycles[1].quarantined[0].file,
            run::checkpoint_filename(1));
  EXPECT_TRUE(fs::exists(dir_ / "quarantine" / run::checkpoint_filename(1)));
  EXPECT_EQ(resumed.manifest.cycles[0].outcome,
            run::CycleOutcome::kFromCheckpoint);
  // The recomputed cycle rewrote a valid checkpoint in place.
  run::LoadStatus status = run::LoadStatus::kOk;
  EXPECT_TRUE(
      run::load_checkpoint_file(dir_.string(), 1, &status).has_value());
}

TEST_F(SupervisionRun, PersistentEnospcDegradesButCompletes) {
  auto config = tiny_runner(6);
  config.checkpoint_dir = dir_.string();
  config.chaos.io.enospc = 1.0;  // disk full for every write, forever
  config.enospc_degrade_threshold = 3;
  const run::Runner runner(config);
  const auto outcome = runner.run_all_contained();

  // Science intact, persistence dropped, record honest.
  EXPECT_TRUE(outcome.manifest.complete());
  EXPECT_TRUE(outcome.manifest.checkpoints_degraded);
  EXPECT_TRUE(outcome.manifest.degraded());
  EXPECT_FALSE(outcome.manifest.degraded_reason.empty());
  // Exactly threshold failures were recorded before persistence stopped
  // (disk-full is never retried; serial cycles, one checkpoint write each).
  EXPECT_EQ(outcome.manifest.checkpoint_write_failures_total(), 3u);
  for (const auto& cycle : outcome.report.cycles) {
    EXPECT_FALSE(cycle.date.empty());
  }
  const auto baseline = run::Runner(tiny_runner(6)).run_all_contained();
  EXPECT_EQ(outcome.report.to_json(), baseline.report.to_json());
  // The manifest carries the injected-fault totals.
  EXPECT_GT(outcome.manifest.io.injected[static_cast<std::size_t>(
                FaultClass::kEnospc)],
            0u);
}

TEST_F(SupervisionRun, ReportBytesImmuneToIoChaosAndThreads) {
  const auto baseline = run::Runner(tiny_runner(4)).run_all_contained();
  for (const int threads : {1, 4}) {
    auto config = tiny_runner(4, threads);
    config.evolve = false;  // fan cycles across the pool
    config.checkpoint_dir =
        (dir_ / ("t" + std::to_string(threads))).string();
    config.checkpoint_data = true;
    config.chaos.io.eio = 0.02;
    config.chaos.io.enospc = 0.02;
    config.chaos.io.short_write = 0.02;
    config.chaos.io.torn_temp = 0.02;
    config.chaos.io.stale_rename = 0.02;
    config.chaos.seed = 99;
    config.retries = 2;
    config.retry_backoff_ms = 0;
    const auto outcome = run::Runner(config).run_all_contained();
    EXPECT_TRUE(outcome.manifest.complete());
    EXPECT_EQ(outcome.report.to_json(), baseline.report.to_json())
        << "threads=" << threads;
    // Same seed, same plan: identical injection record at any thread count.
    EXPECT_GT(outcome.manifest.io.ops, 0u);
  }
}

// --- crash/resume torture -------------------------------------------------

TEST_F(SupervisionRun, KillAtEveryIoOpResumesByteIdentical) {
  // The crash-consistency claim, proven by exhaustion: for every I/O op K
  // in a checkpointed campaign, kill the run at op K (kDead mode: the op
  // tears like a real crash and everything after fails), then resume with
  // a healthy environment and require the final report byte-identical to
  // an uninterrupted run. Two phases double the sample: kills during the
  // first (writing) run and kills during a resume over a full directory.
  // Sized for the acceptance bar: 10 cycles x 6 shards x 3 ops + 3
  // checkpoint ops each = 210 write-phase ops, plus 10 resume-phase reads.
  auto config = tiny_runner(10);
  config.campaign.extra_snapshots = 5;
  config.checkpoint_dir = dir_.string();
  config.checkpoint_data = true;
  config.keep_going = true;
  const run::Runner writer(config);
  auto resume_config = config;
  resume_config.resume = true;
  const run::Runner resumer(resume_config);

  auto baseline_config = tiny_runner(10);
  baseline_config.campaign.extra_snapshots = 5;
  const std::string baseline =
      run::Runner(baseline_config).run_all_contained().report.to_json();

  // Count the ops of one uninterrupted pass of each phase.
  const auto count_ops = [](const run::Runner& runner) {
    FailpointPlan probe(FaultConfig{}, 0);
    const ScopedFailpoints scoped(&probe);
    runner.run_all_contained();
    return probe.counts().ops;
  };
  fs::remove_all(dir_);
  const std::uint64_t write_ops = count_ops(writer);
  const std::uint64_t resume_ops = count_ops(resumer);
  ASSERT_GT(write_ops, 20u);
  ASSERT_GT(resume_ops, 5u);

  std::uint64_t trials = 0;
  const auto torture = [&](const run::Runner& victim, std::uint64_t ops,
                           bool prepopulate) {
    for (std::uint64_t k = 1; k <= ops; ++k) {
      fs::remove_all(dir_);
      if (prepopulate) writer.run_all_contained();
      FaultConfig config;
      config.kill_at_op = k;
      config.kill_mode = FaultConfig::KillMode::kDead;
      {
        FailpointPlan plan(config, 0);
        const ScopedFailpoints scoped(&plan);
        victim.run_all_contained();  // "crashes" at op k; output discarded
      }
      const auto recovered = resumer.run_all_contained();
      ASSERT_EQ(recovered.report.to_json(), baseline)
          << (prepopulate ? "resume" : "write") << " phase, kill at op "
          << k;
      ASSERT_TRUE(recovered.manifest.complete());
      ++trials;
    }
  };
  torture(writer, write_ops, /*prepopulate=*/false);
  torture(resumer, resume_ops, /*prepopulate=*/true);
  // The acceptance bar: a few hundred sampled kill points.
  EXPECT_GE(trials, 200u) << "write_ops=" << write_ops
                          << " resume_ops=" << resume_ops;
}

// --- mixed-failure resume -------------------------------------------------

TEST_F(SupervisionRun, MixedFailureResumeByteIdenticalAcrossThreads) {
  // One directory holding every kind of damage at once: a valid checkpoint,
  // a corrupt one (quarantined), a missing one with complete shards
  // (kFromData), a missing one with an incomplete shard set (regenerated),
  // and a cycle whose shards were rewritten in the v3 pack format (readers
  // sniff the magic). Resume at 1, 4 and 16 threads must agree byte for
  // byte with the uninterrupted run, and say what happened in the manifest.
  constexpr int kCycles = 5;
  const std::string baseline =
      run::Runner(tiny_runner(kCycles)).run_all_contained().report.to_json();

  const fs::path pristine = dir_ / "pristine";
  auto write_config = tiny_runner(kCycles);
  write_config.checkpoint_dir = pristine.string();
  write_config.checkpoint_data = true;
  ASSERT_TRUE(
      run::Runner(write_config).run_all_contained().manifest.complete());

  const auto damage = [&](const fs::path& dir) {
    fs::remove_all(dir);
    fs::copy(pristine, dir, fs::copy_options::recursive);
    // Cycle 1: corrupt checkpoint (shards intact -> quarantine + kFromData).
    std::ofstream(dir / run::checkpoint_filename(1), std::ios::binary)
        << "MUMC\x01 smashed";
    // Cycle 2: checkpoint missing, shards intact -> kFromData.
    fs::remove(dir / run::checkpoint_filename(2));
    // Cycle 3: checkpoint missing AND a shard missing -> incomplete set,
    // full recompute (a thinned month must never be silently accepted).
    fs::remove(dir / run::checkpoint_filename(3));
    fs::remove(dir / run::data_shard_filename(3, 1, 2));
    // Cycle 4: checkpoint missing, shards re-encoded as v3 packs.
    fs::remove(dir / run::checkpoint_filename(4));
    for (const auto& path : run::find_data_shards(dir.string(), 4)) {
      std::ifstream is(path, std::ios::binary);
      std::stringstream ss;
      ss << is.rdbuf();
      const auto snap = dataset::parse_snapshot(ss.str());
      ASSERT_TRUE(snap.has_value()) << path;
      const std::size_t sub = snap->sub_index;
      ASSERT_TRUE(run::write_data_shard(dir.string(), 4, sub, *snap, 3));
      fs::remove(path);
    }
  };

  for (const int threads : {1, 4, 16}) {
    const fs::path dir = dir_ / ("resume_t" + std::to_string(threads));
    damage(dir);
    auto config = tiny_runner(kCycles, threads);
    config.evolve = false;
    config.checkpoint_dir = dir.string();
    config.checkpoint_data = true;
    config.resume = true;
    const auto outcome = run::Runner(config).run_all_contained();
    EXPECT_EQ(outcome.report.to_json(), baseline) << "threads=" << threads;
    EXPECT_TRUE(outcome.manifest.complete());
    EXPECT_TRUE(outcome.manifest.degraded());  // quarantine happened
    const auto& cycles = outcome.manifest.cycles;
    EXPECT_EQ(cycles[0].outcome, run::CycleOutcome::kFromCheckpoint);
    EXPECT_EQ(cycles[1].outcome, run::CycleOutcome::kFromData);
    EXPECT_EQ(cycles[1].quarantined.size(), 1u);
    EXPECT_EQ(cycles[2].outcome, run::CycleOutcome::kFromData);
    EXPECT_EQ(cycles[3].outcome, run::CycleOutcome::kOk);
    EXPECT_EQ(cycles[4].outcome, run::CycleOutcome::kFromData);
    EXPECT_TRUE(
        fs::exists(dir / "quarantine" / run::checkpoint_filename(1)));
  }
}

}  // namespace
}  // namespace mum
