#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace mum::net {
namespace {

TEST(Ipv4Addr, OctetConstruction) {
  const Ipv4Addr a(192, 168, 1, 20);
  EXPECT_EQ(a.value(), 0xC0A80114u);
}

TEST(Ipv4Addr, ToString) {
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).to_string(), "10.0.0.1");
  EXPECT_EQ(Ipv4Addr(255, 255, 255, 255).to_string(), "255.255.255.255");
  EXPECT_EQ(Ipv4Addr().to_string(), "0.0.0.0");
}

TEST(Ipv4Addr, ParseRoundTrip) {
  for (const char* text :
       {"0.0.0.0", "1.2.3.4", "10.255.0.17", "255.255.255.255"}) {
    const auto addr = Ipv4Addr::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->to_string(), text);
  }
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d",
                           "1..2.3", "1.2.3.-4", "1.2.3.4 "}) {
    EXPECT_FALSE(Ipv4Addr::parse(text).has_value()) << text;
  }
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(7, 7, 7, 7), Ipv4Addr(0x07070707));
}

TEST(Ipv4Addr, AnonymousMarkerIsZero) {
  EXPECT_TRUE(kAnonymousAddr.is_zero());
}

TEST(Ipv4Addr, HashSpreadsSequentialAddresses) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<Ipv4Addr>{}(Ipv4Addr(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Ipv4Prefix, NormalizesHostBits) {
  const Ipv4Prefix p(Ipv4Addr(10, 1, 2, 3), 16);
  EXPECT_EQ(p.addr(), Ipv4Addr(10, 1, 0, 0));
  EXPECT_EQ(p.length(), 16);
}

TEST(Ipv4Prefix, LengthClamped) {
  const Ipv4Prefix p(Ipv4Addr(1, 2, 3, 4), 60);
  EXPECT_EQ(p.length(), 32);
}

TEST(Ipv4Prefix, ContainsAddr) {
  const Ipv4Prefix p(Ipv4Addr(10, 20, 0, 0), 16);
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 20, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 20, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Addr(10, 21, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Addr(11, 20, 0, 0)));
}

TEST(Ipv4Prefix, DefaultRouteContainsEverything) {
  const Ipv4Prefix any(Ipv4Addr(), 0);
  EXPECT_TRUE(any.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_TRUE(any.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(any.size(), 1ull << 32);
}

TEST(Ipv4Prefix, ContainsPrefix) {
  const Ipv4Prefix p16(Ipv4Addr(10, 20, 0, 0), 16);
  const Ipv4Prefix p24(Ipv4Addr(10, 20, 5, 0), 24);
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
}

TEST(Ipv4Prefix, SizeAndNth) {
  const Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 24);
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.nth(0), Ipv4Addr(10, 0, 0, 0));
  EXPECT_EQ(p.nth(255), Ipv4Addr(10, 0, 0, 255));
  EXPECT_EQ(p.nth(256), Ipv4Addr(10, 0, 0, 0));  // wraps modulo size
}

TEST(Ipv4Prefix, Host32Prefix) {
  const Ipv4Prefix host(Ipv4Addr(9, 9, 9, 9), 32);
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.contains(Ipv4Addr(9, 9, 9, 9)));
  EXPECT_FALSE(host.contains(Ipv4Addr(9, 9, 9, 8)));
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24",
                           "1.2.3.4/32"}) {
    const auto p = Ipv4Prefix::parse(text);
    ASSERT_TRUE(p.has_value()) << text;
    EXPECT_EQ(p->to_string(), text);
  }
}

TEST(Ipv4Prefix, ParseNormalizes) {
  const auto p = Ipv4Prefix::parse("10.1.2.3/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
}

TEST(Ipv4Prefix, ParseRejectsMalformed) {
  for (const char* text : {"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/x",
                           "10.0.0/8", "/8"}) {
    EXPECT_FALSE(Ipv4Prefix::parse(text).has_value()) << text;
  }
}

// Parameterized: nth() stays inside the prefix for a sweep of lengths.
class PrefixNth : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PrefixNth, NthStaysInside) {
  const std::uint8_t len = GetParam();
  const Ipv4Prefix p(Ipv4Addr(172, 16, 0, 0), len);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(p.contains(p.nth(i * 97 + 3)));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PrefixNth,
                         ::testing::Values(8, 12, 16, 20, 24, 28, 30, 32));

}  // namespace
}  // namespace mum::net
