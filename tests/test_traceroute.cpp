#include "probe/traceroute.h"

#include <gtest/gtest.h>

#include "mpls/ldp.h"

namespace mum::probe {
namespace {

using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// Line AS: a - b - c with LDP, PHP.
struct TraceFixture {
  TraceFixture() : topo(65001) {
    a = topo.add_router(ip(0x10000001), Vendor::kCisco, true);
    b = topo.add_router(ip(0x10000002), Vendor::kCisco, false);
    c = topo.add_router(ip(0x10000003), Vendor::kCisco, true);
    topo.add_link(a, b, ip(0x10010001), ip(0x10010002), 1);
    topo.add_link(b, c, ip(0x10010003), ip(0x10010004), 1);
    igp = igp::IgpState::compute(topo);
    for (std::size_t i = 0; i < topo.router_count(); ++i) {
      pools.emplace_back(Vendor::kCisco);
    }
    ldp = mpls::LdpPlane::build(topo, igp, {}, pools);
    plane.asn = 65001;
    plane.topo = &topo;
    plane.igp = &igp;
    plane.ldp = &*ldp;

    monitor.id = 3;
    monitor.addr = ip(0x30000001);
  }

  PathSpec path() const {
    PathSpec p;
    p.pre_hops = {ip(0x30000002)};
    SegmentSpec seg;
    seg.plane = &plane;
    seg.ingress = a;
    seg.egress = c;
    seg.entry_iface = ip(0x10020000);
    p.segments.push_back(seg);
    p.post_hops = {ip(0x40000001)};
    p.dst = ip(0x40000002);
    return p;
  }

  topo::AsTopology topo;
  igp::IgpState igp;
  std::vector<mpls::LabelPool> pools;
  std::optional<mpls::LdpPlane> ldp;
  AsDataPlane plane;
  Monitor monitor;
  RouterId a, b, c;
};

TEST(ParisFlowId, StablePerDestination) {
  Monitor m;
  m.addr = ip(1);
  EXPECT_EQ(paris_flow_id(m, ip(100)), paris_flow_id(m, ip(100)));
  EXPECT_NE(paris_flow_id(m, ip(100)), paris_flow_id(m, ip(101)));
}

TEST(ParisFlowId, DiffersAcrossMonitors) {
  Monitor m1, m2;
  m1.addr = ip(1);
  m2.addr = ip(2);
  EXPECT_NE(paris_flow_id(m1, ip(100)), paris_flow_id(m2, ip(100)));
}

TEST(TraceRoute, FullCleanTrace) {
  TraceFixture f;
  TraceOptions options;
  options.reply_loss = 0.0;
  util::Rng rng(1);
  const dataset::Trace trace = trace_route(f.monitor, f.path(), options, rng);

  EXPECT_EQ(trace.monitor_id, 3u);
  EXPECT_EQ(trace.src, f.monitor.addr);
  EXPECT_EQ(trace.dst, ip(0x40000002));
  EXPECT_TRUE(trace.reached);
  // pre(1) + entry + interior + egress + post(1) + destination = 6 hops.
  ASSERT_EQ(trace.hops.size(), 6u);
  EXPECT_EQ(trace.hops[0].addr, ip(0x30000002));
  EXPECT_EQ(trace.hops[1].addr, ip(0x10020000));
  EXPECT_TRUE(trace.hops[2].has_labels());   // the single interior LSR
  EXPECT_FALSE(trace.hops[3].has_labels());  // PHP at egress
  EXPECT_EQ(trace.hops.back().addr, trace.dst);
}

TEST(TraceRoute, RttsMonotonicallyIncrease) {
  TraceFixture f;
  TraceOptions options;
  options.reply_loss = 0.0;
  util::Rng rng(2);
  const auto trace = trace_route(f.monitor, f.path(), options, rng);
  double prev = 0.0;
  for (const auto& hop : trace.hops) {
    ASSERT_FALSE(hop.anonymous());
    EXPECT_GT(hop.rtt_ms, prev - 0.5);  // jitter-tolerant monotonicity
    prev = hop.rtt_ms;
  }
}

TEST(TraceRoute, AnonymousRouterProducesStarHop) {
  TraceFixture f;
  f.topo.router(f.b).response_prob = 0.0;  // b never answers
  TraceOptions options;
  options.reply_loss = 0.0;
  util::Rng rng(3);
  const auto trace = trace_route(f.monitor, f.path(), options, rng);
  ASSERT_EQ(trace.hops.size(), 6u);
  EXPECT_TRUE(trace.hops[2].anonymous());
  EXPECT_FALSE(trace.hops[2].has_labels());  // no reply => no quoted stack
}

TEST(TraceRoute, Rfc4950OffSuppressesLabelsNotHops) {
  TraceFixture f;
  f.plane.rfc4950 = false;
  TraceOptions options;
  options.reply_loss = 0.0;
  util::Rng rng(4);
  const auto trace = trace_route(f.monitor, f.path(), options, rng);
  ASSERT_EQ(trace.hops.size(), 6u);
  EXPECT_FALSE(trace.hops[2].anonymous());   // hop responds...
  EXPECT_FALSE(trace.hops[2].has_labels());  // ...but quotes nothing
  EXPECT_FALSE(trace.crosses_explicit_tunnel());
}

TEST(TraceRoute, TtlPropagateOffShortensTrace) {
  TraceFixture f;
  f.plane.ttl_propagate = false;
  TraceOptions options;
  options.reply_loss = 0.0;
  util::Rng rng(5);
  const auto trace = trace_route(f.monitor, f.path(), options, rng);
  // Interior LSR invisible: pre + entry + egress + post + dst = 5 hops.
  ASSERT_EQ(trace.hops.size(), 5u);
  EXPECT_FALSE(trace.crosses_explicit_tunnel());
}

TEST(TraceRoute, MaxTtlTruncates) {
  TraceFixture f;
  TraceOptions options;
  options.max_ttl = 2;
  options.reply_loss = 0.0;
  util::Rng rng(6);
  const auto trace = trace_route(f.monitor, f.path(), options, rng);
  EXPECT_EQ(trace.hops.size(), 2u);
  EXPECT_FALSE(trace.reached);
}

TEST(TraceRoute, ReplyLossCreatesAnonymousHops) {
  TraceFixture f;
  TraceOptions options;
  options.reply_loss = 1.0;  // everything lost
  util::Rng rng(7);
  const auto trace = trace_route(f.monitor, f.path(), options, rng);
  for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
    EXPECT_TRUE(trace.hops[i].anonymous());
  }
}

TEST(TraceRoute, RetriesBeatTransientReplyLoss) {
  // With heavy transient loss and generous attempts, nearly every hop
  // should still answer (routers ARE willing to respond).
  TraceFixture f;
  TraceOptions options;
  options.reply_loss = 0.5;
  options.attempts = 12;
  util::Rng rng(8);
  int anonymous = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    const auto trace = trace_route(f.monitor, f.path(), options, rng);
    for (const auto& hop : trace.hops) {
      ++total;
      anonymous += hop.anonymous() ? 1 : 0;
    }
  }
  EXPECT_LT(anonymous, total / 20);
}

TEST(TraceRoute, RetriesDoNotBeatUnresponsiveRouters) {
  // response_prob is a per-trace policy, not a transient: retries must not
  // resurrect a router that does not answer traceroute.
  TraceFixture f;
  f.topo.router(f.b).response_prob = 0.0;
  TraceOptions options;
  options.reply_loss = 0.0;
  options.attempts = 10;
  util::Rng rng(9);
  const auto trace = trace_route(f.monitor, f.path(), options, rng);
  ASSERT_GE(trace.hops.size(), 3u);
  EXPECT_TRUE(trace.hops[2].anonymous());
}

TEST(TraceRoute, GapLimitTruncatesDeadPaths) {
  TraceFixture f;
  // Every router silent: with gap_limit 3 the trace stops after 3 stars
  // instead of probing all hops.
  for (topo::RouterId r = 0; r < f.topo.router_count(); ++r) {
    f.topo.router(r).response_prob = 0.0;
  }
  TraceOptions options;
  options.reply_loss = 0.0;
  options.gap_limit = 3;
  util::Rng rng(10);
  PathSpec p = f.path();
  p.pre_hops.clear();          // pre-hops always answer; drop them
  const auto trace = trace_route(f.monitor, p, options, rng);
  EXPECT_EQ(trace.hops.size(), 3u);
  EXPECT_FALSE(trace.reached);
  for (const auto& hop : trace.hops) EXPECT_TRUE(hop.anonymous());
}

TEST(TraceRoute, ObservationNoiseDoesNotChangeForwarding) {
  // Two traces with different observation RNG streams must reveal the same
  // addresses (forwarding is flow-deterministic); only anonymity may differ.
  TraceFixture f;
  TraceOptions options;
  options.reply_loss = 0.3;
  util::Rng rng1(100), rng2(200);
  const auto t1 = trace_route(f.monitor, f.path(), options, rng1);
  const auto t2 = trace_route(f.monitor, f.path(), options, rng2);
  ASSERT_EQ(t1.hops.size(), t2.hops.size());
  for (std::size_t i = 0; i < t1.hops.size(); ++i) {
    if (!t1.hops[i].anonymous() && !t2.hops[i].anonymous()) {
      EXPECT_EQ(t1.hops[i].addr, t2.hops[i].addr);
    }
  }
}

}  // namespace
}  // namespace mum::probe
