#include "topo/topology.h"

#include <gtest/gtest.h>

#include "topo/builder.h"
#include "util/rng.h"

namespace mum::topo {
namespace {

AsTopology two_router_pair() {
  AsTopology topo(65000);
  const RouterId a =
      topo.add_router(net::Ipv4Addr(10, 0, 0, 1), Vendor::kCisco, true, "a");
  const RouterId b =
      topo.add_router(net::Ipv4Addr(10, 0, 0, 2), Vendor::kJuniper, true, "b");
  topo.add_link(a, b, net::Ipv4Addr(10, 0, 1, 0), net::Ipv4Addr(10, 0, 1, 1),
                5, 2.0);
  return topo;
}

TEST(AsTopology, RoutersAndLinksRegistered) {
  const AsTopology topo = two_router_pair();
  EXPECT_EQ(topo.asn(), 65000u);
  EXPECT_EQ(topo.router_count(), 2u);
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.router(0).name, "a");
  EXPECT_EQ(topo.router(1).vendor, Vendor::kJuniper);
  EXPECT_EQ(topo.link(0).igp_cost, 5u);
}

TEST(AsTopology, LinkEndpointHelpers) {
  const AsTopology topo = two_router_pair();
  const Link& l = topo.link(0);
  EXPECT_EQ(l.other(0), 1u);
  EXPECT_EQ(l.other(1), 0u);
  EXPECT_EQ(l.iface_of(0), net::Ipv4Addr(10, 0, 1, 0));
  EXPECT_EQ(l.iface_of(1), net::Ipv4Addr(10, 0, 1, 1));
}

TEST(AsTopology, AdjacencyListsBothDirections) {
  const AsTopology topo = two_router_pair();
  ASSERT_EQ(topo.links_of(0).size(), 1u);
  ASSERT_EQ(topo.links_of(1).size(), 1u);
  EXPECT_EQ(topo.links_of(0)[0], topo.links_of(1)[0]);
}

TEST(AsTopology, BorderRouters) {
  AsTopology topo(1);
  topo.add_router(net::Ipv4Addr(1, 0, 0, 1), Vendor::kCisco, false);
  topo.add_router(net::Ipv4Addr(1, 0, 0, 2), Vendor::kCisco, true);
  topo.add_router(net::Ipv4Addr(1, 0, 0, 3), Vendor::kCisco, true);
  EXPECT_EQ(topo.border_routers(), (std::vector<RouterId>{1, 2}));
}

TEST(AsTopology, RouterOfAddrCoversLoopbacksAndIfaces) {
  const AsTopology topo = two_router_pair();
  EXPECT_EQ(topo.router_of_addr(net::Ipv4Addr(10, 0, 0, 1)), 0u);
  EXPECT_EQ(topo.router_of_addr(net::Ipv4Addr(10, 0, 1, 1)), 1u);
  EXPECT_EQ(topo.router_of_addr(net::Ipv4Addr(99, 0, 0, 1)), kInvalidRouter);
}

TEST(AsTopology, ParallelDegreeCountsBundles) {
  AsTopology topo(1);
  const RouterId a = topo.add_router(net::Ipv4Addr(1, 0, 0, 1),
                                     Vendor::kCisco, false);
  const RouterId b = topo.add_router(net::Ipv4Addr(1, 0, 0, 2),
                                     Vendor::kCisco, false);
  EXPECT_EQ(topo.parallel_degree(a, b), 0u);
  topo.add_link(a, b, net::Ipv4Addr(1, 0, 1, 0), net::Ipv4Addr(1, 0, 1, 1));
  topo.add_link(a, b, net::Ipv4Addr(1, 0, 1, 2), net::Ipv4Addr(1, 0, 1, 3));
  EXPECT_EQ(topo.parallel_degree(a, b), 2u);
  EXPECT_EQ(topo.parallel_degree(b, a), 2u);
}

TEST(AsTopology, ConnectedDetection) {
  AsTopology topo(1);
  const RouterId a = topo.add_router(net::Ipv4Addr(1, 0, 0, 1),
                                     Vendor::kCisco, false);
  const RouterId b = topo.add_router(net::Ipv4Addr(1, 0, 0, 2),
                                     Vendor::kCisco, false);
  topo.add_router(net::Ipv4Addr(1, 0, 0, 3), Vendor::kCisco, false);
  topo.add_link(a, b, net::Ipv4Addr(1, 0, 1, 0), net::Ipv4Addr(1, 0, 1, 1));
  EXPECT_FALSE(topo.connected());
}

TEST(AsTopology, EmptyTopologyIsConnected) {
  const AsTopology topo(1);
  EXPECT_TRUE(topo.connected());
}

// --- builder ------------------------------------------------------------

BuildParams small_params() {
  BuildParams p;
  p.asn = 64512;
  p.block = net::Ipv4Prefix(net::Ipv4Addr(16, 0, 0, 0), 16);
  p.core_routers = 4;
  p.pop_routers = 8;
  return p;
}

TEST(Builder, ProducesConnectedTopology) {
  util::Rng rng(1);
  const AsTopology topo = build_as_topology(small_params(), rng);
  EXPECT_EQ(topo.router_count(), 12u);
  EXPECT_TRUE(topo.connected());
}

TEST(Builder, AtLeastTwoBorders) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    BuildParams p = small_params();
    p.border_share = 0.0;  // would yield zero borders without the guarantee
    const AsTopology topo = build_as_topology(p, rng);
    EXPECT_GE(topo.border_routers().size(), 2u) << "seed " << seed;
  }
}

TEST(Builder, CoreRoutersAreNeverBorders) {
  util::Rng rng(2);
  BuildParams p = small_params();
  p.border_share = 1.0;
  const AsTopology topo = build_as_topology(p, rng);
  for (RouterId r = 0; r < static_cast<RouterId>(p.core_routers); ++r) {
    EXPECT_FALSE(topo.router(r).is_border);
  }
  for (RouterId r = static_cast<RouterId>(p.core_routers);
       r < topo.router_count(); ++r) {
    EXPECT_TRUE(topo.router(r).is_border);
  }
}

TEST(Builder, DeterministicForSameSeed) {
  util::Rng rng_a(77), rng_b(77);
  const AsTopology a = build_as_topology(small_params(), rng_a);
  const AsTopology b = build_as_topology(small_params(), rng_b);
  ASSERT_EQ(a.router_count(), b.router_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (LinkId l = 0; l < a.link_count(); ++l) {
    EXPECT_EQ(a.link(l).a, b.link(l).a);
    EXPECT_EQ(a.link(l).b, b.link(l).b);
    EXPECT_EQ(a.link(l).a_iface, b.link(l).a_iface);
    EXPECT_EQ(a.link(l).igp_cost, b.link(l).igp_cost);
  }
}

TEST(Builder, ParallelLinksAppearWhenRequested) {
  util::Rng rng(3);
  BuildParams p = small_params();
  p.parallel_link_prob = 0.8;
  p.max_parallel_links = 4;
  const AsTopology topo = build_as_topology(p, rng);
  bool found_bundle = false;
  for (RouterId a = 0; a < topo.router_count() && !found_bundle; ++a) {
    for (RouterId b = a + 1; b < topo.router_count(); ++b) {
      if (topo.parallel_degree(a, b) >= 2) {
        found_bundle = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_bundle);
}

TEST(Builder, NoParallelLinksWhenDisabled) {
  util::Rng rng(4);
  BuildParams p = small_params();
  p.parallel_link_prob = 0.0;
  const AsTopology topo = build_as_topology(p, rng);
  for (RouterId a = 0; a < topo.router_count(); ++a) {
    for (RouterId b = a + 1; b < topo.router_count(); ++b) {
      EXPECT_LE(topo.parallel_degree(a, b), 1u);
    }
  }
}

TEST(Builder, UniqueInterfaceAndLoopbackAddresses) {
  util::Rng rng(5);
  BuildParams p = small_params();
  p.parallel_link_prob = 0.5;
  const AsTopology topo = build_as_topology(p, rng);
  std::set<net::Ipv4Addr> addrs;
  for (const Router& r : topo.routers()) {
    EXPECT_TRUE(addrs.insert(r.loopback).second);
  }
  for (const Link& l : topo.links()) {
    EXPECT_TRUE(addrs.insert(l.a_iface).second);
    EXPECT_TRUE(addrs.insert(l.b_iface).second);
  }
}

TEST(Builder, AddressesStayInsideBlock) {
  util::Rng rng(6);
  const BuildParams p = small_params();
  const AsTopology topo = build_as_topology(p, rng);
  for (const Router& r : topo.routers()) {
    EXPECT_TRUE(p.block.contains(r.loopback));
  }
  for (const Link& l : topo.links()) {
    EXPECT_TRUE(p.block.contains(l.a_iface));
    EXPECT_TRUE(p.block.contains(l.b_iface));
  }
}

TEST(Builder, UniformCostsWhenConfigured) {
  util::Rng rng(7);
  BuildParams p = small_params();
  p.uniform_costs = true;
  p.heavy_cost_share = 0.0;
  const AsTopology topo = build_as_topology(p, rng);
  for (const Link& l : topo.links()) EXPECT_EQ(l.igp_cost, 1u);
}

TEST(Builder, HeavyCostShareInjectsCost2Links) {
  util::Rng rng(7);
  BuildParams p = small_params();
  p.uniform_costs = true;
  p.heavy_cost_share = 0.5;
  const AsTopology topo = build_as_topology(p, rng);
  int heavy = 0;
  for (const Link& l : topo.links()) {
    EXPECT_LE(l.igp_cost, 2u);
    heavy += l.igp_cost == 2 ? 1 : 0;
  }
  EXPECT_GT(heavy, 0);
}

TEST(Builder, LoopbackHelperMatchesLayout) {
  const net::Ipv4Prefix block(net::Ipv4Addr(16, 5, 0, 0), 16);
  EXPECT_EQ(loopback_addr(block, 0), block.nth(1));
  EXPECT_EQ(loopback_addr(block, 3), block.nth(13));
}

// Parameterized: builder output is connected across a sweep of shapes.
struct ShapeCase {
  int core;
  int pops;
  double parallel;
};

class BuilderShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(BuilderShapes, AlwaysConnectedWithBorders) {
  const auto& c = GetParam();
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    util::Rng rng(seed);
    BuildParams p = small_params();
    p.core_routers = c.core;
    p.pop_routers = c.pops;
    p.parallel_link_prob = c.parallel;
    const AsTopology topo = build_as_topology(p, rng);
    EXPECT_TRUE(topo.connected());
    EXPECT_GE(topo.border_routers().size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BuilderShapes,
    ::testing::Values(ShapeCase{2, 3, 0.0}, ShapeCase{3, 10, 0.3},
                      ShapeCase{8, 20, 0.55}, ShapeCase{10, 50, 0.15}));

}  // namespace
}  // namespace mum::topo
