#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/report.h"

namespace mum::lpr {
namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

IotpRecord rec_of(TunnelClass cls, int length, int width, int symmetry,
                  std::uint32_t asn = 65001) {
  IotpRecord rec;
  rec.key = IotpKey{asn, ip(1), ip(2)};
  rec.tunnel_class = cls;
  rec.length = length;
  rec.width = width;
  rec.symmetry = symmetry;
  return rec;
}

TEST(Metrics, LengthDistribution) {
  std::vector<IotpRecord> records{rec_of(TunnelClass::kMonoLsp, 1, 1, 0),
                                  rec_of(TunnelClass::kMonoLsp, 3, 1, 0),
                                  rec_of(TunnelClass::kMonoFec, 3, 2, 0)};
  const auto h = length_distribution(records);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.pdf(3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.pdf(1), 1.0 / 3.0);
}

TEST(Metrics, WidthDistributionAllAndFiltered) {
  std::vector<IotpRecord> records{rec_of(TunnelClass::kMonoLsp, 1, 1, 0),
                                  rec_of(TunnelClass::kMonoFec, 2, 2, 0),
                                  rec_of(TunnelClass::kMultiFec, 2, 4, 1)};
  EXPECT_EQ(width_distribution(records).total(), 3u);
  const auto mono = width_distribution(records, TunnelClass::kMonoFec);
  EXPECT_EQ(mono.total(), 1u);
  EXPECT_DOUBLE_EQ(mono.pdf(2), 1.0);
  const auto multi = width_distribution(records, TunnelClass::kMultiFec);
  EXPECT_DOUBLE_EQ(multi.pdf(4), 1.0);
}

TEST(Metrics, SymmetryDistributionAndBalancedShare) {
  std::vector<IotpRecord> records{rec_of(TunnelClass::kMonoFec, 2, 2, 0),
                                  rec_of(TunnelClass::kMonoFec, 3, 2, 1),
                                  rec_of(TunnelClass::kMonoFec, 3, 2, 0),
                                  rec_of(TunnelClass::kMultiFec, 3, 2, 2)};
  const auto h = symmetry_distribution(records, TunnelClass::kMonoFec);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_NEAR(balanced_share(records, TunnelClass::kMonoFec), 2.0 / 3.0,
              1e-12);
  EXPECT_NEAR(balanced_share(records, TunnelClass::kMultiFec), 0.0, 1e-12);
  EXPECT_NEAR(balanced_share(records, TunnelClass::kMonoLsp), 0.0, 1e-12);
}

TEST(Metrics, EmptyRecords) {
  const std::vector<IotpRecord> none;
  EXPECT_EQ(length_distribution(none).total(), 0u);
  EXPECT_DOUBLE_EQ(balanced_share(none, TunnelClass::kMonoFec), 0.0);
}

// --- report / pipeline --------------------------------------------------

LspObservation obs(std::uint32_t asn, std::uint32_t ingress,
                   std::uint32_t label, std::uint32_t dst_asn) {
  LspObservation o;
  o.lsp.asn = asn;
  o.lsp.ingress = ip(ingress);
  o.lsp.egress = ip(ingress + 10);
  o.lsp.lsrs.push_back(LsrHop{ip(ingress + 1000), {label}});
  o.dst_asn = dst_asn;
  return o;
}

TEST(Report, PipelineFromExtractedSnapshots) {
  ExtractedSnapshot cycle;
  cycle.cycle_id = 7;
  cycle.date = "2012-08";
  cycle.observations = {obs(65001, 1, 100, 9), obs(65001, 1, 100, 10),
                        obs(65001, 1, 101, 11),   // second FEC
                        obs(65002, 5, 300, 9), obs(65002, 5, 300, 10)};
  cycle.stats.lsps_observed = 5;

  ExtractedSnapshot next = cycle;  // everything persists
  const CycleReport report = run_pipeline(cycle, {next}, {});

  EXPECT_EQ(report.cycle_id, 7u);
  EXPECT_EQ(report.date, "2012-08");
  EXPECT_EQ(report.iotps.size(), 2u);
  EXPECT_EQ(report.global.total(), 2u);
  EXPECT_EQ(report.global.multi_fec, 1u);  // AS65001: 2 labels on same IP
  EXPECT_EQ(report.global.mono_lsp, 1u);   // AS65002
  EXPECT_EQ(report.as_counts(65001).multi_fec, 1u);
  EXPECT_EQ(report.as_counts(65002).mono_lsp, 1u);
  EXPECT_EQ(report.as_counts(99999).total(), 0u);
}

TEST(Report, DynamicTagSurfacesInReport) {
  ExtractedSnapshot cycle;
  cycle.cycle_id = 1;
  cycle.observations = {obs(65001, 1, 100, 9), obs(65001, 1, 101, 10)};
  ExtractedSnapshot next;  // labels churned away entirely
  next.observations = {obs(65001, 1, 500, 9)};
  const CycleReport report = run_pipeline(cycle, {next}, {});
  ASSERT_TRUE(report.dynamic_as.contains(65001));
  EXPECT_TRUE(report.dynamic_as.at(65001));
}

TEST(Report, AsSeriesTracksCycles) {
  LongitudinalReport longitudinal;
  for (std::uint32_t c = 0; c < 3; ++c) {
    ExtractedSnapshot cycle;
    cycle.cycle_id = c;
    if (c >= 1) {  // AS appears from cycle 1 on
      cycle.observations = {obs(65001, 1, 100, 9),
                            obs(65001, 1, 100, 10)};
    }
    ExtractedSnapshot next = cycle;
    longitudinal.cycles.push_back(run_pipeline(cycle, {next}, {}));
  }
  const auto series = longitudinal.as_series(65001);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].counts.total(), 0u);
  EXPECT_EQ(series[1].counts.total(), 1u);
  EXPECT_EQ(series[2].counts.total(), 1u);
  EXPECT_EQ(series[1].cycle_id, 1u);
}

TEST(Report, AliasHeuristicConfigPlumbsThrough) {
  // Two branches with no common IP; same last-hop labels.
  LspObservation o1, o2;
  o1.lsp.asn = o2.lsp.asn = 65001;
  o1.lsp.ingress = o2.lsp.ingress = ip(1);
  o1.lsp.egress = o2.lsp.egress = ip(2);
  o1.lsp.lsrs = {LsrHop{ip(100), {7}}};
  o2.lsp.lsrs = {LsrHop{ip(200), {7}}};
  o1.dst_asn = 9;
  o2.dst_asn = 10;

  ExtractedSnapshot cycle;
  cycle.observations = {o1, o2};
  const ExtractedSnapshot next = cycle;

  PipelineConfig plain;
  const auto without = run_pipeline(cycle, {next}, plain);
  EXPECT_EQ(without.global.unclassified, 1u);

  PipelineConfig with_alias;
  with_alias.classify.alias_resolution_heuristic = true;
  const auto with = run_pipeline(cycle, {next}, with_alias);
  EXPECT_EQ(with.global.unclassified, 0u);
  EXPECT_EQ(with.global.mono_fec, 1u);
}

}  // namespace
}  // namespace mum::lpr
