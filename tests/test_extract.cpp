#include "core/extract.h"

#include <gtest/gtest.h>

namespace mum::lpr {
namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// Addresses: AS65001 owns 0x10xx, AS65002 owns 0x20xx, dst AS 65099 = 0x90xx.
dataset::Ip2As test_ip2as() {
  dataset::Ip2As ip2as;
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x10000000), 8), 65001);
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x20000000), 8), 65002);
  ip2as.add_prefix(net::Ipv4Prefix(ip(0x90000000), 8), 65099);
  return ip2as;
}

dataset::TraceHop plain(std::uint32_t addr) {
  dataset::TraceHop hop;
  hop.addr = ip(addr);
  return hop;
}

dataset::TraceHop labeled(std::uint32_t addr, std::uint32_t label) {
  dataset::TraceHop hop;
  hop.addr = ip(addr);
  hop.labels.push(label, 0, 1);
  return hop;
}

dataset::TraceHop anonymous() { return dataset::TraceHop{}; }

dataset::Snapshot snapshot_of(std::vector<dataset::Trace> traces) {
  dataset::Snapshot snap;
  snap.cycle_id = 1;
  snap.date = "2014-12";
  snap.traces = std::move(traces);
  test_ip2as().annotate(snap.traces);
  return snap;
}

dataset::Trace trace_of(std::vector<dataset::TraceHop> hops,
                        std::uint32_t dst = 0x90000001) {
  dataset::Trace t;
  t.dst = ip(dst);
  t.reached = true;
  t.hops = std::move(hops);
  return t;
}

TEST(Extract, SimplePhpTunnel) {
  // entry(no label) LSR LSR exit(no label, same AS) ... dst
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           labeled(0x10000002, 100),
                                           labeled(0x10000003, 200),
                                           plain(0x10000004),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  ASSERT_EQ(extracted.observations.size(), 1u);
  const Lsp& lsp = extracted.observations[0].lsp;
  EXPECT_EQ(lsp.asn, 65001u);
  EXPECT_EQ(lsp.ingress, ip(0x10000001));
  EXPECT_EQ(lsp.egress, ip(0x10000004));
  EXPECT_FALSE(lsp.egress_labeled);
  ASSERT_EQ(lsp.lsrs.size(), 2u);
  EXPECT_EQ(lsp.lsrs[0].labels, (std::vector<std::uint32_t>{100}));
  EXPECT_EQ(extracted.observations[0].dst_asn, 65099u);
  EXPECT_EQ(extracted.stats.lsps_observed, 1u);
  EXPECT_EQ(extracted.stats.lsps_incomplete, 0u);
  EXPECT_EQ(extracted.stats.traces_with_explicit_tunnel, 1u);
}

TEST(Extract, NonPhpTunnelUsesLastLabeledHopAsEgress) {
  // Labeled run directly followed by a hop in ANOTHER AS: no PHP, the last
  // labeled hop is the Egress LER.
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           labeled(0x10000002, 100),
                                           labeled(0x10000003, 200),
                                           plain(0x20000001),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  ASSERT_EQ(extracted.observations.size(), 1u);
  const Lsp& lsp = extracted.observations[0].lsp;
  EXPECT_EQ(lsp.egress, ip(0x10000003));
  EXPECT_TRUE(lsp.egress_labeled);
  EXPECT_EQ(lsp.intermediate_lsr_count(), 1);  // egress not intermediate
}

TEST(Extract, MissingIngressMakesIncomplete) {
  // Trace starts directly with a labeled hop.
  const auto snap = snapshot_of({trace_of({labeled(0x10000002, 100),
                                           plain(0x10000003),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  EXPECT_TRUE(extracted.observations.empty());
  EXPECT_EQ(extracted.stats.lsps_observed, 1u);
  EXPECT_EQ(extracted.stats.lsps_incomplete, 1u);
}

TEST(Extract, MissingExitMakesIncomplete) {
  // Labeled run runs to the end of the trace.
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           labeled(0x10000002, 100)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  EXPECT_TRUE(extracted.observations.empty());
  EXPECT_EQ(extracted.stats.lsps_incomplete, 1u);
}

TEST(Extract, AnonymousIngressMakesIncomplete) {
  const auto snap = snapshot_of({trace_of({anonymous(),
                                           labeled(0x10000002, 100),
                                           plain(0x10000003),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  EXPECT_EQ(extracted.stats.lsps_incomplete, 1u);
  EXPECT_TRUE(extracted.observations.empty());
}

TEST(Extract, AnonymousInsideRunMakesIncomplete) {
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           labeled(0x10000002, 100),
                                           anonymous(),
                                           labeled(0x10000004, 300),
                                           plain(0x10000005),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  EXPECT_EQ(extracted.stats.lsps_observed, 1u);  // one (broken) run
  EXPECT_EQ(extracted.stats.lsps_incomplete, 1u);
  EXPECT_TRUE(extracted.observations.empty());
}

TEST(Extract, MultiAsRunFlaggedForIntraAsFilter) {
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           labeled(0x10000002, 100),
                                           labeled(0x20000002, 200),
                                           plain(0x20000003),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  ASSERT_EQ(extracted.observations.size(), 1u);
  EXPECT_EQ(extracted.observations[0].lsp.asn, 0u);  // inter-domain marker
}

TEST(Extract, TwoTunnelsInOneTrace) {
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           labeled(0x10000002, 100),
                                           plain(0x10000003),
                                           plain(0x20000001),
                                           labeled(0x20000002, 500),
                                           plain(0x20000003),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  ASSERT_EQ(extracted.observations.size(), 2u);
  EXPECT_EQ(extracted.observations[0].lsp.asn, 65001u);
  EXPECT_EQ(extracted.observations[1].lsp.asn, 65002u);
  EXPECT_EQ(extracted.stats.traces_with_explicit_tunnel, 1u);
}

TEST(Extract, NoTunnelTrace) {
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           plain(0x10000002),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  EXPECT_TRUE(extracted.observations.empty());
  EXPECT_EQ(extracted.stats.lsps_observed, 0u);
  EXPECT_EQ(extracted.stats.traces_with_explicit_tunnel, 0u);
  EXPECT_EQ(extracted.stats.traces_total, 1u);
}

TEST(Extract, MplsVsNonMplsIpCensus) {
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           labeled(0x10000002, 100),
                                           plain(0x10000003),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  EXPECT_EQ(extracted.stats.mpls_ips, 1u);      // the labeled hop
  EXPECT_EQ(extracted.stats.non_mpls_ips, 3u);  // everything else
}

TEST(Extract, MplsIpCountedOnceAcrossTraces) {
  auto t1 = trace_of({plain(0x10000001), labeled(0x10000002, 100),
                      plain(0x10000003), plain(0x90000001)});
  auto t2 = t1;
  const auto snap = snapshot_of({t1, t2});
  const auto extracted = extract_lsps(snap, test_ip2as());
  EXPECT_EQ(extracted.stats.mpls_ips, 1u);
  EXPECT_EQ(extracted.stats.lsps_observed, 2u);
}

TEST(Extract, StackedLabelsPreserved) {
  dataset::TraceHop hop;
  hop.addr = ip(0x10000002);
  hop.labels.push(100, 0, 1);  // bottom
  hop.labels.push(200, 0, 1);  // top
  const auto snap = snapshot_of({trace_of({plain(0x10000001), hop,
                                           plain(0x10000003),
                                           plain(0x90000001)})});
  const auto extracted = extract_lsps(snap, test_ip2as());
  ASSERT_EQ(extracted.observations.size(), 1u);
  EXPECT_EQ(extracted.observations[0].lsp.lsrs[0].labels,
            (std::vector<std::uint32_t>{200, 100}));
}

TEST(Extract, CensusByAsSplitsCorrectly) {
  const auto snap = snapshot_of({trace_of({plain(0x10000001),
                                           labeled(0x10000002, 100),
                                           plain(0x10000003),
                                           labeled(0x20000002, 300),
                                           plain(0x20000003),
                                           plain(0x90000001)})});
  const auto census = census_by_as(snap);
  ASSERT_TRUE(census.contains(65001));
  EXPECT_EQ(census.at(65001).mpls_ips, 1u);
  EXPECT_EQ(census.at(65001).non_mpls_ips, 2u);
  EXPECT_EQ(census.at(65002).mpls_ips, 1u);
  EXPECT_EQ(census.at(65002).non_mpls_ips, 1u);
  EXPECT_EQ(census.at(65099).non_mpls_ips, 1u);
}

TEST(Extract, CensusAddressNeverDoubleCounted) {
  // An address seen both labeled and unlabeled counts as MPLS only.
  auto t1 = trace_of({plain(0x10000001), labeled(0x10000002, 100),
                      plain(0x10000003), plain(0x90000001)});
  auto t2 = trace_of({plain(0x10000001), plain(0x10000002),
                      plain(0x90000001)});
  const auto census = census_by_as(snapshot_of({t1, t2}));
  EXPECT_EQ(census.at(65001).mpls_ips, 1u);
  EXPECT_EQ(census.at(65001).non_mpls_ips, 2u);
}

}  // namespace
}  // namespace mum::lpr
