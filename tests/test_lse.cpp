#include "net/lse.h"

#include <gtest/gtest.h>

namespace mum::net {
namespace {

TEST(LabelStackEntry, FieldsStored) {
  const LabelStackEntry lse(24005, 3, true, 1);
  EXPECT_EQ(lse.label(), 24005u);
  EXPECT_EQ(lse.traffic_class(), 3);
  EXPECT_TRUE(lse.bottom_of_stack());
  EXPECT_EQ(lse.ttl(), 1);
}

TEST(LabelStackEntry, LabelMaskedTo20Bits) {
  const LabelStackEntry lse(0xFFFFFFFF, 0, false, 0);
  EXPECT_EQ(lse.label(), kLabelMax);
}

TEST(LabelStackEntry, TcMaskedTo3Bits) {
  const LabelStackEntry lse(1, 0xFF, false, 0);
  EXPECT_EQ(lse.traffic_class(), 7);
}

TEST(LabelStackEntry, EncodeMatchesRfc3032Layout) {
  // label=16 (0x10), TC=1, S=1, TTL=255
  const LabelStackEntry lse(16, 1, true, 255);
  EXPECT_EQ(lse.encode(), (16u << 12) | (1u << 9) | (1u << 8) | 255u);
}

TEST(LabelStackEntry, DecodeEncodeRoundTrip) {
  for (const std::uint32_t label : {0u, 3u, 16u, 299776u, 1048575u}) {
    for (const std::uint8_t tc : {0, 5}) {
      for (const bool s : {false, true}) {
        const LabelStackEntry lse(label, tc, s, 64);
        EXPECT_EQ(LabelStackEntry::decode(lse.encode()), lse);
      }
    }
  }
}

TEST(LabelStackEntry, ReservedValues) {
  EXPECT_EQ(kLabelIpv4ExplicitNull, 0u);
  EXPECT_EQ(kLabelImplicitNull, 3u);
  EXPECT_EQ(kLabelFirstUnreserved, 16u);
}

TEST(LabelStackEntry, ToStringReadable) {
  const LabelStackEntry lse(777, 2, true, 1);
  EXPECT_EQ(lse.to_string(), "L=777,TC=2,S=1,TTL=1");
}

TEST(LabelStack, EmptyByDefault) {
  const LabelStack stack;
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(stack.depth(), 0u);
}

TEST(LabelStack, PushSetsBottomFlags) {
  LabelStack stack;
  stack.push(100, 0, 64);
  EXPECT_TRUE(stack.top().bottom_of_stack());
  stack.push(200, 0, 64);
  EXPECT_EQ(stack.depth(), 2u);
  EXPECT_EQ(stack.top().label(), 200u);  // newest on top
  EXPECT_FALSE(stack.entries()[0].bottom_of_stack());
  EXPECT_TRUE(stack.entries()[1].bottom_of_stack());
}

TEST(LabelStack, PopRestoresBottomFlag) {
  LabelStack stack;
  stack.push(100, 0, 64);
  stack.push(200, 0, 64);
  stack.pop();
  EXPECT_EQ(stack.depth(), 1u);
  EXPECT_EQ(stack.top().label(), 100u);
  EXPECT_TRUE(stack.top().bottom_of_stack());
}

TEST(LabelStack, PopEmptyIsNoop) {
  LabelStack stack;
  stack.pop();
  EXPECT_TRUE(stack.empty());
}

TEST(LabelStack, SwapTopKeepsOtherFields) {
  LabelStack stack;
  stack.push(100, 5, 9);
  stack.swap_top(4242);
  EXPECT_EQ(stack.top().label(), 4242u);
  EXPECT_EQ(stack.top().traffic_class(), 5);
  EXPECT_EQ(stack.top().ttl(), 9);
  EXPECT_TRUE(stack.top().bottom_of_stack());
}

TEST(LabelStack, SwapTopOnEmptyIsNoop) {
  LabelStack stack;
  stack.swap_top(5);
  EXPECT_TRUE(stack.empty());
}

TEST(LabelStack, LabelsTopFirst) {
  LabelStack stack;
  stack.push(1, 0, 64);
  stack.push(2, 0, 64);
  stack.push(3, 0, 64);
  EXPECT_EQ(stack.labels(), (std::vector<std::uint32_t>{3, 2, 1}));
}

TEST(LabelStack, ConstructorFixesBottomFlags) {
  const LabelStack stack({LabelStackEntry(1, 0, true, 1),
                          LabelStackEntry(2, 0, false, 1)});
  EXPECT_FALSE(stack.entries()[0].bottom_of_stack());
  EXPECT_TRUE(stack.entries()[1].bottom_of_stack());
}

TEST(LabelStack, EqualityIsContentBased) {
  LabelStack a, b;
  a.push(7, 0, 1);
  b.push(7, 0, 1);
  EXPECT_EQ(a, b);
  b.swap_top(8);
  EXPECT_NE(a, b);
}

TEST(LabelStack, ToStringShowsAllEntries) {
  LabelStack stack;
  stack.push(1, 0, 1);
  stack.push(2, 0, 1);
  const std::string s = stack.to_string();
  EXPECT_NE(s.find("L=2"), std::string::npos);
  EXPECT_NE(s.find("L=1"), std::string::npos);
}

}  // namespace
}  // namespace mum::net
