#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mum::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.ci95_halfwidth(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(4.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample (unbiased) variance of this classic dataset is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, Ci95MatchesHandComputation) {
  Accumulator acc;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(x);
  // stddev = sqrt(2.5), n = 5, t(4, .975) = 2.776.
  const double expected = 2.776 * std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(acc.ci95_halfwidth(), expected, 1e-9);
}

TEST(Accumulator, ConstantSeriesHasZeroVariance) {
  Accumulator acc;
  for (int i = 0; i < 100; ++i) acc.add(3.25);
  EXPECT_NEAR(acc.variance(), 0.0, 1e-12);
}

TEST(MinMaxAvg, EmptyDefaults) {
  MinMaxAvg m;
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.min(), 0.0);
  EXPECT_DOUBLE_EQ(m.max(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg(), 0.0);
}

TEST(MinMaxAvg, TracksExtremesAndMean) {
  MinMaxAvg m;
  for (const double x : {5.0, -1.0, 3.0, 9.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.min(), -1.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_DOUBLE_EQ(m.avg(), 4.0);
  EXPECT_EQ(m.count(), 4u);
}

TEST(MinMaxAvg, SingleObservation) {
  MinMaxAvg m;
  m.add(7.0);
  EXPECT_DOUBLE_EQ(m.min(), 7.0);
  EXPECT_DOUBLE_EQ(m.max(), 7.0);
  EXPECT_DOUBLE_EQ(m.avg(), 7.0);
}

TEST(Histogram, EmptyBehaviour) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.pdf(3), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(3), 0.0);
  EXPECT_TRUE(h.pdf_rows().empty());
}

TEST(Histogram, PdfAndCdf) {
  Histogram h;
  h.add(1, 2);
  h.add(2, 6);
  h.add(5, 2);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_DOUBLE_EQ(h.pdf(1), 0.2);
  EXPECT_DOUBLE_EQ(h.pdf(2), 0.6);
  EXPECT_DOUBLE_EQ(h.pdf(3), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(1), 0.2);
  EXPECT_DOUBLE_EQ(h.cdf(4), 0.8);
  EXPECT_DOUBLE_EQ(h.cdf(5), 1.0);
}

TEST(Histogram, MinMaxKeys) {
  Histogram h;
  h.add(4);
  h.add(-2);
  h.add(10);
  EXPECT_EQ(h.min_key(), -2);
  EXPECT_EQ(h.max_key(), 10);
}

TEST(Histogram, PdfRowsClampFoldsTail) {
  Histogram h;
  for (int k = 1; k <= 20; ++k) h.add(k);
  const auto rows = h.pdf_rows(/*clamp_at=*/10);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.back().first, 10);
  // 11..20 fold into the 10 bucket: 11 of 20 values.
  EXPECT_DOUBLE_EQ(rows.back().second, 11.0 / 20.0);
  double sum = 0;
  for (const auto& [k, p] : rows) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, PdfRowsNoClamp) {
  Histogram h;
  h.add(3, 1);
  h.add(7, 3);
  const auto rows = h.pdf_rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, 3);
  EXPECT_DOUBLE_EQ(rows[0].second, 0.25);
  EXPECT_EQ(rows[1].first, 7);
  EXPECT_DOUBLE_EQ(rows[1].second, 0.75);
}

TEST(StudentT, KnownQuantiles) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(4), 2.776, 1e-3);
  EXPECT_NEAR(student_t_975(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t_975(59), 2.000, 1e-3);   // the paper's 60 cycles
  EXPECT_NEAR(student_t_975(1000), 1.960, 1e-3);
}

TEST(StudentT, MonotoneDecreasing) {
  double prev = student_t_975(1);
  for (const std::size_t dof : {2u, 5u, 10u, 30u, 60u, 120u, 500u}) {
    const double t = student_t_975(dof);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(AsciiBar, WidthAndClamping) {
  EXPECT_EQ(ascii_bar(0.0, 10), "..........");
  EXPECT_EQ(ascii_bar(1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 10), "#####.....");
  EXPECT_EQ(ascii_bar(-3.0, 4), "....");
  EXPECT_EQ(ascii_bar(7.0, 4), "####");
}

}  // namespace
}  // namespace mum::util
