#include "core/filters.h"

#include <gtest/gtest.h>

namespace mum::lpr {
namespace {

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

LspObservation obs(std::uint32_t asn, std::uint32_t ingress,
                   std::uint32_t egress, std::vector<std::uint32_t> labels,
                   std::uint32_t dst_asn) {
  LspObservation o;
  o.lsp.asn = asn;
  o.lsp.ingress = ip(ingress);
  o.lsp.egress = ip(egress);
  std::uint32_t addr = ingress + 1000;
  for (const std::uint32_t label : labels) {
    o.lsp.lsrs.push_back(LsrHop{ip(addr++), {label}});
  }
  o.dst_asn = dst_asn;
  return o;
}

ExtractedSnapshot snap_of(std::vector<LspObservation> observations,
                          std::uint32_t cycle = 5) {
  ExtractedSnapshot s;
  s.cycle_id = cycle;
  s.observations = std::move(observations);
  s.stats.lsps_observed = s.observations.size();
  return s;
}

FilterConfig no_persistence() {
  FilterConfig c;
  c.enable_persistence = false;
  return c;
}

TEST(Filters, IntraAsDropsAsnZero) {
  auto cycle = snap_of({obs(0, 1, 2, {100}, 9),      // inter-domain
                        obs(65001, 1, 2, {100}, 9)});
  FilterConfig config = no_persistence();
  config.enable_target_as = false;
  config.enable_transit_diversity = false;
  const auto result = apply_filters(cycle, {}, config);
  EXPECT_EQ(result.stats.complete, 2u);
  EXPECT_EQ(result.stats.after_intra_as, 1u);
  ASSERT_EQ(result.observations.size(), 1u);
  EXPECT_EQ(result.observations[0].lsp.asn, 65001u);
}

TEST(Filters, IntraAsCanBeDisabled) {
  auto cycle = snap_of({obs(0, 1, 2, {100}, 9)});
  FilterConfig config = no_persistence();
  config.enable_intra_as = false;
  config.enable_target_as = false;
  config.enable_transit_diversity = false;
  const auto result = apply_filters(cycle, {}, config);
  EXPECT_EQ(result.observations.size(), 1u);
}

TEST(Filters, TargetAsDropsTunnelsTowardOwnAs) {
  auto cycle = snap_of({obs(65001, 1, 2, {100}, 65001),   // dst inside
                        obs(65001, 1, 2, {100}, 65099)}); // dst outside
  FilterConfig config = no_persistence();
  config.enable_transit_diversity = false;
  const auto result = apply_filters(cycle, {}, config);
  EXPECT_EQ(result.stats.after_intra_as, 2u);
  EXPECT_EQ(result.stats.after_target_as, 1u);
  EXPECT_EQ(result.observations[0].dst_asn, 65099u);
}

TEST(Filters, TransitDiversityNeedsTwoDestAses) {
  auto cycle = snap_of({obs(65001, 1, 2, {100}, 9),
                        obs(65001, 1, 2, {100}, 9),     // same dst AS
                        obs(65001, 5, 6, {200}, 9),
                        obs(65001, 5, 6, {200}, 10)});  // two dst ASes
  const auto result = apply_filters(cycle, {}, no_persistence());
  EXPECT_EQ(result.stats.after_transit_diversity, 2u);
  for (const auto& o : result.observations) {
    EXPECT_EQ(o.lsp.ingress, ip(5));
  }
}

TEST(Filters, TransitDiversityIsPerIotpNotPerLsp) {
  // Two different LSPs of one IOTP, each seen toward ONE dst AS, but the
  // IOTP overall reaches two => both kept.
  auto cycle = snap_of({obs(65001, 1, 2, {100}, 9),
                        obs(65001, 1, 2, {101}, 10)});
  const auto result = apply_filters(cycle, {}, no_persistence());
  EXPECT_EQ(result.observations.size(), 2u);
}

TEST(Filters, PersistenceKeepsLspSeenInNextSnapshot) {
  const auto persistent_obs = obs(65001, 1, 2, {100}, 9);
  const auto transient_obs = obs(65001, 1, 2, {777}, 10);
  auto cycle = snap_of({persistent_obs, transient_obs,
                        obs(65001, 1, 2, {100}, 10)});  // ensure diversity
  const auto next1 = snap_of({persistent_obs});
  const auto next2 = snap_of({});
  FilterConfig config;
  config.persistence_j = 2;
  const auto result = apply_filters(cycle, {next1, next2}, config);
  EXPECT_EQ(result.stats.after_transit_diversity, 3u);
  EXPECT_EQ(result.stats.after_persistence, 2u);
  for (const auto& o : result.observations) {
    EXPECT_EQ(o.lsp.lsrs[0].labels[0], 100u);
  }
}

TEST(Filters, PersistenceSeenOnlyInSecondFollowUpStillKept) {
  const auto o1 = obs(65001, 1, 2, {100}, 9);
  auto cycle = snap_of({o1, obs(65001, 1, 2, {100}, 10)});
  const auto next1 = snap_of({});
  const auto next2 = snap_of({o1});
  const auto result = apply_filters(cycle, {next1, next2}, FilterConfig{});
  EXPECT_EQ(result.observations.size(), 2u);
}

TEST(Filters, PersistenceJLimitsSnapshotsConsulted) {
  const auto o1 = obs(65001, 1, 2, {100}, 9);
  auto cycle = snap_of({o1, obs(65001, 1, 2, {100}, 10)});
  const auto empty = snap_of({});
  const auto with_lsp = snap_of({o1});
  FilterConfig config;
  config.persistence_j = 1;
  config.dynamic_threshold = 2.0;  // disable reinjection for this test
  // LSP reappears only in snapshot X+2, but j=1 only looks at X+1.
  const auto result = apply_filters(cycle, {empty, with_lsp}, config);
  EXPECT_EQ(result.stats.after_persistence, 0u);
}

TEST(Filters, DynamicAsReinjectedAndTagged) {
  // All of AS 65001's LSPs vanish in the follow-ups (label churn):
  // reinjection restores them and the AS is tagged dynamic.
  auto cycle = snap_of({obs(65001, 1, 2, {100}, 9),
                        obs(65001, 1, 2, {101}, 10),
                        obs(65002, 5, 6, {300}, 9),
                        obs(65002, 5, 6, {300}, 10)});
  const auto next1 = snap_of({obs(65001, 1, 2, {200}, 9),   // new labels
                              obs(65002, 5, 6, {300}, 9)}); // stable
  const auto result = apply_filters(cycle, {next1}, FilterConfig{});
  EXPECT_TRUE(result.dynamic_asns.contains(65001));
  EXPECT_FALSE(result.dynamic_asns.contains(65002));
  EXPECT_EQ(result.stats.after_persistence, 4u);  // everything kept
}

TEST(Filters, PartialChurnIsNotDynamic) {
  // Half of the AS's LSPs persist: normal routing noise, no reinjection.
  auto cycle = snap_of({obs(65001, 1, 2, {100}, 9),
                        obs(65001, 1, 2, {101}, 10)});
  const auto next1 = snap_of({obs(65001, 1, 2, {100}, 9)});
  const auto result = apply_filters(cycle, {next1}, FilterConfig{});
  EXPECT_FALSE(result.dynamic_asns.contains(65001));
  EXPECT_EQ(result.stats.after_persistence, 1u);
}

TEST(Filters, NoFollowUpsWithPersistenceTriggersReinjection) {
  auto cycle = snap_of({obs(65001, 1, 2, {100}, 9),
                        obs(65001, 1, 2, {101}, 10)});
  const auto result = apply_filters(cycle, {}, FilterConfig{});
  // Nothing can persist => whole AS wiped => reinjected as dynamic.
  EXPECT_TRUE(result.dynamic_asns.contains(65001));
  EXPECT_EQ(result.observations.size(), 2u);
}

TEST(Filters, StatsChainMonotone) {
  auto cycle = snap_of({obs(0, 1, 2, {1}, 9),
                        obs(65001, 1, 2, {2}, 65001),
                        obs(65001, 3, 4, {3}, 9),
                        obs(65001, 3, 4, {3}, 10),
                        obs(65001, 7, 8, {4}, 9)});
  const auto result = apply_filters(cycle, {snap_of({})}, FilterConfig{});
  const auto& s = result.stats;
  EXPECT_GE(s.complete, s.after_intra_as);
  EXPECT_GE(s.after_intra_as, s.after_target_as);
  EXPECT_GE(s.after_target_as, s.after_transit_diversity);
}

TEST(Filters, LspContentSetMatchesHashes) {
  const auto o1 = obs(65001, 1, 2, {100}, 9);
  const auto o2 = obs(65001, 1, 2, {101}, 9);
  const auto set = lsp_content_set(snap_of({o1, o2}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(o1.lsp.content_hash()));
  EXPECT_TRUE(set.contains(o2.lsp.content_hash()));
}

// --- group_iotps --------------------------------------------------------

TEST(GroupIotps, DeduplicatesVariantsAndAccumulatesDests) {
  const auto o1 = obs(65001, 1, 2, {100}, 9);
  const auto o1_again = obs(65001, 1, 2, {100}, 10);
  const auto o2 = obs(65001, 1, 2, {101}, 11);
  const auto records = group_iotps({o1, o1_again, o2});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].variants.size(), 2u);  // {100} and {101}
  EXPECT_EQ(records[0].dst_asns, (std::vector<std::uint32_t>{9, 10, 11}));
}

TEST(GroupIotps, SeparatesByEndpointsAndAs) {
  const auto records = group_iotps({obs(65001, 1, 2, {100}, 9),
                                    obs(65001, 1, 3, {100}, 9),
                                    obs(65002, 1, 2, {100}, 9)});
  EXPECT_EQ(records.size(), 3u);
}

TEST(GroupIotps, DeterministicOrder) {
  const auto a = group_iotps({obs(65002, 1, 2, {1}, 9),
                              obs(65001, 5, 6, {2}, 9),
                              obs(65001, 3, 4, {3}, 9)});
  ASSERT_EQ(a.size(), 3u);
  EXPECT_LT(a[0].key, a[1].key);
  EXPECT_LT(a[1].key, a[2].key);
}

TEST(GroupIotps, EmptyInput) {
  EXPECT_TRUE(group_iotps({}).empty());
}

}  // namespace
}  // namespace mum::lpr
