#include "gen/campaign.h"

#include <gtest/gtest.h>

#include "core/filters.h"

#include <set>

namespace mum::gen {
namespace {

GenConfig small_config() {
  GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  return c;
}

class CampaignTest : public ::testing::Test {
 protected:
  CampaignTest()
      : internet(small_config()),
        ip2as(internet.build_ip2as()),
        runner(internet, ip2as) {}
  Internet internet;
  dataset::Ip2As ip2as;
  CampaignRunner runner;
};

TEST_F(CampaignTest, SnapshotHasExpectedTraceVolume) {
  MonthContext ctx = internet.instantiate(50);
  const auto snap = runner.snapshot(ctx, 50, 0);
  // 4 monitors x 60 destination /24s x probes_per_dest addresses.
  EXPECT_EQ(snap.trace_count(),
            4u * 60u *
                static_cast<std::size_t>(internet.config().probes_per_dest));
  EXPECT_EQ(snap.cycle_id, 50u);
  EXPECT_EQ(snap.date, "2014-03");
}

TEST_F(CampaignTest, TracesAreAnnotated) {
  MonthContext ctx = internet.instantiate(50);
  const auto snap = runner.snapshot(ctx, 50, 0);
  int annotated_hops = 0;
  for (const auto& t : snap.traces) {
    EXPECT_NE(t.dst_asn, 0u);
    for (const auto& h : t.hops) {
      if (!h.anonymous() && h.asn != 0) ++annotated_hops;
    }
  }
  EXPECT_GT(annotated_hops, 500);
}

TEST_F(CampaignTest, SomeTracesCrossExplicitTunnels) {
  MonthContext ctx = internet.instantiate(50);
  const auto snap = runner.snapshot(ctx, 50, 0);
  int tunneled = 0;
  for (const auto& t : snap.traces) {
    tunneled += t.crosses_explicit_tunnel() ? 1 : 0;
  }
  EXPECT_GT(tunneled, 20);
  EXPECT_LT(tunneled, static_cast<int>(snap.trace_count()));
}

TEST_F(CampaignTest, MonitorShareReducesFleet) {
  MonthContext ctx = internet.instantiate(50);
  CampaignConfig half;
  half.monitor_share = 0.5;
  const auto snap = runner.snapshot(ctx, 50, 0, half);
  std::set<std::uint32_t> monitors;
  for (const auto& t : snap.traces) monitors.insert(t.monitor_id);
  EXPECT_EQ(monitors.size(), 2u);
}

TEST_F(CampaignTest, MonthHasCyclePlusExtras) {
  const auto month = runner.month(50);
  ASSERT_EQ(month.snapshots.size(), 3u);  // cycle + 2
  EXPECT_EQ(month.cycle().sub_index, 0u);
  EXPECT_EQ(month.snapshots[1].sub_index, 1u);
  EXPECT_EQ(month.cycle_id, 50u);
  // Snapshots probe the same destination list.
  EXPECT_EQ(month.snapshots[0].trace_count(),
            month.snapshots[1].trace_count());
}

TEST_F(CampaignTest, CampaignDeterministicForSameSeed) {
  const auto m1 = runner.month(40);
  Internet other(small_config());
  const auto other_ip2as = other.build_ip2as();
  const auto m2 = CampaignRunner(other, other_ip2as).month(40);
  ASSERT_EQ(m1.cycle().trace_count(), m2.cycle().trace_count());
  for (std::size_t i = 0; i < m1.cycle().traces.size(); ++i) {
    const auto& a = m1.cycle().traces[i];
    const auto& b = m2.cycle().traces[i];
    ASSERT_EQ(a.hops.size(), b.hops.size());
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].addr, b.hops[h].addr);
      EXPECT_EQ(a.hops[h].labels, b.hops[h].labels);
    }
  }
}

TEST_F(CampaignTest, MostLspContentPersistsAcrossSnapshots) {
  // The Persistence filter depends on high-but-not-total overlap between a
  // month's snapshots.
  const auto month = runner.month(50);
  const auto c0 = ::mum::lpr::extract_lsps(month.snapshots[0], ip2as);
  const auto c1 = ::mum::lpr::extract_lsps(month.snapshots[1], ip2as);
  const auto set1 = ::mum::lpr::lsp_content_set(c1);
  std::size_t kept = 0;
  std::size_t total = 0;
  for (const auto& obs : c0.observations) {
    if (obs.lsp.asn == kAsnVodafone) continue;  // dynamic labels churn
    ++total;
    kept += set1.contains(obs.lsp.content_hash()) ? 1 : 0;
  }
  ASSERT_GT(total, 50u);
  const double share = static_cast<double>(kept) / static_cast<double>(total);
  EXPECT_GT(share, 0.45);  // high, but below 1: churn exists to be filtered
  EXPECT_LT(share, 1.0);
}

TEST_F(CampaignTest, VodafoneLabelsChurnBetweenSnapshots) {
  const auto month = runner.month(50);
  const auto c0 = ::mum::lpr::extract_lsps(month.snapshots[0], ip2as);
  const auto c1 = ::mum::lpr::extract_lsps(month.snapshots[1], ip2as);
  const auto set1 = ::mum::lpr::lsp_content_set(c1);
  std::size_t kept = 0, total = 0;
  for (const auto& obs : c0.observations) {
    if (obs.lsp.asn != kAsnVodafone) continue;
    ++total;
    kept += set1.contains(obs.lsp.content_hash()) ? 1 : 0;
  }
  if (total > 0) {
    EXPECT_LT(static_cast<double>(kept) / static_cast<double>(total), 0.2);
  }
}

TEST_F(CampaignTest, DailyMonthGeneratesPerDaySnapshots) {
  const auto days = runner.daily_month(cycle_of(2012, 4), 10);
  ASSERT_EQ(days.size(), 10u);
  EXPECT_EQ(days[0].date, "2012-04-01");
  EXPECT_EQ(days[9].date, "2012-04-10");
  // Fleet size wobbles day to day.
  std::set<std::size_t> volumes;
  for (const auto& d : days) volumes.insert(d.trace_count());
  EXPECT_GT(volumes.size(), 1u);
}

TEST_F(CampaignTest, Level3AppearsMidApril2012) {
  const auto days = runner.daily_month(cycle_of(2012, 4), 30);
  auto level3_lsps = [&](const dataset::Snapshot& snap) {
    const auto extracted = ::mum::lpr::extract_lsps(snap, ip2as);
    std::size_t n = 0;
    for (const auto& obs : extracted.observations) {
      if (obs.lsp.asn == kAsnLevel3) ++n;
    }
    return n;
  };
  EXPECT_EQ(level3_lsps(days[0]), 0u);    // April 1st
  EXPECT_EQ(level3_lsps(days[13]), 0u);   // April 14th
  EXPECT_GT(level3_lsps(days[29]), 10u);  // April 30th: deployed
  // Ramp: day 20 strictly between the extremes.
  const auto mid = level3_lsps(days[20]);
  EXPECT_GT(mid, 0u);
  EXPECT_LT(mid, level3_lsps(days[29]));
}

}  // namespace
}  // namespace mum::gen
