// JSON writer + report-export tests. No JSON parser is shipped, so
// structural checks are done with a tiny validator below (balanced
// containers + well-formed strings), plus exact-output assertions for
// small documents.
#include <gtest/gtest.h>

#include <cmath>

#include "core/report_json.h"
#include "util/json.h"

namespace mum {
namespace {

// Minimal structural validation: balanced {}/[] outside strings, valid
// escapes. Good enough to catch writer bugs without a full parser.
bool structurally_valid(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

// --- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, SmallObjectExactOutput) {
  util::JsonWriter json;
  json.begin_object();
  json.field("name", "mum");
  json.field("cycle", 60);
  json.field("ok", true);
  json.end_object();
  EXPECT_EQ(json.str(), R"({"name":"mum","cycle":60,"ok":true})");
}

TEST(JsonWriter, ArraysAndNesting) {
  util::JsonWriter json;
  json.begin_object();
  json.key("values");
  json.begin_array();
  json.value(1);
  json.value(2);
  json.begin_object();
  json.field("x", 3);
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"values":[1,2,{"x":3}]})");
}

TEST(JsonWriter, EmptyContainers) {
  util::JsonWriter json;
  json.begin_object();
  json.key("a");
  json.begin_array();
  json.end_array();
  json.key("b");
  json.begin_object();
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":[],"b":{}})");
}

TEST(JsonWriter, EscapesSpecials) {
  util::JsonWriter json;
  json.begin_object();
  json.field("s", "a\"b\\c\nd");
  json.end_object();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, ControlCharactersAsUnicodeEscapes) {
  EXPECT_EQ(util::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, DoublesAndNull) {
  util::JsonWriter json;
  json.begin_array();
  json.value(0.5);
  json.value(std::nan(""));
  json.null();
  json.end_array();
  EXPECT_EQ(json.str(), "[0.5,null,null]");
}

TEST(JsonWriter, NegativeAndLargeIntegers) {
  util::JsonWriter json;
  json.begin_array();
  json.value(static_cast<std::int64_t>(-42));
  json.value(static_cast<std::uint64_t>(1) << 53);
  json.end_array();
  EXPECT_EQ(json.str(), "[-42,9007199254740992]");
}

// --- report export -----------------------------------------------------------

lpr::CycleReport sample_report() {
  lpr::CycleReport report;
  report.cycle_id = 59;
  report.date = "2014-12";
  report.extract_stats.traces_total = 100;
  report.extract_stats.traces_with_explicit_tunnel = 40;
  report.filter_stats.observed = 50;
  report.filter_stats.after_persistence = 30;

  lpr::IotpRecord rec;
  rec.key = lpr::IotpKey{7018, net::Ipv4Addr(1), net::Ipv4Addr(2)};
  rec.tunnel_class = lpr::TunnelClass::kMonoFec;
  rec.mono_fec_kind = lpr::MonoFecKind::kParallelLinks;
  rec.length = 3;
  rec.width = 2;
  rec.dst_asns = {1, 2};
  report.iotps.push_back(rec);
  report.global.mono_fec = 1;
  report.global.parallel_links = 1;
  report.per_as[7018] = report.global;
  report.dynamic_as[1273] = true;
  return report;
}

TEST(ReportJson, CycleReportStructureAndFields) {
  const std::string text = to_json(sample_report());
  EXPECT_TRUE(structurally_valid(text)) << text;
  EXPECT_NE(text.find("\"cycle\":60"), std::string::npos);  // 1-based
  EXPECT_NE(text.find("\"date\":\"2014-12\""), std::string::npos);
  EXPECT_NE(text.find("\"mono_fec\":1"), std::string::npos);
  EXPECT_NE(text.find("\"asn\":7018"), std::string::npos);
  // IOTPs excluded by default.
  EXPECT_EQ(text.find("\"iotps\""), std::string::npos);
}

TEST(ReportJson, IotpsIncludedOnRequest) {
  const std::string text = to_json(sample_report(), /*include_iotps=*/true);
  EXPECT_TRUE(structurally_valid(text)) << text;
  EXPECT_NE(text.find("\"iotps\""), std::string::npos);
  EXPECT_NE(text.find("\"class\":\"Mono-FEC\""), std::string::npos);
  EXPECT_NE(text.find("\"mono_fec_kind\":\"Parallel Links\""),
            std::string::npos);
  EXPECT_NE(text.find("\"width\":2"), std::string::npos);
}

TEST(ReportJson, LongitudinalIsArrayOfCycles) {
  lpr::LongitudinalReport longitudinal;
  longitudinal.cycles.push_back(sample_report());
  longitudinal.cycles.push_back(sample_report());
  const std::string text = to_json(longitudinal);
  EXPECT_TRUE(structurally_valid(text)) << text;
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), ']');
  // Two cycle objects.
  std::size_t hits = 0, pos = 0;
  while ((pos = text.find("\"cycle\":60", pos)) != std::string::npos) {
    ++hits;
    pos += 1;
  }
  EXPECT_EQ(hits, 2u);
}

}  // namespace
}  // namespace mum
