#include "net/radix_trie.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace mum::net {
namespace {

TEST(RadixTrie, EmptyLookupMisses) {
  RadixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.lookup(Ipv4Addr(1, 2, 3, 4)).has_value());
}

TEST(RadixTrie, ExactHostRoute) {
  RadixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(9, 9, 9, 9), 32), 1);
  EXPECT_EQ(trie.lookup(Ipv4Addr(9, 9, 9, 9)), 1);
  EXPECT_FALSE(trie.lookup(Ipv4Addr(9, 9, 9, 8)).has_value());
}

TEST(RadixTrie, LongestPrefixWins) {
  RadixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), 8);
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16), 16);
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 1, 2, 0), 24), 24);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 2, 3)), 24);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 9, 9)), 16);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 200, 0, 1)), 8);
  EXPECT_FALSE(trie.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
}

TEST(RadixTrie, DefaultRouteCatchesAll) {
  RadixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(), 0), 99);
  EXPECT_EQ(trie.lookup(Ipv4Addr(255, 1, 2, 3)), 99);
  trie.insert(Ipv4Prefix(Ipv4Addr(255, 0, 0, 0), 8), 8);
  EXPECT_EQ(trie.lookup(Ipv4Addr(255, 1, 2, 3)), 8);
  EXPECT_EQ(trie.lookup(Ipv4Addr(1, 1, 1, 1)), 99);
}

TEST(RadixTrie, InsertOverwrites) {
  RadixTrie<int> trie;
  const Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 8);
  trie.insert(p, 1);
  trie.insert(p, 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 5, 5, 5)), 2);
}

TEST(RadixTrie, LookupPrefixReturnsCoveringPrefix) {
  RadixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16), 7);
  const auto hit = trie.lookup_prefix(Ipv4Addr(10, 1, 2, 3));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16));
  EXPECT_EQ(hit->second, 7);
}

TEST(RadixTrie, ExactFetch) {
  RadixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16), 2);
  EXPECT_EQ(trie.exact(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8)), 1);
  EXPECT_EQ(trie.exact(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16)), 2);
  EXPECT_FALSE(trie.exact(Ipv4Prefix(Ipv4Addr(10, 2, 0, 0), 16)).has_value());
}

TEST(RadixTrie, EntriesEnumeratesEverythingInOrder) {
  RadixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(20, 0, 0, 0), 8), 1);
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), 2);
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 128, 0, 0), 9), 3);
  const auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first.addr(), Ipv4Addr(10, 0, 0, 0));
  EXPECT_EQ(entries[1].first.addr(), Ipv4Addr(10, 128, 0, 0));
  EXPECT_EQ(entries[2].first.addr(), Ipv4Addr(20, 0, 0, 0));
}

TEST(RadixTrie, AdjacentSiblingPrefixesDistinct) {
  RadixTrie<int> trie;
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 9), 0);
  trie.insert(Ipv4Prefix(Ipv4Addr(10, 128, 0, 0), 9), 1);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 1, 0, 0)), 0);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 200, 0, 0)), 1);
}

// Property test: trie LPM must agree with a brute-force scan, on randomized
// prefix tables across several densities.
class RadixTrieProperty : public ::testing::TestWithParam<int> {};

TEST_P(RadixTrieProperty, MatchesBruteForce) {
  const int n_prefixes = GetParam();
  util::Rng rng(777 + static_cast<std::uint64_t>(n_prefixes));

  RadixTrie<int> trie;
  std::vector<std::pair<Ipv4Prefix, int>> table;
  for (int i = 0; i < n_prefixes; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform(4, 28));
    const Ipv4Prefix p(Ipv4Addr(static_cast<std::uint32_t>(rng.next())), len);
    trie.insert(p, i);
    // Mirror overwrite semantics in the reference table.
    bool replaced = false;
    for (auto& [q, v] : table) {
      if (q == p) {
        v = i;
        replaced = true;
      }
    }
    if (!replaced) table.emplace_back(p, i);
  }

  for (int probe = 0; probe < 500; ++probe) {
    // Half the probes land inside a known prefix to exercise hits.
    Ipv4Addr addr(static_cast<std::uint32_t>(rng.next()));
    if (probe % 2 == 0 && !table.empty()) {
      const auto& [p, v] = table[static_cast<std::size_t>(
          rng.below(table.size()))];
      addr = p.nth(rng.below(p.size()));
    }
    std::optional<int> expected;
    int best_len = -1;
    for (const auto& [p, v] : table) {
      if (p.contains(addr) && p.length() > best_len) {
        best_len = p.length();
        expected = v;
      }
    }
    EXPECT_EQ(trie.lookup(addr), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, RadixTrieProperty,
                         ::testing::Values(1, 8, 64, 256));

}  // namespace
}  // namespace mum::net
