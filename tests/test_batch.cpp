// Oracle tests for the arena-backed SoA measurement path (DESIGN.md §14).
//
// The heap-Trace pipeline is kept in-tree as the batch path's oracle
// (gen::CampaignConfig::batch = false reaches the pre-batch code verbatim),
// so every guarantee here is stated as byte- or value-identity against it:
// the batch path must be a pure storage change, invisible in any output.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "dataset/ip2as.h"
#include "dataset/pack.h"
#include "dataset/trace_batch.h"
#include "dataset/warts_lite.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "net/lse.h"
#include "obs/telemetry.h"
#include "probe/traceroute.h"
#include "run/checkpoint.h"
#include "run/runner.h"
#include "util/arena.h"

namespace mum {
namespace {

namespace fs = std::filesystem;

gen::GenConfig small_gen() {
  gen::GenConfig c;
  c.background_tier1 = 1;
  c.background_transit = 6;
  c.stub_ases = 8;
  c.monitors = 4;
  c.dests_per_monitor = 60;
  return c;
}

run::RunnerConfig small_runner(int cycles, int threads = 1) {
  run::RunnerConfig c;
  c.gen = small_gen();
  c.first_cycle = 0;
  c.last_cycle = cycles - 1;
  c.threads = threads;
  return c;
}

// An annotated AoS snapshot produced entirely by the legacy path.
dataset::Snapshot legacy_snapshot() {
  gen::Internet internet(small_gen());
  const auto ip2as = internet.build_ip2as();
  gen::CampaignConfig config;
  config.batch = false;
  gen::CampaignRunner runner(internet, ip2as, config);
  auto ctx = internet.instantiate(50);
  return runner.snapshot(ctx, 50, 0);
}

void expect_views_match(const dataset::TraceBatch& batch,
                        const std::vector<dataset::Trace>& traces) {
  ASSERT_EQ(batch.trace_count(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const dataset::Trace& t = traces[i];
    const dataset::TraceView v = batch.view(i);
    EXPECT_EQ(v.monitor_id(), t.monitor_id);
    EXPECT_EQ(v.src(), t.src);
    EXPECT_EQ(v.dst(), t.dst);
    EXPECT_EQ(v.dst_asn(), t.dst_asn);
    EXPECT_EQ(v.reached(), t.reached);
    ASSERT_EQ(v.hop_count(), t.hops.size());
    for (std::size_t k = 0; k < t.hops.size(); ++k) {
      const dataset::TraceHop& hop = t.hops[k];
      const dataset::HopView hv = v.hop(k);
      EXPECT_EQ(hv.addr(), hop.addr);
      EXPECT_DOUBLE_EQ(hv.rtt_ms(), hop.rtt_ms);
      EXPECT_EQ(hv.asn(), hop.asn);
      EXPECT_EQ(hv.anonymous(), hop.anonymous());
      EXPECT_EQ(hv.label_depth(), hop.labels.depth());
      EXPECT_EQ(hv.labels(), hop.labels.labels());
      EXPECT_TRUE(hv.label_stack() == hop.labels);
    }
  }
}

// --- arena stats -----------------------------------------------------------

TEST(ArenaStats, SnapshotTracksUseHighWaterAndResets) {
  util::Arena arena(128);
  arena.make_array<std::uint64_t>(100);
  const util::Arena::Stats warm = arena.stats();
  EXPECT_GE(warm.used_bytes, 100 * sizeof(std::uint64_t));
  EXPECT_GE(warm.capacity_bytes, warm.used_bytes);
  // high_water is current-inclusive: never below what is live right now.
  EXPECT_GE(warm.high_water_bytes, warm.used_bytes);
  EXPECT_EQ(warm.reset_count, 0u);
  EXPECT_GE(warm.chunk_count, 1u);

  arena.reset();
  const util::Arena::Stats after = arena.stats();
  EXPECT_EQ(after.used_bytes, 0u);
  EXPECT_EQ(after.capacity_bytes, warm.capacity_bytes);
  EXPECT_GE(after.high_water_bytes, warm.used_bytes);
  EXPECT_EQ(after.reset_count, 1u);
}

// The satellite guarantee behind the steady-state claim: an identical
// workload replayed against a reset arena re-carves the retained chunks —
// capacity, chunk count and high water all freeze after the first pass.
TEST(ArenaStats, IdenticalWorkloadAfterResetDoesNotGrow) {
  util::Arena arena(256);
  const auto workload = [&arena] {
    for (int i = 0; i < 32; ++i) {
      arena.make_array<std::uint32_t>(17);
      arena.make_array<std::uint64_t>(9);
      arena.make_array<std::uint8_t>(3);
    }
  };
  workload();
  arena.reset();
  workload();
  const util::Arena::Stats warm = arena.stats();
  for (int round = 0; round < 10; ++round) {
    arena.reset();
    workload();
    const util::Arena::Stats now = arena.stats();
    EXPECT_EQ(now.capacity_bytes, warm.capacity_bytes);
    EXPECT_EQ(now.chunk_count, warm.chunk_count);
    EXPECT_EQ(now.high_water_bytes, warm.high_water_bytes);
    EXPECT_EQ(now.used_bytes, warm.used_bytes);
  }
}

// --- small-inline LabelStack -----------------------------------------------

TEST(LabelStackInline, PushPopAcrossTheInlineBoundary) {
  static_assert(net::LabelStack::kInlineDepth == 3);
  net::LabelStack stack;
  // Grow through the inline capacity and past it into the spill.
  for (std::uint32_t d = 1; d <= 5; ++d) {
    stack.push(1000 + d, 0, 64);
    EXPECT_EQ(stack.depth(), d);
    EXPECT_EQ(stack.top().label(), 1000 + d);
    // Exactly one bottom-of-stack entry, and it is the last one.
    const auto entries = stack.entries();
    for (std::size_t k = 0; k < entries.size(); ++k) {
      EXPECT_EQ(entries[k].bottom_of_stack(), k + 1 == entries.size());
    }
  }
  // Labels come out top-first regardless of storage.
  EXPECT_EQ(stack.labels(),
            (std::vector<std::uint32_t>{1005, 1004, 1003, 1002, 1001}));
  // Shrink back across the boundary: contents survive the spill->inline
  // transition.
  stack.pop();
  stack.pop();
  EXPECT_EQ(stack.depth(), 3u);
  EXPECT_EQ(stack.labels(), (std::vector<std::uint32_t>{1003, 1002, 1001}));
  EXPECT_TRUE(stack.entries().back().bottom_of_stack());
}

TEST(LabelStackInline, VectorConstructorAndEqualityAgnosticToStorage) {
  std::vector<net::LabelStackEntry> entries;
  for (std::uint32_t d = 0; d < 4; ++d) {
    entries.emplace_back(300 + d, 0, d == 3, 64);
  }
  const net::LabelStack deep(entries);  // spilled (depth 4)
  net::LabelStack pushed;               // built top-last via push
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    pushed.push(it->label(), it->traffic_class(), it->ttl());
  }
  EXPECT_TRUE(deep == pushed);
  net::LabelStack shallow(std::vector<net::LabelStackEntry>(
      entries.begin() + 1, entries.end()));  // depth 3: inline
  EXPECT_FALSE(deep == shallow);
  EXPECT_EQ(shallow.depth(), 3u);
  EXPECT_EQ(shallow.top().label(), 301u);
}

// --- TraceBatch storage ----------------------------------------------------

TEST(AsnCache, AgreesWithTrieAcrossGrowthAndReuse) {
  dataset::Ip2As table;
  // Structured blocks like the generator carves: sequential /16s with
  // hosts at fixed strides, the worst case for a low-bit hash.
  for (std::uint32_t unit = 0; unit < 64; ++unit) {
    table.add_prefix(
        net::Ipv4Prefix(net::Ipv4Addr((16u << 24) + (unit << 16)), 16),
        1000 + unit);
  }

  dataset::AsnCache cache;
  // Enough distinct addresses to force several grow() rehashes from the
  // 4096-slot initial table; two passes so the second is all warm hits.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t unit = 0; unit < 64; ++unit) {
      for (std::uint32_t host = 0; host < 256; ++host) {
        const std::uint32_t addr = (16u << 24) + (unit << 16) + host * 256 + 1;
        ASSERT_EQ(cache.get(addr, table), table.lookup(net::Ipv4Addr(addr)))
            << "unit " << unit << " host " << host << " pass " << pass;
      }
    }
  }
  // Uncovered addresses memoize kUnknownAsn just like the trie reports it.
  EXPECT_EQ(cache.get((17u << 24) + 5, table), dataset::kUnknownAsn);
  EXPECT_EQ(cache.get((17u << 24) + 5, table), dataset::kUnknownAsn);
}

TEST(TraceBatch, AppendedHeapTracesReadBackThroughViews) {
  const dataset::Snapshot snap = legacy_snapshot();
  ASSERT_GT(snap.traces.size(), 100u);

  dataset::TraceBatch batch;
  for (const auto& trace : snap.traces) batch.append(trace);
  expect_views_match(batch, snap.traces);

  // And the conversion layer undoes it exactly.
  dataset::SnapshotBatch wrapped;
  wrapped.cycle_id = snap.cycle_id;
  wrapped.sub_index = snap.sub_index;
  wrapped.date = snap.date;
  wrapped.traces = std::move(batch);
  const dataset::Snapshot back = wrapped.to_snapshot();
  EXPECT_EQ(dataset::serialize_snapshot(back),
            dataset::serialize_snapshot(snap));
}

TEST(TraceBatch, ColumnMergeRebasesOffsets) {
  const dataset::Snapshot snap = legacy_snapshot();
  const std::size_t half = snap.traces.size() / 2;

  util::Arena arena_a, arena_b;
  dataset::TraceBatch a(arena_a), b(arena_b);
  for (std::size_t i = 0; i < half; ++i) a.append(snap.traces[i]);
  for (std::size_t i = half; i < snap.traces.size(); ++i) {
    b.append(snap.traces[i]);
  }

  dataset::TraceBatch merged;
  merged.reserve(a.trace_count() + b.trace_count(),
                 a.hop_count() + b.hop_count(),
                 a.lse_count() + b.lse_count());
  merged.append(a);
  merged.append(b);
  expect_views_match(merged, snap.traces);
}

TEST(TraceBatch, PackAndStreamWritersMatchAosBytes) {
  const dataset::Snapshot snap = legacy_snapshot();
  dataset::SnapshotBatch batch;
  batch.cycle_id = snap.cycle_id;
  batch.sub_index = snap.sub_index;
  batch.date = snap.date;
  for (const auto& trace : snap.traces) batch.traces.append(trace);

  // The batch's columns ARE the pack sections; both writers must emit the
  // same bytes, and the v2 stream writer must agree too.
  EXPECT_EQ(dataset::serialize_pack(batch), dataset::serialize_pack(snap));
  EXPECT_EQ(dataset::serialize_snapshot(batch),
            dataset::serialize_snapshot(snap));
}

TEST(TraceBatch, PackViewRoundTripIsByteStable) {
  const dataset::Snapshot snap = legacy_snapshot();
  const std::string bytes = dataset::serialize_pack(snap);

  const auto view = dataset::PackView::open(bytes, {}, nullptr);
  ASSERT_TRUE(view.has_value());
  const dataset::SnapshotBatch batch = view->to_snapshot_batch();
  EXPECT_EQ(batch.trace_count(), snap.traces.size());
  // The wire format quantizes rtt and drops annotations (asn is recomputed
  // after ingest), so the reference is the heap decoder over the same
  // bytes, not the pre-serialization snapshot.
  const auto decoded = dataset::parse_pack(bytes);
  ASSERT_TRUE(decoded.has_value());
  expect_views_match(batch.traces, decoded->traces);
  EXPECT_EQ(dataset::serialize_pack(batch), bytes);
}

TEST(TraceBatch, DamagedPackIngestsTolerantlyOrRejects) {
  const dataset::Snapshot snap = legacy_snapshot();
  const std::string bytes = dataset::serialize_pack(snap);

  // Truncations at every granularity: whatever still opens must produce a
  // self-consistent batch (counts agree, offsets monotone) — never a crash.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() - 7, bytes.size() / 2,
        bytes.size() / 3, std::size_t{64}, std::size_t{5}}) {
    // PackView is zero-copy: the mapped buffer must outlive the view.
    const std::string damaged = bytes.substr(0, keep);
    dataset::DecodeDiagnostics diag;
    const auto view = dataset::PackView::open(
        damaged, dataset::DecodeOptions{.tolerant = true}, &diag);
    if (!view.has_value()) {
      EXPECT_GT(diag.faults_total(), 0u);
      continue;
    }
    const dataset::SnapshotBatch salvaged = view->to_snapshot_batch();
    const auto& traces = salvaged.traces;
    for (std::size_t i = 0; i < traces.trace_count(); ++i) {
      ASSERT_LE(traces.view(i).first_hop() + traces.view(i).hop_count(),
                traces.hop_count());
    }
    // The salvage re-serializes cleanly.
    const std::string reserialized = dataset::serialize_pack(salvaged);
    const auto again = dataset::PackView::open(reserialized, {}, nullptr);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->to_snapshot_batch().trace_count(),
              traces.trace_count());
  }
}

// --- probe layer -----------------------------------------------------------

TEST(Traceroute, BatchSinkIsDrawForDrawIdenticalToHeapSink) {
  gen::Internet internet(small_gen());
  auto ctx = internet.instantiate(50);
  const auto& monitors = internet.monitors();
  const auto& dests = internet.destinations();
  const probe::TraceOptions options;

  util::Arena arena;
  dataset::TraceBatch batch(arena);
  std::vector<dataset::Trace> heap;
  util::Rng rng_heap(7);
  util::Rng rng_batch(7);
  probe::WalkResult scratch;
  for (const auto& monitor : monitors) {
    for (std::size_t d = 0; d < dests.size(); d += 3) {
      const auto path = internet.path_spec(monitor, dests[d], ctx);
      if (!path) continue;
      heap.push_back(probe::trace_route(monitor, *path, options, rng_heap));
      probe::trace_route_into(monitor, *path, options, rng_batch, batch,
                              &scratch);
    }
  }
  ASSERT_GT(heap.size(), 50u);
  // Identical draw sequences => identical rngs afterwards.
  EXPECT_EQ(rng_heap.next(), rng_batch.next());
  expect_views_match(batch, heap);
}

// --- campaign layer --------------------------------------------------------

TEST(CampaignBatch, SnapshotBytesIdenticalToLegacyPath) {
  gen::Internet internet(small_gen());
  const auto ip2as = internet.build_ip2as();

  gen::CampaignConfig legacy_config;
  legacy_config.batch = false;
  gen::CampaignRunner legacy(internet, ip2as, legacy_config);
  gen::CampaignRunner batched(internet, ip2as);  // batch = true default

  auto ctx_a = internet.instantiate(50);
  auto ctx_b = internet.instantiate(50);
  const dataset::Snapshot want = legacy.snapshot(ctx_a, 50, 0);
  const dataset::SnapshotBatch got = batched.snapshot_batch(ctx_b, 50, 0);

  EXPECT_EQ(dataset::serialize_snapshot(got),
            dataset::serialize_snapshot(want));
  EXPECT_EQ(dataset::serialize_pack(got), dataset::serialize_pack(want));

  // The conversion layer (what snapshot() returns when batch is on) agrees.
  auto ctx_c = internet.instantiate(50);
  const dataset::Snapshot converted = batched.snapshot(ctx_c, 50, 0);
  EXPECT_EQ(dataset::serialize_snapshot(converted),
            dataset::serialize_snapshot(want));
}

TEST(CampaignBatch, ArenaTelemetryGaugesExported) {
  gen::Internet internet(small_gen());
  const auto ip2as = internet.build_ip2as();
  gen::CampaignRunner runner(internet, ip2as);
  auto ctx = internet.instantiate(50);

  const std::uint64_t traces_before =
      obs::registry().counter("probe.batch.traces").value();
  const std::uint64_t resets_before =
      obs::registry().counter("probe.arena.resets").value();
  const dataset::SnapshotBatch snap = runner.snapshot_batch(ctx, 50, 0);

  EXPECT_EQ(obs::registry().counter("probe.batch.traces").value() -
                traces_before,
            snap.trace_count());
  EXPECT_GE(obs::registry().counter("probe.arena.resets").value() -
                resets_before,
            1u);
  // Gauges are max-of high-water marks; a completed snapshot implies both
  // are populated and capacity covers the high water.
  const std::int64_t capacity =
      obs::registry().gauge("probe.arena.capacity_bytes").value();
  const std::int64_t high_water =
      obs::registry().gauge("probe.arena.high_water_bytes").value();
  EXPECT_GT(high_water, 0);
  EXPECT_GE(capacity, high_water);
}

// Acceptance: arena high-water stays stable over a 60-cycle soak. The
// workload repeats the same cycle, so after the first snapshot warms the
// shard arenas the retained chunks must absorb every later one — observed
// through the exported gauges (max-of: any growth would raise them).
TEST(CampaignBatch, ArenaHighWaterStableOverSixtyCycleSoak) {
  gen::Internet internet(small_gen());
  const auto ip2as = internet.build_ip2as();
  gen::CampaignRunner runner(internet, ip2as);

  {
    auto ctx = internet.instantiate(50);
    (void)runner.snapshot_batch(ctx, 50, 0);  // warm-up
  }
  const std::int64_t capacity_warm =
      obs::registry().gauge("probe.arena.capacity_bytes").value();
  const std::int64_t high_water_warm =
      obs::registry().gauge("probe.arena.high_water_bytes").value();

  for (int round = 0; round < 60; ++round) {
    auto ctx = internet.instantiate(50);
    const dataset::SnapshotBatch snap = runner.snapshot_batch(ctx, 50, 0);
    ASSERT_GT(snap.trace_count(), 0u);
  }
  EXPECT_EQ(obs::registry().gauge("probe.arena.capacity_bytes").value(),
            capacity_warm);
  EXPECT_EQ(obs::registry().gauge("probe.arena.high_water_bytes").value(),
            high_water_warm);
}

// --- runner-level oracle ---------------------------------------------------

// Acceptance: campaign reports are byte-identical to the legacy path at any
// thread count (1, 4 and 16 here), telemetry incidental, chaos included.
TEST(BatchOracle, ReportsByteIdenticalToLegacyAcrossThreadCounts) {
  constexpr int kCycles = 3;
  auto legacy_config = small_runner(kCycles, /*threads=*/1);
  legacy_config.campaign.batch = false;
  run::Runner legacy(legacy_config);
  const std::string want = legacy.run_all().to_json();

  for (const int threads : {1, 4, 16}) {
    auto config = small_runner(kCycles, threads);
    ASSERT_TRUE(config.campaign.batch);
    run::Runner batched(config);
    EXPECT_EQ(batched.run_all().to_json(), want)
        << "batch report diverged from legacy at threads=" << threads;
  }
}

TEST(BatchOracle, ChaosReportsByteIdenticalToLegacy) {
  constexpr int kCycles = 3;
  const auto spec =
      chaos::parse_chaos_spec("stack=2%,noext=2%,blackout=2%,flip=0.0005");
  ASSERT_TRUE(spec.has_value());

  auto legacy_config = small_runner(kCycles, /*threads=*/1);
  legacy_config.campaign.batch = false;
  legacy_config.chaos = *spec;
  run::Runner legacy(legacy_config);
  const auto want = legacy.run_all_contained();
  ASSERT_TRUE(want.manifest.complete());

  for (const int threads : {1, 4}) {
    auto config = small_runner(kCycles, threads);
    config.chaos = *spec;
    run::Runner batched(config);
    const auto got = batched.run_all_contained();
    ASSERT_TRUE(got.manifest.complete());
    EXPECT_EQ(got.report.to_json(), want.report.to_json())
        << "chaos batch report diverged at threads=" << threads;
  }
}

class BatchResumeTest : public ::testing::Test {
 protected:
  // Pid-suffixed so concurrent ctest -j processes cannot collide.
  BatchResumeTest()
      : dir_(fs::temp_directory_path() /
             ("mum_batch_resume_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
  }
  ~BatchResumeTest() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// Acceptance: a batch-path run resumed over mixed-format data shards (v2
// stream + v3 pack) reproduces the legacy report byte for byte.
TEST_F(BatchResumeTest, MixedFormatResumeMatchesLegacyReport) {
  constexpr int kCycles = 4;
  auto legacy_config = small_runner(kCycles, /*threads=*/1);
  legacy_config.campaign.batch = false;
  run::Runner legacy(legacy_config);
  const std::string want = legacy.run_all().to_json();

  auto config = small_runner(kCycles, /*threads=*/2);
  config.checkpoint_dir = dir_.string();
  config.checkpoint_data = true;
  run::Runner first(config);
  const auto full = first.run_all_contained();
  ASSERT_TRUE(full.manifest.complete());
  EXPECT_EQ(full.report.to_json(), want);

  // Rewrite cycle 2's shards as v3 packs so the directory mixes formats,
  // then kill two report checkpoints to force recomputation paths.
  const auto shard_paths = run::find_data_shards(dir_.string(), 2);
  ASSERT_FALSE(shard_paths.empty());
  for (std::size_t sub = 0; sub < shard_paths.size(); ++sub) {
    std::string bytes;
    {
      std::ifstream is(shard_paths[sub], std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(is), {});
    }
    const auto snap = dataset::parse_snapshot(bytes);
    ASSERT_TRUE(snap.has_value());
    fs::remove(shard_paths[sub]);
    ASSERT_TRUE(run::write_data_shard(dir_.string(), 2, sub, *snap,
                                      dataset::kPackVersion));
  }
  fs::remove(dir_ / run::checkpoint_filename(1));
  fs::remove(dir_ / run::checkpoint_filename(2));

  config.resume = true;
  config.threads = 3;
  run::Runner second(config);
  const auto resumed = second.run_all_contained();
  ASSERT_TRUE(resumed.manifest.complete());
  EXPECT_EQ(resumed.manifest.count(run::CycleOutcome::kFromData), 2u);
  EXPECT_EQ(resumed.report.to_json(), want);
}

}  // namespace
}  // namespace mum
