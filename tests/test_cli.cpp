// CLI tests: argument parsing, the generate -> stats/classify/trees
// pipeline over real temp files, and error handling.
#include "cli.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "dataset/ip2as.h"

namespace mum::cli {
namespace {

namespace fs = std::filesystem;

// --- Args ----------------------------------------------------------------

TEST(Args, TakeValueAndFlag) {
  Args args({"--out", "/tmp/x", "--small", "file1", "file2"});
  EXPECT_EQ(args.take_value("--out"), "/tmp/x");
  EXPECT_TRUE(args.take_flag("--small"));
  EXPECT_FALSE(args.take_flag("--small"));  // consumed
  EXPECT_EQ(args.positionals(),
            (std::vector<std::string>{"file1", "file2"}));
  EXPECT_FALSE(args.unknown_flag().has_value());
  EXPECT_TRUE(args.ok());
}

TEST(Args, MissingValueIsError) {
  Args args({"--out"});
  EXPECT_FALSE(args.take_value("--out").has_value());
  EXPECT_FALSE(args.ok());
}

TEST(Args, TakeIntDefaultsAndParses) {
  Args args({"--j", "5"});
  EXPECT_EQ(args.take_int("--j", 2), 5);
  EXPECT_EQ(args.take_int("--k", 7), 7);
  EXPECT_TRUE(args.ok());
}

TEST(Args, TakeIntRejectsGarbage) {
  Args args({"--j", "five"});
  EXPECT_EQ(args.take_int("--j", 2), 2);
  EXPECT_FALSE(args.ok());
}

TEST(Args, UnknownFlagDetected) {
  Args args({"--bogus", "x"});
  EXPECT_TRUE(args.unknown_flag().has_value());
  EXPECT_EQ(*args.unknown_flag(), "--bogus");
}

TEST(Args, ValueFlagAbsent) {
  Args args({"a", "b"});
  EXPECT_FALSE(args.take_value("--out").has_value());
  EXPECT_TRUE(args.ok());  // absence is not an error
}

// --- ip2as text round trip -------------------------------------------------

TEST(Ip2AsText, RoundTrip) {
  dataset::Ip2As table;
  table.add_prefix(*net::Ipv4Prefix::parse("16.0.0.0/15"), 7018);
  table.add_prefix(*net::Ipv4Prefix::parse("16.2.0.0/16"), 30000);
  const auto text = dataset::to_table_text(table);
  const auto back = dataset::ip2as_from_text(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->prefix_count(), 2u);
  EXPECT_EQ(back->lookup(*net::Ipv4Addr::parse("16.1.2.3")), 7018u);
  EXPECT_EQ(back->lookup(*net::Ipv4Addr::parse("16.2.2.3")), 30000u);
}

TEST(Ip2AsText, CommentsAndBlanksAllowed) {
  const auto table = dataset::ip2as_from_text(
      "# pfx2as\n\n16.0.0.0/16 100\n   \n16.1.0.0/16\t200\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->prefix_count(), 2u);
}

TEST(Ip2AsText, MalformedRejected) {
  EXPECT_FALSE(dataset::ip2as_from_text("garbage").has_value());
  EXPECT_FALSE(dataset::ip2as_from_text("16.0.0.0/33 5").has_value());
  EXPECT_FALSE(dataset::ip2as_from_text("16.0.0.0/16 notanasn").has_value());
}

// --- end-to-end over temp files -------------------------------------------

class CliPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-suffixed so concurrent ctest -j processes cannot collide.
    dir_ = fs::temp_directory_path() /
           ("mum_cli_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_cmd(std::vector<std::string> argv_tail, std::string* out_text) {
    std::vector<const char*> argv{"mum"};
    for (const auto& a : argv_tail) argv.push_back(a.c_str());
    std::ostringstream out, err;
    const int code = run(static_cast<int>(argv.size()), argv.data(), out,
                         err);
    if (out_text != nullptr) *out_text = out.str() + err.str();
    return code;
  }

  std::vector<std::string> snapshot_files() const {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".mumw") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  fs::path dir_;
};

TEST_F(CliPipeline, GenerateClassifyTreesStats) {
  std::string out;
  ASSERT_EQ(run_cmd({"generate", "--out", dir_.string(), "--cycle", "50",
                     "--small", "--snapshots", "2"},
                    &out),
            0)
      << out;
  const auto files = snapshot_files();
  ASSERT_EQ(files.size(), 2u);
  const std::string table = (dir_ / "ip2as.txt").string();
  ASSERT_TRUE(fs::exists(table));

  ASSERT_EQ(run_cmd({"stats", files[0], files[1]}, &out), 0) << out;
  EXPECT_NE(out.find("traces"), std::string::npos);

  ASSERT_EQ(run_cmd({"classify", "--ip2as", table, files[0], files[1]},
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("Mono-LSP"), std::string::npos);
  EXPECT_NE(out.find("IOTPs"), std::string::npos);

  std::string csv;
  ASSERT_EQ(run_cmd({"classify", "--csv", "--ip2as", table, files[0]},
                    &csv),
            0);
  EXPECT_NE(csv.find("class,IOTPs,share"), std::string::npos);

  std::string router_level;
  ASSERT_EQ(run_cmd({"classify", "--router-level", "--ip2as", table,
                     files[0], files[1]},
                    &router_level),
            0);
  EXPECT_NE(router_level.find("router-level IOTPs"), std::string::npos);
  EXPECT_NE(router_level.find("alias sets inferred"), std::string::npos);

  std::string json;
  ASSERT_EQ(run_cmd({"classify", "--json", "--ip2as", table, files[0]},
                    &json),
            0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"global\""), std::string::npos);
  EXPECT_EQ(json.find("\"iotps\""), std::string::npos);
  std::string json_iotps;
  ASSERT_EQ(run_cmd({"classify", "--json-iotps", "--ip2as", table,
                     files[0]},
                    &json_iotps),
            0);
  EXPECT_NE(json_iotps.find("\"iotps\""), std::string::npos);

  ASSERT_EQ(run_cmd({"trees", "--ip2as", table, files[0]}, &out), 0) << out;
  EXPECT_NE(out.find("egress-rooted trees"), std::string::npos);
}

TEST_F(CliPipeline, DeterministicAcrossRuns) {
  std::string out1, out2;
  ASSERT_EQ(run_cmd({"generate", "--out", (dir_ / "a").string(), "--cycle",
                     "40", "--small"},
                    &out1),
            0);
  ASSERT_EQ(run_cmd({"generate", "--out", (dir_ / "b").string(), "--cycle",
                     "40", "--small"},
                    &out2),
            0);
  // Byte-identical snapshot files for the same seed/cycle.
  std::ifstream a(dir_ / "a" / "cycle40_s0.mumw", std::ios::binary);
  std::ifstream b(dir_ / "b" / "cycle40_s0.mumw", std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
}

TEST_F(CliPipeline, ErrorsAreReported) {
  std::string out;
  EXPECT_NE(run_cmd({"classify", "--ip2as", "/nonexistent", "x.mumw"},
                    &out),
            0);
  EXPECT_NE(run_cmd({"classify", "--ip2as"}, &out), 0);
  EXPECT_NE(run_cmd({"frobnicate"}, &out), 0);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  EXPECT_NE(run_cmd({"generate", "--cycle", "50"}, &out), 0);  // no --out
  EXPECT_NE(run_cmd({"generate", "--out", dir_.string(), "--cycle", "99"},
                    &out),
            0);
}

TEST_F(CliPipeline, HelpPrintsUsage) {
  std::string out;
  EXPECT_EQ(run_cmd({"--help"}, &out), 0);
  EXPECT_NE(out.find("usage: mum"), std::string::npos);
}

TEST_F(CliPipeline, StatsRejectsGarbageFile) {
  const fs::path bogus = dir_ / "bogus.mumw";
  std::ofstream(bogus) << "not a snapshot";
  std::string out;
  EXPECT_NE(run_cmd({"stats", bogus.string()}, &out), 0);
  EXPECT_NE(out.find("not a warts-lite snapshot"), std::string::npos);
}

TEST_F(CliPipeline, GenerateV3PackAndMixedFormatIngest) {
  std::string out;
  ASSERT_EQ(run_cmd({"generate", "--out", dir_.string(), "--cycle", "50",
                     "--small", "--snapshots", "2"},
                    &out),
            kExitOk)
      << out;
  ASSERT_EQ(run_cmd({"generate", "--out", (dir_ / "pack").string(),
                     "--cycle", "50", "--small", "--snapshots", "2",
                     "--format", "v3"},
                    &out),
            kExitOk)
      << out;
  const fs::path p0 = dir_ / "pack" / "cycle50_s0.mump";
  const fs::path p1 = dir_ / "pack" / "cycle50_s1.mump";
  ASSERT_TRUE(fs::exists(p0));
  ASSERT_TRUE(fs::exists(p1));
  const std::string table = (dir_ / "ip2as.txt").string();
  const fs::path w0 = dir_ / "cycle50_s0.mumw";
  const fs::path w1 = dir_ / "cycle50_s1.mumw";

  // Same generation either container: classification output is identical,
  // and a mixed v2+v3 file list reads transparently (readers sniff magic).
  std::string via_v2, via_v3, mixed;
  ASSERT_EQ(run_cmd({"classify", "--ip2as", table, w0.string(), w1.string()},
                    &via_v2),
            kExitOk)
      << via_v2;
  ASSERT_EQ(run_cmd({"classify", "--ip2as", table, p0.string(), p1.string()},
                    &via_v3),
            kExitOk);
  EXPECT_EQ(via_v2, via_v3);
  ASSERT_EQ(run_cmd({"classify", "--ip2as", table, w0.string(), p1.string()},
                    &mixed),
            kExitOk);
  EXPECT_EQ(mixed, via_v2);
  EXPECT_EQ(run_cmd({"stats", p0.string()}, &out), kExitOk);
  EXPECT_NE(out.find("traces"), std::string::npos);

  // Bad --format values are usage errors, on both subcommands.
  EXPECT_EQ(run_cmd({"generate", "--out", dir_.string(), "--cycle", "50",
                     "--format", "v9"},
                    &out),
            kExitUsage);
  EXPECT_NE(out.find("--format"), std::string::npos);
  EXPECT_EQ(run_cmd({"campaign", "--cycles", "1", "--small", "--format",
                     "banana"},
                    &out),
            kExitUsage);
  // --checkpoint-data only makes sense with a checkpoint directory.
  EXPECT_EQ(run_cmd({"campaign", "--cycles", "1", "--small",
                     "--checkpoint-data"},
                    &out),
            kExitUsage);
}

// --- exit codes ------------------------------------------------------------

TEST_F(CliPipeline, UsageErrorsExitOne) {
  std::string out;
  EXPECT_EQ(run_cmd({"frobnicate"}, &out), kExitUsage);
  EXPECT_EQ(run_cmd({"generate", "--cycle", "5"}, &out), kExitUsage);
  EXPECT_EQ(run_cmd({"generate", "--out", dir_.string(), "--cycle", "99"},
                    &out),
            kExitUsage);
  EXPECT_EQ(run_cmd({"classify"}, &out), kExitUsage);  // --ip2as missing
  EXPECT_EQ(run_cmd({"stats", "--bogus-flag", "x.mumw"}, &out), kExitUsage);
  EXPECT_EQ(run_cmd({"campaign", "--cycles", "0"}, &out), kExitUsage);
  EXPECT_EQ(run_cmd({"campaign", "--chaos", "bogus=1"}, &out), kExitUsage);
  EXPECT_EQ(run_cmd({"stats", "--tolerant", "--strict", "x.mumw"}, &out),
            kExitUsage);
}

TEST_F(CliPipeline, DataErrorsExitThree) {
  std::string out;
  EXPECT_EQ(run_cmd({"stats", (dir_ / "missing.mumw").string()}, &out),
            kExitFatal);
  const fs::path bogus = dir_ / "bogus.mumw";
  std::ofstream(bogus) << "not a snapshot";
  EXPECT_EQ(run_cmd({"stats", bogus.string()}, &out), kExitFatal);
  // Tolerant mode cannot save a file that is not a container at all.
  EXPECT_EQ(run_cmd({"stats", "--tolerant", bogus.string()}, &out),
            kExitFatal);
}

TEST_F(CliPipeline, TolerantSalvagesTruncatedSnapshot) {
  std::string out;
  ASSERT_EQ(run_cmd({"generate", "--out", dir_.string(), "--cycle", "50",
                     "--small", "--snapshots", "1"},
                    &out),
            kExitOk)
      << out;
  const auto files = snapshot_files();
  ASSERT_EQ(files.size(), 1u);

  // Chop the tail off the file: the last record's frame now overruns.
  std::string bytes;
  {
    std::ifstream is(files[0], std::ios::binary);
    std::stringstream ss;
    ss << is.rdbuf();
    bytes = ss.str();
  }
  ASSERT_GT(bytes.size(), 64u);
  const fs::path cut = dir_ / "cut.mumw";
  std::ofstream(cut, std::ios::binary)
      << bytes.substr(0, bytes.size() - 40);

  // Strict (default) refuses; tolerant salvages and reports what it skipped.
  EXPECT_EQ(run_cmd({"stats", cut.string()}, &out), kExitFatal);
  EXPECT_EQ(run_cmd({"stats", "--tolerant", cut.string()}, &out), kExitOk);
  EXPECT_NE(out.find("salvaged"), std::string::npos);
}

TEST_F(CliPipeline, CampaignExitCodesAndManifest) {
  std::string out;
  // A clean small campaign: every cycle computes, exit 0.
  EXPECT_EQ(run_cmd({"campaign", "--small", "--cycles", "2", "--quiet"},
                    &out),
            kExitOk)
      << out;

  // Injected failure on every cycle: contained, but the run is partial.
  std::string json;
  EXPECT_EQ(run_cmd({"campaign", "--small", "--cycles", "2", "--keep-going",
                     "--chaos", "fail=1", "--json", "--quiet"},
                    &json),
            kExitPartial);
  EXPECT_NE(json.find("\"manifest\""), std::string::npos);
  EXPECT_NE(json.find("\"failed\":2"), std::string::npos);
  EXPECT_NE(json.find("injected failure"), std::string::npos);
}

TEST_F(CliPipeline, CampaignAbortedExitCode) {
  // Fail-fast (no --keep-going) on a guaranteed failure: remaining cycles
  // are skipped, which is an abort (5), not a mere partial (2).
  std::string json;
  EXPECT_EQ(run_cmd({"campaign", "--small", "--cycles", "3", "--chaos",
                     "fail=1", "--json", "--quiet"},
                    &json),
            kExitAborted);
  EXPECT_NE(json.find("\"skipped\":"), std::string::npos);
}

TEST_F(CliPipeline, CampaignDegradedExitCode) {
  // Persistent disk-full: the report completes but checkpoint persistence
  // is dropped — degraded-complete (4), and the manifest says why.
  const std::string ckpt = (dir_ / "ck_enospc").string();
  std::string json;
  EXPECT_EQ(run_cmd({"campaign", "--small", "--cycles", "4", "--quiet",
                     "--checkpoints", ckpt, "--chaos", "io.enospc=1",
                     "--json"},
                    &json),
            kExitDegraded);
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoints_degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("persistent enospc"), std::string::npos);
}

TEST_F(CliPipeline, CampaignSupervisionFlags) {
  // --retry and --cycle-deadline parse and validate.
  std::string out;
  EXPECT_EQ(run_cmd({"campaign", "--small", "--cycles", "1", "--quiet",
                     "--retry", "2", "--cycle-deadline", "60000"},
                    &out),
            kExitOk)
      << out;
  EXPECT_EQ(run_cmd({"campaign", "--retry", "-1"}, &out), kExitUsage);
  EXPECT_EQ(run_cmd({"campaign", "--cycle-deadline", "-5"}, &out),
            kExitUsage);
  EXPECT_EQ(run_cmd({"campaign", "--chaos", "io.bogus=1"}, &out),
            kExitUsage);
  EXPECT_NE(out.find("unknown fault"), std::string::npos);
  // A hopeless deadline with slow io: every cycle times out; cycles were
  // attempted (none skipped), so the run is partial, not aborted.
  EXPECT_EQ(run_cmd({"campaign", "--small", "--cycles", "1", "--quiet",
                     "--keep-going", "--checkpoints",
                     (dir_ / "ck_slow").string(), "--chaos",
                     "io.slow=1,io.slow_ms=200", "--cycle-deadline", "1",
                     "--json"},
                    &out),
            kExitPartial);
  EXPECT_NE(out.find("\"timed_out\":1"), std::string::npos);
}

TEST_F(CliPipeline, CampaignIoChaosKeepsReportBytes) {
  // Same seed, io chaos on/off: stdout (the science) must be identical;
  // only the exit code and manifest reflect the weather.
  std::string clean;
  ASSERT_EQ(run_cmd({"campaign", "--small", "--cycles", "3", "--quiet"},
                    &clean),
            kExitOk);
  std::string stormy;
  const int code = run_cmd(
      {"campaign", "--small", "--cycles", "3", "--quiet", "--retry", "2",
       "--checkpoints", (dir_ / "ck_io").string(), "--checkpoint-data",
       "--chaos", "io.all=2%"},
      &stormy);
  EXPECT_TRUE(code == kExitOk || code == kExitDegraded) << code;
  // run_cmd concatenates out+err; --quiet keeps err to warnings only, so
  // compare the table prefix (stdout comes first).
  EXPECT_EQ(stormy.substr(0, clean.size()), clean);
}

TEST(Usage, DocumentsSupervision) {
  const std::string text = usage();
  EXPECT_NE(text.find("--retry"), std::string::npos);
  EXPECT_NE(text.find("--cycle-deadline"), std::string::npos);
  EXPECT_NE(text.find("io.eio"), std::string::npos);
  EXPECT_NE(text.find("io.kill_at"), std::string::npos);
  EXPECT_NE(text.find("4 degraded-complete"), std::string::npos);
  EXPECT_NE(text.find("5 aborted"), std::string::npos);
}

}  // namespace
}  // namespace mum::cli
