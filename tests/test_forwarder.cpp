#include "probe/forwarder.h"

#include <gtest/gtest.h>

#include <set>

#include "mpls/ldp.h"
#include "mpls/rsvp.h"
#include "util/rng.h"

namespace mum::probe {
namespace {

using topo::AsTopology;
using topo::RouterId;
using topo::Vendor;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

// A reusable AS fixture: diamond + parallel bundle on one arm.
//
//        b
//      /   \
//    a       d     a=ingress border, d=egress border
//      \\   /      (a-c is a 2-link bundle)
//        c
struct PlaneFixture {
  PlaneFixture() : topo(65001) {
    a = topo.add_router(ip(0x10000001), Vendor::kCisco, true);
    b = topo.add_router(ip(0x10000002), Vendor::kCisco, false);
    c = topo.add_router(ip(0x10000003), Vendor::kCisco, false);
    d = topo.add_router(ip(0x10000004), Vendor::kCisco, true);
    ab = topo.add_link(a, b, ip(0x10010001), ip(0x10010002), 1);
    ac1 = topo.add_link(a, c, ip(0x10010003), ip(0x10010004), 1);
    ac2 = topo.add_link(a, c, ip(0x10010005), ip(0x10010006), 1);
    bd = topo.add_link(b, d, ip(0x10010007), ip(0x10010008), 1);
    cd = topo.add_link(c, d, ip(0x10010009), ip(0x1001000A), 1);
    igp = igp::IgpState::compute(topo);
    for (std::size_t i = 0; i < topo.router_count(); ++i) {
      pools.emplace_back(Vendor::kCisco);
    }
    plane.asn = 65001;
    plane.topo = &topo;
    plane.igp = &igp;
  }

  void enable_ldp(bool php = true) {
    mpls::LdpConfig config;
    config.php = php;
    ldp = mpls::LdpPlane::build(topo, igp, config, pools);
    plane.ldp = &*ldp;
  }

  void enable_te(int lsps, double diverse_prob = 0.0) {
    mpls::RsvpConfig config;
    config.diverse_route_prob = diverse_prob;
    rsvp.emplace(&topo, &igp, config);
    util::Rng rng(5);
    const auto ids = rsvp->signal(a, d, lsps, pools, rng);
    plane.rsvp = &*rsvp;
    plane.te_policy.pairs[{a, d}] = ids;
    plane.te_policy.te_share = 1.0;
  }

  SegmentSpec segment() const {
    SegmentSpec seg;
    seg.plane = &plane;
    seg.ingress = a;
    seg.egress = d;
    seg.entry_iface = ip(0x10020000);
    return seg;
  }

  PathSpec path() const {
    PathSpec p;
    p.segments.push_back(segment());
    p.dst = ip(0x20000001);
    return p;
  }

  AsTopology topo;
  igp::IgpState igp;
  std::vector<mpls::LabelPool> pools;
  std::optional<mpls::LdpPlane> ldp;
  std::optional<mpls::RsvpTePlane> rsvp;
  AsDataPlane plane;
  RouterId a, b, c, d;
  topo::LinkId ab, ac1, ac2, bd, cd;
};

TEST(EcmpPick, DeterministicAndInRange) {
  for (std::uint64_t flow = 0; flow < 50; ++flow) {
    const auto pick = ecmp_pick(flow, 3, 99, 4);
    EXPECT_LT(pick, 4u);
    EXPECT_EQ(pick, ecmp_pick(flow, 3, 99, 4));
  }
  EXPECT_EQ(ecmp_pick(123, 1, 1, 1), 0u);
  EXPECT_EQ(ecmp_pick(123, 1, 1, 0), 0u);
}

TEST(EcmpPick, RoutersChooseIndependently) {
  // The same flow must not always take branch 0 at every router.
  std::set<std::size_t> picks;
  for (RouterId r = 0; r < 32; ++r) picks.insert(ecmp_pick(42, r, 7, 2));
  EXPECT_EQ(picks.size(), 2u);
}

TEST(EcmpPick, FlowsSpreadAcrossBranches) {
  int first = 0;
  const int n = 2000;
  for (std::uint64_t flow = 0; flow < n; ++flow) {
    if (ecmp_pick(util::mix64(flow), 5, 9, 2) == 0) ++first;
  }
  EXPECT_NEAR(first, n / 2, n / 10);
}

TEST(Forwarder, PlainIgpWalkShowsNoLabels) {
  PlaneFixture f;  // no LDP, no TE
  const auto result = walk_path(f.path(), /*flow=*/1);
  EXPECT_TRUE(result.reached);
  ASSERT_GE(result.hops.size(), 3u);
  for (const auto& hop : result.hops) EXPECT_TRUE(hop.labels.empty());
}

TEST(Forwarder, EntryHopIsEntryIface) {
  PlaneFixture f;
  const auto result = walk_path(f.path(), 1);
  ASSERT_FALSE(result.hops.empty());
  EXPECT_EQ(result.hops[0].addr, ip(0x10020000));
}

TEST(Forwarder, LdpLabelsAppearOnInteriorHopsOnly) {
  PlaneFixture f;
  f.enable_ldp();
  const auto result = walk_path(f.path(), 1);
  ASSERT_EQ(result.hops.size(), 3u);  // entry, interior, egress
  EXPECT_TRUE(result.hops[0].labels.empty());           // ingress LER
  EXPECT_FALSE(result.hops[1].labels.empty());          // LSR
  EXPECT_TRUE(result.hops[2].labels.empty());           // PHP: egress clean
}

TEST(Forwarder, LdpLabelIsDownstreamAllocated) {
  PlaneFixture f;
  f.enable_ldp();
  const auto result = walk_path(f.path(), 1);
  const auto& interior = result.hops[1];
  // The label shown at a router is the label that router itself advertised
  // for the FEC (egress d).
  const RouterId lsr = f.topo.router_of_addr(interior.addr);
  EXPECT_EQ(interior.labels.top().label(), f.ldp->label_of(lsr, f.d));
}

TEST(Forwarder, NoPhpShowsLabelAtEgress) {
  PlaneFixture f;
  f.enable_ldp(/*php=*/false);
  const auto result = walk_path(f.path(), 1);
  ASSERT_EQ(result.hops.size(), 3u);
  EXPECT_FALSE(result.hops[2].labels.empty());
  EXPECT_EQ(result.hops[2].labels.top().label(),
            f.ldp->label_of(f.d, f.d));
}

TEST(Forwarder, DifferentFlowsExploreEcmpBranches) {
  PlaneFixture f;
  f.enable_ldp();
  std::set<net::Ipv4Addr> interior_addrs;
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    const auto result = walk_path(f.path(), util::mix64(flow));
    ASSERT_EQ(result.hops.size(), 3u);
    interior_addrs.insert(result.hops[1].addr);
  }
  // Branches via b, via c-link1 and via c-link2 are all reachable.
  EXPECT_GE(interior_addrs.size(), 3u);
}

TEST(Forwarder, SameFlowAlwaysSamePath) {
  PlaneFixture f;
  f.enable_ldp();
  const auto r1 = walk_path(f.path(), 777);
  const auto r2 = walk_path(f.path(), 777);
  ASSERT_EQ(r1.hops.size(), r2.hops.size());
  for (std::size_t i = 0; i < r1.hops.size(); ++i) {
    EXPECT_EQ(r1.hops[i].addr, r2.hops[i].addr);
  }
}

TEST(Forwarder, ParallelLinksShareLdpLabel) {
  PlaneFixture f;
  f.enable_ldp();
  // Find two flows taking the two a-c bundle links.
  std::optional<net::LabelStack> labels1, labels2;
  net::Ipv4Addr addr1, addr2;
  for (std::uint64_t flow = 0; flow < 256; ++flow) {
    const auto result = walk_path(f.path(), util::mix64(flow));
    const auto& hop = result.hops[1];
    if (hop.addr == f.topo.link(f.ac1).iface_of(f.c)) {
      labels1 = hop.labels;
      addr1 = hop.addr;
    } else if (hop.addr == f.topo.link(f.ac2).iface_of(f.c)) {
      labels2 = hop.labels;
      addr2 = hop.addr;
    }
  }
  ASSERT_TRUE(labels1.has_value());
  ASSERT_TRUE(labels2.has_value());
  EXPECT_NE(addr1, addr2);             // different interface addresses...
  EXPECT_EQ(*labels1, *labels2);       // ...same (router-scoped) label
}

TEST(Forwarder, TeLspFollowsSignalledRoute) {
  PlaneFixture f;
  f.enable_ldp();
  f.enable_te(/*lsps=*/1);
  const auto result = walk_path(f.path(), 1);
  const auto& lsp = f.rsvp->lsp(0);
  ASSERT_EQ(result.hops.size(), 1 + lsp.hops.size());
  for (std::size_t i = 0; i < lsp.hops.size(); ++i) {
    const auto& te_hop = lsp.hops[i];
    EXPECT_EQ(result.hops[i + 1].addr,
              f.topo.link(te_hop.in_link).iface_of(te_hop.router));
  }
}

TEST(Forwarder, TeLspsGiveDifferentLabelsPerDestination) {
  PlaneFixture f;
  f.enable_ldp();
  f.enable_te(/*lsps=*/3, /*diverse=*/0.0);
  std::set<std::uint32_t> labels_at_interior;
  for (std::uint32_t d = 0; d < 32; ++d) {
    PathSpec p = f.path();
    p.dst = ip(0x20000000 + (d << 8));  // distinct /24s
    const auto result = walk_path(p, 1);
    ASSERT_EQ(result.hops.size(), 3u);
    if (!result.hops[1].labels.empty()) {
      labels_at_interior.insert(result.hops[1].labels.top().label());
    }
  }
  // Three LSPs over the same route: up to 3 distinct labels at the shared
  // interior router — at least 2 must show with 32 destination prefixes.
  EXPECT_GE(labels_at_interior.size(), 2u);
}

TEST(Forwarder, TeShareZeroFallsBackToLdp) {
  PlaneFixture f;
  f.enable_ldp();
  f.enable_te(2);
  f.plane.te_policy.te_share = 0.0;
  const auto result = walk_path(f.path(), 1);
  const RouterId lsr = f.topo.router_of_addr(result.hops[1].addr);
  EXPECT_EQ(result.hops[1].labels.top().label(),
            f.ldp->label_of(lsr, f.d));
}

TEST(Forwarder, CoverageZeroDisablesMpls) {
  PlaneFixture f;
  f.enable_ldp();
  f.plane.mpls_coverage = 0.0;
  const auto result = walk_path(f.path(), 1);
  for (const auto& hop : result.hops) EXPECT_TRUE(hop.labels.empty());
}

TEST(Forwarder, CoverageSelectsDeterministicSubset) {
  PlaneFixture f;
  f.enable_ldp();
  f.plane.mpls_coverage = 0.5;
  int labeled = 0;
  const int n = 400;
  for (int d = 0; d < n; ++d) {
    PathSpec p = f.path();
    p.dst = ip(0x20000000 + (static_cast<std::uint32_t>(d) << 8));
    const bool first = !walk_path(p, 1).hops[1].labels.empty();
    const bool second = !walk_path(p, 1).hops[1].labels.empty();
    EXPECT_EQ(first, second);  // deterministic per destination
    labeled += first ? 1 : 0;
  }
  EXPECT_NEAR(labeled, n / 2, n / 8);
}

TEST(Forwarder, CoverageMonotoneInclusion) {
  // Raising coverage must only add labelled prefixes, never drop them —
  // the property the Fig. 16 ramp relies on.
  PlaneFixture f;
  f.enable_ldp();
  for (int d = 0; d < 100; ++d) {
    PathSpec p = f.path();
    p.dst = ip(0x20000000 + (static_cast<std::uint32_t>(d) << 8));
    f.plane.mpls_coverage = 0.3;
    const bool low = !walk_path(p, 1).hops[1].labels.empty();
    f.plane.mpls_coverage = 0.8;
    const bool high = !walk_path(p, 1).hops[1].labels.empty();
    if (low) EXPECT_TRUE(high);
  }
}

TEST(Forwarder, TtlPropagateOffHidesInteriorLsrs) {
  PlaneFixture f;
  f.enable_ldp();
  f.plane.ttl_propagate = false;
  const auto result = walk_path(f.path(), 1);
  ASSERT_EQ(result.hops.size(), 3u);
  EXPECT_TRUE(result.hops[0].ttl_visible);   // ingress LER (no label yet)
  EXPECT_FALSE(result.hops[1].ttl_visible);  // hidden LSR
  EXPECT_TRUE(result.hops[2].ttl_visible);   // egress after PHP
}

TEST(Forwarder, Rfc4950FlagPropagatedToHops) {
  PlaneFixture f;
  f.enable_ldp();
  f.plane.rfc4950 = false;
  const auto result = walk_path(f.path(), 1);
  for (const auto& hop : result.hops) EXPECT_FALSE(hop.rfc4950);
}

TEST(Forwarder, PreAndPostHopsSurroundSegments) {
  PlaneFixture f;
  PathSpec p = f.path();
  p.pre_hops = {ip(1), ip(2)};
  p.post_hops = {ip(3)};
  const auto result = walk_path(p, 1);
  ASSERT_EQ(result.hops.size(), 2 + 3 + 1u);
  EXPECT_EQ(result.hops[0].addr, ip(1));
  EXPECT_EQ(result.hops[1].addr, ip(2));
  EXPECT_EQ(result.hops.back().addr, ip(3));
}

TEST(Forwarder, SameIngressEgressSegmentIsOneHop) {
  PlaneFixture f;
  PathSpec p = f.path();
  p.segments[0].egress = p.segments[0].ingress;
  const auto result = walk_path(p, 1);
  EXPECT_EQ(result.hops.size(), 1u);
  EXPECT_TRUE(result.reached);
}

TEST(Forwarder, UnreachableEgressTruncatesWalk) {
  PlaneFixture f;
  // Island router unreachable from a.
  const RouterId island =
      f.topo.add_router(ip(0x100000FF), Vendor::kCisco, true);
  f.igp = igp::IgpState::compute(f.topo);  // recompute with the island
  PathSpec p = f.path();
  p.segments[0].egress = island;
  const auto result = walk_path(p, 1);
  EXPECT_FALSE(result.reached);
}

TEST(Forwarder, NullPlaneFailsSafely) {
  PathSpec p;
  SegmentSpec seg;  // null plane
  p.segments.push_back(seg);
  p.dst = ip(1);
  const auto result = walk_path(p, 1);
  EXPECT_FALSE(result.reached);
  EXPECT_TRUE(result.hops.empty());
}

TEST(Forwarder, SilentDestinationNotReached) {
  PlaneFixture f;
  PathSpec p = f.path();
  p.dst_responds = false;
  const auto result = walk_path(p, 1);
  EXPECT_FALSE(result.reached);
  EXPECT_FALSE(result.hops.empty());  // path still traced
}

}  // namespace
}  // namespace mum::probe
