// Internet-scale property tests: protocol invariants that must hold over
// the full generator output, whatever the seed. These are the invariants
// LPR's inference logic rests on, checked where they originate.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/extract.h"
#include "core/filters.h"
#include "core/classify.h"
#include "gen/campaign.h"
#include "gen/internet.h"

namespace mum {
namespace {

gen::GenConfig config_for(std::uint64_t seed) {
  gen::GenConfig c;
  c.seed = seed;
  c.background_tier1 = 2;
  c.background_transit = 10;
  c.stub_ases = 14;
  c.monitors = 6;
  c.dests_per_monitor = 200;
  return c;
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  PropertySweep()
      : internet(config_for(GetParam())),
        ip2as(internet.build_ip2as()),
        ctx(internet.instantiate(50)),
        snapshot(gen::CampaignRunner(internet, ip2as).snapshot(ctx, 50, 0)) {}

  gen::Internet internet;
  dataset::Ip2As ip2as;
  gen::MonthContext ctx;
  dataset::Snapshot snapshot;
};

TEST_P(PropertySweep, QuotedStacksAreWellFormed) {
  // Every quoted LSE stack has exactly one bottom-of-stack flag, on its
  // last entry (RFC 3032).
  for (const auto& trace : snapshot.traces) {
    for (const auto& hop : trace.hops) {
      if (hop.labels.empty()) continue;
      const auto& entries = hop.labels.entries();
      for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].bottom_of_stack(), i + 1 == entries.size());
        EXPECT_GE(entries[i].label(), net::kLabelFirstUnreserved);
        EXPECT_LE(entries[i].label(), net::kLabelMax);
      }
    }
  }
}

TEST_P(PropertySweep, LabelsRespectVendorRanges) {
  // Every quoted label must come out of the owning router's vendor pool.
  for (const auto& trace : snapshot.traces) {
    for (const auto& hop : trace.hops) {
      if (hop.labels.empty() || hop.anonymous()) continue;
      const auto* as = internet.modeled(hop.asn);
      if (as == nullptr) continue;
      const auto router = as->topo.router_of_addr(hop.addr);
      if (router == topo::kInvalidRouter) continue;
      // Only the TOP label belongs to this router (inner labels of a
      // stacked packet were allocated by the tunnel tail).
      const auto range =
          mpls::default_range(as->topo.router(router).vendor);
      const auto label = hop.labels.top().label();
      EXPECT_GE(label, range.first) << hop.addr.to_string();
      EXPECT_LE(label, range.last) << hop.addr.to_string();
    }
  }
}

TEST_P(PropertySweep, LdpLabelsAreRouterScopedInTraces) {
  // The LPR cornerstone: within one AS, one router interface must never
  // show two different labels for the same <egress FEC>. We approximate
  // the FEC by the LSP egress: group observed (addr -> egress) and check
  // label consistency for non-TE ASes.
  const auto extracted = lpr::extract_lsps(snapshot, ip2as);
  std::map<std::tuple<std::uint32_t, net::Ipv4Addr, net::Ipv4Addr>,
           std::set<std::uint32_t>>
      labels_by_addr_fec;
  for (const auto& obs : extracted.observations) {
    const auto* plane = ctx.plane_of(obs.lsp.asn);
    if (plane == nullptr || plane->rsvp != nullptr) continue;  // LDP-only AS
    // Skip runs extraction interpreted as non-PHP: every simulated AS runs
    // PHP, so those runs were truncated by IP2AS mis-origination noise and
    // their "egress" is really a penultimate LSR shared by several FECs —
    // exactly the measurement artifact the paper's IntraAS noise creates.
    if (obs.lsp.egress_labeled) continue;
    for (const auto& hop : obs.lsp.lsrs) {
      if (hop.labels.empty()) continue;
      labels_by_addr_fec[{obs.lsp.asn, hop.addr, obs.lsp.egress}].insert(
          hop.labels.front());
    }
  }
  for (const auto& [key, labels] : labels_by_addr_fec) {
    EXPECT_EQ(labels.size(), 1u)
        << "AS" << std::get<0>(key) << " "
        << std::get<1>(key).to_string() << " toward "
        << std::get<2>(key).to_string();
  }
}

TEST_P(PropertySweep, ExtractionNeverInventsLabels) {
  // Every (addr, label) pair in extracted LSPs exists verbatim in a trace.
  std::set<std::pair<net::Ipv4Addr, std::uint32_t>> in_traces;
  for (const auto& trace : snapshot.traces) {
    for (const auto& hop : trace.hops) {
      for (const auto& lse : hop.labels.entries()) {
        in_traces.insert({hop.addr, lse.label()});
      }
    }
  }
  const auto extracted = lpr::extract_lsps(snapshot, ip2as);
  for (const auto& obs : extracted.observations) {
    for (const auto& hop : obs.lsp.lsrs) {
      for (const auto label : hop.labels) {
        EXPECT_TRUE(in_traces.contains({hop.addr, label}));
      }
    }
  }
}

TEST_P(PropertySweep, FilterChainMonotone) {
  const auto extracted = lpr::extract_lsps(snapshot, ip2as);
  const auto filtered = lpr::apply_filters(extracted, {extracted},
                                           lpr::FilterConfig{});
  const auto& s = filtered.stats;
  EXPECT_LE(s.complete, s.observed);
  EXPECT_LE(s.after_intra_as, s.complete);
  EXPECT_LE(s.after_target_as, s.after_intra_as);
  EXPECT_LE(s.after_transit_diversity, s.after_target_as);
  EXPECT_LE(s.after_persistence, s.after_transit_diversity);
}

TEST_P(PropertySweep, ClassifiedIotpInvariants) {
  const auto extracted = lpr::extract_lsps(snapshot, ip2as);
  const auto filtered = lpr::apply_filters(extracted, {extracted},
                                           lpr::FilterConfig{});
  auto iotps = lpr::group_iotps(filtered.observations);
  lpr::classify_all(iotps);
  for (const auto& rec : iotps) {
    // Width/symmetry consistency.
    EXPECT_EQ(rec.width, static_cast<int>(rec.variants.size()));
    EXPECT_GE(rec.symmetry, 0);
    EXPECT_LE(rec.symmetry, rec.length);
    // Mono-LSP iff a single branch.
    EXPECT_EQ(rec.tunnel_class == lpr::TunnelClass::kMonoLsp,
              rec.width <= 1);
    // Parallel-links implies identical label sequences.
    if (rec.mono_fec_kind == lpr::MonoFecKind::kParallelLinks) {
      std::set<std::vector<std::uint32_t>> flat;
      for (const auto& lsp : rec.variants) {
        std::vector<std::uint32_t> seq;
        for (const auto& hop : lsp.lsrs) {
          seq.insert(seq.end(), hop.labels.begin(), hop.labels.end());
        }
        flat.insert(std::move(seq));
      }
      EXPECT_EQ(flat.size(), 1u);
    }
    // Multi-FEC requires a common IP with >= 2 labels.
    if (rec.tunnel_class == lpr::TunnelClass::kMultiFec) {
      bool witnessed = false;
      for (const auto addr : lpr::common_ips(rec)) {
        if (lpr::labels_at(rec, addr).size() > 1) witnessed = true;
      }
      EXPECT_TRUE(witnessed);
    }
    // All variants share the IOTP endpoints.
    for (const auto& lsp : rec.variants) {
      EXPECT_EQ(lsp.ingress, rec.key.ingress);
      EXPECT_EQ(lsp.egress, rec.key.egress);
      EXPECT_EQ(lsp.asn, rec.key.asn);
    }
  }
}

TEST_P(PropertySweep, TracesRespectAsPathOrder) {
  // Responding hops annotated with modelled ASes must appear in contiguous
  // AS segments (no interleaving A B A), matching valley-free forwarding.
  for (const auto& trace : snapshot.traces) {
    std::vector<std::uint32_t> as_sequence;
    for (const auto& hop : trace.hops) {
      if (hop.anonymous() || hop.asn == 0) continue;
      if (internet.modeled(hop.asn) == nullptr) continue;
      if (as_sequence.empty() || as_sequence.back() != hop.asn) {
        as_sequence.push_back(hop.asn);
      }
    }
    std::set<std::uint32_t> seen;
    for (const auto asn : as_sequence) {
      EXPECT_TRUE(seen.insert(asn).second)
          << "AS" << asn << " appears twice in one trace";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(1, 20151028, 424242));

}  // namespace
}  // namespace mum
