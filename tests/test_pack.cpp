// warts-lite v3 pack: round trips, checksums, fault taxonomy, v2 parity,
// and the SnapshotSource / MmapFile ingest stack built on top of it.
#include "dataset/pack.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "dataset/snapshot_source.h"
#include "dataset/warts_lite.h"
#include "run/runner.h"
#include "util/mmap_file.h"
#include "util/thread_pool.h"

namespace mum::dataset {
namespace {

namespace fs = std::filesystem;

net::Ipv4Addr ip(std::uint32_t v) { return net::Ipv4Addr(v); }

Snapshot sample_snapshot() {
  Snapshot snap;
  snap.cycle_id = 42;
  snap.sub_index = 1;
  snap.date = "2014-12";
  Trace t;
  t.monitor_id = 7;
  t.src = ip(0x01020304);
  t.dst = ip(0x05060708);
  t.reached = true;
  TraceHop plain;
  plain.addr = ip(0x0A000001);
  plain.rtt_ms = 1.25;
  t.hops.push_back(plain);
  t.hops.push_back(TraceHop{});  // anonymous hop
  TraceHop multi;
  multi.addr = ip(0x0A000002);
  multi.rtt_ms = 33.5;
  multi.labels.push(300123, 0, 1);
  multi.labels.push(17, 2, 255);
  t.hops.push_back(multi);
  snap.traces.push_back(t);
  Trace unreached;
  unreached.monitor_id = 8;
  unreached.src = ip(1);
  unreached.dst = ip(2);
  unreached.reached = false;  // zero hops
  snap.traces.push_back(unreached);
  return snap;
}

// Little-endian field surgery on serialized packs.
void write_le64(std::string& bytes, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint64_t read_le64(const std::string& bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{static_cast<unsigned char>(
             bytes[at + static_cast<std::size_t>(i)])}
         << (8 * i);
  }
  return v;
}

std::size_t entry_at(PackSection s) {
  return kPackHeaderBytes +
         static_cast<std::size_t>(s) * kPackSectionEntryBytes;
}

// After editing a section's payload, restamp its table checksum so only the
// fault under test fires.
void restamp_checksum(std::string& bytes, PackSection s) {
  const std::size_t at = entry_at(s);
  const auto off = static_cast<std::size_t>(read_le64(bytes, at + 8));
  const auto len = static_cast<std::size_t>(read_le64(bytes, at + 16));
  write_le64(bytes, at + 24,
             pack_checksum(std::string_view(bytes).substr(off, len)));
}

// --- checksum -----------------------------------------------------------

TEST(PackChecksum, DeterministicAndSensitive) {
  const std::string a(100, 'x');
  EXPECT_EQ(pack_checksum(a), pack_checksum(a));
  // Any single-byte change, in any lane position, changes the digest.
  for (std::size_t i = 0; i < a.size(); i += 7) {
    std::string b = a;
    b[i] ^= 0x01;
    EXPECT_NE(pack_checksum(b), pack_checksum(a)) << "byte " << i;
  }
  // Length is folded in: a zero byte appended is not a fixed point.
  EXPECT_NE(pack_checksum(a + std::string(1, '\0')), pack_checksum(a));
  EXPECT_NE(pack_checksum(""), pack_checksum(std::string(1, '\0')));
}

// --- round trips --------------------------------------------------------

TEST(Pack, RoundTripPreservesEverything) {
  const Snapshot snap = sample_snapshot();
  const std::string bytes = serialize_pack(snap);
  ASSERT_GE(bytes.size(), kPackHeaderBytes);
  EXPECT_EQ(bytes.substr(0, 4), "MUMP");
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[4]), kPackVersion);

  DecodeDiagnostics diag;
  const auto back = parse_pack(bytes, DecodeOptions{}, &diag);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(diag.clean());
  EXPECT_EQ(diag.records_decoded, 2u);
  EXPECT_EQ(back->cycle_id, snap.cycle_id);
  EXPECT_EQ(back->sub_index, snap.sub_index);
  EXPECT_EQ(back->date, snap.date);
  ASSERT_EQ(back->traces.size(), 2u);
  const Trace& t0 = back->traces[0];
  EXPECT_EQ(t0.monitor_id, 7u);
  EXPECT_EQ(t0.src, snap.traces[0].src);
  EXPECT_EQ(t0.dst, snap.traces[0].dst);
  EXPECT_TRUE(t0.reached);
  ASSERT_EQ(t0.hops.size(), 3u);
  EXPECT_NEAR(t0.hops[0].rtt_ms, 1.25, 1e-3);
  EXPECT_TRUE(t0.hops[1].anonymous());
  EXPECT_EQ(t0.hops[2].labels, snap.traces[0].hops[2].labels);
  EXPECT_FALSE(back->traces[1].reached);
  EXPECT_TRUE(back->traces[1].hops.empty());

  // Serialization is deterministic byte-for-byte.
  EXPECT_EQ(serialize_pack(*back), bytes);
}

TEST(Pack, EmptySnapshotRoundTrip) {
  Snapshot snap;
  snap.cycle_id = 3;
  snap.date = "2011-07";
  const auto back = parse_pack(serialize_pack(snap));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cycle_id, 3u);
  EXPECT_EQ(back->date, "2011-07");
  EXPECT_TRUE(back->traces.empty());
}

TEST(Pack, SectionsAreAligned) {
  const std::string bytes = serialize_pack(sample_snapshot());
  for (std::size_t s = 0; s < kPackSectionCount; ++s) {
    const std::size_t at = kPackHeaderBytes + s * kPackSectionEntryBytes;
    EXPECT_EQ(read_le64(bytes, at + 8) % kPackAlignment, 0u) << "section " << s;
  }
  EXPECT_EQ(read_le64(bytes, 24), bytes.size());  // header total_bytes
}

TEST(Pack, ViewExposesColumnsWithoutMaterializing) {
  const Snapshot snap = sample_snapshot();
  const std::string bytes = serialize_pack(snap);
  DecodeDiagnostics diag;
  const auto view = PackView::open(bytes, DecodeOptions{}, &diag);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->trace_count(), 2u);
  EXPECT_EQ(view->hop_count(), 3u);
  EXPECT_EQ(view->lse_count(), 2u);
  EXPECT_EQ(view->valid_count(), 2u);
  EXPECT_TRUE(view->trace_valid(0));
  EXPECT_FALSE(view->trace_valid(99));
  EXPECT_EQ(view->date(), "2014-12");
  EXPECT_EQ(view->trace(1).monitor_id, 8u);
}

// --- container faults ---------------------------------------------------

TEST(Pack, RejectsBadMagicAndVersion) {
  std::string bytes = serialize_pack(sample_snapshot());
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  DecodeDiagnostics diag;
  // Wrong magic is not recognizable even tolerantly.
  EXPECT_FALSE(
      parse_pack(wrong_magic, DecodeOptions{.tolerant = true}, &diag));
  EXPECT_EQ(diag.count(FaultClass::kBadMagic), 1u);

  std::string wrong_version = bytes;
  wrong_version[4] = 9;
  diag = {};
  EXPECT_FALSE(
      parse_pack(wrong_version, DecodeOptions{.tolerant = true}, &diag));
  EXPECT_EQ(diag.count(FaultClass::kBadVersion), 1u);
}

TEST(Pack, TruncationSweepIsBoundsSafe) {
  const std::string bytes = serialize_pack(sample_snapshot());
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    const std::string_view cut(bytes.data(), len);
    // Strict: any truncation (except the full buffer) is a hard fault.
    DecodeDiagnostics strict;
    const auto s = parse_pack(cut, DecodeOptions{}, &strict);
    if (len == bytes.size()) {
      EXPECT_TRUE(s.has_value());
    } else {
      EXPECT_FALSE(s.has_value()) << "len " << len;
      EXPECT_GT(strict.faults_total(), 0u) << "len " << len;
    }
    // Tolerant: never reads past `cut` (ASan tier), never returns more than
    // the original traces, and accepts once magic + version survive.
    DecodeDiagnostics tol;
    const auto t = parse_pack(cut, DecodeOptions{.tolerant = true}, &tol);
    if (len >= 5) {
      ASSERT_TRUE(t.has_value()) << "len " << len;
      EXPECT_LE(t->traces.size(), 2u);
    } else {
      EXPECT_FALSE(t.has_value());
    }
  }
}

TEST(Pack, ChecksumMismatchIsStrictFatalTolerantSurvivable) {
  std::string bytes = serialize_pack(sample_snapshot());
  // Flip one byte inside the hop-rtt payload (leaves structure intact).
  const std::size_t off = static_cast<std::size_t>(
      read_le64(bytes, entry_at(PackSection::kHopRtt) + 8));
  bytes[off] = static_cast<char>(static_cast<unsigned char>(bytes[off]) ^ 0x40);

  DecodeDiagnostics strict;
  EXPECT_FALSE(parse_pack(bytes, DecodeOptions{}, &strict));
  EXPECT_EQ(strict.count(FaultClass::kChecksumMismatch), 1u);

  DecodeDiagnostics tol;
  const auto salvaged = parse_pack(bytes, DecodeOptions{.tolerant = true}, &tol);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_EQ(tol.count(FaultClass::kChecksumMismatch), 1u);
  // The damaged column stays bounds-safe: all records still decode (with a
  // wrong rtt in one hop), nothing is lost structurally.
  EXPECT_EQ(salvaged->traces.size(), 2u);
}

TEST(Pack, BadOffsetColumnSkipsExactlyTheDamagedRecord) {
  std::string bytes = serialize_pack(sample_snapshot());
  // Make trace 0's hop range non-monotone (start beyond end), restamping the
  // section checksum so only the offset fault fires.
  const std::size_t off = static_cast<std::size_t>(
      read_le64(bytes, entry_at(PackSection::kTraceHopOffset) + 8));
  write_le64(bytes, off, 5);  // hop_off[0] = 5 > hop_off[1] = 3
  restamp_checksum(bytes, PackSection::kTraceHopOffset);

  DecodeDiagnostics strict;
  EXPECT_FALSE(parse_pack(bytes, DecodeOptions{}, &strict));
  EXPECT_GT(strict.count(FaultClass::kBadOffsetIndex), 0u);

  DecodeDiagnostics tol;
  const auto salvaged = parse_pack(bytes, DecodeOptions{.tolerant = true}, &tol);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_EQ(tol.count(FaultClass::kBadOffsetIndex), 1u);
  EXPECT_EQ(tol.records_skipped, 1u);
  EXPECT_EQ(tol.records_decoded, 1u);
  ASSERT_EQ(salvaged->traces.size(), 1u);
  EXPECT_EQ(salvaged->traces[0].monitor_id, 8u);  // the undamaged record
}

// --- v2 <-> v3 parity ---------------------------------------------------

TEST(Pack, ParityWithV2AcrossFormatsAndThreadCounts) {
  run::RunnerConfig config;
  config.gen.background_tier1 = 1;
  config.gen.background_transit = 6;
  config.gen.stub_ases = 8;
  config.gen.monitors = 4;
  config.gen.dests_per_monitor = 60;
  config.threads = 1;
  run::Runner runner(config);
  const dataset::MonthData month = runner.month_data(0);
  ASSERT_FALSE(month.snapshots.empty());

  // The same month through both containers...
  auto reingest = [&](bool pack) {
    dataset::MonthData out;
    out.cycle_id = month.cycle_id;
    out.date = month.date;
    for (const Snapshot& snap : month.snapshots) {
      const std::string bytes =
          pack ? serialize_pack(snap) : serialize_snapshot(snap);
      auto back = decode_snapshot(bytes);
      EXPECT_TRUE(back.has_value());
      runner.ip2as().annotate(back->traces);
      out.snapshots.push_back(std::move(*back));
    }
    return out;
  };
  const dataset::MonthData via_v2 = reingest(false);
  const dataset::MonthData via_v3 = reingest(true);

  // ...yields byte-identical LPR reports at any thread count.
  const lpr::CycleReport baseline =
      lpr::run_pipeline(via_v2, runner.ip2as(), {}, nullptr);
  ASSERT_GT(baseline.global.total(), 0u);
  const std::string want = baseline.to_json(true);
  EXPECT_EQ(lpr::run_pipeline(via_v3, runner.ip2as(), {}, nullptr)
                .to_json(true),
            want);
  for (const unsigned threads : {2u, 4u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(lpr::run_pipeline(via_v2, runner.ip2as(), {}, &pool)
                  .to_json(true),
              want);
    EXPECT_EQ(lpr::run_pipeline(via_v3, runner.ip2as(), {}, &pool)
                  .to_json(true),
              want);
  }
}

// --- MmapFile -----------------------------------------------------------

TEST(MmapFileTest, MapsReadsAndFallsBackGracefully) {
  const fs::path dir = fs::temp_directory_path() /
                       ("mum_pack_mmap_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  EXPECT_FALSE(util::MmapFile::open_ro((dir / "missing").string()));

  // Zero-length files yield a valid empty view (mmap of 0 bytes fails; the
  // fallback must cover it).
  std::ofstream(dir / "empty", std::ios::binary).flush();
  const auto empty = util::MmapFile::open_ro((dir / "empty").string());
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_NE(empty->data(), nullptr);

  const std::string payload = serialize_pack(sample_snapshot());
  std::ofstream(dir / "pack", std::ios::binary) << payload;
  auto mapped = util::MmapFile::open_ro((dir / "pack").string());
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->view(), payload);
  const auto moved = std::move(*mapped);
  EXPECT_EQ(moved.view(), payload);

  fs::remove_all(dir);
}

// --- SnapshotSource -----------------------------------------------------

TEST(SnapshotSourceTest, MemoryAndBytesSourcesDrain) {
  std::vector<Snapshot> snaps{sample_snapshot(), Snapshot{}};
  auto memory = make_memory_source(std::move(snaps));
  EXPECT_EQ(memory->next()->traces.size(), 2u);
  EXPECT_TRUE(memory->next().has_value());
  EXPECT_FALSE(memory->next().has_value());
  EXPECT_FALSE(memory->failed());

  // A bytes source decodes a mix of containers, sniffing each buffer.
  const Snapshot snap = sample_snapshot();
  auto bytes = make_bytes_source({serialize_snapshot(snap),
                                  serialize_pack(snap)});
  const auto via_v2 = bytes->next();
  const auto via_v3 = bytes->next();
  ASSERT_TRUE(via_v2.has_value());
  ASSERT_TRUE(via_v3.has_value());
  EXPECT_EQ(serialize_snapshot(*via_v2), serialize_snapshot(*via_v3));
  EXPECT_FALSE(bytes->next().has_value());
  EXPECT_FALSE(bytes->failed());

  auto bad = make_bytes_source({std::string("garbage")});
  EXPECT_FALSE(bad->next().has_value());
  EXPECT_TRUE(bad->failed());
  EXPECT_NE(bad->error().find("buffer 0"), std::string::npos);
}

TEST(SnapshotSourceTest, FileSourceStreamsMixedFormats) {
  const fs::path dir = fs::temp_directory_path() /
                       ("mum_pack_source_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  Snapshot a = sample_snapshot();
  Snapshot b = sample_snapshot();
  b.sub_index = 2;
  std::ofstream(dir / "a.mumw", std::ios::binary) << serialize_snapshot(a);
  std::ofstream(dir / "b.mump", std::ios::binary) << serialize_pack(b);
  const std::vector<std::string> paths{(dir / "a.mumw").string(),
                                       (dir / "b.mump").string()};

  // With and without a pool (prefetch overlap) the stream is identical.
  for (const bool pooled : {false, true}) {
    util::ThreadPool pool(2);
    auto source = make_file_source(paths, {}, pooled ? &pool : nullptr);
    const auto first = source->next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->sub_index, 1u);
    EXPECT_EQ(source->last_path(), paths[0]);
    const auto second = source->next();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->sub_index, 2u);
    EXPECT_EQ(source->last_path(), paths[1]);
    EXPECT_FALSE(source->next().has_value());
    EXPECT_FALSE(source->failed());
    EXPECT_TRUE(source->diagnostics().clean());
  }

  // Missing and undecodable files fail with the path in the error.
  auto missing = make_file_source({(dir / "nope.mumw").string()}, {}, nullptr);
  EXPECT_FALSE(missing->next().has_value());
  EXPECT_NE(missing->error().find("cannot read"), std::string::npos);
  std::ofstream(dir / "junk.mump", std::ios::binary) << "not a container";
  auto junk = make_file_source({(dir / "junk.mump").string()}, {}, nullptr);
  EXPECT_FALSE(junk->next().has_value());
  EXPECT_TRUE(junk->failed());
  EXPECT_NE(junk->error().find("junk.mump"), std::string::npos);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace mum::dataset
