// mum command-line tool — library half (unit-testable; `main.cpp` is a thin
// dispatcher). Subcommands operate on warts-lite snapshot files plus a
// pfx2as-style IP2AS table, the workflow a user with archived campaigns
// follows:
//
//   mum generate  --out DIR [--cycle N] [--seed S] [--snapshots K] [--small]
//   mum classify  --ip2as FILE SNAP [SNAP...]   [--j N] [--alias] [--csv]
//   mum trees     --ip2as FILE SNAP [SNAP...]
//   mum stats     SNAP [SNAP...]
//   mum campaign  [--cycles N] [--chaos SPEC] [--keep-going] [--resume DIR]
//                 [--telemetry[=FILE]] [--trace-out FILE]
//                 [--quiet | --verbose]
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace mum::cli {

// Process exit codes, uniform across subcommands:
//   0 — success (for `campaign`: every cycle computed or restored)
//   1 — usage error (unknown command/flag, malformed or missing argument)
//   2 — partial run: failures were contained, results are incomplete
//   3 — fatal: I/O failure or unreadable/undecodable input data
//   4 — degraded-complete: the report is complete and correct, but an
//       operational promise broke (checkpoint persistence dropped under
//       ENOSPC, checkpoint writes failed, or corrupt state was quarantined)
//   5 — aborted: the failure policy stopped the run early (fail-fast or
//       exhausted failure budget); skipped cycles were never attempted
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 1;
inline constexpr int kExitPartial = 2;
inline constexpr int kExitFatal = 3;
inline constexpr int kExitDegraded = 4;
inline constexpr int kExitAborted = 5;

// Minimal flag parser: "--name value", "--flag", positionals.
class Args {
 public:
  Args(int argc, const char* const* argv);
  explicit Args(std::vector<std::string> tokens);

  // Value flag; nullopt when absent. Consumes the flag.
  std::optional<std::string> take_value(const std::string& name);
  // Boolean flag; false when absent. Consumes the flag.
  bool take_flag(const std::string& name);
  // Flag with an optional inline value: "--name" or "--name=value".
  // Outer nullopt when absent; inner nullopt when given bare.
  std::optional<std::optional<std::string>> take_eq_flag(
      const std::string& name);
  // Integer value flag with default; sets `error` on malformed input.
  long take_int(const std::string& name, long def);

  // Remaining positional arguments (call after all take_* calls).
  std::vector<std::string> positionals() const;
  // First unconsumed "--" token, if any (unknown-flag detection).
  std::optional<std::string> unknown_flag() const;

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }

 private:
  std::vector<std::string> tokens_;
  std::vector<bool> consumed_;
  std::string error_;
};

// Subcommands: return a process exit code; all output through out/err.
int run_generate(Args& args, std::ostream& out, std::ostream& err);
int run_classify(Args& args, std::ostream& out, std::ostream& err);
int run_trees(Args& args, std::ostream& out, std::ostream& err);
int run_stats(Args& args, std::ostream& out, std::ostream& err);
int run_campaign(Args& args, std::ostream& out, std::ostream& err);

// Top-level dispatch (what main() calls).
int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

// Usage text.
std::string usage();

}  // namespace mum::cli
