#include "cli.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "chaos/chaos.h"
#include "core/alias.h"
#include "core/report.h"
#include "core/tree.h"
#include "dataset/pack.h"
#include "dataset/snapshot_source.h"
#include "dataset/warts_lite.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "obs/log.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "run/runner.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace mum::cli {

namespace fs = std::filesystem;

// ----------------------------------------------------------------------
// Args
// ----------------------------------------------------------------------

Args::Args(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) tokens_.emplace_back(argv[i]);
  consumed_.assign(tokens_.size(), false);
}

Args::Args(std::vector<std::string> tokens) : tokens_(std::move(tokens)) {
  consumed_.assign(tokens_.size(), false);
}

std::optional<std::string> Args::take_value(const std::string& name) {
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (consumed_[i] || tokens_[i] != name) continue;
    if (i + 1 >= tokens_.size() || consumed_[i + 1]) {
      error_ = name + " requires a value";
      return std::nullopt;
    }
    consumed_[i] = consumed_[i + 1] = true;
    return tokens_[i + 1];
  }
  return std::nullopt;
}

bool Args::take_flag(const std::string& name) {
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (!consumed_[i] && tokens_[i] == name) {
      consumed_[i] = true;
      return true;
    }
  }
  return false;
}

std::optional<std::optional<std::string>> Args::take_eq_flag(
    const std::string& name) {
  const std::string prefix = name + "=";
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (consumed_[i]) continue;
    if (tokens_[i] == name) {
      consumed_[i] = true;
      return std::optional<std::string>{};  // bare flag, no value
    }
    if (util::starts_with(tokens_[i], prefix)) {
      consumed_[i] = true;
      std::string value = tokens_[i].substr(prefix.size());
      if (value.empty()) return std::optional<std::string>{};
      return std::optional<std::string>(std::move(value));
    }
  }
  return std::nullopt;
}

long Args::take_int(const std::string& name, long def) {
  const auto value = take_value(name);
  if (!value) return def;
  const auto parsed = util::parse_u64(*value);
  if (!parsed) {
    error_ = name + " expects an integer, got '" + *value + "'";
    return def;
  }
  return static_cast<long>(*parsed);
}

std::vector<std::string> Args::positionals() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (!consumed_[i] && !util::starts_with(tokens_[i], "--")) {
      out.push_back(tokens_[i]);
    }
  }
  return out;
}

std::optional<std::string> Args::unknown_flag() const {
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (!consumed_[i] && util::starts_with(tokens_[i], "--")) {
      return tokens_[i];
    }
  }
  return std::nullopt;
}

// ----------------------------------------------------------------------
// shared helpers
// ----------------------------------------------------------------------

namespace {

// --format v2|v3: container format for files this command writes.
std::optional<std::uint8_t> parse_format(const std::string& text) {
  if (text == "v2" || text == "2") return dataset::kWartsLiteVersion;
  if (text == "v3" || text == "3") return dataset::kPackVersion;
  return std::nullopt;
}

// --scale routers=N[,lsps=M]: world-size targets; k/m suffixes accepted
// (routers=100k, lsps=1m). Returns false + error message on bad input.
bool parse_scale_spec(const std::string& text, gen::GenConfig& gen,
                      std::string* error) {
  for (const std::string_view part : util::split(text, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string_view::npos) {
      *error = "--scale expects key=value pairs, got '" + std::string(part) +
               "'";
      return false;
    }
    const std::string key(part.substr(0, eq));
    std::string value(part.substr(eq + 1));
    std::uint64_t mult = 1;
    if (!value.empty() && (value.back() == 'k' || value.back() == 'K')) {
      mult = 1000;
      value.pop_back();
    } else if (!value.empty() && (value.back() == 'm' || value.back() == 'M')) {
      mult = 1000000;
      value.pop_back();
    }
    const auto parsed = util::parse_u64(value);
    if (!parsed) {
      *error = "--scale " + key + " expects an integer, got '" +
               std::string(part.substr(eq + 1)) + "'";
      return false;
    }
    if (key == "routers") {
      gen.scale_routers = *parsed * mult;
    } else if (key == "lsps") {
      gen.scale_lsps = *parsed * mult;
    } else {
      *error = "--scale knows routers=/lsps=, got '" + key + "'";
      return false;
    }
  }
  return true;
}

// --churn link=P,metric=P,router=P,resignal=P: per-cycle delta
// probabilities (plain decimals, e.g. link=0.02).
bool parse_churn_spec(const std::string& text, gen::GenConfig& gen,
                      std::string* error) {
  for (const std::string_view part : util::split(text, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string_view::npos) {
      *error = "--churn expects key=value pairs, got '" + std::string(part) +
               "'";
      return false;
    }
    const std::string key(part.substr(0, eq));
    const std::string value(part.substr(eq + 1));
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      *error = "--churn " + key + " expects a probability in [0,1], got '" +
               value + "'";
      return false;
    }
    if (key == "link") {
      gen.churn.link_down_prob = p;
    } else if (key == "metric") {
      gen.churn.metric_change_prob = p;
    } else if (key == "router") {
      gen.churn.router_down_prob = p;
    } else if (key == "resignal") {
      gen.churn.te_resignal_prob = p;
    } else {
      *error = "--churn knows link=/metric=/router=/resignal=, got '" + key +
               "'";
      return false;
    }
  }
  return true;
}

std::optional<dataset::Ip2As> load_ip2as(const std::string& path,
                                         std::ostream& err) {
  std::ifstream is(path);
  if (!is) {
    err << "cannot open " << path << '\n';
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  auto table = dataset::ip2as_from_text(buffer.str());
  if (!table) err << path << ": malformed ip2as table\n";
  return table;
}

// Load + annotate the snapshots named on the command line. The first file
// is the cycle; the rest feed the Persistence filter.
struct LoadedData {
  dataset::Ip2As ip2as;
  std::vector<dataset::Snapshot> snapshots;
  // What the decoder skipped across all files (clean in strict mode).
  dataset::DecodeDiagnostics decode;
};

struct LoadResult {
  std::optional<LoadedData> data;
  int fail_code = kExitFatal;  // meaningful only when !data
};

// Consumes --tolerant/--strict along with the input flags. Strict (the
// default) aborts on the first malformed record; tolerant skips and counts.
// Files stream through a dataset::SnapshotSource, so both container
// formats (and mixes of them) load through one path, with shard N+1
// prefetched while shard N decodes when a pool is supplied.
LoadResult load_inputs(Args& args, std::ostream& err, bool need_ip2as,
                       util::ThreadPool* pool = nullptr) {
  const bool tolerant = args.take_flag("--tolerant");
  const bool strict = args.take_flag("--strict");
  if (tolerant && strict) {
    err << "--tolerant and --strict are mutually exclusive\n";
    return {std::nullopt, kExitUsage};
  }

  LoadedData data;
  if (need_ip2as) {
    const auto ip2as_path = args.take_value("--ip2as");
    if (!ip2as_path) {
      err << "--ip2as FILE is required\n";
      return {std::nullopt, kExitUsage};
    }
    auto table = load_ip2as(*ip2as_path, err);
    if (!table) return {std::nullopt, kExitFatal};
    data.ip2as = std::move(*table);
  }
  const auto files = args.positionals();
  if (files.empty()) {
    err << "no snapshot files given\n";
    return {std::nullopt, kExitUsage};
  }
  const auto source = dataset::make_file_source(
      files, dataset::DecodeOptions{.tolerant = tolerant}, pool);
  while (auto snap = source->next()) {
    const dataset::DecodeDiagnostics& diag = source->last_diagnostics();
    if (!diag.clean()) {
      err << source->last_path() << ": salvaged " << diag.records_decoded
          << " records, skipped " << diag.records_skipped << " ("
          << diag.faults_total() << " faults)\n";
    }
    data.ip2as.annotate(snap->traces);
    data.snapshots.push_back(std::move(*snap));
  }
  if (source->failed()) {
    err << source->error();
    const dataset::DecodeDiagnostics& diag = source->last_diagnostics();
    if (!diag.samples.empty()) {
      const dataset::DecodeFault& first = diag.samples.front();
      err << " (" << dataset::to_cstring(first.fault) << " at offset "
          << first.offset << ": " << first.detail << ")";
    }
    err << '\n';
    return {std::nullopt, kExitFatal};
  }
  data.decode = source->diagnostics();
  return {std::move(data), kExitOk};
}

// Unknown flags are a usage error for every subcommand (they used to be
// warned about and silently ignored). Each subcommand calls this once all
// its known flags have been consumed.
bool reject_unknown(const Args& args, std::ostream& err) {
  if (const auto unknown = args.unknown_flag()) {
    err << "error: unknown flag " << *unknown << '\n';
    return true;
  }
  return false;
}

// --threads N: 0 (default) = one per hardware thread, 1 = serial. Output is
// identical at any thread count (the generation/classification layers merge
// per-worker results deterministically).
util::ThreadPool make_pool(Args& args) {
  const long threads = args.take_int("--threads", 0);
  return util::ThreadPool(threads <= 0 ? 0
                                       : static_cast<unsigned>(threads));
}

// Route the engine's obs::log output into this invocation's err stream at
// the requested level; restore the process defaults on scope exit (tests
// call cli::run repeatedly against short-lived ostringstreams).
class ScopedLogConfig {
 public:
  ScopedLogConfig(std::ostream* sink, obs::LogLevel level) {
    obs::set_log_sink(sink);
    obs::set_log_level(level);
  }
  ~ScopedLogConfig() {
    obs::set_log_sink(&std::cerr);
    obs::set_log_level(obs::LogLevel::kInfo);
  }
};

// Install a JSONL trace sink process-wide; uninstall before the log's own
// destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::unique_ptr<obs::TraceLog> log)
      : log_(std::move(log)) {
    if (log_) obs::set_trace(log_.get());
  }
  ~ScopedTrace() {
    if (log_) obs::set_trace(nullptr);
  }

 private:
  std::unique_ptr<obs::TraceLog> log_;
};

}  // namespace

// ----------------------------------------------------------------------
// generate
// ----------------------------------------------------------------------

int run_generate(Args& args, std::ostream& out, std::ostream& err) {
  const auto out_dir = args.take_value("--out");
  const long cycle = args.take_int("--cycle", 60);
  const long seed = args.take_int("--seed", 20151028);
  const long snapshots = args.take_int("--snapshots", 3);
  const bool small = args.take_flag("--small");
  const auto format_spec = args.take_value("--format");
  util::ThreadPool pool = make_pool(args);
  if (!args.ok()) {
    err << args.error() << '\n';
    return kExitUsage;
  }
  if (reject_unknown(args, err)) return kExitUsage;
  if (!out_dir) {
    err << "--out DIR is required\n";
    return kExitUsage;
  }
  if (cycle < 1 || cycle > gen::kCycles) {
    err << "--cycle must be in [1, " << gen::kCycles << "]\n";
    return kExitUsage;
  }
  std::uint8_t format = dataset::kWartsLiteVersion;
  if (format_spec) {
    const auto parsed = parse_format(*format_spec);
    if (!parsed) {
      err << "--format must be v2 or v3, got '" << *format_spec << "'\n";
      return kExitUsage;
    }
    format = *parsed;
  }

  gen::GenConfig config;
  config.seed = static_cast<std::uint64_t>(seed);
  if (small) {
    config.background_transit = 8;
    config.stub_ases = 12;
    config.monitors = 6;
    config.dests_per_monitor = 150;
  }
  gen::Internet internet(config);
  const auto ip2as = internet.build_ip2as();

  gen::CampaignConfig campaign;
  campaign.extra_snapshots = static_cast<int>(snapshots) - 1;
  const auto month = gen::CampaignRunner(internet, ip2as, campaign, &pool)
                         .month(static_cast<int>(cycle) - 1);

  fs::create_directories(*out_dir);
  for (const auto& snap : month.snapshots) {
    const fs::path file =
        fs::path(*out_dir) /
        ("cycle" + std::to_string(snap.cycle_id + 1) + "_s" +
         std::to_string(snap.sub_index) +
         (format >= dataset::kPackVersion ? ".mump" : ".mumw"));
    std::ofstream os(file, std::ios::binary);
    if (!os) {
      err << "cannot write " << file << '\n';
      return kExitFatal;
    }
    const std::string bytes = format >= dataset::kPackVersion
                                  ? dataset::serialize_pack(snap)
                                  : dataset::serialize_snapshot(snap);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "wrote " << file.string() << " (" << snap.trace_count()
        << " traces)\n";
  }
  const fs::path table_file = fs::path(*out_dir) / "ip2as.txt";
  std::ofstream ts(table_file);
  ts << dataset::to_table_text(ip2as);
  out << "wrote " << table_file.string() << " (" << ip2as.prefix_count()
      << " prefixes)\n";
  return kExitOk;
}

// ----------------------------------------------------------------------
// classify
// ----------------------------------------------------------------------

int run_classify(Args& args, std::ostream& out, std::ostream& err) {
  const long j = args.take_int("--j", 2);
  const bool alias = args.take_flag("--alias");
  const bool router_level = args.take_flag("--router-level");
  const bool csv = args.take_flag("--csv");
  const bool json = args.take_flag("--json");
  const bool json_iotps = args.take_flag("--json-iotps");
  util::ThreadPool pool = make_pool(args);
  auto loaded = load_inputs(args, err, /*need_ip2as=*/true, &pool);
  if (!args.ok()) {
    err << args.error() << '\n';
    return kExitUsage;
  }
  if (reject_unknown(args, err)) return kExitUsage;
  if (!loaded.data) return loaded.fail_code;
  LoadedData& data = *loaded.data;

  dataset::MonthData month;
  month.cycle_id = data.snapshots.front().cycle_id;
  month.date = data.snapshots.front().date;
  month.snapshots = std::move(data.snapshots);

  lpr::PipelineConfig pipeline;
  pipeline.filter.persistence_j = static_cast<int>(j);
  pipeline.filter.enable_persistence = j > 0 && month.snapshots.size() > 1;
  pipeline.classify.alias_resolution_heuristic = alias;
  lpr::CycleReport report =
      lpr::run_pipeline(month, data.ip2as, pipeline, &pool);
  report.decode = std::move(data.decode);

  if (router_level) {
    // Re-group at router granularity (Sec.-5 extension): passive alias
    // inference over the cycle data, endpoints canonicalized, classes
    // recomputed.
    const auto extracted =
        lpr::extract_lsps(month.cycle(), data.ip2as);
    std::vector<lpr::ExtractedSnapshot> following;
    for (std::size_t i = 1; i < month.snapshots.size(); ++i) {
      following.push_back(
          lpr::extract_lsps(month.snapshots[i], data.ip2as));
    }
    const auto filtered =
        lpr::apply_filters(extracted, following, pipeline.filter);
    const lpr::LabelAliasResolver resolver(filtered.observations,
                                           month.cycle().traces);
    auto iotps = lpr::group_iotps(
        lpr::to_router_level(filtered.observations, resolver));
    report.global = lpr::classify_all(iotps, pipeline.classify);
    report.per_as.clear();
    for (const auto& rec : iotps) report.per_as[rec.key.asn].add(rec);
    report.iotps = std::move(iotps);
    if (!csv) {
      out << "(router-level IOTPs: " << resolver.alias_sets().size()
          << " alias sets inferred)\n";
    }
  }

  if (json || json_iotps) {
    out << report.to_json(json_iotps) << '\n';
    return kExitOk;
  }

  if (csv) {
    lpr::write_class_table(out, report.global, /*csv=*/true);
  } else {
    report.to_table(out);
  }
  return kExitOk;
}

// ----------------------------------------------------------------------
// trees
// ----------------------------------------------------------------------

int run_trees(Args& args, std::ostream& out, std::ostream& err) {
  auto loaded = load_inputs(args, err, /*need_ip2as=*/true);
  if (reject_unknown(args, err)) return kExitUsage;
  if (!loaded.data) return loaded.fail_code;
  LoadedData& data = *loaded.data;

  // Same filtering as classify, without Persistence when only one file.
  dataset::MonthData month;
  month.snapshots = std::move(data.snapshots);
  const auto extracted =
      lpr::extract_lsps(month.snapshots.front(), data.ip2as);
  std::vector<lpr::ExtractedSnapshot> following;
  for (std::size_t i = 1; i < month.snapshots.size(); ++i) {
    following.push_back(lpr::extract_lsps(month.snapshots[i], data.ip2as));
  }
  lpr::FilterConfig filter;
  filter.enable_persistence = !following.empty();
  const auto filtered = lpr::apply_filters(extracted, following, filter);

  const auto trees = lpr::build_egress_trees(filtered.observations);
  const auto stats = lpr::summarize(trees);
  out << stats.trees << " egress-rooted trees over " << stats.branches_total
      << " branches\n";
  util::TextTable table({"tree class", "count"});
  table.add_row({"Single-Branch", util::TextTable::fmt_int(
                                      static_cast<std::int64_t>(
                                          stats.single_branch))});
  table.add_row({"LDP-Consistent", util::TextTable::fmt_int(
                                       static_cast<std::int64_t>(
                                           stats.ldp_consistent))});
  table.add_row({"Multi-FEC", util::TextTable::fmt_int(
                                  static_cast<std::int64_t>(
                                      stats.multi_fec))});
  out << table;
  return kExitOk;
}

// ----------------------------------------------------------------------
// stats
// ----------------------------------------------------------------------

int run_stats(Args& args, std::ostream& out, std::ostream& err) {
  auto loaded = load_inputs(args, err, /*need_ip2as=*/false);
  if (reject_unknown(args, err)) return kExitUsage;
  if (!loaded.data) return loaded.fail_code;
  LoadedData& data = *loaded.data;

  util::TextTable table({"snapshot", "traces", "w/ tunnel", "share",
                         "LSPs", "incomplete"});
  auto add_row = [&](const std::string& label, const lpr::ExtractStats& s) {
    table.add_row(
        {label,
         util::TextTable::fmt_int(static_cast<std::int64_t>(s.traces_total)),
         util::TextTable::fmt_int(static_cast<std::int64_t>(
             s.traces_with_explicit_tunnel)),
         s.traces_total
             ? util::TextTable::fmt(
                   static_cast<double>(s.traces_with_explicit_tunnel) /
                       static_cast<double>(s.traces_total),
                   3)
             : "-",
         util::TextTable::fmt_int(static_cast<std::int64_t>(
             s.lsps_observed)),
         util::TextTable::fmt_int(static_cast<std::int64_t>(
             s.lsps_incomplete))});
  };
  lpr::ExtractStats total;
  for (const auto& snap : data.snapshots) {
    dataset::Ip2As empty;
    const auto extracted = lpr::extract_lsps(snap, empty);
    add_row(snap.date + "#" + std::to_string(snap.sub_index),
            extracted.stats);
    total.merge(extracted.stats);
  }
  if (data.snapshots.size() > 1) add_row("total", total);
  out << table;
  return kExitOk;
}

// ----------------------------------------------------------------------
// campaign
// ----------------------------------------------------------------------

int run_campaign(Args& args, std::ostream& out, std::ostream& err) {
  const long cycles = args.take_int("--cycles", 12);
  const long seed = args.take_int("--seed", 20151028);
  const long threads = args.take_int("--threads", 0);
  const long failure_budget = args.take_int("--failure-budget", -1);
  const long retry = args.take_int("--retry", 0);
  const long cycle_deadline = args.take_int("--cycle-deadline", 0);
  const bool small = args.take_flag("--small");
  const bool keep_going = args.take_flag("--keep-going");
  const bool json = args.take_flag("--json");
  const bool quiet = args.take_flag("--quiet");
  const bool verbose = args.take_flag("--verbose");
  const bool checkpoint_data = args.take_flag("--checkpoint-data");
  const auto chaos_spec = args.take_value("--chaos");
  const auto checkpoint_dir = args.take_value("--checkpoints");
  const auto resume_dir = args.take_value("--resume");
  const auto format_spec = args.take_value("--format");
  const auto telemetry = args.take_eq_flag("--telemetry");
  const auto trace_out = args.take_value("--trace-out");
  const auto evolve_spec = args.take_value("--evolve");
  const auto scale_spec = args.take_value("--scale");
  const auto churn_spec = args.take_value("--churn");
  if (!args.ok()) {
    err << args.error() << '\n';
    return kExitUsage;
  }
  if (reject_unknown(args, err)) return kExitUsage;
  if (quiet && verbose) {
    err << "--quiet and --verbose are mutually exclusive\n";
    return kExitUsage;
  }
  if (cycles < 1 || cycles > gen::kCycles) {
    err << "--cycles must be in [1, " << gen::kCycles << "]\n";
    return kExitUsage;
  }
  if (checkpoint_dir && resume_dir && *checkpoint_dir != *resume_dir) {
    err << "--checkpoints and --resume name different directories\n";
    return kExitUsage;
  }
  if (retry < 0) {
    err << "--retry must be >= 0\n";
    return kExitUsage;
  }
  if (cycle_deadline < 0) {
    err << "--cycle-deadline must be >= 0 (milliseconds, 0 = none)\n";
    return kExitUsage;
  }

  run::RunnerConfig config;
  config.gen.seed = static_cast<std::uint64_t>(seed);
  if (evolve_spec) {
    if (*evolve_spec == "on") {
      config.evolve = true;
    } else if (*evolve_spec == "off") {
      config.evolve = false;
    } else {
      err << "--evolve must be on or off, got '" << *evolve_spec << "'\n";
      return kExitUsage;
    }
  }
  if (scale_spec) {
    std::string error;
    if (!parse_scale_spec(*scale_spec, config.gen, &error)) {
      err << error << '\n';
      return kExitUsage;
    }
  }
  if (churn_spec) {
    std::string error;
    if (!parse_churn_spec(*churn_spec, config.gen, &error)) {
      err << error << '\n';
      return kExitUsage;
    }
  }
  if (small) {
    config.gen.background_transit = 8;
    config.gen.stub_ases = 12;
    config.gen.monitors = 6;
    config.gen.dests_per_monitor = 150;
  }
  config.first_cycle = 0;
  config.last_cycle = static_cast<int>(cycles) - 1;
  config.threads = static_cast<int>(threads);
  config.keep_going = keep_going;
  config.failure_budget = static_cast<int>(failure_budget);
  config.retries = static_cast<int>(retry);
  config.cycle_deadline_ms = static_cast<std::uint32_t>(cycle_deadline);
  if (resume_dir) {
    config.checkpoint_dir = *resume_dir;
    config.resume = true;
  } else if (checkpoint_dir) {
    config.checkpoint_dir = *checkpoint_dir;
  }
  config.checkpoint_data = checkpoint_data;
  if (checkpoint_data && config.checkpoint_dir.empty()) {
    err << "--checkpoint-data requires --checkpoints or --resume\n";
    return kExitUsage;
  }
  if (format_spec) {
    const auto parsed = parse_format(*format_spec);
    if (!parsed) {
      err << "--format must be v2 or v3, got '" << *format_spec << "'\n";
      return kExitUsage;
    }
    config.snapshot_format = *parsed;
  }
  if (chaos_spec) {
    std::string error;
    const auto chaos = chaos::parse_chaos_spec(*chaos_spec, &error);
    if (!chaos) {
      err << error << '\n';
      return kExitUsage;
    }
    config.chaos = *chaos;
  }

  // Telemetry is observed state only: the registry, trace and log sinks
  // never feed back into the pipeline, so reports stay byte-identical with
  // any combination of these flags.
  const ScopedLogConfig log_config(
      quiet ? nullptr : &err,
      verbose ? obs::LogLevel::kDebug : obs::LogLevel::kInfo);
  std::unique_ptr<obs::TraceLog> trace_log;
  if (trace_out) {
    trace_log = obs::TraceLog::open(*trace_out);
    if (!trace_log) {
      err << "cannot write " << *trace_out << '\n';
      return kExitFatal;
    }
  }
  const ScopedTrace trace_scope(std::move(trace_log));
  // Fresh counters: the dump below covers this campaign alone, even when
  // several invocations share the process (tests drive cli::run directly).
  obs::registry().reset();

  run::RunOutcome outcome;
  try {
    const run::Runner runner(config);
    outcome = runner.run_all_contained();
  } catch (const std::exception& e) {
    err << "fatal: " << e.what() << '\n';
    return kExitFatal;
  }

  if (json) {
    out << "{\"report\":" << outcome.report.to_json()
        << ",\"manifest\":" << outcome.manifest.to_json() << "}\n";
  } else {
    outcome.report.to_table(out);
  }
  if (!config.checkpoint_dir.empty()) {
    const fs::path manifest_file =
        fs::path(config.checkpoint_dir) / "manifest.json";
    std::ofstream ms(manifest_file);
    ms << outcome.manifest.to_json() << '\n';
  }
  if (telemetry) {
    // Registry snapshot at end of run: to the named file, or to the err
    // stream when the flag is bare (stdout stays machine-parsed report).
    const std::string snapshot = obs::registry().to_json();
    if (*telemetry) {
      std::ofstream ts(**telemetry);
      if (!ts) {
        err << "cannot write " << **telemetry << '\n';
        return kExitFatal;
      }
      ts << snapshot << '\n';
    } else {
      err << snapshot << '\n';
    }
  }

  const run::RunManifest& manifest = outcome.manifest;
  if (!quiet) {
    err << "cycles: " << manifest.count(run::CycleOutcome::kOk) << " ok, "
        << manifest.count(run::CycleOutcome::kFromCheckpoint)
        << " from checkpoint, ";
    if (const auto from_data = manifest.count(run::CycleOutcome::kFromData)) {
      err << from_data << " from data, ";
    }
    err << manifest.count(run::CycleOutcome::kFailed) << " failed, "
        << manifest.count(run::CycleOutcome::kSkipped) << " skipped";
    if (const auto timed_out = manifest.count(run::CycleOutcome::kTimedOut)) {
      err << ", " << timed_out << " timed out";
    }
    if (const auto retries = manifest.retries_total()) {
      err << "; " << retries << " retries";
    }
    const std::uint64_t injected = manifest.chaos_total().total();
    if (injected > 0) err << "; " << injected << " chaos faults injected";
    if (manifest.io.total_injected() > 0) {
      err << "; " << manifest.io.total_injected() << "/" << manifest.io.ops
          << " io ops faulted";
    }
    if (manifest.degraded()) {
      err << "; degraded";
      if (!manifest.degraded_reason.empty()) {
        err << " (" << manifest.degraded_reason << ")";
      }
    }
    err << '\n';
  }
  // Exit mapping: the report's completeness first, then operational health.
  // A degraded-complete run (4) produced every report byte; an aborted run
  // (5) never attempted some cycles; a partial run (2) attempted everything
  // but contained failures.
  if (manifest.complete()) {
    return manifest.degraded() ? kExitDegraded : kExitOk;
  }
  return manifest.count(run::CycleOutcome::kSkipped) > 0 ? kExitAborted
                                                         : kExitPartial;
}

// ----------------------------------------------------------------------
// dispatch
// ----------------------------------------------------------------------

std::string usage() {
  return
      "mum — MPLS tunnel classification (LPR) toolkit\n"
      "\n"
      "usage: mum <command> [options]\n"
      "\n"
      "commands:\n"
      "  generate  --out DIR [--cycle N] [--seed S] [--snapshots K]\n"
      "            [--small] [--format v2|v3] [--threads N]\n"
      "                           synthesize an Archipelago-style month\n"
      "  classify  --ip2as FILE SNAP [SNAP...] [--j N] [--alias]\n"
      "            [--router-level] [--csv] [--json | --json-iotps]\n"
      "            [--tolerant | --strict] [--threads N]\n"
      "                           run LPR (filters + Algorithm 1)\n"
      "  trees     --ip2as FILE SNAP [SNAP...] [--tolerant | --strict]\n"
      "                           egress-rooted LSP-tree analysis (Sec. 5)\n"
      "  stats     SNAP [SNAP...] [--tolerant | --strict]\n"
      "                           dataset-level statistics\n"
      "  campaign  [--cycles N] [--seed S] [--small] [--threads N]\n"
      "            [--evolve on|off] [--scale routers=N[,lsps=M]]\n"
      "            [--churn link=P,metric=P,router=P,resignal=P]\n"
      "            [--chaos SPEC] [--keep-going] [--failure-budget N]\n"
      "            [--retry N] [--cycle-deadline MS]\n"
      "            [--checkpoints DIR] [--resume DIR] [--checkpoint-data]\n"
      "            [--format v2|v3] [--json] [--quiet | --verbose]\n"
      "            [--telemetry[=FILE]] [--trace-out FILE]\n"
      "                           end-to-end campaign with containment\n"
      "\n"
      "--strict (the default) aborts on the first malformed record;\n"
      "--tolerant skips malformed records and reports what was dropped.\n"
      "--format picks the container written to disk: v2 is the varint\n"
      "stream (interchange default), v3 the mmap-able columnar pack.\n"
      "Readers sniff the magic, so any command reads either format.\n"
      "--chaos takes fault=rate pairs, e.g. 'all=2%' or\n"
      "'flip=0.01,blackout=5%,fail=0.1,seed=7'. io.* keys inject faults\n"
      "into the I/O layer itself (checkpoint/shard reads and writes):\n"
      "io.eio, io.enospc, io.shortwrite, io.torn, io.stalerename, io.slow\n"
      "(or io.all=RATE for all six), io.slow_ms=N sizes the stall, and\n"
      "io.kill_at=K + io.kill_mode=kill|dead crash or deaden the process\n"
      "at the K-th I/O op (crash-recovery torture). --retry N re-runs a\n"
      "failed cycle up to N times (fresh io fault draws per attempt; report\n"
      "bytes never depend on attempts); --cycle-deadline MS abandons a\n"
      "cycle as timed_out at a cooperative deadline. Corrupt checkpoints\n"
      "and shards are moved to <dir>/quarantine/, never deleted.\n"
      "--threads 0 (the default) uses one thread per hardware thread; any\n"
      "value produces identical output (deterministic parallelism).\n"
      "--evolve on (the default) advances one standing world cycle to cycle\n"
      "(delta evolution); off rebuilds each cycle from scratch. Reports are\n"
      "byte-identical either way. --scale sizes the world (k/m suffixes:\n"
      "routers=100k,lsps=1m); --churn adds per-cycle topology/label deltas\n"
      "as probabilities (e.g. link=0.02,resignal=0.1).\n"
      "--quiet silences progress, --verbose adds per-cycle detail (both on\n"
      "stderr). --telemetry dumps the metrics registry at end of run (to\n"
      "stderr, or FILE with =FILE); --trace-out writes a JSONL event log.\n"
      "Neither changes a report byte.\n"
      "\n"
      "exit codes: 0 success, 1 usage error, 2 partial run (contained\n"
      "failures), 3 fatal (I/O or undecodable input), 4 degraded-complete\n"
      "(report complete; persistence degraded or state quarantined),\n"
      "5 aborted (failure policy stopped the run; cycles were skipped).\n";
}

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  if (argc < 2) {
    err << usage();
    return kExitUsage;
  }
  const std::string command = argv[1];
  Args args(argc - 2, argv + 2);

  int code;
  if (command == "generate") {
    code = run_generate(args, out, err);
  } else if (command == "classify") {
    code = run_classify(args, out, err);
  } else if (command == "trees") {
    code = run_trees(args, out, err);
  } else if (command == "stats") {
    code = run_stats(args, out, err);
  } else if (command == "campaign") {
    code = run_campaign(args, out, err);
  } else if (command == "--help" || command == "help") {
    out << usage();
    return kExitOk;
  } else {
    err << "unknown command '" << command << "'\n" << usage();
    return kExitUsage;
  }
  return code;
}

}  // namespace mum::cli
