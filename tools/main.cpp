// mum CLI entry point (see cli.h for the command set).
#include <iostream>

#include "cli.h"

int main(int argc, char** argv) {
  return mum::cli::run(argc, argv, std::cout, std::cerr);
}
