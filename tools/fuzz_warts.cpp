// Fuzz entry point for the warts-lite decoders (v1/v2 stream + v3 pack).
//
// Exposes the libFuzzer hook (LLVMFuzzerTestOneInput) so a clang
// `-fsanitize=fuzzer` build can drive it (-DMUM_LIBFUZZER=ON). The default
// build gets a standalone deterministic driver instead: it replays a corpus
// of random buffers and mutated-but-plausible snapshots in both container
// formats (bit flips, truncations, splices, and — for packs — targeted
// header/section-table stomps), which is what scripts/tier1.sh runs under
// ASan+UBSan. Decoding goes through parse_snapshot, which sniffs the magic,
// so every buffer exercises whichever decoder claims it; a truncated pack
// mapping must never be read past (the ASan tier enforces it).
//
// The oracle, both ways:
//   * tolerant decode never crashes, never trips a sanitizer, and its
//     diagnostics agree with what it returned (records_decoded == traces);
//   * strict decode of the same bytes never crashes, and when it rejects it
//     reports at least one fault;
//   * whatever tolerant decode salvages re-serializes and re-parses cleanly
//     in BOTH formats (the salvaged subset is a valid snapshot in its own
//     right, and the two containers agree on it).
//
// A third arm fuzzes run::parse_cycle_report (the ".mumc" checkpoint
// format resume trusts): mutated checkpoints with header stomps, checksum
// stomps, truncations — and payload stomps *re-signed* with a fresh
// checksum so the record decoders beneath the integrity gate get driven
// too. Oracle: never crashes, and anything accepted re-serializes to a
// fixpoint (serialize∘parse is idempotent).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dataset/pack.h"
#include "dataset/warts_lite.h"
#include "run/checkpoint.h"
#include "util/rng.h"

namespace {

using mum::dataset::DecodeDiagnostics;
using mum::dataset::DecodeOptions;
using mum::dataset::Snapshot;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_warts: invariant violated: %s\n", what);
    std::abort();
  }
}

void run_one(const std::string& bytes) {
  DecodeDiagnostics tolerant_diag;
  const auto tolerant = mum::dataset::parse_snapshot(
      bytes, DecodeOptions{.tolerant = true}, &tolerant_diag);
  if (tolerant) {
    check(tolerant_diag.records_decoded == tolerant->traces.size(),
          "records_decoded mismatches returned traces");
    // The salvaged subset must itself round-trip cleanly — through the
    // stream form and through the pack, and the two must agree.
    DecodeDiagnostics clean;
    const auto again = mum::dataset::parse_snapshot(
        mum::dataset::serialize_snapshot(*tolerant),
        DecodeOptions{.tolerant = true}, &clean);
    check(again.has_value(), "salvaged snapshot does not re-parse");
    check(clean.clean(), "salvaged snapshot re-parses with faults");
    check(again->traces.size() == tolerant->traces.size(),
          "salvaged snapshot loses traces on round trip");
    DecodeDiagnostics pack_clean;
    const std::string pack_bytes = mum::dataset::serialize_pack(*tolerant);
    const auto packed = mum::dataset::parse_pack(
        pack_bytes, DecodeOptions{.tolerant = true}, &pack_clean);
    check(packed.has_value(), "salvaged snapshot does not re-parse as pack");
    check(pack_clean.clean(), "salvaged pack re-parses with faults");
    check(packed->traces.size() == tolerant->traces.size(),
          "pack round trip loses traces");
    // Batch arm: the columnar writer must agree with the AoS writer byte
    // for byte on the salvage, and the zero-copy ingest must round-trip
    // byte-stably (column memcpy in, column memcpy out).
    mum::dataset::SnapshotBatch batch;
    batch.cycle_id = tolerant->cycle_id;
    batch.sub_index = tolerant->sub_index;
    batch.date = tolerant->date;
    for (const auto& trace : tolerant->traces) batch.traces.append(trace);
    check(mum::dataset::serialize_pack(batch) == pack_bytes,
          "batch pack writer diverges from AoS pack writer");
    const auto view = mum::dataset::PackView::open(
        pack_bytes, DecodeOptions{.tolerant = true}, nullptr);
    check(view.has_value(), "salvaged pack does not open as a view");
    const mum::dataset::SnapshotBatch reread = view->to_snapshot_batch();
    check(reread.trace_count() == tolerant->traces.size(),
          "batch ingest loses traces");
    check(mum::dataset::serialize_pack(reread) == pack_bytes,
          "batch pack round trip is not byte-stable");
  } else {
    check(tolerant_diag.faults_total() > 0,
          "tolerant rejection without a recorded fault");
  }

  DecodeDiagnostics strict_diag;
  const auto strict = mum::dataset::parse_snapshot(
      bytes, DecodeOptions{.tolerant = false}, &strict_diag);
  if (strict) {
    check(strict_diag.clean(), "strict acceptance with faults recorded");
    check(tolerant.has_value(), "strict accepted what tolerant rejected");
  } else {
    check(strict_diag.faults_total() > 0,
          "strict rejection without a recorded fault");
  }
}

// Checkpoint (.mumc) arm: parse never crashes; acceptance implies the
// serialize∘parse fixpoint (one application normalizes map ordering and
// integer narrowing; after that the bytes must be stable).
void run_one_checkpoint(const std::string& bytes) {
  const auto report = mum::run::parse_cycle_report(bytes);
  if (!report) return;
  const std::string once = mum::run::serialize_cycle_report(*report);
  const auto again = mum::run::parse_cycle_report(once);
  check(again.has_value(), "accepted checkpoint does not re-parse");
  check(mum::run::serialize_cycle_report(*again) == once,
        "checkpoint serialize/parse is not a fixpoint");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  // Route by magic: "MUMC" buffers exercise the checkpoint decoder (the
  // snapshot sniffers would reject them at the magic check anyway).
  if (bytes.size() >= 4 && bytes.compare(0, 4, "MUMC") == 0) {
    run_one_checkpoint(bytes);
  } else {
    run_one(bytes);
  }
  return 0;
}

#ifndef MUM_LIBFUZZER

namespace {

// A small but structurally rich snapshot to mutate.
Snapshot seed_snapshot(mum::util::Rng& rng) {
  Snapshot snap;
  snap.cycle_id = static_cast<std::uint32_t>(rng.below(60));
  snap.sub_index = static_cast<std::uint32_t>(rng.below(4));
  snap.date = "2014-06";
  const int traces = 1 + static_cast<int>(rng.below(6));
  for (int i = 0; i < traces; ++i) {
    mum::dataset::Trace t;
    t.monitor_id = static_cast<std::uint32_t>(rng.below(32));
    t.src = mum::net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    t.dst = mum::net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
    t.reached = rng.chance(0.8);
    const int hops = static_cast<int>(rng.below(12));
    for (int h = 0; h < hops; ++h) {
      mum::dataset::TraceHop hop;
      if (!rng.chance(0.1)) {
        hop.addr = mum::net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
        hop.rtt_ms = rng.uniform01() * 200.0;
        const int stack = static_cast<int>(rng.below(4));
        for (int s = 0; s < stack; ++s) {
          hop.labels.push(static_cast<std::uint32_t>(rng.below(1 << 20)),
                          static_cast<std::uint8_t>(rng.below(8)), 64);
        }
      }
      t.hops.push_back(std::move(hop));
    }
    snap.traces.push_back(std::move(t));
  }
  return snap;
}

std::string mutate(std::string bytes, mum::util::Rng& rng) {
  switch (rng.below(5)) {
    case 0: {  // bit flips
      const int flips = 1 + static_cast<int>(rng.below(8));
      for (int f = 0; f < flips && !bytes.empty(); ++f) {
        const std::size_t at =
            static_cast<std::size_t>(rng.below(bytes.size()));
        bytes[at] = static_cast<char>(static_cast<unsigned char>(bytes[at]) ^
                                      (1u << rng.below(8)));
      }
      return bytes;
    }
    case 1:  // truncation
      return bytes.substr(
          0, static_cast<std::size_t>(rng.below(bytes.size() + 1)));
    case 2: {  // splice two prefixes
      const std::size_t cut =
          static_cast<std::size_t>(rng.below(bytes.size() + 1));
      return bytes.substr(0, cut) + bytes;
    }
    case 3: {  // stomp a run with a random byte (varint/count corruption)
      if (bytes.size() > 8) {
        const std::size_t at =
            static_cast<std::size_t>(rng.below(bytes.size() - 4));
        for (std::size_t k = 0; k < 4; ++k) {
          bytes[at + k] = static_cast<char>(rng.below(256));
        }
      }
      return bytes;
    }
    default:  // append garbage
      for (int k = 0; k < 16; ++k) {
        bytes.push_back(static_cast<char>(rng.below(256)));
      }
      return bytes;
  }
}

// A structurally rich cycle report to mutate — every serialized section
// populated (stats, per-AS tables, IOTPs with multi-LSP variants, decode
// diagnostics with retained samples).
mum::lpr::CycleReport seed_report(mum::util::Rng& rng) {
  mum::lpr::CycleReport report;
  report.cycle_id = static_cast<std::uint32_t>(rng.below(60));
  report.date = "2012-09";
  report.extract_stats.traces_total = rng.below(100000);
  report.extract_stats.traces_with_explicit_tunnel = rng.below(10000);
  report.extract_stats.lsps_observed = rng.below(5000);
  report.extract_stats.lsps_incomplete = rng.below(500);
  report.extract_stats.mpls_ips = rng.below(2000);
  report.extract_stats.non_mpls_ips = rng.below(20000);
  report.filter_stats.observed = rng.below(5000);
  report.filter_stats.complete = rng.below(4000);
  report.filter_stats.after_intra_as = rng.below(3000);
  report.filter_stats.after_target_as = rng.below(2000);
  report.filter_stats.after_transit_diversity = rng.below(1000);
  report.filter_stats.after_persistence = rng.below(900);
  const auto counts = [&rng] {
    mum::lpr::ClassCounts c;
    c.mono_lsp = rng.below(40);
    c.multi_fec = rng.below(10);
    c.mono_fec = rng.below(20);
    c.unclassified = rng.below(5);
    c.parallel_links = rng.below(10);
    c.routers_disjoint = rng.below(10);
    return c;
  };
  report.global = counts();
  const int ases = 1 + static_cast<int>(rng.below(4));
  for (int a = 0; a < ases; ++a) {
    const auto asn = static_cast<std::uint32_t>(1 + rng.below(65000));
    report.per_as[asn] = counts();
    report.dynamic_as[asn] = rng.chance(0.3);
  }
  const int iotps = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < iotps; ++i) {
    mum::lpr::IotpRecord rec;
    rec.key = {static_cast<std::uint32_t>(1 + rng.below(65000)),
               mum::net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
               mum::net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()))};
    const int variants = 1 + static_cast<int>(rng.below(3));
    for (int v = 0; v < variants; ++v) {
      mum::lpr::Lsp lsp;
      lsp.asn = rec.key.asn;
      lsp.ingress = rec.key.ingress;
      lsp.egress = rec.key.egress;
      lsp.egress_labeled = rng.chance(0.2);
      const int lsrs = static_cast<int>(rng.below(5));
      for (int l = 0; l < lsrs; ++l) {
        mum::lpr::LsrHop hop;
        hop.addr = mum::net::Ipv4Addr(static_cast<std::uint32_t>(rng.next()));
        const int labels = 1 + static_cast<int>(rng.below(3));
        for (int k = 0; k < labels; ++k) {
          hop.labels.push_back(static_cast<std::uint32_t>(rng.below(1 << 20)));
        }
        lsp.lsrs.push_back(std::move(hop));
      }
      rec.variants.push_back(std::move(lsp));
    }
    const int dsts = 1 + static_cast<int>(rng.below(3));
    for (int d = 0; d < dsts; ++d) {
      rec.dst_asns.push_back(static_cast<std::uint32_t>(rng.below(65000)));
    }
    rec.tunnel_class = static_cast<mum::lpr::TunnelClass>(rng.below(4));
    rec.mono_fec_kind = static_cast<mum::lpr::MonoFecKind>(rng.below(3));
    rec.length = static_cast<int>(rng.below(10));
    rec.width = static_cast<int>(rng.below(5));
    rec.symmetry = static_cast<int>(rng.below(4));
    report.iotps.push_back(std::move(rec));
  }
  for (std::uint64_t& c : report.decode.counts) c = rng.below(20);
  report.decode.records_decoded = rng.below(100000);
  report.decode.records_skipped = rng.below(100);
  const int samples = static_cast<int>(rng.below(4));
  for (int s = 0; s < samples; ++s) {
    report.decode.samples.push_back(mum::dataset::DecodeFault{
        static_cast<mum::dataset::FaultClass>(rng.below(12)),
        static_cast<std::size_t>(rng.below(4096)), rng.below(1000),
        "fuzz sample"});
  }
  return report;
}

// Re-sign a mutated checkpoint: recompute the trailing FNV-1a over the
// (possibly stomped) payload so the mutation survives the integrity gate
// and reaches the record decoders underneath.
std::string resign_checkpoint(std::string bytes) {
  constexpr std::size_t kHeader = 5;  // magic + version
  if (bytes.size() < kHeader + 8) return bytes;
  const std::uint64_t sum = mum::util::fnv1a(
      std::string_view(bytes).substr(kHeader, bytes.size() - kHeader - 8));
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  return bytes;
}

// Checkpoint-targeted mutation schedule: beyond the generic byte-level
// mutate(), stomp the 5-byte header (magic/version checks), the 8-byte
// checksum trailer (integrity gate), or the payload re-signed (deep
// decoder paths: varint bounds, count-vs-remaining-bytes claims).
std::string mutate_checkpoint(std::string bytes, mum::util::Rng& rng) {
  switch (rng.below(4)) {
    case 0: {  // header stomp
      const std::size_t at = static_cast<std::size_t>(
          rng.below(bytes.size() < 5 ? bytes.size() : 5));
      if (at < bytes.size()) {
        bytes[at] = static_cast<char>(rng.below(256));
      }
      return bytes;
    }
    case 1: {  // checksum stomp
      if (bytes.size() >= 8) {
        bytes[bytes.size() - 1 - rng.below(8)] =
            static_cast<char>(rng.below(256));
      }
      return bytes;
    }
    case 2: {  // payload stomp, re-signed past the integrity gate
      if (bytes.size() > 5 + 8 + 4) {
        const std::size_t span = bytes.size() - 5 - 8;
        const int stomps = 1 + static_cast<int>(rng.below(4));
        for (int s = 0; s < stomps; ++s) {
          const std::size_t at = 5 + static_cast<std::size_t>(rng.below(span));
          bytes[at] = rng.chance(0.3) ? static_cast<char>(0xff)
                                      : static_cast<char>(rng.below(256));
        }
        bytes = resign_checkpoint(std::move(bytes));
      }
      return bytes;
    }
    default:  // generic byte-level mutation (mostly checksum-rejected)
      return mutate(std::move(bytes), rng);
  }
}

// Pack-targeted mutation: stomp fields inside the fixed header or the
// section table (the first kPackHeaderBytes + 10 * kPackSectionEntryBytes
// bytes), where a generic 4-byte stomp rarely lands. This is what drives
// the bounds-checking in PackView::open — corrupted counts, offsets, sizes,
// element widths and checksums.
std::string stomp_pack_tables(std::string bytes, mum::util::Rng& rng) {
  const std::size_t table_end =
      mum::dataset::kPackHeaderBytes +
      mum::dataset::kPackSectionCount * mum::dataset::kPackSectionEntryBytes;
  const std::size_t limit = bytes.size() < table_end ? bytes.size() : table_end;
  if (limit <= 4) return bytes;
  const int stomps = 1 + static_cast<int>(rng.below(4));
  for (int s = 0; s < stomps; ++s) {
    // Aligned 4-byte stomps hit whole header/table fields.
    const std::size_t at = 4 * rng.below(limit / 4);
    const std::size_t width = at + 8 <= limit && rng.chance(0.5) ? 8 : 4;
    for (std::size_t k = 0; k < width; ++k) {
      bytes[at + k] =
          rng.chance(0.3)
              ? static_cast<char>(0xff)  // huge counts/offsets
              : static_cast<char>(rng.below(256));
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 10000;
  std::uint64_t seed = 20151028;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: fuzz_warts [--iters N] [--seed S]\n");
      return 1;
    }
  }

  mum::util::Rng rng(seed);
  for (std::uint64_t i = 0; i < iters; ++i) {
    if (rng.chance(0.2)) {
      // Checkpoint arm: a valid serialized report through the targeted
      // mutation schedule (or raw, exercising the accept path).
      std::string bytes =
          mum::run::serialize_cycle_report(seed_report(rng));
      const int rounds = static_cast<int>(rng.below(3));
      for (int r = 0; r < rounds; ++r) {
        bytes = mutate_checkpoint(std::move(bytes), rng);
      }
      run_one_checkpoint(bytes);
      continue;
    }
    std::string bytes;
    if (rng.chance(0.25)) {
      // Pure noise, random length (exercises the container checks).
      const std::size_t len = static_cast<std::size_t>(rng.below(512));
      bytes.reserve(len);
      for (std::size_t k = 0; k < len; ++k) {
        bytes.push_back(static_cast<char>(rng.below(256)));
      }
      if (rng.chance(0.5)) {
        // Give noise a valid header so it reaches the record decoder (or,
        // for packs, the section-table validator).
        if (rng.chance(0.5)) {
          bytes = std::string("MUMW") +
                  std::string(1, static_cast<char>(1 + rng.below(2))) + bytes;
        } else {
          bytes = std::string("MUMP") + std::string(1, char{3}) +
                  std::string(3, char{0}) + bytes;
        }
      }
    } else {
      // Mutated valid snapshot, at a random container/format version.
      auto snap = seed_snapshot(rng);
      const bool pack = rng.chance(0.4);
      bytes = pack ? mum::dataset::serialize_pack(snap)
                   : mum::dataset::serialize_snapshot(
                         snap, rng.chance(0.3) ? std::uint8_t{1}
                                               : std::uint8_t{2});
      if (pack && rng.chance(0.6)) {
        bytes = stomp_pack_tables(std::move(bytes), rng);
      }
      const int rounds = 1 + static_cast<int>(rng.below(3));
      for (int r = 0; r < rounds; ++r) bytes = mutate(std::move(bytes), rng);
    }
    run_one(bytes);
  }
  std::printf("fuzz_warts: %llu buffers, 0 crashes\n",
              static_cast<unsigned long long>(iters));
  return 0;
}

#endif  // MUM_LIBFUZZER
