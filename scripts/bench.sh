#!/usr/bin/env bash
# Micro-benchmark runner: builds bench/micro_lpr and writes a JSON report
# (google-benchmark --benchmark_format=json) to BENCH_PR4.json at the repo
# root, embedding the pre-PR IGP baselines so the speedup is auditable from
# the artifact alone.
#
# The baselines were measured at commit 72d59fb (before the flat-RIB /
# one-pass SPF rewrite) on the AT&T case-study shape (74 routers, 217 links,
# Rng(4)) with the same timer loop BM_IgpCompute/BM_IgpReconverge use:
#   compute    (all-pairs ECMP SPF): 2002143 ns/iter
#   reconverge (2 links down, was a full recompute): 1971482 ns/iter
#
# Usage: scripts/bench.sh [build-dir] [benchmark-filter]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
filter="${2:-}"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j --target micro_lpr

args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR4.json"
  --benchmark_out_format=json
  --benchmark_context=baseline_igp_compute_ns=2002143
  --benchmark_context=baseline_igp_reconverge_ns=1971482
  --benchmark_context=baseline_commit=72d59fb
)
if [[ -n "$filter" ]]; then
  args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_lpr" "${args[@]}"
echo "wrote $repo/BENCH_PR4.json"
