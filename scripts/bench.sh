#!/usr/bin/env bash
# Micro-benchmark runner. Two stages, each writing a JSON report
# (google-benchmark --benchmark_format=json) at the repo root:
#
#   1. bench/micro_lpr   -> BENCH_PR4.json  (LPR/IGP hot paths, with the
#      pre-PR IGP baselines embedded so the speedup is auditable from the
#      artifact alone)
#   2. bench/micro_ingest -> BENCH_PR6.json (warts-lite v2 stream decode vs
#      v3 pack mmap ingest over a 60-cycle corpus, bytes/s and traces/s;
#      gated: v3 mmap must ingest at >= 5x the v2 traces/s)
#   3. bench/micro_obs   -> BENCH_PR7.json (telemetry primitives plus a
#      small campaign with telemetry fully on — trace sink + registry
#      dump — vs fully off; gated: on/off wall-clock ratio <= 1.03)
#
# The PR4 baselines were measured at commit 72d59fb (before the flat-RIB /
# one-pass SPF rewrite) on the AT&T case-study shape (74 routers, 217 links,
# Rng(4)) with the same timer loop BM_IgpCompute/BM_IgpReconverge use:
#   compute    (all-pairs ECMP SPF): 2002143 ns/iter
#   reconverge (2 links down, was a full recompute): 1971482 ns/iter
#
# Usage: scripts/bench.sh [build-dir] [benchmark-filter]
# The filter applies to both binaries; the 5x ingest gate only runs when the
# two gated benchmarks are present in the report (i.e. not filtered out).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
filter="${2:-}"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j --target micro_lpr --target micro_ingest \
  --target micro_obs

args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR4.json"
  --benchmark_out_format=json
  --benchmark_context=baseline_igp_compute_ns=2002143
  --benchmark_context=baseline_igp_reconverge_ns=1971482
  --benchmark_context=baseline_commit=72d59fb
)
if [[ -n "$filter" ]]; then
  args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_lpr" "${args[@]}"
echo "wrote $repo/BENCH_PR4.json"

ingest_args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR6.json"
  --benchmark_out_format=json
)
if [[ -n "$filter" ]]; then
  ingest_args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_ingest" "${ingest_args[@]}"
echo "wrote $repo/BENCH_PR6.json"

python3 - "$repo/BENCH_PR6.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
by_name = {b["name"]: b for b in report["benchmarks"]}
v2 = by_name.get("BM_IngestV2Stream")
v3 = by_name.get("BM_IngestV3Mmap")
if v2 is None or v3 is None:
    print("ingest gate skipped (benchmarks filtered out)")
    sys.exit(0)
ratio = v3["items_per_second"] / v2["items_per_second"]
print(
    f"ingest: v2 stream {v2['items_per_second']:,.0f} traces/s "
    f"({v2['bytes_per_second'] / 1e9:.2f} GB/s), "
    f"v3 mmap {v3['items_per_second']:,.0f} traces/s "
    f"({v3['bytes_per_second'] / 1e9:.2f} GB/s) -> {ratio:.1f}x"
)
if ratio < 5.0:
    sys.exit(f"ingest gate FAILED: v3/v2 = {ratio:.2f}x, need >= 5x")
PY

obs_args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR7.json"
  --benchmark_out_format=json
  --benchmark_min_time=0.5
)
if [[ -n "$filter" ]]; then
  obs_args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_obs" "${obs_args[@]}"
echo "wrote $repo/BENCH_PR7.json"

python3 - "$repo/BENCH_PR7.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
by_name = {b["name"]: b for b in report["benchmarks"]}
off = by_name.get("BM_CampaignTelemetryOff")
on = by_name.get("BM_CampaignTelemetryOn")
if off is None or on is None:
    print("telemetry gate skipped (benchmarks filtered out)")
    sys.exit(0)
ratio = on["real_time"] / off["real_time"]
print(
    f"telemetry: campaign off {off['real_time']:.2f} {off['time_unit']}, "
    f"on {on['real_time']:.2f} {on['time_unit']} -> {ratio:.3f}x"
)
if ratio > 1.03:
    sys.exit(f"telemetry gate FAILED: on/off = {ratio:.3f}x, need <= 1.03x")
PY
