#!/usr/bin/env bash
# Micro-benchmark runner. Four stages, each writing a JSON report
# (google-benchmark --benchmark_format=json) at the repo root:
#
#   1. bench/micro_lpr    -> BENCH_PR4.json  (LPR/IGP hot paths, with the
#      pre-PR IGP baselines embedded so the speedup is auditable from the
#      artifact alone)
#   2. bench/micro_ingest -> BENCH_PR6.json (warts-lite v2 stream decode vs
#      v3 pack mmap ingest over a 60-cycle corpus, bytes/s and traces/s;
#      gated: v3 mmap must ingest at >= 5x the v2 traces/s)
#   3. bench/micro_obs    -> BENCH_PR7.json (telemetry primitives plus a
#      small campaign with telemetry fully on — trace sink + registry
#      dump — vs fully off; gated: on/off wall-clock ratio <= 1.03)
#   4. bench/micro_evolve -> BENCH_PR8.json (delta-based cycle evolution vs
#      from-scratch rebuild at 10^3/10^4/10^5-router tiers; gated: the
#      delta step must be >= 5x faster than the rebuild at the 10^4 tier)
#   5. bench/micro_probe  -> BENCH_PR9.json (measurement path over
#      precomputed forwarding walks: observe -> store -> annotate -> pack ->
#      ingest, legacy heap Traces vs arena-backed SoA TraceBatch, with an
#      operator-new counting hook; gated on the same-report pair — batch
#      must run at >= 3x the legacy traces/s with >= 10x fewer heap
#      allocations per trace. The legacy benchmark IS the pre-PR path
#      (CampaignConfig::batch = false reaches the same code), so comparing
#      within one report keeps the gate honest on loaded machines)
#
# After the micro stages, an RSS-envelope gate runs a scaled campaign
# (`mum campaign --scale`) and fails when peak RSS exceeds the memory
# budget documented in DESIGN.md §13 by more than 20%.
#
# Every report's context block records num_threads and build_type, so a
# number can be traced back to the machine shape that produced it.
#
# The PR4 baselines were measured at commit 72d59fb (before the flat-RIB /
# one-pass SPF rewrite) on the AT&T case-study shape (74 routers, 217 links,
# Rng(4)) with the same timer loop BM_IgpCompute/BM_IgpReconverge use:
#   compute    (all-pairs ECMP SPF): 2002143 ns/iter
#   reconverge (2 links down, was a full recompute): 1971482 ns/iter
#
# Usage: scripts/bench.sh [build-dir] [benchmark-filter]
# The filter applies to all binaries; each gate only runs when the
# benchmarks it reads are present in the report (i.e. not filtered out).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
filter="${2:-}"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j --target micro_lpr --target micro_ingest \
  --target micro_obs --target micro_evolve --target micro_probe \
  --target mum_tool

# Machine/build provenance recorded into every report's context block.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt")"
context_args=(
  --benchmark_context=num_threads="$(nproc)"
  --benchmark_context=build_type="${build_type:-unspecified}"
)

# Fail with a clear, actionable message (not a KeyError / shell error) when
# a report that gates depend on is missing a baseline_* context key.
require_baselines() {
  python3 - "$1" "${@:2}" <<'PY'
import json, sys

path, keys = sys.argv[1], sys.argv[2:]
try:
    with open(path) as f:
        context = json.load(f).get("context", {})
except (OSError, ValueError) as e:
    sys.exit(f"baseline check FAILED: cannot read {path}: {e}")
missing = [k for k in keys if k not in context]
if missing:
    sys.exit(
        f"baseline check FAILED: {path} context is missing "
        f"{', '.join(missing)} — re-run scripts/bench.sh so the baseline "
        f"values are embedded (they are set via --benchmark_context)"
    )
PY
}

args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR4.json"
  --benchmark_out_format=json
  "${context_args[@]}"
  --benchmark_context=baseline_igp_compute_ns=2002143
  --benchmark_context=baseline_igp_reconverge_ns=1971482
  --benchmark_context=baseline_commit=72d59fb
)
if [[ -n "$filter" ]]; then
  args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_lpr" "${args[@]}"
echo "wrote $repo/BENCH_PR4.json"
require_baselines "$repo/BENCH_PR4.json" \
  baseline_igp_compute_ns baseline_igp_reconverge_ns baseline_commit

ingest_args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR6.json"
  --benchmark_out_format=json
  "${context_args[@]}"
)
if [[ -n "$filter" ]]; then
  ingest_args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_ingest" "${ingest_args[@]}"
echo "wrote $repo/BENCH_PR6.json"

python3 - "$repo/BENCH_PR6.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
by_name = {b["name"]: b for b in report["benchmarks"]}
v2 = by_name.get("BM_IngestV2Stream")
v3 = by_name.get("BM_IngestV3Mmap")
if v2 is None or v3 is None:
    print("ingest gate skipped (benchmarks filtered out)")
    sys.exit(0)
ratio = v3["items_per_second"] / v2["items_per_second"]
print(
    f"ingest: v2 stream {v2['items_per_second']:,.0f} traces/s "
    f"({v2['bytes_per_second'] / 1e9:.2f} GB/s), "
    f"v3 mmap {v3['items_per_second']:,.0f} traces/s "
    f"({v3['bytes_per_second'] / 1e9:.2f} GB/s) -> {ratio:.1f}x"
)
if ratio < 5.0:
    sys.exit(f"ingest gate FAILED: v3/v2 = {ratio:.2f}x, need >= 5x")
PY

obs_args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR7.json"
  --benchmark_out_format=json
  --benchmark_min_time=0.5
  "${context_args[@]}"
)
if [[ -n "$filter" ]]; then
  obs_args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_obs" "${obs_args[@]}"
echo "wrote $repo/BENCH_PR7.json"

python3 - "$repo/BENCH_PR7.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
by_name = {b["name"]: b for b in report["benchmarks"]}
off = by_name.get("BM_CampaignTelemetryOff")
on = by_name.get("BM_CampaignTelemetryOn")
if off is None or on is None:
    print("telemetry gate skipped (benchmarks filtered out)")
    sys.exit(0)
ratio = on["real_time"] / off["real_time"]
print(
    f"telemetry: campaign off {off['real_time']:.2f} {off['time_unit']}, "
    f"on {on['real_time']:.2f} {on['time_unit']} -> {ratio:.3f}x"
)
if ratio > 1.03:
    sys.exit(f"telemetry gate FAILED: on/off = {ratio:.3f}x, need <= 1.03x")
PY

evolve_args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR8.json"
  --benchmark_out_format=json
  "${context_args[@]}"
)
if [[ -n "$filter" ]]; then
  evolve_args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_evolve" "${evolve_args[@]}"
echo "wrote $repo/BENCH_PR8.json"

python3 - "$repo/BENCH_PR8.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

# Explicit ->Iterations(N) suffixes the benchmark name, so match by prefix.
def find(prefix):
    for b in report["benchmarks"]:
        if b["name"] == prefix or b["name"].startswith(prefix + "/"):
            return b
    return None

rebuild = find("BM_CycleRebuild/10000")
evolve = find("BM_CycleEvolve/10000")
if rebuild is None or evolve is None:
    print("evolve gate skipped (benchmarks filtered out)")
    sys.exit(0)
ratio = rebuild["real_time"] / evolve["real_time"]
print(
    f"evolve (10^4 routers): rebuild {rebuild['real_time']:.2f} "
    f"{rebuild['time_unit']}, delta step {evolve['real_time']:.3f} "
    f"{evolve['time_unit']} -> {ratio:.0f}x"
)
if ratio < 5.0:
    sys.exit(f"evolve gate FAILED: rebuild/evolve = {ratio:.2f}x, need >= 5x")
PY

# PR9 compares the two in-tree measurement paths inside one report: the
# legacy benchmark exercises the pre-PR heap-Trace pipeline verbatim (it is
# kept in-tree as the batch path's oracle, CampaignConfig::batch = false),
# so the live legacy/batch ratio is the "vs pre-PR baseline" number and is
# immune to machine-load drift between runs. baseline_commit records the
# last pre-PR commit for provenance; for scale, the full simulate ->
# annotate -> pack -> parse pipeline there measured 1808 ns/trace at 11.4
# heap allocations/trace on this world shape.
probe_args=(
  --benchmark_format=json
  --benchmark_out="$repo/BENCH_PR9.json"
  --benchmark_out_format=json
  "${context_args[@]}"
  --benchmark_context=baseline_commit=c4b6eab
)
if [[ -n "$filter" ]]; then
  probe_args+=(--benchmark_filter="$filter")
fi

"$build/bench/micro_probe" "${probe_args[@]}"
echo "wrote $repo/BENCH_PR9.json"
require_baselines "$repo/BENCH_PR9.json" baseline_commit

python3 - "$repo/BENCH_PR9.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)
context = report["context"]
by_name = {b["name"]: b for b in report["benchmarks"]}
legacy = by_name.get("BM_MeasurementPathLegacy")
batch = by_name.get("BM_MeasurementPathBatch")
if legacy is None or batch is None:
    print("measurement-path gate skipped (benchmarks filtered out)")
    sys.exit(0)

legacy_ns = 1e9 / legacy["items_per_second"]
batch_ns = 1e9 / batch["items_per_second"]
legacy_allocs = legacy["allocs_per_trace"]
batch_allocs = batch["allocs_per_trace"]
speedup = legacy_ns / batch_ns
alloc_ratio = (
    legacy_allocs / batch_allocs if batch_allocs > 0 else float("inf")
)
print(
    f"measurement path: legacy {legacy_ns:.0f} ns/trace "
    f"({legacy_allocs:.2f} allocs/trace), batch {batch_ns:.0f} ns/trace "
    f"({batch_allocs:.4f} allocs/trace) -> {speedup:.1f}x faster, "
    f"{alloc_ratio:.0f}x fewer allocations "
    f"(pre-PR path baseline at {context['baseline_commit']})"
)
if speedup < 3.0:
    sys.exit(
        f"measurement-path gate FAILED: batch speedup {speedup:.2f}x vs "
        f"the legacy path, need >= 3x"
    )
if alloc_ratio < 10.0:
    sys.exit(
        f"measurement-path gate FAILED: allocation ratio {alloc_ratio:.2f}x "
        f"vs the legacy path, need >= 10x"
    )
PY

# --- RSS envelope gate ------------------------------------------------------
# A scaled campaign must stay inside the memory budget documented in
# DESIGN.md §13 (keep these constants in sync with the table there):
#   budget = base + routers * bytes_per_router + lsps * bytes_per_lsp
# The gate fails when measured peak RSS exceeds the budget by > 20% — the
# regression this catches is per-cycle state outliving its cycle (the
# standing-world design makes that a multiplicative leak).
if [[ -z "$filter" ]]; then
  "$build/tools/mum" campaign --cycles 3 --small \
    --scale routers=20000,lsps=100000 --json --quiet \
    > "$build/rss_envelope.json"
  python3 - "$build/rss_envelope.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    manifest = json.load(f)["manifest"]
peak = manifest["peak_rss_bytes"]
routers, lsps = 20_000, 100_000
base = 64 * 1024 * 1024          # DESIGN.md §13: fixed overhead
bytes_per_router = 16 * 1024     # DESIGN.md §13: bytes/router
bytes_per_lsp = 200              # DESIGN.md §13: bytes/LSP
budget = base + routers * bytes_per_router + lsps * bytes_per_lsp
print(
    f"rss envelope: peak {peak / 1e6:.0f} MB, budget {budget / 1e6:.0f} MB "
    f"(routers={routers}, lsps={lsps}) -> {peak / budget:.2f}x"
)
if peak > budget * 1.2:
    sys.exit(
        f"rss gate FAILED: peak RSS {peak / 1e6:.0f} MB exceeds the "
        f"DESIGN.md §13 budget {budget / 1e6:.0f} MB by "
        f"{100 * (peak / budget - 1):.0f}% (> 20% allowed)"
    )
PY
else
  echo "rss envelope gate skipped (benchmark filter active)"
fi
