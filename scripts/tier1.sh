#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then a ThreadSanitizer pass over the
# parallel execution layer (tests/test_parallel) to catch data races the
# functional tests cannot.
#
# Usage: scripts/tier1.sh [build-dir] [tsan-build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
tsan_build="${2:-$repo/build-tsan}"

echo "== tier-1: build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j

echo "== tier-1: TSan pass over test_parallel ($tsan_build) =="
cmake -B "$tsan_build" -S "$repo" -DMUM_TSAN=ON
# Only the one target — a full TSan tree is slow and adds nothing here.
cmake --build "$tsan_build" -j --target test_parallel
"$tsan_build/tests/test_parallel"

echo "== tier-1: OK =="
