#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then a ThreadSanitizer pass over the
# parallel execution layer (tests/test_parallel) to catch data races the
# functional tests cannot, then an ASan+UBSan pass over the tolerant-ingest
# layer (decoder fuzz corpus + chaos tests) to catch memory errors arbitrary
# bytes could trigger. On top of that: a failpoint matrix (every io fault
# class injected at 2% must leave a campaign contained) and a kill/resume
# torture loop (real process kills at fixed io-op ordinals; resumed runs
# must be byte-identical to an uninterrupted one).
#
# Usage: scripts/tier1.sh [build-dir] [tsan-build-dir] [asan-build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
tsan_build="${2:-$repo/build-tsan}"
asan_build="${3:-$repo/build-asan}"

echo "== tier-1: build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j

mum="$build/tools/mum"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

echo "== tier-1: failpoint matrix (each io fault class at 2%) =="
# Every fault class injected alone must leave the campaign contained: the
# run exits ok (0) or degraded-complete (4) — never a crash, hang, or fatal.
for fault in io.eio io.enospc io.shortwrite io.torn io.stalerename io.slow; do
  rm -rf "$work/ck"
  code=0
  "$mum" campaign --small --cycles 12 --quiet --retry 2 \
    --checkpoints "$work/ck" --checkpoint-data \
    --chaos "$fault=2%" > "$work/$fault.out" 2>&1 || code=$?
  if [ "$code" -ne 0 ] && [ "$code" -ne 4 ]; then
    echo "FAIL: $fault=2% campaign exited $code"
    cat "$work/$fault.out"
    exit 1
  fi
  echo "  $fault=2% -> exit $code"
done

echo "== tier-1: kill/resume torture (real process kills) =="
# Kill the process at the K-th injected io op, resume from the checkpoint
# directory, and require the resumed report byte-identical to an
# uninterrupted run. Fixed K list spans early, mid and late campaign.
"$mum" campaign --small --cycles 12 --quiet > "$work/baseline.out"
for k in 2 7 13 23 31; do
  rm -rf "$work/kill"
  code=0
  "$mum" campaign --small --cycles 12 --quiet --checkpoints "$work/kill" \
    --chaos "io.kill_at=$k" > /dev/null 2>&1 || code=$?
  if [ "$code" -ne 9 ]; then
    echo "FAIL: io.kill_at=$k expected exit 9 (killed), got $code"
    exit 1
  fi
  "$mum" campaign --small --cycles 12 --quiet --resume "$work/kill" \
    > "$work/resume.out" 2> /dev/null
  if ! cmp -s "$work/baseline.out" "$work/resume.out"; then
    echo "FAIL: resume after kill at op $k diverged from baseline"
    diff "$work/baseline.out" "$work/resume.out" | head -20
    exit 1
  fi
  echo "  kill at op $k -> exit 9, resume byte-identical"
done

echo "== tier-1: TSan pass over test_parallel + test_obs + test_evolve + test_batch ($tsan_build) =="
cmake -B "$tsan_build" -S "$repo" -DMUM_TSAN=ON
# Only these targets — a full TSan tree is slow and adds nothing here.
# test_obs runs with telemetry sinks installed, so the sharded metric and
# trace paths get raced for real. test_evolve races the DeltaEvolver's
# per-AS delta fan-out and the evolved runner at 16 threads. test_batch
# races the arena-backed shard batches (one arena per monitor, merged in
# monitor order) against the legacy oracle at 16 threads.
cmake --build "$tsan_build" -j --target test_parallel --target test_obs \
  --target test_evolve --target test_batch
"$tsan_build/tests/test_parallel"
"$tsan_build/tests/test_obs"
"$tsan_build/tests/test_evolve"
"$tsan_build/tests/test_batch"

echo "== tier-1: ASan+UBSan pass over tolerant ingest ($asan_build) =="
cmake -B "$asan_build" -S "$repo" -DMUM_ASAN=ON
# test_batch's damaged-pack ingest and the fuzzer's batch round-trip arm
# both drive the zero-copy column views over hostile bytes.
cmake --build "$asan_build" -j --target fuzz_warts --target test_chaos \
  --target test_batch
"$asan_build/tools/fuzz_warts" --iters 10000
"$asan_build/tests/test_chaos"
"$asan_build/tests/test_batch"

echo "== tier-1: OK =="
