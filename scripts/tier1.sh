#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then a ThreadSanitizer pass over the
# parallel execution layer (tests/test_parallel) to catch data races the
# functional tests cannot, then an ASan+UBSan pass over the tolerant-ingest
# layer (decoder fuzz corpus + chaos tests) to catch memory errors arbitrary
# bytes could trigger.
#
# Usage: scripts/tier1.sh [build-dir] [tsan-build-dir] [asan-build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
tsan_build="${2:-$repo/build-tsan}"
asan_build="${3:-$repo/build-asan}"

echo "== tier-1: build + ctest ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j

echo "== tier-1: TSan pass over test_parallel + test_obs + test_evolve + test_batch ($tsan_build) =="
cmake -B "$tsan_build" -S "$repo" -DMUM_TSAN=ON
# Only these targets — a full TSan tree is slow and adds nothing here.
# test_obs runs with telemetry sinks installed, so the sharded metric and
# trace paths get raced for real. test_evolve races the DeltaEvolver's
# per-AS delta fan-out and the evolved runner at 16 threads. test_batch
# races the arena-backed shard batches (one arena per monitor, merged in
# monitor order) against the legacy oracle at 16 threads.
cmake --build "$tsan_build" -j --target test_parallel --target test_obs \
  --target test_evolve --target test_batch
"$tsan_build/tests/test_parallel"
"$tsan_build/tests/test_obs"
"$tsan_build/tests/test_evolve"
"$tsan_build/tests/test_batch"

echo "== tier-1: ASan+UBSan pass over tolerant ingest ($asan_build) =="
cmake -B "$asan_build" -S "$repo" -DMUM_ASAN=ON
# test_batch's damaged-pack ingest and the fuzzer's batch round-trip arm
# both drive the zero-copy column views over hostile bytes.
cmake --build "$asan_build" -j --target fuzz_warts --target test_chaos \
  --target test_batch
"$asan_build/tools/fuzz_warts" --iters 10000
"$asan_build/tests/test_chaos"
"$asan_build/tests/test_batch"

echo "== tier-1: OK =="
