// Shared driver for the per-AS longitudinal benches (Figs. 10-15): run the
// 60-cycle study, print the two-pane series for one AS (class shares +
// IOTP counts per cycle), then run the figure-specific shape checks.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "common.h"
#include "util/table.h"

namespace mum::bench {

inline int run_as_series_bench(
    const std::string& title, std::uint32_t asn,
    const std::function<void(const lpr::LongitudinalReport&)>& checks) {
  Study study(default_study());
  std::cout << title << "\n(running the 60-cycle study...)\n\n";
  const lpr::LongitudinalReport report = study.run_all();
  std::cout << '\n';
  print_as_series(std::cout, report, asn);
  std::cout << '\n';
  checks(report);
  return 0;
}

// Average share of one class over a cycle range (inclusive, 0-based),
// counting only cycles where the AS had IOTPs.
inline double avg_share(const lpr::LongitudinalReport& report,
                        std::uint32_t asn, int from, int to,
                        std::uint64_t lpr::ClassCounts::* member) {
  double sum = 0;
  int n = 0;
  for (const auto& point : report.as_series(asn)) {
    const int cycle = static_cast<int>(point.cycle_id);
    if (cycle < from || cycle > to || point.counts.total() == 0) continue;
    sum += static_cast<double>(point.counts.*member) /
           static_cast<double>(point.counts.total());
    ++n;
  }
  return n ? sum / n : 0.0;
}

// Average IOTP count over a cycle range.
inline double avg_iotps(const lpr::LongitudinalReport& report,
                        std::uint32_t asn, int from, int to) {
  double sum = 0;
  int n = 0;
  for (const auto& point : report.as_series(asn)) {
    const int cycle = static_cast<int>(point.cycle_id);
    if (cycle < from || cycle > to) continue;
    sum += static_cast<double>(point.counts.total());
    ++n;
  }
  return n ? sum / n : 0.0;
}

inline void check(bool ok, const std::string& what) {
  std::cout << (ok ? "[ok] " : "[MISMATCH] ") << what << '\n';
}

}  // namespace mum::bench
