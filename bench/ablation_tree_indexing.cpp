// Ablation — Sec.-5 LSP-tree extension: index LSPs by Egress LER only
// (egress-rooted trees / DAGs) instead of <Ingress, Egress> pairs, and
// compare against the IOTP classification on the same filtered data.
//
// Expected outcomes (the paper's stated motivation for the extension):
//  * fewer, larger groups — "more LSPs will be classified ... because they
//    will be indexed only through the Egress LER";
//  * the structure is a DAG, not a tree, because of ECMP (in-degree > 1);
//  * the LDP-consistency invariant (one label per router per tree) holds
//    for non-TE ASes and is broken exactly where RSVP-TE runs.
#include <iostream>

#include "common.h"
#include "core/tree.h"
#include "gen/profiles.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  const int cycle = gen::cycle_of(2014, 12);
  std::cout << "Ablation — IOTP indexing vs egress-rooted tree indexing, "
            << "cycle " << cycle + 1 << "\n\n";

  // Run the filter half of the pipeline once; group both ways.
  const auto month = study.month_data(cycle);
  const auto extracted = lpr::extract_lsps(month.cycle(), study.ip2as());
  std::vector<lpr::ExtractedSnapshot> following;
  for (std::size_t i = 1; i < month.snapshots.size(); ++i) {
    following.push_back(lpr::extract_lsps(month.snapshots[i],
                                          study.ip2as()));
  }
  const auto filtered =
      lpr::apply_filters(extracted, following, lpr::FilterConfig{});

  auto iotps = lpr::group_iotps(filtered.observations);
  const auto iotp_counts = lpr::classify_all(iotps);
  const auto trees = lpr::build_egress_trees(filtered.observations);
  const auto tree_stats = lpr::summarize(trees);

  util::TextTable table({"metric", "IOTP indexing", "tree indexing"});
  table.add_row({"groups",
                 util::TextTable::fmt_int(static_cast<std::int64_t>(
                     iotp_counts.total())),
                 util::TextTable::fmt_int(static_cast<std::int64_t>(
                     tree_stats.trees))});
  table.add_row({"single-branch groups",
                 util::TextTable::fmt_int(static_cast<std::int64_t>(
                     iotp_counts.mono_lsp)),
                 util::TextTable::fmt_int(static_cast<std::int64_t>(
                     tree_stats.single_branch))});
  table.add_row({"TE (multi-FEC) groups",
                 util::TextTable::fmt_int(static_cast<std::int64_t>(
                     iotp_counts.multi_fec)),
                 util::TextTable::fmt_int(static_cast<std::int64_t>(
                     tree_stats.multi_fec))});
  std::cout << table << '\n';

  // DAG evidence and per-AS invariant check.
  int dag_trees = 0;
  std::map<std::uint32_t, std::pair<int, int>> per_as;  // asn -> (ldp, te)
  for (const auto& tree : trees) {
    if (tree.max_in_degree > 1) ++dag_trees;
    auto& [ldp, te] = per_as[tree.key.asn];
    if (tree.tree_class == lpr::TreeClass::kLdpConsistent) ++ldp;
    if (tree.tree_class == lpr::TreeClass::kMultiFec) ++te;
  }
  std::cout << dag_trees << " of " << trees.size()
            << " trees have a router with in-degree > 1 (DAGs, as the "
               "paper anticipates for ECMP)\n\n";

  util::TextTable as_table({"AS", "LDP-consistent trees", "Multi-FEC trees"});
  for (const std::uint32_t asn :
       {gen::kAsnVodafone, gen::kAsnAtt, gen::kAsnTata, gen::kAsnNtt}) {
    const auto it = per_as.find(asn);
    const auto [ldp, te] =
        it == per_as.end() ? std::pair<int, int>{0, 0} : it->second;
    as_table.add_row({"AS" + std::to_string(asn), std::to_string(ldp),
                      std::to_string(te)});
  }
  std::cout << as_table << '\n';

  const bool fewer_groups = tree_stats.trees < iotp_counts.total();
  const bool fewer_singles =
      tree_stats.single_branch * iotp_counts.total() <
      iotp_counts.mono_lsp * tree_stats.trees;  // smaller single share
  const auto tata = per_as[gen::kAsnTata];
  const auto vodafone = per_as[gen::kAsnVodafone];
  std::cout << (fewer_groups ? "[ok] tree indexing coarser than IOTPs\n"
                             : "[MISMATCH] tree indexing not coarser\n")
            << (fewer_singles
                    ? "[ok] smaller single-branch share => more LSPs "
                      "classified\n"
                    : "[MISMATCH] single-branch share did not shrink\n")
            << (tata.first > 5 * tata.second && tata.first > 0
                    ? "[ok] Tata trees overwhelmingly LDP-consistent "
                      "(its profile has only a 2% TE trickle)\n"
                    : "[MISMATCH] Tata tree invariant\n")
            << (vodafone.second > vodafone.first
                    ? "[ok] Vodafone trees mostly Multi-FEC (TE)\n"
                    : "[MISMATCH] Vodafone tree invariant\n");
  return 0;
}
