// Fig. 14 — Tunnel classification for AS2914 (NTT), cycles 1-60.
//
// Paper shapes: MPLS usage increases (the IOTP count roughly triples over
// the period, consistent with the growing MPLS IP counts of Table 2) while
// the class mix stays mostly Mono-LSP, with a slight relative decrease of
// Mono-LSP in favour of Mono-FEC late in the period.
#include "as_series.h"
#include "gen/profiles.h"

int main() {
  using namespace mum;
  return bench::run_as_series_bench(
      "Fig. 14 — AS2914 (NTT) tunnel classification", gen::kAsnNtt,
      [](const lpr::LongitudinalReport& report) {
        const auto asn = gen::kAsnNtt;
        const double monolsp = bench::avg_share(
            report, asn, 0, 59, &lpr::ClassCounts::mono_lsp);
        bench::check(monolsp > 0.5, "Mono-LSP dominates throughout (share " +
                                        util::TextTable::fmt(monolsp, 2) +
                                        ")");
        const double early = bench::avg_iotps(report, asn, 0, 9);
        const double late = bench::avg_iotps(report, asn, 50, 59);
        bench::check(late > 2.0 * early,
                     "IOTP count grows strongly (" +
                         util::TextTable::fmt(early, 0) + " -> " +
                         util::TextTable::fmt(late, 0) +
                         "; paper: roughly x3)");
        const double early_monofec = bench::avg_share(
            report, asn, 0, 19, &lpr::ClassCounts::mono_fec);
        const double late_monofec = bench::avg_share(
            report, asn, 40, 59, &lpr::ClassCounts::mono_fec);
        // The paper's shift is slight; accept steady-to-rising within noise.
        bench::check(late_monofec >= early_monofec - 0.03 &&
                         late_monofec > 0.1,
                     "Mono-FEC present and steady-to-rising late (" +
                         util::TextTable::fmt(early_monofec, 2) + " -> " +
                         util::TextTable::fmt(late_monofec, 2) + ")");
      });
}
