// Fig. 7 — IOTP length distribution (cycle 60).
//
// Length = number of intermediate LSRs in the longest LSP of the IOTP
// (LERs excluded). Paper shape: most tunnels short — > 65% have <= 3 LSRs —
// with a thin tail of longer tunnels, related to the short diameter of
// most ASes.
#include <iostream>

#include "common.h"
#include "core/metrics.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  const int cycle = gen::cycle_of(2014, 12);  // cycle 60
  std::cout << "Fig. 7 — IOTP length distribution, cycle " << cycle + 1
            << " (" << gen::cycle_date(cycle) << ")\n\n";

  const lpr::CycleReport report = study.run_cycle(cycle);
  const auto lengths = lpr::length_distribution(report.iotps);
  bench::print_pdf(std::cout, lengths, "length");

  const double short_share = lengths.cdf(3);
  std::cout << '\n'
            << report.iotps.size() << " IOTPs; share with length <= 3: "
            << util::TextTable::fmt(short_share, 3)
            << (short_share > 0.65
                    ? "  [> 65%, as in the paper]"
                    : "  [below the paper's 65% threshold]")
            << "\nmax length: " << lengths.max_key() << '\n';
  return 0;
}
