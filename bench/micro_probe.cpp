// Measurement-path throughput: observation -> trace storage -> annotate ->
// pack serialization -> ingest, legacy heap Traces vs the arena-backed SoA
// TraceBatch (DESIGN.md Sec. 14). Forwarding walks are precomputed once —
// the network simulation is the workload's input, not the measurement path
// this PR optimizes — so the gated pair isolates exactly the stages the
// batch rebuild touched. Reports traces/s (SetItemsProcessed) and heap
// allocations per trace via a global operator-new counting hook;
// scripts/bench.sh records both in BENCH_PR9.json and gates the batch path
// at >= 3x the legacy traces/s and >= 10x fewer allocations per trace.
// BM_CampaignSnapshot* additionally time the full snapshot (routing + walk
// included) as ungated context for the end-to-end win.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "dataset/pack.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "probe/traceroute.h"
#include "util/arena.h"

// --- allocation-count hook -------------------------------------------------
// Counts every global operator new (scalar, array, aligned). Relaxed atomic:
// the benches are single-threaded, the hook just has to be safe if the
// runtime spawns a helper thread.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) == 0) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace mum;

// One precomputed probe: the deterministic forwarding walk the observation
// model consumes (walks depend only on (path, flow id), never on the rng).
struct ProbeInput {
  net::Ipv4Addr dst;
  probe::WalkResult walk;
};

// 8 monitors x 400 destinations x 2 probes -> ~6400 traces per snapshot.
struct Corpus {
  gen::Internet internet;
  dataset::Ip2As ip2as;
  std::vector<std::vector<ProbeInput>> by_monitor;  // campaign monitor order
  std::size_t traces = 0;
  std::size_t hops = 0;
  std::size_t lses = 0;

  Corpus()
      : internet([] {
          gen::GenConfig config;
          config.background_transit = 12;
          config.stub_ases = 16;
          config.monitors = 8;
          config.dests_per_monitor = 400;
          return config;
        }()),
        ip2as(internet.build_ip2as()) {
    // Replicate the campaign's per-monitor destination split exactly, but
    // keep the walks instead of tracing them.
    const auto ctx = internet.instantiate(50);
    const auto& monitors = internet.monitors();
    const auto& dests = internet.destinations();
    const int per_monitor = internet.config().dests_per_monitor;
    const int overlap = std::max(1, internet.config().dest_overlap);
    by_monitor.resize(monitors.size());
    gen::Internet::PathScratch scratch;
    for (std::size_t mi = 0; mi < monitors.size(); ++mi) {
      int probed = 0;
      for (int o = 0; o < overlap && probed < per_monitor; ++o) {
        const std::size_t lane =
            (mi + monitors.size() - static_cast<std::size_t>(o)) %
            monitors.size();
        const int per_dest = std::max(1, internet.config().probes_per_dest);
        for (std::size_t d = lane; d < dests.size() && probed < per_monitor;
             d += monitors.size(), ++probed) {
          for (int pp = 0; pp < per_dest; ++pp) {
            gen::Destination dest = dests[d];
            dest.addr = net::Ipv4Addr(dest.addr.value() +
                                      static_cast<std::uint32_t>(pp) * 128);
            if (!internet.path_spec(monitors[mi], dest, ctx, scratch)) {
              continue;
            }
            ProbeInput probe;
            probe.dst = dest.addr;
            probe.walk = probe::walk_path(
                scratch.path, probe::paris_flow_id(monitors[mi], dest.addr));
            by_monitor[mi].push_back(std::move(probe));
          }
        }
      }
      traces += by_monitor[mi].size();
    }
    // Hop/LSE counts for exact batch reserves (what the campaign's merge
    // step knows from its shard counts).
    for (const auto& block : by_monitor) {
      for (const auto& probe : block) {
        for (const auto& hop : probe.walk.hops) {
          ++hops;
          lses += hop.labels.depth();
        }
      }
    }
  }
};

const Corpus& corpus() {
  static const Corpus c;
  return c;
}

// Legacy measurement path: one heap Trace per probe (hop vector growth per
// trace), per-hop trie annotate, per-record pack encode, full Trace
// materialization on ingest. This is the pre-PR path, kept in-tree as the
// batch oracle (gen::CampaignConfig::batch = false).
void BM_MeasurementPathLegacy(benchmark::State& state) {
  const Corpus& c = corpus();
  const auto& monitors = c.internet.monitors();
  const probe::TraceOptions options;

  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const util::Rng noise_base(0xBEEF);
    dataset::Snapshot snap;
    snap.cycle_id = 50;
    snap.date = "2010-03";
    // Same block-then-merge shape as the pre-PR campaign loop: each monitor
    // grows its own trace vector, blocks concatenate in monitor order.
    std::vector<std::vector<dataset::Trace>> blocks(monitors.size());
    for (std::size_t mi = 0; mi < monitors.size(); ++mi) {
      util::Rng rng = noise_base.fork(mi);
      for (const ProbeInput& probe : c.by_monitor[mi]) {
        blocks[mi].push_back(probe::observe_walk(monitors[mi], probe.dst,
                                                 options, rng, probe.walk));
      }
    }
    snap.traces.reserve(c.traces);
    for (auto& block : blocks) {
      for (auto& trace : block) snap.traces.push_back(std::move(trace));
    }
    c.ip2as.annotate(std::span<dataset::Trace>(snap.traces));
    const std::string bytes = dataset::serialize_pack(snap);
    const auto back = dataset::parse_pack(bytes);
    if (!back || back->traces.size() != c.traces) {
      state.SkipWithError("legacy round-trip lost traces");
      break;
    }
    benchmark::DoNotOptimize(back->traces.data());
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const auto items = static_cast<std::int64_t>(state.iterations()) *
                     static_cast<std::int64_t>(c.traces);
  state.SetItemsProcessed(items);
  if (items > 0) {
    state.counters["allocs_per_trace"] =
        static_cast<double>(allocs) / static_cast<double>(items);
  }
  state.SetLabel(std::to_string(c.traces) + " traces/snapshot");
}
BENCHMARK(BM_MeasurementPathLegacy)->Unit(benchmark::kMillisecond);

// Batch measurement path: traces land as SoA columns in one reused arena
// (steady state allocates nothing), memoized column annotate, column-memcpy
// pack serialization, zero-copy column ingest.
void BM_MeasurementPathBatch(benchmark::State& state) {
  const Corpus& c = corpus();
  const auto& monitors = c.internet.monitors();
  const probe::TraceOptions options;
  util::Arena arena;
  dataset::AsnCache asn_cache;  // campaign-persistent, like the arena

  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const util::Rng noise_base(0xBEEF);
    arena.reset();
    dataset::SnapshotBatch snap;
    snap.cycle_id = 50;
    snap.date = "2010-03";
    snap.traces = dataset::TraceBatch(arena);
    snap.traces.reserve(c.traces, c.hops, c.lses);
    for (std::size_t mi = 0; mi < monitors.size(); ++mi) {
      util::Rng rng = noise_base.fork(mi);
      for (const ProbeInput& probe : c.by_monitor[mi]) {
        probe::observe_walk_into(monitors[mi], probe.dst, options, rng,
                                 probe.walk, snap.traces);
      }
    }
    c.ip2as.annotate(snap.traces, asn_cache);
    const std::string bytes = dataset::serialize_pack(snap);
    const auto view = dataset::PackView::open(bytes, {}, nullptr);
    if (!view) {
      state.SkipWithError("batch pack failed to open");
      break;
    }
    const dataset::SnapshotBatch back = view->to_snapshot_batch();
    if (back.trace_count() != c.traces) {
      state.SkipWithError("batch round-trip lost traces");
      break;
    }
    benchmark::DoNotOptimize(back.traces.hop_addr_col().data());
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const auto items = static_cast<std::int64_t>(state.iterations()) *
                     static_cast<std::int64_t>(c.traces);
  state.SetItemsProcessed(items);
  if (items > 0) {
    state.counters["allocs_per_trace"] =
        static_cast<double>(allocs) / static_cast<double>(items);
  }
  state.SetLabel(std::to_string(c.traces) + " traces/snapshot");
}
BENCHMARK(BM_MeasurementPathBatch)->Unit(benchmark::kMillisecond);

// Context (not gated): the full campaign snapshot including AS routing and
// the forwarding walk — the shared simulation floor both paths pay.
void BM_CampaignSnapshotLegacy(benchmark::State& state) {
  const Corpus& c = corpus();
  gen::CampaignConfig config;
  config.batch = false;
  const gen::CampaignRunner campaign(c.internet, c.ip2as, config);
  auto ctx = c.internet.instantiate(50);

  std::uint64_t traces = 0;
  for (auto _ : state) {
    const dataset::Snapshot snap = campaign.snapshot(ctx, 50, 0);
    traces = snap.traces.size();
    benchmark::DoNotOptimize(snap.traces.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(traces));
}
BENCHMARK(BM_CampaignSnapshotLegacy)->Unit(benchmark::kMillisecond);

void BM_CampaignSnapshotBatch(benchmark::State& state) {
  const Corpus& c = corpus();
  const gen::CampaignRunner campaign(c.internet, c.ip2as);
  auto ctx = c.internet.instantiate(50);

  std::uint64_t traces = 0;
  for (auto _ : state) {
    const dataset::SnapshotBatch snap = campaign.snapshot_batch(ctx, 50, 0);
    traces = snap.trace_count();
    benchmark::DoNotOptimize(snap.traces.hop_addr_col().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(traces));
}
BENCHMARK(BM_CampaignSnapshotBatch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
