// Fig. 15 — Tunnel classification for AS3356 (Level3), cycles 1-60.
//
// Paper shapes: a "curious" timeline — no MPLS before cycle 29 (May 2012),
// a large and mostly Mono-FEC tunnel population during the stable period,
// and a sharp decrease starting at cycle 55.
#include "as_series.h"
#include "gen/profiles.h"

int main() {
  using namespace mum;
  return bench::run_as_series_bench(
      "Fig. 15 — AS3356 (Level3) tunnel classification", gen::kAsnLevel3,
      [](const lpr::LongitudinalReport& report) {
        const auto asn = gen::kAsnLevel3;
        const double before = bench::avg_iotps(report, asn, 0, 26);
        const double plateau = bench::avg_iotps(report, asn, 30, 52);
        const double after = bench::avg_iotps(report, asn, 57, 59);
        bench::check(before < 1.0, "no MPLS before the rollout (avg " +
                                       util::TextTable::fmt(before, 1) +
                                       " IOTPs/cycle)");
        bench::check(plateau > 20.0,
                     "large tunnel population during the plateau (avg " +
                         util::TextTable::fmt(plateau, 0) + ")");
        bench::check(after < 0.25 * plateau,
                     "sharp decrease from cycle 55 (avg " +
                         util::TextTable::fmt(after, 1) + ")");
        const double monofec = bench::avg_share(
            report, asn, 30, 52, &lpr::ClassCounts::mono_fec);
        bench::check(monofec > 0.3,
                     "mainly a Mono-FEC (ECMP) usage during the plateau "
                     "(share " +
                         util::TextTable::fmt(monofec, 2) + ")");
      });
}
