// Table 2 — Statistics about IP addresses for the case-study ASes: per
// year (2010..2014), min / max / average number of addresses observed,
// split into MPLS (seen inside a labeled run) and non-MPLS.
//
// Paper shapes this bench must reproduce (relative, at simulator scale):
//  * AT&T by far the largest address footprint, Level3 second, Vodafone the
//    smallest;
//  * Vodafone & NTT: MPLS IP counts grow over the years;
//  * Tata: MPLS IP counts decline;
//  * Level3: (near) zero MPLS IPs in 2010-2011, a jump in 2012, a healthy
//    plateau, and a 2014 minimum near zero (the post-decline December).
#include <iostream>
#include <map>

#include "common.h"
#include "core/extract.h"
#include "gen/profiles.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  std::cout << "Table 2 — per-AS, per-year IP address statistics\n"
            << "(generating 60 monthly campaigns...)\n\n";

  const std::vector<std::pair<std::uint32_t, const char*>> ases = {
      {gen::kAsnVodafone, "AS1273 (Vodafone)"},
      {gen::kAsnAtt, "AS7018 (AT&T)"},
      {gen::kAsnTata, "AS6453 (Tata)"},
      {gen::kAsnNtt, "AS2914 (NTT)"},
      {gen::kAsnLevel3, "AS3356 (Level3)"},
  };

  // stats[asn][year] -> (mpls, non-mpls) trackers.
  std::map<std::uint32_t, std::map<int, util::MinMaxAvg>> mpls_stats;
  std::map<std::uint32_t, std::map<int, util::MinMaxAvg>> plain_stats;

  for (int cycle = 0; cycle < gen::kCycles; ++cycle) {
    const int year = gen::kFirstYear + cycle / 12;
    const dataset::MonthData month = study.month_data(cycle);
    const auto census = lpr::census_by_as(month.cycle());
    for (const auto& [asn, name] : ases) {
      const auto it = census.find(asn);
      const double mpls =
          it == census.end() ? 0.0 : static_cast<double>(it->second.mpls_ips);
      const double plain = it == census.end()
                               ? 0.0
                               : static_cast<double>(it->second.non_mpls_ips);
      mpls_stats[asn][year].add(mpls);
      plain_stats[asn][year].add(plain);
    }
  }

  for (const auto& [asn, name] : ases) {
    std::cout << name << '\n';
    util::TextTable table({"year", "non-MPLS min", "max", "avg", "MPLS min",
                           "max", "avg"});
    for (int year = 2010; year <= 2014; ++year) {
      const auto& m = mpls_stats[asn][year];
      const auto& p = plain_stats[asn][year];
      table.add_row({std::to_string(year),
                     util::TextTable::fmt(p.min(), 0),
                     util::TextTable::fmt(p.max(), 0),
                     util::TextTable::fmt(p.avg(), 0),
                     util::TextTable::fmt(m.min(), 0),
                     util::TextTable::fmt(m.max(), 0),
                     util::TextTable::fmt(m.avg(), 0)});
    }
    std::cout << table << '\n';
  }

  // Shape checks.
  auto avg = [&](std::uint32_t asn, int year) {
    return mpls_stats[asn][year].avg();
  };
  auto ok = [](bool b, const char* what) {
    std::cout << (b ? "[ok] " : "[MISMATCH] ") << what << '\n';
  };
  ok(plain_stats[gen::kAsnAtt][2014].avg() >
         plain_stats[gen::kAsnTata][2014].avg(),
     "AT&T address footprint larger than Tata's");
  ok(avg(gen::kAsnNtt, 2014) > avg(gen::kAsnNtt, 2010),
     "NTT MPLS IPs grow 2010 -> 2014");
  ok(avg(gen::kAsnTata, 2014) < avg(gen::kAsnTata, 2010),
     "Tata MPLS IPs decline 2010 -> 2014");
  ok(avg(gen::kAsnLevel3, 2011) < 1.0 && avg(gen::kAsnLevel3, 2013) > 10.0,
     "Level3 MPLS IPs: none in 2011, plateau by 2013");
  ok(mpls_stats[gen::kAsnLevel3][2014].min() <
         0.25 * mpls_stats[gen::kAsnLevel3][2014].avg(),
     "Level3 2014 minimum far below its average (post-decline December)");
  return 0;
}
