// Ingest throughput: warts-lite v2 stream decode vs v3 pack mmap, over a
// 60-cycle on-disk corpus (one snapshot per cycle, the paper's campaign
// length). Reports bytes/s (SetBytesProcessed) and traces/s
// (SetItemsProcessed); scripts/bench.sh records the numbers in
// BENCH_PR6.json and gates on the v3/v2 traces-per-second ratio.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dataset/pack.h"
#include "dataset/snapshot_source.h"
#include "dataset/warts_lite.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "util/mmap_file.h"

namespace {

using namespace mum;
namespace fs = std::filesystem;

struct Corpus {
  std::vector<std::string> v2_paths;
  std::vector<std::string> v3_paths;
  std::uint64_t traces = 0;
  std::uint64_t v2_bytes = 0;
  std::uint64_t v3_bytes = 0;
};

// Generate the corpus once, serialize every cycle in both containers, and
// leave the files in tmp for the mmap path to map for real.
const Corpus& corpus() {
  static const Corpus c = [] {
    Corpus built;
    const fs::path dir = fs::temp_directory_path() / "mum_bench_ingest";
    fs::remove_all(dir);
    fs::create_directories(dir);

    gen::GenConfig config;
    config.background_transit = 8;
    config.stub_ases = 12;
    config.monitors = 6;
    config.dests_per_monitor = 150;
    const gen::Internet internet(config);
    const auto ip2as = internet.build_ip2as();
    const gen::CampaignRunner campaign(internet, ip2as);

    for (int cycle = 0; cycle < gen::kCycles; ++cycle) {
      auto ctx = internet.instantiate(cycle);
      const auto snap = campaign.snapshot(ctx, cycle, 0);
      built.traces += snap.trace_count();

      const std::string v2 = dataset::serialize_snapshot(snap);
      const std::string v3 = dataset::serialize_pack(snap);
      built.v2_bytes += v2.size();
      built.v3_bytes += v3.size();
      const fs::path base = dir / ("cycle_" + std::to_string(cycle + 1));
      std::ofstream(base.string() + ".mumw", std::ios::binary) << v2;
      std::ofstream(base.string() + ".mump", std::ios::binary) << v3;
      built.v2_paths.push_back(base.string() + ".mumw");
      built.v3_paths.push_back(base.string() + ".mump");
    }
    return built;
  }();
  return c;
}

// v2 baseline: map each shard (same I/O path as v3) and run the varint
// stream decoder — one branchy parse per byte, full Trace materialization.
void BM_IngestV2Stream(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    std::uint64_t traces = 0;
    for (const auto& path : c.v2_paths) {
      const auto file = util::MmapFile::open_ro(path);
      const auto snap = dataset::parse_snapshot_v2(file->view());
      traces += snap->traces.size();
    }
    if (traces != c.traces) state.SkipWithError("v2 decode lost traces");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.v2_bytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.traces));
  state.SetLabel(std::to_string(c.v2_paths.size()) + " shards, " +
                 std::to_string(c.traces) + " traces");
}
BENCHMARK(BM_IngestV2Stream)->Unit(benchmark::kMillisecond);

// v3 ingest: mmap each shard and open a validated zero-copy view —
// section-table bounds checks, per-section checksums, offset-column scans.
// Records become addressable without per-record parsing; this is the state
// the pack reader hands to column-oriented consumers.
void BM_IngestV3Mmap(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    std::uint64_t traces = 0;
    for (const auto& path : c.v3_paths) {
      const auto file = util::MmapFile::open_ro(path);
      const auto view = dataset::PackView::open(file->view(), {}, nullptr);
      traces += view->valid_count();
    }
    if (traces != c.traces) state.SkipWithError("v3 open lost traces");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.v3_bytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.traces));
  state.SetLabel(std::to_string(c.v3_paths.size()) + " shards, " +
                 std::to_string(c.traces) + " traces");
}
BENCHMARK(BM_IngestV3Mmap)->Unit(benchmark::kMillisecond);

// Apples-to-apples with the v2 baseline: validate AND materialize every
// record into owning Trace structs. The delta against BM_IngestV3Mmap is
// the cost of leaving the zero-copy regime.
void BM_IngestV3Materialize(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    std::uint64_t traces = 0;
    for (const auto& path : c.v3_paths) {
      const auto file = util::MmapFile::open_ro(path);
      const auto snap = dataset::parse_pack(file->view());
      traces += snap->traces.size();
    }
    if (traces != c.traces) state.SkipWithError("v3 decode lost traces");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.v3_bytes));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.traces));
}
BENCHMARK(BM_IngestV3Materialize)->Unit(benchmark::kMillisecond);

// The unified ingest stack end to end (sniffing + diagnostics accounting),
// as Runner and the CLI consume it.
void BM_IngestFileSource(benchmark::State& state) {
  const Corpus& c = corpus();
  const bool pack = state.range(0) != 0;
  const auto& paths = pack ? c.v3_paths : c.v2_paths;
  for (auto _ : state) {
    auto source = dataset::make_file_source(paths);
    std::uint64_t traces = 0;
    while (const auto snap = source->next()) traces += snap->traces.size();
    if (traces != c.traces) state.SkipWithError("source lost traces");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.traces));
  state.SetLabel(pack ? "v3" : "v2");
}
BENCHMARK(BM_IngestFileSource)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
