// Ablation — fast reroute vs re-signalling under link failures.
//
// DESIGN.md calls out the failure-reaction design choice: when a link dies,
// an RSVP-TE LSP either (a) re-signals over the post-failure route with
// FRESH labels or (b) switches to an RFC 4090 pre-signalled backup whose
// labels already exist. Both converge to a stable path (so the Persistence
// filter treats them alike once the failure holds); what differs — and what
// this bench measures — is label-space pressure and observable label churn:
//
//   * re-signalling consumes new labels at every hop of every affected LSP
//     per failure event (the mechanism behind Fig. 17-style label sweeps);
//   * FRR consumes its labels up front, at signalling time, and failures
//     whose backup survives cause no further allocation (only LSPs whose
//     backup is also broken fall back to re-signalling).
#include <iostream>

#include "common.h"
#include "mpls/rsvp.h"
#include "topo/builder.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mum;

struct ArmResult {
  std::uint64_t labels_at_signal = 0;   // pool draw when LSPs are set up
  std::uint64_t labels_on_failures = 0; // extra draw across failure rounds
  int lsps = 0;
  int reroutes = 0;     // failure events that moved an LSP
  int blackholes = 0;   // events where no alternative existed
};

ArmResult run_arm(bool frr, int failure_rounds) {
  topo::BuildParams params;
  params.asn = 65001;
  params.block = net::Ipv4Prefix(net::Ipv4Addr(16, 0, 0, 0), 15);
  params.core_routers = 10;
  params.pop_routers = 24;
  params.border_share = 0.5;
  params.core_chord_prob = 0.35;  // alternatives exist for backups
  params.heavy_cost_share = 0.0;  // keep ECMP ties => disjoint variants
  params.parallel_link_prob = 0.2;
  util::Rng topo_rng(99);
  const auto topo = topo::build_as_topology(params, topo_rng);
  const auto igp = igp::IgpState::compute(topo);

  std::vector<mpls::LabelPool> pools;
  for (const auto& r : topo.routers()) pools.emplace_back(r.vendor);

  mpls::RsvpConfig config;
  config.frr = frr;
  mpls::RsvpTePlane plane(&topo, &igp, config);

  // Full TE mesh between the borders, 2 LSPs per pair.
  util::Rng rng(7);
  const auto borders = topo.border_routers();
  for (const auto i : borders) {
    for (const auto e : borders) {
      if (i != e) plane.signal(i, e, 2, pools, rng);
    }
  }
  ArmResult result;
  result.lsps = static_cast<int>(plane.lsp_count());
  for (const auto& pool : pools) result.labels_at_signal += pool.allocated();

  // Failure rounds: each fails 3% of links (fresh draw per round) and lets
  // the control plane react.
  util::Rng fail_rng(13);
  for (int round = 0; round < failure_rounds; ++round) {
    std::vector<bool> down(topo.link_count(), false);
    for (topo::LinkId l = 0; l < topo.link_count(); ++l) {
      down[l] = fail_rng.chance(0.03);
    }
    const auto igp_now = igp::IgpState::compute(topo, &down);
    for (const auto& lsp : plane.lsps()) {
      if (!plane.crosses_down_link(lsp.id, down)) continue;
      if (frr && plane.activate_backup(lsp.id, down)) {
        ++result.reroutes;
        continue;
      }
      // Re-signal over the post-failure IGP route.
      std::vector<topo::LinkId> route;
      topo::RouterId at = lsp.ingress;
      for (std::size_t guard = topo.router_count() + 4;
           at != lsp.egress && guard > 0; --guard) {
        const auto& nhs = igp_now.rib(at).nexthops(lsp.egress);
        if (nhs.empty()) {
          route.clear();
          break;
        }
        route.push_back(nhs.front().link);
        at = nhs.front().neighbor;
      }
      if (route.empty() || at != lsp.egress) {
        ++result.blackholes;
        continue;
      }
      plane.resignal_over(lsp.id, route, pools);
      ++result.reroutes;
    }
    // Failures clear between rounds: FRR LSPs revert to their primaries.
    for (const auto& lsp : plane.lsps()) plane.revert_to_primary(lsp.id);
  }

  std::uint64_t total = 0;
  for (const auto& pool : pools) total += pool.allocated();
  result.labels_on_failures = total - result.labels_at_signal;
  return result;
}

}  // namespace

int main() {
  std::cout << "Ablation — RSVP-TE failure reaction: fast reroute (RFC "
               "4090) vs re-signalling\n"
            << "(one TE-mesh AS, 20 failure rounds at 3% link loss each)\n\n";

  const ArmResult frr = run_arm(/*frr=*/true, 20);
  const ArmResult resig = run_arm(/*frr=*/false, 20);

  util::TextTable table({"", "FRR", "re-signal"});
  auto row = [&](const char* name, std::uint64_t a, std::uint64_t b) {
    table.add_row({name,
                   util::TextTable::fmt_int(static_cast<std::int64_t>(a)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(b))});
  };
  row("LSPs signalled", static_cast<std::uint64_t>(frr.lsps),
      static_cast<std::uint64_t>(resig.lsps));
  row("labels at signalling time", frr.labels_at_signal,
      resig.labels_at_signal);
  row("extra labels across failures", frr.labels_on_failures,
      resig.labels_on_failures);
  row("failure reroutes", static_cast<std::uint64_t>(frr.reroutes),
      static_cast<std::uint64_t>(resig.reroutes));
  std::cout << table << '\n';

  const bool setup_cost = frr.labels_at_signal > resig.labels_at_signal;
  // FRR cannot eliminate churn (a broken backup still re-signals), but it
  // must cut it substantially.
  const bool runtime_saving =
      frr.labels_on_failures * 10 < resig.labels_on_failures * 6;
  std::cout
      << (setup_cost
              ? "[ok] FRR pays its label cost up front (backup paths "
                "pre-signalled)\n"
              : "[MISMATCH] FRR setup cost not visible\n")
      << (runtime_saving
              ? "[ok] FRR cuts failure-time label churn sharply; "
                "re-signalling churns labels per event (the Fig.-17 "
                "pressure mechanism)\n"
              : "[MISMATCH] FRR did not reduce failure-time label churn\n");
  return 0;
}
