// Cycle evolution vs from-scratch rebuild, across world-size tiers.
//
// BM_CycleRebuild is the oracle path (`--evolve off`): every cycle runs a
// full Internet::instantiate. BM_CycleEvolve advances one standing world
// through DeltaEvolver::evolve_to — pristine rollback plus seed-keyed deltas.
// scripts/bench.sh records the numbers in BENCH_PR8.json and gates on the
// rebuild/evolve ratio at the 10^4-router tier (the delta step must be >= 5x
// faster).
//
// The gated arms run with cycle churn OFF and a low intra-month failure
// rate: that isolates the cost of standing up a cycle's control planes,
// which is what delta evolution elides (the paper's "nothing has changed
// between Cycle 28 and Cycle 29" case). The *Churn variants measure the same
// step with every churn knob on — reported for the scaling curve, ungated,
// since then both arms are dominated by the shared reconvergence work.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "gen/evolve.h"
#include "gen/internet.h"

namespace {

using namespace mum;

struct World {
  gen::GenConfig config;
  std::unique_ptr<gen::Internet> internet;
  std::uint64_t routers = 0;
};

// One world per (router tier, churn); built lazily, reused across arms so
// the rebuild and evolve measurements run against the identical topology.
const World& world(std::int64_t routers, bool churn) {
  static std::map<std::pair<std::int64_t, bool>, World> cache;
  World& w = cache[{routers, churn}];
  if (w.internet) return w;

  gen::GenConfig config;
  config.background_tier1 = 1;
  config.background_transit = 2;  // scale_routers drives the real count
  config.stub_ases = 8;
  config.monitors = 2;
  config.dests_per_monitor = 20;
  config.scale_routers = static_cast<std::uint64_t>(routers);
  config.scale_lsps = static_cast<std::uint64_t>(routers) * 10;
  // The gated arms turn intra-month maintenance failures off: apply_flaps'
  // failure reconvergence runs identically in BOTH arms (it is per-snapshot
  // state, not per-cycle state) and at the default rates it dominates the
  // step, hiding the build cost delta evolution removes. The churn variant
  // keeps them on — the realistic, ungated number.
  config.as_maintenance_prob = churn ? 0.25 : 0.0;
  config.link_fail_prob = 0.01;
  if (churn) {
    // Per-link/per-router monthly rates; with a few hundred links per AS
    // these leave a realistic fraction of ASes untouched in a given cycle
    // (the paper's AS3356: month-over-month the infrastructure is usually
    // unchanged) instead of churning every AS every cycle.
    config.churn.link_down_prob = 0.001;
    config.churn.metric_change_prob = 0.001;
    config.churn.router_down_prob = 0.0005;
    config.churn.te_resignal_prob = 0.05;
  }
  w.config = config;
  w.internet = std::make_unique<gen::Internet>(config);
  for (const std::uint32_t asn : w.internet->modeled_asns()) {
    w.routers += w.internet->modeled(asn)->topo.router_count();
  }
  return w;
}

std::uint64_t lsp_count(const gen::Internet& internet,
                        const gen::MonthContext& ctx) {
  std::uint64_t lsps = 0;
  for (const std::uint32_t asn : internet.modeled_asns()) {
    const probe::AsDataPlane* plane = ctx.plane_of(asn);
    if (plane != nullptr && plane->rsvp != nullptr) {
      lsps += plane->rsvp->lsp_count();
    }
  }
  return lsps;
}

void run_rebuild(benchmark::State& state, bool churn) {
  const World& w = world(state.range(0), churn);
  std::optional<gen::MonthContext> ctx;
  int cycle = 0;
  for (auto _ : state) {
    ctx = w.internet->instantiate(1 + cycle++ % (gen::kCycles - 1));
    benchmark::DoNotOptimize(&*ctx);
  }
  state.counters["routers"] = static_cast<double>(w.routers);
  state.counters["lsps"] = static_cast<double>(lsp_count(*w.internet, *ctx));
}

void run_evolve(benchmark::State& state, bool churn) {
  const World& w = world(state.range(0), churn);
  gen::DeltaEvolver evolver(*w.internet);
  evolver.evolve_to(0);  // seed the standing world outside the timed region
  // Stay inside the modelled 60-cycle window; the wrap is a backward jump
  // (full rebuild), which only biases the measured mean AGAINST the evolve
  // arm — the gate stays conservative.
  int cycle = 0;
  for (auto _ : state) {
    evolver.evolve_to(1 + cycle++ % (gen::kCycles - 1));
    benchmark::DoNotOptimize(evolver.context());
  }
  const gen::CycleDeltaStats& stats = evolver.last_stats();
  state.counters["routers"] = static_cast<double>(w.routers);
  state.counters["lsps"] =
      static_cast<double>(lsp_count(*w.internet, *evolver.context()));
  state.counters["ases_restored"] = static_cast<double>(stats.ases_restored);
  state.counters["ases_te_rebuilt"] =
      static_cast<double>(stats.ases_te_rebuilt);
  state.counters["ases_rebuilt"] = static_cast<double>(stats.ases_rebuilt);
  state.counters["spf_recomputed"] =
      static_cast<double>(stats.spf_sources_recomputed);
}

void BM_CycleRebuild(benchmark::State& state) { run_rebuild(state, false); }
void BM_CycleEvolve(benchmark::State& state) { run_evolve(state, false); }
void BM_CycleRebuildChurn(benchmark::State& state) {
  run_rebuild(state, true);
}
void BM_CycleEvolveChurn(benchmark::State& state) { run_evolve(state, true); }

}  // namespace

// Scaling curve: 10^3 / 10^4 / 10^5 routers (LSPs = 10x routers, so the top
// tier carries 10^6 TE LSPs). Iteration counts are pinned on the big tiers
// to bound bench wall-clock; the gate reads the 10^4 tier.
BENCHMARK(BM_CycleRebuild)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CycleEvolve)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CycleRebuild)
    ->Arg(10000)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CycleEvolve)
    ->Arg(10000)
    ->Iterations(12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CycleRebuild)
    ->Arg(100000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CycleEvolve)
    ->Arg(100000)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// Churn-on variants (ungated): the realistic month-over-month step.
BENCHMARK(BM_CycleRebuildChurn)
    ->Arg(10000)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CycleEvolveChurn)
    ->Arg(10000)
    ->Iterations(12)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
