// Fig. 6 — Impact of the Persistence filter on the December 2014 dataset
// (29 daily snapshots), sweeping the parameter j from 0 (no Persistence)
// to 29 (whole month).
//
//  (a) number of tunnels (LSPs) kept after Persistence filtering;
//  (b) classification PDF per j.
//
// Paper shapes: a drop from j=0 to j=1, mostly stable for j>=2 (both the
// kept count and the classification), with j<=1 trading Mono-LSP for
// Multi-FEC (the dynamic-label ASes). Also prints the Sec.-5 ablation: the
// alias-resolution heuristic removes the Unclassified class.
#include <iostream>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::StudyConfig config = bench::default_study();
  bench::Study study(config);

  const int december_2014 = gen::cycle_of(2014, 12);
  constexpr int kDays = 29;
  std::cout << "Fig. 6 — Persistence sweep on " << kDays
            << " daily snapshots of December 2014\n"
            << "(generating daily campaigns...)\n\n";

  const auto snapshots =
      gen::CampaignRunner(study.internet(), study.ip2as(), config.campaign)
          .daily_month(december_2014, kDays);

  // Extract once; sweep filter configurations over the fixed data.
  std::vector<lpr::ExtractedSnapshot> extracted;
  extracted.reserve(snapshots.size());
  for (const auto& snap : snapshots) {
    extracted.push_back(lpr::extract_lsps(snap, study.ip2as()));
  }
  const lpr::ExtractedSnapshot& cycle = extracted.front();
  const std::vector<lpr::ExtractedSnapshot> following(extracted.begin() + 1,
                                                      extracted.end());

  util::TextTable table({"j", "LSPs kept", "IOTPs", "Mono-LSP", "Multi-FEC",
                         "Mono-FEC", "Unclass."});
  for (int j = 0; j <= kDays; ++j) {
    lpr::PipelineConfig pipeline;
    pipeline.filter.persistence_j = j;
    pipeline.filter.enable_persistence = (j > 0);
    const lpr::CycleReport report =
        lpr::run_pipeline(cycle, following, pipeline);
    const auto& g = report.global;
    const double total = static_cast<double>(g.total());
    auto pct = [&](std::uint64_t n) {
      return total > 0 ? util::TextTable::fmt(n / total, 3) : std::string("-");
    };
    table.add_row({std::to_string(j),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       report.filter_stats.after_persistence)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       g.total())),
                   pct(g.mono_lsp), pct(g.multi_fec), pct(g.mono_fec),
                   pct(g.unclassified)});
  }
  std::cout << table << '\n';

  // Stability check, as in the paper: j >= 2 should barely move the mix.
  {
    lpr::PipelineConfig p2, p8;
    p2.filter.persistence_j = 2;
    p8.filter.persistence_j = 8;
    const auto r2 = lpr::run_pipeline(cycle, following, p2);
    const auto r8 = lpr::run_pipeline(cycle, following, p8);
    const auto share = [](const lpr::ClassCounts& c, std::uint64_t n) {
      return c.total() ? static_cast<double>(n) /
                             static_cast<double>(c.total())
                       : 0.0;
    };
    const double drift =
        std::abs(share(r2.global, r2.global.mono_lsp) -
                 share(r8.global, r8.global.mono_lsp));
    std::cout << "Mono-LSP share drift between j=2 and j=8: "
              << util::TextTable::fmt(drift, 3)
              << (drift < 0.05 ? "  [stable for j>=2, as in the paper]"
                               : "  [UNSTABLE]")
              << "\n\n";
  }

  // Ablation (paper Sec. 5): alias-resolution heuristic for PHP-converged
  // IOTPs — should empty the Unclassified class without disturbing the
  // Mono-FEC / Multi-FEC balance much.
  lpr::PipelineConfig with_alias;
  with_alias.classify.alias_resolution_heuristic = true;
  const auto base = lpr::run_pipeline(cycle, following, {});
  const auto alias = lpr::run_pipeline(cycle, following, with_alias);
  std::cout << "Ablation - Sec. 5 alias-resolution heuristic:\n"
            << "  without: " << bench::class_shares_line(base.global) << '\n'
            << "  with:    " << bench::class_shares_line(alias.global) << '\n'
            << "  Unclassified " << base.global.unclassified << " -> "
            << alias.global.unclassified << '\n';
  return 0;
}
