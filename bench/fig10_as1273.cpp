// Fig. 10 — Tunnel classification for AS1273 (Vodafone), cycles 1-60.
//
// Paper shapes: MPLS usage for transit grows over time; the Multi-FEC class
// dominates and grows at the expense of Mono-LSP; Mono-FEC (ECMP) almost
// invisible; the AS's labels churn at high frequency (the dynamic tag from
// the Persistence reinjection rule — see also Fig. 17).
#include "as_series.h"
#include "gen/profiles.h"

int main() {
  using namespace mum;
  return bench::run_as_series_bench(
      "Fig. 10 — AS1273 (Vodafone) tunnel classification",
      gen::kAsnVodafone, [](const lpr::LongitudinalReport& report) {
        const auto asn = gen::kAsnVodafone;
        const double early_multi = bench::avg_share(
            report, asn, 0, 14, &lpr::ClassCounts::multi_fec);
        const double late_multi = bench::avg_share(
            report, asn, 45, 59, &lpr::ClassCounts::multi_fec);
        const double late_monofec = bench::avg_share(
            report, asn, 45, 59, &lpr::ClassCounts::mono_fec);
        bench::check(late_multi > 0.5, "Multi-FEC dominant late (share " +
                                           util::TextTable::fmt(late_multi, 2) +
                                           ")");
        bench::check(late_multi > early_multi,
                     "Multi-FEC grows over time (" +
                         util::TextTable::fmt(early_multi, 2) + " -> " +
                         util::TextTable::fmt(late_multi, 2) + ")");
        bench::check(late_monofec < 0.1,
                     "Mono-FEC (ECMP) almost invisible (share " +
                         util::TextTable::fmt(late_monofec, 2) + ")");
        bench::check(bench::avg_iotps(report, asn, 40, 59) >
                         bench::avg_iotps(report, asn, 0, 19),
                     "IOTP count grows over the years");
        int dynamic_cycles = 0;
        for (const auto& point : report.as_series(asn)) {
          dynamic_cycles += point.dynamic_tag ? 1 : 0;
        }
        bench::check(dynamic_cycles > 40,
                     "tagged dynamic in most cycles (" +
                         std::to_string(dynamic_cycles) + "/60)");
      });
}
