// Fig. 12 — Tunnel classification for AS6453 (Tata Communications),
// cycles 1-60.
//
// Paper shapes: almost no Multi-FEC; a strong (though declining) usage of
// Mono-FEC — topology properties enabling a large use of ECMP.
#include "as_series.h"
#include "gen/profiles.h"

int main() {
  using namespace mum;
  return bench::run_as_series_bench(
      "Fig. 12 — AS6453 (Tata Communications) tunnel classification",
      gen::kAsnTata, [](const lpr::LongitudinalReport& report) {
        const auto asn = gen::kAsnTata;
        const double multi = bench::avg_share(
            report, asn, 0, 59, &lpr::ClassCounts::multi_fec);
        const double monofec = bench::avg_share(
            report, asn, 0, 59, &lpr::ClassCounts::mono_fec);
        bench::check(multi < 0.08, "almost no Multi-FEC (share " +
                                       util::TextTable::fmt(multi, 3) + ")");
        bench::check(monofec > 0.25,
                     "strong Mono-FEC / ECMP usage (share " +
                         util::TextTable::fmt(monofec, 2) + ")");
        const double early_iotps = bench::avg_iotps(report, asn, 0, 14);
        const double late_iotps = bench::avg_iotps(report, asn, 45, 59);
        bench::check(late_iotps < early_iotps * 1.1,
                     "MPLS usage not growing (declining coverage)");
      });
}
