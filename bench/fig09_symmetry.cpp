// Fig. 9 — IOTP symmetry distribution (cycle 60), Mono-FEC vs Multi-FEC.
//
// Symmetry = length(longest branch) - length(shortest branch); 0 means the
// IOTP is balanced. Paper shape: ~80% of IOTPs balanced in BOTH classes —
// ECMP paths tend to have equal hop counts, and Multi-FEC LSPs mostly ride
// the very same IP path (differing only in labels).
#include <iostream>

#include "common.h"
#include "core/metrics.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  const int cycle = gen::cycle_of(2014, 12);
  std::cout << "Fig. 9 — IOTP symmetry distribution, cycle " << cycle + 1
            << " (" << gen::cycle_date(cycle) << ")\n\n";

  const lpr::CycleReport report = study.run_cycle(cycle);
  const auto mono =
      lpr::symmetry_distribution(report.iotps, lpr::TunnelClass::kMonoFec);
  const auto multi =
      lpr::symmetry_distribution(report.iotps, lpr::TunnelClass::kMultiFec);

  util::TextTable table({"symmetry", "Mono-FEC pdf", "Multi-FEC pdf"});
  const std::int64_t max_key = std::max(mono.max_key(), multi.max_key());
  for (std::int64_t s = 0; s <= std::max<std::int64_t>(max_key, 4); ++s) {
    table.add_row({std::to_string(s), util::TextTable::fmt(mono.pdf(s), 3),
                   util::TextTable::fmt(multi.pdf(s), 3)});
  }
  std::cout << table << '\n';

  const double balanced_mono =
      lpr::balanced_share(report.iotps, lpr::TunnelClass::kMonoFec);
  const double balanced_multi =
      lpr::balanced_share(report.iotps, lpr::TunnelClass::kMultiFec);
  std::cout << "balanced share: Mono-FEC "
            << util::TextTable::fmt(balanced_mono, 3) << ", Multi-FEC "
            << util::TextTable::fmt(balanced_multi, 3)
            << "  (paper: ~0.80 for both)\n";
  const bool ok = balanced_mono > 0.7 && balanced_multi > 0.7;
  std::cout << (ok ? "[mostly balanced in both classes, as in the paper]"
                   : "[balance shape mismatch]")
            << '\n';
  return 0;
}
