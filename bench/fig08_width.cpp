// Fig. 8 — IOTP width distribution (cycle 60).
//
//  (a) all classes: width = number of branches (physically or logically
//      different LSPs). Paper shape: most IOTPs narrow — ~56% have width 1
//      (the Mono-LSP class) — with a small very-wide tail.
//  (b) Mono-FEC vs Multi-FEC: nearly the same distribution, tail slightly
//      dominated by Multi-FEC — the paper's surprising "TE does not use
//      much more path diversity than plain ECMP" observation.
#include <iostream>

#include "common.h"
#include "core/metrics.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  const int cycle = gen::cycle_of(2014, 12);
  std::cout << "Fig. 8 — IOTP width distribution, cycle " << cycle + 1
            << " (" << gen::cycle_date(cycle) << ")\n\n";

  const lpr::CycleReport report = study.run_cycle(cycle);

  std::cout << "(a) all classes\n";
  const auto widths = lpr::width_distribution(report.iotps);
  bench::print_pdf(std::cout, widths, "width", /*clamp_at=*/10);
  std::cout << "\nwidth-1 share: "
            << util::TextTable::fmt(widths.pdf(1), 3)
            << " (paper: ~0.56); max width: " << widths.max_key() << "\n\n";

  std::cout << "(b) Mono-FEC vs Multi-FEC\n";
  const auto mono =
      lpr::width_distribution(report.iotps, lpr::TunnelClass::kMonoFec);
  const auto multi =
      lpr::width_distribution(report.iotps, lpr::TunnelClass::kMultiFec);
  util::TextTable table({"width", "Mono-FEC pdf", "Multi-FEC pdf"});
  for (std::int64_t w = 2; w <= 10; ++w) {
    const double pm = w == 10 ? 1.0 - mono.cdf(9) : mono.pdf(w);
    const double px = w == 10 ? 1.0 - multi.cdf(9) : multi.pdf(w);
    table.add_row({(w == 10 ? ">= 10" : std::to_string(w)),
                   util::TextTable::fmt(pm, 3), util::TextTable::fmt(px, 3)});
  }
  std::cout << table;

  // Similarity check: mean widths of the two classes should be close.
  auto mean_width = [](const util::Histogram& h) {
    double sum = 0;
    for (const auto& [k, v] : h.buckets()) {
      sum += static_cast<double>(k) * static_cast<double>(v);
    }
    return h.total() ? sum / static_cast<double>(h.total()) : 0.0;
  };
  const double wm = mean_width(mono);
  const double wx = mean_width(multi);
  std::cout << "\nmean width: Mono-FEC " << util::TextTable::fmt(wm, 2)
            << ", Multi-FEC " << util::TextTable::fmt(wx, 2)
            << (std::abs(wm - wx) < 1.5
                    ? "  [similar, as in the paper]"
                    : "  [distributions diverge]")
            << '\n';
  return 0;
}
