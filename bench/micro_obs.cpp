// Telemetry overhead: the two hot-path primitives (sharded counter add,
// log2 histogram record) in isolation, then the number that matters — a
// small end-to-end campaign with telemetry fully on (JSONL trace sink
// installed, registry dumped) vs fully off. scripts/bench.sh records the
// report in BENCH_PR7.json and gates telemetry-on at <= 3% slower.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <ostream>
#include <streambuf>
#include <string>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "run/runner.h"

namespace {

using namespace mum;

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter counter;
  std::uint64_t i = 0;
  for (auto _ : state) {
    counter.add(++i % 7);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram histogram;
  std::uint64_t i = 0;
  for (auto _ : state) {
    histogram.record(++i * 97);
  }
  benchmark::DoNotOptimize(histogram.snapshot().count);
}
BENCHMARK(BM_HistogramRecord);

// The campaign pair shares one Runner (the internet build is setup, not
// the measured work) and the --small CLI shape, two cycles per iteration.
run::RunnerConfig bench_config() {
  run::RunnerConfig config;
  config.gen.background_transit = 8;
  config.gen.stub_ases = 12;
  config.gen.monitors = 6;
  config.gen.dests_per_monitor = 150;
  config.first_cycle = 50;
  config.last_cycle = 51;
  config.threads = 1;
  return config;
}

const run::Runner& bench_runner() {
  static const run::Runner runner(bench_config());
  return runner;
}

void BM_CampaignTelemetryOff(benchmark::State& state) {
  const run::Runner& runner = bench_runner();
  for (auto _ : state) {
    const auto outcome = runner.run_all_contained();
    benchmark::DoNotOptimize(outcome.report.cycles.size());
  }
}
BENCHMARK(BM_CampaignTelemetryOff)->Unit(benchmark::kMillisecond);

// Discards bytes but still exercises the whole serialization path.
struct NullBuffer : std::streambuf {
  int overflow(int c) override { return c; }
};

void BM_CampaignTelemetryOn(benchmark::State& state) {
  const run::Runner& runner = bench_runner();
  NullBuffer buffer;
  std::ostream null_stream(&buffer);
  obs::TraceLog trace(null_stream);
  obs::set_trace(&trace);
  obs::registry().reset();
  for (auto _ : state) {
    const auto outcome = runner.run_all_contained();
    benchmark::DoNotOptimize(outcome.report.cycles.size());
  }
  // The --telemetry dump is part of what "telemetry on" costs.
  const std::string snapshot = obs::registry().to_json();
  benchmark::DoNotOptimize(snapshot.size());
  obs::set_trace(nullptr);
}
BENCHMARK(BM_CampaignTelemetryOn)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
