#include "common.h"

#include <ostream>

#include "gen/profiles.h"
#include "util/stats.h"
#include "util/table.h"

namespace mum::bench {

StudyConfig default_study() {
  StudyConfig config;
  // Defaults in RunnerConfig (and the GenConfig/CampaignConfig/
  // PipelineConfig it holds) are the paper configuration (j = 2, full
  // fleet, one thread per hardware thread); nothing to override here. Kept
  // as a function so ablation benches can start from the canonical point.
  return config;
}

std::string class_shares_line(const lpr::ClassCounts& counts) {
  const double total = static_cast<double>(counts.total());
  auto share = [&](std::uint64_t n) {
    return util::TextTable::fmt(total > 0 ? n / total : 0.0, 3);
  };
  return "Mono-LSP " + share(counts.mono_lsp) + "  Multi-FEC " +
         share(counts.multi_fec) + "  Mono-FEC " + share(counts.mono_fec) +
         "  Unclass. " + share(counts.unclassified);
}

void print_pdf(std::ostream& os, const util::Histogram& hist,
               const std::string& key_header, std::int64_t clamp_at) {
  util::TextTable table({key_header, "pdf", ""});
  for (const auto& [key, p] : hist.pdf_rows(clamp_at)) {
    std::string label = std::to_string(key);
    if (clamp_at >= 0 && key == clamp_at && hist.max_key() > clamp_at) {
      label = ">= " + label;
    }
    table.add_row({label, util::TextTable::fmt(p, 3),
                   util::ascii_bar(p, 36)});
  }
  os << table;
}

void print_as_series(std::ostream& os, const lpr::LongitudinalReport& report,
                     std::uint32_t asn) {
  util::TextTable table({"cycle", "date", "IOTPs", "Mono-LSP", "Multi-FEC",
                         "Mono-FEC", "Unclass.", "dyn"});
  for (const auto& point : report.as_series(asn)) {
    const auto& c = point.counts;
    const double total = static_cast<double>(c.total());
    auto pct = [&](std::uint64_t n) {
      return total > 0 ? util::TextTable::fmt(n / total, 2) : std::string("-");
    };
    table.add_row({std::to_string(point.cycle_id + 1),  // paper is 1-based
                   gen::cycle_date(static_cast<int>(point.cycle_id)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       c.total())),
                   pct(c.mono_lsp), pct(c.multi_fec), pct(c.mono_fec),
                   pct(c.unclassified), point.dynamic_tag ? "*" : ""});
  }
  os << table;
}

}  // namespace mum::bench
