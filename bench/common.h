// Shared harness for the paper-reproduction benches. The heavy lifting
// (internet construction, month generation, the LPR pipeline, longitudinal
// sweeps) lives in the library-level Runner API (run/runner.h); this header
// is a thin adapter keeping the historical Study/StudyConfig names alive for
// the fig*/table* binaries, plus the table/series printers they share.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "run/runner.h"
#include "util/stats.h"

namespace mum::bench {

// The old bench-private Study grew into run::Runner; these aliases keep the
// 18 bench binaries (and out-of-tree scripts patterned on them) compiling.
using StudyConfig = run::RunnerConfig;
using Study = run::Runner;

// The standard configuration all paper benches share (the "dataset" of this
// reproduction). Deterministic: same seed => same numbers, at any thread
// count.
StudyConfig default_study();

// --- printers -----------------------------------------------------------

// "Mono-LSP 0.56  Multi-FEC 0.20 ..." share line for one ClassCounts.
std::string class_shares_line(const lpr::ClassCounts& counts);

// Render an integer-keyed PDF as rows "key  pdf  bar".
void print_pdf(std::ostream& os, const util::Histogram& hist,
               const std::string& key_header, std::int64_t clamp_at = -1);

// The standard two-pane per-AS longitudinal rendering of Figs. 10-15:
// per cycle, class shares (upper pane) + IOTP count (lower pane).
void print_as_series(std::ostream& os, const lpr::LongitudinalReport& report,
                     std::uint32_t asn);

}  // namespace mum::bench
