// Shared harness for the paper-reproduction benches: builds the synthetic
// internet once, runs probing months through the LPR pipeline, and provides
// the table/series printers every fig*/table* binary uses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/report.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "util/stats.h"

namespace mum::bench {

struct StudyConfig {
  gen::GenConfig gen;
  gen::CampaignConfig campaign;
  lpr::PipelineConfig pipeline;
  int first_cycle = 0;
  int last_cycle = gen::kCycles - 1;  // inclusive
  // Fleet-size anomalies per (0-based) cycle: the paper's dataset shows two
  // dips "caused by measurement issues in the Archipelago infrastructure"
  // at cycles 23 and 58 (1-based) — modelled as a reduced monitor share.
  std::map<int, double> fleet_share_by_cycle = {{22, 0.55}, {57, 0.6}};
};

// The standard configuration all paper benches share (the "dataset" of this
// reproduction). Deterministic: same seed => same numbers.
StudyConfig default_study();

class Study {
 public:
  explicit Study(const StudyConfig& config);

  const StudyConfig& config() const noexcept { return config_; }
  const gen::Internet& internet() const noexcept { return internet_; }
  const dataset::Ip2As& ip2as() const noexcept { return ip2as_; }

  // Generate one month of data and run the LPR pipeline on it.
  lpr::CycleReport run_cycle(int cycle) const;
  // Month data only (for benches that sweep pipeline configs over fixed
  // data, like the Fig. 6 persistence sweep).
  dataset::MonthData month_data(int cycle) const;

  // Run the whole configured cycle range.
  lpr::LongitudinalReport run_all(std::ostream* progress = nullptr) const;

 private:
  StudyConfig config_;
  gen::Internet internet_;
  dataset::Ip2As ip2as_;
};

// --- printers -----------------------------------------------------------

// "Mono-LSP 0.56  Multi-FEC 0.20 ..." share line for one ClassCounts.
std::string class_shares_line(const lpr::ClassCounts& counts);

// Render an integer-keyed PDF as rows "key  pdf  bar".
void print_pdf(std::ostream& os, const util::Histogram& hist,
               const std::string& key_header, std::int64_t clamp_at = -1);

// The standard two-pane per-AS longitudinal rendering of Figs. 10-15:
// per cycle, class shares (upper pane) + IOTP count (lower pane).
void print_as_series(std::ostream& os, const lpr::LongitudinalReport& report,
                     std::uint32_t asn);

}  // namespace mum::bench
