// Fig. 5 — Global deployment of MPLS in the dataset.
//
//  (a) per cycle, the proportion of traceroutes traversing at least one
//      explicit MPLS tunnel (before any filtering);
//  (b) per cycle, the number of unique IP addresses used in MPLS and not
//      used in MPLS.
//
// Paper shapes this bench must reproduce:
//  * significant increase over the five years;
//  * a ~10% bump in the tunnel-traversal share starting around cycle 29
//    (Level3's rollout) and a decrease at the end (its decline);
//  * MPLS IPs grow much faster than non-MPLS IPs (paper: +60% vs +21%);
//  * dips at cycles 23 and 58 from Archipelago measurement issues.
#include <iostream>

#include "common.h"
#include "core/extract.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  std::cout << "Fig. 5 — global MPLS deployment, cycles 1-60\n\n";

  util::TextTable table({"cycle", "date", "traces", "w/ tunnel", "share",
                         "", "MPLS IPs", "non-MPLS IPs"});
  double first_share = 0, last_share = 0;
  std::uint64_t first_mpls = 0, last_mpls = 0;
  std::uint64_t first_plain = 0, last_plain = 0;

  for (int cycle = study.config().first_cycle;
       cycle <= study.config().last_cycle; ++cycle) {
    const dataset::MonthData month = study.month_data(cycle);
    const lpr::ExtractedSnapshot extracted =
        lpr::extract_lsps(month.cycle(), study.ip2as());
    const auto& s = extracted.stats;
    const double share =
        s.traces_total
            ? static_cast<double>(s.traces_with_explicit_tunnel) /
                  static_cast<double>(s.traces_total)
            : 0.0;
    table.add_row({std::to_string(cycle + 1), month.date,
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       s.traces_total)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       s.traces_with_explicit_tunnel)),
                   util::TextTable::fmt(share, 3), util::ascii_bar(share, 24),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       s.mpls_ips)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       s.non_mpls_ips))});
    if (cycle == study.config().first_cycle) {
      first_share = share;
      first_mpls = s.mpls_ips;
      first_plain = s.non_mpls_ips;
    }
    if (cycle == study.config().last_cycle - 6) {  // before the L3 decline
      last_share = share;
      last_mpls = s.mpls_ips;
      last_plain = s.non_mpls_ips;
    }
  }
  std::cout << table << '\n';

  const double mpls_growth =
      first_mpls ? static_cast<double>(last_mpls) /
                       static_cast<double>(first_mpls) -
                       1.0
                 : 0.0;
  const double plain_growth =
      first_plain ? static_cast<double>(last_plain) /
                        static_cast<double>(first_plain) -
                        1.0
                  : 0.0;
  std::cout << "Summary (cycle 1 -> 54):\n"
            << "  tunnel-traversal share: " << util::TextTable::fmt(first_share, 3)
            << " -> " << util::TextTable::fmt(last_share, 3)
            << (last_share > first_share ? "  [increasing, as in the paper]"
                                         : "  [NOT increasing]")
            << '\n'
            << "  MPLS IP growth " << util::TextTable::fmt_pct(mpls_growth)
            << " vs non-MPLS IP growth "
            << util::TextTable::fmt_pct(plain_growth)
            << (mpls_growth > plain_growth
                    ? "  [MPLS grows faster, as in the paper]"
                    : "  [shape mismatch]")
            << '\n';
  return 0;
}
