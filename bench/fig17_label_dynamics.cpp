// Fig. 17 — Label range evolution in case of Multi-FEC tunnels of AS1273
// (Vodafone), as seen from a single vantage point ("Strasbourg"): one
// destination traced every two minutes for 600 minutes, monitoring the
// labels quoted by the two LSRs of one LSP.
//
// Paper shapes this bench must reproduce:
//  * sawtooth: labels increase almost periodically (the ingress
//    re-optimizes the LSP on a timer — Juniper behaviour) and wrap to the
//    bottom of the label range when the pool is exhausted;
//  * labels stay inside the vendor window (~300000..800000);
//  * the second LSR's curve evolves FASTER than the first's — it is
//    traversed by more LSPs, so its pool is consumed at a higher rate;
//  * occasional irregular steps on top of the periodic ones (event-driven
//    re-signalling).
#include <iostream>
#include <optional>

#include "common.h"
#include "core/extract.h"
#include "gen/campaign.h"
#include "gen/profiles.h"
#include "probe/traceroute.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::StudyConfig config = bench::default_study();
  bench::Study study(config);
  const int cycle = gen::cycle_of(2014, 6);
  gen::MonthContext ctx = study.internet().instantiate(cycle);

  std::cout << "Fig. 17 — RSVP-TE label dynamics in AS1273 (Vodafone)\n\n";

  // The Strasbourg vantage point: re-use monitor 0 (it sits in Vodafone's
  // customer cone) and find a destination whose trace crosses a >=2-LSR
  // Vodafone tunnel.
  const probe::Monitor& monitor = study.internet().monitors().front();
  std::optional<gen::Destination> target;
  std::vector<net::Ipv4Addr> lsr_addrs;
  for (const auto& dest : study.internet().destinations()) {
    const auto path = study.internet().path_spec(monitor, dest, ctx);
    if (!path) continue;
    util::Rng rng(1);
    probe::TraceOptions options;
    options.reply_loss = 0.0;
    const auto trace = probe::trace_route(monitor, *path, options, rng);
    dataset::Snapshot snap;
    snap.traces.push_back(trace);
    study.ip2as().annotate(snap.traces);
    const auto extracted = lpr::extract_lsps(snap, study.ip2as());
    for (const auto& obs : extracted.observations) {
      if (obs.lsp.asn == gen::kAsnVodafone && obs.lsp.lsrs.size() >= 2) {
        target = dest;
        lsr_addrs = {obs.lsp.lsrs[0].addr, obs.lsp.lsrs[1].addr};
        break;
      }
    }
    if (target) break;
  }
  if (!target) {
    std::cout << "no 2-LSR Vodafone tunnel reachable from the vantage "
                 "point — nothing to monitor\n";
    return 1;
  }
  std::cout << "monitoring LSP toward " << target->addr << " (LSR1 "
            << lsr_addrs[0] << ", LSR2 " << lsr_addrs[1] << ")\n\n";

  // High-frequency campaign: one probe every 2 minutes for 600 minutes.
  // The ingress re-optimizes its LSPs roughly every 30 minutes (plus rare
  // event-driven re-signalling).
  constexpr int kIntervalMin = 2;
  constexpr int kTotalMin = 600;
  constexpr int kReoptPeriodMin = 30;
  // Scale substitution: the probed LSPs are a tiny sample of the AS's
  // production LSP population — the paper's Vodafone sweeps its whole
  // ~500k-label window within hours, which needs thousands of LSPs churning.
  // Each periodic tick therefore re-signs the (simulated) mesh this many
  // times, standing in for the unobserved production mesh.
  constexpr int kProductionScale = 1500;

  util::TextTable table({"t(min)", "label LSR1", "label LSR2"});
  util::Rng noise(42);
  std::uint32_t prev1 = 0, prev2 = 0;
  int steps1 = 0, steps2 = 0;
  std::int64_t gain1 = 0, gain2 = 0;
  bool wrapped = false;

  for (int t = 0; t <= kTotalMin; t += kIntervalMin) {
    if (t > 0 && t % kReoptPeriodMin == 0) {
      // Periodic (timer-driven) re-optimization at production scale.
      for (int k = 0; k < kProductionScale; ++k) ctx.advance_dynamics(noise);
    } else if (t > 0 && noise.chance(0.02)) {
      // Factual (event-driven) re-signalling: smaller, irregular steps.
      for (int k = 0; k < kProductionScale / 10; ++k) {
        ctx.advance_dynamics(noise);
      }
    }
    const auto path = study.internet().path_spec(monitor, *target, ctx);
    probe::TraceOptions options;
    options.reply_loss = 0.0;
    util::Rng rng(static_cast<std::uint64_t>(t) + 7);
    const auto trace = probe::trace_route(monitor, *path, options, rng);

    std::uint32_t l1 = 0, l2 = 0;
    for (const auto& hop : trace.hops) {
      if (hop.addr == lsr_addrs[0] && hop.has_labels()) {
        l1 = hop.labels.top().label();
      }
      if (hop.addr == lsr_addrs[1] && hop.has_labels()) {
        l2 = hop.labels.top().label();
      }
    }
    table.add_row({std::to_string(t), std::to_string(l1),
                   std::to_string(l2)});

    // Forward movement through the (wrapping) label range: labels only
    // ever advance, so a numeric drop is a wrap.
    constexpr std::int64_t kSpan = 800000 - 300000 + 1;
    if (prev1 != 0 && l1 != 0 && l1 != prev1) {
      ++steps1;
      gain1 += (static_cast<std::int64_t>(l1) - prev1 + kSpan) % kSpan;
      if (l1 < prev1) wrapped = true;
    }
    if (prev2 != 0 && l2 != 0 && l2 != prev2) {
      ++steps2;
      gain2 += (static_cast<std::int64_t>(l2) - prev2 + kSpan) % kSpan;
      if (l2 < prev2) wrapped = true;
    }
    if (l1) prev1 = l1;
    if (l2) prev2 = l2;
  }
  std::cout << table << '\n';

  std::cout << "label changes: LSR1 " << steps1 << " steps (forward "
            << gain1 << "), LSR2 " << steps2 << " steps (forward " << gain2
            << ")\n";
  std::cout << (steps1 > 10 ? "[periodic re-optimization visible]"
                            : "[NO periodic churn]")
            << '\n';
  std::cout << (gain2 > gain1
                    ? "[LSR2 consumes labels faster — more LSPs traverse "
                      "it, as in the paper]"
                    : "[LSR2 not faster than LSR1]")
            << '\n';
  std::cout << (wrapped ? "[label wrap observed (sawtooth)]"
                        : "[no wrap within the window (sawtooth rising "
                          "edge only)]")
            << '\n';
  return 0;
}
