// Fig. 16 — The rise of MPLS deployment in AS3356 (Level3): daily data for
// April 2012, the month prior to the paper's 29th cycle.
//
// Paper shapes:
//  * the deployment starts around April 15th and takes about half a month
//    (incremental rollout, not an abrupt transition);
//  * the number of LSPs barely differs before/after filtering while the
//    number of IOTPs does (LSPs are shared by several IOTPs);
//  * day-to-day wobble in the counts from the varying number of vantage
//    points.
//
// No Persistence filter is used here (as in the paper).
#include <iostream>

#include "common.h"
#include "gen/profiles.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::StudyConfig config = bench::default_study();
  bench::Study study(config);

  const int april_2012 = gen::cycle_of(2012, 4);
  constexpr int kDays = 30;
  std::cout << "Fig. 16 — AS3356 (Level3) daily deployment, April 2012\n"
            << "(generating " << kDays << " daily campaigns...)\n\n";

  const auto days =
      gen::CampaignRunner(study.internet(), study.ip2as(), config.campaign)
          .daily_month(april_2012, kDays);

  lpr::PipelineConfig pipeline;
  pipeline.filter.enable_persistence = false;

  util::TextTable table({"day", "LSPs before", "LSPs after", "IOTPs before",
                         "IOTPs after", ""});
  std::uint64_t first_half_lsps = 0, second_half_lsps = 0;
  std::uint64_t plateau_iotps_after = 0;

  for (int day = 1; day <= kDays; ++day) {
    const auto& snap = days[static_cast<std::size_t>(day - 1)];
    const auto extracted = lpr::extract_lsps(snap, study.ip2as());

    // "Before filtering": complete Level3 LSP observations and their IOTPs.
    std::uint64_t lsps_before = 0;
    std::set<lpr::IotpKey> iotps_before;
    for (const auto& obs : extracted.observations) {
      if (obs.lsp.asn != gen::kAsnLevel3) continue;
      ++lsps_before;
      iotps_before.insert(
          lpr::IotpKey{obs.lsp.asn, obs.lsp.ingress, obs.lsp.egress});
    }

    // "After filtering": run the (persistence-less) pipeline, then count.
    const lpr::CycleReport report =
        lpr::run_pipeline(extracted, {}, pipeline);
    std::uint64_t lsps_after = 0;
    std::uint64_t iotps_after = 0;
    for (const auto& rec : report.iotps) {
      if (rec.key.asn != gen::kAsnLevel3) continue;
      ++iotps_after;
      lsps_after += rec.variants.size();
    }

    table.add_row(
        {std::to_string(day),
         util::TextTable::fmt_int(static_cast<std::int64_t>(lsps_before)),
         util::TextTable::fmt_int(static_cast<std::int64_t>(lsps_after)),
         util::TextTable::fmt_int(static_cast<std::int64_t>(
             iotps_before.size())),
         util::TextTable::fmt_int(static_cast<std::int64_t>(iotps_after)),
         util::ascii_bar(static_cast<double>(lsps_before) / 400.0, 20)});

    if (day <= 14) first_half_lsps += lsps_before;
    if (day >= 16) second_half_lsps += lsps_before;
    if (day >= 28) plateau_iotps_after += iotps_after;
  }
  std::cout << table << '\n';

  std::cout << "LSPs observed April 1-14: " << first_half_lsps
            << "; April 16-30: " << second_half_lsps << '\n';
  std::cout << (first_half_lsps == 0 && second_half_lsps > 100
                    ? "[deployment starts mid-month and ramps up, as in the "
                      "paper]"
                    : "[SHAPE MISMATCH]")
            << '\n';
  std::cout << (plateau_iotps_after > 0
                    ? "[IOTPs visible by end of month]"
                    : "[no IOTPs at end of month]")
            << '\n';
  return 0;
}
