// Fig. 13 — Split between "Routers Disjoint" and "Parallel Links" within
// the Mono-FEC class of AS6453 (Tata Communications), cycles 1-60.
//
// Paper shape: over time Tata's Mono-FEC tunnels rest mostly on parallel
// links — between 60 and 70% of the Mono-FEC IOTPs fall in the Parallel
// Links subclass.
#include <iostream>

#include "common.h"
#include "gen/profiles.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  std::cout << "Fig. 13 — AS6453 Mono-FEC sub-split (Parallel Links vs "
               "Routers Disjoint)\n(running the 60-cycle study...)\n\n";
  const lpr::LongitudinalReport report = study.run_all();
  std::cout << '\n';

  util::TextTable table({"cycle", "date", "Mono-FEC", "parallel", "disjoint",
                         "parallel share", ""});
  double parallel_sum = 0;
  int n_cycles = 0;
  for (const auto& point : report.as_series(gen::kAsnTata)) {
    const auto& c = point.counts;
    if (c.mono_fec == 0) {
      table.add_row({std::to_string(point.cycle_id + 1),
                     gen::cycle_date(static_cast<int>(point.cycle_id)), "0",
                     "-", "-", "-", ""});
      continue;
    }
    const double share = static_cast<double>(c.parallel_links) /
                         static_cast<double>(c.mono_fec);
    parallel_sum += share;
    ++n_cycles;
    table.add_row({std::to_string(point.cycle_id + 1),
                   gen::cycle_date(static_cast<int>(point.cycle_id)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       c.mono_fec)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       c.parallel_links)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(
                       c.routers_disjoint)),
                   util::TextTable::fmt(share, 2),
                   util::ascii_bar(share, 20)});
  }
  std::cout << table << '\n';

  const double avg = n_cycles ? parallel_sum / n_cycles : 0.0;
  std::cout << "average Parallel-Links share of Mono-FEC: "
            << util::TextTable::fmt(avg, 2) << " (paper: 0.60-0.70)\n"
            << (avg > 0.5 ? "[parallel links dominate, as in the paper]"
                          : "[SHAPE MISMATCH]")
            << '\n';
  return 0;
}
