// Ablation — IP-level vs router-level IOTPs (the paper's Sec.-5 alias-
// resolution extension: "it will reduce the number of IOTPs and so provide
// more consistent results that may be closer to the actual MPLS usage").
//
// Runs the cycle-60 data through LPR twice: once as published (IOTPs keyed
// by interface addresses) and once after passive alias resolution rewrites
// every address to its router representative. Reports the IOTP count
// reduction, the classification shift, and the alias inference's precision
// against the simulator's ground truth.
#include <iostream>
#include <map>

#include "common.h"
#include "core/alias.h"
#include "gen/profiles.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  const int cycle = gen::cycle_of(2014, 12);
  std::cout << "Ablation — IP-level vs router-level IOTPs, cycle "
            << cycle + 1 << "\n\n";

  const auto month = study.month_data(cycle);
  const auto extracted = lpr::extract_lsps(month.cycle(), study.ip2as());
  std::vector<lpr::ExtractedSnapshot> following;
  for (std::size_t i = 1; i < month.snapshots.size(); ++i) {
    following.push_back(lpr::extract_lsps(month.snapshots[i],
                                          study.ip2as()));
  }
  const auto filtered =
      lpr::apply_filters(extracted, following, lpr::FilterConfig{});

  // Passive alias inference (label rule + /31 alignment rule).
  const lpr::LabelAliasResolver resolver(filtered.observations,
                                         month.cycle().traces);

  // Precision against the simulator's ground truth.
  std::map<net::Ipv4Addr, net::Ipv4Addr> truth;
  for (const std::uint32_t asn : study.internet().modeled_asns()) {
    const auto* as = study.internet().modeled(asn);
    for (const auto& link : as->topo.links()) {
      truth[link.a_iface] = as->topo.router(link.a).loopback;
      truth[link.b_iface] = as->topo.router(link.b).loopback;
    }
  }
  const auto accuracy = lpr::evaluate_aliases(resolver.alias_sets(), truth);
  std::cout << "alias inference: " << resolver.alias_sets().size()
            << " sets, " << accuracy.inferred_pairs << " pairs, precision "
            << util::TextTable::fmt(accuracy.precision(), 3)
            << " (vs simulator ground truth)\n\n";

  // Classify at both granularities.
  auto ip_level = lpr::group_iotps(filtered.observations);
  const auto ip_counts = lpr::classify_all(ip_level);
  auto router_level = lpr::group_iotps(
      lpr::to_router_level(filtered.observations, resolver));
  const auto router_counts = lpr::classify_all(router_level);

  util::TextTable table({"metric", "IP level", "router level"});
  auto row = [&](const char* name, std::uint64_t a, std::uint64_t b) {
    table.add_row({name,
                   util::TextTable::fmt_int(static_cast<std::int64_t>(a)),
                   util::TextTable::fmt_int(static_cast<std::int64_t>(b))});
  };
  row("IOTPs", ip_counts.total(), router_counts.total());
  row("Mono-LSP", ip_counts.mono_lsp, router_counts.mono_lsp);
  row("Multi-FEC", ip_counts.multi_fec, router_counts.multi_fec);
  row("Mono-FEC", ip_counts.mono_fec, router_counts.mono_fec);
  row("Unclassified", ip_counts.unclassified, router_counts.unclassified);
  std::cout << table << '\n';

  auto share = [](const lpr::ClassCounts& c, std::uint64_t n) {
    return c.total() ? static_cast<double>(n) /
                           static_cast<double>(c.total())
                     : 0.0;
  };
  const bool fewer = router_counts.total() < ip_counts.total();
  const bool precise = accuracy.precision() > 0.85;
  // Router-level merging joins fragmented single-branch IOTPs into multi-
  // branch ones: the Mono-LSP share should not rise.
  const bool more_diversity =
      share(router_counts, router_counts.mono_lsp) <=
      share(ip_counts, ip_counts.mono_lsp) + 0.02;
  std::cout << (fewer ? "[ok] fewer IOTPs at router level ("
                      : "[MISMATCH] IOTP count did not drop (")
            << ip_counts.total() << " -> " << router_counts.total()
            << ")\n"
            << (precise ? "[ok] passive alias inference is precise\n"
                        : "[MISMATCH] alias inference too noisy\n")
            << (more_diversity
                    ? "[ok] merged IOTPs expose at least as much diversity "
                      "(Mono-LSP share does not rise)\n"
                    : "[MISMATCH] router-level Mono-LSP share rose\n");
  return 0;
}
