// Table 1 — Cumulative average (and 95% confidence interval), over the 60
// cycles, of the proportion of LSPs remaining after applying each filter.
//
// Paper row targets (share of observed LSPs):
//   Incomplete-LSP rejection   0.853 +/- 0.01
//   IntraAS                    0.844 +/- 0.01
//   TargetAS                   0.717 +/- 0.009
//   TransitDiversity           0.644 +/- 0.009
//   Persistence (j = 2)        0.534 +/- 0.007
//
// The ordering (Incomplete strongest; IntraAS ~1%; TargetAS and
// TransitDiversity each double-digit; Persistence ~10% of the remainder) is
// the shape this bench must reproduce.
#include <iostream>

#include "common.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mum;

  bench::Study study(bench::default_study());
  std::cout << "Table 1 — filter impact, averaged over cycles 1-60\n"
            << "(generating and filtering 60 monthly campaigns...)\n\n";

  util::Accumulator complete, intra, target, diversity, persistence;
  std::uint64_t observed_sum = 0;

  for (int cycle = study.config().first_cycle;
       cycle <= study.config().last_cycle; ++cycle) {
    const lpr::CycleReport report = study.run_cycle(cycle);
    const auto& f = report.filter_stats;
    if (f.observed == 0) continue;
    const double n = static_cast<double>(f.observed);
    complete.add(static_cast<double>(f.complete) / n);
    intra.add(static_cast<double>(f.after_intra_as) / n);
    target.add(static_cast<double>(f.after_target_as) / n);
    diversity.add(static_cast<double>(f.after_transit_diversity) / n);
    persistence.add(static_cast<double>(f.after_persistence) / n);
    observed_sum += f.observed;
  }

  util::TextTable table({"Filter", "Average", "+/- CI95", "paper"});
  auto row = [&](const char* name, const util::Accumulator& acc,
                 const char* paper) {
    table.add_row({name, util::TextTable::fmt(acc.mean(), 3),
                   util::TextTable::fmt(acc.ci95_halfwidth(), 3), paper});
  };
  row("Incomplete LSPs", complete, "0.853 +/-0.01");
  row("IntraAS", intra, "0.844 +/-0.01");
  row("TargetAS", target, "0.717 +/-0.009");
  row("TransitDiversity", diversity, "0.644 +/-0.009");
  row("Persistence", persistence, "0.534 +/-0.007");
  std::cout << table << '\n';
  std::cout << "On average, a cycle contains "
            << observed_sum / static_cast<std::uint64_t>(
                                  study.config().last_cycle -
                                  study.config().first_cycle + 1)
            << " LSPs before filtering (paper: 14e6 at Ark scale).\n";

  const bool ordered = complete.mean() >= intra.mean() &&
                       intra.mean() >= target.mean() &&
                       target.mean() >= diversity.mean() &&
                       diversity.mean() >= persistence.mean();
  std::cout << (ordered ? "[attrition ordering matches the paper]"
                        : "[ORDERING MISMATCH]")
            << '\n';
  return 0;
}
