// Fig. 11 — Tunnel classification for AS7018 (AT&T), cycles 1-60.
//
// Paper shapes: the relative usage of MPLS decreases over time; Multi-FEC
// is used more and more IN PLACE OF Mono-FEC; a drop in the number of
// IOTPs around cycle 22 corresponds to a transition in MPLS usage.
#include "as_series.h"
#include "gen/profiles.h"

int main() {
  using namespace mum;
  return bench::run_as_series_bench(
      "Fig. 11 — AS7018 (AT&T) tunnel classification", gen::kAsnAtt,
      [](const lpr::LongitudinalReport& report) {
        const auto asn = gen::kAsnAtt;
        const double early_monofec = bench::avg_share(
            report, asn, 0, 14, &lpr::ClassCounts::mono_fec);
        const double late_monofec = bench::avg_share(
            report, asn, 45, 59, &lpr::ClassCounts::mono_fec);
        const double early_multi = bench::avg_share(
            report, asn, 0, 14, &lpr::ClassCounts::multi_fec);
        const double late_multi = bench::avg_share(
            report, asn, 45, 59, &lpr::ClassCounts::multi_fec);
        bench::check(early_monofec > late_monofec,
                     "Mono-FEC declines (" +
                         util::TextTable::fmt(early_monofec, 2) + " -> " +
                         util::TextTable::fmt(late_monofec, 2) + ")");
        bench::check(late_multi > early_multi && late_multi > 0.3,
                     "Multi-FEC replaces it (" +
                         util::TextTable::fmt(early_multi, 2) + " -> " +
                         util::TextTable::fmt(late_multi, 2) + ")");
        const double before_drop = bench::avg_iotps(report, asn, 12, 20);
        const double after_drop = bench::avg_iotps(report, asn, 23, 31);
        bench::check(after_drop < 0.85 * before_drop,
                     "IOTP drop around cycle 22 (" +
                         util::TextTable::fmt(before_drop, 0) + " -> " +
                         util::TextTable::fmt(after_drop, 0) + ")");
      });
}
