// Microbenchmarks (google-benchmark) for the LPR hot paths and the
// simulator primitives, plus the ECMP-hash ablation called out in
// DESIGN.md. These quantify throughput, not paper results.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/extract.h"
#include "core/filters.h"
#include "core/report.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "igp/spf.h"
#include "net/radix_trie.h"
#include "probe/forwarder.h"
#include "run/runner.h"
#include "topo/builder.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace mum;

// Synthetic IOTP with `width` branches of `length` LSRs; `multi_fec` makes
// labels differ per branch at shared addresses.
lpr::IotpRecord synthetic_iotp(int width, int length, bool multi_fec,
                               std::uint64_t seed) {
  lpr::IotpRecord rec;
  rec.key = lpr::IotpKey{65001, net::Ipv4Addr(1), net::Ipv4Addr(2)};
  util::Rng rng(seed);
  for (int b = 0; b < width; ++b) {
    lpr::Lsp lsp;
    lsp.asn = 65001;
    lsp.ingress = net::Ipv4Addr(1);
    lsp.egress = net::Ipv4Addr(2);
    for (int h = 0; h < length; ++h) {
      lpr::LsrHop hop;
      // Half the hops are shared across branches (common IPs).
      hop.addr = (h % 2 == 0)
                     ? net::Ipv4Addr(1000 + static_cast<std::uint32_t>(h))
                     : net::Ipv4Addr(2000 +
                                     static_cast<std::uint32_t>(b * 64 + h));
      hop.labels = {multi_fec
                        ? 300000 + static_cast<std::uint32_t>(b)
                        : 300000 + static_cast<std::uint32_t>(h)};
      lsp.lsrs.push_back(std::move(hop));
    }
    rec.variants.push_back(std::move(lsp));
  }
  rec.dst_asns = {1, 2};
  return rec;
}

void BM_ClassifyIotp(benchmark::State& state) {
  auto rec = synthetic_iotp(static_cast<int>(state.range(0)),
                            static_cast<int>(state.range(1)),
                            /*multi_fec=*/state.range(2) != 0, 7);
  for (auto _ : state) {
    lpr::classify_iotp(rec);
    benchmark::DoNotOptimize(rec.tunnel_class);
  }
}
BENCHMARK(BM_ClassifyIotp)
    ->Args({1, 3, 0})
    ->Args({4, 3, 0})
    ->Args({4, 3, 1})
    ->Args({16, 6, 0})
    ->Args({64, 8, 1});

void BM_LspContentHash(benchmark::State& state) {
  const auto rec = synthetic_iotp(1, static_cast<int>(state.range(0)),
                                  false, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.variants.front().content_hash());
  }
}
BENCHMARK(BM_LspContentHash)->Arg(2)->Arg(6)->Arg(14);

void BM_RadixTrieLookup(benchmark::State& state) {
  net::RadixTrie<std::uint32_t> trie;
  util::Rng rng(9);
  for (int i = 0; i < state.range(0); ++i) {
    trie.insert(net::Ipv4Prefix(
                    net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                    static_cast<std::uint8_t>(rng.uniform(8, 24))),
                static_cast<std::uint32_t>(i));
  }
  std::uint32_t probe = 1;
  for (auto _ : state) {
    probe = probe * 2654435761u + 17;
    benchmark::DoNotOptimize(trie.lookup(net::Ipv4Addr(probe)));
  }
}
BENCHMARK(BM_RadixTrieLookup)->Arg(64)->Arg(1024)->Arg(16384);

// Largest case-study shape (AT&T: 14 core + 60 PoP routers, bundled links).
// Same topology the pre-PR baseline in BENCH_PR4.json was measured on.
topo::AsTopology att_topology() {
  auto shape = gen::case_study_shape(gen::kAsnAtt);
  shape.topo.asn = gen::kAsnAtt;
  shape.topo.block = net::Ipv4Prefix(net::Ipv4Addr(16, 0, 0, 0), 15);
  util::Rng rng(4);
  return topo::build_as_topology(shape.topo, rng);
}

// All-pairs IGP route computation (flat RIBs, one-pass ECMP propagation).
// Arg = thread count (1 = serial, no pool).
void BM_IgpCompute(benchmark::State& state) {
  const auto topo = att_topology();
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<util::ThreadPool>(
        static_cast<unsigned>(threads));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        igp::IgpState::compute(topo, nullptr, pool.get()));
  }
  state.SetLabel(std::to_string(topo.router_count()) + " routers, " +
                 std::to_string(topo.link_count()) + " links, " +
                 std::to_string(threads) + " thr");
}
BENCHMARK(BM_IgpCompute)->Arg(1)->Arg(4);

// Incremental reconvergence around 2 failed links vs the full recompute the
// simulator used to run per maintenance snapshot.
void BM_IgpReconverge(benchmark::State& state) {
  const auto topo = att_topology();
  const auto baseline = igp::IgpState::compute(topo);
  std::vector<bool> down(topo.link_count(), false);
  down[3] = true;
  down[topo.link_count() / 2] = true;
  igp::IgpState::ReconvergeStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        igp::IgpState::reconverge(topo, baseline, down, nullptr, &stats));
  }
  state.SetLabel(std::to_string(stats.sources_recomputed) + "/" +
                 std::to_string(stats.sources_total) + " sources recomputed");
}
BENCHMARK(BM_IgpReconverge);

void BM_Spf(benchmark::State& state) {
  topo::BuildParams params;
  params.asn = 1;
  params.block = net::Ipv4Prefix(net::Ipv4Addr(16, 0, 0, 0), 15);
  params.core_routers = static_cast<int>(state.range(0)) / 5;
  params.pop_routers = static_cast<int>(state.range(0)) -
                       params.core_routers;
  util::Rng rng(4);
  const auto topo = topo::build_as_topology(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(igp::IgpState::compute(topo));
  }
  state.SetLabel(std::to_string(topo.link_count()) + " links");
}
BENCHMARK(BM_Spf)->Arg(16)->Arg(40)->Arg(80);

// ECMP ablation: per-flow hashing (Paris assumption) vs per-packet
// randomization. Per-packet would break Paris traceroute's coherent-path
// guarantee; the bench shows the hash itself is not the cost driver.
void BM_EcmpPickPerFlow(benchmark::State& state) {
  std::uint64_t flow = 12345;
  std::size_t sink = 0;
  topo::RouterId r = 0;
  for (auto _ : state) {
    sink += probe::ecmp_pick(flow, r++ & 63, 99, 8);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EcmpPickPerFlow);

void BM_EcmpPickPerPacket(benchmark::State& state) {
  util::Rng rng(5);
  std::size_t sink = 0;
  for (auto _ : state) {
    sink += static_cast<std::size_t>(rng.below(8));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EcmpPickPerPacket);

// End-to-end pipeline throughput on a small synthetic internet.
void BM_FullPipelineMonth(benchmark::State& state) {
  gen::GenConfig config;
  config.background_transit = 6;
  config.stub_ases = 10;
  config.monitors = 4;
  config.dests_per_monitor = 120;
  const gen::Internet internet(config);
  const auto ip2as = internet.build_ip2as();
  const gen::CampaignRunner campaign(internet, ip2as);
  for (auto _ : state) {
    const auto month = campaign.month(50);
    const auto report = lpr::run_pipeline(month, ip2as, {});
    benchmark::DoNotOptimize(report.global.total());
  }
}
BENCHMARK(BM_FullPipelineMonth)->Unit(benchmark::kMillisecond);

void BM_ExtractLsps(benchmark::State& state) {
  gen::GenConfig config;
  config.background_transit = 6;
  config.stub_ases = 10;
  config.monitors = 4;
  config.dests_per_monitor = 120;
  const gen::Internet internet(config);
  const auto ip2as = internet.build_ip2as();
  auto ctx = internet.instantiate(50);
  const auto snap =
      gen::CampaignRunner(internet, ip2as).snapshot(ctx, 50, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpr::extract_lsps(snap, ip2as));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(snap.trace_count()));
}
BENCHMARK(BM_ExtractLsps)->Unit(benchmark::kMillisecond);

// Thread scaling of the parallel execution layer: one paper-sized month
// generated + classified at 1/2/4/8 threads. Output is bit-identical across
// the arg values (the determinism gate in tests/test_parallel.cpp); this
// bench measures the wall-clock side of that contract.
void BM_MonthCycleThreads(benchmark::State& state) {
  run::RunnerConfig config;
  config.gen.background_transit = 10;
  config.gen.stub_ases = 14;
  config.gen.monitors = 8;
  config.gen.dests_per_monitor = 240;
  config.threads = static_cast<int>(state.range(0));
  const run::Runner runner(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run_cycle(50).global.total());
  }
  state.SetLabel(std::to_string(runner.threads()) + " threads");
}
BENCHMARK(BM_MonthCycleThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
