# Empty dependencies file for fig07_length.
# This may be replaced when dependencies are built.
