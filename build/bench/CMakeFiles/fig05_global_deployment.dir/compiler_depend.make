# Empty compiler generated dependencies file for fig05_global_deployment.
# This may be replaced when dependencies are built.
