file(REMOVE_RECURSE
  "CMakeFiles/fig05_global_deployment.dir/fig05_global_deployment.cpp.o"
  "CMakeFiles/fig05_global_deployment.dir/fig05_global_deployment.cpp.o.d"
  "fig05_global_deployment"
  "fig05_global_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_global_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
