file(REMOVE_RECURSE
  "CMakeFiles/fig12_as6453.dir/fig12_as6453.cpp.o"
  "CMakeFiles/fig12_as6453.dir/fig12_as6453.cpp.o.d"
  "fig12_as6453"
  "fig12_as6453.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_as6453.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
