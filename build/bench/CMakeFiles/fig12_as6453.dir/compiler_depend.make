# Empty compiler generated dependencies file for fig12_as6453.
# This may be replaced when dependencies are built.
