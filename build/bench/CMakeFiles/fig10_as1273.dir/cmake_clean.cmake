file(REMOVE_RECURSE
  "CMakeFiles/fig10_as1273.dir/fig10_as1273.cpp.o"
  "CMakeFiles/fig10_as1273.dir/fig10_as1273.cpp.o.d"
  "fig10_as1273"
  "fig10_as1273.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_as1273.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
