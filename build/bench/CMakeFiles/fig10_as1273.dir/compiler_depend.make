# Empty compiler generated dependencies file for fig10_as1273.
# This may be replaced when dependencies are built.
