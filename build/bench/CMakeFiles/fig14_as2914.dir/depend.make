# Empty dependencies file for fig14_as2914.
# This may be replaced when dependencies are built.
