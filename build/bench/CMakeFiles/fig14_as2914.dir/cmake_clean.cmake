file(REMOVE_RECURSE
  "CMakeFiles/fig14_as2914.dir/fig14_as2914.cpp.o"
  "CMakeFiles/fig14_as2914.dir/fig14_as2914.cpp.o.d"
  "fig14_as2914"
  "fig14_as2914.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_as2914.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
