# Empty dependencies file for ablation_router_level.
# This may be replaced when dependencies are built.
