file(REMOVE_RECURSE
  "CMakeFiles/ablation_router_level.dir/ablation_router_level.cpp.o"
  "CMakeFiles/ablation_router_level.dir/ablation_router_level.cpp.o.d"
  "ablation_router_level"
  "ablation_router_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_router_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
