# Empty dependencies file for ablation_frr.
# This may be replaced when dependencies are built.
