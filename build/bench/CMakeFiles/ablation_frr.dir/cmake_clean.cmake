file(REMOVE_RECURSE
  "CMakeFiles/ablation_frr.dir/ablation_frr.cpp.o"
  "CMakeFiles/ablation_frr.dir/ablation_frr.cpp.o.d"
  "ablation_frr"
  "ablation_frr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
