file(REMOVE_RECURSE
  "CMakeFiles/micro_lpr.dir/micro_lpr.cpp.o"
  "CMakeFiles/micro_lpr.dir/micro_lpr.cpp.o.d"
  "micro_lpr"
  "micro_lpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
