# Empty compiler generated dependencies file for micro_lpr.
# This may be replaced when dependencies are built.
