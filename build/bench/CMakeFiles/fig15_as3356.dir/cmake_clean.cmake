file(REMOVE_RECURSE
  "CMakeFiles/fig15_as3356.dir/fig15_as3356.cpp.o"
  "CMakeFiles/fig15_as3356.dir/fig15_as3356.cpp.o.d"
  "fig15_as3356"
  "fig15_as3356.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_as3356.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
