# Empty compiler generated dependencies file for fig15_as3356.
# This may be replaced when dependencies are built.
