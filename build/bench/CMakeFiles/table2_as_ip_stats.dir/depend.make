# Empty dependencies file for table2_as_ip_stats.
# This may be replaced when dependencies are built.
