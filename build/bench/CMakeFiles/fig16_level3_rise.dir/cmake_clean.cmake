file(REMOVE_RECURSE
  "CMakeFiles/fig16_level3_rise.dir/fig16_level3_rise.cpp.o"
  "CMakeFiles/fig16_level3_rise.dir/fig16_level3_rise.cpp.o.d"
  "fig16_level3_rise"
  "fig16_level3_rise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_level3_rise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
