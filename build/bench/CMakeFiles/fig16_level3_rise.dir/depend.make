# Empty dependencies file for fig16_level3_rise.
# This may be replaced when dependencies are built.
