file(REMOVE_RECURSE
  "CMakeFiles/fig09_symmetry.dir/fig09_symmetry.cpp.o"
  "CMakeFiles/fig09_symmetry.dir/fig09_symmetry.cpp.o.d"
  "fig09_symmetry"
  "fig09_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
