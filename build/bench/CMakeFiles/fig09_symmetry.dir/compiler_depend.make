# Empty compiler generated dependencies file for fig09_symmetry.
# This may be replaced when dependencies are built.
