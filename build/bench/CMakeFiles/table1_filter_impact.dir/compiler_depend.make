# Empty compiler generated dependencies file for table1_filter_impact.
# This may be replaced when dependencies are built.
