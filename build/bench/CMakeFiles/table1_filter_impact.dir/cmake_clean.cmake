file(REMOVE_RECURSE
  "CMakeFiles/table1_filter_impact.dir/table1_filter_impact.cpp.o"
  "CMakeFiles/table1_filter_impact.dir/table1_filter_impact.cpp.o.d"
  "table1_filter_impact"
  "table1_filter_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_filter_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
