file(REMOVE_RECURSE
  "CMakeFiles/fig11_as7018.dir/fig11_as7018.cpp.o"
  "CMakeFiles/fig11_as7018.dir/fig11_as7018.cpp.o.d"
  "fig11_as7018"
  "fig11_as7018.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_as7018.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
