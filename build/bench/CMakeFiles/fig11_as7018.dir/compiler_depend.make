# Empty compiler generated dependencies file for fig11_as7018.
# This may be replaced when dependencies are built.
