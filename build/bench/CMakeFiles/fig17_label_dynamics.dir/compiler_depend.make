# Empty compiler generated dependencies file for fig17_label_dynamics.
# This may be replaced when dependencies are built.
