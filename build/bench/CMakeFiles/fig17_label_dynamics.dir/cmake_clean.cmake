file(REMOVE_RECURSE
  "CMakeFiles/fig17_label_dynamics.dir/fig17_label_dynamics.cpp.o"
  "CMakeFiles/fig17_label_dynamics.dir/fig17_label_dynamics.cpp.o.d"
  "fig17_label_dynamics"
  "fig17_label_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_label_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
