# Empty compiler generated dependencies file for fig06_persistence.
# This may be replaced when dependencies are built.
