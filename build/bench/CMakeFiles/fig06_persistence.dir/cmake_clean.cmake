file(REMOVE_RECURSE
  "CMakeFiles/fig06_persistence.dir/fig06_persistence.cpp.o"
  "CMakeFiles/fig06_persistence.dir/fig06_persistence.cpp.o.d"
  "fig06_persistence"
  "fig06_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
