file(REMOVE_RECURSE
  "CMakeFiles/fig13_tata_split.dir/fig13_tata_split.cpp.o"
  "CMakeFiles/fig13_tata_split.dir/fig13_tata_split.cpp.o.d"
  "fig13_tata_split"
  "fig13_tata_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tata_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
