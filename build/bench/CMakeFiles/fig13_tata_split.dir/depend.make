# Empty dependencies file for fig13_tata_split.
# This may be replaced when dependencies are built.
