# Empty dependencies file for ablation_tree_indexing.
# This may be replaced when dependencies are built.
