file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_indexing.dir/ablation_tree_indexing.cpp.o"
  "CMakeFiles/ablation_tree_indexing.dir/ablation_tree_indexing.cpp.o.d"
  "ablation_tree_indexing"
  "ablation_tree_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
