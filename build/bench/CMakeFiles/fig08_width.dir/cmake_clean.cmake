file(REMOVE_RECURSE
  "CMakeFiles/fig08_width.dir/fig08_width.cpp.o"
  "CMakeFiles/fig08_width.dir/fig08_width.cpp.o.d"
  "fig08_width"
  "fig08_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
