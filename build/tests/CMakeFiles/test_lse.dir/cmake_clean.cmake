file(REMOVE_RECURSE
  "CMakeFiles/test_lse.dir/test_lse.cpp.o"
  "CMakeFiles/test_lse.dir/test_lse.cpp.o.d"
  "test_lse"
  "test_lse.pdb"
  "test_lse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
