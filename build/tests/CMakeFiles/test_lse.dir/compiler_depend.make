# Empty compiler generated dependencies file for test_lse.
# This may be replaced when dependencies are built.
