# Empty dependencies file for test_ldp_over_te.
# This may be replaced when dependencies are built.
