file(REMOVE_RECURSE
  "CMakeFiles/test_ldp_over_te.dir/test_ldp_over_te.cpp.o"
  "CMakeFiles/test_ldp_over_te.dir/test_ldp_over_te.cpp.o.d"
  "test_ldp_over_te"
  "test_ldp_over_te.pdb"
  "test_ldp_over_te[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldp_over_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
