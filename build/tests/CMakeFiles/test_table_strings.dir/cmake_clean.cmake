file(REMOVE_RECURSE
  "CMakeFiles/test_table_strings.dir/test_table_strings.cpp.o"
  "CMakeFiles/test_table_strings.dir/test_table_strings.cpp.o.d"
  "test_table_strings"
  "test_table_strings.pdb"
  "test_table_strings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
