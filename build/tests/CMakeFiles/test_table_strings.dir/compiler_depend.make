# Empty compiler generated dependencies file for test_table_strings.
# This may be replaced when dependencies are built.
