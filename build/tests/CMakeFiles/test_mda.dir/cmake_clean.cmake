file(REMOVE_RECURSE
  "CMakeFiles/test_mda.dir/test_mda.cpp.o"
  "CMakeFiles/test_mda.dir/test_mda.cpp.o.d"
  "test_mda"
  "test_mda.pdb"
  "test_mda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
