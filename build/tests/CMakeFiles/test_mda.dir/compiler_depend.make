# Empty compiler generated dependencies file for test_mda.
# This may be replaced when dependencies are built.
