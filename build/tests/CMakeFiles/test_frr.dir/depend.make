# Empty dependencies file for test_frr.
# This may be replaced when dependencies are built.
