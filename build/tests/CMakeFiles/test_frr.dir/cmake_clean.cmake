file(REMOVE_RECURSE
  "CMakeFiles/test_frr.dir/test_frr.cpp.o"
  "CMakeFiles/test_frr.dir/test_frr.cpp.o.d"
  "test_frr"
  "test_frr.pdb"
  "test_frr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
