# Empty compiler generated dependencies file for test_groundtruth.
# This may be replaced when dependencies are built.
