# Empty dependencies file for test_radix_trie.
# This may be replaced when dependencies are built.
