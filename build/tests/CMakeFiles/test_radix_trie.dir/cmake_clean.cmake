file(REMOVE_RECURSE
  "CMakeFiles/test_radix_trie.dir/test_radix_trie.cpp.o"
  "CMakeFiles/test_radix_trie.dir/test_radix_trie.cpp.o.d"
  "test_radix_trie"
  "test_radix_trie.pdb"
  "test_radix_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radix_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
