file(REMOVE_RECURSE
  "CMakeFiles/test_spf.dir/test_spf.cpp.o"
  "CMakeFiles/test_spf.dir/test_spf.cpp.o.d"
  "test_spf"
  "test_spf.pdb"
  "test_spf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
