file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_report.dir/test_metrics_report.cpp.o"
  "CMakeFiles/test_metrics_report.dir/test_metrics_report.cpp.o.d"
  "test_metrics_report"
  "test_metrics_report.pdb"
  "test_metrics_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
