# Empty compiler generated dependencies file for test_metrics_report.
# This may be replaced when dependencies are built.
