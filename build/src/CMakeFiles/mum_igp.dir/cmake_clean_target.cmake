file(REMOVE_RECURSE
  "libmum_igp.a"
)
