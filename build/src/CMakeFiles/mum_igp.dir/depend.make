# Empty dependencies file for mum_igp.
# This may be replaced when dependencies are built.
