file(REMOVE_RECURSE
  "CMakeFiles/mum_igp.dir/igp/spf.cpp.o"
  "CMakeFiles/mum_igp.dir/igp/spf.cpp.o.d"
  "libmum_igp.a"
  "libmum_igp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_igp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
