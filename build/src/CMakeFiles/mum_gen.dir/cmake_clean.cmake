file(REMOVE_RECURSE
  "CMakeFiles/mum_gen.dir/gen/as_graph.cpp.o"
  "CMakeFiles/mum_gen.dir/gen/as_graph.cpp.o.d"
  "CMakeFiles/mum_gen.dir/gen/campaign.cpp.o"
  "CMakeFiles/mum_gen.dir/gen/campaign.cpp.o.d"
  "CMakeFiles/mum_gen.dir/gen/internet.cpp.o"
  "CMakeFiles/mum_gen.dir/gen/internet.cpp.o.d"
  "CMakeFiles/mum_gen.dir/gen/profiles.cpp.o"
  "CMakeFiles/mum_gen.dir/gen/profiles.cpp.o.d"
  "libmum_gen.a"
  "libmum_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
