file(REMOVE_RECURSE
  "libmum_gen.a"
)
