# Empty compiler generated dependencies file for mum_gen.
# This may be replaced when dependencies are built.
