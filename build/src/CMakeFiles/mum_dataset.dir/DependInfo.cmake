
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/ip2as.cpp" "src/CMakeFiles/mum_dataset.dir/dataset/ip2as.cpp.o" "gcc" "src/CMakeFiles/mum_dataset.dir/dataset/ip2as.cpp.o.d"
  "/root/repo/src/dataset/trace.cpp" "src/CMakeFiles/mum_dataset.dir/dataset/trace.cpp.o" "gcc" "src/CMakeFiles/mum_dataset.dir/dataset/trace.cpp.o.d"
  "/root/repo/src/dataset/warts_lite.cpp" "src/CMakeFiles/mum_dataset.dir/dataset/warts_lite.cpp.o" "gcc" "src/CMakeFiles/mum_dataset.dir/dataset/warts_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mum_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_icmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
