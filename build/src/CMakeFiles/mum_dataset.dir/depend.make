# Empty dependencies file for mum_dataset.
# This may be replaced when dependencies are built.
