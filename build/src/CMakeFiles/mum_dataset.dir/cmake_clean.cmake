file(REMOVE_RECURSE
  "CMakeFiles/mum_dataset.dir/dataset/ip2as.cpp.o"
  "CMakeFiles/mum_dataset.dir/dataset/ip2as.cpp.o.d"
  "CMakeFiles/mum_dataset.dir/dataset/trace.cpp.o"
  "CMakeFiles/mum_dataset.dir/dataset/trace.cpp.o.d"
  "CMakeFiles/mum_dataset.dir/dataset/warts_lite.cpp.o"
  "CMakeFiles/mum_dataset.dir/dataset/warts_lite.cpp.o.d"
  "libmum_dataset.a"
  "libmum_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
