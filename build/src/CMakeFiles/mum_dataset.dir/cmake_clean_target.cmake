file(REMOVE_RECURSE
  "libmum_dataset.a"
)
