file(REMOVE_RECURSE
  "libmum_topo.a"
)
