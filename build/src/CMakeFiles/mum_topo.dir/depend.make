# Empty dependencies file for mum_topo.
# This may be replaced when dependencies are built.
