file(REMOVE_RECURSE
  "CMakeFiles/mum_topo.dir/topo/builder.cpp.o"
  "CMakeFiles/mum_topo.dir/topo/builder.cpp.o.d"
  "CMakeFiles/mum_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/mum_topo.dir/topo/topology.cpp.o.d"
  "libmum_topo.a"
  "libmum_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
