file(REMOVE_RECURSE
  "CMakeFiles/mum_net.dir/net/ipv4.cpp.o"
  "CMakeFiles/mum_net.dir/net/ipv4.cpp.o.d"
  "CMakeFiles/mum_net.dir/net/lse.cpp.o"
  "CMakeFiles/mum_net.dir/net/lse.cpp.o.d"
  "libmum_net.a"
  "libmum_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
