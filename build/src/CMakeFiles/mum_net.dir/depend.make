# Empty dependencies file for mum_net.
# This may be replaced when dependencies are built.
