file(REMOVE_RECURSE
  "libmum_net.a"
)
