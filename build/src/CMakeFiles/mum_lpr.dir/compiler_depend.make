# Empty compiler generated dependencies file for mum_lpr.
# This may be replaced when dependencies are built.
