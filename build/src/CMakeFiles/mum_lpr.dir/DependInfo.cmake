
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alias.cpp" "src/CMakeFiles/mum_lpr.dir/core/alias.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/alias.cpp.o.d"
  "/root/repo/src/core/classify.cpp" "src/CMakeFiles/mum_lpr.dir/core/classify.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/classify.cpp.o.d"
  "/root/repo/src/core/extract.cpp" "src/CMakeFiles/mum_lpr.dir/core/extract.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/extract.cpp.o.d"
  "/root/repo/src/core/filters.cpp" "src/CMakeFiles/mum_lpr.dir/core/filters.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/filters.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/mum_lpr.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/CMakeFiles/mum_lpr.dir/core/model.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/model.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/mum_lpr.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/report.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/CMakeFiles/mum_lpr.dir/core/report_json.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/report_json.cpp.o.d"
  "/root/repo/src/core/tree.cpp" "src/CMakeFiles/mum_lpr.dir/core/tree.cpp.o" "gcc" "src/CMakeFiles/mum_lpr.dir/core/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mum_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_icmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
