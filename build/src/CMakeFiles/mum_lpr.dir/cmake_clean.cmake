file(REMOVE_RECURSE
  "CMakeFiles/mum_lpr.dir/core/alias.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/alias.cpp.o.d"
  "CMakeFiles/mum_lpr.dir/core/classify.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/classify.cpp.o.d"
  "CMakeFiles/mum_lpr.dir/core/extract.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/extract.cpp.o.d"
  "CMakeFiles/mum_lpr.dir/core/filters.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/filters.cpp.o.d"
  "CMakeFiles/mum_lpr.dir/core/metrics.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/metrics.cpp.o.d"
  "CMakeFiles/mum_lpr.dir/core/model.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/model.cpp.o.d"
  "CMakeFiles/mum_lpr.dir/core/report.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/report.cpp.o.d"
  "CMakeFiles/mum_lpr.dir/core/report_json.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/report_json.cpp.o.d"
  "CMakeFiles/mum_lpr.dir/core/tree.cpp.o"
  "CMakeFiles/mum_lpr.dir/core/tree.cpp.o.d"
  "libmum_lpr.a"
  "libmum_lpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_lpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
