file(REMOVE_RECURSE
  "libmum_lpr.a"
)
