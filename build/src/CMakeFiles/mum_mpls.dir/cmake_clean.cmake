file(REMOVE_RECURSE
  "CMakeFiles/mum_mpls.dir/mpls/label_pool.cpp.o"
  "CMakeFiles/mum_mpls.dir/mpls/label_pool.cpp.o.d"
  "CMakeFiles/mum_mpls.dir/mpls/ldp.cpp.o"
  "CMakeFiles/mum_mpls.dir/mpls/ldp.cpp.o.d"
  "CMakeFiles/mum_mpls.dir/mpls/rsvp.cpp.o"
  "CMakeFiles/mum_mpls.dir/mpls/rsvp.cpp.o.d"
  "libmum_mpls.a"
  "libmum_mpls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_mpls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
