
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpls/label_pool.cpp" "src/CMakeFiles/mum_mpls.dir/mpls/label_pool.cpp.o" "gcc" "src/CMakeFiles/mum_mpls.dir/mpls/label_pool.cpp.o.d"
  "/root/repo/src/mpls/ldp.cpp" "src/CMakeFiles/mum_mpls.dir/mpls/ldp.cpp.o" "gcc" "src/CMakeFiles/mum_mpls.dir/mpls/ldp.cpp.o.d"
  "/root/repo/src/mpls/rsvp.cpp" "src/CMakeFiles/mum_mpls.dir/mpls/rsvp.cpp.o" "gcc" "src/CMakeFiles/mum_mpls.dir/mpls/rsvp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mum_igp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
