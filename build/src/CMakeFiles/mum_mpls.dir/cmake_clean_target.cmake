file(REMOVE_RECURSE
  "libmum_mpls.a"
)
