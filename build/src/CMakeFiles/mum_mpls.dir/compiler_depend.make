# Empty compiler generated dependencies file for mum_mpls.
# This may be replaced when dependencies are built.
