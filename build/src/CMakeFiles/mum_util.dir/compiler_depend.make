# Empty compiler generated dependencies file for mum_util.
# This may be replaced when dependencies are built.
