file(REMOVE_RECURSE
  "libmum_util.a"
)
