file(REMOVE_RECURSE
  "CMakeFiles/mum_util.dir/util/json.cpp.o"
  "CMakeFiles/mum_util.dir/util/json.cpp.o.d"
  "CMakeFiles/mum_util.dir/util/rng.cpp.o"
  "CMakeFiles/mum_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/mum_util.dir/util/stats.cpp.o"
  "CMakeFiles/mum_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/mum_util.dir/util/strings.cpp.o"
  "CMakeFiles/mum_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/mum_util.dir/util/table.cpp.o"
  "CMakeFiles/mum_util.dir/util/table.cpp.o.d"
  "CMakeFiles/mum_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/mum_util.dir/util/thread_pool.cpp.o.d"
  "libmum_util.a"
  "libmum_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
