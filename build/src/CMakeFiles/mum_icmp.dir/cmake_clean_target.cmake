file(REMOVE_RECURSE
  "libmum_icmp.a"
)
