file(REMOVE_RECURSE
  "CMakeFiles/mum_icmp.dir/icmp/icmp.cpp.o"
  "CMakeFiles/mum_icmp.dir/icmp/icmp.cpp.o.d"
  "libmum_icmp.a"
  "libmum_icmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_icmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
