# Empty compiler generated dependencies file for mum_icmp.
# This may be replaced when dependencies are built.
