file(REMOVE_RECURSE
  "libmum_run.a"
)
