# Empty dependencies file for mum_run.
# This may be replaced when dependencies are built.
