file(REMOVE_RECURSE
  "CMakeFiles/mum_run.dir/run/runner.cpp.o"
  "CMakeFiles/mum_run.dir/run/runner.cpp.o.d"
  "libmum_run.a"
  "libmum_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
