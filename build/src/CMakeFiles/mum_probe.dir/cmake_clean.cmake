file(REMOVE_RECURSE
  "CMakeFiles/mum_probe.dir/probe/forwarder.cpp.o"
  "CMakeFiles/mum_probe.dir/probe/forwarder.cpp.o.d"
  "CMakeFiles/mum_probe.dir/probe/mda.cpp.o"
  "CMakeFiles/mum_probe.dir/probe/mda.cpp.o.d"
  "CMakeFiles/mum_probe.dir/probe/traceroute.cpp.o"
  "CMakeFiles/mum_probe.dir/probe/traceroute.cpp.o.d"
  "libmum_probe.a"
  "libmum_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
