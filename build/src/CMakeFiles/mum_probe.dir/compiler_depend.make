# Empty compiler generated dependencies file for mum_probe.
# This may be replaced when dependencies are built.
