file(REMOVE_RECURSE
  "libmum_probe.a"
)
