# Empty dependencies file for mum_cli.
# This may be replaced when dependencies are built.
