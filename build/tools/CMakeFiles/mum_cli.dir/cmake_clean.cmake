file(REMOVE_RECURSE
  "CMakeFiles/mum_cli.dir/cli.cpp.o"
  "CMakeFiles/mum_cli.dir/cli.cpp.o.d"
  "libmum_cli.a"
  "libmum_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
