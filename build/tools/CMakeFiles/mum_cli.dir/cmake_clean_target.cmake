file(REMOVE_RECURSE
  "libmum_cli.a"
)
