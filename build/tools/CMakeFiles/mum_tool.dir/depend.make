# Empty dependencies file for mum_tool.
# This may be replaced when dependencies are built.
