file(REMOVE_RECURSE
  "CMakeFiles/mum_tool.dir/main.cpp.o"
  "CMakeFiles/mum_tool.dir/main.cpp.o.d"
  "mum"
  "mum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mum_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
