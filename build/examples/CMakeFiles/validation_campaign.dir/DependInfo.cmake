
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/validation_campaign.cpp" "examples/CMakeFiles/validation_campaign.dir/validation_campaign.cpp.o" "gcc" "examples/CMakeFiles/validation_campaign.dir/validation_campaign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mum_run.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_lpr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_icmp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_mpls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_igp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mum_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
