# Empty dependencies file for validation_campaign.
# This may be replaced when dependencies are built.
