file(REMOVE_RECURSE
  "CMakeFiles/validation_campaign.dir/validation_campaign.cpp.o"
  "CMakeFiles/validation_campaign.dir/validation_campaign.cpp.o.d"
  "validation_campaign"
  "validation_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
