file(REMOVE_RECURSE
  "CMakeFiles/inspect_cycle.dir/inspect_cycle.cpp.o"
  "CMakeFiles/inspect_cycle.dir/inspect_cycle.cpp.o.d"
  "inspect_cycle"
  "inspect_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
