# Empty dependencies file for inspect_cycle.
# This may be replaced when dependencies are built.
