# Empty dependencies file for as_evolution.
# This may be replaced when dependencies are built.
