file(REMOVE_RECURSE
  "CMakeFiles/as_evolution.dir/as_evolution.cpp.o"
  "CMakeFiles/as_evolution.dir/as_evolution.cpp.o.d"
  "as_evolution"
  "as_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
