#include "icmp/icmp.h"

namespace mum::icmp {

std::string to_string(const IcmpReply& reply) {
  std::string out;
  switch (reply.type) {
    case IcmpType::kEchoReply: out = "echo-reply"; break;
    case IcmpType::kDestUnreachable: out = "dest-unreachable"; break;
    case IcmpType::kTimeExceeded: out = "time-exceeded"; break;
  }
  out += " from " + reply.from.to_string();
  out += " rtt=" + std::to_string(reply.rtt_ms) + "ms";
  if (reply.mpls) out += " mpls " + reply.mpls->to_string();
  return out;
}

}  // namespace mum::icmp
