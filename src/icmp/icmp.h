// ICMP reply modelling — just enough of RFC 792 / RFC 4884 / RFC 4950 for
// traceroute-based MPLS observation.
//
// When an LSR drops a packet whose (LSE-)TTL expired, it emits an ICMP
// time-exceeded. Routers implementing RFC 4950 append an extension object
// quoting the MPLS label stack of the *received* packet. The quoted stack is
// the only MPLS signal LPR ever sees.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/ipv4.h"
#include "net/lse.h"

namespace mum::icmp {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kTimeExceeded = 11,
};

// RFC 4950 MPLS Label Stack extension object (class 1, c-type 1).
struct MplsExtension {
  net::LabelStack stack;

  std::string to_string() const { return stack.to_string(); }
};

struct IcmpReply {
  IcmpType type = IcmpType::kTimeExceeded;
  std::uint8_t code = 0;
  // Source of the ICMP reply — in our model, the address of the interface
  // the probe entered through (the standard traceroute assumption).
  net::Ipv4Addr from;
  double rtt_ms = 0.0;
  // Present when the replying router implements RFC 4950 and the dropped
  // packet carried a label stack.
  std::optional<MplsExtension> mpls;

  bool has_labels() const noexcept {
    return mpls.has_value() && !mpls->stack.empty();
  }
};

// Serialize a reply to a stable single-line string (for debugging and the
// text dataset format).
std::string to_string(const IcmpReply& reply);

}  // namespace mum::icmp
