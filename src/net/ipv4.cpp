#include "net/ipv4.h"

#include <ostream>

#include "util/strings.h"

namespace mum::net {

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xff);
    if (shift) out += '.';
  }
  return out;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    const auto octet = util::parse_u64(part);
    if (!octet || *octet > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(*octet);
  }
  return Ipv4Addr(value);
}

std::string Ipv4Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  const auto len = util::parse_u64(text.substr(slash + 1));
  if (!addr || !len || *len > 32) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<std::uint8_t>(*len));
}

std::ostream& operator<<(std::ostream& os, Ipv4Addr addr) {
  return os << addr.to_string();
}

std::ostream& operator<<(std::ostream& os, const Ipv4Prefix& prefix) {
  return os << prefix.to_string();
}

}  // namespace mum::net
