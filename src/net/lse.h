// MPLS Label Stack Entry (RFC 3032) modelling.
//
// An LSE is a 32-bit word: 20-bit label, 3-bit Traffic Class, 1-bit
// bottom-of-stack flag, 8-bit TTL. Routers quote received LSE stacks inside
// ICMP time-exceeded messages when they implement RFC 4950; LPR consumes
// exactly those quoted stacks.
#pragma once

#include <algorithm>
#include <array>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mum::net {

// Reserved label values (RFC 3032 section 2.1).
inline constexpr std::uint32_t kLabelIpv4ExplicitNull = 0;
inline constexpr std::uint32_t kLabelRouterAlert = 1;
inline constexpr std::uint32_t kLabelIpv6ExplicitNull = 2;
inline constexpr std::uint32_t kLabelImplicitNull = 3;  // signals PHP
inline constexpr std::uint32_t kLabelFirstUnreserved = 16;
inline constexpr std::uint32_t kLabelMax = (1u << 20) - 1;

class LabelStackEntry {
 public:
  constexpr LabelStackEntry() = default;
  constexpr LabelStackEntry(std::uint32_t label, std::uint8_t tc, bool bottom,
                            std::uint8_t ttl)
      : label_(label & kLabelMax), tc_(tc & 0x7), bottom_(bottom), ttl_(ttl) {}

  constexpr std::uint32_t label() const noexcept { return label_; }
  constexpr std::uint8_t traffic_class() const noexcept { return tc_; }
  constexpr bool bottom_of_stack() const noexcept { return bottom_; }
  constexpr std::uint8_t ttl() const noexcept { return ttl_; }

  constexpr void set_ttl(std::uint8_t ttl) noexcept { ttl_ = ttl; }
  constexpr void set_bottom(bool bottom) noexcept { bottom_ = bottom; }

  // Wire encoding: label(20) | TC(3) | S(1) | TTL(8).
  constexpr std::uint32_t encode() const noexcept {
    return (label_ << 12) | (std::uint32_t{tc_} << 9) |
           (std::uint32_t{bottom_ ? 1u : 0u} << 8) | std::uint32_t{ttl_};
  }
  static constexpr LabelStackEntry decode(std::uint32_t word) noexcept {
    return LabelStackEntry(word >> 12,
                           static_cast<std::uint8_t>((word >> 9) & 0x7),
                           ((word >> 8) & 0x1) != 0,
                           static_cast<std::uint8_t>(word & 0xff));
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const LabelStackEntry&,
                                    const LabelStackEntry&) = default;

 private:
  std::uint32_t label_ = 0;
  std::uint8_t tc_ = 0;
  bool bottom_ = false;
  std::uint8_t ttl_ = 0;
};

// A label stack, top first. The last entry must be the bottom-of-stack one.
//
// Storage is small-inline: stacks of depth <= kInlineDepth (the ~99% case —
// the paper's deepest observed stacks are LDP-over-TE 2-entry ones, plus one
// for FRR detours) live inside the object; deeper stacks spill wholesale to
// the heap. The spill vector, when non-empty, is the authoritative storage.
class LabelStack {
 public:
  static constexpr std::size_t kInlineDepth = 3;

  LabelStack() = default;
  explicit LabelStack(std::vector<LabelStackEntry> entries);

  bool empty() const noexcept { return size_ == 0; }
  std::size_t depth() const noexcept { return size_; }
  const LabelStackEntry& top() const { return data()[0]; }
  LabelStackEntry& top() { return data_mut()[0]; }
  std::span<const LabelStackEntry> entries() const noexcept {
    return {data(), size_};
  }

  // Push a new top entry; maintains bottom-of-stack flags.
  void push(std::uint32_t label, std::uint8_t tc, std::uint8_t ttl);
  // Pop the top entry; no-op on an empty stack.
  void pop();
  // Swap the top label in place.
  void swap_top(std::uint32_t label);

  // The sequence of label values, top first (what LPR compares).
  std::vector<std::uint32_t> labels() const;

  std::string to_string() const;

  friend bool operator==(const LabelStack& a, const LabelStack& b) noexcept {
    return a.size_ == b.size_ &&
           std::equal(a.data(), a.data() + a.size_, b.data());
  }

 private:
  const LabelStackEntry* data() const noexcept {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  LabelStackEntry* data_mut() noexcept {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  void fix_bottom_flags() noexcept;

  std::array<LabelStackEntry, kInlineDepth> inline_{};
  std::uint32_t size_ = 0;
  std::vector<LabelStackEntry> spill_;  // non-empty => holds all entries
};

std::ostream& operator<<(std::ostream& os, const LabelStackEntry& lse);
std::ostream& operator<<(std::ostream& os, const LabelStack& stack);

}  // namespace mum::net
