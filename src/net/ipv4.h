// IPv4 address and prefix value types.
//
// These are trivially-copyable value types used throughout the simulator and
// the LPR core. Addresses are stored host-order in a uint32 so comparisons
// are cheap and sets/maps are dense.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace mum::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr bool is_zero() const noexcept { return value_ == 0; }

  std::string to_string() const;
  static std::optional<Ipv4Addr> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

// The conventional "no response" marker used for anonymous traceroute hops.
inline constexpr Ipv4Addr kAnonymousAddr{};

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  // Construction normalizes: host bits below `length` are cleared.
  constexpr Ipv4Prefix(Ipv4Addr addr, std::uint8_t length)
      : addr_(Ipv4Addr(length == 0 ? 0u : (addr.value() & mask(length)))),
        length_(length > 32 ? 32 : length) {}

  constexpr Ipv4Addr addr() const noexcept { return addr_; }
  constexpr std::uint8_t length() const noexcept { return length_; }

  constexpr bool contains(Ipv4Addr a) const noexcept {
    if (length_ == 0) return true;
    return (a.value() & mask(length_)) == addr_.value();
  }
  constexpr bool contains(const Ipv4Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.addr_);
  }

  // Number of addresses covered.
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  // The i-th address inside the prefix (i taken modulo size()).
  constexpr Ipv4Addr nth(std::uint64_t i) const noexcept {
    return Ipv4Addr(addr_.value() +
                    static_cast<std::uint32_t>(i % size()));
  }

  std::string to_string() const;
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  friend constexpr auto operator<=>(const Ipv4Prefix&,
                                    const Ipv4Prefix&) = default;

 private:
  static constexpr std::uint32_t mask(std::uint8_t length) noexcept {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }
  Ipv4Addr addr_;
  std::uint8_t length_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Addr addr);
std::ostream& operator<<(std::ostream& os, const Ipv4Prefix& prefix);

}  // namespace mum::net

template <>
struct std::hash<mum::net::Ipv4Addr> {
  std::size_t operator()(mum::net::Ipv4Addr a) const noexcept {
    // Fibonacci hash spreads sequential interface addresses well.
    return static_cast<std::size_t>(a.value()) * 0x9e3779b97f4a7c15ull;
  }
};

template <>
struct std::hash<mum::net::Ipv4Prefix> {
  std::size_t operator()(const mum::net::Ipv4Prefix& p) const noexcept {
    return (static_cast<std::size_t>(p.addr().value()) << 6) ^ p.length();
  }
};
