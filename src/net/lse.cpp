#include "net/lse.h"

#include <ostream>

namespace mum::net {

std::string LabelStackEntry::to_string() const {
  std::string out = "L=" + std::to_string(label_);
  out += ",TC=" + std::to_string(tc_);
  out += ",S=" + std::to_string(bottom_ ? 1 : 0);
  out += ",TTL=" + std::to_string(ttl_);
  return out;
}

LabelStack::LabelStack(std::vector<LabelStackEntry> entries)
    : entries_(std::move(entries)) {
  fix_bottom_flags();
}

void LabelStack::push(std::uint32_t label, std::uint8_t tc, std::uint8_t ttl) {
  entries_.insert(entries_.begin(), LabelStackEntry(label, tc, false, ttl));
  fix_bottom_flags();
}

void LabelStack::pop() {
  if (entries_.empty()) return;
  entries_.erase(entries_.begin());
  fix_bottom_flags();
}

void LabelStack::swap_top(std::uint32_t label) {
  if (entries_.empty()) return;
  auto& top_entry = entries_.front();
  top_entry = LabelStackEntry(label, top_entry.traffic_class(),
                              top_entry.bottom_of_stack(), top_entry.ttl());
}

std::vector<std::uint32_t> LabelStack::labels() const {
  std::vector<std::uint32_t> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.label());
  return out;
}

std::string LabelStack::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i) out += " | ";
    out += entries_[i].to_string();
  }
  out += "]";
  return out;
}

void LabelStack::fix_bottom_flags() noexcept {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].set_bottom(i + 1 == entries_.size());
  }
}

std::ostream& operator<<(std::ostream& os, const LabelStackEntry& lse) {
  return os << lse.to_string();
}

std::ostream& operator<<(std::ostream& os, const LabelStack& stack) {
  return os << stack.to_string();
}

}  // namespace mum::net
