#include "net/lse.h"

#include <ostream>

namespace mum::net {

std::string LabelStackEntry::to_string() const {
  std::string out = "L=" + std::to_string(label_);
  out += ",TC=" + std::to_string(tc_);
  out += ",S=" + std::to_string(bottom_ ? 1 : 0);
  out += ",TTL=" + std::to_string(ttl_);
  return out;
}

LabelStack::LabelStack(std::vector<LabelStackEntry> entries) {
  if (entries.size() <= kInlineDepth) {
    size_ = static_cast<std::uint32_t>(entries.size());
    std::copy(entries.begin(), entries.end(), inline_.begin());
  } else {
    spill_ = std::move(entries);
    size_ = static_cast<std::uint32_t>(spill_.size());
  }
  fix_bottom_flags();
}

void LabelStack::push(std::uint32_t label, std::uint8_t tc, std::uint8_t ttl) {
  const LabelStackEntry e(label, tc, false, ttl);
  if (!spill_.empty()) {
    spill_.insert(spill_.begin(), e);
  } else if (size_ < kInlineDepth) {
    for (std::size_t i = size_; i > 0; --i) inline_[i] = inline_[i - 1];
    inline_[0] = e;
  } else {
    // Inline is full: spill everything, new top first.
    spill_.reserve(size_ + 1);
    spill_.push_back(e);
    spill_.insert(spill_.end(), inline_.begin(), inline_.end());
  }
  ++size_;
  fix_bottom_flags();
}

void LabelStack::pop() {
  if (size_ == 0) return;
  if (!spill_.empty()) {
    spill_.erase(spill_.begin());
    if (spill_.empty()) {
      size_ = 0;
      return;
    }
  } else {
    for (std::size_t i = 1; i < size_; ++i) inline_[i - 1] = inline_[i];
  }
  --size_;
  fix_bottom_flags();
}

void LabelStack::swap_top(std::uint32_t label) {
  if (size_ == 0) return;
  auto& top_entry = data_mut()[0];
  top_entry = LabelStackEntry(label, top_entry.traffic_class(),
                              top_entry.bottom_of_stack(), top_entry.ttl());
}

std::vector<std::uint32_t> LabelStack::labels() const {
  std::vector<std::uint32_t> out;
  out.reserve(size_);
  for (const auto& e : entries()) out.push_back(e.label());
  return out;
}

std::string LabelStack::to_string() const {
  std::string out = "[";
  const auto ents = entries();
  for (std::size_t i = 0; i < ents.size(); ++i) {
    if (i) out += " | ";
    out += ents[i].to_string();
  }
  out += "]";
  return out;
}

void LabelStack::fix_bottom_flags() noexcept {
  LabelStackEntry* p = data_mut();
  for (std::size_t i = 0; i < size_; ++i) p[i].set_bottom(i + 1 == size_);
}

std::ostream& operator<<(std::ostream& os, const LabelStackEntry& lse) {
  return os << lse.to_string();
}

std::ostream& operator<<(std::ostream& os, const LabelStack& stack) {
  return os << stack.to_string();
}

}  // namespace mum::net
