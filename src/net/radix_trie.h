// Binary radix (Patricia-style, one bit per level) trie for IPv4
// longest-prefix-match lookups, used by the IP2AS service and by router FIBs.
//
// Header-only template: values are stored by copy at prefix nodes; lookup
// walks at most 32 levels and remembers the deepest match.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"

namespace mum::net {

template <typename Value>
class RadixTrie {
 public:
  RadixTrie() : root_(std::make_unique<Node>()) {}

  // Insert or overwrite the value at `prefix`.
  void insert(const Ipv4Prefix& prefix, Value value) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const bool bit = bit_at(prefix.addr(), depth);
      auto& child = bit ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  // Longest-prefix match; nullopt when nothing covers `addr`.
  std::optional<Value> lookup(Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<Value> best;
    for (std::uint8_t depth = 0; node != nullptr; ++depth) {
      if (node->value) best = node->value;
      if (depth == 32) break;
      node = bit_at(addr, depth) ? node->one.get() : node->zero.get();
    }
    return best;
  }

  // Longest matching prefix itself (with its value).
  std::optional<std::pair<Ipv4Prefix, Value>> lookup_prefix(
      Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<std::pair<Ipv4Prefix, Value>> best;
    for (std::uint8_t depth = 0; node != nullptr; ++depth) {
      if (node->value) best.emplace(Ipv4Prefix(addr, depth), *node->value);
      if (depth == 32) break;
      node = bit_at(addr, depth) ? node->one.get() : node->zero.get();
    }
    return best;
  }

  // Exact-prefix fetch (no LPM).
  std::optional<Value> exact(const Ipv4Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      node = bit_at(prefix.addr(), depth) ? node->one.get() : node->zero.get();
      if (node == nullptr) return std::nullopt;
    }
    return node->value;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  // Enumerate all (prefix, value) pairs in address order.
  std::vector<std::pair<Ipv4Prefix, Value>> entries() const {
    std::vector<std::pair<Ipv4Prefix, Value>> out;
    out.reserve(size_);
    collect(root_.get(), 0, 0, out);
    return out;
  }

 private:
  struct Node {
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
    std::optional<Value> value;
  };

  static bool bit_at(Ipv4Addr addr, std::uint8_t depth) noexcept {
    return ((addr.value() >> (31 - depth)) & 1u) != 0;
  }

  void collect(const Node* node, std::uint32_t bits, std::uint8_t depth,
               std::vector<std::pair<Ipv4Prefix, Value>>& out) const {
    if (node == nullptr) return;
    if (node->value) {
      out.emplace_back(Ipv4Prefix(Ipv4Addr(bits), depth), *node->value);
    }
    if (depth == 32) return;
    collect(node->zero.get(), bits, depth + 1, out);
    collect(node->one.get(), bits | (1u << (31 - depth)), depth + 1, out);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace mum::net
