#include "obs/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace mum::obs {

namespace {

std::atomic<std::uint8_t> g_level{
    static_cast<std::uint8_t>(LogLevel::kInfo)};
std::mutex g_mutex;
std::ostream* g_sink = &std::cerr;  // guarded by g_mutex

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<std::uint8_t>(level),
                std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::ostream* os) noexcept {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = os;
}

bool log_enabled(LogLevel level) noexcept {
  return level != LogLevel::kSilent &&
         static_cast<std::uint8_t>(level) <=
             g_level.load(std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view message) {
  if (!log_enabled(level)) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink == nullptr) return;
  *g_sink << message << '\n';
  g_sink->flush();
}

}  // namespace mum::obs
