// Runtime telemetry: low-overhead counters, gauges and log2 histograms
// behind a process-wide Registry that snapshots to JSON.
//
// Hot-path contract: metric updates are lock-free relaxed atomics on
// thread-local shards — no allocation, no mutex, no syscalls. Shards merge
// in index order when a value or snapshot is read, so reads are exact and
// deterministic (sums of u64 per shard, accumulated slot 0..N-1).
//
// Determinism contract (carried from the PR 1 parallel engine): telemetry
// is *observed* state, never an input. Nothing in the science pipeline may
// read a metric to make a decision, and wall-clock values appear only in
// manifest/telemetry artifacts — never in reports. Instrumentation is
// coarse-grained by design: one update per snapshot decoded, per SPF
// computation, per cycle classified — never per hop or per trace inside an
// inner loop. That keeps the always-on overhead of a full campaign under
// the 3% budget gated by scripts/bench.sh (see DESIGN.md Sec. 12).
//
// Metric names are dot-separated paths ("ingest.bytes", "igp.reconverge_ns").
// Call sites cache the reference once (registry lookup takes a mutex):
//
//   static obs::Counter& bytes = obs::registry().counter("ingest.bytes");
//   bytes.add(view.size());
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace mum::obs {

// Shards per metric. Threads map onto slots round-robin at first use;
// more threads than shards just share slots (updates stay atomic, merges
// stay exact). 16 slots × 64B keeps a Counter at one page-fraction.
inline constexpr std::size_t kShards = 16;

// This thread's shard slot, stable for the thread's lifetime.
std::size_t shard_index() noexcept;

// Small sequential id for this thread (0 = first thread to ask). Used by
// the trace log so JSONL events attribute to a readable thread id rather
// than an opaque pthread handle.
std::uint64_t thread_ordinal() noexcept;

// Monotonic nanoseconds since the first call in this process (steady
// clock). All span/trace timestamps share this origin.
std::uint64_t monotonic_ns() noexcept;

// Peak resident set size of this process in bytes (0 if unavailable).
std::uint64_t peak_rss_bytes() noexcept;

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    shards_[shard_index()].n.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  // Exact merged value: shard slots summed in index order.
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> n{0};
  };
  std::array<Shard, kShards> shards_{};
};

// Last-written (or max-tracked) point-in-time value. Unsharded: gauges are
// set rarely (end of run, end of cycle), never in inner loops.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  // Raise the gauge to v if v is larger (high-water marks).
  void max_of(std::int64_t v) noexcept;
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed log2-bucket histogram: bucket 0 holds the value 0, bucket b >= 1
// holds [2^(b-1), 2^b). 65 buckets cover the full u64 range, so recording
// never allocates, branches on range, or saturates.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) noexcept {
    Shard& s = shards_[shard_index()];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  // Exact merged view: shard slots accumulated in index order.
  Snapshot snapshot() const noexcept;
  void reset() noexcept;

  // Bucket index a value lands in (std::bit_width).
  static std::size_t bucket_of(std::uint64_t v) noexcept;
  // Smallest value of bucket b (0 for b = 0, else 2^(b-1)).
  static std::uint64_t bucket_min(std::size_t b) noexcept;
  // Largest value of bucket b (0 for b = 0, else 2^b - 1).
  static std::uint64_t bucket_max(std::size_t b) noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_{};
};

// Named metric families. Lookup is mutex-guarded and returns a reference
// that stays valid for the registry's lifetime (metrics are never removed;
// reset() zeroes values in place, so cached references survive it).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Zero every metric in place. References handed out remain valid.
  void reset();

  // Full snapshot as a JSON object, names sorted:
  // {"counters":{...},"gauges":{...},
  //  "histograms":{name:{"count":n,"sum":s,"avg":a,
  //                      "buckets":[{"min":lo,"max":hi,"n":k},...]}}}
  // Only non-zero counters/buckets are emitted so the artifact stays
  // readable; count/sum always appear for histograms that were touched.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The process-wide registry every subsystem reports into.
Registry& registry();

// RAII wall-clock timer recording elapsed nanoseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(&h), t0_(monotonic_ns()) {}
  ~ScopedTimer() { h_->record(monotonic_ns() - t0_); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t t0_;
};

}  // namespace mum::obs
