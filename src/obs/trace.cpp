#include "obs/trace.h"

#include <atomic>
#include <fstream>
#include <ostream>

#include "obs/telemetry.h"
#include "util/json.h"

namespace mum::obs {

namespace {

std::atomic<TraceLog*> g_trace{nullptr};

}  // namespace

TraceLog* trace() noexcept {
  return g_trace.load(std::memory_order_acquire);
}

void set_trace(TraceLog* log) noexcept {
  g_trace.store(log, std::memory_order_release);
}

TraceLog::TraceLog(std::ostream& os) : os_(&os) {
  util::JsonWriter json;
  json.begin_object();
  json.field("ev", "meta");
  json.field("version", 1);
  json.field("clock", "monotonic_ns");
  json.end_object();
  write_line(json.str());
}

TraceLog::~TraceLog() = default;

std::unique_ptr<TraceLog> TraceLog::open(const std::string& path) {
  auto os = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*os) return nullptr;
  // The borrowed-stream constructor runs first, then ownership transfers.
  auto log = std::make_unique<TraceLog>(*os);
  log->owned_ = std::move(os);
  return log;
}

void TraceLog::span(std::string_view name, int cycle, std::uint64_t t_ns,
                    std::uint64_t dur_ns) {
  util::JsonWriter json;
  json.begin_object();
  json.field("ev", "span");
  json.field("name", name);
  if (cycle >= 0) json.field("cycle", cycle + 1);  // 1-based, as the paper
  json.field("tid", thread_ordinal());
  json.field("t_ns", t_ns);
  json.field("dur_ns", dur_ns);
  json.end_object();
  write_line(json.str());
}

void TraceLog::mark(std::string_view name, int cycle,
                    std::string_view detail) {
  util::JsonWriter json;
  json.begin_object();
  json.field("ev", "mark");
  json.field("name", name);
  if (cycle >= 0) json.field("cycle", cycle + 1);
  json.field("tid", thread_ordinal());
  json.field("t_ns", monotonic_ns());
  if (!detail.empty()) json.field("detail", detail);
  json.end_object();
  write_line(json.str());
}

std::uint64_t TraceLog::events() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceLog::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  *os_ << line << '\n';
  ++events_;
}

}  // namespace mum::obs
