// Leveled progress/diagnostic logging for the engine and CLI.
//
// Replaces the ad-hoc `std::cerr <<` progress lines the runner used to
// emit: log output goes to a single configurable sink (stderr by default),
// never to stdout — machine-parsed report output stays unpolluted. The CLI
// maps --quiet to kSilent and --verbose to kDebug; the default level is
// kInfo (sparse progress + run summaries).
//
// Thread-safe: one mutex serializes writes; the level check is a relaxed
// atomic load so disabled levels cost one load and a branch. The log is
// operational output only — nothing in the science pipeline reads it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace mum::obs {

enum class LogLevel : std::uint8_t {
  kSilent = 0,  // nothing (CLI --quiet)
  kWarn = 1,    // contained anomalies: checkpoint write failures,
                // quarantines, retries, degradation (on unless --quiet)
  kInfo = 2,    // sparse progress + summaries (default)
  kDebug = 3,   // per-cycle detail (CLI --verbose)
};

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

// Redirect the sink (null silences regardless of level). The default is
// std::cerr. The caller keeps the stream alive while installed.
void set_log_sink(std::ostream* os) noexcept;

// Would a message at `level` currently be written? Callers use this to
// skip building expensive message strings.
bool log_enabled(LogLevel level) noexcept;

// Write one line (a '\n' is appended, the sink is flushed so progress is
// timely under redirection).
void log(LogLevel level, std::string_view message);

inline void log_warn(std::string_view message) {
  log(LogLevel::kWarn, message);
}
inline void log_info(std::string_view message) {
  log(LogLevel::kInfo, message);
}
inline void log_debug(std::string_view message) {
  log(LogLevel::kDebug, message);
}

}  // namespace mum::obs
