#include "obs/telemetry.h"

#include <bit>
#include <chrono>

#include "util/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mum::obs {

namespace {

std::uint64_t next_thread_ordinal() noexcept {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t thread_ordinal() noexcept {
  thread_local const std::uint64_t ordinal = next_thread_ordinal();
  return ordinal;
}

std::size_t shard_index() noexcept {
  thread_local const std::size_t slot =
      static_cast<std::size_t>(thread_ordinal()) % kShards;
  return slot;
}

std::uint64_t monotonic_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           origin)
          .count());
}

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

// --- Counter -----------------------------------------------------------

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.n.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.n.store(0, std::memory_order_relaxed);
}

// --- Gauge -------------------------------------------------------------

void Gauge::max_of(std::int64_t v) noexcept {
  std::int64_t cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// --- Histogram ---------------------------------------------------------

std::size_t Histogram::bucket_of(std::uint64_t v) noexcept {
  return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Histogram::bucket_min(std::size_t b) noexcept {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t Histogram::bucket_max(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

// --- Registry ----------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::JsonWriter json;
  json.begin_object();

  json.key("counters");
  json.begin_object();
  for (const auto& [name, c] : counters_) {
    const std::uint64_t v = c->value();
    if (v != 0) json.field(name, v);
  }
  json.end_object();

  json.key("gauges");
  json.begin_object();
  for (const auto& [name, g] : gauges_) {
    const std::int64_t v = g->value();
    if (v != 0) json.field(name, static_cast<std::int64_t>(v));
  }
  json.end_object();

  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot snap = h->snapshot();
    if (snap.count == 0) continue;
    json.key(name);
    json.begin_object();
    json.field("count", snap.count);
    json.field("sum", snap.sum);
    json.field("avg", static_cast<double>(snap.sum) /
                          static_cast<double>(snap.count));
    json.key("buckets");
    json.begin_array();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      json.begin_object();
      json.field("min", Histogram::bucket_min(b));
      json.field("max", Histogram::bucket_max(b));
      json.field("n", snap.buckets[b]);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();

  json.end_object();
  return json.str();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace mum::obs
