// Structured JSONL event log: one JSON object per line, monotonic-clock
// timestamps (obs::monotonic_ns origin), small sequential thread ids — so
// a campaign run can be replayed on a timeline after the fact.
//
// Event shapes:
//   {"ev":"meta","version":1,"clock":"monotonic_ns"}
//   {"ev":"span","name":"generate","cycle":51,"tid":0,
//    "t_ns":123456,"dur_ns":7890}
//   {"ev":"mark","name":"cycle_failed","cycle":51,"tid":2,
//    "t_ns":123456,"detail":"injected failure"}
//
// A TraceLog serializes writers with an internal mutex; install one
// process-wide with set_trace() and every instrumented layer emits into
// it. When no sink is installed (the default), emission sites reduce to
// one relaxed atomic pointer load — the trace layer costs nothing when
// off. The sink is observed state only: whether a trace is attached never
// changes a report byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace mum::obs {

class TraceLog {
 public:
  // Borrow an open stream (caller keeps it alive past the log).
  explicit TraceLog(std::ostream& os);
  ~TraceLog();

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  // Open (truncate) a file sink; null on I/O failure.
  static std::unique_ptr<TraceLog> open(const std::string& path);

  // A timed phase. `cycle` is 1-based in the output; pass cycle < 0 to
  // omit the field (spans not tied to one cycle, e.g. SPF reconvergence).
  void span(std::string_view name, int cycle, std::uint64_t t_ns,
            std::uint64_t dur_ns);
  // A point event with optional free-text detail.
  void mark(std::string_view name, int cycle, std::string_view detail = {});

  std::uint64_t events() const noexcept;

 private:
  void write_line(const std::string& line);

  std::unique_ptr<std::ostream> owned_;  // set when open() created the sink
  std::ostream* os_;
  mutable std::mutex mutex_;
  std::uint64_t events_ = 0;  // guarded by mutex_
};

// Process-wide trace sink; null when tracing is off. The caller that
// installs a sink owns it and must uninstall (set_trace(nullptr)) before
// destroying it — the runner/CLI do this with a scope guard.
TraceLog* trace() noexcept;
void set_trace(TraceLog* log) noexcept;

}  // namespace mum::obs
