#include "obs/stage.h"

#include "obs/telemetry.h"
#include "obs/trace.h"

namespace mum::obs {

namespace {

thread_local StageTimings* t_current = nullptr;

Histogram& stage_histogram(Stage s) {
  static Histogram* const table[kStageCount] = {
      &registry().histogram("run.stage.generate_ns"),
      &registry().histogram("run.stage.ingest_ns"),
      &registry().histogram("run.stage.spf_ns"),
      &registry().histogram("run.stage.classify_ns"),
      &registry().histogram("run.stage.report_ns"),
  };
  return *table[static_cast<std::size_t>(s)];
}

}  // namespace

const char* to_cstring(Stage stage) noexcept {
  switch (stage) {
    case Stage::kGenerate: return "generate";
    case Stage::kIngest: return "ingest";
    case Stage::kSpf: return "spf";
    case Stage::kClassify: return "classify";
    case Stage::kReport: return "report";
  }
  return "unknown";
}

void add_stage_ns(Stage s, std::uint64_t dur) noexcept {
  if (t_current != nullptr) {
    t_current->ns[static_cast<std::size_t>(s)] += dur;
  }
}

StageScope::StageScope(StageTimings* timings) noexcept : prev_(t_current) {
  t_current = timings;
}

StageScope::~StageScope() { t_current = prev_; }

StageSpan::StageSpan(Stage stage, int cycle) noexcept
    : stage_(stage), cycle_(cycle), t0_(monotonic_ns()) {}

StageSpan::~StageSpan() {
  const std::uint64_t dur = monotonic_ns() - t0_;
  add_stage_ns(stage_, dur);
  stage_histogram(stage_).record(dur);
  if (TraceLog* log = trace()) {
    log->span(to_cstring(stage_), cycle_, t0_, dur);
  }
}

}  // namespace mum::obs
