// Per-cycle stage attribution: which of the engine's phases a cycle's
// wall-clock went to (generate / ingest / spf / classify / report).
//
// The runner installs a StageTimings accumulator for the duration of one
// cycle via StageScope; instrumented blocks bracket themselves with
// StageSpan (or call add_stage_ns directly, as the IGP layer does for SPF
// work buried inside generation). This works because the thread pool runs
// nested parallel regions inline: once a cycle's body starts on a worker,
// every inner phase executes on that same thread, so a thread_local
// accumulator pointer attributes all of the cycle's work correctly at any
// thread count.
//
// Stages may overlap: SPF reconvergence runs *inside* generation, so
// spf <= generate and the stage array does not sum to the cycle duration.
// The manifest documents the same convention.
//
// Every StageSpan also records into the registry histogram
// "run.stage.<name>_ns" and, when a trace sink is installed, emits a span
// event — so the same brackets feed the manifest, the registry, and the
// JSONL timeline.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mum::obs {

enum class Stage : std::uint8_t {
  kGenerate = 0,  // synthetic month generation (probing, evolution)
  kIngest,        // chaos round-trip / shard decode / re-annotation
  kSpf,           // IGP (re)computation, wherever it runs (inside generate)
  kClassify,      // LPR pipeline: extract + filter + group + classify
  kReport,        // checkpoint/report serialization and write-out
};
inline constexpr std::size_t kStageCount = 5;

const char* to_cstring(Stage stage) noexcept;

struct StageTimings {
  std::array<std::uint64_t, kStageCount> ns{};

  std::uint64_t operator[](Stage s) const noexcept {
    return ns[static_cast<std::size_t>(s)];
  }
  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t v : ns) t += v;
    return t;
  }
};

// Attribute `dur` to stage `s` of the current thread's accumulator (no-op
// when none is installed — e.g. SPF during the initial internet build).
void add_stage_ns(Stage s, std::uint64_t dur) noexcept;

// Installs `timings` as this thread's accumulator; restores the previous
// one on destruction (scopes nest).
class StageScope {
 public:
  explicit StageScope(StageTimings* timings) noexcept;
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageTimings* prev_;
};

// RAII bracket for one stage of one cycle: on destruction, attributes the
// elapsed wall-clock to the current accumulator, records it into the
// registry histogram for the stage, and emits a trace span when a sink is
// installed. `cycle` < 0 omits the cycle field in the trace event.
class StageSpan {
 public:
  explicit StageSpan(Stage stage, int cycle = -1) noexcept;
  ~StageSpan();

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  Stage stage_;
  int cycle_;
  std::uint64_t t0_;
};

}  // namespace mum::obs
