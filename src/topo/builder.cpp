#include "topo/builder.h"

#include <algorithm>
#include <string>
#include <vector>

namespace mum::topo {

namespace {

// Interface subnets: /31s carved after the loopback /18 region.
struct IfaceAllocator {
  explicit IfaceAllocator(const net::Ipv4Prefix& block)
      : block_(block), next_(block.size() / 4) {}

  // Allocate a /31 and return both ends.
  std::pair<net::Ipv4Addr, net::Ipv4Addr> next_pair() {
    const net::Ipv4Addr a = block_.nth(next_);
    const net::Ipv4Addr b = block_.nth(next_ + 1);
    next_ += 2;
    return {a, b};
  }

  net::Ipv4Prefix block_;
  std::uint64_t next_;
};

}  // namespace

net::Ipv4Addr loopback_addr(const net::Ipv4Prefix& block,
                            std::uint32_t index) {
  // Loopbacks live in the first quarter of the block, stride 4 to make them
  // visually distinct from interface /31s.
  return block.nth(std::uint64_t{index} * 4 + 1);
}

AsTopology build_as_topology(const BuildParams& params, util::Rng& rng) {
  AsTopology topo(params.asn);
  IfaceAllocator ifaces(params.block);

  std::uint32_t loopback_index = 0;

  auto vendor_draw = [&]() {
    return rng.chance(params.juniper_share) ? Vendor::kJuniper : Vendor::kCisco;
  };

  // Core routers.
  std::vector<RouterId> core;
  for (int i = 0; i < params.core_routers; ++i) {
    const RouterId id = topo.add_router(
        loopback_addr(params.block, loopback_index++), vendor_draw(),
        /*is_border=*/false, "core" + std::to_string(i));
    topo.router(id).response_prob = params.router_response_prob;
    core.push_back(id);
  }

  // PoP routers; decide border status up front and force at least two.
  std::vector<RouterId> pops;
  int borders = 0;
  for (int i = 0; i < params.pop_routers; ++i) {
    const bool is_border = rng.chance(params.border_share);
    borders += is_border ? 1 : 0;
    const RouterId id = topo.add_router(
        loopback_addr(params.block, loopback_index++), vendor_draw(),
        is_border, "pop" + std::to_string(i));
    topo.router(id).response_prob = params.router_response_prob;
    pops.push_back(id);
  }
  for (std::size_t i = 0; borders < 2 && i < pops.size(); ++i) {
    if (!topo.router(pops[i]).is_border) {
      topo.router(pops[i]).is_border = true;
      ++borders;
    }
  }
  if (pops.empty() && !core.empty()) {
    // Degenerate single-level AS: promote two core routers to borders.
    for (std::size_t i = 0; i < core.size() && i < 2; ++i) {
      topo.router(core[i]).is_border = true;
    }
  }

  auto cost_draw = [&]() -> std::uint32_t {
    if (params.uniform_costs) {
      // Mostly cost 1 with a sprinkle of cost-2 adjacencies: ECMP stays
      // plentiful but some equal-cost routes differ in hop count.
      return rng.chance(params.heavy_cost_share) ? 2 : 1;
    }
    return rng.chance(0.2) ? 2 + static_cast<std::uint32_t>(rng.below(3)) : 1;
  };

  auto add_adjacency = [&](RouterId a, RouterId b) {
    const std::uint32_t cost = cost_draw();
    const int copies =
        1 + rng.geometric_extra(params.parallel_link_prob,
                                params.max_parallel_links - 1);
    for (int c = 0; c < copies; ++c) {
      const auto [ia, ib] = ifaces.next_pair();
      // Parallel links in a bundle share the IGP cost so ECMP kicks in.
      topo.add_link(a, b, ia, ib, cost, 0.2 + rng.uniform01() * 2.0);
    }
  };

  // Core: ring + chords (~half mesh) keeps diameter small like real cores.
  for (std::size_t i = 0; i + 1 < core.size(); ++i) {
    add_adjacency(core[i], core[i + 1]);
  }
  if (core.size() > 2) add_adjacency(core.back(), core.front());
  for (std::size_t i = 0; i < core.size(); ++i) {
    for (std::size_t j = i + 2; j < core.size(); ++j) {
      const bool closing_chord = (i == 0 && j + 1 == core.size());
      if (!closing_chord && rng.chance(params.core_chord_prob)) {
        add_adjacency(core[i], core[j]);
      }
    }
  }

  // PoPs: dual-homed into the core at two *adjacent* ring positions — PoPs
  // are regional, so their uplinks land in the same area of the backbone.
  // This keeps ring distances (and therefore tunnel lengths) realistic
  // while still creating router-disjoint ECMP near the attachment.
  for (const RouterId pop : pops) {
    if (core.empty()) break;
    const auto first = static_cast<std::size_t>(rng.below(core.size()));
    add_adjacency(pop, core[first]);
    if (core.size() > 1) {
      add_adjacency(pop, core[(first + 1) % core.size()]);
    }
  }

  // Optional shortcuts between PoPs (regional links).
  const int shortcuts = static_cast<int>(
      params.shortcut_share * static_cast<double>(params.pop_routers));
  for (int s = 0; s < shortcuts && pops.size() > 1; ++s) {
    const auto i = static_cast<std::size_t>(rng.below(pops.size()));
    auto j = static_cast<std::size_t>(rng.below(pops.size() - 1));
    if (j >= i) ++j;
    add_adjacency(pops[i], pops[j]);
  }

  return topo;
}

}  // namespace mum::topo
