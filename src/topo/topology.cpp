#include "topo/topology.h"

#include <algorithm>
#include <vector>

namespace mum::topo {

RouterId AsTopology::add_router(net::Ipv4Addr loopback, Vendor vendor,
                                bool is_border, std::string name) {
  const RouterId id = static_cast<RouterId>(routers_.size());
  Router r;
  r.id = id;
  r.loopback = loopback;
  r.vendor = vendor;
  r.is_border = is_border;
  r.name = std::move(name);
  routers_.push_back(std::move(r));
  adjacency_.emplace_back();
  addr_to_router_.emplace(loopback, id);
  return id;
}

LinkId AsTopology::add_link(RouterId a, RouterId b, net::Ipv4Addr a_iface,
                            net::Ipv4Addr b_iface, std::uint32_t igp_cost,
                            double latency_ms) {
  const LinkId id = static_cast<LinkId>(links_.size());
  Link l;
  l.id = id;
  l.a = a;
  l.b = b;
  l.a_iface = a_iface;
  l.b_iface = b_iface;
  l.igp_cost = igp_cost;
  l.latency_ms = latency_ms;
  links_.push_back(l);
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  addr_to_router_.emplace(a_iface, a);
  addr_to_router_.emplace(b_iface, b);
  return id;
}

std::vector<RouterId> AsTopology::border_routers() const {
  std::vector<RouterId> out;
  for (const auto& r : routers_) {
    if (r.is_border) out.push_back(r.id);
  }
  return out;
}

RouterId AsTopology::router_of_addr(net::Ipv4Addr addr) const {
  const auto it = addr_to_router_.find(addr);
  return it == addr_to_router_.end() ? kInvalidRouter : it->second;
}

CsrAdjacency AsTopology::make_csr(
    const std::vector<std::uint32_t>* cost_override) const {
  CsrAdjacency csr;
  csr.offsets_.resize(routers_.size() + 1);
  csr.arcs_.reserve(links_.size() * 2);
  for (RouterId r = 0; r < routers_.size(); ++r) {
    csr.offsets_[r] = static_cast<std::uint32_t>(csr.arcs_.size());
    // adjacency_ lists are filled in add_link order, i.e. ascending LinkId.
    for (const LinkId lid : adjacency_[r]) {
      const Link& l = links_[lid];
      std::uint32_t cost = l.igp_cost;
      if (cost_override != nullptr && (*cost_override)[lid] != 0) {
        cost = (*cost_override)[lid];
      }
      csr.arcs_.push_back(CsrArc{lid, l.other(r), cost});
      csr.max_cost_ = std::max(csr.max_cost_, cost);
    }
  }
  csr.offsets_.back() = static_cast<std::uint32_t>(csr.arcs_.size());
  return csr;
}

std::size_t AsTopology::parallel_degree(RouterId a, RouterId b) const {
  std::size_t n = 0;
  for (const LinkId lid : adjacency_.at(a)) {
    const Link& l = links_[lid];
    if (l.other(a) == b) ++n;
  }
  return n;
}

bool AsTopology::connected() const {
  if (routers_.empty()) return true;
  std::vector<bool> seen(routers_.size(), false);
  std::vector<RouterId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const RouterId r = stack.back();
    stack.pop_back();
    for (const LinkId lid : adjacency_[r]) {
      const RouterId peer = links_[lid].other(r);
      if (!seen[peer]) {
        seen[peer] = true;
        ++visited;
        stack.push_back(peer);
      }
    }
  }
  return visited == routers_.size();
}

}  // namespace mum::topo
