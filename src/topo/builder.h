// Synthetic router-level topology construction for one AS.
//
// The builder produces a two-level design that mimics operational ISP
// networks: a densely meshed core plus aggregation "PoP" routers hanging off
// the core, with a configurable share of border routers and a configurable
// amount of parallel inter-router links. Interface and loopback addressing is
// carved deterministically out of the AS's address block so that every run
// with the same seed yields byte-identical topologies.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace mum::topo {

struct BuildParams {
  std::uint32_t asn = 0;
  // Address block the AS owns; loopbacks and interface subnets are carved
  // from it (loopbacks from the first /18, links from the rest).
  net::Ipv4Prefix block;
  int core_routers = 4;        // full-ish meshed core
  int pop_routers = 8;         // each attached to >= 2 core routers
  double border_share = 0.5;   // fraction of PoP routers that are borders
  double juniper_share = 0.4;  // vendor mix
  // Probability that an adjacency gets one extra bundled link, applied
  // repeatedly (so 0.35 yields ~1.5 links per bundled adjacency).
  double parallel_link_prob = 0.0;
  int max_parallel_links = 4;
  // Extra random core-to-pop shortcut links, as a fraction of pop count.
  double shortcut_share = 0.3;
  // Probability of each possible non-ring core chord (low values keep the
  // core ring-like and paths longer, as in wide-area backbones).
  double core_chord_prob = 0.15;
  // In uniform-cost mode, share of adjacencies carrying cost 2 instead of 1
  // (equal-cost paths may then differ in hop count => unbalanced IOTPs).
  double heavy_cost_share = 0.1;
  // Probability a router answers traceroute probes (anonymous routers).
  double router_response_prob = 0.97;
  // When true all link costs are 1 (maximizes ECMP); otherwise a few
  // asymmetric costs are injected.
  bool uniform_costs = true;
};

// Build a connected AS topology. Core routers are always non-border; border
// routers are chosen among PoP routers (plus the guarantee of at least two
// borders so the AS can carry transit traffic).
AsTopology build_as_topology(const BuildParams& params, util::Rng& rng);

// Addressing helper: the loopback of router `index` within `block`.
net::Ipv4Addr loopback_addr(const net::Ipv4Prefix& block, std::uint32_t index);

}  // namespace mum::topo
