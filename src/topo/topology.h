// Router-level topology of a single Autonomous System.
//
// A topology is a multigraph: routers connected by point-to-point links.
// Parallel links (several links between the same router pair) are first-class
// because the paper's "ECMP Mono-FEC / Parallel Links" subclass hinges on
// them. Every link endpoint carries its own interface address; every router
// carries a loopback address (the LDP FEC anchor for transit traffic).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"

namespace mum::topo {

using RouterId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr RouterId kInvalidRouter = ~RouterId{0};
inline constexpr LinkId kInvalidLink = ~LinkId{0};

// Router hardware vendor; drives label-range allocation and the RSVP-TE
// re-optimization behaviour observed in the paper (Sec. 4.5: the periodic
// label churn "seems to be mainly related to Juniper hardware").
enum class Vendor : std::uint8_t { kCisco, kJuniper };

struct Router {
  RouterId id = kInvalidRouter;
  net::Ipv4Addr loopback;
  Vendor vendor = Vendor::kCisco;
  bool is_border = false;  // candidate LER (BGP edge)
  // Probability this router answers traceroute probes; anonymous routers
  // ([29] in the paper) are modelled by draws against this.
  double response_prob = 1.0;
  std::string name;
};

// A point-to-point link. Directionless storage; each endpoint has its own
// interface address (the address a traceroute reveals when a packet *enters*
// the router through it).
struct Link {
  LinkId id = kInvalidLink;
  RouterId a = kInvalidRouter;
  RouterId b = kInvalidRouter;
  net::Ipv4Addr a_iface;  // address of the interface on router a
  net::Ipv4Addr b_iface;  // address of the interface on router b
  std::uint32_t igp_cost = 1;
  double latency_ms = 1.0;

  RouterId other(RouterId r) const noexcept { return r == a ? b : a; }
  // Address of the interface on `r`'s side.
  net::Ipv4Addr iface_of(RouterId r) const noexcept {
    return r == a ? a_iface : b_iface;
  }
};

// One directed half of a link as seen from a router: the outgoing link id,
// the router it leads to, and the link's IGP cost. 12 bytes, no padding.
struct CsrArc {
  LinkId link = kInvalidLink;
  RouterId to = kInvalidRouter;
  std::uint32_t cost = 1;
};

// Compressed-sparse-row adjacency snapshot of a topology: every router's
// outgoing arcs stored contiguously, in ascending link-id order. SPF inner
// loops walk this instead of the pointer-chasing `links_of` + `link(lid)`
// pair. A snapshot is immutable and independent of the AsTopology that
// produced it (safe to share read-only across threads); rebuild after
// mutating the topology.
class CsrAdjacency {
 public:
  std::size_t router_count() const noexcept { return offsets_.size() - 1; }
  std::size_t arc_count() const noexcept { return arcs_.size(); }

  std::span<const CsrArc> out(RouterId r) const {
    return {arcs_.data() + offsets_[r], arcs_.data() + offsets_[r + 1]};
  }
  // Largest single-arc cost (0 when there are no arcs). Bounds the distance
  // spread of a Dijkstra frontier, letting the SPF run a cyclic bucket
  // queue instead of a binary heap.
  std::uint32_t max_cost() const noexcept { return max_cost_; }

 private:
  friend class AsTopology;
  std::vector<std::uint32_t> offsets_;  // router_count() + 1
  std::vector<CsrArc> arcs_;            // 2 * link_count()
  std::uint32_t max_cost_ = 0;
};

class AsTopology {
 public:
  explicit AsTopology(std::uint32_t asn) : asn_(asn) {}

  std::uint32_t asn() const noexcept { return asn_; }

  RouterId add_router(net::Ipv4Addr loopback, Vendor vendor, bool is_border,
                      std::string name = {});
  LinkId add_link(RouterId a, RouterId b, net::Ipv4Addr a_iface,
                  net::Ipv4Addr b_iface, std::uint32_t igp_cost = 1,
                  double latency_ms = 1.0);

  std::size_t router_count() const noexcept { return routers_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }

  const Router& router(RouterId id) const { return routers_.at(id); }
  Router& router(RouterId id) { return routers_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }

  const std::vector<Router>& routers() const noexcept { return routers_; }
  const std::vector<Link>& links() const noexcept { return links_; }

  // Links incident to `r`.
  const std::vector<LinkId>& links_of(RouterId r) const {
    return adjacency_.at(r);
  }

  // All border routers (candidate LERs).
  std::vector<RouterId> border_routers() const;

  // Router owning `addr` (loopback or interface); kInvalidRouter if none.
  RouterId router_of_addr(net::Ipv4Addr addr) const;

  // CSR adjacency snapshot of the current link set (see CsrAdjacency).
  // `cost_override` (indexed by LinkId; 0 = keep base metric) prices arcs
  // with per-cycle metric overrides without mutating the topology.
  CsrAdjacency make_csr(
      const std::vector<std::uint32_t>* cost_override = nullptr) const;

  // Number of distinct links between a and b (parallel-link width).
  std::size_t parallel_degree(RouterId a, RouterId b) const;

  // True when the graph is connected (every router reachable from router 0).
  bool connected() const;

 private:
  std::uint32_t asn_;
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  std::unordered_map<net::Ipv4Addr, RouterId> addr_to_router_;
};

}  // namespace mum::topo
