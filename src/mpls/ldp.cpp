#include "mpls/ldp.h"

namespace mum::mpls {

LdpPlane LdpPlane::build(const topo::AsTopology& topo,
                         const igp::IgpState& igp, const LdpConfig& config,
                         std::vector<LabelPool>& pools) {
  LdpPlane plane;
  plane.config_ = config;
  plane.n_ = topo.router_count();
  plane.labels_.assign(plane.n_ * plane.n_, kNoLabel);

  for (topo::RouterId fec = 0; fec < plane.n_; ++fec) {
    const bool is_candidate_fec =
        config.fec_all_loopbacks || topo.router(fec).is_border;
    if (!is_candidate_fec) continue;
    for (topo::RouterId r = 0; r < plane.n_; ++r) {
      if (r == fec) {
        plane.labels_[r * plane.n_ + fec] =
            config.php ? net::kLabelImplicitNull
                       : pools[r].allocate();
        continue;
      }
      if (!igp.rib(r).reachable(fec)) continue;
      // Downstream unsolicited, liberal retention: every reachable router
      // binds one label per FEC and advertises it to all neighbours.
      plane.labels_[r * plane.n_ + fec] = pools[r].allocate();
    }
  }
  return plane;
}

std::uint32_t LdpPlane::label_of(topo::RouterId r, topo::RouterId fec) const {
  return labels_.at(r * n_ + fec);
}

bool LdpPlane::has_fec(topo::RouterId fec) const {
  for (std::size_t r = 0; r < n_; ++r) {
    if (labels_[r * n_ + fec] != kNoLabel) return true;
  }
  return false;
}

}  // namespace mum::mpls
