#include "mpls/ldp.h"

namespace mum::mpls {

LdpPlane LdpPlane::build(const topo::AsTopology& topo,
                         const igp::IgpState& igp, const LdpConfig& config,
                         std::vector<LabelPool>& pools) {
  LdpPlane plane;
  plane.config_ = config;
  plane.n_ = topo.router_count();
  plane.labels_.assign(plane.n_ * plane.n_, kNoLabel);

  std::vector<std::uint8_t> candidate(plane.n_, 0);
  for (topo::RouterId fec = 0; fec < plane.n_; ++fec) {
    candidate[fec] = config.fec_all_loopbacks || topo.router(fec).is_border;
  }

  // Router-major order: one flat-RIB view per router, contiguous walks over
  // its label row. Each per-router pool still allocates in ascending-FEC
  // order, so the label assignment is identical to the FEC-major loop.
  for (topo::RouterId r = 0; r < plane.n_; ++r) {
    const igp::RouterRib rib = igp.rib(r);
    for (topo::RouterId fec = 0; fec < plane.n_; ++fec) {
      if (!candidate[fec]) continue;
      if (r == fec) {
        plane.labels_[r * plane.n_ + fec] =
            config.php ? net::kLabelImplicitNull
                       : pools[r].allocate();
        continue;
      }
      if (!rib.reachable(fec)) continue;
      // Downstream unsolicited, liberal retention: every reachable router
      // binds one label per FEC and advertises it to all neighbours.
      plane.labels_[r * plane.n_ + fec] = pools[r].allocate();
    }
  }
  return plane;
}

std::uint32_t LdpPlane::label_of(topo::RouterId r, topo::RouterId fec) const {
  return labels_.at(r * n_ + fec);
}

bool LdpPlane::has_fec(topo::RouterId fec) const {
  for (std::size_t r = 0; r < n_; ++r) {
    if (labels_[r * n_ + fec] != kNoLabel) return true;
  }
  return false;
}

}  // namespace mum::mpls
