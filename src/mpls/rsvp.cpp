#include "mpls/rsvp.h"

#include <algorithm>
#include <set>
#include <span>

#include "net/lse.h"

namespace mum::mpls {

std::vector<topo::LinkId> RsvpTePlane::compute_route(
    topo::RouterId ingress, topo::RouterId egress,
    std::uint32_t variant) const {
  // Walk the ECMP DAG from ingress to egress, picking among equal-cost next
  // hops with a deterministic index derived from `variant`. variant==0
  // always takes the first next hop (the canonical IGP route); higher
  // variants spread over branches, yielding (possibly) diverse routes.
  std::vector<topo::LinkId> route;
  topo::RouterId at = ingress;
  std::uint32_t salt = variant;
  while (at != egress) {
    const std::span<const igp::NextHop> nhs =
        igp_->rib(at).nexthops(egress);
    if (nhs.empty()) return {};  // unreachable
    const std::size_t pick =
        nhs.size() == 1 ? 0 : (salt % nhs.size());
    salt = salt * 2654435761u + 17;  // decorrelate successive picks
    const auto& nh = nhs[pick];
    route.push_back(nh.link);
    at = nh.neighbor;
  }
  return route;
}

bool operator==(std::span<const TeHop> a, std::span<const TeHop> b) noexcept {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

std::span<const TeHop> RsvpTePlane::sign_route(
    topo::RouterId ingress, topo::RouterId egress,
    const std::vector<topo::LinkId>& route, std::vector<LabelPool>& pools) {
  // Hop storage is bump-allocated: the pristine build fills the base arena,
  // post-pristine re-signalling fills the per-cycle scratch arena.
  util::Arena& arena = pristine_marked_ ? scratch_arena_ : base_arena_;
  const std::span<TeHop> hops = arena.make_array<TeHop>(route.size());
  topo::RouterId at = ingress;
  std::size_t i = 0;
  for (const topo::LinkId lid : route) {
    const topo::RouterId next = topo_->link(lid).other(at);
    TeHop& hop = hops[i++];
    hop.router = next;
    hop.in_link = lid;
    const bool is_egress = (next == egress);
    hop.in_label = (is_egress && config_.php) ? net::kLabelImplicitNull
                                              : pools[next].allocate();
    at = next;
  }
  return hops;
}

void RsvpTePlane::save_undo(const TeLsp& lsp) {
  if (!pristine_marked_ || saved_epoch_[lsp.id] == epoch_) return;
  saved_epoch_[lsp.id] = epoch_;
  undo_.push_back(Undo{lsp.id, lsp.hops, lsp.resignal_count, lsp.on_backup});
}

void RsvpTePlane::mark_pristine() {
  pristine_marked_ = true;
  pristine_lsp_count_ = lsps_.size();
  saved_epoch_.assign(lsps_.size(), 0);
  undo_.clear();
  epoch_ = 1;
}

void RsvpTePlane::restore_pristine() {
  if (!pristine_marked_) return;
  for (const Undo& u : undo_) {
    TeLsp& lsp = lsps_[u.id];
    lsp.hops = u.hops;
    lsp.resignal_count = u.resignal_count;
    lsp.on_backup = u.on_backup;
  }
  undo_.clear();
  ++epoch_;
  lsps_.resize(pristine_lsp_count_);
  scratch_arena_.reset();
}

std::vector<LspId> RsvpTePlane::signal(topo::RouterId ingress,
                                       topo::RouterId egress, int count,
                                       std::vector<LabelPool>& pools,
                                       util::Rng& rng) {
  std::vector<LspId> ids;
  std::uint32_t variant = 0;
  for (int i = 0; i < count; ++i) {
    // First LSP rides the canonical IGP route. Subsequent LSPs usually share
    // it (the paper's "TE paths often take the same IP path") and sometimes
    // take a diverse route.
    if (i > 0 && rng.chance(config_.diverse_route_prob)) ++variant;
    const auto route = compute_route(ingress, egress, variant);
    if (route.empty()) break;
    TeLsp lsp;
    lsp.id = static_cast<LspId>(lsps_.size());
    lsp.ingress = ingress;
    lsp.egress = egress;
    lsp.hops = sign_route(ingress, egress, route, pools);
    if (config_.frr) {
      // Pre-signal a maximally link-disjoint backup: search route variants
      // for the one sharing the fewest links with the primary.
      const std::set<topo::LinkId> primary(route.begin(), route.end());
      std::vector<topo::LinkId> best;
      std::size_t best_shared = ~std::size_t{0};
      for (std::uint32_t v = 1; v <= 8; ++v) {
        const auto candidate = compute_route(ingress, egress, v);
        if (candidate.empty()) continue;
        std::size_t shared = 0;
        for (const topo::LinkId l : candidate) {
          shared += primary.contains(l) ? 1 : 0;
        }
        if (shared < best_shared) {
          best_shared = shared;
          best = candidate;
        }
        if (shared == 0) break;
      }
      if (!best.empty() && best_shared < route.size()) {
        lsp.backup_hops = sign_route(ingress, egress, best, pools);
      }
    }
    ids.push_back(lsp.id);
    lsps_.push_back(std::move(lsp));
  }
  return ids;
}

void RsvpTePlane::resignal_over(LspId id,
                                const std::vector<topo::LinkId>& route,
                                std::vector<LabelPool>& pools) {
  if (route.empty()) return;
  TeLsp& lsp = lsps_.at(id);
  save_undo(lsp);
  lsp.hops = sign_route(lsp.ingress, lsp.egress, route, pools);
  lsp.on_backup = false;
  ++lsp.resignal_count;
}

bool RsvpTePlane::crosses_down_link(
    LspId id, const std::vector<bool>& link_down) const {
  for (const TeHop& hop : lsps_.at(id).active_hops()) {
    if (link_down[hop.in_link]) return true;
  }
  return false;
}

bool RsvpTePlane::activate_backup(LspId id,
                                  const std::vector<bool>& link_down) {
  TeLsp& lsp = lsps_.at(id);
  if (lsp.backup_hops.empty()) return false;
  for (const TeHop& hop : lsp.backup_hops) {
    if (link_down[hop.in_link]) return false;  // backup broken too
  }
  save_undo(lsp);
  lsp.on_backup = true;
  return true;
}

void RsvpTePlane::revert_to_primary(LspId id) {
  TeLsp& lsp = lsps_.at(id);
  save_undo(lsp);
  lsp.on_backup = false;
}

void RsvpTePlane::reoptimize(LspId id, std::vector<LabelPool>& pools) {
  TeLsp& lsp = lsps_.at(id);
  std::vector<topo::LinkId> route;
  route.reserve(lsp.hops.size());
  for (const TeHop& hop : lsp.hops) route.push_back(hop.in_link);
  save_undo(lsp);
  lsp.hops = sign_route(lsp.ingress, lsp.egress, route, pools);
  ++lsp.resignal_count;
}

std::vector<LspId> RsvpTePlane::lsps_between(topo::RouterId ingress,
                                             topo::RouterId egress) const {
  std::vector<LspId> out;
  for (const TeLsp& lsp : lsps_) {
    if (lsp.ingress == ingress && lsp.egress == egress) out.push_back(lsp.id);
  }
  return out;
}

}  // namespace mum::mpls
