// RSVP-TE (RFC 3209) control-plane simulation.
//
// RSVP-TE semantics that matter for LPR:
//  * Labels are allocated per LSP: a router traversed by two TE LSPs of the
//    same <Ingress, Egress> pair hands out two *different* labels — the
//    signature of the paper's Multi-FEC class.
//  * An LSP follows one explicit route (no ECMP spraying inside the LSP).
//    Several LSPs of the same LER pair may follow the same IP route (the
//    paper's striking observation) or physically diverge.
//  * Ingress routers may periodically "re-optimize" an LSP: re-signal it,
//    drawing fresh labels at every hop (Fig. 17's sawtooth; mostly a Juniper
//    timer behaviour per the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "igp/spf.h"
#include "mpls/label_pool.h"
#include "topo/topology.h"
#include "util/arena.h"
#include "util/rng.h"

namespace mum::mpls {

using LspId = std::uint32_t;

// One signalled hop of a TE LSP: the packet arrives at `router` via `in_link`
// carrying `in_label` (the label `router` allocated for this LSP).
struct TeHop {
  topo::RouterId router = topo::kInvalidRouter;
  topo::LinkId in_link = topo::kInvalidLink;
  std::uint32_t in_label = 0;

  friend bool operator==(const TeHop&, const TeHop&) = default;
};

// Deep element-wise comparison for hop sequences. TeLsp stores hop views
// into the owning plane's arenas; two views are "the same path" when their
// contents match, wherever they are stored.
bool operator==(std::span<const TeHop> a, std::span<const TeHop> b) noexcept;

struct TeLsp {
  LspId id = 0;
  topo::RouterId ingress = topo::kInvalidRouter;
  topo::RouterId egress = topo::kInvalidRouter;
  // Hops strictly after the ingress, in order; the last entry is the egress
  // (its in_label is implicit-null when PHP applies). Views into the owning
  // RsvpTePlane's hop arenas; valid for the plane's lifetime (re-signalling
  // repoints the view, it never frees the old storage mid-cycle).
  std::span<const TeHop> hops;
  // Pre-signalled fast-reroute backup (RFC 4090): a maximally link-disjoint
  // path with its own labels, ready before any failure. Empty when FRR is
  // off or no disjoint route exists.
  std::span<const TeHop> backup_hops;
  // How many times this LSP has been re-signalled.
  std::uint32_t resignal_count = 0;
  // True while traffic rides the backup path.
  bool on_backup = false;

  std::span<const TeHop> active_hops() const noexcept {
    return on_backup && !backup_hops.empty() ? backup_hops : hops;
  }
};

struct RsvpConfig {
  bool php = true;
  // Probability that an extra LSP of a LER pair is signalled over a
  // physically different route instead of re-using the IGP route. The paper
  // finds TE paths usually share the same IP route, so keep this small.
  double diverse_route_prob = 0.25;
  // Pre-compute fast-reroute backups at signalling time (RFC 4090). Under
  // FRR a failure switches to the backup's pre-allocated labels instead of
  // re-signalling with fresh ones — the LSP content the Persistence filter
  // sees changes path but not unpredictably.
  bool frr = false;
};

// Computes and stores TE LSPs for one AS.
class RsvpTePlane {
 public:
  RsvpTePlane(const topo::AsTopology* topo, const igp::IgpState* igp,
              RsvpConfig config)
      : topo_(topo), igp_(igp), config_(config) {}

  // Signal `count` LSPs between the LER pair. The first LSP follows the
  // IGP shortest route; following ones re-use it or take the next-best
  // diverse route according to `diverse_route_prob`.
  std::vector<LspId> signal(topo::RouterId ingress, topo::RouterId egress,
                            int count, std::vector<LabelPool>& pools,
                            util::Rng& rng);

  // Re-signal an existing LSP over its current route with fresh labels
  // (RSVP-TE make-before-break re-optimization).
  void reoptimize(LspId id, std::vector<LabelPool>& pools);

  // Re-signal an existing LSP over a NEW route (reconvergence around a
  // failure). No-op when `route` is empty.
  void resignal_over(LspId id, const std::vector<topo::LinkId>& route,
                     std::vector<LabelPool>& pools);

  // True when the LSP's ACTIVE route traverses any link marked down.
  bool crosses_down_link(LspId id, const std::vector<bool>& link_down) const;

  // Fast reroute: switch the LSP onto its pre-signalled backup (no new
  // labels). Returns false when no backup exists or it is also broken.
  bool activate_backup(LspId id, const std::vector<bool>& link_down);
  // Revert to the primary path (failure cleared / month ended).
  void revert_to_primary(LspId id);

  const TeLsp& lsp(LspId id) const { return lsps_.at(id); }
  std::size_t lsp_count() const noexcept { return lsps_.size(); }
  const std::vector<TeLsp>& lsps() const noexcept { return lsps_; }

  // All LSPs of a LER pair.
  std::vector<LspId> lsps_between(topo::RouterId ingress,
                                  topo::RouterId egress) const;

  // A loop-free route from ingress to egress as a link sequence. `variant` 0
  // is the IGP shortest route (ECMP ties broken deterministically); higher
  // variants prefer distinct intermediate routers when possible.
  std::vector<topo::LinkId> compute_route(topo::RouterId ingress,
                                          topo::RouterId egress,
                                          std::uint32_t variant) const;

  // --- cycle-evolution support (gen::DeltaEvolver / MonthContext) ---
  //
  // mark_pristine() freezes the fully signalled start-of-month control plane
  // as the rollback baseline. Later mutations (reoptimize, resignal_over,
  // backup activation) record a one-shot undo entry per LSP and draw their
  // hop storage from a scratch arena; restore_pristine() rolls every LSP
  // back and resets the scratch arena, so a steady month-over-month workload
  // stops allocating once the scratch high-water mark is reached.
  void mark_pristine();
  void restore_pristine();

  // Arena the post-pristine mutations allocate from (capacity observability
  // for the no-growth gate in tests).
  const util::Arena& scratch_arena() const noexcept { return scratch_arena_; }

 private:
  std::span<const TeHop> sign_route(topo::RouterId ingress,
                                    topo::RouterId egress,
                                    const std::vector<topo::LinkId>& route,
                                    std::vector<LabelPool>& pools);
  // Record the pre-mutation state of `lsp` once per restore epoch.
  void save_undo(const TeLsp& lsp);

  const topo::AsTopology* topo_;
  const igp::IgpState* igp_;
  RsvpConfig config_;
  std::vector<TeLsp> lsps_;

  // Hop storage: signalling before mark_pristine() fills base_arena_ (lives
  // until the plane dies); mutations after it fill scratch_arena_ (reset on
  // every restore_pristine()).
  util::Arena base_arena_{16 * 1024};
  util::Arena scratch_arena_{16 * 1024};
  bool pristine_marked_ = false;

  struct Undo {
    LspId id = 0;
    std::span<const TeHop> hops;
    std::uint32_t resignal_count = 0;
    bool on_backup = false;
  };
  std::vector<Undo> undo_;
  std::vector<std::uint32_t> saved_epoch_;  // per LSP; == epoch_ once saved
  std::uint32_t epoch_ = 1;
  std::size_t pristine_lsp_count_ = 0;
};

}  // namespace mum::mpls
