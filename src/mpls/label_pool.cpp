#include "mpls/label_pool.h"

namespace mum::mpls {

LabelRange default_range(topo::Vendor vendor) noexcept {
  switch (vendor) {
    case topo::Vendor::kJuniper:
      // Matches the observable label window of the paper's Fig. 17.
      return LabelRange{300000, 800000};
    case topo::Vendor::kCisco:
      return LabelRange{16, 100000};
  }
  return LabelRange{};
}

LabelPool::LabelPool(topo::Vendor vendor, std::uint64_t seed)
    : LabelPool(default_range(vendor)) {
  const std::uint64_t span = range_.last - range_.first + 1;
  // Offset into the first half so short-lived pools still look "low".
  next_ = range_.first +
          static_cast<std::uint32_t>((seed * 0x9e3779b97f4a7c15ull >> 33) %
                                     (span / 2 + 1));
}

std::uint32_t LabelPool::allocate() noexcept {
  if (next_ > range_.last || next_ < range_.first) next_ = range_.first;
  ++count_;
  return next_++;
}

void LabelPool::burn(std::uint64_t n) noexcept {
  if (n == 0) return;
  // Exactly n allocate() calls, in O(1): the last value emitted is
  // first + (p + n - 1) % width, and next_ is left one past it (possibly
  // un-normalized past `last`, just as allocate() leaves it).
  const std::uint64_t width =
      std::uint64_t{range_.last} - range_.first + 1;
  const std::uint64_t p = (next_ > range_.last || next_ < range_.first)
                              ? 0
                              : next_ - range_.first;
  next_ = range_.first + static_cast<std::uint32_t>((p + n - 1) % width) + 1;
  count_ += n;
}

}  // namespace mum::mpls
