// LDP (Label Distribution Protocol, RFC 5036) control-plane simulation.
//
// LDP semantics that matter for LPR and that we model faithfully:
//  * Downstream allocation: for a given FEC, the label shown at a router R is
//    the label *R itself* chose and advertised upstream.
//  * Router scope: R advertises the SAME label for a FEC to all neighbours.
//    Hence two LDP LSPs converging on the same router interface always carry
//    the same label there — the signature of the paper's Mono-FEC class.
//  * FECs for transit traffic are loopbacks of (border) egress routers; the
//    LSP-tree toward a FEC follows the IGP shortest paths, including every
//    ECMP branch.
//  * PHP: the egress advertises implicit-null, making the penultimate router
//    pop the stack, so traceroute shows no label at the egress LER.
#pragma once

#include <cstdint>
#include <vector>

#include "igp/spf.h"
#include "mpls/label_pool.h"
#include "topo/topology.h"

namespace mum::mpls {

struct LdpConfig {
  bool php = true;  // penultimate hop popping (implicit-null advertisement)
  // When true, allocate FEC labels for every router loopback (Cisco default:
  // all IGP prefixes); when false only border loopbacks get labels (Juniper
  // default: loopbacks — transit FECs are border loopbacks anyway).
  bool fec_all_loopbacks = false;
};

// The full LDP state of one AS: labels[r][fec] = label router r advertised
// for the FEC anchored at router `fec`'s loopback.
class LdpPlane {
 public:
  static constexpr std::uint32_t kNoLabel = ~std::uint32_t{0};

  // Builds label bindings, drawing from the per-router pools (indexed by
  // RouterId; the vector must have one pool per router).
  static LdpPlane build(const topo::AsTopology& topo, const igp::IgpState& igp,
                        const LdpConfig& config,
                        std::vector<LabelPool>& pools);

  const LdpConfig& config() const noexcept { return config_; }

  // Label router `r` advertised for FEC `fec` (an egress RouterId).
  // Returns kLabelImplicitNull at the egress itself when PHP is on,
  // kNoLabel when `r` has no binding for that FEC.
  std::uint32_t label_of(topo::RouterId r, topo::RouterId fec) const;

  // True when the FEC is bound anywhere (i.e. an LSP-tree exists toward it).
  bool has_fec(topo::RouterId fec) const;

 private:
  LdpConfig config_;
  // labels_[r * n + fec]
  std::vector<std::uint32_t> labels_;
  std::size_t n_ = 0;
};

}  // namespace mum::mpls
