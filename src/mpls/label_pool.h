// Per-router MPLS label allocation.
//
// Label ranges are vendor-specific (the paper leans on this: Sec. 2.2 notes
// ranges come from manufacturer documentation, and Sec. 4.5 / Fig. 17 shows
// Juniper-style RSVP-TE labels sweeping a 300k-800k range and wrapping).
// Each router owns one pool; LDP and RSVP-TE both draw from it, which is why
// a label value is only locally meaningful — the core assumption behind LPR's
// "same IP + different labels => different FECs" inference.
#pragma once

#include <cstdint>

#include "net/lse.h"
#include "topo/topology.h"

namespace mum::mpls {

struct LabelRange {
  std::uint32_t first = net::kLabelFirstUnreserved;
  std::uint32_t last = net::kLabelMax;
};

// Default dynamic-label ranges per vendor. The Juniper range matches the
// observable window of Fig. 17 (labels cycling between ~300000 and ~800000);
// the Cisco range matches the classic 16..100000 default.
LabelRange default_range(topo::Vendor vendor) noexcept;

class LabelPool {
 public:
  LabelPool() = default;
  explicit LabelPool(LabelRange range) : range_(range), next_(range.first) {}
  explicit LabelPool(topo::Vendor vendor) : LabelPool(default_range(vendor)) {}
  // Router pools in a real network are desynchronized (allocation history,
  // reboots): seed an arbitrary starting point inside the range. Without
  // this, every router would hand out the same value for the k-th FEC and
  // label values would collide across routers systematically.
  LabelPool(topo::Vendor vendor, std::uint64_t seed);

  // Allocate the next label; wraps to the start of the range when exhausted
  // (this wrap is what produces the sawtooth of Fig. 17).
  std::uint32_t allocate() noexcept;

  // Snapshot of the allocation counter. Cycle evolution rewinds pools to a
  // saved state instead of reconstructing them, so a re-signalled control
  // plane draws exactly the label sequence a from-scratch build would.
  struct State {
    std::uint32_t next = net::kLabelFirstUnreserved;
    std::uint64_t count = 0;
  };
  State state() const noexcept { return State{next_, count_}; }
  void restore(const State& s) noexcept {
    next_ = s.next;
    count_ = s.count;
  }

  // Advance the counter as if `n` labels had been handed out and discarded:
  // allocation-history drift between LSP re-signalling epochs (the paper's
  // Fig. 17 label motion), in O(1) regardless of n.
  void burn(std::uint64_t n) noexcept;

  // Number of labels handed out so far.
  std::uint64_t allocated() const noexcept { return count_; }
  const LabelRange& range() const noexcept { return range_; }

 private:
  LabelRange range_{};
  std::uint32_t next_ = net::kLabelFirstUnreserved;
  std::uint64_t count_ = 0;
};

}  // namespace mum::mpls
