// Decode fault taxonomy and diagnostics for tolerant dataset ingest.
//
// The warts-lite decoder runs in one of two modes:
//
//   * strict   — the first malformed field aborts the decode (nullopt), with
//     the fault class and exact byte offset reported in DecodeDiagnostics.
//     This is the right mode for trusted archives where corruption means a
//     storage problem the operator must see.
//   * tolerant — malformed records are skipped and counted; everything that
//     does decode is returned. Arbitrary bytes never throw and never invoke
//     UB; resource claims (trace/hop/stack counts) are validated against the
//     bytes actually present before any allocation. This is the mode for
//     real-world messy captures, mirroring how the paper's pipeline survives
//     partial Archipelago data.
//
// DecodeDiagnostics is the structured record of what tolerant mode skipped:
// per-fault-class counters plus the first few fault samples (class, byte
// offset, record index, detail). It flows into lpr::CycleReport and its JSON
// form so a tolerant run documents exactly what it ignored.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mum::util {
class JsonWriter;
}

namespace mum::dataset {

enum class FaultClass : std::uint8_t {
  kBadMagic = 0,      // not a warts-lite container at all
  kBadVersion,        // unknown format version
  kTruncatedHeader,   // snapshot header ends mid-field
  kBadTraceHeader,    // a trace record's fixed fields are malformed
  kBadHop,            // a hop's fields are malformed / truncated
  kBadLabelStack,     // a quoted label stack is malformed / truncated
  kOversizedClaim,    // a count field claims more than the bytes can hold
  kRecordOverrun,     // a v2 record frame exceeds the remaining buffer
  kTrailingBytes,     // a record (or the file) carries unconsumed bytes
  // v3 pack (columnar) container faults — see dataset/pack.h. Oversized
  // section claims (a table entry pointing past the mapping) reuse
  // kOversizedClaim above; these cover the structurally distinct cases.
  kBadSectionTable,   // duplicate/misaligned/overlapping section entry
  kChecksumMismatch,  // stored section checksum does not match the bytes
  kBadOffsetIndex,    // an offset column is non-monotonic or out of range
};
inline constexpr std::size_t kFaultClassCount = 12;

const char* to_cstring(FaultClass fault) noexcept;

struct DecodeFault {
  FaultClass fault = FaultClass::kBadMagic;
  std::size_t offset = 0;    // byte offset of the field that failed
  std::uint64_t record = 0;  // trace record index (0 for header faults)
  std::string detail;
};

struct DecodeDiagnostics {
  // How many fault samples are retained verbatim (counters are unbounded).
  static constexpr std::size_t kMaxSamples = 8;

  std::array<std::uint64_t, kFaultClassCount> counts{};
  std::uint64_t records_decoded = 0;
  std::uint64_t records_skipped = 0;
  std::vector<DecodeFault> samples;

  std::uint64_t count(FaultClass fault) const noexcept {
    return counts[static_cast<std::size_t>(fault)];
  }
  std::uint64_t faults_total() const noexcept;
  bool clean() const noexcept {
    return faults_total() == 0 && records_skipped == 0;
  }

  // Bump the class counter and retain the sample if under kMaxSamples.
  void add_fault(FaultClass fault, std::size_t offset, std::uint64_t record,
                 std::string detail);

  // Deterministic accumulation across files (counters sum; samples keep the
  // first kMaxSamples in merge order).
  DecodeDiagnostics& merge(const DecodeDiagnostics& other);

  // JSON object: { "records_decoded": n, "records_skipped": n,
  //   "faults": {class: count, ...}, "samples": [...] }.
  void write_json(util::JsonWriter& json) const;
};

struct DecodeOptions {
  bool tolerant = false;
};

}  // namespace mum::dataset
