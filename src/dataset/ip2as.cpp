#include "dataset/ip2as.h"

#include "util/strings.h"

namespace mum::dataset {

void Ip2As::add_prefix(const net::Ipv4Prefix& prefix, std::uint32_t asn) {
  trie_.insert(prefix, asn);
}

std::uint32_t Ip2As::lookup(net::Ipv4Addr addr) const {
  const auto hit = trie_.lookup(addr);
  return hit.value_or(kUnknownAsn);
}

void Ip2As::annotate(Trace& trace) const {
  trace.dst_asn = lookup(trace.dst);
  for (auto& hop : trace.hops) {
    hop.asn = hop.anonymous() ? kUnknownAsn : lookup(hop.addr);
  }
}

void Ip2As::annotate(std::span<Trace> traces) const {
  for (auto& t : traces) annotate(t);
}

std::uint32_t AsnCache::miss(std::size_t slot_index, std::uint32_t addr,
                             const Ip2As& table) {
  const std::uint32_t asn = table.lookup(net::Ipv4Addr(addr));
  slots_[slot_index] = (std::uint64_t{addr} << 32) | asn;
  // Keep the load factor below 1/4 so hits stay near one probe — the table
  // is persistent, so growth cost amortizes over a whole campaign.
  if (++used_ * 4 > slots_.size()) grow();
  return asn;
}

void AsnCache::grow() {
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, 0);
  --shift_;
  const std::size_t mask = slots_.size() - 1;
  for (const std::uint64_t slot : old) {
    const auto key = static_cast<std::uint32_t>(slot >> 32);
    if (key == 0) continue;
    std::size_t i = (key * 0x9E3779B9u) >> shift_;
    while (static_cast<std::uint32_t>(slots_[i] >> 32) != 0) {
      i = (i + 1) & mask;
    }
    slots_[i] = slot;
  }
}

void Ip2As::annotate(TraceBatch& batch) const {
  AsnCache memo;
  annotate(batch, memo);
}

void Ip2As::annotate(TraceBatch& batch, AsnCache& memo) const {
  const auto dst = batch.dst_col();
  const auto dst_asn = batch.dst_asn_mut();
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst_asn[i] = dst[i] != 0 ? memo.get(dst[i], *this)
                             : lookup(net::Ipv4Addr(0));
  }
  const auto addrs = batch.hop_addr_col();
  const auto asn = batch.hop_asn_mut();
  for (std::size_t h = 0; h < addrs.size(); ++h) {
    asn[h] = addrs[h] != 0 ? memo.get(addrs[h], *this) : kUnknownAsn;
  }
}

std::string to_table_text(const Ip2As& table) {
  std::string out;
  for (const auto& [prefix, asn] : table.entries()) {
    out += prefix.to_string();
    out += ' ';
    out += std::to_string(asn);
    out += '\n';
  }
  return out;
}

std::optional<Ip2As> ip2as_from_text(std::string_view text) {
  Ip2As table;
  for (const auto raw_line : util::split(text, '\n')) {
    const auto line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto space = line.find_first_of(" \t");
    if (space == std::string_view::npos) return std::nullopt;
    const auto prefix = net::Ipv4Prefix::parse(util::trim(line.substr(0, space)));
    const auto asn = util::parse_u64(util::trim(line.substr(space + 1)));
    if (!prefix || !asn || *asn > 0xFFFFFFFFull) return std::nullopt;
    table.add_prefix(*prefix, static_cast<std::uint32_t>(*asn));
  }
  return table;
}

}  // namespace mum::dataset
