#include "dataset/ip2as.h"

#include "util/strings.h"

namespace mum::dataset {

void Ip2As::add_prefix(const net::Ipv4Prefix& prefix, std::uint32_t asn) {
  trie_.insert(prefix, asn);
}

std::uint32_t Ip2As::lookup(net::Ipv4Addr addr) const {
  const auto hit = trie_.lookup(addr);
  return hit.value_or(kUnknownAsn);
}

void Ip2As::annotate(Trace& trace) const {
  trace.dst_asn = lookup(trace.dst);
  for (auto& hop : trace.hops) {
    hop.asn = hop.anonymous() ? kUnknownAsn : lookup(hop.addr);
  }
}

void Ip2As::annotate(std::vector<Trace>& traces) const {
  for (auto& t : traces) annotate(t);
}

std::string to_table_text(const Ip2As& table) {
  std::string out;
  for (const auto& [prefix, asn] : table.entries()) {
    out += prefix.to_string();
    out += ' ';
    out += std::to_string(asn);
    out += '\n';
  }
  return out;
}

std::optional<Ip2As> ip2as_from_text(std::string_view text) {
  Ip2As table;
  for (const auto raw_line : util::split(text, '\n')) {
    const auto line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto space = line.find_first_of(" \t");
    if (space == std::string_view::npos) return std::nullopt;
    const auto prefix = net::Ipv4Prefix::parse(util::trim(line.substr(0, space)));
    const auto asn = util::parse_u64(util::trim(line.substr(space + 1)));
    if (!prefix || !asn || *asn > 0xFFFFFFFFull) return std::nullopt;
    table.add_prefix(*prefix, static_cast<std::uint32_t>(*asn));
  }
  return table;
}

}  // namespace mum::dataset
