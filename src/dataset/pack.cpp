#include "dataset/pack.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mum::dataset {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Expected element size per section, indexed by PackSection.
constexpr std::array<std::uint32_t, kPackSectionCount> kElemSize = {
    1, 4, 4, 4, 1, 8, 4, 4, 8, 4};

// On little-endian hosts these must be plain loads — they sit inside the
// checksum and offset-scan loops that set ingest throughput.
std::uint32_t le32(const char* p) noexcept {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
#else
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{static_cast<unsigned char>(p[i])} << (8 * i);
  }
  return v;
#endif
}

std::uint64_t le64(const char* p) noexcept {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
#else
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{static_cast<unsigned char>(p[i])} << (8 * i);
  }
  return v;
#endif
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::size_t aligned_up(std::size_t n) noexcept {
  return (n + kPackAlignment - 1) & ~(kPackAlignment - 1);
}

std::size_t section_index(PackSection s) noexcept {
  return static_cast<std::size_t>(s);
}

// Host-order column -> little-endian wire bytes. On LE hosts a straight
// memcpy; the generic path keeps BE hosts byte-identical.
template <class T>
void copy_le(char* out, std::span<const T> src) {
  if (src.empty()) return;  // empty column: data() may be null
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  std::memcpy(out, src.data(), src.size_bytes());
#else
  for (const T v : src) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      *out++ = static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) &
                                 0xff);
    }
  }
#endif
}

}  // namespace

std::uint64_t pack_checksum(std::string_view bytes) noexcept {
  // Eight independent FNV-1a chains, each absorbing one little-endian
  // 64-bit word per 64-byte block (explicit LE assembly so the digest is
  // identical across hosts); tail bytes extend the lane their word slot
  // selects. One multiply per 8 bytes instead of plain FNV-1a's one per
  // byte, and the chains have no cross dependency, so the CPU overlaps
  // them — this runs near memory bandwidth, which is what lets tolerant
  // pack validation afford checksumming every section.
  std::uint64_t lane[8];
  for (int j = 0; j < 8; ++j) lane[j] = kFnvOffset ^ static_cast<unsigned>(j);
  const char* p = bytes.data();
  const std::size_t n = bytes.size();
  const std::size_t blocks = n / 64;
  for (std::size_t b = 0; b < blocks; ++b) {
    const char* q = p + b * 64;
    for (int j = 0; j < 8; ++j) {
      lane[j] = (lane[j] ^ le64(q + j * 8)) * kFnvPrime;
    }
  }
  for (std::size_t i = blocks * 64; i < n; ++i) {
    const std::size_t j = (i / 8) % 8;
    lane[j] = (lane[j] ^ static_cast<unsigned char>(p[i])) * kFnvPrime;
  }
  std::uint64_t h = kFnvOffset ^ static_cast<std::uint64_t>(n);
  for (int j = 0; j < 8; ++j) h = (h ^ lane[j]) * kFnvPrime;
  return h;
}

std::string serialize_pack(const Snapshot& snapshot) {
  // Build the ten column payloads.
  std::array<std::string, kPackSectionCount> cols;
  cols[section_index(PackSection::kDate)] = snapshot.date;

  auto& monitor = cols[section_index(PackSection::kTraceMonitor)];
  auto& src = cols[section_index(PackSection::kTraceSrc)];
  auto& dst = cols[section_index(PackSection::kTraceDst)];
  auto& reached = cols[section_index(PackSection::kTraceReached)];
  auto& hop_off = cols[section_index(PackSection::kTraceHopOffset)];
  auto& hop_addr = cols[section_index(PackSection::kHopAddr)];
  auto& hop_rtt = cols[section_index(PackSection::kHopRtt)];
  auto& lse_off = cols[section_index(PackSection::kHopLseOffset)];
  auto& lse_pool = cols[section_index(PackSection::kLsePool)];

  std::uint64_t hops = 0;
  std::uint64_t lses = 0;
  put_u64le(hop_off, 0);
  put_u64le(lse_off, 0);
  for (const Trace& t : snapshot.traces) {
    put_u32le(monitor, t.monitor_id);
    put_u32le(src, t.src.value());
    put_u32le(dst, t.dst.value());
    reached.push_back(t.reached ? 1 : 0);
    for (const TraceHop& h : t.hops) {
      put_u32le(hop_addr, h.addr.value());
      put_u32le(hop_rtt,
                static_cast<std::uint32_t>(std::lround(h.rtt_ms * 1000.0)));
      for (const auto& lse : h.labels.entries()) {
        put_u32le(lse_pool, lse.encode());
      }
      lses += h.labels.depth();
      put_u64le(lse_off, lses);
    }
    hops += t.hops.size();
    put_u64le(hop_off, hops);
  }

  // Lay the sections out after the table, each 8-byte aligned.
  const std::size_t table_end =
      kPackHeaderBytes + kPackSectionCount * kPackSectionEntryBytes;
  std::array<std::size_t, kPackSectionCount> offsets{};
  std::size_t off = table_end;
  for (std::size_t s = 0; s < kPackSectionCount; ++s) {
    offsets[s] = off;
    off = aligned_up(off + cols[s].size());
  }
  const std::size_t total = off;

  std::string out;
  out.reserve(total);
  out.append(kPackMagic, sizeof kPackMagic);
  out.push_back(static_cast<char>(kPackVersion));
  out.append(3, '\0');
  put_u32le(out, snapshot.cycle_id);
  put_u32le(out, snapshot.sub_index);
  put_u32le(out, static_cast<std::uint32_t>(kPackSectionCount));
  put_u32le(out, 0);
  put_u64le(out, total);
  for (std::size_t s = 0; s < kPackSectionCount; ++s) {
    put_u32le(out, static_cast<std::uint32_t>(s));
    put_u32le(out, kElemSize[s]);
    put_u64le(out, offsets[s]);
    put_u64le(out, cols[s].size());
    put_u64le(out, pack_checksum(cols[s]));
  }
  for (std::size_t s = 0; s < kPackSectionCount; ++s) {
    out.resize(offsets[s], '\0');  // alignment padding
    out.append(cols[s]);
  }
  out.resize(total, '\0');
  return out;
}

std::string serialize_pack(const SnapshotBatch& snapshot) {
  const TraceBatch& b = snapshot.traces;
  const std::size_t n_traces = b.trace_count();
  const std::size_t n_hops = b.hop_count();
  const std::size_t n_lses = b.lse_count();

  // Column payload sizes, indexed by PackSection — the batch columns map
  // 1:1 onto the sections (including the leading-zero offset entries).
  std::array<std::size_t, kPackSectionCount> col_bytes{};
  col_bytes[section_index(PackSection::kDate)] = snapshot.date.size();
  col_bytes[section_index(PackSection::kTraceMonitor)] = n_traces * 4;
  col_bytes[section_index(PackSection::kTraceSrc)] = n_traces * 4;
  col_bytes[section_index(PackSection::kTraceDst)] = n_traces * 4;
  col_bytes[section_index(PackSection::kTraceReached)] = n_traces;
  col_bytes[section_index(PackSection::kTraceHopOffset)] = (n_traces + 1) * 8;
  col_bytes[section_index(PackSection::kHopAddr)] = n_hops * 4;
  col_bytes[section_index(PackSection::kHopRtt)] = n_hops * 4;
  col_bytes[section_index(PackSection::kHopLseOffset)] = (n_hops + 1) * 8;
  col_bytes[section_index(PackSection::kLsePool)] = n_lses * 4;

  const std::size_t table_end =
      kPackHeaderBytes + kPackSectionCount * kPackSectionEntryBytes;
  std::array<std::size_t, kPackSectionCount> offsets{};
  std::size_t off = table_end;
  for (std::size_t s = 0; s < kPackSectionCount; ++s) {
    offsets[s] = off;
    off = aligned_up(off + col_bytes[s]);
  }
  const std::size_t total = off;

  std::string out(total, '\0');
  char* base = out.data();

  // Payloads first (the section table wants their checksums).
  const auto at = [&](PackSection s) { return base + offsets[section_index(s)]; };
  std::memcpy(at(PackSection::kDate), snapshot.date.data(),
              snapshot.date.size());
  copy_le(at(PackSection::kTraceMonitor), b.monitor_col());
  copy_le(at(PackSection::kTraceSrc), b.src_col());
  copy_le(at(PackSection::kTraceDst), b.dst_col());
  if (n_traces > 0) {
    std::memcpy(at(PackSection::kTraceReached), b.reached_col().data(),
                n_traces);
  }
  copy_le(at(PackSection::kTraceHopOffset), b.hop_off_col());
  copy_le(at(PackSection::kHopAddr), b.hop_addr_col());
  copy_le(at(PackSection::kHopLseOffset), b.lse_off_col());
  copy_le(at(PackSection::kLsePool), b.lse_pool_col());
  {
    // The one per-element column: quantize RTT doubles to ms*1000 exactly
    // as the per-record writer does.
    char* rtt_out = at(PackSection::kHopRtt);
    const auto rtts = b.hop_rtt_col();
    for (std::size_t h = 0; h < n_hops; ++h) {
      const auto q =
          static_cast<std::uint32_t>(std::lround(rtts[h] * 1000.0));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
      std::memcpy(rtt_out + h * 4, &q, 4);
#else
      for (int i = 0; i < 4; ++i) {
        rtt_out[h * 4 + i] = static_cast<char>((q >> (8 * i)) & 0xff);
      }
#endif
    }
  }

  // Header + section table over the zero-filled prefix.
  std::string head;
  head.reserve(table_end);
  head.append(kPackMagic, sizeof kPackMagic);
  head.push_back(static_cast<char>(kPackVersion));
  head.append(3, '\0');
  put_u32le(head, snapshot.cycle_id);
  put_u32le(head, snapshot.sub_index);
  put_u32le(head, static_cast<std::uint32_t>(kPackSectionCount));
  put_u32le(head, 0);
  put_u64le(head, total);
  for (std::size_t s = 0; s < kPackSectionCount; ++s) {
    put_u32le(head, static_cast<std::uint32_t>(s));
    put_u32le(head, kElemSize[s]);
    put_u64le(head, offsets[s]);
    put_u64le(head, col_bytes[s]);
    put_u64le(head, pack_checksum(
                        std::string_view(base + offsets[s], col_bytes[s])));
  }
  std::memcpy(base, head.data(), head.size());
  return out;
}

std::optional<PackView> PackView::open(std::string_view bytes,
                                       const DecodeOptions& options,
                                       DecodeDiagnostics* diagnostics) {
  DecodeDiagnostics scratch;
  DecodeDiagnostics& diag = diagnostics != nullptr ? *diagnostics : scratch;
  const std::size_t size = bytes.size();
  const bool tolerant = options.tolerant;

  if (size < sizeof kPackMagic + 1 ||
      bytes.compare(0, sizeof kPackMagic, kPackMagic, sizeof kPackMagic) !=
          0) {
    diag.add_fault(FaultClass::kBadMagic, 0, 0,
                   "missing MUMP magic — not a warts-lite pack");
    return std::nullopt;
  }
  const auto version = static_cast<std::uint8_t>(bytes[4]);
  if (version != kPackVersion) {
    diag.add_fault(FaultClass::kBadVersion, 4, 0,
                   "unsupported pack version " + std::to_string(version));
    return std::nullopt;
  }

  PackView view;
  view.bytes_ = bytes;
  // From here on the container is recognizable: tolerant mode always
  // returns a view (possibly with zero usable records), strict mode aborts
  // once any fault has been recorded.
  std::uint64_t faults_before = diag.faults_total();
  const auto fail_strict = [&]() -> std::optional<PackView> {
    return std::nullopt;
  };

  if (size < kPackHeaderBytes) {
    diag.add_fault(FaultClass::kTruncatedHeader, size, 0,
                   "pack header ends mid-field");
    return tolerant ? std::optional<PackView>(view) : fail_strict();
  }
  view.cycle_id_ = le32(bytes.data() + 8);
  view.sub_index_ = le32(bytes.data() + 12);
  const std::uint32_t section_count = le32(bytes.data() + 16);
  const std::uint64_t total = le64(bytes.data() + 24);
  if (total != size) {
    // A short mapping (truncated file) or trailing garbage. Either way the
    // section table decides what is actually readable below.
    diag.add_fault(total > size ? FaultClass::kTruncatedHeader
                                : FaultClass::kTrailingBytes,
                   24, 0,
                   "header claims " + std::to_string(total) + " bytes, " +
                       std::to_string(size) + " present");
    if (!tolerant) return fail_strict();
  }
  // A hostile count would make the table itself overrun the mapping; cap it
  // before computing table_end.
  if (section_count > 1024) {
    diag.add_fault(FaultClass::kOversizedClaim, 16, 0,
                   "section count " + std::to_string(section_count) +
                       " exceeds any valid pack");
    return tolerant ? std::optional<PackView>(view) : fail_strict();
  }
  const std::size_t table_end =
      kPackHeaderBytes +
      static_cast<std::size_t>(section_count) * kPackSectionEntryBytes;
  if (table_end > size) {
    diag.add_fault(FaultClass::kTruncatedHeader, kPackHeaderBytes, 0,
                   "section table exceeds the mapping");
    return tolerant ? std::optional<PackView>(view) : fail_strict();
  }

  // Walk the table; accept each structurally sound section exactly once.
  std::array<bool, kPackSectionCount> present{};
  for (std::uint32_t e = 0; e < section_count; ++e) {
    const std::size_t at = kPackHeaderBytes + e * kPackSectionEntryBytes;
    const std::uint32_t id = le32(bytes.data() + at);
    const std::uint32_t elem = le32(bytes.data() + at + 4);
    const std::uint64_t sec_off = le64(bytes.data() + at + 8);
    const std::uint64_t sec_bytes = le64(bytes.data() + at + 16);
    const std::uint64_t checksum = le64(bytes.data() + at + 24);
    if (id >= kPackSectionCount) {
      // Unknown sections from a future writer would be skippable; random
      // ids in a version-3 pack are damage.
      diag.add_fault(FaultClass::kBadSectionTable, at, 0,
                     "unknown section id " + std::to_string(id));
      continue;
    }
    if (present[id]) {
      diag.add_fault(FaultClass::kBadSectionTable, at, 0,
                     "duplicate section id " + std::to_string(id));
      continue;
    }
    if (elem != kElemSize[id] || sec_bytes % kElemSize[id] != 0 ||
        sec_off % kPackAlignment != 0 || sec_off < table_end) {
      diag.add_fault(FaultClass::kBadSectionTable, at, 0,
                     "section " + std::to_string(id) +
                         " misaligned or mis-sized");
      continue;
    }
    if (sec_off > size || sec_bytes > size - sec_off) {
      diag.add_fault(FaultClass::kOversizedClaim, at, 0,
                     "section " + std::to_string(id) +
                         " claims bytes beyond the mapping");
      continue;
    }
    if (pack_checksum(bytes.substr(sec_off, sec_bytes)) != checksum) {
      diag.add_fault(FaultClass::kChecksumMismatch,
                     static_cast<std::size_t>(sec_off), 0,
                     "section " + std::to_string(id) + " checksum mismatch");
      if (!tolerant) return fail_strict();
      // Bounds-safe to read; values are suspect. The offset-column scans
      // below keep record slicing in range regardless.
    }
    present[id] = true;
    view.section_off_[id] = static_cast<std::size_t>(sec_off);
    view.section_bytes_[id] = static_cast<std::size_t>(sec_bytes);
  }

  // Reject overlapping payloads: sort accepted sections by offset and check
  // adjacent pairs. Overlap means at least one of the claims lies.
  {
    std::array<std::size_t, kPackSectionCount> order{};
    std::size_t n = 0;
    for (std::size_t s = 0; s < kPackSectionCount; ++s) {
      if (present[s]) order[n++] = s;
    }
    std::sort(order.begin(), order.begin() + n,
              [&](std::size_t a, std::size_t b) {
                return view.section_off_[a] < view.section_off_[b];
              });
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const std::size_t a = order[k];
      const std::size_t b = order[k + 1];
      if (view.section_off_[a] + view.section_bytes_[a] >
          view.section_off_[b]) {
        diag.add_fault(FaultClass::kBadSectionTable, view.section_off_[b], 0,
                       "sections " + std::to_string(a) + " and " +
                           std::to_string(b) + " overlap");
        present[a] = present[b] = false;
      }
    }
  }

  if (present[section_index(PackSection::kDate)]) {
    const std::size_t s = section_index(PackSection::kDate);
    view.date_ = bytes.substr(view.section_off_[s], view.section_bytes_[s]);
  }

  // Derive record counts and cross-check that every trace column agrees.
  const auto col_bytes = [&](PackSection s) {
    return present[section_index(s)] ? view.section_bytes_[section_index(s)]
                                     : static_cast<std::size_t>(0);
  };
  bool traces_usable =
      present[section_index(PackSection::kTraceMonitor)] &&
      present[section_index(PackSection::kTraceSrc)] &&
      present[section_index(PackSection::kTraceDst)] &&
      present[section_index(PackSection::kTraceReached)] &&
      present[section_index(PackSection::kTraceHopOffset)];
  std::size_t n_traces = 0;
  if (traces_usable) {
    n_traces = col_bytes(PackSection::kTraceMonitor) / 4;
    if (col_bytes(PackSection::kTraceSrc) / 4 != n_traces ||
        col_bytes(PackSection::kTraceDst) / 4 != n_traces ||
        col_bytes(PackSection::kTraceReached) != n_traces ||
        col_bytes(PackSection::kTraceHopOffset) != (n_traces + 1) * 8) {
      diag.add_fault(FaultClass::kBadSectionTable, 0, 0,
                     "trace columns disagree on record count");
      traces_usable = false;
    }
  } else if (std::count(present.begin(), present.end(), true) > 0) {
    diag.add_fault(FaultClass::kBadSectionTable, 0, 0,
                   "core trace columns missing");
  }
  const bool hops_present = present[section_index(PackSection::kHopAddr)] &&
                            present[section_index(PackSection::kHopRtt)] &&
                            present[section_index(PackSection::kHopLseOffset)];
  const bool hops_usable =
      hops_present &&
      col_bytes(PackSection::kHopRtt) == col_bytes(PackSection::kHopAddr) &&
      col_bytes(PackSection::kHopLseOffset) ==
          col_bytes(PackSection::kHopAddr) / 4 * 8 + 8;
  if (hops_present && !hops_usable) {
    // Hop columns damaged: traces with hops cannot be sliced. Record once;
    // the per-record scan below skips exactly the affected traces.
    diag.add_fault(FaultClass::kBadSectionTable, 0, 0,
                   "hop columns disagree on record count");
  }
  const bool lses_usable = present[section_index(PackSection::kLsePool)];
  view.n_hops_ = hops_usable ? col_bytes(PackSection::kHopAddr) / 4 : 0;
  view.n_lses_ = lses_usable ? col_bytes(PackSection::kLsePool) / 4 : 0;
  view.n_traces_ = traces_usable ? n_traces : 0;

  // Validate the offset columns: monotone prefix sums inside the pools.
  if (traces_usable && n_traces > 0) {
    const char* hop_off_col =
        bytes.data() +
        view.section_off_[section_index(PackSection::kTraceHopOffset)];
    const char* lse_off_col =
        hops_usable
            ? bytes.data() +
                  view.section_off_[section_index(PackSection::kHopLseOffset)]
            : nullptr;
    // Fast path: scan each column once, branch-free, for global
    // monotonicity within its pool bound. When it holds (every undamaged
    // pack), all records are valid and no per-record work happens — this
    // pass vectorizes, so validation runs at memory speed.
    const auto column_monotone = [](const char* col, std::size_t entries,
                                    std::uint64_t bound, bool pool_usable) {
      std::uint64_t prev = le64(col);
      bool mono = true;
      for (std::size_t i = 1; i < entries; ++i) {
        const std::uint64_t cur = le64(col + i * 8);
        mono &= prev <= cur;
        prev = cur;
      }
      // Without a usable pool only empty ranges are valid: with
      // monotonicity established, first == last means all-equal.
      return mono && (pool_usable ? prev <= bound : le64(col) == prev);
    };
    bool fast =
        column_monotone(hop_off_col, n_traces + 1, view.n_hops_, hops_usable);
    if (fast && lse_off_col != nullptr) {
      fast = column_monotone(lse_off_col, view.n_hops_ + 1, view.n_lses_,
                             lses_usable);
    }
    if (fast) {
      diag.records_decoded += n_traces;
    } else {
      // Damaged column: fall back to per-record slicing so individual bad
      // records are skipped instead of the whole snapshot. An empty range
      // reads nothing, so it stays valid even when the pool it nominally
      // indexes is damaged or gone.
      std::size_t skipped = 0;
      for (std::size_t i = 0; i < n_traces; ++i) {
        const std::uint64_t a = le64(hop_off_col + i * 8);
        const std::uint64_t b = le64(hop_off_col + (i + 1) * 8);
        bool ok = a <= b && (a == b || (b <= view.n_hops_ && hops_usable));
        if (ok && a != b && lse_off_col != nullptr) {
          for (std::uint64_t h = a; ok && h < b; ++h) {
            const std::uint64_t la = le64(lse_off_col + h * 8);
            const std::uint64_t lb = le64(lse_off_col + (h + 1) * 8);
            ok = la <= lb &&
                 (la == lb || (lb <= view.n_lses_ && lses_usable));
          }
        }
        if (!ok) {
          if (view.invalid_.empty()) view.invalid_.assign(n_traces, false);
          view.invalid_[i] = true;
          ++skipped;
          diag.add_fault(FaultClass::kBadOffsetIndex, i * 8, i,
                         "record " + std::to_string(i) +
                             " offsets out of range");
        }
      }
      diag.records_skipped += skipped;
      diag.records_decoded += n_traces - skipped;
    }
  }

  if (!tolerant && diag.faults_total() != faults_before) return std::nullopt;
  return view;
}

std::size_t PackView::valid_count() const noexcept {
  if (invalid_.empty()) return n_traces_;
  std::size_t n = 0;
  for (std::size_t i = 0; i < n_traces_; ++i) n += invalid_[i] ? 0 : 1;
  return n;
}

const char* PackView::u32_col(PackSection s) const noexcept {
  return bytes_.data() + section_off_[section_index(s)];
}

Trace PackView::trace(std::size_t i) const {
  Trace t;
  t.monitor_id = le32(u32_col(PackSection::kTraceMonitor) + i * 4);
  t.src = net::Ipv4Addr(le32(u32_col(PackSection::kTraceSrc) + i * 4));
  t.dst = net::Ipv4Addr(le32(u32_col(PackSection::kTraceDst) + i * 4));
  t.reached = bytes_[section_off_[section_index(PackSection::kTraceReached)] +
                     i] != 0;
  const char* hop_off_col = u32_col(PackSection::kTraceHopOffset);
  const auto a = static_cast<std::size_t>(le64(hop_off_col + i * 8));
  const auto b = static_cast<std::size_t>(le64(hop_off_col + (i + 1) * 8));
  if (a == b) return t;
  const char* addr_col = u32_col(PackSection::kHopAddr);
  const char* rtt_col = u32_col(PackSection::kHopRtt);
  const char* lse_off_col = u32_col(PackSection::kHopLseOffset);
  const char* pool = u32_col(PackSection::kLsePool);
  t.hops.resize(b - a);
  for (std::size_t h = a; h < b; ++h) {
    TraceHop& hop = t.hops[h - a];
    hop.addr = net::Ipv4Addr(le32(addr_col + h * 4));
    hop.rtt_ms = static_cast<double>(le32(rtt_col + h * 4)) / 1000.0;
    const auto la = static_cast<std::size_t>(le64(lse_off_col + h * 8));
    const auto lb = static_cast<std::size_t>(le64(lse_off_col + (h + 1) * 8));
    if (la != lb) {
      std::vector<net::LabelStackEntry> entries;
      entries.reserve(lb - la);
      for (std::size_t s = la; s < lb; ++s) {
        entries.push_back(net::LabelStackEntry::decode(le32(pool + s * 4)));
      }
      hop.labels = net::LabelStack(std::move(entries));
    }
  }
  return t;
}

Snapshot PackView::to_snapshot() const {
  Snapshot snap;
  snap.cycle_id = cycle_id_;
  snap.sub_index = sub_index_;
  snap.date.assign(date_);
  snap.traces.reserve(valid_count());
  for (std::size_t i = 0; i < n_traces_; ++i) {
    if (trace_valid(i)) snap.traces.push_back(trace(i));
  }
  return snap;
}

SnapshotBatch PackView::to_snapshot_batch() const {
  SnapshotBatch out;
  out.cycle_id = cycle_id_;
  out.sub_index = sub_index_;
  out.date.assign(date_);
  if (n_traces_ == 0) return out;

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // Fast path: every record valid and the hop/LSE sections structurally
  // sound — the wire columns are exactly the batch columns, so ingest is a
  // handful of bulk copies into the batch arena. (LE only: on the wire the
  // columns are little-endian.)
  const auto sec_ptr = [&](PackSection s) {
    return bytes_.data() + section_off_[section_index(s)];
  };
  const auto aligned8 = [](const char* p) {
    return reinterpret_cast<std::uintptr_t>(p) % 8 == 0;
  };
  const bool hop_cols_sound =
      section_bytes_[section_index(PackSection::kHopLseOffset)] ==
          (n_hops_ + 1) * 8 &&
      section_bytes_[section_index(PackSection::kHopAddr)] == n_hops_ * 4 &&
      section_bytes_[section_index(PackSection::kHopRtt)] == n_hops_ * 4;
  if (invalid_.empty() && hop_cols_sound &&
      aligned8(sec_ptr(PackSection::kTraceHopOffset)) &&
      aligned8(sec_ptr(PackSection::kHopLseOffset)) &&
      aligned8(sec_ptr(PackSection::kTraceMonitor)) &&
      aligned8(sec_ptr(PackSection::kHopAddr))) {
    const auto u32s = [&](PackSection s, std::size_t n) {
      return std::span<const std::uint32_t>(
          reinterpret_cast<const std::uint32_t*>(sec_ptr(s)), n);
    };
    const auto u64s = [&](PackSection s, std::size_t n) {
      return std::span<const std::uint64_t>(
          reinterpret_cast<const std::uint64_t*>(sec_ptr(s)), n);
    };
    out.traces.assign_columns(
        u32s(PackSection::kTraceMonitor, n_traces_),
        u32s(PackSection::kTraceSrc, n_traces_),
        u32s(PackSection::kTraceDst, n_traces_),
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(
                sec_ptr(PackSection::kTraceReached)),
            n_traces_),
        u64s(PackSection::kTraceHopOffset, n_traces_ + 1),
        u32s(PackSection::kHopAddr, n_hops_),
        u32s(PackSection::kHopRtt, n_hops_),
        u64s(PackSection::kHopLseOffset, n_hops_ + 1),
        u32s(PackSection::kLsePool, n_lses_));
    return out;
  }
#endif

  // Damaged (or exotic-host) path: append valid records one by one.
  for (std::size_t i = 0; i < n_traces_; ++i) {
    if (trace_valid(i)) out.traces.append(trace(i));
  }
  return out;
}

std::optional<Snapshot> parse_pack(std::string_view bytes,
                                   const DecodeOptions& options,
                                   DecodeDiagnostics* diagnostics) {
  const auto view = PackView::open(bytes, options, diagnostics);
  if (!view) return std::nullopt;
  return view->to_snapshot();
}

}  // namespace mum::dataset
