#include "dataset/warts_lite.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

namespace mum::dataset {

namespace {

constexpr char kMagic[4] = {'M', 'U', 'M', 'W'};
constexpr std::uint8_t kVersion = 1;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::optional<std::uint8_t> get_u8(const std::string& in, std::size_t& pos) {
  if (pos >= in.size()) return std::nullopt;
  return static_cast<std::uint8_t>(in[pos++]);
}

std::optional<std::uint32_t> get_u32(const std::string& in, std::size_t& pos) {
  if (pos + 4 > in.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return v;
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

std::optional<std::string> get_string(const std::string& in,
                                      std::size_t& pos) {
  const auto len = get_varint(in, pos);
  if (!len || pos + *len > in.size()) return std::nullopt;
  std::string s = in.substr(pos, *len);
  pos += *len;
  return s;
}

}  // namespace

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::optional<std::uint64_t> get_varint(const std::string& in,
                                        std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos < in.size()) {
    const auto byte = static_cast<unsigned char>(in[pos++]);
    if (shift >= 64 || (shift == 63 && (byte & 0x7e))) return std::nullopt;
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;  // truncated
}

std::string serialize_snapshot(const Snapshot& snapshot) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u8(out, kVersion);
  put_varint(out, snapshot.cycle_id);
  put_varint(out, snapshot.sub_index);
  put_string(out, snapshot.date);
  put_varint(out, snapshot.traces.size());
  for (const Trace& t : snapshot.traces) {
    put_varint(out, t.monitor_id);
    put_u32(out, t.src.value());
    put_u32(out, t.dst.value());
    put_u8(out, t.reached ? 1 : 0);
    put_varint(out, t.hops.size());
    for (const TraceHop& h : t.hops) {
      put_u32(out, h.addr.value());
      put_u32(out, static_cast<std::uint32_t>(std::lround(h.rtt_ms * 1000.0)));
      put_varint(out, h.labels.depth());
      for (const auto& lse : h.labels.entries()) put_u32(out, lse.encode());
    }
  }
  return out;
}

std::optional<Snapshot> parse_snapshot(const std::string& bytes) {
  std::size_t pos = 0;
  if (bytes.size() < sizeof kMagic + 1 ||
      bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
    return std::nullopt;
  }
  pos = sizeof kMagic;
  const auto version = get_u8(bytes, pos);
  if (!version || *version != kVersion) return std::nullopt;

  Snapshot snap;
  const auto cycle_id = get_varint(bytes, pos);
  const auto sub_index = get_varint(bytes, pos);
  if (!cycle_id || !sub_index) return std::nullopt;
  snap.cycle_id = static_cast<std::uint32_t>(*cycle_id);
  snap.sub_index = static_cast<std::uint32_t>(*sub_index);
  const auto date = get_string(bytes, pos);
  if (!date) return std::nullopt;
  snap.date = *date;

  const auto n_traces = get_varint(bytes, pos);
  if (!n_traces) return std::nullopt;
  snap.traces.reserve(static_cast<std::size_t>(*n_traces));
  for (std::uint64_t i = 0; i < *n_traces; ++i) {
    Trace t;
    const auto monitor = get_varint(bytes, pos);
    const auto src = get_u32(bytes, pos);
    const auto dst = get_u32(bytes, pos);
    const auto reached = get_u8(bytes, pos);
    const auto n_hops = get_varint(bytes, pos);
    if (!monitor || !src || !dst || !reached || !n_hops) return std::nullopt;
    t.monitor_id = static_cast<std::uint32_t>(*monitor);
    t.src = net::Ipv4Addr(*src);
    t.dst = net::Ipv4Addr(*dst);
    t.reached = (*reached != 0);
    t.hops.reserve(static_cast<std::size_t>(*n_hops));
    for (std::uint64_t h = 0; h < *n_hops; ++h) {
      TraceHop hop;
      const auto addr = get_u32(bytes, pos);
      const auto rtt = get_u32(bytes, pos);
      const auto n_lse = get_varint(bytes, pos);
      if (!addr || !rtt || !n_lse) return std::nullopt;
      hop.addr = net::Ipv4Addr(*addr);
      hop.rtt_ms = static_cast<double>(*rtt) / 1000.0;
      std::vector<net::LabelStackEntry> entries;
      entries.reserve(static_cast<std::size_t>(*n_lse));
      for (std::uint64_t s = 0; s < *n_lse; ++s) {
        const auto word = get_u32(bytes, pos);
        if (!word) return std::nullopt;
        entries.push_back(net::LabelStackEntry::decode(*word));
      }
      hop.labels = net::LabelStack(std::move(entries));
      t.hops.push_back(std::move(hop));
    }
    snap.traces.push_back(std::move(t));
  }
  return snap;
}

void write_snapshot(std::ostream& os, const Snapshot& snapshot) {
  const std::string bytes = serialize_snapshot(snapshot);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::optional<Snapshot> read_snapshot(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_snapshot(buffer.str());
}

std::string to_text(const Trace& trace) {
  std::ostringstream os;
  os << "trace monitor=" << trace.monitor_id << " src=" << trace.src
     << " dst=" << trace.dst << " reached=" << (trace.reached ? 1 : 0)
     << '\n';
  int ttl = 1;
  for (const TraceHop& hop : trace.hops) {
    os << "  " << ttl++ << "  ";
    if (hop.anonymous()) {
      os << "*";
    } else {
      os << hop.addr << "  " << hop.rtt_ms << " ms";
      if (hop.asn != 0) os << "  [AS" << hop.asn << "]";
      if (hop.has_labels()) os << "  " << hop.labels;
    }
    os << '\n';
  }
  return os.str();
}

std::string to_text(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "snapshot cycle=" << snapshot.cycle_id
     << " sub=" << snapshot.sub_index << " date=" << snapshot.date
     << " traces=" << snapshot.traces.size() << "\n\n";
  for (const Trace& t : snapshot.traces) os << to_text(t) << '\n';
  return os.str();
}

}  // namespace mum::dataset
