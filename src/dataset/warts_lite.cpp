#include "dataset/warts_lite.h"

#include <cmath>
#include <ostream>
#include <sstream>

namespace mum::dataset {

namespace {

// Minimum encoded sizes, used to validate count claims before allocating:
// a hop is at least addr(4) + rtt(4) + n_lse(1), a trace at least
// monitor(1) + src(4) + dst(4) + reached(1) + n_hops(1).
constexpr std::size_t kMinHopBytes = 9;
constexpr std::size_t kMinTraceBytes = 11;
constexpr std::size_t kMinLseBytes = 4;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::optional<std::uint8_t> get_u8(std::string_view in, std::size_t& pos,
                                   std::size_t limit) {
  if (pos >= limit) return std::nullopt;
  return static_cast<std::uint8_t>(in[pos++]);
}

std::optional<std::uint32_t> get_u32(std::string_view in, std::size_t& pos,
                                     std::size_t limit) {
  if (pos + 4 > limit) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return v;
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

std::optional<std::string> get_string(std::string_view in, std::size_t& pos,
                                      std::size_t limit) {
  const auto len = get_varint(in, pos, limit);
  if (!len || *len > limit - pos) return std::nullopt;
  std::string s(in.substr(pos, *len));
  pos += *len;
  return s;
}

void serialize_trace(std::string& out, const Trace& t) {
  put_varint(out, t.monitor_id);
  put_u32(out, t.src.value());
  put_u32(out, t.dst.value());
  put_u8(out, t.reached ? 1 : 0);
  put_varint(out, t.hops.size());
  for (const TraceHop& h : t.hops) {
    put_u32(out, h.addr.value());
    put_u32(out, static_cast<std::uint32_t>(std::lround(h.rtt_ms * 1000.0)));
    put_varint(out, h.labels.depth());
    for (const auto& lse : h.labels.entries()) put_u32(out, lse.encode());
  }
}

// Decode one trace from [pos, limit). On malformation, records one fault in
// `diag` (class, offset of the failing field, record index) and returns
// nullopt — the caller decides whether that aborts (strict) or skips
// (tolerant).
std::optional<Trace> decode_trace(std::string_view in, std::size_t& pos,
                                  std::size_t limit, std::uint64_t record,
                                  DecodeDiagnostics& diag) {
  Trace t;
  std::size_t field = pos;
  const auto monitor = get_varint(in, pos, limit);
  const auto src = get_u32(in, pos, limit);
  const auto dst = get_u32(in, pos, limit);
  const auto reached = get_u8(in, pos, limit);
  const auto n_hops = get_varint(in, pos, limit);
  if (!monitor || !src || !dst || !reached || !n_hops) {
    diag.add_fault(FaultClass::kBadTraceHeader, field, record,
                   "trace header truncated");
    return std::nullopt;
  }
  if (*n_hops > (limit - pos) / kMinHopBytes) {
    diag.add_fault(FaultClass::kOversizedClaim, field, record,
                   "hop count " + std::to_string(*n_hops) +
                       " exceeds remaining bytes");
    return std::nullopt;
  }
  t.monitor_id = static_cast<std::uint32_t>(*monitor);
  t.src = net::Ipv4Addr(*src);
  t.dst = net::Ipv4Addr(*dst);
  t.reached = (*reached != 0);
  t.hops.reserve(static_cast<std::size_t>(*n_hops));
  for (std::uint64_t h = 0; h < *n_hops; ++h) {
    TraceHop hop;
    field = pos;
    const auto addr = get_u32(in, pos, limit);
    const auto rtt = get_u32(in, pos, limit);
    const auto n_lse = get_varint(in, pos, limit);
    if (!addr || !rtt || !n_lse) {
      diag.add_fault(FaultClass::kBadHop, field, record,
                     "hop " + std::to_string(h) + " truncated");
      return std::nullopt;
    }
    if (*n_lse > (limit - pos) / kMinLseBytes) {
      diag.add_fault(FaultClass::kOversizedClaim, field, record,
                     "label stack depth " + std::to_string(*n_lse) +
                         " exceeds remaining bytes");
      return std::nullopt;
    }
    hop.addr = net::Ipv4Addr(*addr);
    hop.rtt_ms = static_cast<double>(*rtt) / 1000.0;
    std::vector<net::LabelStackEntry> entries;
    entries.reserve(static_cast<std::size_t>(*n_lse));
    for (std::uint64_t s = 0; s < *n_lse; ++s) {
      field = pos;
      const auto word = get_u32(in, pos, limit);
      if (!word) {
        diag.add_fault(FaultClass::kBadLabelStack, field, record,
                       "label stack truncated");
        return std::nullopt;
      }
      entries.push_back(net::LabelStackEntry::decode(*word));
    }
    hop.labels = net::LabelStack(std::move(entries));
    t.hops.push_back(std::move(hop));
  }
  return t;
}

}  // namespace

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::optional<std::uint64_t> get_varint(std::string_view in,
                                        std::size_t& pos) {
  return get_varint(in, pos, in.size());
}

std::optional<std::uint64_t> get_varint(std::string_view in, std::size_t& pos,
                                        std::size_t limit) {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos < limit) {
    const auto byte = static_cast<unsigned char>(in[pos++]);
    if (shift >= 64 || (shift == 63 && (byte & 0x7e))) return std::nullopt;
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;  // truncated
}

std::string serialize_snapshot(const Snapshot& snapshot,
                               std::uint8_t version) {
  std::string out;
  out.append(kWartsLiteMagic, sizeof kWartsLiteMagic);
  put_u8(out, version);
  put_varint(out, snapshot.cycle_id);
  put_varint(out, snapshot.sub_index);
  put_string(out, snapshot.date);
  put_varint(out, snapshot.traces.size());
  std::string record;
  for (const Trace& t : snapshot.traces) {
    if (version >= 2) {
      record.clear();
      serialize_trace(record, t);
      put_varint(out, record.size());
      out.append(record);
    } else {
      serialize_trace(out, t);
    }
  }
  return out;
}

std::string serialize_snapshot(const Snapshot& snapshot) {
  return serialize_snapshot(snapshot, kWartsLiteVersion);
}

std::string serialize_snapshot(const SnapshotBatch& snapshot,
                               std::uint8_t version) {
  // v2 encode straight off the batch views — no AoS materialization. The
  // output matches serialize_snapshot(snapshot.to_snapshot(), version)
  // byte for byte (same fields, same varint framing).
  std::string out;
  out.append(kWartsLiteMagic, sizeof kWartsLiteMagic);
  put_u8(out, version);
  put_varint(out, snapshot.cycle_id);
  put_varint(out, snapshot.sub_index);
  put_string(out, snapshot.date);
  put_varint(out, snapshot.trace_count());
  std::string record;
  for (std::size_t i = 0; i < snapshot.trace_count(); ++i) {
    const TraceView t = snapshot.traces.view(i);
    std::string& sink = version >= 2 ? record : out;
    if (version >= 2) record.clear();
    put_varint(sink, t.monitor_id());
    put_u32(sink, t.src().value());
    put_u32(sink, t.dst().value());
    put_u8(sink, t.reached() ? 1 : 0);
    put_varint(sink, t.hop_count());
    for (std::size_t k = 0; k < t.hop_count(); ++k) {
      const HopView h = t.hop(k);
      put_u32(sink, h.addr().value());
      put_u32(sink,
              static_cast<std::uint32_t>(std::lround(h.rtt_ms() * 1000.0)));
      put_varint(sink, h.label_depth());
      for (const std::uint32_t word : h.lse_words()) put_u32(sink, word);
    }
    if (version >= 2) {
      put_varint(out, record.size());
      out.append(record);
    }
  }
  return out;
}

std::string serialize_snapshot(const SnapshotBatch& snapshot) {
  return serialize_snapshot(snapshot, kWartsLiteVersion);
}

std::optional<Snapshot> parse_snapshot_v2(std::string_view bytes,
                                          const DecodeOptions& options,
                                          DecodeDiagnostics* diagnostics) {
  DecodeDiagnostics scratch;
  DecodeDiagnostics& diag = diagnostics != nullptr ? *diagnostics : scratch;
  const std::size_t size = bytes.size();

  std::size_t pos = 0;
  if (size < sizeof kWartsLiteMagic + 1 ||
      bytes.compare(0, sizeof kWartsLiteMagic, kWartsLiteMagic,
                    sizeof kWartsLiteMagic) != 0) {
    diag.add_fault(FaultClass::kBadMagic, 0, 0,
                   "missing MUMW magic — not a warts-lite container");
    return std::nullopt;
  }
  pos = sizeof kWartsLiteMagic;
  const std::uint8_t version = static_cast<std::uint8_t>(bytes[pos++]);
  if (version < 1 || version > kWartsLiteVersion) {
    diag.add_fault(FaultClass::kBadVersion, sizeof kWartsLiteMagic, 0,
                   "unsupported version " + std::to_string(version));
    return std::nullopt;
  }
  const bool framed = version >= 2;

  Snapshot snap;
  std::size_t field = pos;
  const auto cycle_id = get_varint(bytes, pos);
  const auto sub_index = get_varint(bytes, pos);
  // Header faults past the magic/version: the container is recognizable, so
  // tolerant mode keeps its promise and returns what decoded (an empty
  // snapshot) with the fault on record; only strict mode aborts.
  if (!cycle_id || !sub_index) {
    diag.add_fault(FaultClass::kTruncatedHeader, field, 0,
                   "snapshot header truncated");
    if (!options.tolerant) return std::nullopt;
    return snap;
  }
  snap.cycle_id = static_cast<std::uint32_t>(*cycle_id);
  snap.sub_index = static_cast<std::uint32_t>(*sub_index);
  field = pos;
  const auto date = get_string(bytes, pos, size);
  if (!date) {
    diag.add_fault(FaultClass::kTruncatedHeader, field, 0,
                   "date string truncated");
    if (!options.tolerant) return std::nullopt;
    return snap;
  }
  snap.date = *date;

  field = pos;
  const auto n_traces = get_varint(bytes, pos);
  if (!n_traces) {
    diag.add_fault(FaultClass::kTruncatedHeader, field, 0,
                   "trace count truncated");
    if (!options.tolerant) return std::nullopt;
    return snap;
  }
  // Validate the claim before allocating: the remaining bytes bound how many
  // records can possibly follow. An inflated claim is a fault of its own in
  // strict mode; tolerant mode records it and decodes what is actually there.
  const std::uint64_t max_traces = (size - pos) / kMinTraceBytes;
  const bool claim_credible = *n_traces <= max_traces;
  if (!claim_credible) {
    diag.add_fault(FaultClass::kOversizedClaim, field, 0,
                   "trace count " + std::to_string(*n_traces) +
                       " exceeds remaining bytes");
    if (!options.tolerant) return std::nullopt;
  }
  snap.traces.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(*n_traces,
                                                       max_traces)));

  for (std::uint64_t i = 0; i < *n_traces; ++i) {
    if (pos >= size) {
      // The file ends before the claimed record count. When the claim was
      // credible, the missing tail counts as skipped records; an already
      // flagged oversized claim proves nothing was really there.
      diag.add_fault(FaultClass::kRecordOverrun, pos, i,
                     "file ends at record " + std::to_string(i) + " of " +
                         std::to_string(*n_traces));
      if (claim_credible) diag.records_skipped += *n_traces - i;
      if (!options.tolerant) return std::nullopt;
      break;
    }
    std::size_t limit = size;
    std::size_t record_end = 0;
    if (framed) {
      field = pos;
      const auto frame = get_varint(bytes, pos);
      if (!frame || *frame > size - pos) {
        diag.add_fault(FaultClass::kRecordOverrun, field, i,
                       "record frame exceeds remaining bytes");
        if (claim_credible) diag.records_skipped += *n_traces - i;
        if (!options.tolerant) return std::nullopt;
        break;  // framing is untrustworthy beyond this point
      }
      record_end = pos + static_cast<std::size_t>(*frame);
      limit = record_end;
    }

    DecodeDiagnostics attempt;
    std::size_t trace_pos = pos;
    auto trace = decode_trace(bytes, trace_pos, limit, i, attempt);
    if (trace && framed && trace_pos != record_end) {
      attempt.add_fault(FaultClass::kTrailingBytes, trace_pos, i,
                        std::to_string(record_end - trace_pos) +
                            " unconsumed bytes in record");
      trace.reset();  // half-trusted payload: treat the record as malformed
    }
    diag.merge(attempt);

    if (trace) {
      snap.traces.push_back(std::move(*trace));
      ++diag.records_decoded;
      pos = framed ? record_end : trace_pos;
    } else if (!options.tolerant) {
      return std::nullopt;
    } else if (framed) {
      ++diag.records_skipped;  // resync at the next record boundary
      pos = record_end;
    } else {
      // v1 has no framing: nothing downstream of a fault can be trusted.
      if (claim_credible) diag.records_skipped += *n_traces - i;
      break;
    }
  }

  if (pos != size) {
    diag.add_fault(FaultClass::kTrailingBytes, pos, *n_traces,
                   std::to_string(size - pos) + " bytes after last record");
    if (!options.tolerant) return std::nullopt;
  }
  return snap;
}

void write_snapshot(std::ostream& os, const Snapshot& snapshot) {
  const std::string bytes = serialize_snapshot(snapshot);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string to_text(const Trace& trace) {
  std::ostringstream os;
  os << "trace monitor=" << trace.monitor_id << " src=" << trace.src
     << " dst=" << trace.dst << " reached=" << (trace.reached ? 1 : 0)
     << '\n';
  int ttl = 1;
  for (const TraceHop& hop : trace.hops) {
    os << "  " << ttl++ << "  ";
    if (hop.anonymous()) {
      os << "*";
    } else {
      os << hop.addr << "  " << hop.rtt_ms << " ms";
      if (hop.asn != 0) os << "  [AS" << hop.asn << "]";
      if (hop.has_labels()) os << "  " << hop.labels;
    }
    os << '\n';
  }
  return os.str();
}

std::string to_text(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "snapshot cycle=" << snapshot.cycle_id
     << " sub=" << snapshot.sub_index << " date=" << snapshot.date
     << " traces=" << snapshot.traces.size() << "\n\n";
  for (const Trace& t : snapshot.traces) os << to_text(t) << '\n';
  return os.str();
}

}  // namespace mum::dataset
