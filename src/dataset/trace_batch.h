// Arena-backed structure-of-arrays trace storage — the measurement-plane
// mirror of the v3 pack layout (pack.h).
//
// A TraceBatch holds one snapshot's traces as contiguous columns carved from
// a util::Arena: fixed per-trace fields (monitor, src, dst, dst_asn,
// reached), a prefix-sum hop-offset column, per-hop columns (addr, rtt,
// asn), a prefix-sum LSE-offset column, and one shared pool of RFC 3032
// label-stack words replacing per-hop heap-owning LabelStack vectors. The
// column set and ordering deliberately match PackSection, so serializing a
// batch to a .mump pack is a column memcpy (pack.cpp) and ingesting a pack
// is the inverse — no per-record re-encoding on either side.
//
// Offsets are ends-exclusive prefix sums with a leading zero (trace i owns
// hops [hop_off[i], hop_off[i+1]); hop h owns LSE words [lse_off[h],
// lse_off[h+1])) — the exact shape the pack's offset sections carry.
//
// RTTs are stored as the raw doubles the trace engine produced, NOT the
// pack's millisecond-quantized u32s: the batch must materialize Traces
// byte-identical to the legacy heap path, and quantization is a
// serialization concern (it happens in serialize_pack, for batch and
// legacy alike).
//
// Arena ownership: a default-constructed batch owns a private arena; the
// borrowing constructor carves from a caller-owned arena that the caller
// resets between uses (the per-monitor shard pattern in
// gen::CampaignRunner::snapshot_batch — steady state allocates nothing).
// Only trivially-copyable column data lives in the arena, so moving a batch
// is a pointer copy and dropping one runs no per-trace destructors.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dataset/trace.h"
#include "net/ipv4.h"
#include "net/lse.h"
#include "util/arena.h"

namespace mum::dataset {

class TraceBatch;

// Lightweight accessor for one hop of a batch (index into the hop columns).
class HopView {
 public:
  HopView(const TraceBatch* batch, std::size_t hop) noexcept
      : batch_(batch), hop_(hop) {}

  net::Ipv4Addr addr() const noexcept;
  double rtt_ms() const noexcept;
  std::uint32_t asn() const noexcept;
  bool anonymous() const noexcept { return addr() == net::kAnonymousAddr; }
  std::size_t label_depth() const noexcept;
  bool has_labels() const noexcept { return label_depth() != 0; }
  // RFC 3032 wire words of the quoted stack, top first.
  std::span<const std::uint32_t> lse_words() const noexcept;
  // Label values, top first (what LPR compares).
  std::vector<std::uint32_t> labels() const;
  // Materialize a heap LabelStack (compat / conversion layer only).
  net::LabelStack label_stack() const;

 private:
  const TraceBatch* batch_;
  std::size_t hop_;  // global hop index within the batch
};

// Lightweight accessor for one trace of a batch.
class TraceView {
 public:
  TraceView(const TraceBatch* batch, std::size_t index) noexcept
      : batch_(batch), index_(index) {}

  std::uint32_t monitor_id() const noexcept;
  net::Ipv4Addr src() const noexcept;
  net::Ipv4Addr dst() const noexcept;
  std::uint32_t dst_asn() const noexcept;
  bool reached() const noexcept;
  std::size_t hop_count() const noexcept;
  // k-th hop of this trace (k in [0, hop_count())).
  HopView hop(std::size_t k) const noexcept;
  // Global index of this trace's first hop in the hop columns.
  std::size_t first_hop() const noexcept;

 private:
  const TraceBatch* batch_;
  std::size_t index_;
};

class TraceBatch {
 public:
  // Owns a private arena sized for a monitor-shard's worth of traces.
  TraceBatch();
  // Borrows `arena`; the caller resets it between batch lifetimes.
  explicit TraceBatch(util::Arena& arena);

  TraceBatch(TraceBatch&&) noexcept = default;
  TraceBatch& operator=(TraceBatch&&) noexcept = default;
  TraceBatch(const TraceBatch&) = delete;
  TraceBatch& operator=(const TraceBatch&) = delete;

  std::size_t trace_count() const noexcept { return monitor_.size(); }
  std::size_t hop_count() const noexcept { return hop_addr_.size(); }
  std::size_t lse_count() const noexcept { return lse_pool_.size(); }
  bool empty() const noexcept { return monitor_.empty(); }

  // Pre-size every column (counts, not bytes). The offset columns get one
  // extra slot for the leading zero.
  void reserve(std::size_t traces, std::size_t hops, std::size_t lses);
  // Drop all records, keep column capacity (pair with Arena::reset only
  // when the arena is private to this batch).
  void clear();

  // --- append protocol (no interleaving between traces) ------------------
  // begin_trace, then per hop: add_hop followed by its add_label calls,
  // then end_trace.
  void begin_trace(std::uint32_t monitor_id, net::Ipv4Addr src,
                   net::Ipv4Addr dst, std::uint32_t dst_asn = 0);
  void add_hop(net::Ipv4Addr addr, double rtt_ms, std::uint32_t asn = 0);
  // Append one RFC 3032 word to the stack of the hop added last.
  void add_label(std::uint32_t lse_word);
  void end_trace(bool reached);

  // AoS compat: append a heap Trace (including its annotations).
  void append(const Trace& trace);
  // Column-wise merge: append every trace of `other`, rebasing offsets.
  void append(const TraceBatch& other);

  // Bulk load from raw (host-order) columns — the pack ingest path. The
  // offset columns include their leading zero; rtt arrives quantized
  // (milliseconds * 1000) exactly as the pack stores it.
  void assign_columns(std::span<const std::uint32_t> monitor,
                      std::span<const std::uint32_t> src,
                      std::span<const std::uint32_t> dst,
                      std::span<const std::uint8_t> reached,
                      std::span<const std::uint64_t> hop_off,
                      std::span<const std::uint32_t> hop_addr,
                      std::span<const std::uint32_t> hop_rtt_quantized,
                      std::span<const std::uint64_t> lse_off,
                      std::span<const std::uint32_t> lse_pool);

  // --- views and conversions ---------------------------------------------
  TraceView view(std::size_t i) const noexcept { return TraceView(this, i); }
  Trace to_trace(std::size_t i) const;
  std::vector<Trace> to_traces() const;

  // --- raw columns (serialization + annotate) ----------------------------
  std::span<const std::uint32_t> monitor_col() const noexcept {
    return monitor_.span();
  }
  std::span<const std::uint32_t> src_col() const noexcept {
    return src_.span();
  }
  std::span<const std::uint32_t> dst_col() const noexcept {
    return dst_.span();
  }
  std::span<const std::uint32_t> dst_asn_col() const noexcept {
    return dst_asn_.span();
  }
  std::span<const std::uint8_t> reached_col() const noexcept {
    return reached_.span();
  }
  // Size trace_count()+1; leading zero.
  std::span<const std::uint64_t> hop_off_col() const noexcept {
    return hop_off_.span();
  }
  std::span<const std::uint32_t> hop_addr_col() const noexcept {
    return hop_addr_.span();
  }
  std::span<const double> hop_rtt_col() const noexcept {
    return hop_rtt_.span();
  }
  std::span<const std::uint32_t> hop_asn_col() const noexcept {
    return hop_asn_.span();
  }
  // Size hop_count()+1; leading zero.
  std::span<const std::uint64_t> lse_off_col() const noexcept {
    return lse_off_.span();
  }
  std::span<const std::uint32_t> lse_pool_col() const noexcept {
    return lse_pool_.span();
  }

  // Mutable annotation columns (dataset::Ip2As::annotate writes these).
  std::span<std::uint32_t> dst_asn_mut() noexcept {
    return dst_asn_.mutable_span();
  }
  std::span<std::uint32_t> hop_asn_mut() noexcept {
    return hop_asn_.mutable_span();
  }

  const util::Arena& arena() const noexcept { return *arena_; }

 private:
  void init_columns();

  std::unique_ptr<util::Arena> owned_;  // null when borrowing
  util::Arena* arena_ = nullptr;

  util::ArenaVector<std::uint32_t> monitor_;
  util::ArenaVector<std::uint32_t> src_;
  util::ArenaVector<std::uint32_t> dst_;
  util::ArenaVector<std::uint32_t> dst_asn_;
  util::ArenaVector<std::uint8_t> reached_;
  util::ArenaVector<std::uint64_t> hop_off_;
  util::ArenaVector<std::uint32_t> hop_addr_;
  util::ArenaVector<double> hop_rtt_;
  util::ArenaVector<std::uint32_t> hop_asn_;
  util::ArenaVector<std::uint64_t> lse_off_;
  util::ArenaVector<std::uint32_t> lse_pool_;
};

// A Snapshot with columnar trace storage; the batch analogue of
// dataset::Snapshot.
struct SnapshotBatch {
  std::uint32_t cycle_id = 0;
  std::uint32_t sub_index = 0;
  std::string date;
  TraceBatch traces;

  std::size_t trace_count() const noexcept { return traces.trace_count(); }

  // Materialize the legacy heap form (byte-identical downstream behaviour —
  // the conversion preserves every field including annotations and raw
  // double RTTs).
  Snapshot to_snapshot() const;
  static SnapshotBatch from_snapshot(const Snapshot& snapshot);
};

// --- inline view accessors (definitions need TraceBatch complete) ---------

inline net::Ipv4Addr HopView::addr() const noexcept {
  return net::Ipv4Addr(batch_->hop_addr_col()[hop_]);
}
inline double HopView::rtt_ms() const noexcept {
  return batch_->hop_rtt_col()[hop_];
}
inline std::uint32_t HopView::asn() const noexcept {
  return batch_->hop_asn_col()[hop_];
}
inline std::size_t HopView::label_depth() const noexcept {
  const auto off = batch_->lse_off_col();
  return static_cast<std::size_t>(off[hop_ + 1] - off[hop_]);
}
inline std::span<const std::uint32_t> HopView::lse_words() const noexcept {
  const auto off = batch_->lse_off_col();
  return batch_->lse_pool_col().subspan(
      static_cast<std::size_t>(off[hop_]),
      static_cast<std::size_t>(off[hop_ + 1] - off[hop_]));
}

inline std::uint32_t TraceView::monitor_id() const noexcept {
  return batch_->monitor_col()[index_];
}
inline net::Ipv4Addr TraceView::src() const noexcept {
  return net::Ipv4Addr(batch_->src_col()[index_]);
}
inline net::Ipv4Addr TraceView::dst() const noexcept {
  return net::Ipv4Addr(batch_->dst_col()[index_]);
}
inline std::uint32_t TraceView::dst_asn() const noexcept {
  return batch_->dst_asn_col()[index_];
}
inline bool TraceView::reached() const noexcept {
  return batch_->reached_col()[index_] != 0;
}
inline std::size_t TraceView::first_hop() const noexcept {
  return static_cast<std::size_t>(batch_->hop_off_col()[index_]);
}
inline std::size_t TraceView::hop_count() const noexcept {
  const auto off = batch_->hop_off_col();
  return static_cast<std::size_t>(off[index_ + 1] - off[index_]);
}
inline HopView TraceView::hop(std::size_t k) const noexcept {
  return HopView(batch_, first_hop() + k);
}

}  // namespace mum::dataset
