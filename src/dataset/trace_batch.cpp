#include "dataset/trace_batch.h"

namespace mum::dataset {

namespace {
// A shard's worth of traces runs a few hundred KB of columns; start the
// private arena there so single-batch users reach steady state in one chunk.
constexpr std::size_t kOwnedArenaChunk = 256 * 1024;
}  // namespace

TraceBatch::TraceBatch()
    : owned_(std::make_unique<util::Arena>(kOwnedArenaChunk)),
      arena_(owned_.get()) {
  init_columns();
}

TraceBatch::TraceBatch(util::Arena& arena) : arena_(&arena) { init_columns(); }

void TraceBatch::init_columns() {
  monitor_ = util::ArenaVector<std::uint32_t>(*arena_);
  src_ = util::ArenaVector<std::uint32_t>(*arena_);
  dst_ = util::ArenaVector<std::uint32_t>(*arena_);
  dst_asn_ = util::ArenaVector<std::uint32_t>(*arena_);
  reached_ = util::ArenaVector<std::uint8_t>(*arena_);
  hop_off_ = util::ArenaVector<std::uint64_t>(*arena_);
  hop_addr_ = util::ArenaVector<std::uint32_t>(*arena_);
  hop_rtt_ = util::ArenaVector<double>(*arena_);
  hop_asn_ = util::ArenaVector<std::uint32_t>(*arena_);
  lse_off_ = util::ArenaVector<std::uint64_t>(*arena_);
  lse_pool_ = util::ArenaVector<std::uint32_t>(*arena_);
  hop_off_.push_back(0);
  lse_off_.push_back(0);
}

void TraceBatch::reserve(std::size_t traces, std::size_t hops,
                         std::size_t lses) {
  monitor_.reserve(traces);
  src_.reserve(traces);
  dst_.reserve(traces);
  dst_asn_.reserve(traces);
  reached_.reserve(traces);
  hop_off_.reserve(traces + 1);
  hop_addr_.reserve(hops);
  hop_rtt_.reserve(hops);
  hop_asn_.reserve(hops);
  lse_off_.reserve(hops + 1);
  lse_pool_.reserve(lses);
}

void TraceBatch::clear() {
  monitor_.clear();
  src_.clear();
  dst_.clear();
  dst_asn_.clear();
  reached_.clear();
  hop_off_.clear();
  hop_addr_.clear();
  hop_rtt_.clear();
  hop_asn_.clear();
  lse_off_.clear();
  lse_pool_.clear();
  hop_off_.push_back(0);
  lse_off_.push_back(0);
}

void TraceBatch::begin_trace(std::uint32_t monitor_id, net::Ipv4Addr src,
                             net::Ipv4Addr dst, std::uint32_t dst_asn) {
  monitor_.push_back(monitor_id);
  src_.push_back(src.value());
  dst_.push_back(dst.value());
  dst_asn_.push_back(dst_asn);
}

void TraceBatch::add_hop(net::Ipv4Addr addr, double rtt_ms,
                         std::uint32_t asn) {
  hop_addr_.push_back(addr.value());
  hop_rtt_.push_back(rtt_ms);
  hop_asn_.push_back(asn);
  // The hop starts label-less; add_label advances this end marker.
  lse_off_.push_back(lse_pool_.size());
}

void TraceBatch::add_label(std::uint32_t lse_word) {
  lse_pool_.push_back(lse_word);
  lse_off_.back() = lse_pool_.size();
}

void TraceBatch::end_trace(bool reached) {
  reached_.push_back(reached ? 1 : 0);
  hop_off_.push_back(hop_addr_.size());
}

void TraceBatch::append(const Trace& trace) {
  begin_trace(trace.monitor_id, trace.src, trace.dst, trace.dst_asn);
  for (const TraceHop& hop : trace.hops) {
    add_hop(hop.addr, hop.rtt_ms, hop.asn);
    for (const auto& lse : hop.labels.entries()) add_label(lse.encode());
  }
  end_trace(trace.reached);
}

void TraceBatch::append(const TraceBatch& other) {
  const std::uint64_t hop_base = hop_addr_.size();
  const std::uint64_t lse_base = lse_pool_.size();

  monitor_.append(other.monitor_.span());
  src_.append(other.src_.span());
  dst_.append(other.dst_.span());
  dst_asn_.append(other.dst_asn_.span());
  reached_.append(other.reached_.span());
  hop_addr_.append(other.hop_addr_.span());
  hop_rtt_.append(other.hop_rtt_.span());
  hop_asn_.append(other.hop_asn_.span());
  lse_pool_.append(other.lse_pool_.span());

  // Offset columns: skip the leading zero, rebase into this batch's pools.
  std::size_t at = hop_off_.size();
  hop_off_.append(other.hop_off_.span().subspan(1));
  for (; at < hop_off_.size(); ++at) hop_off_[at] += hop_base;
  at = lse_off_.size();
  lse_off_.append(other.lse_off_.span().subspan(1));
  for (; at < lse_off_.size(); ++at) lse_off_[at] += lse_base;
}

void TraceBatch::assign_columns(std::span<const std::uint32_t> monitor,
                                std::span<const std::uint32_t> src,
                                std::span<const std::uint32_t> dst,
                                std::span<const std::uint8_t> reached,
                                std::span<const std::uint64_t> hop_off,
                                std::span<const std::uint32_t> hop_addr,
                                std::span<const std::uint32_t> hop_rtt_q,
                                std::span<const std::uint64_t> lse_off,
                                std::span<const std::uint32_t> lse_pool) {
  clear();
  reserve(monitor.size(), hop_addr.size(), lse_pool.size());
  monitor_.append(monitor);
  src_.append(src);
  dst_.append(dst);
  reached_.append(reached);
  hop_addr_.append(hop_addr);
  lse_pool_.append(lse_pool);
  hop_off_.clear();
  hop_off_.append(hop_off);
  lse_off_.clear();
  lse_off_.append(lse_off);
  // Annotations are not persisted in the pack; zero-fill like a fresh run.
  for (std::size_t i = 0; i < monitor.size(); ++i) dst_asn_.push_back(0);
  for (std::size_t h = 0; h < hop_addr.size(); ++h) {
    hop_asn_.push_back(0);
    hop_rtt_.push_back(static_cast<double>(hop_rtt_q[h]) / 1000.0);
  }
}

Trace TraceBatch::to_trace(std::size_t i) const {
  const TraceView v = view(i);
  Trace t;
  t.monitor_id = v.monitor_id();
  t.src = v.src();
  t.dst = v.dst();
  t.dst_asn = v.dst_asn();
  t.reached = v.reached();
  const std::size_t n = v.hop_count();
  t.hops.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const HopView h = v.hop(k);
    TraceHop& out = t.hops[k];
    out.addr = h.addr();
    out.rtt_ms = h.rtt_ms();
    out.asn = h.asn();
    if (h.has_labels()) out.labels = h.label_stack();
  }
  return t;
}

std::vector<Trace> TraceBatch::to_traces() const {
  std::vector<Trace> out;
  out.reserve(trace_count());
  for (std::size_t i = 0; i < trace_count(); ++i) {
    out.push_back(to_trace(i));
  }
  return out;
}

std::vector<std::uint32_t> HopView::labels() const {
  const auto words = lse_words();
  std::vector<std::uint32_t> out;
  out.reserve(words.size());
  for (const std::uint32_t w : words) out.push_back(w >> 12);
  return out;
}

net::LabelStack HopView::label_stack() const {
  const auto words = lse_words();
  std::vector<net::LabelStackEntry> entries;
  entries.reserve(words.size());
  for (const std::uint32_t w : words) {
    entries.push_back(net::LabelStackEntry::decode(w));
  }
  return net::LabelStack(std::move(entries));
}

Snapshot SnapshotBatch::to_snapshot() const {
  Snapshot snap;
  snap.cycle_id = cycle_id;
  snap.sub_index = sub_index;
  snap.date = date;
  snap.traces = traces.to_traces();
  return snap;
}

SnapshotBatch SnapshotBatch::from_snapshot(const Snapshot& snapshot) {
  SnapshotBatch out;
  out.cycle_id = snapshot.cycle_id;
  out.sub_index = snapshot.sub_index;
  out.date = snapshot.date;
  std::size_t hops = 0;
  std::size_t lses = 0;
  for (const Trace& t : snapshot.traces) {
    hops += t.hops.size();
    for (const TraceHop& h : t.hops) lses += h.labels.depth();
  }
  out.traces.reserve(snapshot.traces.size(), hops, lses);
  for (const Trace& t : snapshot.traces) out.traces.append(t);
  return out;
}

}  // namespace mum::dataset
