#include "dataset/decode.h"

#include "util/json.h"

namespace mum::dataset {

const char* to_cstring(FaultClass fault) noexcept {
  switch (fault) {
    case FaultClass::kBadMagic: return "bad_magic";
    case FaultClass::kBadVersion: return "bad_version";
    case FaultClass::kTruncatedHeader: return "truncated_header";
    case FaultClass::kBadTraceHeader: return "bad_trace_header";
    case FaultClass::kBadHop: return "bad_hop";
    case FaultClass::kBadLabelStack: return "bad_label_stack";
    case FaultClass::kOversizedClaim: return "oversized_claim";
    case FaultClass::kRecordOverrun: return "record_overrun";
    case FaultClass::kTrailingBytes: return "trailing_bytes";
    case FaultClass::kBadSectionTable: return "bad_section_table";
    case FaultClass::kChecksumMismatch: return "checksum_mismatch";
    case FaultClass::kBadOffsetIndex: return "bad_offset_index";
  }
  return "unknown";
}

std::uint64_t DecodeDiagnostics::faults_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  return total;
}

void DecodeDiagnostics::add_fault(FaultClass fault, std::size_t offset,
                                  std::uint64_t record, std::string detail) {
  ++counts[static_cast<std::size_t>(fault)];
  if (samples.size() < kMaxSamples) {
    samples.push_back(DecodeFault{fault, offset, record, std::move(detail)});
  }
}

DecodeDiagnostics& DecodeDiagnostics::merge(const DecodeDiagnostics& other) {
  for (std::size_t i = 0; i < kFaultClassCount; ++i) {
    counts[i] += other.counts[i];
  }
  records_decoded += other.records_decoded;
  records_skipped += other.records_skipped;
  for (const DecodeFault& fault : other.samples) {
    if (samples.size() >= kMaxSamples) break;
    samples.push_back(fault);
  }
  return *this;
}

void DecodeDiagnostics::write_json(util::JsonWriter& json) const {
  json.begin_object();
  json.field("records_decoded", records_decoded);
  json.field("records_skipped", records_skipped);
  json.key("faults");
  json.begin_object();
  for (std::size_t i = 0; i < kFaultClassCount; ++i) {
    if (counts[i] == 0) continue;  // sparse: clean files stay terse
    json.field(to_cstring(static_cast<FaultClass>(i)), counts[i]);
  }
  json.end_object();
  json.key("samples");
  json.begin_array();
  for (const DecodeFault& fault : samples) {
    json.begin_object();
    json.field("fault", to_cstring(fault.fault));
    json.field("offset", static_cast<std::uint64_t>(fault.offset));
    json.field("record", fault.record);
    json.field("detail", fault.detail);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace mum::dataset
