// SnapshotSource: one ingest API over every way snapshots reach the
// pipeline — in-memory (generated campaigns), decoded byte buffers (tests,
// fuzzing, checkpoint splicing), and on-disk shard sets (v2 .mumw streams
// and v3 .mump packs, freely mixed).
//
// Consumers pull with next() until nullopt and never care which container
// format a shard used: decode_snapshot() sniffs the magic ("MUMW" = v1/v2
// stream, "MUMP" = v3 pack) and dispatches. Decode faults accumulate in
// diagnostics() under the shared FaultClass taxonomy; error() is reserved
// for shards that are not a warts-lite container at all (unreadable file,
// unrecognizable magic) — the stream stops at such a shard so the caller
// can decide whether that is fatal.
//
// The file source overlaps I/O with decode: while shard N is decoded on the
// calling thread, shard N+1 is mapped (util::MmapFile) by a pool worker, so
// a cold ingest streams at decode speed rather than decode + load speed.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/decode.h"
#include "dataset/trace.h"

namespace mum::util {
class ThreadPool;
}

namespace mum::dataset {

// Decode one snapshot from any warts-lite container, sniffing the magic to
// pick the v1/v2 stream decoder or the v3 pack validator. Same contract as
// both: strict = nullopt on the first fault, tolerant = best effort with
// faults in `diagnostics`, nullopt only for an unrecognizable container.
std::optional<Snapshot> decode_snapshot(
    std::string_view bytes, const DecodeOptions& options = {},
    DecodeDiagnostics* diagnostics = nullptr);

// Why a source stopped: the supervision layer quarantines undecodable
// shards (the bytes are bad on disk) but merely recomputes past unreadable
// ones (the environment failed; the bytes may be fine).
enum class SourceErrorKind : std::uint8_t {
  kNone = 0,
  kUnreadable,    // map/read of the shard failed
  kUndecodable,   // bytes read but not a warts-lite container
};

class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;

  // The next snapshot, or nullopt when the stream is exhausted — or broken;
  // distinguish with error().
  virtual std::optional<Snapshot> next() = 0;

  // Decode faults accumulated over everything next() has consumed.
  virtual const DecodeDiagnostics& diagnostics() const noexcept = 0;
  // Faults from only the most recent next() (per-shard reporting).
  virtual const DecodeDiagnostics& last_diagnostics() const noexcept = 0;
  // Path of the shard the most recent next() consumed ("" when sourceless).
  virtual const std::string& last_path() const noexcept = 0;

  // Non-empty once a shard could not be read or recognized; next() has
  // returned nullopt and will keep doing so.
  virtual const std::string& error() const noexcept = 0;
  // Classifies error() (kNone while the stream is healthy).
  virtual SourceErrorKind error_kind() const noexcept = 0;
  bool failed() const noexcept { return !error().empty(); }
};

// Yields already-materialized snapshots in order. Never fails.
std::unique_ptr<SnapshotSource> make_memory_source(
    std::vector<Snapshot> snapshots);

// Decodes each byte buffer (any format) in order.
std::unique_ptr<SnapshotSource> make_bytes_source(
    std::vector<std::string> buffers, const DecodeOptions& options = {});

// Maps/reads each file (any format) in order. With a pool, loading shard
// N+1 overlaps decoding shard N.
std::unique_ptr<SnapshotSource> make_file_source(
    std::vector<std::string> paths, const DecodeOptions& options = {},
    util::ThreadPool* pool = nullptr);

}  // namespace mum::dataset
