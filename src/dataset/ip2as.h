// IP-to-AS mapping service (the Routeviews role in the paper's pipeline).
//
// The generator emits the prefix->origin-AS table; this service wraps it in a
// longest-prefix-match trie and annotates traces with per-hop and
// per-destination AS numbers before LPR runs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dataset/trace.h"
#include "net/ipv4.h"
#include "net/radix_trie.h"

namespace mum::dataset {

inline constexpr std::uint32_t kUnknownAsn = 0;

class Ip2As {
 public:
  void add_prefix(const net::Ipv4Prefix& prefix, std::uint32_t asn);

  // Longest-prefix-match origin lookup; kUnknownAsn when uncovered.
  std::uint32_t lookup(net::Ipv4Addr addr) const;

  // Fill TraceHop::asn and Trace::dst_asn in place.
  void annotate(Trace& trace) const;
  void annotate(std::vector<Trace>& traces) const;

  std::size_t prefix_count() const noexcept { return trie_.size(); }
  std::vector<std::pair<net::Ipv4Prefix, std::uint32_t>> entries() const {
    return trie_.entries();
  }

 private:
  net::RadixTrie<std::uint32_t> trie_;
};

// Text form of the table: one "<prefix> <asn>" per line ('#' comments and
// blank lines allowed), the conventional pfx2as layout.
std::string to_table_text(const Ip2As& table);
// Parse a table; nullopt on the first malformed line.
std::optional<Ip2As> ip2as_from_text(std::string_view text);

}  // namespace mum::dataset
