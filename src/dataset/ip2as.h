// IP-to-AS mapping service (the Routeviews role in the paper's pipeline).
//
// The generator emits the prefix->origin-AS table; this service wraps it in a
// longest-prefix-match trie and annotates traces with per-hop and
// per-destination AS numbers before LPR runs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dataset/trace.h"
#include "dataset/trace_batch.h"
#include "net/ipv4.h"
#include "net/radix_trie.h"

namespace mum::dataset {

inline constexpr std::uint32_t kUnknownAsn = 0;

class Ip2As;

// Open-addressing addr -> asn memo for columnar annotation. Key 0 never
// occurs (0.0.0.0 is the anonymous-hop sentinel, handled before lookup), so
// it marks empty slots. Persist one across snapshots — a campaign resolves
// the same interface addresses every cycle, and a warm cache turns trie
// descents into single-probe hash hits. A cache is only valid against the
// table that filled it; clear() when the table changes.
class AsnCache {
 public:
  AsnCache() : slots_(kInitialCap, 0) {}

  std::uint32_t get(std::uint32_t addr, const Ip2As& table) {
    const std::size_t mask = slots_.size() - 1;
    // Fibonacci hashing, high bits: generator addresses are structured
    // (blocks carved sequentially, hosts at fixed strides), so the low
    // product bits collide; the high bits mix every input bit.
    std::size_t i = (addr * 0x9E3779B9u) >> shift_;
    for (;;) {
      const std::uint64_t slot = slots_[i];
      const auto key = static_cast<std::uint32_t>(slot >> 32);
      if (key == addr) return static_cast<std::uint32_t>(slot);
      if (key == 0) break;
      i = (i + 1) & mask;
    }
    return miss(i, addr, table);
  }

  void clear() {
    slots_.assign(slots_.size(), 0);
    used_ = 0;
  }

 private:
  static constexpr std::size_t kInitialCap = 1u << 12;
  static constexpr unsigned kInitialShift = 32 - 12;

  // Out-of-line: keeps the hit path small enough to inline at call sites.
  std::uint32_t miss(std::size_t slot_index, std::uint32_t addr,
                     const Ip2As& table);
  void grow();

  std::vector<std::uint64_t> slots_;
  std::size_t used_ = 0;
  unsigned shift_ = kInitialShift;
};

class Ip2As {
 public:
  void add_prefix(const net::Ipv4Prefix& prefix, std::uint32_t asn);

  // Longest-prefix-match origin lookup; kUnknownAsn when uncovered.
  std::uint32_t lookup(net::Ipv4Addr addr) const;

  // Fill TraceHop::asn and Trace::dst_asn in place. The span form accepts
  // any contiguous range of traces — callers never copy into a vector just
  // to annotate.
  void annotate(Trace& trace) const;
  void annotate(std::span<Trace> traces) const;
  // Columnar form: fills the dst_asn and hop_asn columns. Interface
  // addresses repeat heavily across a snapshot (and across snapshots of the
  // same campaign), so lookups go through a flat memo table instead of one
  // trie descent per hop. Pass a persistent AsnCache to keep the memo warm
  // across snapshots; the cache-less overload memoizes within the call only.
  void annotate(TraceBatch& batch) const;
  void annotate(TraceBatch& batch, AsnCache& cache) const;

  std::size_t prefix_count() const noexcept { return trie_.size(); }
  std::vector<std::pair<net::Ipv4Prefix, std::uint32_t>> entries() const {
    return trie_.entries();
  }

 private:
  net::RadixTrie<std::uint32_t> trie_;
};

// Text form of the table: one "<prefix> <asn>" per line ('#' comments and
// blank lines allowed), the conventional pfx2as layout.
std::string to_table_text(const Ip2As& table);
// Parse a table; nullopt on the first malformed line.
std::optional<Ip2As> ip2as_from_text(std::string_view text);

}  // namespace mum::dataset
