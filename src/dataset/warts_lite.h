// "warts-lite": compact binary serialization for snapshots, plus a
// human-readable text form.
//
// CAIDA ships Archipelago traceroutes in scamper's warts container; this is a
// self-contained stand-in with the same role: persist campaigns to disk and
// read them back for offline LPR runs. The binary layout is little-endian,
// varint-compressed, and versioned:
//
//   file  := magic "MUMW" u8 version | snapshot
//   snapshot := varint cycle_id | varint sub_index | string date
//               varint n_traces | record*
//   record := varint byte_len | trace          (v2; v1 had no framing)
//   trace := varint monitor | u32 src | u32 dst | u8 reached
//            varint n_hops | hop*
//   hop   := u32 addr | f32-as-u32 rtt_x1000 | varint n_lse | u32 lse*
//
// The v2 per-record byte framing exists for fault tolerance: a corrupted
// record can be skipped and decoding resumes at the next record boundary.
// v1 files (no framing) still read, but a mid-stream fault abandons the
// remaining records. See decode.h for the strict/tolerant contract.
//
// This stream form is the interchange/fuzz format. The mmap-oriented v3
// "pack" lives in dataset/pack.h; the parse/read entry points below sniff
// the magic and accept either container (see dataset/snapshot_source.h for
// the unified ingest API they forward to).
//
// (AS annotations are not persisted; they are recomputed from the IP2AS
// table on load, as the paper does with Routeviews snapshots.)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/decode.h"
#include "dataset/trace.h"
#include "dataset/trace_batch.h"

namespace mum::dataset {

// Current write version of the stream form. Readers accept 1 (unframed)
// and 2 (framed).
inline constexpr std::uint8_t kWartsLiteVersion = 2;
inline constexpr char kWartsLiteMagic[4] = {'M', 'U', 'M', 'W'};

// --- binary -----------------------------------------------------------

void write_snapshot(std::ostream& os, const Snapshot& snapshot);

std::string serialize_snapshot(const Snapshot& snapshot);
// Serialize at an explicit format version (1 or 2) — for compatibility
// tests and for producing archives older readers understand.
std::string serialize_snapshot(const Snapshot& snapshot,
                               std::uint8_t version);
// Batch forms: encode straight off TraceView/HopView spans, byte-identical
// to serializing the materialized snapshot.
std::string serialize_snapshot(const SnapshotBatch& snapshot);
std::string serialize_snapshot(const SnapshotBatch& snapshot,
                               std::uint8_t version);

// Strict decode: nullopt on the first malformed field (bad magic/version/
// truncation). Equivalent to the options overload with default options.
std::optional<Snapshot> read_snapshot(std::istream& is);
std::optional<Snapshot> parse_snapshot(std::string_view bytes);

// Mode-aware decode. Strict mode returns nullopt on the first fault;
// tolerant mode skips malformed records (never throws on arbitrary bytes)
// and returns whatever decoded, nullopt only when the container itself is
// unrecognizable (bad magic/version). Faults land in `diagnostics` when
// provided — including the exact byte offset of a strict-mode failure.
//
// These sniff the magic: both the v1/v2 stream and the v3 pack decode.
// (Implemented in snapshot_source.cpp on top of decode_snapshot.)
std::optional<Snapshot> parse_snapshot(std::string_view bytes,
                                       const DecodeOptions& options,
                                       DecodeDiagnostics* diagnostics);
std::optional<Snapshot> read_snapshot(std::istream& is,
                                      const DecodeOptions& options,
                                      DecodeDiagnostics* diagnostics);

// The v1/v2 stream decoder itself, no sniffing: bytes must start "MUMW".
std::optional<Snapshot> parse_snapshot_v2(
    std::string_view bytes, const DecodeOptions& options = {},
    DecodeDiagnostics* diagnostics = nullptr);

// --- text -------------------------------------------------------------

// One line per hop, blank line between traces; lossless for the fields LPR
// uses. Intended for eyeballing and for golden-file tests.
std::string to_text(const Trace& trace);
std::string to_text(const Snapshot& snapshot);

// --- varint helpers (exposed for tests and sibling formats) ------------

void put_varint(std::string& out, std::uint64_t value);
// Reads a varint at `pos`, advancing it; nullopt on truncation/overflow.
std::optional<std::uint64_t> get_varint(std::string_view in,
                                        std::size_t& pos);
// Same, bounded: never reads at or beyond `limit`.
std::optional<std::uint64_t> get_varint(std::string_view in,
                                        std::size_t& pos, std::size_t limit);

}  // namespace mum::dataset
