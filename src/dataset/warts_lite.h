// "warts-lite": compact binary serialization for snapshots, plus a
// human-readable text form.
//
// CAIDA ships Archipelago traceroutes in scamper's warts container; this is a
// self-contained stand-in with the same role: persist campaigns to disk and
// read them back for offline LPR runs. The binary layout is little-endian,
// varint-compressed, and versioned:
//
//   file  := magic "MUMW" u8 version | snapshot
//   snapshot := varint cycle_id | varint sub_index | string date
//               varint n_traces | trace*
//   trace := varint monitor | u32 src | u32 dst | u8 reached
//            varint n_hops | hop*
//   hop   := u32 addr | f32-as-u32 rtt_x1000 | varint n_lse | u32 lse*
//
// (AS annotations are not persisted; they are recomputed from the IP2AS
// table on load, as the paper does with Routeviews snapshots.)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "dataset/trace.h"

namespace mum::dataset {

// --- binary -----------------------------------------------------------

void write_snapshot(std::ostream& os, const Snapshot& snapshot);
// Returns nullopt on malformed input (bad magic/version/truncation).
std::optional<Snapshot> read_snapshot(std::istream& is);

std::string serialize_snapshot(const Snapshot& snapshot);
std::optional<Snapshot> parse_snapshot(const std::string& bytes);

// --- text -------------------------------------------------------------

// One line per hop, blank line between traces; lossless for the fields LPR
// uses. Intended for eyeballing and for golden-file tests.
std::string to_text(const Trace& trace);
std::string to_text(const Snapshot& snapshot);

// --- varint helpers (exposed for tests) --------------------------------

void put_varint(std::string& out, std::uint64_t value);
// Reads a varint at `pos`, advancing it; nullopt on truncation/overflow.
std::optional<std::uint64_t> get_varint(const std::string& in,
                                        std::size_t& pos);

}  // namespace mum::dataset
