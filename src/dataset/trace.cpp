#include "dataset/trace.h"

namespace mum::dataset {

bool Trace::crosses_explicit_tunnel() const noexcept {
  for (const auto& hop : hops) {
    if (hop.has_labels()) return true;
  }
  return false;
}

}  // namespace mum::dataset
