// warts-lite v3 "pack": an mmap-able columnar snapshot layout.
//
// The v2 stream (warts_lite.h) is varint-framed and must be decoded
// record-by-record; a month of captures costs one branchy parse per byte.
// The pack flips the layout to structure-of-arrays so ingest is pointer
// arithmetic over a read-only mapping:
//
//   file   := header | section table | sections (8-byte aligned, zero pad)
//   header := magic "MUMP" | u8 version=3 | u8[3] zero
//             | u32 cycle_id | u32 sub_index
//             | u32 section_count | u32 zero | u64 total_bytes     (32 B)
//   entry  := u32 id | u32 elem_size | u64 offset | u64 bytes
//             | u64 checksum                                       (32 B)
//
// All integers are little-endian on the wire regardless of host; every
// section offset is 8-byte aligned. The ten sections (PackSection) are the
// snapshot's columns: fixed trace fields as flat arrays, hop addr/rtt
// columns indexed by a per-trace offset table, and the label-stack pool as
// one contiguous u32 array indexed by a per-hop offset table. Offsets are
// prefix sums (entry i covers [off[i], off[i+1])), so slicing any record is
// two loads and validation is a monotonicity scan — never a byte-by-byte
// parse.
//
// Every section carries a checksum (FNV-1a over 8 interleaved byte lanes —
// same corruption detection as plain FNV-1a, but the independent chains
// pipeline instead of serializing on one multiply per byte). Tolerant
// validation therefore reduces to: bounds-check the section table against
// the mapping, verify checksums, scan the two offset columns. A trace whose
// offsets are inconsistent is skipped individually; structural damage to a
// whole column degrades to an empty snapshot with the fault on record,
// matching the v2 tolerant contract (arbitrary bytes never read past the
// mapping, never throw, never invoke UB).
//
// v2 remains the interchange/fuzz format; the pack is the ingest format for
// campaign-scale archives (see DESIGN.md Sec. 11 for the byte budget).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/decode.h"
#include "dataset/trace.h"
#include "dataset/trace_batch.h"

namespace mum::dataset {

inline constexpr std::uint8_t kPackVersion = 3;
inline constexpr char kPackMagic[4] = {'M', 'U', 'M', 'P'};
inline constexpr std::size_t kPackHeaderBytes = 32;
inline constexpr std::size_t kPackSectionEntryBytes = 32;
inline constexpr std::size_t kPackAlignment = 8;

enum class PackSection : std::uint32_t {
  kDate = 0,        // char[date_len]
  kTraceMonitor,    // u32[n_traces]
  kTraceSrc,        // u32[n_traces]
  kTraceDst,        // u32[n_traces]
  kTraceReached,    // u8[n_traces]
  kTraceHopOffset,  // u64[n_traces + 1], prefix offsets into hop columns
  kHopAddr,         // u32[n_hops]
  kHopRtt,          // u32[n_hops], rtt_ms * 1000 rounded (same as v2)
  kHopLseOffset,    // u64[n_hops + 1], prefix offsets into the LSE pool
  kLsePool,         // u32[n_lses], RFC 3032 wire words (LabelStackEntry)
};
inline constexpr std::size_t kPackSectionCount = 10;

// Section checksum: FNV-1a over 8 interleaved byte lanes, lane digests
// folded with FNV-1a. Exposed for tests and the fuzz harness.
std::uint64_t pack_checksum(std::string_view bytes) noexcept;

// Serialize a snapshot as a v3 pack (always succeeds; deterministic bytes).
std::string serialize_pack(const Snapshot& snapshot);

// Columnar writer: a TraceBatch's columns ARE the pack sections, so this is
// section-table bookkeeping plus one memcpy per column (the RTT column is
// the only per-element pass — quantization to ms*1000). Byte-identical to
// serialize_pack(batch.to_snapshot()).
std::string serialize_pack(const SnapshotBatch& snapshot);

// Zero-copy validated view over pack bytes (an mmap or any buffer). The
// view borrows: `bytes` must outlive it. Strict mode returns nullopt on the
// first fault; tolerant mode returns a view whenever magic + version are
// recognizable, with damaged records (or columns) skipped and counted in
// the diagnostics — access through the view never reads outside `bytes`.
class PackView {
 public:
  static std::optional<PackView> open(std::string_view bytes,
                                      const DecodeOptions& options,
                                      DecodeDiagnostics* diagnostics);

  std::uint32_t cycle_id() const noexcept { return cycle_id_; }
  std::uint32_t sub_index() const noexcept { return sub_index_; }
  std::string_view date() const noexcept { return date_; }

  // Records in the pack (decodable or not) / hops / label-stack entries.
  std::size_t trace_count() const noexcept { return n_traces_; }
  std::size_t hop_count() const noexcept { return n_hops_; }
  std::size_t lse_count() const noexcept { return n_lses_; }

  // False when tolerant validation skipped record i (strict mode never
  // yields a view containing invalid records).
  bool trace_valid(std::size_t i) const noexcept {
    return invalid_.empty() ? i < n_traces_ : !invalid_[i];
  }
  std::size_t valid_count() const noexcept;

  // Materialize record i (requires trace_valid(i)). AS annotations are not
  // persisted — re-annotate via Ip2As, as with every warts-lite form.
  Trace trace(std::size_t i) const;
  // Materialize every valid record into a Snapshot.
  Snapshot to_snapshot() const;
  // Columnar ingest: when every record is valid this is a column copy into
  // the batch arena (no per-record slicing); damaged packs fall back to
  // appending valid records one by one. Equivalent traces to to_snapshot().
  SnapshotBatch to_snapshot_batch() const;

 private:
  const char* u32_col(PackSection s) const noexcept;

  std::string_view bytes_;
  std::uint32_t cycle_id_ = 0;
  std::uint32_t sub_index_ = 0;
  std::string_view date_;
  std::size_t n_traces_ = 0;
  std::size_t n_hops_ = 0;
  std::size_t n_lses_ = 0;
  // Absolute byte offsets of each section payload (0 = column unusable).
  std::array<std::size_t, kPackSectionCount> section_off_{};
  std::array<std::size_t, kPackSectionCount> section_bytes_{};
  std::vector<bool> invalid_;  // empty when every record is valid
};

// One-shot convenience: open + to_snapshot. nullopt exactly when open
// fails (strict: any fault; tolerant: unrecognizable container only).
std::optional<Snapshot> parse_pack(std::string_view bytes,
                                   const DecodeOptions& options = {},
                                   DecodeDiagnostics* diagnostics = nullptr);

}  // namespace mum::dataset
