// Traceroute dataset model: hops, traces, snapshots (one probing run of the
// whole monitor fleet) and cycles (the paper's unit: "the first run of each
// team" in a month). This mirrors what CAIDA Archipelago delivers after
// warts decoding — which is exactly the input LPR consumes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/lse.h"

namespace mum::dataset {

struct TraceHop {
  // Responding interface; kAnonymousAddr when the hop timed out ('*').
  net::Ipv4Addr addr;
  double rtt_ms = 0.0;
  // Quoted label stack from the RFC 4950 extension, if any.
  net::LabelStack labels;
  // AS the address maps to (filled by Ip2As::annotate); 0 = unmapped.
  std::uint32_t asn = 0;

  bool anonymous() const noexcept { return addr == net::kAnonymousAddr; }
  bool has_labels() const noexcept { return !labels.empty(); }
};

struct Trace {
  std::uint32_t monitor_id = 0;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::uint32_t dst_asn = 0;  // filled by Ip2As::annotate
  bool reached = false;       // destination answered
  std::vector<TraceHop> hops;

  // True when any hop carries a quoted label stack (explicit tunnel signal).
  bool crosses_explicit_tunnel() const noexcept;
};

// One probing run of the whole fleet ("team run" / daily snapshot).
struct Snapshot {
  std::uint32_t cycle_id = 0;  // global cycle index (0-based)
  std::uint32_t sub_index = 0; // snapshot index within the month (0 = cycle)
  std::string date;            // "YYYY-MM" or "YYYY-MM-DD"
  std::vector<Trace> traces;

  std::size_t trace_count() const noexcept { return traces.size(); }
};

// A month of data: the cycle snapshot (index 0) plus the additional
// snapshots used by the Persistence filter (X+1 ... X+j).
struct MonthData {
  std::uint32_t cycle_id = 0;
  std::string date;
  std::vector<Snapshot> snapshots;

  const Snapshot& cycle() const { return snapshots.front(); }
};

}  // namespace mum::dataset
