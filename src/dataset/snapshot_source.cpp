#include "dataset/snapshot_source.h"

#include <istream>
#include <sstream>
#include <utility>

#include "dataset/pack.h"
#include "dataset/warts_lite.h"
#include "obs/telemetry.h"
#include "util/io.h"
#include "util/mmap_file.h"
#include "util/thread_pool.h"

namespace mum::dataset {

namespace {

// Ingest telemetry: one update batch per container decoded (never per
// record). Fault counters mirror the FaultClass taxonomy one-to-one.
struct IngestMetrics {
  obs::Counter& bytes;
  obs::Counter& snapshots;
  obs::Counter& snapshots_rejected;  // container-level nullopt
  obs::Counter& records_decoded;
  obs::Counter& records_skipped;
  std::array<obs::Counter*, kFaultClassCount> faults;

  static IngestMetrics& get() {
    static IngestMetrics m = [] {
      obs::Registry& r = obs::registry();
      IngestMetrics out{r.counter("ingest.bytes"),
                        r.counter("ingest.snapshots"),
                        r.counter("ingest.snapshots_rejected"),
                        r.counter("ingest.records_decoded"),
                        r.counter("ingest.records_skipped"),
                        {}};
      for (std::size_t f = 0; f < kFaultClassCount; ++f) {
        out.faults[f] = &r.counter(
            std::string("ingest.fault.") +
            to_cstring(static_cast<FaultClass>(f)));
      }
      return out;
    }();
    return m;
  }
};

}  // namespace

std::optional<Snapshot> decode_snapshot(std::string_view bytes,
                                        const DecodeOptions& options,
                                        DecodeDiagnostics* diagnostics) {
  DecodeDiagnostics local;
  DecodeDiagnostics* diag = diagnostics != nullptr ? diagnostics : &local;
  // Callers may hand in a pre-populated accumulator; meter the delta.
  const auto counts_before = diag->counts;
  const std::uint64_t decoded_before = diag->records_decoded;
  const std::uint64_t skipped_before = diag->records_skipped;

  std::optional<Snapshot> snap;
  if (bytes.size() >= sizeof kPackMagic &&
      bytes.compare(0, sizeof kPackMagic, kPackMagic, sizeof kPackMagic) ==
          0) {
    snap = parse_pack(bytes, options, diag);
  } else {
    snap = parse_snapshot_v2(bytes, options, diag);
  }

  IngestMetrics& m = IngestMetrics::get();
  m.bytes.add(bytes.size());
  m.snapshots.inc();
  if (!snap) m.snapshots_rejected.inc();
  m.records_decoded.add(diag->records_decoded - decoded_before);
  m.records_skipped.add(diag->records_skipped - skipped_before);
  for (std::size_t f = 0; f < kFaultClassCount; ++f) {
    const std::uint64_t delta = diag->counts[f] - counts_before[f];
    if (delta != 0) m.faults[f]->add(delta);
  }
  return snap;
}

// --- legacy entry points (warts_lite.h) --------------------------------
// Thin sniffing wrappers so existing call sites transparently accept both
// the stream and the pack container.

std::optional<Snapshot> parse_snapshot(std::string_view bytes,
                                       const DecodeOptions& options,
                                       DecodeDiagnostics* diagnostics) {
  return decode_snapshot(bytes, options, diagnostics);
}

std::optional<Snapshot> parse_snapshot(std::string_view bytes) {
  return decode_snapshot(bytes);
}

std::optional<Snapshot> read_snapshot(std::istream& is,
                                      const DecodeOptions& options,
                                      DecodeDiagnostics* diagnostics) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string bytes = std::move(buffer).str();
  return decode_snapshot(bytes, options, diagnostics);
}

std::optional<Snapshot> read_snapshot(std::istream& is) {
  return read_snapshot(is, DecodeOptions{}, nullptr);
}

// --- sources -----------------------------------------------------------

namespace {

const std::string kEmptyString;
const DecodeDiagnostics kEmptyDiagnostics;

class MemorySource final : public SnapshotSource {
 public:
  explicit MemorySource(std::vector<Snapshot> snapshots)
      : snapshots_(std::move(snapshots)) {}

  std::optional<Snapshot> next() override {
    if (index_ >= snapshots_.size()) return std::nullopt;
    return std::move(snapshots_[index_++]);
  }
  const DecodeDiagnostics& diagnostics() const noexcept override {
    return kEmptyDiagnostics;
  }
  const DecodeDiagnostics& last_diagnostics() const noexcept override {
    return kEmptyDiagnostics;
  }
  const std::string& last_path() const noexcept override {
    return kEmptyString;
  }
  const std::string& error() const noexcept override { return kEmptyString; }
  SourceErrorKind error_kind() const noexcept override {
    return SourceErrorKind::kNone;
  }

 private:
  std::vector<Snapshot> snapshots_;
  std::size_t index_ = 0;
};

class BytesSource final : public SnapshotSource {
 public:
  BytesSource(std::vector<std::string> buffers, const DecodeOptions& options)
      : buffers_(std::move(buffers)), options_(options) {}

  std::optional<Snapshot> next() override {
    if (!error_.empty() || index_ >= buffers_.size()) return std::nullopt;
    const std::size_t i = index_++;
    last_diag_ = DecodeDiagnostics{};
    auto snap = decode_snapshot(buffers_[i], options_, &last_diag_);
    diag_.merge(last_diag_);
    if (!snap) {
      error_ = "buffer " + std::to_string(i) + ": not a decodable snapshot";
      return std::nullopt;
    }
    return snap;
  }
  const DecodeDiagnostics& diagnostics() const noexcept override {
    return diag_;
  }
  const DecodeDiagnostics& last_diagnostics() const noexcept override {
    return last_diag_;
  }
  const std::string& last_path() const noexcept override {
    return kEmptyString;
  }
  const std::string& error() const noexcept override { return error_; }
  SourceErrorKind error_kind() const noexcept override {
    return error_.empty() ? SourceErrorKind::kNone
                          : SourceErrorKind::kUndecodable;
  }

 private:
  std::vector<std::string> buffers_;
  DecodeOptions options_;
  std::size_t index_ = 0;
  DecodeDiagnostics diag_;
  DecodeDiagnostics last_diag_;
  std::string error_;
};

class FileSource final : public SnapshotSource {
 public:
  FileSource(std::vector<std::string> paths, const DecodeOptions& options,
             util::ThreadPool* pool)
      : paths_(std::move(paths)),
        options_(options),
        pool_(pool),
        // Mappings may run on pool workers that lack the caller's
        // CycleScope, so capture its (cycle, attempt) lineage here and key
        // every map op explicitly — fault draws are then identical no
        // matter which thread performs the map.
        context_(util::io::capture_context()) {}

  std::optional<Snapshot> next() override {
    if (!error_.empty() || index_ >= paths_.size()) return std::nullopt;
    // A failed prefetch retries here once before declaring the shard dead
    // (a fresh ordinal, so an injected fault does not deterministically
    // recur on the retry).
    if (!staged_) {
      staged_ =
          util::io::env().map_file(paths_[index_], context_, map_ordinal_++);
    }
    std::optional<util::MmapFile> current = std::move(staged_);
    staged_.reset();
    const std::size_t i = index_++;
    last_path_ = paths_[i];
    last_diag_ = DecodeDiagnostics{};
    if (!current) {
      error_ = last_path_ + ": cannot read";
      kind_ = SourceErrorKind::kUnreadable;
      return std::nullopt;
    }

    std::optional<Snapshot> snap;
    if (index_ < paths_.size() && pool_ != nullptr) {
      // Overlap: decode shard i here while a worker maps shard i+1. Both
      // indices write disjoint state; parallel_for joins before we read it.
      // The ordinal is drawn before dispatch so the fault key never depends
      // on pool scheduling.
      const std::uint64_t ordinal = map_ordinal_++;
      std::optional<util::MmapFile> prefetched;
      util::parallel_for(pool_, 2, [&](std::size_t k) {
        if (k == 0) {
          snap = decode_snapshot(current->view(), options_, &last_diag_);
        } else {
          prefetched =
              util::io::env().map_file(paths_[index_], context_, ordinal);
        }
      });
      staged_ = std::move(prefetched);
    } else {
      snap = decode_snapshot(current->view(), options_, &last_diag_);
    }
    diag_.merge(last_diag_);
    if (!snap) {
      error_ = last_path_ + ": not a warts-lite snapshot";
      kind_ = SourceErrorKind::kUndecodable;
      return std::nullopt;
    }
    return snap;
  }
  const DecodeDiagnostics& diagnostics() const noexcept override {
    return diag_;
  }
  const DecodeDiagnostics& last_diagnostics() const noexcept override {
    return last_diag_;
  }
  const std::string& last_path() const noexcept override {
    return last_path_;
  }
  const std::string& error() const noexcept override { return error_; }
  SourceErrorKind error_kind() const noexcept override { return kind_; }

 private:
  std::vector<std::string> paths_;
  DecodeOptions options_;
  util::ThreadPool* pool_;
  util::io::OpContext context_;
  std::uint64_t map_ordinal_ = 0;
  std::size_t index_ = 0;
  std::optional<util::MmapFile> staged_;  // mapping for paths_[index_]
  DecodeDiagnostics diag_;
  DecodeDiagnostics last_diag_;
  std::string last_path_;
  std::string error_;
  SourceErrorKind kind_ = SourceErrorKind::kNone;
};

}  // namespace

std::unique_ptr<SnapshotSource> make_memory_source(
    std::vector<Snapshot> snapshots) {
  return std::make_unique<MemorySource>(std::move(snapshots));
}

std::unique_ptr<SnapshotSource> make_bytes_source(
    std::vector<std::string> buffers, const DecodeOptions& options) {
  return std::make_unique<BytesSource>(std::move(buffers), options);
}

std::unique_ptr<SnapshotSource> make_file_source(std::vector<std::string> paths,
                                                 const DecodeOptions& options,
                                                 util::ThreadPool* pool) {
  return std::make_unique<FileSource>(std::move(paths), options, pool);
}

}  // namespace mum::dataset
