#include "chaos/chaos.h"

#include <algorithm>
#include <charconv>
#include <set>
#include <vector>

#include "obs/telemetry.h"
#include "util/rng.h"
#include "util/strings.h"

namespace mum::chaos {

namespace {

// Seed-lineage tags keeping the fault streams independent of each other and
// of the generator's own (seed, cycle, sub) streams.
constexpr std::uint64_t kStructuralTag = 0xC4A05'57A7ull;
constexpr std::uint64_t kWireTag = 0xC4A05'B17Eull;
constexpr std::uint64_t kFailTag = 0xC4A05'FA11ull;

std::optional<double> parse_rate(std::string_view text) {
  bool percent = false;
  if (!text.empty() && text.back() == '%') {
    percent = true;
    text.remove_suffix(1);
  }
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    return std::nullopt;
  }
  if (percent) value /= 100.0;
  if (value < 0.0 || value > 1.0) return std::nullopt;
  return value;
}

}  // namespace

std::optional<ChaosConfig> parse_chaos_spec(std::string_view spec,
                                            std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<ChaosConfig> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };

  ChaosConfig config;
  for (std::string_view field : util::split(spec, ',')) {
    field = util::trim(field);
    if (field.empty()) continue;

    const auto eq = field.find('=');
    std::string_view name =
        eq == std::string_view::npos ? "all" : util::trim(field.substr(0, eq));
    const std::string_view value = util::trim(
        eq == std::string_view::npos ? field : field.substr(eq + 1));

    if (name == "seed") {
      const auto seed = util::parse_u64(value);
      if (!seed) return fail("chaos: seed expects an integer, got '" +
                             std::string(value) + "'");
      config.seed = *seed;
      continue;
    }
    if (name == "io.slow_ms") {
      const auto ms = util::parse_u64(value);
      if (!ms) return fail("chaos: io.slow_ms expects an integer, got '" +
                           std::string(value) + "'");
      config.io.slow_ms = static_cast<std::uint32_t>(*ms);
      continue;
    }
    if (name == "io.kill_at") {
      const auto at = util::parse_u64(value);
      if (!at) return fail("chaos: io.kill_at expects an integer, got '" +
                           std::string(value) + "'");
      config.io.kill_at_op = *at;
      continue;
    }
    if (name == "io.kill_mode") {
      if (value == "kill") {
        config.io.kill_mode = util::io::FaultConfig::KillMode::kKill;
      } else if (value == "dead") {
        config.io.kill_mode = util::io::FaultConfig::KillMode::kDead;
      } else {
        return fail("chaos: io.kill_mode expects kill or dead, got '" +
                    std::string(value) + "'");
      }
      continue;
    }

    const auto rate = parse_rate(value);
    if (!rate) {
      return fail("chaos: '" + std::string(value) +
                  "' is not a rate in [0,1] (use 0.02 or 2%)");
    }
    if (name == "all") {
      config.truncate_stack = config.drop_extension = config.duplicate_ttl =
          config.reorder_ttl = config.bogus_ip2as =
              config.monitor_blackout = config.flip_byte = *rate;
    } else if (name == "stack") {
      config.truncate_stack = *rate;
    } else if (name == "noext") {
      config.drop_extension = *rate;
    } else if (name == "dupttl") {
      config.duplicate_ttl = *rate;
    } else if (name == "reorder") {
      config.reorder_ttl = *rate;
    } else if (name == "ip2as") {
      config.bogus_ip2as = *rate;
    } else if (name == "blackout") {
      config.monitor_blackout = *rate;
    } else if (name == "flip") {
      config.flip_byte = *rate;
    } else if (name == "fail") {
      config.cycle_failure = *rate;
    } else if (name == "io.all") {
      config.io.eio = config.io.enospc = config.io.short_write =
          config.io.torn_temp = config.io.stale_rename = config.io.slow_op =
              *rate;
    } else if (name == "io.eio") {
      config.io.eio = *rate;
    } else if (name == "io.enospc") {
      config.io.enospc = *rate;
    } else if (name == "io.shortwrite") {
      config.io.short_write = *rate;
    } else if (name == "io.torn") {
      config.io.torn_temp = *rate;
    } else if (name == "io.stalerename") {
      config.io.stale_rename = *rate;
    } else if (name == "io.slow") {
      config.io.slow_op = *rate;
    } else {
      return fail("chaos: unknown fault '" + std::string(name) +
                  "' (stack, noext, dupttl, reorder, ip2as, blackout, flip, "
                  "fail, seed, all; io.eio, io.enospc, io.shortwrite, "
                  "io.torn, io.stalerename, io.slow, io.slow_ms, io.all, "
                  "io.kill_at, io.kill_mode)");
    }
  }
  return config;
}

void publish(const ChaosStats& stats) {
  if (stats.total() == 0) return;
  obs::Registry& r = obs::registry();
  static obs::Counter& stacks = r.counter("chaos.injected.stacks_truncated");
  static obs::Counter& exts = r.counter("chaos.injected.extensions_dropped");
  static obs::Counter& dups = r.counter("chaos.injected.hops_duplicated");
  static obs::Counter& reorders =
      r.counter("chaos.injected.hops_reordered");
  static obs::Counter& asns = r.counter("chaos.injected.asns_scrambled");
  static obs::Counter& blackouts =
      r.counter("chaos.injected.monitors_blacked_out");
  static obs::Counter& dropped = r.counter("chaos.injected.traces_dropped");
  static obs::Counter& flips = r.counter("chaos.injected.bytes_flipped");
  static obs::Counter& failures = r.counter("chaos.injected.cycles_failed");
  stacks.add(stats.stacks_truncated);
  exts.add(stats.extensions_dropped);
  dups.add(stats.hops_duplicated);
  reorders.add(stats.hops_reordered);
  asns.add(stats.asns_scrambled);
  blackouts.add(stats.monitors_blacked_out);
  dropped.add(stats.traces_dropped);
  flips.add(stats.bytes_flipped);
  failures.add(stats.cycles_failed);
}

void publish_io(const util::io::FaultCounts& counts) {
  if (counts.ops == 0) return;
  obs::Registry& r = obs::registry();
  static obs::Counter& ops = r.counter("chaos.io.ops");
  ops.add(counts.ops);
  for (std::size_t f = 0; f < util::io::kFaultClassCount; ++f) {
    if (counts.injected[f] == 0) continue;
    r.counter(std::string("chaos.io.") +
              util::io::to_cstring(static_cast<util::io::FaultClass>(f)))
        .add(counts.injected[f]);
  }
}

ChaosStats& ChaosStats::merge(const ChaosStats& other) noexcept {
  stacks_truncated += other.stacks_truncated;
  extensions_dropped += other.extensions_dropped;
  hops_duplicated += other.hops_duplicated;
  hops_reordered += other.hops_reordered;
  asns_scrambled += other.asns_scrambled;
  monitors_blacked_out += other.monitors_blacked_out;
  traces_dropped += other.traces_dropped;
  bytes_flipped += other.bytes_flipped;
  cycles_failed += other.cycles_failed;
  return *this;
}

void Corruptor::corrupt(dataset::Snapshot& snapshot) {
  if (!config_.any_structural()) return;
  util::Rng rng(util::hash_combine(
      config_.seed,
      util::hash_combine(kStructuralTag,
                         util::hash_combine(snapshot.cycle_id,
                                            snapshot.sub_index))));

  // Monitor blackouts first: a dead monitor contributes nothing, so its
  // traces must not consume per-trace draws (keeps the surviving traces'
  // corruption independent of which monitors died).
  if (config_.monitor_blackout > 0) {
    std::set<std::uint32_t> fleet;
    for (const dataset::Trace& t : snapshot.traces) fleet.insert(t.monitor_id);
    std::set<std::uint32_t> dead;
    for (const std::uint32_t monitor : fleet) {
      if (rng.chance(config_.monitor_blackout)) dead.insert(monitor);
    }
    if (!dead.empty()) {
      const std::size_t before = snapshot.traces.size();
      std::erase_if(snapshot.traces, [&](const dataset::Trace& t) {
        return dead.contains(t.monitor_id);
      });
      stats_.monitors_blacked_out += dead.size();
      stats_.traces_dropped += before - snapshot.traces.size();
    }
  }

  for (dataset::Trace& trace : snapshot.traces) {
    if (config_.duplicate_ttl > 0 && !trace.hops.empty() &&
        rng.chance(config_.duplicate_ttl)) {
      const std::size_t at =
          static_cast<std::size_t>(rng.below(trace.hops.size()));
      trace.hops.insert(trace.hops.begin() + static_cast<std::ptrdiff_t>(at),
                        trace.hops[at]);
      ++stats_.hops_duplicated;
    }
    if (config_.reorder_ttl > 0 && trace.hops.size() >= 2 &&
        rng.chance(config_.reorder_ttl)) {
      const std::size_t at =
          static_cast<std::size_t>(rng.below(trace.hops.size() - 1));
      std::swap(trace.hops[at], trace.hops[at + 1]);
      ++stats_.hops_reordered;
    }
    for (dataset::TraceHop& hop : trace.hops) {
      if (hop.has_labels()) {
        if (config_.drop_extension > 0 &&
            rng.chance(config_.drop_extension)) {
          hop.labels = net::LabelStack();
          ++stats_.extensions_dropped;
        } else if (config_.truncate_stack > 0 &&
                   rng.chance(config_.truncate_stack)) {
          // Keep a strict prefix of the stack (possibly empty).
          const auto entries = hop.labels.entries();
          const auto keep =
              static_cast<std::size_t>(rng.below(hop.labels.depth()));
          hop.labels = net::LabelStack(std::vector<net::LabelStackEntry>(
              entries.begin(), entries.begin() + keep));
          ++stats_.stacks_truncated;
        }
      }
      if (config_.bogus_ip2as > 0 && !hop.anonymous() && hop.asn != 0 &&
          rng.chance(config_.bogus_ip2as)) {
        // Remap into a private-use ASN no generated AS occupies.
        hop.asn = 64512 + static_cast<std::uint32_t>(rng.below(1024));
        ++stats_.asns_scrambled;
      }
    }
  }
}

void Corruptor::corrupt_bytes(std::string& bytes, std::uint64_t key) {
  if (config_.flip_byte <= 0) return;
  util::Rng rng(util::hash_combine(config_.seed,
                                   util::hash_combine(kWireTag, key)));
  constexpr std::size_t kHeaderBytes = 5;  // magic + version stay intact
  for (std::size_t i = kHeaderBytes; i < bytes.size(); ++i) {
    if (rng.chance(config_.flip_byte)) {
      bytes[i] = static_cast<char>(
          static_cast<unsigned char>(bytes[i]) ^
          (1u << static_cast<unsigned>(rng.below(8))));
      ++stats_.bytes_flipped;
    }
  }
}

bool Corruptor::should_fail_cycle(int cycle) {
  if (config_.cycle_failure <= 0) return false;
  util::Rng rng(util::hash_combine(
      config_.seed,
      util::hash_combine(kFailTag, static_cast<std::uint64_t>(cycle))));
  if (!rng.chance(config_.cycle_failure)) return false;
  ++stats_.cycles_failed;
  return true;
}

}  // namespace mum::chaos
