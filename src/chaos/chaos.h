// Chaos layer: deterministic dataset fault injection.
//
// Real Archipelago data is messy — incomplete LSPs, missing RFC 4950
// extensions, monitor outages, corrupted captures — and the paper's whole
// filtering stage (Sec. 3.1) exists to survive it. The generator, however,
// emits only well-formed snapshots, so the tolerant paths of the pipeline
// were never exercised. The Corruptor closes that gap: it mutates decoded
// snapshots (structural faults) and serialized snapshot bytes (wire faults)
// at configured per-fault rates.
//
// Determinism contract: every draw derives from an RNG stream keyed by
// (config.seed, cycle_id, sub_index) — the same snapshot corrupts the same
// way no matter the call order, thread count, or what else was corrupted
// first. A Corruptor accumulates ChaosStats and is NOT thread-safe; create
// one per cycle and merge stats (the pattern Runner follows).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "dataset/trace.h"
#include "util/io.h"

namespace mum::chaos {

// Per-fault injection rates, all probabilities in [0, 1].
struct ChaosConfig {
  std::uint64_t seed = 0xC0FFEE;

  // Structural faults on decoded snapshots (unit in parentheses):
  double truncate_stack = 0.0;    // per labeled hop: drop trailing LSEs
  double drop_extension = 0.0;    // per labeled hop: lose the RFC 4950 ext
  double duplicate_ttl = 0.0;     // per trace: duplicate one hop (dup TTL)
  double reorder_ttl = 0.0;       // per trace: swap two adjacent hops
  double bogus_ip2as = 0.0;       // per mapped hop: scramble its ASN
  double monitor_blackout = 0.0;  // per monitor: drop its whole trace block

  // Wire faults on serialized snapshots:
  double flip_byte = 0.0;  // per payload byte: XOR one random bit

  // Execution faults (consumed by run::Runner):
  double cycle_failure = 0.0;  // per cycle: the worker throws ChaosError

  // Environment faults (consumed by util::io via a FailpointPlan the runner
  // installs): EIO, ENOSPC, short writes, torn temps, stale renames, slow
  // ops, and the kill-at-op crash harness. These corrupt the *environment*
  // around the run, never the data — reports stay byte-identical whenever
  // the run completes.
  util::io::FaultConfig io;

  bool any_structural() const noexcept {
    return truncate_stack > 0 || drop_extension > 0 || duplicate_ttl > 0 ||
           reorder_ttl > 0 || bogus_ip2as > 0 || monitor_blackout > 0;
  }
  bool enabled() const noexcept {
    return any_structural() || flip_byte > 0 || cycle_failure > 0 ||
           io.any();
  }
};

// Parse a --chaos spec: a comma-separated list of `fault=rate` pairs where
// rate is a decimal ("0.02") or percentage ("2%"). Fault names: stack, noext,
// dupttl, reorder, ip2as, blackout, flip, fail, seed (integer), and `all`
// which sets every dataset fault (not `fail`) to the given rate. A bare rate
// ("2%") is shorthand for `all=2%`.
//
// Environment faults use the `io.` prefix: io.eio, io.enospc, io.shortwrite,
// io.torn, io.stalerename, io.slow (rates), io.slow_ms (latency in ms),
// io.all (sets the six io rates, not the dataset faults), and the crash
// harness knobs io.kill_at (1-based op index) and io.kill_mode (kill|dead).
// Returns nullopt on a malformed spec and fills `error` with the reason.
std::optional<ChaosConfig> parse_chaos_spec(std::string_view spec,
                                            std::string* error = nullptr);

// Counts of faults actually injected (a rate of 0.02 on a small snapshot may
// inject none — the stats say what happened, the config what was asked).
struct ChaosStats {
  std::uint64_t stacks_truncated = 0;
  std::uint64_t extensions_dropped = 0;
  std::uint64_t hops_duplicated = 0;
  std::uint64_t hops_reordered = 0;
  std::uint64_t asns_scrambled = 0;
  std::uint64_t monitors_blacked_out = 0;
  std::uint64_t traces_dropped = 0;  // victims of monitor blackouts
  std::uint64_t bytes_flipped = 0;
  std::uint64_t cycles_failed = 0;

  std::uint64_t total() const noexcept {
    return stacks_truncated + extensions_dropped + hops_duplicated +
           hops_reordered + asns_scrambled + monitors_blacked_out +
           traces_dropped + bytes_flipped + cycles_failed;
  }
  ChaosStats& merge(const ChaosStats& other) noexcept;
};

// Mirror a batch of injected-fault counts into the telemetry registry
// ("chaos.injected.<kind>" counters). The runner publishes each cycle's
// Corruptor stats once, right after recording them in the manifest.
void publish(const ChaosStats& stats);

// Same for the io failpoint counts ("chaos.io.ops" + "chaos.io.<class>"),
// published once per contained run from the plan the runner installed.
void publish_io(const util::io::FaultCounts& counts);

// Thrown by injected execution faults so containment code can tell chaos
// from genuine logic errors in test assertions.
class ChaosError : public std::runtime_error {
 public:
  explicit ChaosError(const std::string& what) : std::runtime_error(what) {}
};

class Corruptor {
 public:
  explicit Corruptor(const ChaosConfig& config) : config_(config) {}

  const ChaosConfig& config() const noexcept { return config_; }
  const ChaosStats& stats() const noexcept { return stats_; }

  // Apply the structural faults to a decoded snapshot in place. Keyed by
  // (seed, snapshot.cycle_id, snapshot.sub_index).
  void corrupt(dataset::Snapshot& snapshot);

  // Apply wire faults to a serialized snapshot. The 5-byte magic+version
  // header is spared so corrupted files still identify as warts-lite and
  // exercise the record-level tolerant paths rather than the magic check.
  // `key` seeds the stream (callers pass the same cycle/sub lineage they
  // would pass structurally).
  void corrupt_bytes(std::string& bytes, std::uint64_t key);

  // Execution fault: should the given cycle's worker throw? Deterministic in
  // (seed, cycle); counts into stats when true.
  bool should_fail_cycle(int cycle);

 private:
  ChaosConfig config_;
  ChaosStats stats_;
};

}  // namespace mum::chaos
