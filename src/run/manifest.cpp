#include "run/manifest.h"

#include "util/json.h"

namespace mum::run {

const char* to_cstring(CycleOutcome outcome) noexcept {
  switch (outcome) {
    case CycleOutcome::kOk: return "ok";
    case CycleOutcome::kFromCheckpoint: return "from_checkpoint";
    case CycleOutcome::kFailed: return "failed";
    case CycleOutcome::kSkipped: return "skipped";
    case CycleOutcome::kFromData: return "from_data";
  }
  return "unknown";
}

std::size_t RunManifest::count(CycleOutcome outcome) const noexcept {
  std::size_t n = 0;
  for (const CycleStatus& status : cycles) {
    if (status.outcome == outcome) ++n;
  }
  return n;
}

chaos::ChaosStats RunManifest::chaos_total() const noexcept {
  chaos::ChaosStats total;
  for (const CycleStatus& status : cycles) total.merge(status.chaos);
  return total;
}

namespace {

void write_chaos(util::JsonWriter& json, const chaos::ChaosStats& stats) {
  json.begin_object();
  json.field("total", stats.total());
  json.field("stacks_truncated", stats.stacks_truncated);
  json.field("extensions_dropped", stats.extensions_dropped);
  json.field("hops_duplicated", stats.hops_duplicated);
  json.field("hops_reordered", stats.hops_reordered);
  json.field("asns_scrambled", stats.asns_scrambled);
  json.field("monitors_blacked_out", stats.monitors_blacked_out);
  json.field("traces_dropped", stats.traces_dropped);
  json.field("bytes_flipped", stats.bytes_flipped);
  json.field("cycles_failed", stats.cycles_failed);
  json.end_object();
}

}  // namespace

std::string RunManifest::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.field("first_cycle", first_cycle + 1);  // 1-based, as the paper counts
  json.field("last_cycle", last_cycle + 1);
  json.field("threads", static_cast<std::uint64_t>(threads));
  json.field("evolve", evolve);
  json.field("wall_ns", wall_ns);
  json.field("peak_rss_bytes", peak_rss_bytes);
  json.field("complete", complete());
  json.field("failure_budget_exceeded", failure_budget_exceeded);
  json.field("ok", static_cast<std::uint64_t>(count(CycleOutcome::kOk)));
  json.field("from_checkpoint", static_cast<std::uint64_t>(
                                    count(CycleOutcome::kFromCheckpoint)));
  json.field("from_data",
             static_cast<std::uint64_t>(count(CycleOutcome::kFromData)));
  json.field("failed",
             static_cast<std::uint64_t>(count(CycleOutcome::kFailed)));
  json.field("skipped",
             static_cast<std::uint64_t>(count(CycleOutcome::kSkipped)));
  json.key("chaos_total");
  write_chaos(json, chaos_total());
  json.key("cycles");
  json.begin_array();
  for (const CycleStatus& status : cycles) {
    json.begin_object();
    json.field("cycle", status.cycle + 1);
    json.field("outcome", to_cstring(status.outcome));
    json.field("duration_ns", status.duration_ns);
    if (status.stages.total() > 0) {
      json.key("stages");
      json.begin_object();
      for (std::size_t s = 0; s < obs::kStageCount; ++s) {
        json.field(std::string(to_cstring(static_cast<obs::Stage>(s))) +
                       "_ns",
                   status.stages.ns[s]);
      }
      json.end_object();
    }
    if (status.delta.cycle >= 0) {
      const gen::CycleDeltaStats& d = status.delta;
      json.key("delta");
      json.begin_object();
      json.field("full_build", d.full_build);
      json.field("ases_total", static_cast<std::uint64_t>(d.ases_total));
      json.field("ases_rebuilt", static_cast<std::uint64_t>(d.ases_rebuilt));
      json.field("ases_te_rebuilt",
                 static_cast<std::uint64_t>(d.ases_te_rebuilt));
      json.field("ases_restored",
                 static_cast<std::uint64_t>(d.ases_restored));
      json.field("links_down", static_cast<std::uint64_t>(d.links_down));
      json.field("links_cost_changed",
                 static_cast<std::uint64_t>(d.links_cost_changed));
      json.field("spf_sources_total",
                 static_cast<std::uint64_t>(d.spf_sources_total));
      json.field("spf_sources_recomputed",
                 static_cast<std::uint64_t>(d.spf_sources_recomputed));
      json.field("lsps_signalled",
                 static_cast<std::uint64_t>(d.lsps_signalled));
      json.end_object();
    }
    if (!status.error.empty()) json.field("error", status.error);
    if (status.chaos.total() > 0) {
      json.key("chaos");
      write_chaos(json, status.chaos);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace mum::run
