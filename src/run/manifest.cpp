#include "run/manifest.h"

#include "util/json.h"

namespace mum::run {

const char* to_cstring(CycleOutcome outcome) noexcept {
  switch (outcome) {
    case CycleOutcome::kOk: return "ok";
    case CycleOutcome::kFromCheckpoint: return "from_checkpoint";
    case CycleOutcome::kFailed: return "failed";
    case CycleOutcome::kSkipped: return "skipped";
    case CycleOutcome::kFromData: return "from_data";
    case CycleOutcome::kTimedOut: return "timed_out";
  }
  return "unknown";
}

std::size_t RunManifest::count(CycleOutcome outcome) const noexcept {
  std::size_t n = 0;
  for (const CycleStatus& status : cycles) {
    if (status.outcome == outcome) ++n;
  }
  return n;
}

chaos::ChaosStats RunManifest::chaos_total() const noexcept {
  chaos::ChaosStats total;
  for (const CycleStatus& status : cycles) total.merge(status.chaos);
  return total;
}

std::uint64_t RunManifest::checkpoint_write_failures_total() const noexcept {
  std::uint64_t total = 0;
  for (const CycleStatus& status : cycles) {
    total += status.checkpoint_write_failures;
  }
  return total;
}

std::size_t RunManifest::quarantined_total() const noexcept {
  std::size_t total = 0;
  for (const CycleStatus& status : cycles) total += status.quarantined.size();
  return total;
}

std::uint64_t RunManifest::retries_total() const noexcept {
  std::uint64_t total = 0;
  for (const CycleStatus& status : cycles) {
    if (status.attempts > 1) {
      total += static_cast<std::uint64_t>(status.attempts - 1);
    }
  }
  return total;
}

namespace {

void write_chaos(util::JsonWriter& json, const chaos::ChaosStats& stats) {
  json.begin_object();
  json.field("total", stats.total());
  json.field("stacks_truncated", stats.stacks_truncated);
  json.field("extensions_dropped", stats.extensions_dropped);
  json.field("hops_duplicated", stats.hops_duplicated);
  json.field("hops_reordered", stats.hops_reordered);
  json.field("asns_scrambled", stats.asns_scrambled);
  json.field("monitors_blacked_out", stats.monitors_blacked_out);
  json.field("traces_dropped", stats.traces_dropped);
  json.field("bytes_flipped", stats.bytes_flipped);
  json.field("cycles_failed", stats.cycles_failed);
  json.end_object();
}

}  // namespace

std::string RunManifest::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.field("first_cycle", first_cycle + 1);  // 1-based, as the paper counts
  json.field("last_cycle", last_cycle + 1);
  json.field("threads", static_cast<std::uint64_t>(threads));
  json.field("evolve", evolve);
  json.field("wall_ns", wall_ns);
  json.field("peak_rss_bytes", peak_rss_bytes);
  json.field("complete", complete());
  json.field("degraded", degraded());
  json.field("checkpoints_degraded", checkpoints_degraded);
  if (!degraded_reason.empty()) json.field("degraded_reason", degraded_reason);
  json.field("failure_budget_exceeded", failure_budget_exceeded);
  json.field("ok", static_cast<std::uint64_t>(count(CycleOutcome::kOk)));
  json.field("from_checkpoint", static_cast<std::uint64_t>(
                                    count(CycleOutcome::kFromCheckpoint)));
  json.field("from_data",
             static_cast<std::uint64_t>(count(CycleOutcome::kFromData)));
  json.field("failed",
             static_cast<std::uint64_t>(count(CycleOutcome::kFailed)));
  json.field("skipped",
             static_cast<std::uint64_t>(count(CycleOutcome::kSkipped)));
  json.field("timed_out",
             static_cast<std::uint64_t>(count(CycleOutcome::kTimedOut)));
  json.field("retries", retries_total());
  json.field("checkpoint_write_failures", checkpoint_write_failures_total());
  json.field("quarantined",
             static_cast<std::uint64_t>(quarantined_total()));
  json.key("chaos_total");
  write_chaos(json, chaos_total());
  if (io.ops > 0) {
    json.key("io");
    json.begin_object();
    json.field("ops", io.ops);
    json.field("injected_total", io.total_injected());
    for (std::size_t f = 0; f < util::io::kFaultClassCount; ++f) {
      json.field(util::io::to_cstring(static_cast<util::io::FaultClass>(f)),
                 io.injected[f]);
    }
    json.end_object();
  }
  json.key("cycles");
  json.begin_array();
  for (const CycleStatus& status : cycles) {
    json.begin_object();
    json.field("cycle", status.cycle + 1);
    json.field("outcome", to_cstring(status.outcome));
    json.field("duration_ns", status.duration_ns);
    if (status.stages.total() > 0) {
      json.key("stages");
      json.begin_object();
      for (std::size_t s = 0; s < obs::kStageCount; ++s) {
        json.field(std::string(to_cstring(static_cast<obs::Stage>(s))) +
                       "_ns",
                   status.stages.ns[s]);
      }
      json.end_object();
    }
    if (status.delta.cycle >= 0) {
      const gen::CycleDeltaStats& d = status.delta;
      json.key("delta");
      json.begin_object();
      json.field("full_build", d.full_build);
      json.field("ases_total", static_cast<std::uint64_t>(d.ases_total));
      json.field("ases_rebuilt", static_cast<std::uint64_t>(d.ases_rebuilt));
      json.field("ases_te_rebuilt",
                 static_cast<std::uint64_t>(d.ases_te_rebuilt));
      json.field("ases_restored",
                 static_cast<std::uint64_t>(d.ases_restored));
      json.field("links_down", static_cast<std::uint64_t>(d.links_down));
      json.field("links_cost_changed",
                 static_cast<std::uint64_t>(d.links_cost_changed));
      json.field("spf_sources_total",
                 static_cast<std::uint64_t>(d.spf_sources_total));
      json.field("spf_sources_recomputed",
                 static_cast<std::uint64_t>(d.spf_sources_recomputed));
      json.field("lsps_signalled",
                 static_cast<std::uint64_t>(d.lsps_signalled));
      json.end_object();
    }
    if (!status.error.empty()) json.field("error", status.error);
    if (status.attempts > 1) {
      json.field("attempts", static_cast<std::uint64_t>(status.attempts));
    }
    if (status.checkpoint_write_failures > 0) {
      json.field("checkpoint_write_failures",
                 status.checkpoint_write_failures);
    }
    if (!status.quarantined.empty()) {
      json.key("quarantined");
      json.begin_array();
      for (const QuarantineRecord& record : status.quarantined) {
        json.begin_object();
        json.field("file", record.file);
        json.field("reason", record.reason);
        json.end_object();
      }
      json.end_array();
    }
    if (status.chaos.total() > 0) {
      json.key("chaos");
      write_chaos(json, status.chaos);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace mum::run
