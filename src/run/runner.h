// Campaign-level execution engine: the library's top entry point for paper
// studies. A Runner builds the synthetic internet once from its config, then
// runs monthly cycles through generation and the LPR pipeline — serially or
// across a thread pool it owns.
//
// Promoted from bench/common's Study so the fig*/table* binaries, the CLI
// and examples all share one API (bench::Study is now an alias of this).
//
// Determinism contract: all randomness derives from RNG streams keyed by
// (seed, cycle, monitor)-style lineages, cycles are independent, and
// per-worker results merge in index order — so `threads = N` produces
// bit-identical reports to `threads = 1` for any N. Pick `threads` purely
// for wall-clock: one per hardware thread (the default, threads = 0) is
// right unless the machine is shared.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "chaos/chaos.h"
#include "core/report.h"
#include "gen/campaign.h"
#include "gen/internet.h"
#include "run/manifest.h"
#include "util/thread_pool.h"

namespace mum::run {

struct RunnerConfig {
  gen::GenConfig gen;
  gen::CampaignConfig campaign;
  lpr::PipelineConfig pipeline;
  int first_cycle = 0;
  int last_cycle = gen::kCycles - 1;  // inclusive
  // Fleet-size anomalies per (0-based) cycle: the paper's dataset shows two
  // dips "caused by measurement issues in the Archipelago infrastructure"
  // at cycles 23 and 58 (1-based) — modelled as a reduced monitor share.
  std::map<int, double> fleet_share_by_cycle = {{22, 0.55}, {57, 0.6}};
  // Worker threads for cycle- and monitor-level parallelism: 0 = one per
  // hardware thread, 1 = fully serial. Output is identical either way.
  int threads = 0;
  // Delta-based cycle evolution (the default): cycles run in order against
  // one standing world, each cycle a mutation of the previous one (pristine
  // rollback + seed-keyed per-cycle deltas through incremental SPF and
  // TE-only re-signalling). Inner stages still parallelize over the pool.
  // Off = from-scratch instantiate per cycle, cycles fan out across the
  // pool. Reports are byte-identical either way, at any thread count — the
  // full rebuild is the delta path's oracle.
  bool evolve = true;

  // --- fault injection & containment (run_all_contained only) -----------
  // Chaos faults injected into each cycle's data (off by default). When
  // flip_byte > 0, snapshots additionally round-trip through serialization +
  // tolerant decode, and the decoder's diagnostics land in the cycle report.
  chaos::ChaosConfig chaos;
  // Containment policy: fail-fast (default) stops scheduling new cycles
  // after the first failure; keep-going contains every failure until the
  // budget runs out. Failed cycles keep a placeholder report slot either way.
  bool keep_going = false;
  // Max failed cycles tolerated under keep-going before the run aborts
  // (remaining cycles are marked skipped); negative = unlimited.
  int failure_budget = -1;
  // When non-empty, each finished cycle writes <dir>/cycle_<N>.mumc and
  // resume = true splices existing checkpoints in instead of recomputing —
  // the resumed final report is byte-identical to an uninterrupted run.
  std::string checkpoint_dir;
  bool resume = false;
  // Container format for snapshot wire round-trips and data shards: 2 =
  // warts-lite stream (the interchange format, default), 3 = mmap pack.
  std::uint8_t snapshot_format = 2;
  // Also persist each cycle's month data as per-snapshot shards in
  // checkpoint_dir. On resume, a cycle whose report checkpoint is missing
  // or stale re-ingests its shards (any mix of formats — readers sniff the
  // magic) instead of regenerating; the manifest marks it kFromData. For
  // clean (chaos-free) runs the resumed report stays byte-identical.
  bool checkpoint_data = false;

  // --- supervision (run_all_contained only) -----------------------------
  // Extra attempts for a cycle whose worker threw. The attempt number keys
  // the io-fault streams (an injected EIO storm on attempt 0 does not recur
  // on attempt 1), while data chaos keys off (seed, cycle) alone — so an
  // injected cycle failure still burns every attempt, and the report bytes
  // never depend on how many attempts a cycle needed. 0 = no retries.
  int retries = 0;
  // Deterministic backoff between attempts: attempt N sleeps N * this.
  std::uint32_t retry_backoff_ms = 1;
  // Cooperative per-cycle deadline, 0 = none. IoEnv ops and stage
  // boundaries check it; an expired cycle is recorded kTimedOut (never
  // retried — the next attempt would hit the same wall) and counts against
  // the failure budget.
  std::uint32_t cycle_deadline_ms = 0;
  // Consecutive ENOSPC checkpoint-write failures before the run degrades:
  // persistence is dropped, computing continues, the manifest records it.
  int enospc_degrade_threshold = 3;
};

// What run_all_contained produces: the science and the operational record.
struct RunOutcome {
  lpr::LongitudinalReport report;
  RunManifest manifest;
};

class Runner {
 public:
  explicit Runner(const RunnerConfig& config);
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  const RunnerConfig& config() const noexcept { return config_; }
  const gen::Internet& internet() const noexcept { return internet_; }
  const dataset::Ip2As& ip2as() const noexcept { return ip2as_; }
  // Effective thread count (config.threads resolved against hardware).
  unsigned threads() const noexcept;

  // Generate one month of data and run the LPR pipeline on it. Monitor
  // fan-out and classification use the pool when threads > 1.
  lpr::CycleReport run_cycle(int cycle) const;
  // Month data only (for benches that sweep pipeline configs over fixed
  // data, like the Fig. 6 persistence sweep).
  dataset::MonthData month_data(int cycle) const;

  // Run the whole configured cycle range; cycles execute in parallel when
  // threads > 1 and merge in cycle order. Progress goes through obs::log
  // (one info line per 12 cycles, per-cycle at debug); line interleaving
  // may differ across thread counts, reports never do.
  // A worker exception propagates — use run_all_contained to survive it.
  lpr::LongitudinalReport run_all() const;

  // Containment variant: chaos injection, per-cycle error containment with
  // the configured failure policy, checkpoints and resume. A failed cycle
  // keeps a deterministic placeholder slot (cycle id + date, zero counts),
  // so the final report stays byte-identical across thread counts whenever
  // the set of attempted cycles is deterministic (always true under
  // keep-going within budget, and for chaos-injected failures).
  // The manifest additionally records per-cycle wall-clock and stage
  // timings, total wall-clock and peak RSS — observed state only; nothing
  // in the report depends on it.
  RunOutcome run_all_contained() const;

 private:
  gen::CampaignConfig campaign_for(int cycle) const;
  // month_data plus optional chaos: structural faults mutate the month's
  // snapshots in place; wire faults round-trip them through serialization
  // (in config.snapshot_format) and tolerant decode, re-annotating
  // survivors, with the decoder's diagnostics accumulated into `decode`.
  // `evolver`, when given, generates the month against the standing evolved
  // world instead of a from-scratch instantiate (byte-identical output).
  dataset::MonthData month_data(int cycle, gen::DeltaEvolver* evolver) const;
  dataset::MonthData prepare_month(int cycle, chaos::Corruptor* corruptor,
                                   dataset::DecodeDiagnostics* decode,
                                   gen::DeltaEvolver* evolver = nullptr) const;
  lpr::CycleReport run_cycle_chaos(int cycle, chaos::Corruptor* corruptor,
                                   gen::DeltaEvolver* evolver = nullptr) const;
  // Re-ingest a cycle's persisted data shards (strict decode, magic-sniffed
  // per shard) and run the pipeline on them. nullopt when shards are
  // missing, incomplete (fewer than the configured snapshots per cycle — a
  // crash mid-persist must not silently thin the month) or undecodable —
  // the caller recomputes from generation. An undecodable shard is recorded
  // in `status` so the supervision layer can quarantine it.
  std::optional<lpr::CycleReport> run_cycle_from_data(
      int cycle, CycleStatus* status = nullptr) const;
  // Move a corrupt checkpoint/shard into <checkpoint_dir>/quarantine/
  // (kept as evidence, never deleted) and record the reason in `status`.
  void quarantine_file(const std::string& path, const std::string& reason,
                       CycleStatus& status) const;

  RunnerConfig config_;
  // Declared before internet_: the pool also parallelizes the per-AS IGP
  // computation while the internet is built.
  std::unique_ptr<util::ThreadPool> pool_;  // null when threads resolve to 1
  gen::Internet internet_;
  dataset::Ip2As ip2as_;
};

}  // namespace mum::run
