#include "run/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dataset/pack.h"
#include "dataset/warts_lite.h"  // varint helpers + stream serializer
#include "obs/telemetry.h"
#include "util/io.h"
#include "util/rng.h"  // fnv1a

namespace mum::run {

namespace {

namespace fs = std::filesystem;

using dataset::get_varint;
using dataset::put_varint;

constexpr char kMagic[4] = {'M', 'U', 'M', 'C'};
// v2: DecodeDiagnostics grew the v3-pack fault classes, changing the counts
// array length baked into the payload. v1 files no longer load (the cycle
// recomputes), which beats misattributing fault counters.
constexpr std::uint8_t kVersion = 2;

// --- primitive writers/readers ------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

std::optional<std::uint8_t> get_u8(const std::string& in, std::size_t& pos) {
  if (pos >= in.size()) return std::nullopt;
  return static_cast<std::uint8_t>(in[pos++]);
}

std::optional<std::uint32_t> get_u32(const std::string& in,
                                     std::size_t& pos) {
  if (pos + 4 > in.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return v;
}

std::optional<std::string> get_string(const std::string& in,
                                      std::size_t& pos) {
  const auto len = get_varint(in, pos);
  if (!len || *len > in.size() - pos) return std::nullopt;
  std::string s = in.substr(pos, *len);
  pos += *len;
  return s;
}

// --- composite writers ---------------------------------------------------

void put_counts(std::string& out, const lpr::ClassCounts& c) {
  put_varint(out, c.mono_lsp);
  put_varint(out, c.multi_fec);
  put_varint(out, c.mono_fec);
  put_varint(out, c.unclassified);
  put_varint(out, c.parallel_links);
  put_varint(out, c.routers_disjoint);
}

std::optional<lpr::ClassCounts> get_counts(const std::string& in,
                                           std::size_t& pos) {
  lpr::ClassCounts c;
  for (std::uint64_t* field :
       {&c.mono_lsp, &c.multi_fec, &c.mono_fec, &c.unclassified,
        &c.parallel_links, &c.routers_disjoint}) {
    const auto v = get_varint(in, pos);
    if (!v) return std::nullopt;
    *field = *v;
  }
  return c;
}

void put_lsp(std::string& out, const lpr::Lsp& lsp) {
  put_varint(out, lsp.asn);
  put_u32(out, lsp.ingress.value());
  put_u32(out, lsp.egress.value());
  put_u8(out, lsp.egress_labeled ? 1 : 0);
  put_varint(out, lsp.lsrs.size());
  for (const lpr::LsrHop& lsr : lsp.lsrs) {
    put_u32(out, lsr.addr.value());
    put_varint(out, lsr.labels.size());
    for (const std::uint32_t label : lsr.labels) put_varint(out, label);
  }
}

std::optional<lpr::Lsp> get_lsp(const std::string& in, std::size_t& pos) {
  lpr::Lsp lsp;
  const auto asn = get_varint(in, pos);
  const auto ingress = get_u32(in, pos);
  const auto egress = get_u32(in, pos);
  const auto labeled = get_u8(in, pos);
  const auto n_lsrs = get_varint(in, pos);
  if (!asn || !ingress || !egress || !labeled || !n_lsrs ||
      *n_lsrs > (in.size() - pos) / 5) {
    return std::nullopt;
  }
  lsp.asn = static_cast<std::uint32_t>(*asn);
  lsp.ingress = net::Ipv4Addr(*ingress);
  lsp.egress = net::Ipv4Addr(*egress);
  lsp.egress_labeled = (*labeled != 0);
  lsp.lsrs.reserve(static_cast<std::size_t>(*n_lsrs));
  for (std::uint64_t i = 0; i < *n_lsrs; ++i) {
    lpr::LsrHop lsr;
    const auto addr = get_u32(in, pos);
    const auto n_labels = get_varint(in, pos);
    if (!addr || !n_labels || *n_labels > in.size() - pos) {
      return std::nullopt;
    }
    lsr.addr = net::Ipv4Addr(*addr);
    lsr.labels.reserve(static_cast<std::size_t>(*n_labels));
    for (std::uint64_t l = 0; l < *n_labels; ++l) {
      const auto label = get_varint(in, pos);
      if (!label) return std::nullopt;
      lsr.labels.push_back(static_cast<std::uint32_t>(*label));
    }
    lsp.lsrs.push_back(std::move(lsr));
  }
  return lsp;
}

void put_iotp(std::string& out, const lpr::IotpRecord& rec) {
  put_varint(out, rec.key.asn);
  put_u32(out, rec.key.ingress.value());
  put_u32(out, rec.key.egress.value());
  put_varint(out, rec.variants.size());
  for (const lpr::Lsp& lsp : rec.variants) put_lsp(out, lsp);
  put_varint(out, rec.dst_asns.size());
  for (const std::uint32_t asn : rec.dst_asns) put_varint(out, asn);
  put_u8(out, static_cast<std::uint8_t>(rec.tunnel_class));
  put_u8(out, static_cast<std::uint8_t>(rec.mono_fec_kind));
  put_u8(out, rec.classified_by_alias_heuristic ? 1 : 0);
  put_varint(out, static_cast<std::uint64_t>(rec.length));
  put_varint(out, static_cast<std::uint64_t>(rec.width));
  put_varint(out, static_cast<std::uint64_t>(rec.symmetry));
}

std::optional<lpr::IotpRecord> get_iotp(const std::string& in,
                                        std::size_t& pos) {
  lpr::IotpRecord rec;
  const auto asn = get_varint(in, pos);
  const auto ingress = get_u32(in, pos);
  const auto egress = get_u32(in, pos);
  if (!asn || !ingress || !egress) return std::nullopt;
  rec.key = {static_cast<std::uint32_t>(*asn), net::Ipv4Addr(*ingress),
             net::Ipv4Addr(*egress)};
  const auto n_variants = get_varint(in, pos);
  if (!n_variants || *n_variants > (in.size() - pos) / 10) {
    return std::nullopt;
  }
  rec.variants.reserve(static_cast<std::size_t>(*n_variants));
  for (std::uint64_t i = 0; i < *n_variants; ++i) {
    auto lsp = get_lsp(in, pos);
    if (!lsp) return std::nullopt;
    rec.variants.push_back(std::move(*lsp));
  }
  const auto n_dsts = get_varint(in, pos);
  if (!n_dsts || *n_dsts > in.size() - pos) return std::nullopt;
  rec.dst_asns.reserve(static_cast<std::size_t>(*n_dsts));
  for (std::uint64_t i = 0; i < *n_dsts; ++i) {
    const auto dst = get_varint(in, pos);
    if (!dst) return std::nullopt;
    rec.dst_asns.push_back(static_cast<std::uint32_t>(*dst));
  }
  const auto tunnel_class = get_u8(in, pos);
  const auto mono_fec = get_u8(in, pos);
  const auto alias = get_u8(in, pos);
  const auto length = get_varint(in, pos);
  const auto width = get_varint(in, pos);
  const auto symmetry = get_varint(in, pos);
  if (!tunnel_class.has_value() || !mono_fec.has_value() ||
      !alias.has_value() || !length.has_value() || !width.has_value() ||
      !symmetry.has_value()) {
    return std::nullopt;
  }
  if (*tunnel_class > 3 || *mono_fec > 2) return std::nullopt;
  rec.tunnel_class = static_cast<lpr::TunnelClass>(*tunnel_class);
  rec.mono_fec_kind = static_cast<lpr::MonoFecKind>(*mono_fec);
  rec.classified_by_alias_heuristic = (*alias != 0);
  rec.length = static_cast<int>(*length);
  rec.width = static_cast<int>(*width);
  rec.symmetry = static_cast<int>(*symmetry);
  return rec;
}

void put_diagnostics(std::string& out,
                     const dataset::DecodeDiagnostics& diag) {
  for (const std::uint64_t c : diag.counts) put_varint(out, c);
  put_varint(out, diag.records_decoded);
  put_varint(out, diag.records_skipped);
  put_varint(out, diag.samples.size());
  for (const dataset::DecodeFault& fault : diag.samples) {
    put_u8(out, static_cast<std::uint8_t>(fault.fault));
    put_varint(out, fault.offset);
    put_varint(out, fault.record);
    put_string(out, fault.detail);
  }
}

std::optional<dataset::DecodeDiagnostics> get_diagnostics(
    const std::string& in, std::size_t& pos) {
  dataset::DecodeDiagnostics diag;
  for (std::uint64_t& c : diag.counts) {
    const auto v = get_varint(in, pos);
    if (!v) return std::nullopt;
    c = *v;
  }
  const auto decoded = get_varint(in, pos);
  const auto skipped = get_varint(in, pos);
  const auto n_samples = get_varint(in, pos);
  if (!decoded || !skipped || !n_samples ||
      *n_samples > dataset::DecodeDiagnostics::kMaxSamples) {
    return std::nullopt;
  }
  diag.records_decoded = *decoded;
  diag.records_skipped = *skipped;
  for (std::uint64_t i = 0; i < *n_samples; ++i) {
    const auto fault = get_u8(in, pos);
    const auto offset = get_varint(in, pos);
    const auto record = get_varint(in, pos);
    auto detail = get_string(in, pos);
    if (!fault || *fault >= dataset::kFaultClassCount || !offset ||
        !record || !detail) {
      return std::nullopt;
    }
    diag.samples.push_back(dataset::DecodeFault{
        static_cast<dataset::FaultClass>(*fault),
        static_cast<std::size_t>(*offset), *record, std::move(*detail)});
  }
  return diag;
}

}  // namespace

std::string serialize_cycle_report(const lpr::CycleReport& report) {
  std::string payload;
  put_varint(payload, report.cycle_id);
  put_string(payload, report.date);

  const lpr::ExtractStats& e = report.extract_stats;
  put_varint(payload, e.traces_total);
  put_varint(payload, e.traces_with_explicit_tunnel);
  put_varint(payload, e.lsps_observed);
  put_varint(payload, e.lsps_incomplete);
  put_varint(payload, e.mpls_ips);
  put_varint(payload, e.non_mpls_ips);

  const lpr::FilterStats& f = report.filter_stats;
  put_varint(payload, f.observed);
  put_varint(payload, f.complete);
  put_varint(payload, f.after_intra_as);
  put_varint(payload, f.after_target_as);
  put_varint(payload, f.after_transit_diversity);
  put_varint(payload, f.after_persistence);

  put_counts(payload, report.global);

  put_varint(payload, report.per_as.size());
  for (const auto& [asn, counts] : report.per_as) {
    put_varint(payload, asn);
    put_counts(payload, counts);
  }
  put_varint(payload, report.dynamic_as.size());
  for (const auto& [asn, dynamic] : report.dynamic_as) {
    put_varint(payload, asn);
    put_u8(payload, dynamic ? 1 : 0);
  }
  put_varint(payload, report.iotps.size());
  for (const lpr::IotpRecord& rec : report.iotps) put_iotp(payload, rec);

  put_diagnostics(payload, report.decode);

  std::string out;
  out.append(kMagic, sizeof kMagic);
  out.push_back(static_cast<char>(kVersion));
  out.append(payload);
  put_u64(out, util::fnv1a(payload));
  return out;
}

std::optional<lpr::CycleReport> parse_cycle_report(const std::string& bytes) {
  if (bytes.size() < sizeof kMagic + 1 + 8 ||
      bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0 ||
      static_cast<std::uint8_t>(bytes[sizeof kMagic]) != kVersion) {
    return std::nullopt;
  }
  const std::string payload =
      bytes.substr(sizeof kMagic + 1, bytes.size() - sizeof kMagic - 1 - 8);
  std::size_t check_pos = bytes.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes[check_pos + i]))
              << (8 * i);
  }
  if (stored != util::fnv1a(payload)) return std::nullopt;

  lpr::CycleReport report;
  std::size_t pos = 0;
  const auto cycle_id = get_varint(payload, pos);
  auto date = get_string(payload, pos);
  if (!cycle_id || !date) return std::nullopt;
  report.cycle_id = static_cast<std::uint32_t>(*cycle_id);
  report.date = std::move(*date);

  for (std::uint64_t* field :
       {&report.extract_stats.traces_total,
        &report.extract_stats.traces_with_explicit_tunnel,
        &report.extract_stats.lsps_observed,
        &report.extract_stats.lsps_incomplete,
        &report.extract_stats.mpls_ips,
        &report.extract_stats.non_mpls_ips,
        &report.filter_stats.observed, &report.filter_stats.complete,
        &report.filter_stats.after_intra_as,
        &report.filter_stats.after_target_as,
        &report.filter_stats.after_transit_diversity,
        &report.filter_stats.after_persistence}) {
    const auto v = get_varint(payload, pos);
    if (!v) return std::nullopt;
    *field = *v;
  }

  const auto global = get_counts(payload, pos);
  if (!global) return std::nullopt;
  report.global = *global;

  const auto n_per_as = get_varint(payload, pos);
  if (!n_per_as || *n_per_as > payload.size() - pos) return std::nullopt;
  for (std::uint64_t i = 0; i < *n_per_as; ++i) {
    const auto asn = get_varint(payload, pos);
    const auto counts = get_counts(payload, pos);
    if (!asn || !counts) return std::nullopt;
    report.per_as[static_cast<std::uint32_t>(*asn)] = *counts;
  }
  const auto n_dynamic = get_varint(payload, pos);
  if (!n_dynamic || *n_dynamic > payload.size() - pos) return std::nullopt;
  for (std::uint64_t i = 0; i < *n_dynamic; ++i) {
    const auto asn = get_varint(payload, pos);
    const auto dynamic = get_u8(payload, pos);
    if (!asn || !dynamic) return std::nullopt;
    report.dynamic_as[static_cast<std::uint32_t>(*asn)] = (*dynamic != 0);
  }
  const auto n_iotps = get_varint(payload, pos);
  if (!n_iotps || *n_iotps > payload.size() - pos) return std::nullopt;
  report.iotps.reserve(static_cast<std::size_t>(*n_iotps));
  for (std::uint64_t i = 0; i < *n_iotps; ++i) {
    auto rec = get_iotp(payload, pos);
    if (!rec) return std::nullopt;
    report.iotps.push_back(std::move(*rec));
  }
  const auto diag = get_diagnostics(payload, pos);
  if (!diag) return std::nullopt;
  report.decode = *diag;

  if (pos != payload.size()) return std::nullopt;
  return report;
}

std::string checkpoint_filename(int cycle) {
  return "cycle_" + std::to_string(cycle + 1) + ".mumc";
}

bool write_checkpoint_file(const std::string& dir, int cycle,
                           const lpr::CycleReport& report) {
  static obs::Counter& reports_written =
      obs::registry().counter("checkpoint.reports_written");
  static obs::Counter& bytes_written =
      obs::registry().counter("checkpoint.bytes_written");
  util::io::IoEnv& env = util::io::env();
  if (!env.create_dirs(dir)) return false;
  const std::string name = checkpoint_filename(cycle);
  const std::string final_path = (fs::path(dir) / name).string();
  const std::string tmp_path = (fs::path(dir) / (name + ".tmp")).string();
  const std::string bytes = serialize_cycle_report(report);
  // A failed or torn write leaves its .tmp litter in place — exactly what a
  // real fault leaves, and resume never reads .tmp names. No cleanup op, so
  // env.last_error() still names the failing op when we return.
  if (!env.write_file(tmp_path, bytes)) return false;
  bytes_written.add(bytes.size());
  if (!env.rename_file(tmp_path, final_path)) return false;
  reports_written.inc();
  return true;
}

std::optional<lpr::CycleReport> load_checkpoint_file(const std::string& dir,
                                                     int cycle,
                                                     LoadStatus* status) {
  static obs::Counter& reports_loaded =
      obs::registry().counter("checkpoint.reports_loaded");
  static obs::Counter& load_failures =
      obs::registry().counter("checkpoint.load_failures");
  const auto set = [&](LoadStatus s) {
    if (status != nullptr) *status = s;
  };
  util::io::IoEnv& env = util::io::env();
  const std::string path =
      (fs::path(dir) / checkpoint_filename(cycle)).string();
  const auto bytes = env.read_file(path);
  if (!bytes) {
    // Absent is normal (no failure counted); a failed read is not corrupt —
    // nothing on disk says the file is bad, so it must not be quarantined.
    set(env.last_error() == util::io::Error::kNone ? LoadStatus::kMissing
                                                   : LoadStatus::kIoError);
    return std::nullopt;
  }
  auto report = parse_cycle_report(*bytes);
  set(report ? LoadStatus::kOk : LoadStatus::kCorrupt);
  (report ? reports_loaded : load_failures).inc();
  return report;
}

std::string data_shard_filename(int cycle, std::size_t sub,
                                std::uint8_t format) {
  return "cycle_" + std::to_string(cycle + 1) + "_s" + std::to_string(sub) +
         (format >= dataset::kPackVersion ? ".mump" : ".mumw");
}

bool write_data_shard(const std::string& dir, int cycle, std::size_t sub,
                      const dataset::Snapshot& snapshot,
                      std::uint8_t format) {
  static obs::Counter& shards_written =
      obs::registry().counter("checkpoint.shards_written");
  static obs::Counter& bytes_written =
      obs::registry().counter("checkpoint.bytes_written");
  util::io::IoEnv& env = util::io::env();
  if (!env.create_dirs(dir)) return false;
  const std::string name = data_shard_filename(cycle, sub, format);
  const std::string final_path = (fs::path(dir) / name).string();
  const std::string tmp_path = (fs::path(dir) / (name + ".tmp")).string();
  const std::string bytes = format >= dataset::kPackVersion
                                ? dataset::serialize_pack(snapshot)
                                : dataset::serialize_snapshot(snapshot);
  if (!env.write_file(tmp_path, bytes)) return false;
  bytes_written.add(bytes.size());
  if (!env.rename_file(tmp_path, final_path)) return false;
  shards_written.inc();
  return true;
}

std::vector<std::string> find_data_shards(const std::string& dir, int cycle) {
  std::vector<std::string> paths;
  for (std::size_t sub = 0;; ++sub) {
    bool found = false;
    for (const std::uint8_t format :
         {dataset::kWartsLiteVersion, dataset::kPackVersion}) {
      const fs::path path =
          fs::path(dir) / data_shard_filename(cycle, sub, format);
      std::error_code ec;
      if (fs::is_regular_file(path, ec)) {
        paths.push_back(path.string());
        found = true;
        break;
      }
    }
    if (!found) break;
  }
  return paths;
}

}  // namespace mum::run
