// RunManifest: the structured record of what actually happened during a
// campaign run — which cycles computed, which were restored from
// checkpoints, which failed (and why), which were skipped once the failure
// budget ran out, and how many chaos faults were injected where.
//
// The manifest is the error-containment counterpart of the report: the
// report holds the science, the manifest holds the operational truth a
// partial run must not hide.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "gen/evolve.h"
#include "obs/stage.h"
#include "util/io.h"

namespace mum::run {

enum class CycleOutcome : std::uint8_t {
  kOk = 0,          // computed this run
  kFromCheckpoint,  // restored from a checkpoint file (--resume)
  kFailed,          // the worker threw; report slot is an empty placeholder
  kSkipped,         // not attempted (failure budget exhausted / fail-fast)
  kFromData,        // recomputed from persisted data shards (--resume with
                    // checkpoint_data and no report checkpoint)
  kTimedOut,        // abandoned at the per-cycle deadline; placeholder slot
};
const char* to_cstring(CycleOutcome outcome) noexcept;

// A file the supervision layer moved into <checkpoint_dir>/quarantine/
// instead of deleting: corrupt evidence is kept, and the manifest says why.
struct QuarantineRecord {
  std::string file;    // original filename (not path)
  std::string reason;  // e.g. "corrupt checkpoint", "undecodable shard"
};

struct CycleStatus {
  int cycle = 0;
  CycleOutcome outcome = CycleOutcome::kOk;
  std::string error;        // what() of the failure, empty otherwise
  chaos::ChaosStats chaos;  // faults injected into this cycle's data
  // Operational timing, never an input to the science: wall-clock of the
  // whole cycle and its per-stage breakdown. Stages overlap (SPF runs
  // inside generation), so stages.total() does not equal duration_ns.
  std::uint64_t duration_ns = 0;
  obs::StageTimings stages;
  // Delta-evolution accounting for this cycle's generation (delta.cycle < 0
  // when the cycle was not generated through a DeltaEvolver).
  gen::CycleDeltaStats delta;
  // --- supervision record ------------------------------------------------
  // How many attempts the cycle consumed (1 = first try succeeded).
  int attempts = 1;
  // Checkpoint/shard writes that failed after retries this cycle (the
  // report slot itself is unaffected — persistence failed, not compute).
  std::uint64_t checkpoint_write_failures = 0;
  std::vector<QuarantineRecord> quarantined;
};

struct RunManifest {
  int first_cycle = 0;
  int last_cycle = 0;
  unsigned threads = 1;
  // Whether generation evolved a standing world cycle-to-cycle (--evolve on)
  // instead of rebuilding each cycle from scratch.
  bool evolve = false;
  std::vector<CycleStatus> cycles;  // one per cycle, in cycle order
  bool failure_budget_exceeded = false;
  // End-of-run operational record: total wall-clock of the contained run
  // and the process's peak resident set when it finished.
  std::uint64_t wall_ns = 0;
  std::uint64_t peak_rss_bytes = 0;
  // --- supervision record --------------------------------------------------
  // Set when persistent ENOSPC dropped checkpoint persistence mid-run: the
  // report is still complete and correct, but later cycles have no
  // checkpoints on disk. degraded_reason says what tripped it.
  bool checkpoints_degraded = false;
  std::string degraded_reason;
  // What the installed io failpoint plan injected over this run (all zeros
  // when no plan was installed).
  util::io::FaultCounts io;

  std::size_t count(CycleOutcome outcome) const noexcept;
  // All cycles either computed or restored: the report is trustworthy
  // end to end.
  bool complete() const noexcept {
    return count(CycleOutcome::kFailed) == 0 &&
           count(CycleOutcome::kSkipped) == 0 &&
           count(CycleOutcome::kTimedOut) == 0;
  }
  // The report is complete but an operational promise was not kept:
  // checkpoint persistence was dropped (ENOSPC), some checkpoint writes
  // failed, or corrupt state was quarantined. Exit code 4 territory.
  bool degraded() const noexcept {
    return checkpoints_degraded || checkpoint_write_failures_total() > 0 ||
           quarantined_total() > 0;
  }
  std::uint64_t checkpoint_write_failures_total() const noexcept;
  std::size_t quarantined_total() const noexcept;
  // Extra attempts consumed beyond each cycle's first (0 = no retries).
  std::uint64_t retries_total() const noexcept;
  // Total chaos faults injected across all cycles.
  chaos::ChaosStats chaos_total() const noexcept;

  std::string to_json() const;
};

}  // namespace mum::run
