// RunManifest: the structured record of what actually happened during a
// campaign run — which cycles computed, which were restored from
// checkpoints, which failed (and why), which were skipped once the failure
// budget ran out, and how many chaos faults were injected where.
//
// The manifest is the error-containment counterpart of the report: the
// report holds the science, the manifest holds the operational truth a
// partial run must not hide.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "gen/evolve.h"
#include "obs/stage.h"

namespace mum::run {

enum class CycleOutcome : std::uint8_t {
  kOk = 0,          // computed this run
  kFromCheckpoint,  // restored from a checkpoint file (--resume)
  kFailed,          // the worker threw; report slot is an empty placeholder
  kSkipped,         // not attempted (failure budget exhausted / fail-fast)
  kFromData,        // recomputed from persisted data shards (--resume with
                    // checkpoint_data and no report checkpoint)
};
const char* to_cstring(CycleOutcome outcome) noexcept;

struct CycleStatus {
  int cycle = 0;
  CycleOutcome outcome = CycleOutcome::kOk;
  std::string error;        // what() of the failure, empty otherwise
  chaos::ChaosStats chaos;  // faults injected into this cycle's data
  // Operational timing, never an input to the science: wall-clock of the
  // whole cycle and its per-stage breakdown. Stages overlap (SPF runs
  // inside generation), so stages.total() does not equal duration_ns.
  std::uint64_t duration_ns = 0;
  obs::StageTimings stages;
  // Delta-evolution accounting for this cycle's generation (delta.cycle < 0
  // when the cycle was not generated through a DeltaEvolver).
  gen::CycleDeltaStats delta;
};

struct RunManifest {
  int first_cycle = 0;
  int last_cycle = 0;
  unsigned threads = 1;
  // Whether generation evolved a standing world cycle-to-cycle (--evolve on)
  // instead of rebuilding each cycle from scratch.
  bool evolve = false;
  std::vector<CycleStatus> cycles;  // one per cycle, in cycle order
  bool failure_budget_exceeded = false;
  // End-of-run operational record: total wall-clock of the contained run
  // and the process's peak resident set when it finished.
  std::uint64_t wall_ns = 0;
  std::uint64_t peak_rss_bytes = 0;

  std::size_t count(CycleOutcome outcome) const noexcept;
  // All cycles either computed or restored: the report is trustworthy
  // end to end.
  bool complete() const noexcept {
    return count(CycleOutcome::kFailed) == 0 &&
           count(CycleOutcome::kSkipped) == 0;
  }
  // Total chaos faults injected across all cycles.
  chaos::ChaosStats chaos_total() const noexcept;

  std::string to_json() const;
};

}  // namespace mum::run
