// Per-cycle checkpoints: a complete binary round-trip of lpr::CycleReport.
//
// A checkpointed campaign writes one file per finished cycle; a killed run
// restarted with resume skips those cycles and splices the stored reports
// back in. Because the serialization covers every CycleReport field, the
// resumed run's final report is byte-identical to an uninterrupted one.
//
// Crash-proofing: files are written to a temp name and renamed into place
// (a kill mid-write leaves no half-file under the checkpoint name), and the
// payload carries an FNV-1a checksum — a corrupt or truncated checkpoint
// fails to load and the cycle is simply recomputed.
//
// Besides report checkpoints, a campaign can persist the raw month data as
// per-snapshot shards ("cycle_<N+1>_s<K>.mumw|.mump", one warts-lite
// container each — v2 stream or v3 pack per RunnerConfig::snapshot_format).
// Resume re-ingests whatever formats it finds, sniffing each shard's magic,
// so mixed-format checkpoint directories splice cleanly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/report.h"
#include "dataset/trace.h"

namespace mum::run {

std::string serialize_cycle_report(const lpr::CycleReport& report);
// nullopt on bad magic/version/truncation/checksum mismatch.
std::optional<lpr::CycleReport> parse_cycle_report(const std::string& bytes);

// Filename (not path) of cycle N's checkpoint: "cycle_<N+1>.mumc".
std::string checkpoint_filename(int cycle);

// Atomic write (temp + rename), through util::io::env so failpoints apply.
// Returns false on any I/O failure; callers must not ignore it — the runner
// logs, counts (run.checkpoint.write_failures) and records it per cycle.
bool write_checkpoint_file(const std::string& dir, int cycle,
                           const lpr::CycleReport& report);

// How a checkpoint load resolved — the supervision layer treats these very
// differently: kMissing/kIoError recompute quietly, kCorrupt quarantines
// the file first (evidence, not litter).
enum class LoadStatus : std::uint8_t {
  kOk = 0,
  kMissing,  // no file under the checkpoint name
  kCorrupt,  // bytes present but bad magic/version/truncation/checksum
  kIoError,  // the read itself failed (real or injected EIO)
};

// nullopt when missing, unreadable, or corrupt — callers recompute. The
// optional out-param distinguishes why (quarantine policy needs it).
std::optional<lpr::CycleReport> load_checkpoint_file(
    const std::string& dir, int cycle, LoadStatus* status = nullptr);

// --- data shards --------------------------------------------------------

// Filename (not path) of cycle N / snapshot K's data shard:
// "cycle_<N+1>_s<K>.mumw" for format 2 (stream), ".mump" for format 3 (pack).
std::string data_shard_filename(int cycle, std::size_t sub,
                                std::uint8_t format);

// Atomic write (temp + rename) of one snapshot in the given format (2 or 3).
bool write_data_shard(const std::string& dir, int cycle, std::size_t sub,
                      const dataset::Snapshot& snapshot, std::uint8_t format);

// Paths of cycle N's existing shards in sub order, either extension per sub
// (stream preferred when both exist). Stops at the first missing sub index,
// so a partially written cycle yields only its contiguous prefix.
std::vector<std::string> find_data_shards(const std::string& dir, int cycle);

}  // namespace mum::run
