// Per-cycle checkpoints: a complete binary round-trip of lpr::CycleReport.
//
// A checkpointed campaign writes one file per finished cycle; a killed run
// restarted with resume skips those cycles and splices the stored reports
// back in. Because the serialization covers every CycleReport field, the
// resumed run's final report is byte-identical to an uninterrupted one.
//
// Crash-proofing: files are written to a temp name and renamed into place
// (a kill mid-write leaves no half-file under the checkpoint name), and the
// payload carries an FNV-1a checksum — a corrupt or truncated checkpoint
// fails to load and the cycle is simply recomputed.
#pragma once

#include <optional>
#include <string>

#include "core/report.h"

namespace mum::run {

std::string serialize_cycle_report(const lpr::CycleReport& report);
// nullopt on bad magic/version/truncation/checksum mismatch.
std::optional<lpr::CycleReport> parse_cycle_report(const std::string& bytes);

// Filename (not path) of cycle N's checkpoint: "cycle_<N+1>.mumc".
std::string checkpoint_filename(int cycle);

// Atomic write (temp + rename). Returns false on any I/O failure.
bool write_checkpoint_file(const std::string& dir, int cycle,
                           const lpr::CycleReport& report);
// nullopt when missing, unreadable, or corrupt — callers recompute.
std::optional<lpr::CycleReport> load_checkpoint_file(const std::string& dir,
                                                     int cycle);

}  // namespace mum::run
