#include "run/runner.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "dataset/pack.h"
#include "dataset/snapshot_source.h"
#include "dataset/warts_lite.h"
#include "obs/log.h"
#include "obs/stage.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "run/checkpoint.h"
#include "util/io.h"
#include "util/rng.h"

namespace mum::run {

namespace {

std::unique_ptr<util::ThreadPool> make_pool(int threads_config) {
  const unsigned threads =
      threads_config <= 0 ? util::hardware_threads()
                          : static_cast<unsigned>(threads_config);
  return threads > 1 ? std::make_unique<util::ThreadPool>(threads) : nullptr;
}

// One progress line per year at info, every cycle at debug — the strings
// only materialize when the level is enabled.
void log_cycle_progress(int cycle, const char* outcome) {
  const bool yearly = (cycle + 1) % 12 == 0;
  const obs::LogLevel level =
      yearly ? obs::LogLevel::kInfo : obs::LogLevel::kDebug;
  if (!obs::log_enabled(level)) return;
  std::string line = "  ... processed cycle " + std::to_string(cycle + 1) +
                     " (" + gen::cycle_date(cycle) + ")";
  if (outcome != nullptr) line += std::string(" [") + outcome + "]";
  obs::log(level, line);
}

}  // namespace

Runner::Runner(const RunnerConfig& config)
    : config_(config),
      pool_(make_pool(config.threads)),
      internet_(config.gen, pool_.get()),
      ip2as_(internet_.build_ip2as()) {}

Runner::~Runner() = default;

unsigned Runner::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

gen::CampaignConfig Runner::campaign_for(int cycle) const {
  gen::CampaignConfig campaign = config_.campaign;
  const auto dip = config_.fleet_share_by_cycle.find(cycle);
  if (dip != config_.fleet_share_by_cycle.end()) {
    campaign.monitor_share *= dip->second;
  }
  return campaign;
}

dataset::MonthData Runner::month_data(int cycle) const {
  return month_data(cycle, nullptr);
}

dataset::MonthData Runner::month_data(int cycle,
                                      gen::DeltaEvolver* evolver) const {
  gen::CampaignRunner campaign(internet_, ip2as_, campaign_for(cycle),
                               pool_.get());
  return evolver != nullptr ? campaign.month(*evolver, cycle)
                            : campaign.month(cycle);
}

lpr::CycleReport Runner::run_cycle(int cycle) const {
  return run_cycle_chaos(cycle, nullptr);
}

dataset::MonthData Runner::prepare_month(int cycle,
                                         chaos::Corruptor* corruptor,
                                         dataset::DecodeDiagnostics* decode,
                                         gen::DeltaEvolver* evolver) const {
  dataset::MonthData month = [&] {
    const obs::StageSpan span(obs::Stage::kGenerate, cycle);
    return month_data(cycle, evolver);
  }();
  if (corruptor != nullptr) {
    // Chaos wire round-trips run the real ingest path — that time is
    // ingest, not generation.
    const obs::StageSpan span(obs::Stage::kIngest, cycle);
    for (std::size_t sub = 0; sub < month.snapshots.size(); ++sub) {
      dataset::Snapshot& snapshot = month.snapshots[sub];
      if (corruptor->config().flip_byte > 0) {
        // Wire faults exercise the real ingest path: serialize (in the
        // configured container format), flip bits, tolerant-decode, keep
        // whatever the decoder salvaged.
        std::string bytes = config_.snapshot_format >= dataset::kPackVersion
                                ? dataset::serialize_pack(snapshot)
                                : dataset::serialize_snapshot(snapshot);
        corruptor->corrupt_bytes(
            bytes,
            util::hash_combine(static_cast<std::uint64_t>(cycle), sub));
        dataset::DecodeDiagnostics diag;
        auto salvaged = dataset::decode_snapshot(
            bytes, dataset::DecodeOptions{.tolerant = true}, &diag);
        if (decode != nullptr) decode->merge(diag);
        if (salvaged) {
          // The runner knows which cycle it is processing; a flipped header
          // field must not relabel the snapshot (or derail the structural
          // fault keying below).
          salvaged->cycle_id = snapshot.cycle_id;
          salvaged->sub_index = snapshot.sub_index;
          salvaged->date = snapshot.date;
          // Serialization carries no ip2as annotations: re-annotate the
          // survivors before the pipeline consumes them.
          ip2as_.annotate(salvaged->traces);
          snapshot = std::move(*salvaged);
        } else {
          snapshot.traces.clear();  // container unreadable: total loss
        }
      }
      corruptor->corrupt(snapshot);
    }
  }
  return month;
}

lpr::CycleReport Runner::run_cycle_chaos(int cycle,
                                         chaos::Corruptor* corruptor,
                                         gen::DeltaEvolver* evolver) const {
  dataset::DecodeDiagnostics decode;
  const dataset::MonthData month =
      prepare_month(cycle, corruptor, &decode, evolver);
  // Stage boundary: a deadline can fire on compute-only cycles here (no-op
  // outside a CycleScope, so run_all and the benches never pay for it).
  util::io::check_deadline();
  const obs::StageSpan span(obs::Stage::kClassify, cycle);
  lpr::CycleReport report =
      lpr::run_pipeline(month, ip2as_, config_.pipeline, pool_.get());
  report.decode = std::move(decode);
  util::io::check_deadline();
  return report;
}

void Runner::quarantine_file(const std::string& path,
                             const std::string& reason,
                             CycleStatus& status) const {
  static obs::Counter& quarantined =
      obs::registry().counter("run.quarantined");
  namespace fs = std::filesystem;
  util::io::IoEnv& env = util::io::env();
  const std::string name = fs::path(path).filename().string();
  const std::string qdir =
      (fs::path(config_.checkpoint_dir) / "quarantine").string();
  // The move itself goes through the failpoints; if it fails the file stays
  // put, but the manifest records the verdict either way.
  env.create_dirs(qdir);
  env.rename_file(path, (fs::path(qdir) / name).string());
  status.quarantined.push_back(QuarantineRecord{name, reason});
  quarantined.inc();
  obs::log_warn("  ! quarantined " + name + ": " + reason);
  if (obs::TraceLog* t = obs::trace()) {
    t->mark("quarantine", status.cycle, name + ": " + reason);
  }
}

std::optional<lpr::CycleReport> Runner::run_cycle_from_data(
    int cycle, CycleStatus* status) const {
  const auto paths = find_data_shards(config_.checkpoint_dir, cycle);
  if (paths.empty()) return std::nullopt;
  // Crash consistency: shards persist one at a time, so a kill mid-cycle
  // leaves a contiguous prefix. Re-ingesting fewer snapshots than the
  // campaign generates would compute a *wrong* report from real-looking
  // data — regenerate instead.
  const std::size_t expected =
      static_cast<std::size_t>(config_.campaign.extra_snapshots) + 1;
  if (paths.size() < expected) {
    obs::log_debug("  incomplete shard set for cycle " +
                   std::to_string(cycle + 1) + " (" +
                   std::to_string(paths.size()) + "/" +
                   std::to_string(expected) + "), regenerating");
    return std::nullopt;
  }
  // Strict decode: these shards were written by a previous run; damage
  // means the cycle should be regenerated, not silently thinned.
  const auto source = dataset::make_file_source(
      paths, dataset::DecodeOptions{}, pool_.get());
  dataset::MonthData month;
  month.cycle_id = static_cast<std::uint32_t>(cycle);
  month.date = gen::cycle_date(cycle);
  {
    const obs::StageSpan span(obs::Stage::kIngest, cycle);
    while (auto snapshot = source->next()) {
      // Annotations are not persisted in either container format.
      ip2as_.annotate(snapshot->traces);
      month.snapshots.push_back(std::move(*snapshot));
    }
  }
  if (source->failed() || month.snapshots.empty()) {
    // A shard whose *bytes* are bad is evidence of torn persistence —
    // quarantine it so the recompute can write a fresh one. An unreadable
    // shard proves nothing about the bytes; leave it alone.
    if (status != nullptr &&
        source->error_kind() == dataset::SourceErrorKind::kUndecodable) {
      quarantine_file(source->last_path(), "undecodable shard", *status);
    }
    return std::nullopt;
  }
  util::io::check_deadline();
  const obs::StageSpan span(obs::Stage::kClassify, cycle);
  lpr::CycleReport report =
      lpr::run_pipeline(month, ip2as_, config_.pipeline, pool_.get());
  report.decode = source->diagnostics();
  return report;
}

lpr::LongitudinalReport Runner::run_all() const {
  const int first = config_.first_cycle;
  const int last = config_.last_cycle;
  const std::size_t n =
      last >= first ? static_cast<std::size_t>(last - first + 1) : 0;

  lpr::LongitudinalReport report;
  report.cycles.resize(n);
  const auto run_one = [&](std::size_t i, gen::DeltaEvolver* evolver) {
    const int cycle = first + static_cast<int>(i);
    const std::uint64_t t0 = obs::monotonic_ns();
    report.cycles[i] = run_cycle_chaos(cycle, nullptr, evolver);
    if (obs::TraceLog* t = obs::trace()) {
      t->span("cycle", cycle, t0, obs::monotonic_ns() - t0);
    }
    log_cycle_progress(cycle, nullptr);
  };
  if (config_.evolve) {
    // Delta evolution: cycles advance one standing world in order; inner
    // stages (monitor fan-out, SPF, classification) still use the pool.
    gen::DeltaEvolver evolver(internet_, pool_.get());
    for (std::size_t i = 0; i < n; ++i) run_one(i, &evolver);
  } else {
    // Each cycle fills its own slot; inner generation/classification runs
    // inline on the worker (nested parallel_for detects the region), so the
    // pool is never oversubscribed.
    util::parallel_for(pool_.get(), n,
                       [&](std::size_t i) { run_one(i, nullptr); });
  }
  return report;
}

RunOutcome Runner::run_all_contained() const {
  static obs::Counter& write_failures =
      obs::registry().counter("run.checkpoint.write_failures");
  static obs::Counter& retries_counter = obs::registry().counter("run.retries");
  static obs::Counter& timeouts_counter =
      obs::registry().counter("run.timeouts");
  namespace fs = std::filesystem;

  const std::uint64_t run_t0 = obs::monotonic_ns();
  const int first = config_.first_cycle;
  const int last = config_.last_cycle;
  const std::size_t n =
      last >= first ? static_cast<std::size_t>(last - first + 1) : 0;

  RunOutcome out;
  out.report.cycles.resize(n);
  out.manifest.first_cycle = first;
  out.manifest.last_cycle = last;
  out.manifest.threads = threads();
  out.manifest.evolve = config_.evolve;
  out.manifest.cycles.resize(n);

  const bool data_chaos =
      config_.chaos.any_structural() || config_.chaos.flip_byte > 0;
  const bool checkpoints = !config_.checkpoint_dir.empty();

  // Install the run's failpoint plan (if io faults are configured). Tests
  // may have installed an ambient plan instead — either way, the active
  // plan's count delta over this run lands in the manifest.
  std::unique_ptr<util::io::FailpointPlan> plan;
  std::optional<util::io::ScopedFailpoints> scoped_plan;
  if (config_.chaos.io.any()) {
    plan = std::make_unique<util::io::FailpointPlan>(config_.chaos.io,
                                                     config_.chaos.seed);
    scoped_plan.emplace(plan.get());
  }
  util::io::FailpointPlan* active = util::io::failpoints();
  const util::io::FaultCounts counts_before =
      active != nullptr ? active->counts() : util::io::FaultCounts{};

  std::atomic<bool> abort{false};
  std::atomic<bool> budget_exceeded{false};
  std::atomic<int> failures{0};
  // ENOSPC degradation: after `enospc_degrade_threshold` consecutive
  // disk-full write failures the run stops persisting (checkpoints AND
  // shards) but keeps computing — the report completes, the manifest and
  // exit code say persistence was dropped.
  std::atomic<int> enospc_streak{0};
  std::atomic<bool> degraded{false};

  const auto run_one = [&](std::size_t i, gen::DeltaEvolver* evolver) {
    const int cycle = first + static_cast<int>(i);
    CycleStatus& status = out.manifest.cycles[i];
    status.cycle = cycle;
    lpr::CycleReport& slot = out.report.cycles[i];
    // Deterministic placeholder: a failed or skipped cycle keeps its
    // identity in the report, with zero counts.
    slot.cycle_id = static_cast<std::uint32_t>(cycle);
    slot.date = gen::cycle_date(cycle);
    const auto reset_slot = [&] {
      slot = lpr::CycleReport{};
      slot.cycle_id = static_cast<std::uint32_t>(cycle);
      slot.date = gen::cycle_date(cycle);
    };

    // One persistence attempt set: op-level retry for transient failures
    // (each retry draws fresh fault ordinals), no retry on disk-full, and
    // the ENOSPC streak feeds the degradation tripwire. Returns true when
    // the bytes landed.
    const auto supervised_write = [&](const auto& write) -> bool {
      if (degraded.load(std::memory_order_acquire)) return false;
      for (int t = 0;; ++t) {
        if (write()) {
          enospc_streak.store(0, std::memory_order_relaxed);
          return true;
        }
        if (util::io::env().last_error() == util::io::Error::kEnospc) {
          const int streak =
              enospc_streak.fetch_add(1, std::memory_order_acq_rel) + 1;
          if (streak >= config_.enospc_degrade_threshold &&
              !degraded.exchange(true, std::memory_order_acq_rel)) {
            obs::log_warn(
                "  ! persistent ENOSPC: dropping checkpoint persistence, "
                "continuing compute-only");
            if (obs::TraceLog* t = obs::trace()) {
              t->mark("degraded", cycle, "persistent enospc");
            }
          }
          break;  // disk-full does not retry
        }
        if (t >= config_.retries) break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::uint64_t{config_.retry_backoff_ms} *
                                      static_cast<std::uint64_t>(t + 1)));
      }
      ++status.checkpoint_write_failures;
      write_failures.inc();
      obs::log_warn("  ! checkpoint write failed for cycle " +
                    std::to_string(cycle + 1) + " (" +
                    util::io::to_cstring(util::io::env().last_error()) + ")");
      return false;
    };
    const auto persist_checkpoint = [&] {
      if (!checkpoints) return;
      const obs::StageSpan span(obs::Stage::kReport, cycle);
      supervised_write([&] {
        return write_checkpoint_file(config_.checkpoint_dir, cycle, slot);
      });
    };

    // The cycle's whole body runs inline on this worker (nested parallel
    // regions detect they're in-pool), so a scoped thread-local accumulator
    // attributes every inner stage to this cycle at any thread count.
    const std::uint64_t cycle_t0 = obs::monotonic_ns();
    const auto process = [&] {
      if (abort.load(std::memory_order_acquire)) {
        status.outcome = CycleOutcome::kSkipped;
        return;
      }

      if (config_.resume && checkpoints) {
        LoadStatus load_status = LoadStatus::kMissing;
        if (auto restored = load_checkpoint_file(config_.checkpoint_dir,
                                                 cycle, &load_status)) {
          slot = std::move(*restored);
          status.outcome = CycleOutcome::kFromCheckpoint;
          return;
        }
        if (load_status == LoadStatus::kCorrupt) {
          // Bad bytes under the checkpoint name: move them aside as
          // evidence (never deleted) and recompute into a fresh file.
          quarantine_file((fs::path(config_.checkpoint_dir) /
                           checkpoint_filename(cycle))
                              .string(),
                          "corrupt checkpoint", status);
        }
        // No (or stale) report checkpoint: a cycle with persisted data
        // shards re-ingests them — cheaper than regenerating, and identical
        // for clean runs. Failing that, recompute below.
        if (config_.checkpoint_data) {
          if (auto from_data = run_cycle_from_data(cycle, &status)) {
            slot = std::move(*from_data);
            status.outcome = CycleOutcome::kFromData;
            persist_checkpoint();
            return;
          }
        }
      }

      chaos::Corruptor corruptor(config_.chaos);
      try {
        if (corruptor.should_fail_cycle(cycle)) {
          throw chaos::ChaosError("injected failure in cycle " +
                                  std::to_string(cycle + 1));
        }
        if (checkpoints && config_.checkpoint_data) {
          // Keep the month in hand so its snapshots can be persisted; the
          // shards carry the post-chaos data (what the pipeline saw).
          dataset::DecodeDiagnostics decode;
          const dataset::MonthData month = prepare_month(
              cycle, data_chaos ? &corruptor : nullptr, &decode, evolver);
          util::io::check_deadline();
          {
            const obs::StageSpan span(obs::Stage::kReport, cycle);
            for (std::size_t sub = 0; sub < month.snapshots.size(); ++sub) {
              supervised_write([&] {
                return write_data_shard(config_.checkpoint_dir, cycle, sub,
                                        month.snapshots[sub],
                                        config_.snapshot_format);
              });
            }
          }
          {
            const obs::StageSpan span(obs::Stage::kClassify, cycle);
            slot = lpr::run_pipeline(month, ip2as_, config_.pipeline,
                                     pool_.get());
          }
          slot.decode = std::move(decode);
          util::io::check_deadline();
        } else {
          slot = run_cycle_chaos(cycle, data_chaos ? &corruptor : nullptr,
                                 evolver);
        }
        status.outcome = CycleOutcome::kOk;
        if (evolver != nullptr) status.delta = evolver->last_stats();
        persist_checkpoint();
      } catch (...) {
        status.chaos = corruptor.stats();
        throw;
      }
      status.chaos = corruptor.stats();
    };

    const auto note_failure = [&] {
      const int failed = failures.fetch_add(1, std::memory_order_acq_rel) + 1;
      const bool over_budget =
          config_.failure_budget >= 0 && failed > config_.failure_budget;
      if (over_budget) {
        budget_exceeded.store(true, std::memory_order_release);
      }
      if (!config_.keep_going || over_budget) {
        abort.store(true, std::memory_order_release);
      }
    };

    {
      const obs::StageScope scope(&status.stages);
      // Bounded retry with deterministic backoff. The attempt number keys
      // the io fault draws (via the CycleScope), so a transiently hostile
      // environment rolls new dice each attempt; data chaos and compute
      // are keyed by (seed, cycle) alone and replay identically — retries
      // can never change the bytes of a successful cycle's report.
      int attempt = 0;
      for (;;) {
        try {
          const util::io::CycleScope cycle_scope(cycle, attempt,
                                                 config_.cycle_deadline_ms);
          process();
          break;
        } catch (const util::io::DeadlineExceeded& e) {
          // Not retried: the deadline measures the environment + workload,
          // and a second attempt would hit the same wall while doubling
          // the cycle's cost.
          status.outcome = CycleOutcome::kTimedOut;
          status.error = e.what();
          reset_slot();
          timeouts_counter.inc();
          obs::log_warn("  ! cycle " + std::to_string(cycle + 1) +
                        " timed out: " + e.what());
          if (obs::TraceLog* t = obs::trace()) {
            t->mark("cycle_timeout", cycle, e.what());
          }
          note_failure();
          break;
        } catch (const std::exception& e) {
          reset_slot();
          if (attempt < config_.retries &&
              !abort.load(std::memory_order_acquire)) {
            ++attempt;
            retries_counter.inc();
            obs::log_warn("  ! cycle " + std::to_string(cycle + 1) +
                          " attempt " + std::to_string(attempt) +
                          " retrying: " + e.what());
            if (obs::TraceLog* t = obs::trace()) {
              t->mark("cycle_retry", cycle, e.what());
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::uint64_t{config_.retry_backoff_ms} *
                static_cast<std::uint64_t>(attempt)));
            continue;
          }
          status.outcome = CycleOutcome::kFailed;
          status.error = e.what();
          note_failure();
          break;
        }
      }
      status.attempts = attempt + 1;
    }
    status.duration_ns = obs::monotonic_ns() - cycle_t0;
    chaos::publish(status.chaos);

    if (obs::TraceLog* t = obs::trace()) {
      t->span("cycle", cycle, cycle_t0, status.duration_ns);
      if (status.outcome == CycleOutcome::kFailed) {
        t->mark("cycle_failed", cycle, status.error);
      } else if (status.outcome == CycleOutcome::kSkipped) {
        t->mark("cycle_skipped", cycle);
      }
    }
    if (status.outcome != CycleOutcome::kSkipped) {
      log_cycle_progress(cycle, to_cstring(status.outcome));
    }
  };

  if (config_.evolve) {
    // Delta evolution runs the cycle loop serially against one standing
    // world; checkpoint-restored cycles skip generation entirely and the
    // evolver jumps the gap when the next computed cycle asks for it.
    gen::DeltaEvolver evolver(internet_, pool_.get());
    for (std::size_t i = 0; i < n; ++i) run_one(i, &evolver);
  } else {
    util::parallel_for(pool_.get(), n,
                       [&](std::size_t i) { run_one(i, nullptr); });
  }

  out.manifest.failure_budget_exceeded =
      budget_exceeded.load(std::memory_order_acquire);
  if (degraded.load(std::memory_order_acquire)) {
    out.manifest.checkpoints_degraded = true;
    out.manifest.degraded_reason =
        "persistent enospc: checkpoint persistence dropped";
  }
  if (active != nullptr) {
    const util::io::FaultCounts counts_after = active->counts();
    out.manifest.io.ops = counts_after.ops - counts_before.ops;
    for (std::size_t f = 0; f < util::io::kFaultClassCount; ++f) {
      out.manifest.io.injected[f] =
          counts_after.injected[f] - counts_before.injected[f];
    }
    chaos::publish_io(out.manifest.io);
  }
  out.manifest.wall_ns = obs::monotonic_ns() - run_t0;
  out.manifest.peak_rss_bytes = obs::peak_rss_bytes();
  return out;
}

}  // namespace mum::run
