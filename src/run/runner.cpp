#include "run/runner.h"

#include <mutex>
#include <ostream>

namespace mum::run {

namespace {

std::unique_ptr<util::ThreadPool> make_pool(int threads_config) {
  const unsigned threads =
      threads_config <= 0 ? util::hardware_threads()
                          : static_cast<unsigned>(threads_config);
  return threads > 1 ? std::make_unique<util::ThreadPool>(threads) : nullptr;
}

}  // namespace

Runner::Runner(const RunnerConfig& config)
    : config_(config),
      pool_(make_pool(config.threads)),
      internet_(config.gen, pool_.get()),
      ip2as_(internet_.build_ip2as()) {}

Runner::~Runner() = default;

unsigned Runner::threads() const noexcept {
  return pool_ ? pool_->size() : 1;
}

gen::CampaignConfig Runner::campaign_for(int cycle) const {
  gen::CampaignConfig campaign = config_.campaign;
  const auto dip = config_.fleet_share_by_cycle.find(cycle);
  if (dip != config_.fleet_share_by_cycle.end()) {
    campaign.monitor_share *= dip->second;
  }
  return campaign;
}

dataset::MonthData Runner::month_data(int cycle) const {
  return gen::CampaignRunner(internet_, ip2as_, campaign_for(cycle),
                             pool_.get())
      .month(cycle);
}

lpr::CycleReport Runner::run_cycle(int cycle) const {
  return lpr::run_pipeline(month_data(cycle), ip2as_, config_.pipeline,
                           pool_.get());
}

lpr::LongitudinalReport Runner::run_all(std::ostream* progress) const {
  const int first = config_.first_cycle;
  const int last = config_.last_cycle;
  const std::size_t n =
      last >= first ? static_cast<std::size_t>(last - first + 1) : 0;

  lpr::LongitudinalReport report;
  report.cycles.resize(n);
  std::mutex progress_mutex;
  // Each cycle fills its own slot; inner generation/classification runs
  // inline on the worker (nested parallel_for detects the region), so the
  // pool is never oversubscribed.
  util::parallel_for(pool_.get(), n, [&](std::size_t i) {
    const int cycle = first + static_cast<int>(i);
    report.cycles[i] = run_cycle(cycle);
    if (progress != nullptr && (cycle + 1) % 12 == 0) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      *progress << "  ... processed cycle " << cycle + 1 << " ("
                << gen::cycle_date(cycle) << ")\n";
    }
  });
  return report;
}

}  // namespace mum::run
