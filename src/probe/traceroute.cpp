#include "probe/traceroute.h"

namespace mum::probe {

std::uint64_t paris_flow_id(const Monitor& monitor, net::Ipv4Addr dst) {
  // Src/dst addresses and the (per-destination) UDP source port Paris
  // traceroute derives from them; collapsing to a hash keeps ECMP decisions
  // deterministic per (monitor, destination).
  return util::hash_combine(monitor.addr.value(),
                            util::mix64(dst.value()));
}

namespace {

// The observation model, shared verbatim between the legacy heap path and
// the batch path: one definition means one RNG draw sequence, which is what
// makes the two paths byte-identical by construction. The sink receives
// each emitted hop (labels == nullptr for anonymous or unquoted hops) and
// finally the reached flag.
template <class Sink>
void run_observation(net::Ipv4Addr dst, const TraceOptions& options,
                     util::Rng& rng, const WalkResult& walk, Sink&& sink) {
  double cumulative_ms = 0.0;
  int ttl = 0;
  int gap = 0;  // consecutive anonymous hops (scamper-style gap limit)
  for (const HopRecord& hop : walk.hops) {
    cumulative_ms += hop.latency_ms;
    if (!hop.ttl_visible) continue;  // hidden LSR (no ttl-propagate)
    if (++ttl > options.max_ttl) break;

    // Whether the router answers traceroute at all is a per-trace policy
    // draw; transient reply loss is retried up to `attempts` times.
    bool answers = rng.chance(hop.response_prob);
    if (answers) {
      bool delivered = false;
      for (int attempt = 0; attempt < std::max(1, options.attempts);
           ++attempt) {
        if (!rng.chance(options.reply_loss)) {
          delivered = true;
          break;
        }
      }
      answers = delivered;
    }
    if (answers) {
      gap = 0;
      const double rtt = 2.0 * cumulative_ms + rng.uniform01() * 0.4;
      const net::LabelStack* labels =
          (hop.rfc4950 && !hop.labels.empty()) ? &hop.labels : nullptr;
      sink.hop(hop.addr, rtt, labels);
    } else {
      sink.hop(net::kAnonymousAddr, 0.0, nullptr);
      if (++gap >= options.gap_limit) {
        sink.finish(false);  // give up: trace ends in stars
        return;
      }
    }
  }

  const bool reached = walk.reached && ttl < options.max_ttl;
  if (reached) {
    sink.hop(dst, 2.0 * (cumulative_ms + 1.0) + rng.uniform01() * 0.4,
             nullptr);
  }
  sink.finish(reached);
}

struct TraceSink {
  dataset::Trace& trace;
  void hop(net::Ipv4Addr addr, double rtt_ms, const net::LabelStack* labels) {
    dataset::TraceHop out;
    out.addr = addr;
    out.rtt_ms = rtt_ms;
    if (labels != nullptr) out.labels = *labels;
    trace.hops.push_back(std::move(out));
  }
  void finish(bool reached) { trace.reached = reached; }
};

struct BatchSink {
  dataset::TraceBatch& batch;
  void hop(net::Ipv4Addr addr, double rtt_ms, const net::LabelStack* labels) {
    batch.add_hop(addr, rtt_ms);
    if (labels != nullptr) {
      for (const auto& lse : labels->entries()) batch.add_label(lse.encode());
    }
  }
  void finish(bool reached) { batch.end_trace(reached); }
};

}  // namespace

dataset::Trace observe_walk(const Monitor& monitor, net::Ipv4Addr dst,
                            const TraceOptions& options, util::Rng& rng,
                            const WalkResult& walk) {
  dataset::Trace trace;
  trace.monitor_id = monitor.id;
  trace.src = monitor.addr;
  trace.dst = dst;
  run_observation(dst, options, rng, walk, TraceSink{trace});
  return trace;
}

void observe_walk_into(const Monitor& monitor, net::Ipv4Addr dst,
                       const TraceOptions& options, util::Rng& rng,
                       const WalkResult& walk, dataset::TraceBatch& out) {
  out.begin_trace(monitor.id, monitor.addr, dst);
  run_observation(dst, options, rng, walk, BatchSink{out});
}

dataset::Trace trace_route(const Monitor& monitor, const PathSpec& path,
                           const TraceOptions& options, util::Rng& rng) {
  const WalkResult walk = walk_path(path, paris_flow_id(monitor, path.dst));
  return observe_walk(monitor, path.dst, options, rng, walk);
}

void trace_route_into(const Monitor& monitor, const PathSpec& path,
                      const TraceOptions& options, util::Rng& rng,
                      dataset::TraceBatch& out, WalkResult* scratch) {
  if (scratch != nullptr) {
    walk_path(path, paris_flow_id(monitor, path.dst), *scratch);
    observe_walk_into(monitor, path.dst, options, rng, *scratch, out);
  } else {
    const WalkResult walk =
        walk_path(path, paris_flow_id(monitor, path.dst));
    observe_walk_into(monitor, path.dst, options, rng, walk, out);
  }
}

}  // namespace mum::probe
