#include "probe/traceroute.h"

namespace mum::probe {

std::uint64_t paris_flow_id(const Monitor& monitor, net::Ipv4Addr dst) {
  // Src/dst addresses and the (per-destination) UDP source port Paris
  // traceroute derives from them; collapsing to a hash keeps ECMP decisions
  // deterministic per (monitor, destination).
  return util::hash_combine(monitor.addr.value(),
                            util::mix64(dst.value()));
}

dataset::Trace trace_route(const Monitor& monitor, const PathSpec& path,
                           const TraceOptions& options, util::Rng& rng) {
  dataset::Trace trace;
  trace.monitor_id = monitor.id;
  trace.src = monitor.addr;
  trace.dst = path.dst;

  const WalkResult walk = walk_path(path, paris_flow_id(monitor, path.dst));

  double cumulative_ms = 0.0;
  int ttl = 0;
  int gap = 0;  // consecutive anonymous hops (scamper-style gap limit)
  for (const HopRecord& hop : walk.hops) {
    cumulative_ms += hop.latency_ms;
    if (!hop.ttl_visible) continue;  // hidden LSR (no ttl-propagate)
    if (++ttl > options.max_ttl) break;

    dataset::TraceHop out;
    // Whether the router answers traceroute at all is a per-trace policy
    // draw; transient reply loss is retried up to `attempts` times.
    bool answers = rng.chance(hop.response_prob);
    if (answers) {
      bool delivered = false;
      for (int attempt = 0; attempt < std::max(1, options.attempts);
           ++attempt) {
        if (!rng.chance(options.reply_loss)) {
          delivered = true;
          break;
        }
      }
      answers = delivered;
    }
    if (answers) {
      gap = 0;
      out.addr = hop.addr;
      out.rtt_ms = 2.0 * cumulative_ms + rng.uniform01() * 0.4;
      if (hop.rfc4950 && !hop.labels.empty()) out.labels = hop.labels;
    } else if (++gap >= options.gap_limit) {
      trace.hops.push_back(std::move(out));
      return trace;  // give up: reached=false, trace ends in stars
    }
    trace.hops.push_back(std::move(out));
  }

  if (walk.reached && ttl < options.max_ttl) {
    dataset::TraceHop final_hop;
    final_hop.addr = path.dst;
    final_hop.rtt_ms = 2.0 * (cumulative_ms + 1.0) + rng.uniform01() * 0.4;
    trace.hops.push_back(std::move(final_hop));
    trace.reached = true;
  }
  return trace;
}

}  // namespace mum::probe
