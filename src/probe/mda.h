// Multipath discovery (MDA-lite): enumerate the IP-level paths a
// destination's traffic can take by re-probing with many Paris flow
// identifiers — the active counterpart to LPR's passive inference.
//
// The paper's Sec.-5 validation plan rests on two predictions that this
// module lets us test end-to-end:
//  * Mono-FEC (ECMP under LDP) tunnels ARE visible as IP-level multipath:
//    varying the flow id reveals several interface sequences;
//  * Multi-FEC (RSVP-TE) tunnels are NOT: each FEC pins one explicit route,
//    so flow-id variation inside one destination prefix changes nothing.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "probe/forwarder.h"

namespace mum::probe {

struct MdaResult {
  // Distinct full interface sequences discovered (labels ignored).
  std::set<std::vector<net::Ipv4Addr>> ip_paths;
  // Distinct (interface, top-label) sequences (what LPR would see).
  std::set<std::vector<std::pair<net::Ipv4Addr, std::uint32_t>>>
      labeled_paths;
  int flows_probed = 0;

  std::size_t ip_path_count() const noexcept { return ip_paths.size(); }
  bool ip_multipath() const noexcept { return ip_paths.size() > 1; }
};

// Probe `path` with `flows` different Paris flow identifiers derived from
// `base_flow` and collect the distinct forwarding outcomes. Deterministic:
// no observation noise is applied (MDA campaigns retransmit until answered).
MdaResult discover_multipath(const PathSpec& path, std::uint64_t base_flow,
                             int flows);

}  // namespace mum::probe
