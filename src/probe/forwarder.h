// Forwarding-plane simulation: walks a probe packet across a multi-AS path,
// applying per-AS MPLS behaviour (LDP LSP-trees over IGP ECMP, RSVP-TE
// explicit LSPs, PHP, ttl-propagate) and recording what each traversed
// router *would reveal* to traceroute.
//
// The walk is deterministic given (path, flow hash): ECMP choices hash the
// flow id with a per-router salt, modelling per-flow load balancing the way
// Paris traceroute assumes it works.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "igp/spf.h"
#include "mpls/ldp.h"
#include "mpls/rsvp.h"
#include "net/ipv4.h"
#include "net/lse.h"
#include "topo/topology.h"

namespace mum::probe {

// Per-destination FEC policy of a TE-enabled AS: which of the LER pair's TE
// LSPs carries a given destination prefix. Destination-based FECs are the
// paper's baseline assumption (Sec. 5, first paragraph).
struct TePolicy {
  // (ingress, egress) -> LSP ids, in signalling order.
  std::map<std::pair<topo::RouterId, topo::RouterId>,
           std::vector<mpls::LspId>>
      pairs;
  // Fraction of destination prefixes steered into TE LSPs (the rest rides
  // LDP / plain IGP). Selection is deterministic per /24.
  double te_share = 1.0;
  std::uint64_t salt = 0;

  // LDP-over-RSVP: per ingress LER, TE "hub" tunnels into the core that LDP
  // traffic can ride (targeted LDP session to the tunnel tail). Traffic
  // inside such a tunnel carries a 2-entry stack: outer = the hub tunnel's
  // per-hop TE label, inner = the label the hub advertised for the egress
  // FEC. Selection is per <ingress, egress> pair (BGP-next-hop granularity)
  // so one IOTP never mixes tunnelled and untunnelled branches.
  std::map<topo::RouterId, std::vector<mpls::LspId>> hub_tunnels;
  double ldp_over_te_share = 0.0;
};

// Everything the forwarder needs to cross one AS.
struct AsDataPlane {
  std::uint32_t asn = 0;
  const topo::AsTopology* topo = nullptr;
  const igp::IgpState* igp = nullptr;
  const mpls::LdpPlane* ldp = nullptr;        // null => no LDP
  const mpls::RsvpTePlane* rsvp = nullptr;    // null => no RSVP-TE
  TePolicy te_policy;
  bool ttl_propagate = true;  // copy IP-TTL into the LSE-TTL at the ingress
  bool rfc4950 = true;        // quote label stacks in ICMP time-exceeded
  // Share of destination prefixes for which the ingress LER actually pushes
  // labels (MPLS deployment can be partial during ramp-ups, Fig. 16).
  double mpls_coverage = 1.0;
  std::uint64_t coverage_salt = 0;
  // Share of border routers enabled as ingress LERs (deployment breadth).
  double ler_share = 1.0;
  std::uint64_t ler_salt = 0;
  // Per-router ECMP hash salts. Perturbing a router's salt between snapshots
  // models an IGP reconvergence that re-maps flows to branches — the routing
  // noise the Persistence filter is designed to remove. Empty => asn is used.
  std::vector<std::uint64_t> ecmp_salts;

  std::uint64_t salt_for(topo::RouterId r) const noexcept {
    return r < ecmp_salts.size() ? ecmp_salts[r] : asn;
  }
};

// One AS to traverse: enter at `ingress` (revealing `entry_iface`), leave at
// `egress` toward the next segment.
struct SegmentSpec {
  const AsDataPlane* plane = nullptr;
  topo::RouterId ingress = topo::kInvalidRouter;
  topo::RouterId egress = topo::kInvalidRouter;
  net::Ipv4Addr entry_iface;  // address revealed on entering the AS
};

// A full monitor->destination path: synthetic plain-IP edge hops around the
// modelled transit segments.
struct PathSpec {
  std::vector<net::Ipv4Addr> pre_hops;   // source-side plain IP hops
  std::vector<SegmentSpec> segments;     // modelled ASes, in order
  std::vector<net::Ipv4Addr> post_hops;  // destination-side plain IP hops
  net::Ipv4Addr dst;
  bool dst_responds = true;
};

// What one traversed router would reveal.
struct HopRecord {
  net::Ipv4Addr addr;          // interface the packet entered through
  net::LabelStack labels;      // stack carried by the packet at arrival
  double response_prob = 1.0;  // router's probability of answering probes
  bool rfc4950 = true;         // does this router quote label stacks?
  bool ttl_visible = true;     // false => hidden (no ttl-propagate tunnels)
  double latency_ms = 0.5;     // one-way latency of the hop
};

struct WalkResult {
  std::vector<HopRecord> hops;  // routers in traversal order (visible or not)
  bool reached = false;         // destination replied
};

// Walk the path with a fixed flow hash. Never throws; malformed segments
// (unreachable egress) truncate the walk with reached=false.
WalkResult walk_path(const PathSpec& path, std::uint64_t flow_hash);

// Scratch-reusing form: clears and refills `out`, keeping its hop capacity.
// The per-trace hot path (traceroute/mda emit loops) reuses one WalkResult
// per worker so steady state performs no heap allocation here.
void walk_path(const PathSpec& path, std::uint64_t flow_hash,
               WalkResult& out);

// ECMP next-hop choice used by the walk (exposed for tests): deterministic
// in (flow, router, salt), uniform across next hops.
std::size_t ecmp_pick(std::uint64_t flow_hash, topo::RouterId router,
                      std::uint64_t salt, std::size_t n_choices);

// Whether the plane steers `dst` into a TE LSP of (ingress, egress); returns
// the chosen LSP id, or nullopt for LDP / plain forwarding.
std::optional<mpls::LspId> select_te_lsp(const AsDataPlane& plane,
                                         topo::RouterId ingress,
                                         topo::RouterId egress,
                                         net::Ipv4Addr dst);

// Whether the ingress LER pushes labels for `dst` at all (partial rollout).
bool mpls_applies(const AsDataPlane& plane, net::Ipv4Addr dst);

// Whether `router` is an MPLS-enabled ingress LER (partial LER rollout;
// the enabled set grows monotonically with AsDataPlane::ler_share).
bool ler_enabled(const AsDataPlane& plane, topo::RouterId router);

// LDP-over-RSVP hub tunnel the <ingress, egress> pair rides, if any.
std::optional<mpls::LspId> select_hub_tunnel(const AsDataPlane& plane,
                                             topo::RouterId ingress,
                                             topo::RouterId egress);

}  // namespace mum::probe
