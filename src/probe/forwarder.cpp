#include "probe/forwarder.h"

#include <span>

#include "util/rng.h"

namespace mum::probe {

namespace {

// /24 prefix key of an address (FEC granularity used throughout).
std::uint64_t slash24(net::Ipv4Addr addr) noexcept {
  return addr.value() >> 8;
}

double to01_local(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void append_plain_hop(WalkResult& out, net::Ipv4Addr addr, double latency) {
  HopRecord hop;
  hop.addr = addr;
  hop.latency_ms = latency;
  out.hops.push_back(std::move(hop));
}

// Walk one AS segment, appending the hops revealed inside it.
// Returns false when forwarding breaks (unreachable egress).
bool walk_segment(const SegmentSpec& seg, net::Ipv4Addr dst,
                  std::uint64_t flow_hash, WalkResult& out) {
  const AsDataPlane& plane = *seg.plane;
  const topo::AsTopology& topo = *plane.topo;
  const igp::IgpState& igp = *plane.igp;

  // Entry hop: the packet arrives from outside, unlabeled.
  {
    HopRecord hop;
    hop.addr = seg.entry_iface;
    hop.response_prob = topo.router(seg.ingress).response_prob;
    hop.rfc4950 = plane.rfc4950;
    hop.latency_ms = 1.0;
    out.hops.push_back(std::move(hop));
  }
  if (seg.ingress == seg.egress) return true;

  // Both tunnel ends must be MPLS-enabled: the ingress pushes the stack and
  // the egress loopback is the FEC anchor LDP distributes labels for.
  const bool use_mpls =
      (plane.ldp != nullptr || plane.rsvp != nullptr) &&
      ler_enabled(plane, seg.ingress) && ler_enabled(plane, seg.egress) &&
      mpls_applies(plane, dst);

  // --- RSVP-TE LSP ------------------------------------------------------
  if (use_mpls) {
    if (const auto lsp_id =
            select_te_lsp(plane, seg.ingress, seg.egress, dst)) {
      const mpls::TeLsp& lsp = plane.rsvp->lsp(*lsp_id);
      for (const mpls::TeHop& te_hop : lsp.active_hops()) {
        const topo::Link& link = topo.link(te_hop.in_link);
        HopRecord hop;
        hop.addr = link.iface_of(te_hop.router);
        hop.response_prob = topo.router(te_hop.router).response_prob;
        hop.rfc4950 = plane.rfc4950;
        hop.ttl_visible = plane.ttl_propagate;
        hop.latency_ms = link.latency_ms;
        if (te_hop.in_label != net::kLabelImplicitNull) {
          hop.labels.push(te_hop.in_label, /*tc=*/0, /*ttl=*/1);
        }
        // The egress LER is always TTL-visible: it forwards as plain IP.
        if (te_hop.router == lsp.egress) hop.ttl_visible = true;
        out.hops.push_back(std::move(hop));
      }
      return !lsp.active_hops().empty();
    }
  }

  // --- LDP LSP-tree over IGP ECMP / plain IGP ----------------------------
  const bool ldp_labels =
      use_mpls && plane.ldp != nullptr &&
      plane.ldp->label_of(seg.ingress, seg.egress) != mpls::LdpPlane::kNoLabel;

  topo::RouterId at = seg.ingress;

  // LDP-over-RSVP: the LDP LSP may first ride a TE hub tunnel into the
  // core. Hops inside the tunnel quote a 2-entry stack (outer TE label,
  // inner = the hub's LDP label for the egress FEC); the stack returns to
  // depth 1 at the hub, where plain LDP forwarding resumes.
  if (ldp_labels) {
    if (const auto hub_id =
            select_hub_tunnel(plane, seg.ingress, seg.egress)) {
      const mpls::TeLsp& tunnel = plane.rsvp->lsp(*hub_id);
      const topo::RouterId hub = tunnel.egress;
      const std::uint32_t inner = plane.ldp->label_of(hub, seg.egress);
      if (inner != mpls::LdpPlane::kNoLabel &&
          inner != net::kLabelImplicitNull) {
        for (const mpls::TeHop& te_hop : tunnel.active_hops()) {
          const topo::Link& link = topo.link(te_hop.in_link);
          HopRecord hop;
          hop.addr = link.iface_of(te_hop.router);
          hop.response_prob = topo.router(te_hop.router).response_prob;
          hop.rfc4950 = plane.rfc4950;
          hop.ttl_visible = plane.ttl_propagate;
          hop.latency_ms = link.latency_ms;
          hop.labels.push(inner, /*tc=*/0, /*ttl=*/1);
          if (te_hop.in_label != net::kLabelImplicitNull) {
            hop.labels.push(te_hop.in_label, /*tc=*/0, /*ttl=*/1);
          }
          out.hops.push_back(std::move(hop));
          at = te_hop.router;
        }
      }
    }
  }
  // Bound the walk to avoid infinite loops on inconsistent FIBs.
  for (std::size_t budget = topo.router_count() + 4; at != seg.egress;
       --budget) {
    if (budget == 0) return false;
    // Flat-RIB accessor: a contiguous slice of the AS-wide next-hop pool.
    const std::span<const igp::NextHop> nhs =
        igp.rib(at).nexthops(seg.egress);
    if (nhs.empty()) return false;
    const auto& nh =
        nhs[ecmp_pick(flow_hash, at, plane.salt_for(at), nhs.size())];
    const topo::Link& link = topo.link(nh.link);
    const topo::RouterId next = nh.neighbor;

    HopRecord hop;
    hop.addr = link.iface_of(next);
    hop.response_prob = topo.router(next).response_prob;
    hop.rfc4950 = plane.rfc4950;
    hop.latency_ms = link.latency_ms;
    if (ldp_labels) {
      const std::uint32_t label = plane.ldp->label_of(next, seg.egress);
      if (label != mpls::LdpPlane::kNoLabel &&
          label != net::kLabelImplicitNull) {
        hop.labels.push(label, /*tc=*/0, /*ttl=*/1);
        hop.ttl_visible = plane.ttl_propagate;
      }
      // Egress (empty stack after PHP, or implicit-null) stays TTL-visible.
    }
    out.hops.push_back(std::move(hop));
    at = next;
  }
  return true;
}

}  // namespace

std::size_t ecmp_pick(std::uint64_t flow_hash, topo::RouterId router,
                      std::uint64_t salt, std::size_t n_choices) {
  if (n_choices <= 1) return 0;
  // Per-router hash seed: real routers perturb the 5-tuple hash with a
  // device-local key, so consecutive routers make independent choices.
  const std::uint64_t h = util::hash_combine(
      flow_hash, util::hash_combine(router + 1, salt ^ 0xa5a5a5a5a5a5a5a5ull));
  return static_cast<std::size_t>(h % n_choices);
}

bool mpls_applies(const AsDataPlane& plane, net::Ipv4Addr dst) {
  if (plane.mpls_coverage >= 1.0) return true;
  if (plane.mpls_coverage <= 0.0) return false;
  const std::uint64_t h =
      util::hash_combine(slash24(dst), plane.coverage_salt);
  // Map to [0,1) deterministically.
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < plane.mpls_coverage;
}

bool ler_enabled(const AsDataPlane& plane, topo::RouterId router) {
  if (plane.ler_share >= 1.0) return true;
  if (plane.ler_share <= 0.0) return false;
  const std::uint64_t h =
      util::mix64(util::hash_combine(router + 1, plane.ler_salt));
  return to01_local(h) < plane.ler_share;
}

std::optional<mpls::LspId> select_hub_tunnel(const AsDataPlane& plane,
                                             topo::RouterId ingress,
                                             topo::RouterId egress) {
  if (plane.rsvp == nullptr || plane.te_policy.ldp_over_te_share <= 0.0) {
    return std::nullopt;
  }
  const auto it = plane.te_policy.hub_tunnels.find(ingress);
  if (it == plane.te_policy.hub_tunnels.end() || it->second.empty()) {
    return std::nullopt;
  }
  const std::uint64_t h = util::hash_combine(
      util::hash_combine(ingress + 1, egress + 1),
      plane.te_policy.salt ^ 0x1d90ull);
  if (to01_local(h) >= plane.te_policy.ldp_over_te_share) {
    return std::nullopt;
  }
  const auto& tunnels = it->second;
  const mpls::LspId id = tunnels[static_cast<std::size_t>(
      util::mix64(h) % tunnels.size())];
  // Only sensible when the hub actually shortens the remaining LDP path.
  const topo::RouterId hub = plane.rsvp->lsp(id).egress;
  if (hub == ingress || hub == egress) return std::nullopt;
  return id;
}

std::optional<mpls::LspId> select_te_lsp(const AsDataPlane& plane,
                                         topo::RouterId ingress,
                                         topo::RouterId egress,
                                         net::Ipv4Addr dst) {
  if (plane.rsvp == nullptr) return std::nullopt;
  const auto it = plane.te_policy.pairs.find({ingress, egress});
  if (it == plane.te_policy.pairs.end() || it->second.empty()) {
    return std::nullopt;
  }
  const std::uint64_t h =
      util::hash_combine(slash24(dst), plane.te_policy.salt);
  if (plane.te_policy.te_share < 1.0) {
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= plane.te_policy.te_share) return std::nullopt;
  }
  const auto& lsps = it->second;
  return lsps[static_cast<std::size_t>(util::mix64(h) % lsps.size())];
}

WalkResult walk_path(const PathSpec& path, std::uint64_t flow_hash) {
  WalkResult out;
  walk_path(path, flow_hash, out);
  return out;
}

void walk_path(const PathSpec& path, std::uint64_t flow_hash,
               WalkResult& out) {
  out.hops.clear();
  out.reached = false;
  for (const net::Ipv4Addr addr : path.pre_hops) {
    append_plain_hop(out, addr, 0.8);
  }
  for (const SegmentSpec& seg : path.segments) {
    if (seg.plane == nullptr || seg.plane->topo == nullptr) {
      out.reached = false;
      return;
    }
    if (!walk_segment(seg, path.dst, flow_hash, out)) {
      out.reached = false;
      return;
    }
  }
  for (const net::Ipv4Addr addr : path.post_hops) {
    append_plain_hop(out, addr, 1.2);
  }
  out.reached = path.dst_responds;
}

}  // namespace mum::probe
