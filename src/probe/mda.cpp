#include "probe/mda.h"

#include "util/rng.h"

namespace mum::probe {

MdaResult discover_multipath(const PathSpec& path, std::uint64_t base_flow,
                             int flows) {
  MdaResult result;
  result.flows_probed = flows;
  WalkResult walk;  // reused across flows; capacity stabilizes after one
  for (int f = 0; f < flows; ++f) {
    const std::uint64_t flow =
        util::hash_combine(base_flow, static_cast<std::uint64_t>(f));
    walk_path(path, flow, walk);

    std::vector<net::Ipv4Addr> ip_path;
    std::vector<std::pair<net::Ipv4Addr, std::uint32_t>> labeled;
    ip_path.reserve(walk.hops.size());
    labeled.reserve(walk.hops.size());
    for (const HopRecord& hop : walk.hops) {
      if (!hop.ttl_visible) continue;
      ip_path.push_back(hop.addr);
      labeled.emplace_back(hop.addr, hop.labels.empty()
                                         ? 0u
                                         : hop.labels.top().label());
    }
    result.ip_paths.insert(std::move(ip_path));
    result.labeled_paths.insert(std::move(labeled));
  }
  return result;
}

}  // namespace mum::probe
