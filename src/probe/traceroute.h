// Paris-traceroute engine on top of the forwarding-plane walk.
//
// Paris traceroute keeps the flow identifier constant across TTLs for a given
// destination (so one trace sees one coherent path through ECMP), while
// different destinations naturally land on different ECMP branches — which is
// how Archipelago-style campaigns expose the branch structure of an IOTP.
//
// The engine also applies the observation model: anonymous routers (a router
// answers probes with probability Router::response_prob), RFC 4950 quoting,
// and hidden hops (ttl-propagate disabled => interior LSRs never expire the
// probe and vanish from the trace).
#pragma once

#include <cstdint>

#include "dataset/trace.h"
#include "dataset/trace_batch.h"
#include "probe/forwarder.h"
#include "util/rng.h"

namespace mum::probe {

// The measurement plane emits into dataset::TraceBatch; alias it into this
// namespace as the probe-side spelling (probe sits above dataset in the
// layering, so the type lives there).
using dataset::HopView;
using dataset::SnapshotBatch;
using dataset::TraceBatch;
using dataset::TraceView;

struct Monitor {
  std::uint32_t id = 0;
  net::Ipv4Addr addr;
  std::string name;
};

// Paris flow identifier for (monitor, destination): stable per destination,
// independent across destinations.
std::uint64_t paris_flow_id(const Monitor& monitor, net::Ipv4Addr dst);

struct TraceOptions {
  int max_ttl = 40;
  // Extra per-probe loss applied on top of router response probabilities
  // (ICMP rate limiting along the reverse path). Retried (see attempts).
  double reply_loss = 0.005;
  // Probes sent per TTL before declaring the hop anonymous (scamper default
  // is 2-3). Retries beat transient reply loss but NOT a router that does
  // not answer traceroute at all (Router::response_prob is a per-trace
  // policy draw, persistent across attempts).
  int attempts = 2;
  // Stop probing after this many consecutive anonymous hops (scamper's gap
  // limit): dead paths produce short traces, not max_ttl rows of '*'.
  int gap_limit = 6;
};

// Run one traceroute over a precomputed path. `rng` drives only the
// observation noise (anonymous hops, reply loss, RTT jitter) — forwarding
// itself is deterministic in the flow id.
dataset::Trace trace_route(const Monitor& monitor, const PathSpec& path,
                           const TraceOptions& options, util::Rng& rng);

// Observation model over an already-computed forwarding walk (trace_route
// == walk_path + observe_walk). Exposed so benches and oracle tests can
// separate the forwarding simulation from the measurement path proper.
dataset::Trace observe_walk(const Monitor& monitor, net::Ipv4Addr dst,
                            const TraceOptions& options, util::Rng& rng,
                            const WalkResult& walk);
// Batch form; appends one trace to `out`.
void observe_walk_into(const Monitor& monitor, net::Ipv4Addr dst,
                       const TraceOptions& options, util::Rng& rng,
                       const WalkResult& walk, dataset::TraceBatch& out);

// Batch form: identical RNG draw sequence and observable behaviour (the two
// share one observation-model core), but the trace lands as columns in
// `out` with zero per-hop heap allocation. `scratch`, when non-null, is a
// caller-owned WalkResult reused across calls (per-worker scratch).
void trace_route_into(const Monitor& monitor, const PathSpec& path,
                      const TraceOptions& options, util::Rng& rng,
                      dataset::TraceBatch& out,
                      WalkResult* scratch = nullptr);

}  // namespace mum::probe
