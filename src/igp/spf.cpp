#include "igp/spf.h"

#include <algorithm>
#include <bit>
#include <queue>

#include "obs/stage.h"
#include "obs/telemetry.h"
#include "util/thread_pool.h"

namespace mum::igp {

// Per-source result: distances plus the next hops concatenated in ascending
// destination order (local offsets nh_begin, size n+1). Rows are assembled
// into the flat IgpState arrays in source order, so parallel computation
// yields byte-identical state.
struct detail::SourceRow {
  std::vector<std::uint32_t> dist;
  std::vector<std::uint32_t> nh_begin;
  std::vector<NextHop> nh;
};

namespace {

using detail::SourceRow;

struct QueueItem {
  std::uint32_t dist;
  topo::RouterId router;
  friend bool operator>(const QueueItem& a, const QueueItem& b) {
    return a.dist > b.dist;
  }
};

// IGP costs are small integers, so the pending Dijkstra frontier spans at
// most max_cost distinct distances: a cyclic bucket ("dial") queue settles
// routers in O(V + E + max_dist) with no heap. Above this cost bound the
// bucket ring would outgrow its benefit and we fall back to a binary heap.
inline constexpr std::uint32_t kMaxDialCost = 4096;

// Dijkstra via dial queue. Preconditions: 1 <= every arc cost <= max_cost.
// Appends routers to `order` in settle order. Tie order within one distance
// differs from the heap's, which is unobservable: with positive costs no
// equal-distance router can be another's predecessor, so the first-hop
// sweep reads identical masks either way.
void dijkstra_dial(const topo::CsrAdjacency& csr, topo::RouterId src,
                   const std::vector<bool>* link_down, std::uint32_t max_cost,
                   std::vector<std::uint32_t>& dist,
                   std::vector<topo::RouterId>& order) {
  const std::uint32_t ring = max_cost + 1;
  std::vector<std::vector<topo::RouterId>> buckets(ring);
  dist[src] = 0;
  buckets[0].push_back(src);
  std::size_t pending = 1;
  std::uint32_t cur = 0;
  while (pending > 0) {
    std::vector<topo::RouterId>& bucket = buckets[cur % ring];
    // Relaxations from distance `cur` land in (cur, cur + max_cost], never
    // back into this bucket, so draining it is safe.
    while (!bucket.empty()) {
      const topo::RouterId u = bucket.back();
      bucket.pop_back();
      --pending;
      if (dist[u] != cur) continue;  // stale entry, improved meanwhile
      order.push_back(u);
      for (const topo::CsrArc& arc : csr.out(u)) {
        if (link_down != nullptr && (*link_down)[arc.link]) continue;
        const std::uint32_t nd = cur + arc.cost;
        if (nd < dist[arc.to]) {
          dist[arc.to] = nd;
          buckets[nd % ring].push_back(arc.to);
          ++pending;
        }
      }
    }
    ++cur;
  }
}

void dijkstra_heap(const topo::CsrAdjacency& csr, topo::RouterId src,
                   const std::vector<bool>* link_down,
                   std::vector<std::uint32_t>& dist,
                   std::vector<topo::RouterId>& order) {
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    order.push_back(u);
    for (const topo::CsrArc& arc : csr.out(u)) {
      if (link_down != nullptr && (*link_down)[arc.link]) continue;
      const std::uint32_t nd = d + arc.cost;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        pq.push({nd, arc.to});
      }
    }
  }
}

// Dijkstra from `src` over the CSR snapshot, then one distance-ordered sweep
// over the shortest-path predecessor DAG that propagates the set of usable
// first-hop links as a bitmask over `src`'s incident arcs. deg(src) <= 64
// uses a single word per router; wider sources fall back to a multi-word
// bitset. Bits decode in ascending position = ascending link id, matching
// the sorted order the old per-destination reverse BFS produced.
SourceRow spf_source(const topo::CsrAdjacency& csr, topo::RouterId src,
                     const std::vector<bool>* link_down) {
  const std::size_t n = csr.router_count();
  SourceRow row;
  row.dist.assign(n, kUnreachable);

  const std::span<const topo::CsrArc> src_arcs = csr.out(src);
  const std::size_t deg = src_arcs.size();

  // Bit index of a link incident to src (arcs are in ascending link order).
  const auto src_bit = [&src_arcs](topo::LinkId lid) {
    const auto it = std::lower_bound(
        src_arcs.begin(), src_arcs.end(), lid,
        [](const topo::CsrArc& a, topo::LinkId l) { return a.link < l; });
    return static_cast<std::size_t>(it - src_arcs.begin());
  };

  row.nh_begin.assign(n + 1, 0);
  row.nh.reserve(n + n / 2);

  const auto decode_word = [&](std::uint64_t word, std::size_t base) {
    while (word != 0) {
      const std::size_t bit =
          base + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      row.nh.push_back(NextHop{src_arcs[bit].link, src_arcs[bit].to});
    }
  };

  const bool dial_ok =
      csr.max_cost() >= 1 && csr.max_cost() <= kMaxDialCost;

  if (deg <= 64 && dial_ok) {
    // Fast path: dial-queue Dijkstra with the first-hop masks (one u64 per
    // router) computed inline at settle time. When `u` settles at distance
    // `cur`, every tight predecessor has final distance < cur (costs >= 1)
    // and was settled — and had its mask finalized — in an earlier bucket,
    // so one pass over u's arcs both collects the mask and relaxes. Worker
    // scratch is thread_local: reused across sources, never across threads.
    const std::uint32_t ring = csr.max_cost() + 1;
    thread_local std::vector<std::uint64_t> fh;
    thread_local std::vector<std::vector<topo::RouterId>> buckets;
    fh.assign(n, 0);
    if (buckets.size() < ring) buckets.resize(ring);  // drained when done

    std::uint32_t* dist = row.dist.data();
    dist[src] = 0;
    buckets[0].push_back(src);
    std::size_t pending = 1;
    std::uint32_t cur = 0;
    while (pending > 0) {
      std::vector<topo::RouterId>& bucket = buckets[cur % ring];
      // Relaxations from `cur` land in (cur, cur + max_cost], never back
      // into this bucket, so draining it is safe.
      while (!bucket.empty()) {
        const topo::RouterId u = bucket.back();
        bucket.pop_back();
        --pending;
        if (dist[u] != cur) continue;  // stale entry, improved meanwhile
        std::uint64_t mask = 0;
        for (const topo::CsrArc& arc : csr.out(u)) {
          if (link_down != nullptr && (*link_down)[arc.link]) continue;
          const std::uint32_t dto = dist[arc.to];
          const std::uint32_t nd = cur + arc.cost;
          if (nd < dto) {
            dist[arc.to] = nd;
            buckets[nd % ring].push_back(arc.to);
            ++pending;
          } else if (dto != kUnreachable && dto + arc.cost == cur) {
            mask |= arc.to == src
                        ? (std::uint64_t{1} << src_bit(arc.link))
                        : fh[arc.to];
          }
        }
        if (u != src) fh[u] = mask;
      }
      ++cur;
    }
    for (topo::RouterId dst = 0; dst < n; ++dst) {
      row.nh_begin[dst] = static_cast<std::uint32_t>(row.nh.size());
      if (dst != src) decode_word(fh[dst], 0);
    }
    row.nh_begin[n] = static_cast<std::uint32_t>(row.nh.size());
    return row;
  }

  // General path: settle order first (routers in nondecreasing final
  // distance; with positive costs every tight predecessor settles strictly
  // earlier), then a forward sweep propagating predecessor masks.
  std::vector<topo::RouterId> order;
  order.reserve(n);
  if (dial_ok) {
    dijkstra_dial(csr, src, link_down, csr.max_cost(), row.dist, order);
  } else {
    dijkstra_heap(csr, src, link_down, row.dist, order);
  }

  if (deg <= 64) {
    // One u64 of first-hop links per router.
    std::vector<std::uint64_t> fh(n, 0);
    for (const topo::RouterId v : order) {
      if (v == src) continue;
      std::uint64_t mask = 0;
      for (const topo::CsrArc& arc : csr.out(v)) {
        if (link_down != nullptr && (*link_down)[arc.link]) continue;
        const std::uint32_t du = row.dist[arc.to];
        if (du == kUnreachable || du + arc.cost != row.dist[v]) continue;
        mask |= arc.to == src ? (std::uint64_t{1} << src_bit(arc.link))
                              : fh[arc.to];
      }
      fh[v] = mask;
    }
    for (topo::RouterId dst = 0; dst < n; ++dst) {
      row.nh_begin[dst] = static_cast<std::uint32_t>(row.nh.size());
      if (dst != src) decode_word(fh[dst], 0);
    }
  } else {
    // Wide source: multi-word bitset per router, same sweep.
    const std::size_t words = (deg + 63) / 64;
    std::vector<std::uint64_t> fh(n * words, 0);
    for (const topo::RouterId v : order) {
      if (v == src) continue;
      std::uint64_t* mv = fh.data() + static_cast<std::size_t>(v) * words;
      for (const topo::CsrArc& arc : csr.out(v)) {
        if (link_down != nullptr && (*link_down)[arc.link]) continue;
        const std::uint32_t du = row.dist[arc.to];
        if (du == kUnreachable || du + arc.cost != row.dist[v]) continue;
        if (arc.to == src) {
          const std::size_t bit = src_bit(arc.link);
          mv[bit / 64] |= std::uint64_t{1} << (bit % 64);
        } else {
          const std::uint64_t* mu =
              fh.data() + static_cast<std::size_t>(arc.to) * words;
          for (std::size_t w = 0; w < words; ++w) mv[w] |= mu[w];
        }
      }
    }
    for (topo::RouterId dst = 0; dst < n; ++dst) {
      row.nh_begin[dst] = static_cast<std::uint32_t>(row.nh.size());
      if (dst == src) continue;
      const std::uint64_t* m =
          fh.data() + static_cast<std::size_t>(dst) * words;
      for (std::size_t w = 0; w < words; ++w) decode_word(m[w], w * 64);
    }
  }
  row.nh_begin[n] = static_cast<std::uint32_t>(row.nh.size());
  return row;
}

}  // namespace

IgpState IgpState::assemble(std::size_t n, std::vector<SourceRow>& fresh,
                            const std::vector<std::uint8_t>* use_fresh,
                            const IgpState* baseline) {
  IgpState out;
  out.n_ = n;
  out.dist_.resize(n * n);
  out.offsets_.resize(n * n + 1);

  std::size_t total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (use_fresh == nullptr || (*use_fresh)[s]) {
      total += fresh[s].nh.size();
    } else {
      total += static_cast<std::size_t>(baseline->offsets_[(s + 1) * n] -
                                        baseline->offsets_[s * n]);
    }
  }
  out.nh_.reserve(total);

  out.offsets_[0] = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint64_t base = out.nh_.size();
    if (use_fresh == nullptr || (*use_fresh)[s]) {
      SourceRow& row = fresh[s];
      std::copy(row.dist.begin(), row.dist.end(), out.dist_.begin() + s * n);
      for (std::size_t d = 0; d < n; ++d) {
        out.offsets_[s * n + d + 1] = base + row.nh_begin[d + 1];
      }
      out.nh_.insert(out.nh_.end(), row.nh.begin(), row.nh.end());
      row = SourceRow{};  // free per-source scratch early
    } else {
      std::copy(baseline->dist_.begin() + s * n,
                baseline->dist_.begin() + (s + 1) * n,
                out.dist_.begin() + s * n);
      const std::uint64_t row_start = baseline->offsets_[s * n];
      for (std::size_t d = 0; d < n; ++d) {
        out.offsets_[s * n + d + 1] =
            base + (baseline->offsets_[s * n + d + 1] - row_start);
      }
      out.nh_.insert(out.nh_.end(), baseline->nh_.begin() + row_start,
                     baseline->nh_.begin() + baseline->offsets_[(s + 1) * n]);
    }
  }
  return out;
}

namespace {

// Union of the transient down set and the overlay's down links, as the mask
// the per-source SPF consumes. Returns nullptr when nothing is down.
const std::vector<bool>* merge_down(const std::vector<bool>* link_down,
                                    const LinkOverlay* overlay,
                                    std::vector<bool>& scratch) {
  if (overlay == nullptr || overlay->down.empty()) return link_down;
  if (link_down == nullptr) return &overlay->down;
  scratch = *link_down;
  for (std::size_t l = 0; l < scratch.size(); ++l) {
    if (overlay->down[l]) scratch[l] = true;
  }
  return &scratch;
}

topo::CsrAdjacency make_overlay_csr(const topo::AsTopology& topo,
                                    const LinkOverlay* overlay) {
  return overlay != nullptr && !overlay->cost.empty()
             ? topo.make_csr(&overlay->cost)
             : topo.make_csr();
}

}  // namespace

IgpState IgpState::compute(const topo::AsTopology& topo,
                           const std::vector<bool>* link_down,
                           util::ThreadPool* pool,
                           const LinkOverlay* overlay) {
  // Call-site wall clock: nested per-source parallelism joins before the
  // span ends, so the duration covers the whole computation. The stage
  // span attributes it as SPF work of whichever cycle is current (no-op
  // during the initial internet build, which runs outside any cycle).
  const obs::StageSpan span(obs::Stage::kSpf);
  static obs::Counter& sources =
      obs::registry().counter("igp.spf_sources_computed");
  static obs::Counter& computes = obs::registry().counter("igp.computes");
  static obs::Histogram& duration =
      obs::registry().histogram("igp.compute_ns");
  const obs::ScopedTimer timer(duration);

  const topo::CsrAdjacency csr = make_overlay_csr(topo, overlay);
  std::vector<bool> merged;
  const std::vector<bool>* mask = merge_down(link_down, overlay, merged);
  const std::size_t n = csr.router_count();
  std::vector<SourceRow> rows(n);
  util::parallel_for(pool, n, [&](std::size_t s) {
    rows[s] = spf_source(csr, static_cast<topo::RouterId>(s), mask);
  });
  computes.inc();
  sources.add(n);
  return assemble(n, rows, nullptr, nullptr);
}

IgpState IgpState::reconverge(const topo::AsTopology& topo,
                              const IgpState& baseline,
                              const std::vector<bool>& link_down,
                              util::ThreadPool* pool,
                              ReconvergeStats* stats,
                              const LinkOverlay* overlay) {
  const obs::StageSpan span(obs::Stage::kSpf);
  static obs::Counter& recomputed =
      obs::registry().counter("igp.reconverge_sources_recomputed");
  static obs::Counter& skipped =
      obs::registry().counter("igp.reconverge_sources_skipped");
  static obs::Counter& reconverges =
      obs::registry().counter("igp.reconverges");
  static obs::Histogram& duration =
      obs::registry().histogram("igp.reconverge_ns");
  const obs::ScopedTimer timer(duration);

  const std::size_t n = baseline.n_;
  struct Down {
    topo::RouterId a, b;
    std::uint32_t cost;
  };
  std::vector<Down> downed;
  for (topo::LinkId l = 0; l < link_down.size(); ++l) {
    if (!link_down[l]) continue;
    // Overlay-down links are already absent from the baseline; only the
    // transient failures on top of it can perturb baseline shortest paths.
    if (overlay != nullptr && overlay->is_down(l)) continue;
    const topo::Link& link = topo.link(l);
    const std::uint32_t cost =
        overlay != nullptr ? overlay->cost_of(link) : link.igp_cost;
    downed.push_back(Down{link.a, link.b, cost});
  }

  // A source is affected iff some downed link lies on one of its shortest
  // paths, i.e. is tight under its baseline distances in either direction.
  std::vector<std::uint8_t> affected(n, 0);
  std::size_t n_affected = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t* d = baseline.dist_.data() + s * n;
    for (const Down& l : downed) {
      const std::uint32_t da = d[l.a];
      const std::uint32_t db = d[l.b];
      if ((da != kUnreachable && da + l.cost == db) ||
          (db != kUnreachable && db + l.cost == da)) {
        affected[s] = 1;
        ++n_affected;
        break;
      }
    }
  }
  if (stats != nullptr) {
    stats->sources_total = n;
    stats->sources_recomputed = n_affected;
  }
  reconverges.inc();
  recomputed.add(n_affected);
  skipped.add(n - n_affected);

  std::vector<SourceRow> rows(n);
  if (n_affected > 0) {
    const topo::CsrAdjacency csr = make_overlay_csr(topo, overlay);
    util::parallel_for(pool, n, [&](std::size_t s) {
      if (affected[s]) {
        rows[s] =
            spf_source(csr, static_cast<topo::RouterId>(s), &link_down);
      }
    });
  }
  return assemble(n, rows, &affected, &baseline);
}

IgpState IgpState::reconverge_delta(const topo::AsTopology& topo,
                                    const IgpState& prev,
                                    const LinkOverlay& prev_overlay,
                                    const LinkOverlay& now_overlay,
                                    util::ThreadPool* pool,
                                    ReconvergeStats* stats) {
  const obs::StageSpan span(obs::Stage::kSpf);
  static obs::Counter& recomputed =
      obs::registry().counter("igp.delta_sources_recomputed");
  static obs::Counter& skipped =
      obs::registry().counter("igp.delta_sources_skipped");
  static obs::Counter& deltas = obs::registry().counter("igp.delta_reconverges");
  static obs::Histogram& duration =
      obs::registry().histogram("igp.delta_reconverge_ns");
  const obs::ScopedTimer timer(duration);

  const std::size_t n = prev.n_;
  // Effective per-link state transition across the overlay change.
  struct Change {
    topo::RouterId a, b;
    std::uint32_t was, now;  // kUnreachable = link absent
  };
  std::vector<Change> changes;
  for (const topo::Link& link : topo.links()) {
    const std::uint32_t was = prev_overlay.is_down(link.id)
                                  ? kUnreachable
                                  : prev_overlay.cost_of(link);
    const std::uint32_t now = now_overlay.is_down(link.id)
                                  ? kUnreachable
                                  : now_overlay.cost_of(link);
    if (was != now) changes.push_back(Change{link.a, link.b, was, now});
  }

  // A source is clean iff its previous row is still valid: no removed or
  // repriced link was tight under its old distances (case a), and no added
  // or cheapened link can reach an endpoint at <= its old distance (case
  // b — `<=` also catches new equal-cost ties joining an ECMP set).
  std::vector<std::uint8_t> affected(n, 0);
  std::size_t n_affected = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t* d = prev.dist_.data() + s * n;
    for (const Change& c : changes) {
      const std::uint32_t da = d[c.a];
      const std::uint32_t db = d[c.b];
      bool dirty = false;
      if (c.was != kUnreachable) {
        dirty = (da != kUnreachable && da + c.was == db) ||
                (db != kUnreachable && db + c.was == da);
      }
      if (!dirty && c.now != kUnreachable &&
          (c.was == kUnreachable || c.now < c.was)) {
        dirty = (da != kUnreachable && (db == kUnreachable || da + c.now <= db)) ||
                (db != kUnreachable && (da == kUnreachable || db + c.now <= da));
      }
      if (dirty) {
        affected[s] = 1;
        ++n_affected;
        break;
      }
    }
  }
  if (stats != nullptr) {
    stats->sources_total = n;
    stats->sources_recomputed = n_affected;
  }
  deltas.inc();
  recomputed.add(n_affected);
  skipped.add(n - n_affected);

  std::vector<SourceRow> rows(n);
  if (n_affected > 0) {
    const topo::CsrAdjacency csr = make_overlay_csr(topo, &now_overlay);
    const std::vector<bool>* mask =
        now_overlay.down.empty() ? nullptr : &now_overlay.down;
    util::parallel_for(pool, n, [&](std::size_t s) {
      if (affected[s]) {
        rows[s] = spf_source(csr, static_cast<topo::RouterId>(s), mask);
      }
    });
  }
  return assemble(n, rows, &affected, &prev);
}

std::uint64_t IgpState::path_count(topo::RouterId src, topo::RouterId dst,
                                   std::uint64_t cap) const {
  if (src == dst) return 1;
  if (dist_[static_cast<std::size_t>(src) * n_ + dst] == kUnreachable) {
    return 0;
  }
  // Memoized DP over the next-hop DAG: memo[v] = min(#paths v->dst, cap).
  // kUnset must stay distinct from any legal value, so clamp cap below ~0.
  constexpr std::uint64_t kUnset = ~std::uint64_t{0};
  cap = std::min(cap, kUnset - 1);
  std::vector<std::uint64_t> memo(n_, kUnset);
  memo[dst] = 1;

  // Iterative DFS (explicit stack) so deep DAGs cannot overflow the C stack.
  std::vector<topo::RouterId> stack{src};
  while (!stack.empty()) {
    const topo::RouterId v = stack.back();
    if (memo[v] != kUnset) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const NextHop& nh : rib(v).nexthops(dst)) {
      if (memo[nh.neighbor] == kUnset) {
        stack.push_back(nh.neighbor);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    std::uint64_t total = 0;
    for (const NextHop& nh : rib(v).nexthops(dst)) {
      const std::uint64_t c = memo[nh.neighbor];
      total = c >= cap - total ? cap : total + c;
      if (total >= cap) break;
    }
    memo[v] = total;
  }
  return memo[src];
}

}  // namespace mum::igp
