#include "igp/spf.h"

#include <algorithm>
#include <queue>

namespace mum::igp {

namespace {

struct QueueItem {
  std::uint32_t dist;
  topo::RouterId router;
  friend bool operator>(const QueueItem& a, const QueueItem& b) {
    return a.dist > b.dist;
  }
};

// Dijkstra from `src`, retaining every equal-cost predecessor edge.
RouterRib spf_from(const topo::AsTopology& topo, topo::RouterId src,
                   const std::vector<bool>* link_down) {
  const std::size_t n = topo.router_count();
  std::vector<std::uint32_t> dist(n, kUnreachable);
  // predecessors[v] = links over which v is reached at the best distance.
  std::vector<std::vector<topo::LinkId>> predecessors(n);

  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const topo::LinkId lid : topo.links_of(u)) {
      if (link_down != nullptr && (*link_down)[lid]) continue;
      const topo::Link& l = topo.link(lid);
      const topo::RouterId v = l.other(u);
      const std::uint32_t nd = d + l.igp_cost;
      if (nd < dist[v]) {
        dist[v] = nd;
        predecessors[v].clear();
        predecessors[v].push_back(lid);
        pq.push({nd, v});
      } else if (nd == dist[v]) {
        predecessors[v].push_back(lid);
      }
    }
  }

  // Derive ECMP next hops at `src` toward every destination: first hops of
  // all shortest paths. Walk the predecessor DAG once per destination with
  // memoization over "set of first-hop links from src able to reach node".
  // Simpler and fast enough at our scales: for each destination, collect the
  // first-hop set by reverse BFS to src.
  std::vector<std::vector<NextHop>> nexthops(n);
  std::vector<std::uint8_t> mark(n, 0);
  std::vector<topo::RouterId> stack;
  for (topo::RouterId dst = 0; dst < n; ++dst) {
    if (dst == src || dist[dst] == kUnreachable) continue;
    // Reverse walk from dst over predecessor links; whenever a predecessor
    // link starts at src, that link is a first hop.
    std::fill(mark.begin(), mark.end(), 0);
    stack.clear();
    stack.push_back(dst);
    mark[dst] = 1;
    std::vector<topo::LinkId> first_links;
    while (!stack.empty()) {
      const topo::RouterId v = stack.back();
      stack.pop_back();
      for (const topo::LinkId lid : predecessors[v]) {
        const topo::RouterId u = topo.link(lid).other(v);
        if (u == src) {
          first_links.push_back(lid);
        } else if (!mark[u]) {
          mark[u] = 1;
          stack.push_back(u);
        }
      }
    }
    std::sort(first_links.begin(), first_links.end());
    first_links.erase(std::unique(first_links.begin(), first_links.end()),
                      first_links.end());
    for (const topo::LinkId lid : first_links) {
      nexthops[dst].push_back(NextHop{lid, topo.link(lid).other(src)});
    }
  }

  return RouterRib(std::move(dist), std::move(nexthops));
}

}  // namespace

IgpState IgpState::compute(const topo::AsTopology& topo,
                           const std::vector<bool>* link_down) {
  IgpState state;
  state.ribs_.reserve(topo.router_count());
  for (topo::RouterId r = 0; r < topo.router_count(); ++r) {
    state.ribs_.push_back(spf_from(topo, r, link_down));
  }
  return state;
}

std::uint64_t IgpState::path_count(topo::RouterId src, topo::RouterId dst,
                                   std::uint64_t cap) const {
  if (src == dst) return 1;
  if (!ribs_.at(src).reachable(dst)) return 0;
  std::uint64_t total = 0;
  for (const NextHop& nh : ribs_.at(src).nexthops(dst)) {
    total += path_count(nh.neighbor, dst, cap);
    if (total >= cap) return cap;
  }
  return total;
}

}  // namespace mum::igp
