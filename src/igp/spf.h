// Link-state IGP shortest-path computation with full ECMP support.
//
// For every (source, destination-router) pair we keep *all* equal-cost
// next hops, each identified by the outgoing link (so two parallel links to
// the same neighbour are two distinct ECMP next hops, exactly the situation
// behind the paper's "Parallel Links" subclass). LDP LSP-trees and the
// forwarding plane both consume these next-hop sets.
//
// Storage is flat: one contiguous distance matrix, one contiguous NextHop
// pool, and a CSR offset table per (source, destination) — no per-pair
// heap allocations. `rib(r)` returns a lightweight view into those arrays.
// `compute` runs one Dijkstra per source over a CSR adjacency snapshot and
// derives the ECMP first-hop sets with a single distance-ordered sweep over
// the shortest-path predecessor DAG (O(V+E) per source, bitmask over the
// source's incident links). Sources are independent, so the work spreads
// over a thread pool with byte-identical output at any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topo/topology.h"

namespace mum::util {
class ThreadPool;
}

namespace mum::igp {

struct NextHop {
  topo::LinkId link = topo::kInvalidLink;
  topo::RouterId neighbor = topo::kInvalidRouter;

  friend bool operator==(const NextHop&, const NextHop&) = default;
};

inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

// Persistent per-cycle topology overlay: the long-lived link/router deltas
// that distinguish one monthly cycle's world from the base topology (as
// opposed to the transient intra-month failures `apply_flaps` layers on
// top). Canonical form: each vector is either empty (no deltas of that
// kind) or sized to the AS link count. `down[l]` removes link l entirely;
// `cost[l] != 0` overrides its IGP metric. Value-comparable so cycle
// evolution can detect per-AS overlay changes cheaply.
struct LinkOverlay {
  std::vector<bool> down;
  std::vector<std::uint32_t> cost;  // 0 = keep the base metric

  bool is_down(topo::LinkId l) const noexcept {
    return !down.empty() && down[l];
  }
  std::uint32_t cost_of(const topo::Link& link) const noexcept {
    return !cost.empty() && cost[link.id] != 0 ? cost[link.id] : link.igp_cost;
  }
  bool trivial() const noexcept {
    for (const bool d : down) {
      if (d) return false;
    }
    for (const std::uint32_t c : cost) {
      if (c != 0) return false;
    }
    return true;
  }

  friend bool operator==(const LinkOverlay&, const LinkOverlay&) = default;
};

namespace detail {
struct SourceRow;  // per-source SPF scratch (spf.cpp)
}

class IgpState;

// Routing state of one router: distance and ECMP next-hop set toward every
// other router of the AS (indexed by destination RouterId). Non-owning view
// into the IgpState that produced it; valid while that state is alive.
class RouterRib {
 public:
  RouterRib() = default;

  std::uint32_t distance(topo::RouterId dst) const { return dist_[dst]; }
  bool reachable(topo::RouterId dst) const {
    return dist_[dst] != kUnreachable;
  }
  // Next hops toward `dst`, in ascending outgoing-link-id order.
  std::span<const NextHop> nexthops(topo::RouterId dst) const {
    return {nh_ + off_[dst], static_cast<std::size_t>(off_[dst + 1] - off_[dst])};
  }

 private:
  friend class IgpState;
  RouterRib(const std::uint32_t* dist, const std::uint64_t* off,
            const NextHop* nh)
      : dist_(dist), off_(off), nh_(nh) {}

  const std::uint32_t* dist_ = nullptr;
  const std::uint64_t* off_ = nullptr;  // global offsets into nh_
  const NextHop* nh_ = nullptr;
};

// All-routers routing state for one AS.
class IgpState {
 public:
  // What an incremental reconvergence actually did (see `reconverge`).
  struct ReconvergeStats {
    std::size_t sources_total = 0;
    std::size_t sources_recomputed = 0;  // rest copied from the baseline
  };

  // Runs Dijkstra from every router. O(R * (L log R)). When `link_down` is
  // given (indexed by LinkId), those links are excluded — the state after an
  // IGP reconvergence around failed links. When `overlay` is given, its
  // down links are excluded too and its cost overrides replace base link
  // metrics. When `pool` is given, sources are computed in parallel; output
  // is byte-identical at any thread count.
  static IgpState compute(const topo::AsTopology& topo,
                          const std::vector<bool>* link_down = nullptr,
                          util::ThreadPool* pool = nullptr,
                          const LinkOverlay* overlay = nullptr);

  // Incremental reconvergence: equivalent to `compute(topo, &link_down)`
  // given a `baseline` computed on the same topology with no links down,
  // but only recomputes sources whose shortest-path DAG actually traverses
  // a downed link (a link is on some shortest path from s iff it is "tight"
  // under s's baseline distances); every other source's RIB row is copied
  // from the baseline. Removing links that carry none of s's shortest paths
  // changes neither s's distances nor its ECMP sets, so the result is
  // byte-identical to a full recompute.
  // When `overlay` is given, `baseline` must have been computed under that
  // same overlay (`compute(topo, nullptr, pool, overlay)`), and `link_down`
  // must be the *full* down set including the overlay's own down links; the
  // tight-link test then skips overlay-down links (already absent from the
  // baseline) and prices the rest with the overlay's cost overrides.
  static IgpState reconverge(const topo::AsTopology& topo,
                             const IgpState& baseline,
                             const std::vector<bool>& link_down,
                             util::ThreadPool* pool = nullptr,
                             ReconvergeStats* stats = nullptr,
                             const LinkOverlay* overlay = nullptr);

  // Cross-cycle incremental reconvergence: given `prev` computed under
  // `prev_overlay`, produce the state under `now_overlay`, recomputing only
  // sources the overlay transition can affect. A source must be recomputed
  // iff (a) a removed/worsened link was tight under its previous distances
  // (it carried one of the source's shortest paths), or (b) an added/
  // cheapened link could now reach a destination at <= its previous
  // distance (shorter path or new ECMP tie). Every other source's row is
  // byte-identical to a full recompute and is copied from `prev`.
  static IgpState reconverge_delta(const topo::AsTopology& topo,
                                   const IgpState& prev,
                                   const LinkOverlay& prev_overlay,
                                   const LinkOverlay& now_overlay,
                                   util::ThreadPool* pool = nullptr,
                                   ReconvergeStats* stats = nullptr);

  RouterRib rib(topo::RouterId r) const {
    return RouterRib(dist_.data() + static_cast<std::size_t>(r) * n_,
                     offsets_.data() + static_cast<std::size_t>(r) * n_,
                     nh_.data());
  }
  std::size_t router_count() const noexcept { return n_; }

  // Number of loop-free shortest paths from src to dst (counts distinct
  // link sequences, saturating at `cap`). Memoized DP over the next-hop
  // DAG: O(V + E) regardless of how many paths the DAG encodes.
  std::uint64_t path_count(topo::RouterId src, topo::RouterId dst,
                           std::uint64_t cap = 1u << 20) const;

  // Whole-state equality (test oracle for incremental reconvergence).
  friend bool operator==(const IgpState&, const IgpState&) = default;

 private:
  // Concatenates per-source rows (fresh, or copied from `baseline` where
  // `use_fresh` is 0) into the flat arrays, in source order.
  static IgpState assemble(std::size_t n,
                           std::vector<detail::SourceRow>& rows,
                           const std::vector<std::uint8_t>* use_fresh,
                           const IgpState* baseline);

  std::size_t n_ = 0;
  std::vector<std::uint32_t> dist_;    // n * n, row = source
  std::vector<std::uint64_t> offsets_; // n * n + 1, into nh_
  std::vector<NextHop> nh_;            // all next hops, grouped by (src, dst)
};

}  // namespace mum::igp
