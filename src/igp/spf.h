// Link-state IGP shortest-path computation with full ECMP support.
//
// For every (source, destination-router) pair we keep *all* equal-cost
// next hops, each identified by the outgoing link (so two parallel links to
// the same neighbour are two distinct ECMP next hops, exactly the situation
// behind the paper's "Parallel Links" subclass). LDP LSP-trees and the
// forwarding plane both consume these next-hop sets.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace mum::igp {

struct NextHop {
  topo::LinkId link = topo::kInvalidLink;
  topo::RouterId neighbor = topo::kInvalidRouter;

  friend bool operator==(const NextHop&, const NextHop&) = default;
};

inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

// Routing state of one router: distance and ECMP next-hop set toward every
// other router of the AS (indexed by destination RouterId).
class RouterRib {
 public:
  RouterRib() = default;
  RouterRib(std::vector<std::uint32_t> dist,
            std::vector<std::vector<NextHop>> nexthops)
      : dist_(std::move(dist)), nexthops_(std::move(nexthops)) {}

  std::uint32_t distance(topo::RouterId dst) const { return dist_.at(dst); }
  bool reachable(topo::RouterId dst) const {
    return dist_.at(dst) != kUnreachable;
  }
  const std::vector<NextHop>& nexthops(topo::RouterId dst) const {
    return nexthops_.at(dst);
  }

 private:
  std::vector<std::uint32_t> dist_;
  std::vector<std::vector<NextHop>> nexthops_;
};

// All-routers routing state for one AS.
class IgpState {
 public:
  // Runs Dijkstra from every router. O(R * (L log R)). When `link_down` is
  // given (indexed by LinkId), those links are excluded — the state after an
  // IGP reconvergence around failed links.
  static IgpState compute(const topo::AsTopology& topo,
                          const std::vector<bool>* link_down = nullptr);

  const RouterRib& rib(topo::RouterId r) const { return ribs_.at(r); }
  std::size_t router_count() const noexcept { return ribs_.size(); }

  // Number of loop-free shortest paths from src to dst (counts distinct
  // link sequences, capped to avoid overflow). Used by tests & metrics.
  std::uint64_t path_count(topo::RouterId src, topo::RouterId dst,
                           std::uint64_t cap = 1u << 20) const;

 private:
  std::vector<RouterRib> ribs_;
};

}  // namespace mum::igp
