#include "core/tree.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace mum::lpr {

const char* to_cstring(TreeClass c) noexcept {
  switch (c) {
    case TreeClass::kSingleBranch: return "Single-Branch";
    case TreeClass::kLdpConsistent: return "LDP-Consistent";
    case TreeClass::kMultiFec: return "Multi-FEC";
  }
  return "?";
}

namespace {

void classify_tree(EgressTree& tree) {
  if (tree.branches.size() <= 1) {
    tree.tree_class = TreeClass::kSingleBranch;
    tree.max_labels_per_router =
        tree.branches.empty() || tree.branches[0].lsrs.empty() ? 0 : 1;
    tree.max_in_degree = tree.branches.empty() ? 0 : 1;
    return;
  }

  // Labels per router address across all branches, and the upstream
  // addresses feeding each address (DAG in-degree). The hop before the
  // first LSR is the ingress (tunnel entry).
  std::map<net::Ipv4Addr, std::set<std::uint32_t>> labels_at;
  std::map<net::Ipv4Addr, std::set<net::Ipv4Addr>> feeders;
  for (const Lsp& lsp : tree.branches) {
    net::Ipv4Addr upstream = lsp.ingress;
    for (const LsrHop& hop : lsp.lsrs) {
      if (!hop.labels.empty()) {
        labels_at[hop.addr].insert(hop.labels.front());
      }
      feeders[hop.addr].insert(upstream);
      upstream = hop.addr;
    }
    feeders[lsp.egress].insert(upstream);
  }

  int max_labels = 0;
  for (const auto& [addr, labels] : labels_at) {
    max_labels = std::max(max_labels, static_cast<int>(labels.size()));
  }
  int max_in = 0;
  for (const auto& [addr, up] : feeders) {
    max_in = std::max(max_in, static_cast<int>(up.size()));
  }
  tree.max_labels_per_router = max_labels;
  tree.max_in_degree = max_in;
  tree.tree_class = max_labels > 1 ? TreeClass::kMultiFec
                                   : TreeClass::kLdpConsistent;
}

}  // namespace

std::vector<EgressTree> build_egress_trees(
    const std::vector<LspObservation>& observations) {
  std::map<TreeKey, EgressTree> trees;
  for (const LspObservation& obs : observations) {
    const TreeKey key{obs.lsp.asn, obs.lsp.egress};
    EgressTree& tree = trees[key];
    tree.key = key;
    tree.ingresses.insert(obs.lsp.ingress);
    tree.dst_asns.insert(obs.dst_asn);
    if (std::find(tree.branches.begin(), tree.branches.end(), obs.lsp) ==
        tree.branches.end()) {
      tree.branches.push_back(obs.lsp);
    }
  }
  std::vector<EgressTree> out;
  out.reserve(trees.size());
  for (auto& [key, tree] : trees) {
    classify_tree(tree);
    out.push_back(std::move(tree));
  }
  return out;
}

TreeStats summarize(const std::vector<EgressTree>& trees) {
  TreeStats stats;
  stats.trees = trees.size();
  for (const EgressTree& tree : trees) {
    stats.branches_total += tree.branches.size();
    switch (tree.tree_class) {
      case TreeClass::kSingleBranch: ++stats.single_branch; break;
      case TreeClass::kLdpConsistent: ++stats.ldp_consistent; break;
      case TreeClass::kMultiFec: ++stats.multi_fec; break;
    }
  }
  return stats;
}

}  // namespace mum::lpr
