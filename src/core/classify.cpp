#include "core/classify.h"

#include <algorithm>
#include <unordered_map>

#include "obs/telemetry.h"
#include "util/thread_pool.h"

namespace mum::lpr {

namespace {

// Classification telemetry: one batch of updates per classify_all call
// (the per-record loop stays untouched). Class tallies feed the registry
// snapshot's traces/s-style rates; the values mirror the returned
// ClassCounts, so publishing them never alters a report byte.
void publish_classify(const ClassCounts& counts, std::size_t records,
                      std::uint64_t dur_ns) {
  obs::Registry& r = obs::registry();
  static obs::Counter& runs = r.counter("classify.runs");
  static obs::Counter& iotps = r.counter("classify.iotps");
  static obs::Counter& mono_lsp = r.counter("classify.class.mono_lsp");
  static obs::Counter& multi_fec = r.counter("classify.class.multi_fec");
  static obs::Counter& mono_fec = r.counter("classify.class.mono_fec");
  static obs::Counter& unclassified =
      r.counter("classify.class.unclassified");
  static obs::Counter& parallel_links =
      r.counter("classify.class.parallel_links");
  static obs::Counter& routers_disjoint =
      r.counter("classify.class.routers_disjoint");
  static obs::Histogram& duration = r.histogram("classify.ns");
  runs.inc();
  iotps.add(records);
  mono_lsp.add(counts.mono_lsp);
  multi_fec.add(counts.multi_fec);
  mono_fec.add(counts.mono_fec);
  unclassified.add(counts.unclassified);
  parallel_links.add(counts.parallel_links);
  routers_disjoint.add(counts.routers_disjoint);
  duration.record(dur_ns);
}

// Metrics of Sec. 4.3, computed over the branch set.
void fill_metrics(IotpRecord& rec) {
  rec.width = static_cast<int>(rec.variants.size());
  int longest = 0;
  int shortest = rec.variants.empty() ? 0 : 1 << 30;
  for (const Lsp& lsp : rec.variants) {
    const int n = lsp.intermediate_lsr_count();
    longest = std::max(longest, n);
    shortest = std::min(shortest, n);
  }
  rec.length = longest;
  rec.symmetry = rec.variants.empty() ? 0 : longest - shortest;
}

// Label-sequence identity across branches: true when every branch shows the
// exact same ordered sequence of label stacks.
bool identical_label_sequences(const IotpRecord& rec) {
  const auto sequence = [](const Lsp& lsp) {
    std::vector<std::vector<std::uint32_t>> seq;
    seq.reserve(lsp.lsrs.size());
    for (const LsrHop& hop : lsp.lsrs) seq.push_back(hop.labels);
    return seq;
  };
  const auto reference = sequence(rec.variants.front());
  for (std::size_t i = 1; i < rec.variants.size(); ++i) {
    if (sequence(rec.variants[i]) != reference) return false;
  }
  return true;
}

// Sec. 5 alias heuristic: with point-to-point links, the hop *upstream* of
// the (hidden, PHP) egress convergence point reveals the label the egress's
// neighbour advertised. Same label on every branch's last LSR => one FEC;
// distinct labels => multiple FECs.
TunnelClass alias_heuristic_class(const IotpRecord& rec) {
  std::set<std::vector<std::uint32_t>> last_labels;
  for (const Lsp& lsp : rec.variants) {
    if (lsp.lsrs.empty()) return TunnelClass::kUnclassified;
    last_labels.insert(lsp.lsrs.back().labels);
  }
  return last_labels.size() > 1 ? TunnelClass::kMultiFec
                                : TunnelClass::kMonoFec;
}

}  // namespace

void ClassCounts::add(const IotpRecord& rec) noexcept {
  switch (rec.tunnel_class) {
    case TunnelClass::kMonoLsp: ++mono_lsp; break;
    case TunnelClass::kMultiFec: ++multi_fec; break;
    case TunnelClass::kMonoFec:
      ++mono_fec;
      if (rec.mono_fec_kind == MonoFecKind::kParallelLinks) ++parallel_links;
      if (rec.mono_fec_kind == MonoFecKind::kRoutersDisjoint) {
        ++routers_disjoint;
      }
      break;
    case TunnelClass::kUnclassified: ++unclassified; break;
  }
}

ClassCounts& ClassCounts::merge(const ClassCounts& other) noexcept {
  mono_lsp += other.mono_lsp;
  multi_fec += other.multi_fec;
  mono_fec += other.mono_fec;
  unclassified += other.unclassified;
  parallel_links += other.parallel_links;
  routers_disjoint += other.routers_disjoint;
  return *this;
}

std::set<net::Ipv4Addr> common_ips(const IotpRecord& rec) {
  std::unordered_map<net::Ipv4Addr, int> branch_count;
  for (const Lsp& lsp : rec.variants) {
    // Count each address once per branch.
    std::set<net::Ipv4Addr> in_branch;
    for (const LsrHop& hop : lsp.lsrs) in_branch.insert(hop.addr);
    for (const net::Ipv4Addr addr : in_branch) ++branch_count[addr];
  }
  std::set<net::Ipv4Addr> out;
  for (const auto& [addr, n] : branch_count) {
    if (n >= 2) out.insert(addr);
  }
  return out;
}

std::set<std::uint32_t> labels_at(const IotpRecord& rec, net::Ipv4Addr addr) {
  std::set<std::uint32_t> out;
  for (const Lsp& lsp : rec.variants) {
    for (const LsrHop& hop : lsp.lsrs) {
      if (hop.addr == addr && !hop.labels.empty()) {
        out.insert(hop.labels.front());  // top of the quoted stack
      }
    }
  }
  return out;
}

void classify_iotp(IotpRecord& rec, const ClassifyConfig& config) {
  fill_metrics(rec);
  rec.classified_by_alias_heuristic = false;

  // Algorithm 1 line 10: a single LSP (same addresses AND labels everywhere).
  if (rec.variants.size() <= 1) {
    rec.tunnel_class = TunnelClass::kMonoLsp;
    rec.mono_fec_kind = MonoFecKind::kNotApplicable;
    return;
  }

  const auto common = common_ips(rec);
  if (common.empty()) {
    // Algorithm 1 lines 16-18; optionally rescued by the Sec. 5 heuristic.
    if (config.alias_resolution_heuristic) {
      const TunnelClass by_alias = alias_heuristic_class(rec);
      if (by_alias != TunnelClass::kUnclassified) {
        rec.tunnel_class = by_alias;
        rec.classified_by_alias_heuristic = true;
        rec.mono_fec_kind =
            by_alias == TunnelClass::kMonoFec
                ? (identical_label_sequences(rec)
                       ? MonoFecKind::kParallelLinks
                       : MonoFecKind::kRoutersDisjoint)
                : MonoFecKind::kNotApplicable;
        return;
      }
    }
    rec.tunnel_class = TunnelClass::kUnclassified;
    rec.mono_fec_kind = MonoFecKind::kNotApplicable;
    return;
  }

  // Algorithm 1 lines 20-25: any common IP with >1 label => Multi-FEC.
  for (const net::Ipv4Addr addr : common) {
    if (labels_at(rec, addr).size() > 1) {
      rec.tunnel_class = TunnelClass::kMultiFec;
      rec.mono_fec_kind = MonoFecKind::kNotApplicable;
      return;
    }
  }

  // Lines 26-28: every common IP carries one label => ECMP Mono-FEC.
  rec.tunnel_class = TunnelClass::kMonoFec;
  rec.mono_fec_kind = identical_label_sequences(rec)
                          ? MonoFecKind::kParallelLinks
                          : MonoFecKind::kRoutersDisjoint;
}

ClassCounts classify_all(std::vector<IotpRecord>& records,
                         const ClassifyConfig& config) {
  ClassCounts counts;
  for (IotpRecord& rec : records) {
    classify_iotp(rec, config);
    counts.add(rec);
  }
  return counts;
}

ClassCounts classify_all(std::vector<IotpRecord>& records,
                         const ClassifyConfig& config,
                         util::ThreadPool* pool) {
  const std::uint64_t t0 = obs::monotonic_ns();
  ClassCounts counts;
  if (pool == nullptr || pool->size() <= 1 || records.size() < 2) {
    counts = classify_all(records, config);
  } else {
    // Fixed shards, one partial ClassCounts each, merged in shard order.
    const std::size_t shards =
        std::min<std::size_t>(records.size(),
                              static_cast<std::size_t>(pool->size()) * 4);
    const std::size_t per = (records.size() + shards - 1) / shards;
    std::vector<ClassCounts> partial(shards);
    pool->for_each_index(shards, [&](std::size_t s) {
      const std::size_t begin = s * per;
      const std::size_t end = std::min(records.size(), begin + per);
      for (std::size_t i = begin; i < end; ++i) {
        classify_iotp(records[i], config);
        partial[s].add(records[i]);
      }
    });
    for (const ClassCounts& p : partial) counts.merge(p);
  }
  publish_classify(counts, records.size(), obs::monotonic_ns() - t0);
  return counts;
}

}  // namespace mum::lpr
