#include "core/model.h"

#include "util/rng.h"

namespace mum::lpr {

std::uint64_t Lsp::content_hash() const {
  std::uint64_t h = util::hash_combine(asn, ingress.value());
  h = util::hash_combine(h, egress.value());
  for (const LsrHop& hop : lsrs) {
    h = util::hash_combine(h, hop.addr.value());
    for (const std::uint32_t label : hop.labels) {
      h = util::hash_combine(h, label);
    }
    h = util::hash_combine(h, 0xfeedULL);  // hop delimiter
  }
  return h;
}

std::string Lsp::to_string() const {
  std::string out = "AS" + std::to_string(asn) + " " + ingress.to_string() +
                    " -> [";
  for (std::size_t i = 0; i < lsrs.size(); ++i) {
    if (i) out += ", ";
    out += lsrs[i].addr.to_string() + "(";
    for (std::size_t j = 0; j < lsrs[i].labels.size(); ++j) {
      if (j) out += "/";
      out += std::to_string(lsrs[i].labels[j]);
    }
    out += ")";
  }
  out += "] -> " + egress.to_string();
  return out;
}

std::size_t IotpKeyHash::operator()(const IotpKey& k) const noexcept {
  return static_cast<std::size_t>(util::hash_combine(
      util::hash_combine(k.asn, k.ingress.value()), k.egress.value()));
}

const char* to_cstring(TunnelClass c) noexcept {
  switch (c) {
    case TunnelClass::kMonoLsp: return "Mono-LSP";
    case TunnelClass::kMultiFec: return "Multi-FEC";
    case TunnelClass::kMonoFec: return "Mono-FEC";
    case TunnelClass::kUnclassified: return "Unclassified";
  }
  return "?";
}

const char* to_cstring(MonoFecKind k) noexcept {
  switch (k) {
    case MonoFecKind::kNotApplicable: return "n/a";
    case MonoFecKind::kParallelLinks: return "Parallel Links";
    case MonoFecKind::kRoutersDisjoint: return "Routers Disjoint";
  }
  return "?";
}

}  // namespace mum::lpr
