// The LPR filtering stage (paper Sec. 3.1) — four filters applied in order
// after the Incomplete-LSP rejection already done at extraction:
//
//   IntraAS          per LSP   all LSP addresses in one AS
//   TargetAS         per LSP   trace destination outside the tunnel's AS
//   TransitDiversity per IOTP  IOTP must reach >= 2 distinct destination ASes
//   Persistence      per LSP   LSP of cycle X must reappear in one of the
//                              j following snapshots of the same month
//
// Plus the "dynamic AS" rule: when Persistence would wipe out (nearly) all
// LSPs of an AS, the whole set is reinjected and the AS is tagged dynamic —
// frequent label churn is itself a TE signal (Sec. 4.5), not noise.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/extract.h"
#include "core/model.h"

namespace mum::lpr {

struct FilterConfig {
  // Number of subsequent snapshots consulted by Persistence (paper: j = 2).
  int persistence_j = 2;
  // Share of an AS's LSPs that must vanish for the AS to count as dynamic
  // ("the vast majority"); reinjection then restores the whole set.
  double dynamic_threshold = 0.85;
  bool enable_intra_as = true;
  bool enable_target_as = true;
  bool enable_transit_diversity = true;
  bool enable_persistence = true;
};

// LSP counts surviving each stage (Table 1 numerators; the denominator is
// `observed`, i.e. the count before the Incomplete rejection).
struct FilterStats {
  std::uint64_t observed = 0;           // complete + incomplete
  std::uint64_t complete = 0;           // after Incomplete
  std::uint64_t after_intra_as = 0;
  std::uint64_t after_target_as = 0;
  std::uint64_t after_transit_diversity = 0;
  std::uint64_t after_persistence = 0;  // final (includes reinjected)
};

struct FilteredCycle {
  std::uint32_t cycle_id = 0;
  std::string date;
  std::vector<LspObservation> observations;
  std::unordered_set<std::uint32_t> dynamic_asns;  // tagged by reinjection
  FilterStats stats;
};

// Content-hash set of the LSPs present in a snapshot (what Persistence
// compares against). Collisions are astronomically unlikely at our scales.
std::unordered_set<std::uint64_t> lsp_content_set(
    const ExtractedSnapshot& snapshot);

// Apply the full filter pipeline to the cycle snapshot of a month.
// `following` are the extracted snapshots X+1 ... X+j of the same month (any
// extra entries beyond persistence_j are ignored; fewer entries simply relax
// nothing — an LSP must appear in at least one of them, so an empty list with
// persistence enabled erases everything and triggers reinjection per AS).
FilteredCycle apply_filters(const ExtractedSnapshot& cycle,
                            const std::vector<ExtractedSnapshot>& following,
                            const FilterConfig& config);

// Group filtered observations into IOTPs (variants deduplicated, destination
// ASes accumulated). Classification runs on this.
std::vector<IotpRecord> group_iotps(
    const std::vector<LspObservation>& observations);

}  // namespace mum::lpr
