// JSON half of the Report interface — the machine-readable counterpart of
// the text tables, for external plotting of the paper's figures.
#include "core/report_json.h"

#include "core/metrics.h"
#include "util/json.h"

namespace mum::lpr {

namespace {

void write_counts(util::JsonWriter& json, const ClassCounts& counts) {
  const std::uint64_t total = counts.total();
  json.begin_object();
  json.field("total", total);
  json.field("mono_lsp", counts.mono_lsp);
  json.field("multi_fec", counts.multi_fec);
  json.field("mono_fec", counts.mono_fec);
  json.field("parallel_links", counts.parallel_links);
  json.field("routers_disjoint", counts.routers_disjoint);
  json.field("unclassified", counts.unclassified);
  // Class shares, guarded: an empty cycle emits explicit zeros, never NaN.
  json.key("shares");
  json.begin_object();
  json.field("mono_lsp", safe_ratio(counts.mono_lsp, total));
  json.field("multi_fec", safe_ratio(counts.multi_fec, total));
  json.field("mono_fec", safe_ratio(counts.mono_fec, total));
  json.field("unclassified", safe_ratio(counts.unclassified, total));
  json.end_object();
  json.end_object();
}

void write_per_as(util::JsonWriter& json, const CycleReport& report) {
  json.begin_array();
  for (const auto& [asn, counts] : report.per_as) {
    json.begin_object();
    json.field("asn", asn);
    const auto dyn = report.dynamic_as.find(asn);
    json.field("dynamic", dyn != report.dynamic_as.end() && dyn->second);
    json.key("classes");
    write_counts(json, counts);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

std::string CycleReport::to_json(bool include_iotps) const {
  util::JsonWriter json;
  json.begin_object();
  json.field("cycle", cycle_id + 1);  // 1-based, as the paper counts
  json.field("date", date);

  json.key("extract");
  json.begin_object();
  json.field("traces", extract_stats.traces_total);
  json.field("traces_with_tunnel",
             extract_stats.traces_with_explicit_tunnel);
  json.field("mpls_ips", extract_stats.mpls_ips);
  json.field("non_mpls_ips", extract_stats.non_mpls_ips);
  json.end_object();

  json.key("filters");
  json.begin_object();
  const auto& f = filter_stats;
  json.field("observed", f.observed);
  json.field("complete", f.complete);
  json.field("after_intra_as", f.after_intra_as);
  json.field("after_target_as", f.after_target_as);
  json.field("after_transit_diversity", f.after_transit_diversity);
  json.field("after_persistence", f.after_persistence);
  json.end_object();

  json.key("global");
  write_counts(json, global);
  json.key("per_as");
  write_per_as(json, *this);

  if (!decode.clean()) {
    json.key("decode");
    decode.write_json(json);
  }

  if (include_iotps) {
    json.key("iotps");
    json.begin_array();
    for (const IotpRecord& rec : iotps) {
      json.begin_object();
      json.field("asn", rec.key.asn);
      json.field("ingress", rec.key.ingress.to_string());
      json.field("egress", rec.key.egress.to_string());
      json.field("class", to_cstring(rec.tunnel_class));
      if (rec.mono_fec_kind != MonoFecKind::kNotApplicable) {
        json.field("mono_fec_kind", to_cstring(rec.mono_fec_kind));
      }
      json.field("length", rec.length);
      json.field("width", rec.width);
      json.field("symmetry", rec.symmetry);
      json.field("dst_asns", static_cast<std::uint64_t>(
                                 rec.dst_asns.size()));
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  return json.str();
}

std::string LongitudinalReport::to_json() const {
  util::JsonWriter json;
  json.begin_array();
  for (const CycleReport& cycle : cycles) {
    json.begin_object();
    json.field("cycle", cycle.cycle_id + 1);
    json.field("date", cycle.date);
    json.key("global");
    write_counts(json, cycle.global);
    json.key("per_as");
    write_per_as(json, cycle);
    json.end_object();
  }
  json.end_array();
  return json.str();
}

std::string to_json(const CycleReport& report, bool include_iotps) {
  return report.to_json(include_iotps);
}

std::string to_json(const LongitudinalReport& report) {
  return report.to_json();
}

}  // namespace mum::lpr
