// LPR classification (paper Sec. 3.2, Algorithm 1) plus the Mono-FEC
// sub-split and the optional Sec.-5 alias-resolution heuristic for IOTPs
// whose LSPs converge only at a PHP egress.
//
// Class semantics:
//  * Mono-LSP    — a single LSP serves every destination: no transit
//                  diversity observable.
//  * Multi-FEC   — some "common IP" (an address traversed by >= 2 distinct
//                  branches) shows more than one label: distinct FECs, i.e.
//                  RSVP-TE style traffic engineering.
//  * Mono-FEC    — every common IP shows exactly one label: one FEC, path
//                  diversity comes from IGP ECMP under LDP. Sub-split:
//                  identical label sequences across branches => Parallel
//                  Links (addresses are aliases / bundled links); otherwise
//                  Routers Disjoint.
//  * Unclassified — no common IP at all (only possible when PHP hides the
//                  converging egress).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/model.h"

namespace mum::util {
class ThreadPool;
}

namespace mum::lpr {

struct ClassifyConfig {
  // Sec. 5 extension: when the common-IP set is empty, fall back to
  // comparing the labels advertised by the *upstream* hops of the egress
  // (point-to-point alias reasoning). Off by default, as in the paper.
  bool alias_resolution_heuristic = false;
};

struct ClassCounts {
  std::uint64_t mono_lsp = 0;
  std::uint64_t multi_fec = 0;
  std::uint64_t mono_fec = 0;
  std::uint64_t unclassified = 0;
  // Mono-FEC sub-split.
  std::uint64_t parallel_links = 0;
  std::uint64_t routers_disjoint = 0;

  std::uint64_t total() const noexcept {
    return mono_lsp + multi_fec + mono_fec + unclassified;
  }
  void add(const IotpRecord& rec) noexcept;
  // Deterministic accumulation of a worker's partial counts (plain sums).
  ClassCounts& merge(const ClassCounts& other) noexcept;
};

// The common-IP set of an IOTP: addresses of LSRs traversed by at least two
// distinct branches (exposed for tests and for the report layer).
std::set<net::Ipv4Addr> common_ips(const IotpRecord& rec);

// Labels observed at `addr` across all branches (top label of the quoted
// stack at that hop).
std::set<std::uint32_t> labels_at(const IotpRecord& rec, net::Ipv4Addr addr);

// Classify one IOTP in place (fills tunnel_class, mono_fec_kind,
// classified_by_alias_heuristic and the length/width/symmetry metrics).
void classify_iotp(IotpRecord& rec, const ClassifyConfig& config = {});

// Classify a whole cycle's IOTPs; returns aggregate counts.
ClassCounts classify_all(std::vector<IotpRecord>& records,
                         const ClassifyConfig& config = {});

// Same, sharding the records across `pool` workers (each IOTP classifies
// independently); per-shard counts merge in shard order, so the result is
// identical to the serial run. Null pool falls back to serial.
ClassCounts classify_all(std::vector<IotpRecord>& records,
                         const ClassifyConfig& config,
                         util::ThreadPool* pool);

}  // namespace mum::lpr
