// Data model of the LPR (Label Pattern Recognition) algorithm — the paper's
// primary contribution.
//
// Terminology (paper Sec. 3):
//  * LSP: one observed Label Switched Path — the maximal run of label-quoting
//    hops in a trace, together with its entry hop (Ingress LER) and exit hop
//    (Egress LER).
//  * IOTP ("In-Out Transit Pair"): the set of LSPs sharing the same
//    <Ingress LER; Egress LER> pair inside one AS. An IOTP may have several
//    "branches" (distinct LSPs), physically different (IP addresses) or only
//    logically different (labels).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace mum::lpr {

// One label-revealing hop inside an LSP: the interface address and the label
// values of the quoted stack (top first).
struct LsrHop {
  net::Ipv4Addr addr;
  std::vector<std::uint32_t> labels;

  friend bool operator==(const LsrHop&, const LsrHop&) = default;
  friend auto operator<=>(const LsrHop&, const LsrHop&) = default;
};

// One observed LSP. Equality covers everything the Persistence filter and
// the classifier compare: endpoints plus the full (address, labels) sequence.
struct Lsp {
  std::uint32_t asn = 0;        // AS the tunnel lives in (0 = inconsistent)
  net::Ipv4Addr ingress;        // hop preceding the labeled run
  net::Ipv4Addr egress;         // tunnel exit point (see extract.h)
  std::vector<LsrHop> lsrs;     // the labeled hops, in order
  // True when the last labeled hop is itself the Egress LER (no PHP): it then
  // must not count as an *intermediate* LSR for the length metric.
  bool egress_labeled = false;

  // Number of intermediate LSRs (paper's length unit: LERs excluded).
  int intermediate_lsr_count() const noexcept {
    const int n = static_cast<int>(lsrs.size()) - (egress_labeled ? 1 : 0);
    return n < 0 ? 0 : n;
  }

  // Content identity (ignores which trace/destination revealed it).
  friend bool operator==(const Lsp& a, const Lsp& b) {
    return a.asn == b.asn && a.ingress == b.ingress && a.egress == b.egress &&
           a.lsrs == b.lsrs;
  }

  // Stable content hash for persistence sets / dedup maps.
  std::uint64_t content_hash() const;

  std::string to_string() const;
};

// One LSP observation: the LSP plus which destination AS the covering trace
// was heading to (TargetAS / TransitDiversity need this).
struct LspObservation {
  Lsp lsp;
  std::uint32_t dst_asn = 0;
  std::uint32_t monitor_id = 0;
};

// IOTP identity.
struct IotpKey {
  std::uint32_t asn = 0;
  net::Ipv4Addr ingress;
  net::Ipv4Addr egress;

  friend bool operator==(const IotpKey&, const IotpKey&) = default;
  friend auto operator<=>(const IotpKey&, const IotpKey&) = default;
};

struct IotpKeyHash {
  std::size_t operator()(const IotpKey& k) const noexcept;
};

// The paper's four tunnel classes (Fig. 3 / Algorithm 1).
enum class TunnelClass : std::uint8_t {
  kMonoLsp,      // single LSP, no observable diversity
  kMultiFec,     // >1 label for some common IP => RSVP-TE style TE
  kMonoFec,      // multi-LSP, single FEC => IGP ECMP under LDP
  kUnclassified, // no common IP (PHP-converged at the egress only)
};

// Mono-FEC sub-split (Fig. 4(c) vs 4(d)).
enum class MonoFecKind : std::uint8_t {
  kNotApplicable,
  kParallelLinks,    // identical label sequences, different addresses
  kRoutersDisjoint,  // labels AND addresses differ somewhere
};

const char* to_cstring(TunnelClass c) noexcept;
const char* to_cstring(MonoFecKind k) noexcept;

// A classified IOTP with its measured properties.
struct IotpRecord {
  IotpKey key;
  std::vector<Lsp> variants;        // distinct LSPs (the branches)
  // Destination ASes reached through it — sorted, deduplicated. Kept as a
  // flat vector (append during grouping, normalized once): the set is only
  // ever built and iterated, never searched.
  std::vector<std::uint32_t> dst_asns;
  TunnelClass tunnel_class = TunnelClass::kUnclassified;
  MonoFecKind mono_fec_kind = MonoFecKind::kNotApplicable;
  bool classified_by_alias_heuristic = false;  // Sec. 5 extension fired

  // Paper metrics (Sec. 4.3).
  int length = 0;    // intermediate LSRs of the longest branch
  int width = 0;     // number of branches
  int symmetry = 0;  // length(longest) - length(shortest)
};

}  // namespace mum::lpr
