#include "core/metrics.h"

namespace mum::lpr {

util::Histogram length_distribution(const std::vector<IotpRecord>& records) {
  util::Histogram h;
  for (const IotpRecord& rec : records) h.add(rec.length);
  return h;
}

util::Histogram width_distribution(const std::vector<IotpRecord>& records) {
  util::Histogram h;
  for (const IotpRecord& rec : records) h.add(rec.width);
  return h;
}

util::Histogram width_distribution(const std::vector<IotpRecord>& records,
                                   TunnelClass only) {
  util::Histogram h;
  for (const IotpRecord& rec : records) {
    if (rec.tunnel_class == only) h.add(rec.width);
  }
  return h;
}

util::Histogram symmetry_distribution(
    const std::vector<IotpRecord>& records) {
  util::Histogram h;
  for (const IotpRecord& rec : records) h.add(rec.symmetry);
  return h;
}

util::Histogram symmetry_distribution(const std::vector<IotpRecord>& records,
                                      TunnelClass only) {
  util::Histogram h;
  for (const IotpRecord& rec : records) {
    if (rec.tunnel_class == only) h.add(rec.symmetry);
  }
  return h;
}

double safe_ratio(std::uint64_t numerator,
                  std::uint64_t denominator) noexcept {
  return denominator == 0 ? 0.0
                          : static_cast<double>(numerator) /
                                static_cast<double>(denominator);
}

double balanced_share(const std::vector<IotpRecord>& records,
                      TunnelClass only) {
  std::uint64_t total = 0;
  std::uint64_t balanced = 0;
  for (const IotpRecord& rec : records) {
    if (rec.tunnel_class != only) continue;
    ++total;
    if (rec.symmetry == 0) ++balanced;
  }
  return safe_ratio(balanced, total);
}

}  // namespace mum::lpr
