// JSON export of LPR reports — the machine-readable counterpart of the
// text tables, for external plotting of the paper's figures.
#pragma once

#include <string>

#include "core/report.h"

namespace mum::lpr {

// One cycle: extract/filter stats, global class counts, per-AS breakdown
// and (optionally) the classified IOTP records with their metrics.
std::string to_json(const CycleReport& report, bool include_iotps = false);

// Longitudinal series: an array of per-cycle summaries (global + per-AS
// class counts) — enough to redraw Figs. 10-15.
std::string to_json(const LongitudinalReport& report);

}  // namespace mum::lpr
