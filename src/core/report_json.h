// Deprecated shim: JSON export moved onto the Report interface
// (CycleReport::to_json / LongitudinalReport::to_json in core/report.h).
// These free functions forward there and will be removed next PR.
#pragma once

#include <string>

#include "core/report.h"

namespace mum::lpr {

[[deprecated("use CycleReport::to_json")]]
std::string to_json(const CycleReport& report, bool include_iotps = false);

[[deprecated("use LongitudinalReport::to_json")]]
std::string to_json(const LongitudinalReport& report);

}  // namespace mum::lpr
