// Alias resolution and router-level IOTPs — the paper's Sec.-5 third
// extension: "define an IOTP at the router level rather than at the IP
// level ... it will reduce the number of IOTPs and so provide more
// consistent results that may be closer to the actual MPLS usage."
//
// The inference implemented here is *label-based* and purely passive,
// generalizing the paper's own Parallel-Links argument: LDP labels have
// router scope, and a router advertises ONE label per FEC to all its
// neighbours. So when two different interface addresses appear inside the
// same AS, toward the same tunnel exit, carrying the SAME label, they are
// overwhelmingly likely to be two interfaces of one router (label collision
// across routers for the same FEC is possible but rare). Alias sets are the
// connected components of that relation.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/model.h"
#include "dataset/trace.h"

namespace mum::lpr {

// Union-find over IPv4 addresses (exposed for tests; used by the
// inference below).
class AddressUnionFind {
 public:
  // Union the sets of a and b.
  void merge(net::Ipv4Addr a, net::Ipv4Addr b);
  // Canonical representative (lowest address of the set). An address never
  // merged is its own representative.
  net::Ipv4Addr find(net::Ipv4Addr a) const;
  // All sets with >= 2 members.
  std::vector<std::set<net::Ipv4Addr>> sets() const;

 private:
  net::Ipv4Addr root(net::Ipv4Addr a) const;
  // Parent pointers; path compression is applied lazily in merge().
  mutable std::map<net::Ipv4Addr, net::Ipv4Addr> parent_;
};

// An alias resolver maps an interface address to a canonical router
// representative. The identity resolver leaves everything at IP level.
class AliasResolver {
 public:
  virtual ~AliasResolver() = default;
  virtual net::Ipv4Addr canonical(net::Ipv4Addr addr) const {
    return addr;
  }
};

// Passive alias inference over extracted LSP observations, with two rules:
//
//  1. label rule — addresses observed inside the same (asn, tunnel exit)
//     scope with the same top label are one router (LDP router scope).
//     Only PHP-interpreted observations are used (non-PHP runs can mix
//     FECs — see extract.h).
//  2. subnet-alignment rule (APAR-style, optional) — interface addresses
//     are allocated as /31 point-to-point pairs, so for two consecutive
//     responding hops P -> C inside ONE AS, C's /31 mate (C xor 1) sits on
//     P's router: merge(P, C^1).
class LabelAliasResolver final : public AliasResolver {
 public:
  explicit LabelAliasResolver(
      const std::vector<LspObservation>& observations);
  // Same, plus the subnet-alignment rule over the raw (annotated) traces.
  LabelAliasResolver(const std::vector<LspObservation>& observations,
                     const std::vector<dataset::Trace>& traces);

  net::Ipv4Addr canonical(net::Ipv4Addr addr) const override;

  // Inferred alias sets with >= 2 members (for accuracy evaluation).
  std::vector<std::set<net::Ipv4Addr>> alias_sets() const {
    return uf_.sets();
  }

 private:
  AddressUnionFind uf_;
};

// Rewrite observations to router level: the IOTP ENDPOINTS are replaced by
// their canonical representatives (interior LSR addresses stay raw so the
// physical branch structure — including Parallel Links — survives). The
// result feeds the ordinary group_iotps/classify_all pipeline, which then
// operates on <Ingress router; Egress router> IOTPs.
std::vector<LspObservation> to_router_level(
    const std::vector<LspObservation>& observations,
    const AliasResolver& resolver);

// Accuracy of an inference against ground truth (the simulator knows the
// real address->router mapping): precision = share of inferred alias PAIRS
// that are true, recall intentionally not reported (passive inference only
// sees what traceroute reveals).
struct AliasAccuracy {
  std::uint64_t inferred_pairs = 0;
  std::uint64_t correct_pairs = 0;
  double precision() const noexcept {
    return inferred_pairs
               ? static_cast<double>(correct_pairs) /
                     static_cast<double>(inferred_pairs)
               : 1.0;
  }
};

// `truth` maps each address to its true router representative; addresses
// absent from the map are ignored.
AliasAccuracy evaluate_aliases(
    const std::vector<std::set<net::Ipv4Addr>>& inferred,
    const std::map<net::Ipv4Addr, net::Ipv4Addr>& truth);

}  // namespace mum::lpr
